#!/usr/bin/env bash
# Records the campaign-engine benchmarks into BENCH_campaign.json:
# the end-to-end campaign (with and without the fault plan, and under
# the probe-budget scheduler at 100/50/25/10% — whose probes_sent
# metric the guard checks for overspend), the TSLP
# sampling hot loop, the analysis
# threshold sweep (detect-once vs per-threshold detection), and the
# parallel-engine sub-benchmarks. The parallel benches run under
# GOMAXPROCS>1 explicitly so workers=N is a real fan-out even on a
# single-core runner (the results are bit-identical either way; only
# the timing needs the cores). Prior recorded runs are preserved in
# the ledger's history array.
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-1}"
PROCS="${PROCS:-4}"
OUT="BENCH_campaign.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# Effective core count of this runner, stamped into the ledger row so
# the "workers=N at parity on a starved runner" caveat is data, not
# folklore. nproc reflects the cgroup/affinity limit where available.
CORES="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"

# BenchmarkAlertLatency rides here too: its alert_latency_p50_s /
# alert_latency_p95_s metrics are the streaming observatory's measured
# detection lag against planted ground truth, sanity-checked (warn-only)
# by the benchjson guard.
go test -run '^$' \
  -bench 'BenchmarkFullCampaign$|BenchmarkFaultCampaign$|BenchmarkBudgetCampaign|BenchmarkAlertLatency|BenchmarkTelemetryCampaign$|BenchmarkTSLPSamplingThroughput$|BenchmarkAnalysisSweep|BenchmarkChunkCompression$|BenchmarkCheckpoint$' \
  -benchmem -count "$COUNT" . | tee "$RAW"

# BenchmarkScaleCampaign rides in the multi-proc pass: its 10x/100x
# points run the sharded engine, whose bytes_per_link metric the
# benchjson guard checks against the scale=1 figure (the per-shard
# memory bound) and against the committed ledger (warn-only).
GOMAXPROCS="$PROCS" go test -run '^$' \
  -bench 'BenchmarkCampaignParallel|BenchmarkAnalysisFanout|BenchmarkProbeStepBatch|BenchmarkScaleCampaign' \
  -benchmem -count "$COUNT" . | tee -a "$RAW"

go run ./scripts/benchjson -raw "$RAW" -prev "$OUT" -out "$OUT" -cores "$CORES"
echo "wrote $OUT"
