#!/usr/bin/env bash
# Records the campaign-engine benchmarks into BENCH_campaign.json:
# the end-to-end campaign, the TSLP sampling hot loop, and the
# parallel-engine sub-benchmarks (workers=1 vs workers=GOMAXPROCS).
# Speedup from the workers>1 rows requires a multi-core runner; the
# results themselves are bit-identical at any worker count.
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-1}"
OUT="BENCH_campaign.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' \
  -bench 'BenchmarkFullCampaign$|BenchmarkTSLPSamplingThroughput$|BenchmarkCampaignParallel|BenchmarkAnalysisFanout' \
  -benchmem -count "$COUNT" . | tee "$RAW"

{
  echo '{'
  echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
  echo "  \"go\": \"$(go env GOVERSION)\","
  echo "  \"gomaxprocs\": $(nproc),"
  echo '  "benchmarks": ['
  awk '/^Benchmark/ {
    name=$1; iters=$2; ns=$3
    bytes="null"; allocs="null"
    for (i=4; i<=NF; i++) {
      if ($i == "B/op")      bytes=$(i-1)
      if ($i == "allocs/op") allocs=$(i-1)
    }
    printf "%s    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", sep, name, iters, ns, bytes, allocs
    sep=",\n"
  } END { print "" }' "$RAW"
  echo '  ]'
  echo '}'
} > "$OUT"

echo "wrote $OUT"
