// Command benchjson turns `go test -bench` output into the committed
// benchmark ledger (BENCH_campaign.json) and guards CI against
// performance regressions.
//
// Record mode (the default) parses a raw benchmark log and writes the
// ledger. The previous ledger's run — and everything already in its
// history — is carried into the new file's history array, so the
// committed JSON accumulates a performance record across PRs:
//
//	benchjson -raw bench.txt -prev BENCH_campaign.json -out BENCH_campaign.json
//
// Guard mode compares a raw benchmark log against the committed
// ledger and prints a warning for every benchmark whose ns/op
// regressed beyond the tolerance. It always exits 0 — single-shot CI
// smoke runs are too noisy to gate on — the warning is for humans:
//
//	benchjson -guard -raw smoke.txt -prev BENCH_campaign.json -tolerance 25
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one `Benchmark...` result line. Procs is the GOMAXPROCS
// suffix go test appends to the name (1 when absent), kept separately
// so the same benchmark is comparable across runner core counts.
type Benchmark struct {
	Name        string   `json:"name"`
	Procs       int      `json:"procs"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
	// Metrics carries custom b.ReportMetric units (e.g. the chunk
	// store's "compression_x") keyed by unit name.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Run is one recording session.
type Run struct {
	Date string `json:"date"`
	Go   string `json:"go"`
	// Cores is the runner's effective core count (-cores flag; 0 in
	// rows recorded before the field existed). It makes the "workers=4
	// measures at parity with workers=1 on a single-core runner"
	// caveat machine-readable: consumers can tell a genuine scaling
	// regression from a starved runner.
	Cores int `json:"cores,omitempty"`
	// CompressionRatio is the columnar store's raw/encoded byte ratio,
	// lifted from the compression_x metric when the run includes
	// BenchmarkChunkCompression.
	CompressionRatio float64 `json:"compression_ratio,omitempty"`
	// Notes carries machine-readable caveats about the row. The one
	// writer today is "scaling_unverified", stamped when the run was
	// recorded on a single effective core (Cores=1): every multi-worker
	// number in the row then measured time-sharing, not parallelism, so
	// no speedup claim may be read from it.
	Notes      []string    `json:"notes,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Ledger is the committed file: the latest run plus prior runs.
type Ledger struct {
	Run
	History []Run `json:"history,omitempty"`
}

var cpuSuffix = regexp.MustCompile(`-(\d+)$`)

func main() {
	var (
		raw       = flag.String("raw", "", "raw `go test -bench` log to parse (required)")
		prev      = flag.String("prev", "", "previous ledger: feeds history (record) or the baseline (guard)")
		out       = flag.String("out", "", "ledger file to write (record mode)")
		guard     = flag.Bool("guard", false, "compare -raw against -prev and warn on ns/op regressions")
		tolerance = flag.Float64("tolerance", 25, "guard: allowed ns/op regression in percent")
		cores     = flag.Int("cores", 0, "record: effective core count of the runner, stamped into the ledger row")
	)
	flag.Parse()

	if *raw == "" {
		fatal("benchjson: -raw is required")
	}
	benches, err := parseRaw(*raw)
	if err != nil {
		fatal("benchjson: %v", err)
	}

	if *guard {
		if *prev == "" {
			fatal("benchjson: guard mode needs -prev")
		}
		runGuard(benches, *prev, *tolerance)
		return
	}

	if *out == "" {
		fatal("benchjson: record mode needs -out")
	}
	ledger := Ledger{Run: Run{
		Date:             time.Now().UTC().Format(time.RFC3339),
		Go:               runtime.Version(),
		Cores:            *cores,
		CompressionRatio: compressionRatio(benches),
		Benchmarks:       benches,
	}}
	if *cores == 1 {
		ledger.Notes = addNote(ledger.Notes, "scaling_unverified")
		fmt.Fprintln(os.Stderr,
			"benchjson: note: scaling_unverified — this row was recorded on a single effective core; multi-worker numbers measure time-sharing, not speedup")
	}
	if *prev != "" {
		if old, err := readLedger(*prev); err == nil {
			// The previous latest run becomes the newest history entry.
			ledger.History = append([]Run{old.Run}, old.History...)
		} else if !os.IsNotExist(err) {
			fatal("benchjson: %v", err)
		}
	}
	buf, err := json.MarshalIndent(&ledger, "", "  ")
	if err != nil {
		fatal("benchjson: %v", err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fatal("benchjson: %v", err)
	}
}

// addNote appends note to a Run's Notes unless it is already present.
// Notes are a set of machine-readable caveats, so stamping one twice —
// a plain append did exactly that on every single-core record run —
// must not produce a duplicate entry in the committed ledger.
func addNote(notes []string, note string) []string {
	for _, n := range notes {
		if n == note {
			return notes
		}
	}
	return append(notes, note)
}

// parseRaw extracts Benchmark lines from a `go test -bench` log.
func parseRaw(path string) ([]Benchmark, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []Benchmark
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		b := Benchmark{Name: fields[0], Procs: 1}
		if m := cpuSuffix.FindStringSubmatch(b.Name); m != nil {
			b.Procs, _ = strconv.Atoi(m[1])
			b.Name = strings.TrimSuffix(b.Name, m[0])
		}
		if b.Iterations, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue // e.g. a "Benchmarking..." prose line
		}
		// Values carry their unit in the following field.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				v := v
				b.BytesPerOp = &v
			case "allocs/op":
				v := v
				b.AllocsPerOp = &v
			case "MB/s":
				// go test throughput; derivable from ns/op, not kept.
			default:
				// Custom b.ReportMetric units (compression_x, …).
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64, 1)
				}
				b.Metrics[unit] = v
			}
		}
		out = append(out, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return out, nil
}

// compressionRatio lifts the columnar store's raw/encoded ratio out of
// the parsed benchmarks: the highest compression_x metric seen (several
// sub-benchmarks may report one; they measure the same store). Zero
// when the run didn't include a compression benchmark.
func compressionRatio(benches []Benchmark) float64 {
	ratio := 0.0
	for _, b := range benches {
		if r, ok := b.Metrics["compression_x"]; ok && r > ratio {
			ratio = r
		}
	}
	return ratio
}

// normalize backfills fields older ledger rows lack. Rows written
// before the procs field existed carry procs 0; an absent GOMAXPROCS
// suffix means the benchmark ran at procs 1, so 0 and 1 are the same
// row and must not split into two ledger keys.
func (r *Run) normalize() {
	for i := range r.Benchmarks {
		if r.Benchmarks[i].Procs == 0 {
			r.Benchmarks[i].Procs = 1
		}
	}
}

// readLedger loads and normalizes a committed ledger: the latest run
// and every history entry come back with procs backfilled, so record
// mode never carries procs-0 rows forward and guard mode matches
// pre-field baselines correctly.
func readLedger(path string) (Ledger, error) {
	var l Ledger
	buf, err := os.ReadFile(path)
	if err != nil {
		return l, err
	}
	if err := json.Unmarshal(buf, &l); err != nil {
		return l, fmt.Errorf("%s: %w", path, err)
	}
	l.Run.normalize()
	for i := range l.History {
		l.History[i].normalize()
	}
	return l, nil
}

// runGuard warns about ns/op and allocs/op regressions beyond tol
// percent against the baseline ledger, plus inverted parallel scaling
// in the current run, returning the warning count. Benchmarks are
// matched by name and procs; benchmarks present on only one side are
// skipped (new or retired benchmarks are not regressions). The caller
// always exits 0 — single-shot CI smoke runs are too noisy to gate on.
func runGuard(benches []Benchmark, prevPath string, tol float64) int {
	baselineLedger, err := readLedger(prevPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: guard skipped: %v\n", err)
		return 0
	}
	type key struct {
		name  string
		procs int
	}
	baseline := make(map[key]Benchmark, len(baselineLedger.Benchmarks))
	for _, b := range baselineLedger.Benchmarks {
		baseline[key{b.Name, b.Procs}] = b
	}
	regressions := 0
	for _, b := range benches {
		base, ok := baseline[key{b.Name, b.Procs}]
		if !ok {
			continue
		}
		if base.NsPerOp > 0 {
			change := 100 * (b.NsPerOp - base.NsPerOp) / base.NsPerOp
			if change > tol {
				regressions++
				fmt.Printf("WARNING: %s (procs=%d) ns/op regressed %.1f%% (%.0f -> %.0f, tolerance %.0f%%)\n",
					b.Name, b.Procs, change, base.NsPerOp, b.NsPerOp, tol)
			}
		}
		// allocs/op and bytes/op are deterministic where ns/op is
		// noisy, so the same tolerance catches real allocation creep
		// without false alarms. bytes/op is the one the columnar-store
		// work drove down 4×+ — creeping back up is a regression even
		// when ns/op holds.
		if base.AllocsPerOp != nil && b.AllocsPerOp != nil && *base.AllocsPerOp > 0 {
			change := 100 * (*b.AllocsPerOp - *base.AllocsPerOp) / *base.AllocsPerOp
			if change > tol {
				regressions++
				fmt.Printf("WARNING: %s (procs=%d) allocs/op regressed %.1f%% (%.0f -> %.0f, tolerance %.0f%%)\n",
					b.Name, b.Procs, change, *base.AllocsPerOp, *b.AllocsPerOp, tol)
			}
		}
		if base.BytesPerOp != nil && b.BytesPerOp != nil && *base.BytesPerOp > 0 {
			change := 100 * (*b.BytesPerOp - *base.BytesPerOp) / *base.BytesPerOp
			if change > tol {
				regressions++
				fmt.Printf("WARNING: %s (procs=%d) bytes/op regressed %.1f%% (%.0f -> %.0f, tolerance %.0f%%)\n",
					b.Name, b.Procs, change, *base.BytesPerOp, *b.BytesPerOp, tol)
			}
		}
	}
	regressions += warnInvertedScaling(benches, baselineLedger.Cores)
	regressions += warnBudgetSpend(benches)
	regressions += warnScaleMemory(benches, baselineLedger, tol)
	regressions += warnAlertLatency(benches)
	if regressions == 0 {
		fmt.Printf("bench guard: no regression beyond %.0f%% vs %s\n", tol, prevPath)
	} else {
		fmt.Printf("bench guard: %d warning(s) — investigate before trusting the numbers (non-fatal)\n",
			regressions)
	}
	return regressions
}

// workersVariant splits "Benchmark.../workers=N" sub-benchmark names.
var workersVariant = regexp.MustCompile(`^(.+)/workers=(\d+)$`)

// warnInvertedScaling flags multi-worker sub-benchmarks that ran slower
// than their workers=1 sibling at GOMAXPROCS>1 — the signature of the
// engine paying coordination overhead without buying parallelism. At
// procs=1 the comparison is skipped: time-sharing one core cannot
// speed anything up, so parity there is expected, not a regression.
// baselineCores is the committed ledger's recorded effective core
// count: 1 means the CI runner is known single-core (a cgroup limit
// GOMAXPROCS doesn't see), so the whole check is suppressed — every
// "inverted" ratio there is the runner, not the engine.
func warnInvertedScaling(benches []Benchmark, baselineCores int) int {
	if baselineCores == 1 {
		// Not silent: the skipped check is itself a finding. Without
		// this line a clean guard run on a single-core ledger would
		// read as "scaling verified" when scaling was never measured.
		fmt.Println("note: scaling_unverified — baseline ledger was recorded on a single effective core (cores=1); inverted-scaling checks are skipped and no multi-worker speedup claim is implied")
		return 0
	}
	type key struct {
		prefix string
		procs  int
	}
	sequential := make(map[key]Benchmark)
	for _, b := range benches {
		if m := workersVariant.FindStringSubmatch(b.Name); m != nil && m[2] == "1" {
			sequential[key{m[1], b.Procs}] = b
		}
	}
	warnings := 0
	for _, b := range benches {
		m := workersVariant.FindStringSubmatch(b.Name)
		if m == nil || m[2] == "1" || b.Procs <= 1 {
			continue
		}
		base, ok := sequential[key{m[1], b.Procs}]
		if !ok || base.NsPerOp <= 0 {
			continue
		}
		if b.NsPerOp > base.NsPerOp {
			warnings++
			fmt.Printf("WARNING: %s (procs=%d) is slower than %s/workers=1 (%.0f > %.0f ns/op) — parallel engine scaling is inverted\n",
				b.Name, b.Procs, m[1], b.NsPerOp, base.NsPerOp)
		}
	}
	return warnings
}

// budgetVariant splits "Benchmark.../budget=N" sub-benchmark names.
var budgetVariant = regexp.MustCompile(`^(.+)/budget=(\d+)$`)

// warnBudgetSpend checks the probe-budget scheduler's spend contract
// within the current run: a budget=50 sub-benchmark must send at most
// 55% of its budget=100 sibling's probes_sent (5 points of slack for
// the full-rate exploration window before the scheduler's first
// recompute). Warn-only like the rest of the guard — but unlike ns/op
// this metric is deterministic, so a warning here is a real contract
// break, not noise.
func warnBudgetSpend(benches []Benchmark) int {
	type key struct {
		prefix string
		procs  int
	}
	full := make(map[key]float64)
	for _, b := range benches {
		if m := budgetVariant.FindStringSubmatch(b.Name); m != nil && m[2] == "100" {
			if sent, ok := b.Metrics["probes_sent"]; ok {
				full[key{m[1], b.Procs}] = sent
			}
		}
	}
	warnings := 0
	for _, b := range benches {
		m := budgetVariant.FindStringSubmatch(b.Name)
		if m == nil || m[2] != "50" {
			continue
		}
		sent, ok := b.Metrics["probes_sent"]
		if !ok {
			continue
		}
		base, ok := full[key{m[1], b.Procs}]
		if !ok || base <= 0 {
			continue
		}
		if frac := sent / base; frac > 0.55 {
			warnings++
			fmt.Printf("WARNING: %s (procs=%d) sent %.1f%% of %s/budget=100's probes (want ≤55%%) — the budget scheduler is overspending\n",
				b.Name, b.Procs, 100*frac, m[1])
		}
	}
	return warnings
}

// warnAlertLatency sanity-checks the streaming observatory's measured
// detection lag (BenchmarkAlertLatency's alert_latency_p50_s /
// alert_latency_p95_s): both quantiles must be positive, inside the
// experiment's one-week campaign window, and ordered p95 ≥ p50.
// Warn-only like the rest of the guard, but these metrics come from a
// deterministic virtual-time campaign, so a warning is a real contract
// break — the streaming detector stopped noticing planted congestion
// in time — not noise.
func warnAlertLatency(benches []Benchmark) int {
	const week = 7 * 24 * 3600 // campaign window, virtual seconds
	warnings := 0
	for _, b := range benches {
		p50, ok50 := b.Metrics["alert_latency_p50_s"]
		p95, ok95 := b.Metrics["alert_latency_p95_s"]
		if !ok50 && !ok95 {
			continue
		}
		if !ok50 || !ok95 {
			warnings++
			fmt.Printf("WARNING: %s (procs=%d) reports only one of alert_latency_p50_s/p95_s\n", b.Name, b.Procs)
			continue
		}
		if p50 <= 0 || p50 > week || p95 > week {
			warnings++
			fmt.Printf("WARNING: %s (procs=%d) alert latency outside (0, one week]: p50=%.0fs p95=%.0fs — planted congestion is not being alerted in-window\n",
				b.Name, b.Procs, p50, p95)
		}
		if p95 < p50 {
			warnings++
			fmt.Printf("WARNING: %s (procs=%d) alert latency quantiles inverted: p95=%.0fs < p50=%.0fs\n",
				b.Name, b.Procs, p95, p50)
		}
		if frac, ok := b.Metrics["alerted_fraction"]; ok && frac < 0.5 {
			warnings++
			fmt.Printf("WARNING: %s (procs=%d) alerted only %.0f%% of planted congested links (want ≥50%%)\n",
				b.Name, b.Procs, 100*frac)
		}
	}
	return warnings
}

// scaleVariant splits "Benchmark.../scale=N" sub-benchmark names.
var scaleVariant = regexp.MustCompile(`^(.+)/scale=([0-9.]+)$`)

// warnScaleMemory guards the sharded engine's resident-memory bound —
// warn-only like the rest of the guard, but the bytes_per_link metric
// is deterministic, so a warning is a real contract break, not noise.
// Two claims: within the current run, a scale>1 sub-benchmark must
// hold bytes_per_link at or below its scale=1 sibling (the sharded
// layout's bound against the paper-world figure); and against the
// committed ledger, bytes_per_link must not grow beyond tol percent
// at any scale.
func warnScaleMemory(benches []Benchmark, baseline Ledger, tol float64) int {
	type key struct {
		name  string
		procs int
	}
	base := make(map[key]float64)
	for _, b := range baseline.Benchmarks {
		if v, ok := b.Metrics["bytes_per_link"]; ok {
			base[key{b.Name, b.Procs}] = v
		}
	}
	unit := make(map[key]float64) // scale=1 sibling per prefix
	for _, b := range benches {
		if m := scaleVariant.FindStringSubmatch(b.Name); m != nil && m[2] == "1" {
			if v, ok := b.Metrics["bytes_per_link"]; ok {
				unit[key{m[1], b.Procs}] = v
			}
		}
	}
	warnings := 0
	for _, b := range benches {
		v, ok := b.Metrics["bytes_per_link"]
		if !ok {
			continue
		}
		if m := scaleVariant.FindStringSubmatch(b.Name); m != nil && m[2] != "1" {
			if ref, ok := unit[key{m[1], b.Procs}]; ok && ref > 0 && v > ref {
				warnings++
				fmt.Printf("WARNING: %s (procs=%d) holds %.0f resident bytes/link, above %s/scale=1's %.0f — the per-shard memory bound is broken\n",
					b.Name, b.Procs, v, m[1], ref)
			}
		}
		if ref, ok := base[key{b.Name, b.Procs}]; ok && ref > 0 {
			if change := 100 * (v - ref) / ref; change > tol {
				warnings++
				fmt.Printf("WARNING: %s (procs=%d) bytes_per_link regressed %.1f%% (%.0f -> %.0f, tolerance %.0f%%)\n",
					b.Name, b.Procs, change, ref, v, tol)
			}
		}
	}
	return warnings
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
