package main

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

const sampleRaw = `goos: linux
goarch: amd64
pkg: afrixp
BenchmarkFullCampaign                  3         424646477 ns/op        45747189 B/op     929197 allocs/op
BenchmarkCampaignParallel/workers=1-4  3         408039389 ns/op        45747178 B/op     929197 allocs/op
BenchmarkCampaignParallel/workers=4-4  3         108039389 ns/op        45747178 B/op     929197 allocs/op
BenchmarkTSLPSamplingThroughput        4319487   283.9 ns/op            0 B/op            0 allocs/op
BenchmarkChunkCompression              38        30169853 ns/op         5.265 compression_x  425984 B/op  208 allocs/op
PASS
ok      afrixp  12.3s
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseRaw(t *testing.T) {
	benches, err := parseRaw(writeTemp(t, "raw.txt", sampleRaw))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5", len(benches))
	}
	b := benches[1]
	if b.Name != "BenchmarkCampaignParallel/workers=1" || b.Procs != 4 {
		t.Fatalf("cpu suffix not split: %+v", b)
	}
	if b.NsPerOp != 408039389 || b.BytesPerOp == nil || *b.BytesPerOp != 45747178 {
		t.Fatalf("values misparsed: %+v", b)
	}
	if benches[0].Procs != 1 {
		t.Fatalf("suffix-free name must mean procs=1: %+v", benches[0])
	}
	if benches[3].NsPerOp != 283.9 {
		t.Fatalf("fractional ns/op misparsed: %+v", benches[3])
	}
	if benches[4].Metrics["compression_x"] != 5.265 {
		t.Fatalf("custom metric unit misparsed: %+v", benches[4])
	}
	if benches[4].BytesPerOp == nil || *benches[4].BytesPerOp != 425984 {
		t.Fatalf("standard units after a custom metric misparsed: %+v", benches[4])
	}
}

func TestCompressionRatioLifted(t *testing.T) {
	benches, err := parseRaw(writeTemp(t, "raw.txt", sampleRaw))
	if err != nil {
		t.Fatal(err)
	}
	if r := compressionRatio(benches); r != 5.265 {
		t.Fatalf("compressionRatio = %v, want 5.265", r)
	}
	if r := compressionRatio(benches[:4]); r != 0 {
		t.Fatalf("compressionRatio without the bench = %v, want 0", r)
	}
}

func TestGuardWarnsOnBytesRegression(t *testing.T) {
	// ns/op and allocs/op are flat but bytes/op is ~9x the baseline:
	// exactly one warning, from the bytes guard.
	baseline := `{
  "date": "2026-01-01T00:00:00Z", "go": "go1.24.0",
  "benchmarks": [
    {"name": "BenchmarkFullCampaign", "procs": 1, "iterations": 3, "ns_per_op": 424646477, "bytes_per_op": 5000000, "allocs_per_op": 929197}
  ]
}`
	benches, err := parseRaw(writeTemp(t, "raw.txt", sampleRaw))
	if err != nil {
		t.Fatal(err)
	}
	if got := runGuard(benches, writeTemp(t, "base.json", baseline), 25); got != 1 {
		t.Fatalf("runGuard warned %d times, want 1 (bytes/op regression)", got)
	}
}

func TestParseRawRejectsEmpty(t *testing.T) {
	if _, err := parseRaw(writeTemp(t, "empty.txt", "PASS\n")); err == nil {
		t.Fatal("expected error for a log without benchmark lines")
	}
}

func TestReadLedgerNormalizesProcs(t *testing.T) {
	// Rows written before the procs field carry 0; they must come back
	// as procs 1 at every level (latest run and history), so record
	// mode stops propagating 0-rows and guard matches old baselines.
	ledger := `{
  "date": "2026-01-02T00:00:00Z", "go": "go1.24.0",
  "benchmarks": [
    {"name": "BenchmarkFullCampaign", "procs": 0, "iterations": 3, "ns_per_op": 1},
    {"name": "BenchmarkTSLPSamplingThroughput", "procs": 4, "iterations": 3, "ns_per_op": 1}
  ],
  "history": [
    {"date": "2026-01-01T00:00:00Z", "go": "go1.24.0",
     "benchmarks": [{"name": "BenchmarkFullCampaign", "iterations": 3, "ns_per_op": 1}]}
  ]
}`
	l, err := readLedger(writeTemp(t, "ledger.json", ledger))
	if err != nil {
		t.Fatal(err)
	}
	if l.Benchmarks[0].Procs != 1 {
		t.Fatalf("latest-run procs 0 not backfilled: %+v", l.Benchmarks[0])
	}
	if l.Benchmarks[1].Procs != 4 {
		t.Fatalf("explicit procs clobbered: %+v", l.Benchmarks[1])
	}
	if l.History[0].Benchmarks[0].Procs != 1 {
		t.Fatalf("history procs 0 not backfilled: %+v", l.History[0].Benchmarks[0])
	}
}

func TestGuardWarnsOnAllocRegression(t *testing.T) {
	// ns/op is flat but allocs/op is ~9× the baseline: exactly one
	// warning, from the allocs guard.
	baseline := `{
  "date": "2026-01-01T00:00:00Z", "go": "go1.24.0",
  "benchmarks": [
    {"name": "BenchmarkFullCampaign", "procs": 1, "iterations": 3, "ns_per_op": 424646477, "allocs_per_op": 100000}
  ]
}`
	benches, err := parseRaw(writeTemp(t, "raw.txt", sampleRaw))
	if err != nil {
		t.Fatal(err)
	}
	if got := runGuard(benches, writeTemp(t, "base.json", baseline), 25); got != 1 {
		t.Fatalf("runGuard warned %d times, want 1 (allocs/op regression)", got)
	}
}

func TestWarnInvertedScaling(t *testing.T) {
	mk := func(name string, procs int, ns float64) Benchmark {
		return Benchmark{Name: name, Procs: procs, NsPerOp: ns}
	}
	// workers=4 slower than workers=1 at procs=4: one warning.
	inverted := []Benchmark{
		mk("BenchmarkCampaignParallel/workers=1", 4, 100),
		mk("BenchmarkCampaignParallel/workers=4", 4, 150),
	}
	if got := warnInvertedScaling(inverted, 4); got != 1 {
		t.Fatalf("inverted scaling at procs=4: %d warnings, want 1", got)
	}
	// Healthy scaling: no warning.
	got := warnInvertedScaling([]Benchmark{
		mk("BenchmarkCampaignParallel/workers=1", 4, 100),
		mk("BenchmarkCampaignParallel/workers=4", 4, 40),
	}, 4)
	if got != 0 {
		t.Fatalf("healthy scaling: %d warnings, want 0", got)
	}
	// procs=1 parity is expected (single-core runner), not a warning.
	got = warnInvertedScaling([]Benchmark{
		mk("BenchmarkCampaignParallel/workers=1", 1, 100),
		mk("BenchmarkCampaignParallel/workers=4", 1, 110),
	}, 0)
	if got != 0 {
		t.Fatalf("procs=1 parity: %d warnings, want 0", got)
	}
	// A ledger recorded on a known single-core runner (cores=1)
	// suppresses the whole check, even when GOMAXPROCS says 4: the
	// cgroup limit, not the engine, inverts the ratio there.
	if got := warnInvertedScaling(inverted, 1); got != 0 {
		t.Fatalf("cores=1 baseline: %d warnings, want 0 (check suppressed)", got)
	}
	// An unrecorded core count (pre-field ledger, cores=0) keeps the
	// check live — suppression needs positive evidence.
	if got := warnInvertedScaling(inverted, 0); got != 1 {
		t.Fatalf("cores=0 baseline: %d warnings, want 1 (check stays live)", got)
	}
}

func TestGuardSuppressesInvertedScalingOnSingleCoreLedger(t *testing.T) {
	// End-to-end through runGuard: the raw log shows workers=4 slower
	// than workers=1 at procs=4, but the committed baseline says the
	// runner has one effective core — no warning.
	raw := `goos: linux
BenchmarkCampaignParallel/workers=1-4  3  100000000 ns/op
BenchmarkCampaignParallel/workers=4-4  3  150000000 ns/op
PASS
`
	baseline := `{
  "date": "2026-01-01T00:00:00Z", "go": "go1.24.0", "cores": 1,
  "benchmarks": [
    {"name": "BenchmarkCampaignParallel/workers=1", "procs": 4, "iterations": 3, "ns_per_op": 100000000},
    {"name": "BenchmarkCampaignParallel/workers=4", "procs": 4, "iterations": 3, "ns_per_op": 150000000}
  ]
}`
	benches, err := parseRaw(writeTemp(t, "raw.txt", raw))
	if err != nil {
		t.Fatal(err)
	}
	if got := runGuard(benches, writeTemp(t, "base.json", baseline), 25); got != 0 {
		t.Fatalf("runGuard warned %d times on a cores=1 ledger, want 0", got)
	}
}

func TestWarnBudgetSpend(t *testing.T) {
	mk := func(pct int, sent float64) Benchmark {
		return Benchmark{
			Name:    "BenchmarkBudgetCampaign/budget=" + strconv.Itoa(pct),
			Procs:   1,
			NsPerOp: 1,
			Metrics: map[string]float64{"probes_sent": sent},
		}
	}
	// 50% budget sending 31% of full-rate probes: within contract.
	if got := warnBudgetSpend([]Benchmark{mk(100, 179424), mk(50, 55979)}); got != 0 {
		t.Fatalf("compliant spend: %d warnings, want 0", got)
	}
	// 50% budget sending 80%: the scheduler is overspending.
	if got := warnBudgetSpend([]Benchmark{mk(100, 100000), mk(50, 80000)}); got != 1 {
		t.Fatalf("overspend: %d warnings, want 1", got)
	}
	// No budget=100 sibling (partial -bench filter): nothing to compare.
	if got := warnBudgetSpend([]Benchmark{mk(50, 80000)}); got != 0 {
		t.Fatalf("missing full-rate sibling: %d warnings, want 0", got)
	}
	// probes_sent metric absent: skipped, not a crash.
	noMetric := Benchmark{Name: "BenchmarkBudgetCampaign/budget=50", Procs: 1, NsPerOp: 1}
	if got := warnBudgetSpend([]Benchmark{mk(100, 100000), noMetric}); got != 0 {
		t.Fatalf("metric-free sub-benchmark: %d warnings, want 0", got)
	}
}

func TestWarnAlertLatency(t *testing.T) {
	mk := func(p50, p95, frac float64) Benchmark {
		return Benchmark{
			Name:    "BenchmarkAlertLatency/budget=100",
			Procs:   1,
			NsPerOp: 1,
			Metrics: map[string]float64{
				"alert_latency_p50_s": p50,
				"alert_latency_p95_s": p95,
				"alerted_fraction":    frac,
			},
		}
	}
	// Healthy: p50 14h, p95 18h, everything alerted.
	if got := warnAlertLatency([]Benchmark{mk(50400, 64710, 1)}); got != 0 {
		t.Fatalf("healthy latency: %d warnings, want 0", got)
	}
	// Outside the campaign week: the detector stopped noticing in time.
	if got := warnAlertLatency([]Benchmark{mk(50400, 8*24*3600, 1)}); got != 1 {
		t.Fatalf("p95 past the window: %d warnings, want 1", got)
	}
	// Inverted quantiles.
	if got := warnAlertLatency([]Benchmark{mk(64710, 50400, 1)}); got != 1 {
		t.Fatalf("inverted quantiles: %d warnings, want 1", got)
	}
	// Most planted congestion missed.
	if got := warnAlertLatency([]Benchmark{mk(50400, 64710, 0.3)}); got != 1 {
		t.Fatalf("low alerted fraction: %d warnings, want 1", got)
	}
	// Half a metric pair is itself a finding; no metrics is a skip.
	half := Benchmark{Name: "BenchmarkAlertLatency/budget=50", Procs: 1, NsPerOp: 1,
		Metrics: map[string]float64{"alert_latency_p50_s": 50400}}
	if got := warnAlertLatency([]Benchmark{half}); got != 1 {
		t.Fatalf("lone p50: %d warnings, want 1", got)
	}
	if got := warnAlertLatency([]Benchmark{{Name: "BenchmarkFullCampaign", Procs: 1, NsPerOp: 1}}); got != 0 {
		t.Fatalf("metric-free benchmark: %d warnings, want 0", got)
	}
}

func TestAddNoteDeduplicates(t *testing.T) {
	// Regression: the single-core caveat was stamped with a plain
	// append, so a note already present (or stamped twice) duplicated
	// in the committed ledger row. addNote must be idempotent and
	// leave unrelated notes alone.
	notes := addNote(nil, "scaling_unverified")
	notes = addNote(notes, "scaling_unverified")
	if len(notes) != 1 || notes[0] != "scaling_unverified" {
		t.Fatalf("addNote duplicated: %v", notes)
	}
	notes = addNote(notes, "other_caveat")
	notes = addNote(notes, "scaling_unverified")
	if len(notes) != 2 {
		t.Fatalf("addNote with mixed notes: %v, want 2 distinct entries", notes)
	}
}

func TestGuardMatchesByNameAndProcs(t *testing.T) {
	// The guard is warn-only; here we only pin that it does not crash
	// on a baseline missing the procs field (pre-field ledgers) and on
	// benchmarks absent from the baseline.
	baseline := `{
  "date": "2026-01-01T00:00:00Z", "go": "go1.24.0",
  "benchmarks": [
    {"name": "BenchmarkFullCampaign", "iterations": 3, "ns_per_op": 400000000, "bytes_per_op": 1, "allocs_per_op": 1}
  ]
}`
	benches, err := parseRaw(writeTemp(t, "raw.txt", sampleRaw))
	if err != nil {
		t.Fatal(err)
	}
	runGuard(benches, writeTemp(t, "base.json", baseline), 25)
}

func TestWarnScaleMemory(t *testing.T) {
	mk := func(scale string, bpl float64) Benchmark {
		return Benchmark{Name: "BenchmarkScaleCampaign/scale=" + scale, Procs: 4, NsPerOp: 1,
			Metrics: map[string]float64{"bytes_per_link": bpl}}
	}
	// Sharded 100x at or below the 1x figure: the memory bound holds.
	if got := warnScaleMemory([]Benchmark{mk("1", 11000), mk("100", 7000)}, Ledger{}, 25); got != 0 {
		t.Fatalf("bound holds: %d warnings, want 0", got)
	}
	// Above the 1x figure: the per-shard bound is broken.
	if got := warnScaleMemory([]Benchmark{mk("1", 11000), mk("100", 12000)}, Ledger{}, 25); got != 1 {
		t.Fatalf("bound broken: %d warnings, want 1", got)
	}
	// Growth vs the committed ledger beyond tolerance warns too.
	baseline := Ledger{Run: Run{Benchmarks: []Benchmark{mk("100", 5000)}}}
	if got := warnScaleMemory([]Benchmark{mk("100", 7000)}, baseline, 25); got != 1 {
		t.Fatalf("ledger regression: %d warnings, want 1", got)
	}
	if got := warnScaleMemory([]Benchmark{mk("100", 5100)}, baseline, 25); got != 0 {
		t.Fatalf("within tolerance: %d warnings, want 0", got)
	}
	// No scale=1 sibling and no baseline row (partial -bench filter):
	// nothing to compare, not a crash.
	if got := warnScaleMemory([]Benchmark{mk("100", 9000)}, Ledger{}, 25); got != 0 {
		t.Fatalf("missing siblings: %d warnings, want 0", got)
	}
}
