#!/usr/bin/env bash
# Tier-1 gate: everything a change must pass before merging.
#
#   vet        static checks
#   build      every package compiles
#   test -race full suite under the race detector — the parallel
#              campaign engine's determinism tests double as its race
#              exerciser (8 workers over shared world state)
#   bench 1x   smoke-runs every benchmark once so they cannot bit-rot
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== bench smoke (1 iteration each) =="
go test -run '^$' -bench . -benchtime 1x .

echo "CI OK"
