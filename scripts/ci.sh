#!/usr/bin/env bash
# Tier-1 gate: everything a change must pass before merging.
#
#   vet        static checks
#   build      every package compiles
#   test -race full suite under the race detector — the parallel
#              campaign engine's determinism tests double as its race
#              exerciser (8 workers over shared world state)
#   bench 1x   smoke-runs every benchmark once so they cannot bit-rot,
#              then compares ns/op against the committed
#              BENCH_campaign.json (warn-only: smoke timings are noisy)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== go test -race, forced multi-proc (batched worker pool) =="
# The full-suite race pass above runs at the runner's GOMAXPROCS, which
# is 1 on single-core CI — goroutines then interleave only at yield
# points, hiding scheduling orders a real multi-core box would explore.
# Re-run the engine packages (persistent worker pool, frozen-frontier
# queue observation) with parallelism forced on so the Workers>1
# determinism tests double as a genuine concurrent exerciser.
GOMAXPROCS=4 go test -race -count=1 ./internal/experiments/ ./internal/netsim/

echo "== fault determinism smoke (workers 1 vs 8 under race) =="
# The fault-injected campaign must stay bit-identical across worker
# counts and batch sizes; run its equivalence test with real
# parallelism so the outage gate and ICMP-silence schedules race.
# The telemetry equivalence test rides along: its counters are read
# concurrently by design, so the race detector must see a telemetry-on
# campaign at Workers>1.
GOMAXPROCS=4 go test -race -count=1 -run 'TestFaultCampaign|TestTelemetryCampaign' ./internal/experiments/

echo "== budget determinism smoke (workers x batch under race) =="
# The probe-budget scheduler must keep campaigns bit-identical per
# (budget, seed) across the Workers x BatchSteps matrix; run the
# equivalence tests with real parallelism so the skip gate, the
# streaming CUSUM taps, and the barrier recomputes race for real.
GOMAXPROCS=4 go test -race -count=1 -run 'TestBudgetCampaignBitIdentical|TestBudgetAwkwardBatchSizesBitIdentical' ./internal/experiments/

echo "== chunked-backing determinism smoke (flat vs compressed under race) =="
# The columnar tschunk backing must be invisible to the numbers: the
# {flat, chunked} x workers x batch-size matrix runs raced at real
# parallelism so block sealing and the streamed loss grid race too.
GOMAXPROCS=4 go test -race -count=1 -run 'TestChunkedCampaign' ./internal/experiments/

echo "== continent-scale smoke (10x generated world, raced) =="
# A 10x generated world (worldgen, ~15 IXPs / ~10^4 links) runs the
# sharded campaign raced with real parallelism: generator determinism
# across GOMAXPROCS, shard-strided probing into shared arenas, and the
# planted-ground-truth recall round-trip all race for real. The 100x
# acceptance matrix skips under the race detector; this is its raced
# stand-in.
GOMAXPROCS=4 go test -race -count=1 \
  -run 'TestGeneratedWorldRecall|TestShardedCampaignBitIdentical|TestShardedMemoryBounded' \
  ./internal/experiments/
GOMAXPROCS=4 go test -race -count=1 ./internal/worldgen/

echo "== streaming observatory determinism smoke (raced) =="
# The observatory rides the campaign read-side: its alert log and
# end-of-campaign verdicts must stay bit-identical across the
# Workers x BatchSteps x Shards matrix (the matrix test self-reduces
# to its far corners under the race detector), the SSE hub must
# survive 1000 concurrent watchers against a publishing feeder, and
# /metrics scrapes must race a live publisher cleanly.
GOMAXPROCS=4 go test -race -count=1 -run 'TestObservatoryCampaignMatrix' ./internal/experiments/
GOMAXPROCS=4 go test -race -count=1 ./internal/observatory/
GOMAXPROCS=4 go test -race -count=1 -run 'TestServeMounts|TestServeScrapeWhilePublishing' ./internal/telemetry/

echo "== /metrics + observatory endpoint smoke =="
# Start a short observatory run with the live telemetry endpoint and a
# linger window, poll until /metrics answers, and assert the snapshot
# carries the instrumented keys end to end (engine counters, probe
# counters, schema tag). Exercises the full wiring: flag parsing, the
# HTTP server, the barrier republication, and the deferred shutdown.
# The same port mounts the streaming observatory API; a background
# curl holds /stream open from before the first batch barrier so the
# smoke can assert a live SSE barrier event, then the paged /links
# table, a /links/{id} detail view, and the /alerts cursor log are
# spot-checked for the observatory schema.
METRICS_ADDR="127.0.0.1:18573"
OBS_OUT="$(mktemp -d)"
STREAM_OUT="$(mktemp)"
go run ./cmd/observatory -out "$OBS_OUT" -days 2 -scale 0.05 -no-loss \
  -metrics-addr "$METRICS_ADDR" -metrics-linger 30s >/dev/null 2>&1 &
OBS_PID=$!
# Hold the SSE stream open while the campaign runs: retry until the
# server accepts (it starts before the first barrier), then collect
# events until the main flow has seen what it needs. On a fast runner
# the short campaign can finish before the first successful connect;
# the -metrics-linger window then republishes the final barrier once
# a second, so a barrier event arrives either way.
(
  for _ in $(seq 1 120); do
    curl -sN --max-time 60 "http://$METRICS_ADDR/stream" >>"$STREAM_OUT" 2>/dev/null || true
    [ -s "$STREAM_OUT" ] && break
    sleep 0.5
  done
) &
STREAM_PID=$!
# Scoped cleanup: the bench section below installs its own EXIT trap
# once this block has already torn everything down inline.
trap 'kill "$OBS_PID" "$STREAM_PID" 2>/dev/null || true; rm -rf "$OBS_OUT" "$STREAM_OUT"' EXIT
METRICS_JSON=""
for _ in $(seq 1 60); do
  if METRICS_JSON="$(curl -fsS "http://$METRICS_ADDR/metrics" 2>/dev/null)" \
     && [ -n "$METRICS_JSON" ]; then
    break
  fi
  sleep 1
done
[ -n "$METRICS_JSON" ] || { echo "FAIL: /metrics never answered"; exit 1; }
for key in '"schema": "afrixp-telemetry/1"' '"probes"' '"batches_opened"' '"sweeps"'; do
  echo "$METRICS_JSON" | grep -qF "$key" \
    || { echo "FAIL: /metrics snapshot missing $key"; exit 1; }
done

# SSE: the hello handshake plus at least one barrier event raised
# while virtual time was still advancing.
for _ in $(seq 1 120); do
  if grep -q '^event: barrier' "$STREAM_OUT" 2>/dev/null; then break; fi
  sleep 0.5
done
grep -q '^event: hello' "$STREAM_OUT" \
  || { echo "FAIL: /stream sent no hello event"; exit 1; }
grep -qF '"schema":"afrixp-observatory/1"' "$STREAM_OUT" \
  || { echo "FAIL: /stream hello missing observatory schema"; exit 1; }
grep -q '^event: barrier' "$STREAM_OUT" \
  || { echo "FAIL: /stream produced no live barrier event"; exit 1; }
kill "$STREAM_PID" 2>/dev/null || true
wait "$STREAM_PID" 2>/dev/null || true

# Paged status table: schema tag and a non-empty watched-link set.
LINKS_JSON="$(curl -fsS "http://$METRICS_ADDR/links?per=5")" \
  || { echo "FAIL: /links did not answer"; exit 1; }
echo "$LINKS_JSON" | grep -qF '"schema": "afrixp-observatory/1"' \
  || { echo "FAIL: /links missing observatory schema"; exit 1; }
if echo "$LINKS_JSON" | grep -qE '"total": 0,?$'; then
  echo "FAIL: /links reports zero watched links"; exit 1
fi

# Detail view for the first listed link id.
LINK_ID="$(echo "$LINKS_JSON" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p' | head -n 1)"
[ -n "$LINK_ID" ] || { echo "FAIL: /links page carried no link ids"; exit 1; }
DETAIL_JSON="$(curl -fsS "http://$METRICS_ADDR/links/$LINK_ID")" \
  || { echo "FAIL: /links/$LINK_ID did not answer"; exit 1; }
for key in '"schema": "afrixp-observatory/1"' '"diurnal"' '"profile_ms"'; do
  echo "$DETAIL_JSON" | grep -qF "$key" \
    || { echo "FAIL: /links/$LINK_ID missing $key"; exit 1; }
done

# Alert log: schema tag and a resumable cursor.
ALERTS_JSON="$(curl -fsS "http://$METRICS_ADDR/alerts?limit=5")" \
  || { echo "FAIL: /alerts did not answer"; exit 1; }
for key in '"schema": "afrixp-observatory/1"' '"next"' '"alerts"'; do
  echo "$ALERTS_JSON" | grep -qF "$key" \
    || { echo "FAIL: /alerts missing $key"; exit 1; }
done

kill "$OBS_PID" 2>/dev/null || true
wait "$OBS_PID" 2>/dev/null || true
rm -rf "$OBS_OUT" "$STREAM_OUT"
echo "metrics + observatory endpoints OK"

echo "== checkpoint-restart smoke (kill -9 mid-campaign, resume, byte-identical) =="
# An uninterrupted faulted+budgeted campaign prints its result digest;
# the same campaign is then run with barrier checkpointing, killed with
# SIGKILL once the first snapshot lands (a fast runner may finish
# first — then the kill is a no-op and resume still replays from the
# newest barrier), and resumed. The resumed digest must match the
# uninterrupted one bit for bit.
CKPT_TMP="$(mktemp -d)"
trap 'rm -rf "$CKPT_TMP"' EXIT
go build -o "$CKPT_TMP/repro" ./cmd/repro
REPRO_ARGS=(-days 4 -scale 0.05 -no-loss -faults -budget 0.5 -budget-seed 1 -quiet -result-sha)
REF_SHA="$(GOMAXPROCS=4 "$CKPT_TMP/repro" "${REPRO_ARGS[@]}" | grep '^result sha256:')"
[ -n "$REF_SHA" ] || { echo "FAIL: reference run printed no result digest"; exit 1; }
GOMAXPROCS=4 "$CKPT_TMP/repro" "${REPRO_ARGS[@]}" \
  -checkpoint-dir "$CKPT_TMP/snaps" -checkpoint-every 12h >/dev/null 2>&1 &
CKPT_PID=$!
for _ in $(seq 1 240); do
  if ls "$CKPT_TMP/snaps"/ckpt-*.bin >/dev/null 2>&1; then break; fi
  kill -0 "$CKPT_PID" 2>/dev/null || break
  sleep 0.25
done
kill -9 "$CKPT_PID" 2>/dev/null || true
wait "$CKPT_PID" 2>/dev/null || true
ls "$CKPT_TMP/snaps"/ckpt-*.bin >/dev/null 2>&1 \
  || { echo "FAIL: no checkpoint written before the kill"; exit 1; }
RES_SHA="$(GOMAXPROCS=4 "$CKPT_TMP/repro" "${REPRO_ARGS[@]}" \
  -checkpoint-dir "$CKPT_TMP/snaps" -resume | grep '^result sha256:')"
[ "$REF_SHA" = "$RES_SHA" ] \
  || { echo "FAIL: resumed run differs from uninterrupted: '$RES_SHA' vs '$REF_SHA'"; exit 1; }
rm -rf "$CKPT_TMP"
echo "checkpoint restart OK (${REF_SHA#result sha256: })"

echo "== bench smoke (1 iteration each) =="
SMOKE="$(mktemp)"
trap 'rm -f "$SMOKE"' EXIT
go test -run '^$' -bench . -benchtime 1x . | tee "$SMOKE"

echo "== bench regression guard (warn-only) =="
# Single-iteration timings are noisy, so a regression here warns but
# never fails CI; scripts/bench.sh records the authoritative numbers.
go run ./scripts/benchjson -guard -raw "$SMOKE" -prev BENCH_campaign.json -tolerance 25 || true
echo "runner cores: $(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"

echo "CI OK"
