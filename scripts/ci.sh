#!/usr/bin/env bash
# Tier-1 gate: everything a change must pass before merging.
#
#   vet        static checks
#   build      every package compiles
#   test -race full suite under the race detector — the parallel
#              campaign engine's determinism tests double as its race
#              exerciser (8 workers over shared world state)
#   bench 1x   smoke-runs every benchmark once so they cannot bit-rot,
#              then compares ns/op against the committed
#              BENCH_campaign.json (warn-only: smoke timings are noisy)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== go test -race, forced multi-proc (batched worker pool) =="
# The full-suite race pass above runs at the runner's GOMAXPROCS, which
# is 1 on single-core CI — goroutines then interleave only at yield
# points, hiding scheduling orders a real multi-core box would explore.
# Re-run the engine packages (persistent worker pool, frozen-frontier
# queue observation) with parallelism forced on so the Workers>1
# determinism tests double as a genuine concurrent exerciser.
GOMAXPROCS=4 go test -race -count=1 ./internal/experiments/ ./internal/netsim/

echo "== fault determinism smoke (workers 1 vs 8 under race) =="
# The fault-injected campaign must stay bit-identical across worker
# counts and batch sizes; run its equivalence test with real
# parallelism so the outage gate and ICMP-silence schedules race.
GOMAXPROCS=4 go test -race -count=1 -run 'TestFaultCampaign' ./internal/experiments/

echo "== bench smoke (1 iteration each) =="
SMOKE="$(mktemp)"
trap 'rm -f "$SMOKE"' EXIT
go test -run '^$' -bench . -benchtime 1x . | tee "$SMOKE"

echo "== bench regression guard (warn-only) =="
# Single-iteration timings are noisy, so a regression here warns but
# never fails CI; scripts/bench.sh records the authoritative numbers.
go run ./scripts/benchjson -guard -raw "$SMOKE" -prev BENCH_campaign.json -tolerance 25 || true

echo "CI OK"
