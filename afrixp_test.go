package afrixp

import (
	"bytes"
	"testing"
	"time"
)

// The public API is a thin facade over heavily-tested internal
// packages; these tests pin the facade behavior end to end.

func TestNewWorldAndVPs(t *testing.T) {
	w := NewWorld(WorldOptions{Seed: 1, Scale: 0.1})
	if len(w.VPs) != 6 {
		t.Fatalf("VPs = %d", len(w.VPs))
	}
	vp, ok := w.VPByID("VP1")
	if !ok || vp.IXP != "GIXA" {
		t.Fatalf("VP1: %+v", vp)
	}
	if _, ok := vp.CaseLinks["GIXA-GHANATEL"]; !ok {
		t.Fatal("case link missing")
	}
}

func TestDateHelpers(t *testing.T) {
	d := Date(2016, time.August, 6)
	if d.Wall().Format("2006-01-02") != "2016-08-06" {
		t.Fatalf("Date = %v", d.Wall())
	}
	if !Epoch().Equal(Date(2016, time.February, 22).Wall()) {
		t.Fatal("Epoch mismatch")
	}
	if CampaignEnd() <= d {
		t.Fatal("campaign end before August 2016")
	}
}

func TestProbeAndAnalyzeEndToEnd(t *testing.T) {
	w := NewWorld(WorldOptions{Seed: 2, Scale: 0.1})
	vp, _ := w.VPByID("VP4")
	p := NewProber(w, vp)
	ts, err := p.NewTSLP(vp.CaseLinks["QCELL-NETPAGE"])
	if err != nil {
		t.Fatal(err)
	}
	campaign := Interval{
		Start: Date(2016, time.March, 7),
		End:   Date(2016, time.March, 21),
	}
	col := NewCollector(ts, CollectorConfig{Campaign: campaign})
	campaign.Steps(5*time.Minute, func(tm Time) {
		w.AdvanceTo(tm)
		col.Round(tm)
	})
	v := AnalyzeLink(col.Series(), DefaultAnalysisConfig())
	if !v.Congested {
		t.Fatalf("NETPAGE congestion not detected via the facade: %+v", v)
	}
}

func TestBorderMapFacade(t *testing.T) {
	w := NewWorld(WorldOptions{Seed: 3, Scale: 0.1})
	vp, _ := w.VPByID("VP2")
	res, err := BorderMap(w, vp, 0)
	if err != nil {
		t.Fatal(err)
	}
	frac, missed, _ := ValidateNeighbors(res, w.TruthNeighbors(vp))
	if frac < 0.9 {
		t.Fatalf("coverage %.2f, missed %v", frac, missed)
	}
}

func TestRunCampaignFacade(t *testing.T) {
	c := RunCampaign(CampaignConfig{
		Seed: 4, Scale: 0.08, Days: 10, StartOffsetDays: 14, DisableLoss: true,
	})
	if len(c.VPs) != 6 {
		t.Fatalf("VPs = %d", len(c.VPs))
	}
	var buf bytes.Buffer
	if err := Table1Report(c).Render(&buf); err != nil || buf.Len() == 0 {
		t.Fatal("Table1Report failed")
	}
	buf.Reset()
	if err := Table2Report(c).Render(&buf); err != nil || buf.Len() == 0 {
		t.Fatal("Table2Report failed")
	}
	if BdrmapAccuracy(c) < 0.85 {
		t.Fatalf("accuracy = %v", BdrmapAccuracy(c))
	}
	if _, frac := Headline(c); frac < 0 || frac > 0.5 {
		t.Fatalf("headline fraction = %v", frac)
	}
}

func TestCampaignDeterminism(t *testing.T) {
	cfg := CampaignConfig{Seed: 9, Scale: 0.08, Days: 5, StartOffsetDays: 7, DisableLoss: true}
	a := RunCampaign(cfg)
	b := RunCampaign(cfg)
	ra, rb := Table1(a), Table1(b)
	if len(ra) != len(rb) {
		t.Fatal("row count differs")
	}
	for i := range ra {
		for _, thr := range []float64{5, 10, 15, 20} {
			if ra[i].Flagged[thr] != rb[i].Flagged[thr] {
				t.Fatalf("run diverged at %s/%v: %d vs %d",
					ra[i].VP, thr, ra[i].Flagged[thr], rb[i].Flagged[thr])
			}
		}
	}
}
