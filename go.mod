module afrixp

go 1.22
