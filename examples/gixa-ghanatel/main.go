// Reproduction of §6.2.1 (GIXA–GHANATEL): the congested 100 Mbps
// transit link that fed the Google caches at the Ghana IXP. The
// example walks all three acts of the story:
//
//  1. phase 1 — weekday/weekend diurnal congestion with the "peak on
//     top of the peak" of congestion in both directions (Figure 1),
//  2. phase 2 — GHANATEL shuts off transit in a payment dispute; the
//     amplitude drops to ~10 ms while loss explodes (Figure 2),
//  3. 2016-08-06 — the link disappears and far-end probes go
//     unanswered, exactly as the paper observed.
package main

import (
	"fmt"
	"os"
	"time"

	"afrixp"
	"afrixp/internal/loss"
	"afrixp/internal/report"
	"afrixp/internal/simclock"
)

func main() {
	world := afrixp.NewWorld(afrixp.WorldOptions{Seed: 7, Scale: 0.1})
	vp, _ := world.VPByID("VP1")
	target := vp.CaseLinks["GIXA-GHANATEL"]
	prober := afrixp.NewProber(world, vp)
	session, err := prober.NewTSLP(target)
	if err != nil {
		panic(err)
	}

	// --- Act 1: three weeks of phase 1. ---
	phase1 := afrixp.Interval{
		Start: afrixp.Date(2016, time.March, 14),
		End:   afrixp.Date(2016, time.April, 4),
	}
	col1 := afrixp.NewCollector(session, afrixp.CollectorConfig{
		Campaign: phase1, FullResWindow: phase1})
	phase1.Steps(5*time.Minute, func(t simclock.Time) {
		world.AdvanceTo(t)
		col1.Round(t)
	})
	v1 := afrixp.AnalyzeLink(col1.Series(), afrixp.DefaultAnalysisConfig())
	fmt.Println("=== phase 1 (transit serving the GGC) ===")
	near, far := col1.FullRes()
	report.ASCIIPlot(os.Stdout, []string{"far", "near"}, []rune{'o', '.'}, 90, 12, far, near)
	fmt.Printf("congested: %v (%s), A_w %.1f ms, Δt_UD %v\n",
		v1.Congested, v1.Class, v1.AW, v1.DeltaTUD.Round(time.Minute))
	fmt.Printf("paper: A_w 27.9 ms, Δt_UD ≈ 20 h, weekday spikes to ~50 ms\n\n")

	// --- Act 2: phase 2 with the loss campaign of Figure 2b. ---
	phase2 := afrixp.Interval{
		Start: afrixp.Date(2016, time.July, 1),
		End:   afrixp.Date(2016, time.August, 5),
	}
	col2 := afrixp.NewCollector(session, afrixp.CollectorConfig{Campaign: phase2})
	var lc loss.Collector
	phase2.Steps(5*time.Minute, func(t simclock.Time) {
		world.AdvanceTo(t)
		col2.Round(t)
		// A 100-probe loss batch every other round (≈1 pps sampling).
		if t.Truncate(10*time.Minute) == t {
			for i := 0; i < loss.BatchSize; i++ {
				_, farLost := session.LossRound(t.Add(time.Duration(i) * time.Second))
				lc.Record(t, farLost)
			}
		}
	})
	sum := loss.Summarize(lc.Batches())
	fmt.Println("=== phase 2 (transit shut off during the dispute) ===")
	fmt.Printf("far-end loss batches: %v\n", sum)
	fmt.Printf("paper: loss between 0%% and 85%% during phase 2\n\n")

	// --- Act 3: the shutdown. ---
	after := afrixp.Date(2016, time.August, 10)
	world.AdvanceTo(after)
	s := session.Round(after)
	fmt.Println("=== after 2016-08-06 ===")
	fmt.Printf("far probe lost: %v (near lost: %v)\n", s.FarLost, s.NearLost)
	fmt.Println("paper: \"latency probes to the far end were unsuccessful\" from 06/08")

	// The interview record carries the cause chain.
	ann, _ := world.Interviews.Find(vp.ID, target)
	fmt.Println("\noperator interview:")
	for _, ph := range ann.Phases {
		fmt.Printf("  %s → %s: %s\n      %s\n",
			ph.Interval.Start, ph.Interval.End, ph.Cause, ph.Note)
	}
}
