// Quickstart: build the simulated African IXP world, probe one link
// with TSLP for a week, and run the paper's congestion detection on
// the collected series.
package main

import (
	"fmt"
	"time"

	"afrixp"
	"afrixp/internal/simclock"
)

func main() {
	// A small world keeps the example fast; Scale 1.0 reproduces the
	// paper-sized populations.
	world := afrixp.NewWorld(afrixp.WorldOptions{Seed: 42, Scale: 0.1})

	// VP4 is the Ark probe inside QCell at the Serekunda IXP. Its
	// case link to NETPAGE rides a 10 Mbps port that congests daily.
	vp, ok := world.VPByID("VP4")
	if !ok {
		panic("VP4 missing")
	}
	target := vp.CaseLinks["QCELL-NETPAGE"]
	fmt.Printf("probing %v from %s (%s)\n", target, vp.ID, vp.Monitor)

	prober := afrixp.NewProber(world, vp)
	session, err := prober.NewTSLP(target)
	if err != nil {
		panic(err)
	}

	// One week of 5-minute TSLP rounds, starting in phase 1.
	campaign := afrixp.Interval{
		Start: afrixp.Date(2016, time.March, 7),
		End:   afrixp.Date(2016, time.March, 14),
	}
	collector := afrixp.NewCollector(session, afrixp.CollectorConfig{Campaign: campaign})
	campaign.Steps(5*time.Minute, func(t simclock.Time) {
		world.AdvanceTo(t) // apply scheduled topology events
		collector.Round(t)
	})

	// The paper's §5.2 pipeline: level shifts ≥10 ms lasting ≥30 min,
	// flat near end, recurring diurnal pattern.
	verdict := afrixp.AnalyzeLink(collector.Series(), afrixp.DefaultAnalysisConfig())
	fmt.Printf("flagged:   %v\n", verdict.Flagged)
	fmt.Printf("near flat: %v\n", verdict.NearFlat)
	fmt.Printf("diurnal:   %v (amplitude %.1f ms)\n",
		verdict.Diurnal.Diurnal, verdict.Diurnal.AmplitudeMs)
	fmt.Printf("congested: %v (%s)\n", verdict.Congested, verdict.Class)
	if verdict.Congested {
		fmt.Printf("A_w = %.1f ms over %d events\n", verdict.AW, len(verdict.Far.Events))
	}

	// The operator interview (ground truth the scenario carries).
	if ann, ok := world.Interviews.Find(vp.ID, target); ok {
		fmt.Printf("operator says: cause=%s, fixed by the %s upgrade\n",
			ann.PrimaryCause(), "2016-04-28")
	}
}
