// Reproduction of §6.2.2 (QCELL–NETPAGE at the Serekunda IXP): a
// 10 Mbps member port congested by Google-cache demand, with 35 ms
// weekday and ~15 ms weekend spikes, upgraded to 1 Gbps on 2016-04-28
// — after which the diurnal pattern disappears for the rest of the
// campaign (Figure 4).
package main

import (
	"fmt"
	"time"

	"afrixp"
	"afrixp/internal/simclock"
	"afrixp/internal/timeseries"
)

func main() {
	world := afrixp.NewWorld(afrixp.WorldOptions{Seed: 11, Scale: 0.1})
	vp, _ := world.VPByID("VP4")
	target := vp.CaseLinks["QCELL-NETPAGE"]
	prober := afrixp.NewProber(world, vp)
	session, err := prober.NewTSLP(target)
	if err != nil {
		panic(err)
	}

	// Probe across the upgrade: four weeks before, four after.
	upgrade := afrixp.Date(2016, time.April, 28)
	campaign := afrixp.Interval{
		Start: upgrade.Add(-28 * 24 * time.Hour),
		End:   upgrade.Add(28 * 24 * time.Hour),
	}
	col := afrixp.NewCollector(session, afrixp.CollectorConfig{
		Campaign: campaign, FullResWindow: campaign})
	campaign.Steps(5*time.Minute, func(t simclock.Time) {
		world.AdvanceTo(t)
		col.Round(t)
	})

	_, far := col.FullRes()
	phase1 := far.Slice(campaign.Start, upgrade)
	phase2 := far.Slice(upgrade, campaign.End)

	// Weekday vs weekend spike heights in phase 1 (the paper: ~35 ms
	// on business days, ~15 ms on weekends).
	wkday, wkend := splitByDayType(phase1)
	fmt.Println("=== phase 1 (10 Mbps port) ===")
	fmt.Printf("weekday P95 far RTT: %.1f ms (paper: spikes to ~35 ms)\n",
		timeseries.Quantile(wkday, 0.95))
	fmt.Printf("weekend P95 far RTT: %.1f ms (paper: ~15 ms)\n",
		timeseries.Quantile(wkend, 0.95))

	v1 := afrixp.AnalyzeLink(sliceSeries(col, campaign.Start, upgrade), afrixp.DefaultAnalysisConfig())
	fmt.Printf("verdict: congested=%v A_w=%.1f ms Δt_UD=%v (paper: 10.7 ms, 6h22m)\n\n",
		v1.Congested, v1.AW, v1.DeltaTUD.Round(time.Minute))

	fmt.Println("=== phase 2 (after the 2016-04-28 upgrade to 1 Gbps) ===")
	fmt.Printf("phase-2 P95 far RTT: %.1f ms (paper: mostly below 10 ms)\n",
		timeseries.Quantile(phase2.Present(), 0.95))
	v2 := afrixp.AnalyzeLink(sliceSeries(col, upgrade, campaign.End), afrixp.DefaultAnalysisConfig())
	fmt.Printf("verdict: congested=%v — the diurnal pattern disappeared\n\n", v2.Congested)

	// Whole-window classification: congestion that stops well before
	// the end of the series is *transient* (mitigated), the paper's
	// category for this link.
	vAll := afrixp.AnalyzeLink(col.Series(), afrixp.DefaultAnalysisConfig())
	fmt.Printf("whole-window classification: %s (paper: transient, fixed by upgrade)\n", vAll.Class)

	ann, _ := world.Interviews.Find(vp.ID, target)
	fmt.Printf("operator: %s — %s\n", ann.PrimaryCause(), ann.Phases[0].Note)
}

// splitByDayType partitions present samples into weekday/weekend sets.
// Each works for both backings: collector series are XOR-compressed
// chunks by default, sliced figure windows stay flat.
func splitByDayType(s *timeseries.Series) (weekday, weekend []float64) {
	s.Each(func(base int, vals []float64) {
		for i, v := range vals {
			if timeseries.IsMissing(v) {
				continue
			}
			if s.TimeAt(base + i).IsWeekend() {
				weekend = append(weekend, v)
			} else {
				weekday = append(weekday, v)
			}
		}
	})
	return
}

// sliceSeries restricts a collector's series to a sub-interval.
func sliceSeries(col *afrixp.Collector, from, to afrixp.Time) afrixp.LinkSeries {
	ls := col.Series()
	ls.Near = ls.Near.Slice(from, to)
	ls.Far = ls.Far.Slice(from, to)
	return ls
}
