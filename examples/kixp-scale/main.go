// Reproduction of the VP5 story (Liquid Telecom at KIXP): a large
// transit provider's vantage point that discovers hundreds of links,
// grows substantially over the campaign (Table 2's most dramatic
// row), and — despite ~150 links tripping the level-shift threshold —
// shows zero recurring diurnal patterns (Table 1's "147 (0)").
package main

import (
	"fmt"
	"time"

	"afrixp"
	"afrixp/internal/report"
	"afrixp/internal/simclock"
	"os"
)

func main() {
	world := afrixp.NewWorld(afrixp.WorldOptions{Seed: 5, Scale: 0.15})
	vp, _ := world.VPByID("VP5")

	// --- Discovery growth across snapshots (Table 2 shape). ---
	t := &report.Table{Title: "VP5 (Liquid Telecom at KIXP): discovery snapshots",
		Header: []string{"snapshot", "links", "peering", "neighbors", "peers"}}
	for _, date := range []afrixp.Time{
		afrixp.Date(2016, time.March, 11),
		afrixp.Date(2016, time.September, 15),
		afrixp.Date(2017, time.March, 23),
	} {
		world.AdvanceTo(date)
		res, err := afrixp.BorderMap(world, vp, date)
		if err != nil {
			panic(err)
		}
		t.AddRow(date.Wall().Format("2006-01-02"),
			fmt.Sprint(len(res.Links)), fmt.Sprint(len(res.PeeringLinks())),
			fmt.Sprint(len(res.Neighbors)), fmt.Sprint(len(res.Peers)))
	}
	t.Render(os.Stdout)
	fmt.Println("paper: 288 links (4 peering) → 10,466 (601); 244 neighbors → 1,215")
	fmt.Println()

	// --- Flagged-but-not-diurnal: probe a handful of customer links. ---
	res, err := afrixp.BorderMap(world, vp, world.Now())
	if err != nil {
		panic(err)
	}
	prober := afrixp.NewProber(world, vp)
	campaign := afrixp.Interval{
		Start: world.Now(),
		End:   world.Now().Add(21 * 24 * time.Hour),
	}
	// The campaign runs past the latency end only in virtual time the
	// world has already reached; clamp to the paper period.
	if campaign.End > afrixp.CampaignEnd() {
		campaign.End = afrixp.CampaignEnd()
	}

	type probed struct {
		target afrixp.LinkTarget
		col    *afrixp.Collector
	}
	var sessions []probed
	for _, l := range res.Links {
		if len(sessions) >= 8 || l.ViaIXP != "" {
			continue // sample the customer links, the noisy population
		}
		s, err := prober.NewTSLP(afrixp.LinkTarget{Near: l.Near, Far: l.Far})
		if err != nil {
			continue
		}
		sessions = append(sessions, probed{
			target: afrixp.LinkTarget{Near: l.Near, Far: l.Far},
			col:    afrixp.NewCollector(s, afrixp.CollectorConfig{Campaign: campaign}),
		})
	}
	fmt.Printf("probing %d customer links for %d days...\n",
		len(sessions), int(campaign.Duration().Hours()/24))
	campaign.Steps(5*time.Minute, func(tm simclock.Time) {
		world.AdvanceTo(tm)
		for _, p := range sessions {
			p.col.Round(tm)
		}
	})

	flagged, diurnal := 0, 0
	for _, p := range sessions {
		v := afrixp.AnalyzeLink(p.col.Series(), afrixp.DefaultAnalysisConfig())
		if v.Flagged {
			flagged++
			if v.Diurnal.Diurnal {
				diurnal++
			}
		}
	}
	fmt.Printf("flagged by the 10 ms level-shift threshold: %d of %d\n", flagged, len(sessions))
	fmt.Printf("with a recurring diurnal pattern:           %d\n", diurnal)
	fmt.Println("paper Table 1, VP5: 147 flagged, 0 diurnal — slow ICMP generation,")
	fmt.Println("not data-plane congestion, behind the level shifts")
}
