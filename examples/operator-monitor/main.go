// Operator monitoring: the paper's §7 takeaway — "ISPs [should]
// carefully monitor their peering links at IXPs to avoid or to
// quickly mitigate congestion" — run as a live system. An online
// monitor consumes TSLP rounds on the QCELL–NETPAGE link across the
// whole arc of its story and prints the alert timeline an operator
// would have received: congestion onset in early March, mitigation
// confirmed days after the 2016-04-28 upgrade.
package main

import (
	"fmt"
	"time"

	"afrixp"
	"afrixp/internal/simclock"
)

func main() {
	world := afrixp.NewWorld(afrixp.WorldOptions{Seed: 23, Scale: 0.1})
	vp, _ := world.VPByID("VP4")
	target := vp.CaseLinks["QCELL-NETPAGE"]
	prober := afrixp.NewProber(world, vp)
	session, err := prober.NewTSLP(target)
	if err != nil {
		panic(err)
	}

	// Watch from the campaign start until well past the upgrade.
	watch := afrixp.Interval{
		Start: afrixp.Date(2016, time.February, 29),
		End:   afrixp.Date(2016, time.June, 1),
	}
	mon := afrixp.NewMonitor(target, afrixp.MonitorConfig{})

	fmt.Printf("watching %v (QCELL–NETPAGE at SIXP) from %v\n\n", target, watch.Start)
	watch.Steps(5*time.Minute, func(t simclock.Time) {
		world.AdvanceTo(t)
		for _, alert := range mon.Feed(session.Round(t)) {
			switch alert.Kind {
			case afrixp.AlertOnset:
				fmt.Printf("%v  ALERT %-22s magnitude %.1f ms\n",
					alert.At, alert.Kind, alert.MagnitudeMs)
			default:
				fmt.Printf("%v  ALERT %s\n", alert.At, alert.Kind)
			}
		}
	})

	fmt.Printf("\nlink believed congested at watch end: %v\n", mon.Congested())
	fmt.Println("ground truth: NETPAGE's 10 Mbps port congested daily until the")
	fmt.Println("2016-04-28 upgrade to 1 Gbps (operator interview, §6.2.2)")
}
