package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
)

// The expvar registry is process-global and expvar.Publish panics on
// duplicate names, so the package publishes a single "afrixp" var
// once and points it at whichever telemetry most recently started a
// server. Tests that spin up several servers therefore never trip
// the duplicate-name panic.
var (
	published    atomic.Pointer[Telemetry]
	publishState atomic.Bool
)

func publishExpvar(t *Telemetry) {
	published.Store(t)
	if publishState.CompareAndSwap(false, true) {
		if expvar.Get("afrixp") == nil {
			expvar.Publish("afrixp", expvar.Func(func() any {
				if cur := published.Load(); cur != nil {
					return cur.Snapshot()
				}
				return nil
			}))
		}
	}
}

// Server is a live metrics endpoint: GET /metrics returns the JSON
// snapshot, GET /debug/vars is the standard expvar surface (with the
// snapshot published under the "afrixp" key).
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the metrics server on addr (host:port; port 0 picks a
// free one). The listener is bound synchronously — a returned *Server
// is already accepting — and requests are handled on background
// goroutines, which is safe because every read path is atomic or
// mutex-guarded and never perturbs the campaign.
//
// Optional mounts register additional handlers on the same mux —
// how the streaming observatory's API (internal/observatory) rides
// beside /metrics on one port. Mounts run before the built-in
// registrations, so they cannot displace /metrics or /debug/vars
// (duplicate patterns panic, loudly, at startup).
func (t *Telemetry) Serve(addr string, mounts ...func(*http.ServeMux)) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	publishExpvar(t)
	mux := http.NewServeMux()
	for _, mount := range mounts {
		mount(mux)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := t.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on Close is expected
	return s, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }
