package telemetry

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"afrixp/internal/simclock"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	c.Store(42)
	if got := c.Load(); got != 42 {
		t.Errorf("after Store, counter = %d, want 42", got)
	}

	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	if got := h.NumBuckets(); got != 4 {
		t.Fatalf("NumBuckets = %d, want 4 (3 bounds + overflow)", got)
	}
	for _, v := range []float64{0.5, 1, 5, 10, 50, 1000} {
		h.Observe(v)
	}
	s := h.snapshot()
	want := []uint64{2, 2, 1, 1} // ≤1: {0.5,1}; ≤10: {5,10}; ≤100: {50}; over: {1000}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Total != 6 {
		t.Errorf("total = %d, want 6", s.Total)
	}
	h.StoreBucket(0, 99)
	if got := h.snapshot().Counts[0]; got != 99 {
		t.Errorf("after StoreBucket, bucket 0 = %d, want 99", got)
	}
}

func TestHistogramPanicsOnUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram accepted non-ascending bounds")
		}
	}()
	NewHistogram(1, 1)
}

// TestNilTelemetryNoOp pins the nil-receiver contract the campaign
// engine relies on: with Config.Telemetry unset, every instrumentation
// call must be safe to make and must not allocate, so the engine needs
// no telemetry branches on its hot path.
func TestNilTelemetryNoOp(t *testing.T) {
	var tele *Telemetry
	v := simclock.Date(2016, time.July, 20)
	if avg := testing.AllocsPerRun(100, func() {
		ref := tele.BeginSpan("phase", "label", v)
		tele.EndSpan(ref, v)
		tele.AddSpan("phase", "label", v, v)
		_ = tele.SpanDuration(ref)
		_ = tele.Elapsed()
		_ = tele.Eventf("phase", v, "msg")
		_ = tele.Spans()
		_ = tele.Events()
	}); avg != 0 {
		t.Errorf("nil-telemetry calls make %v allocations; want 0", avg)
	}
	if ref := tele.BeginSpan("p", "", v); ref != SpanNone {
		t.Errorf("nil BeginSpan ref = %d, want SpanNone", ref)
	}
}

// fakeClock yields a deterministic wall-clock sequence: the fixed base
// instant, then one second later per call.
func fakeClock() func() time.Time {
	base := time.Date(2026, time.January, 2, 3, 4, 5, 0, time.UTC)
	n := 0
	return func() time.Time {
		t := base.Add(time.Duration(n) * time.Second)
		n++
		return t
	}
}

func TestSpanLog(t *testing.T) {
	tele := NewWithClock(fakeClock())
	v0 := simclock.Date(2016, time.July, 20)
	v1 := v0.Add(time.Hour)

	ref := tele.BeginSpan("probing", "", v0)
	if ref == SpanNone {
		t.Fatal("BeginSpan dropped the first span")
	}
	tele.EndSpan(ref, v1)
	if d := tele.SpanDuration(ref); d != time.Second {
		t.Errorf("SpanDuration = %v, want 1s (one fake-clock tick)", d)
	}
	tele.AddSpan("fault-episode", "vp1 outage", v0, v1)

	spans := tele.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Phase != "probing" || spans[0].VStart != v0 || spans[0].VEnd != v1 {
		t.Errorf("span 0 = %+v", spans[0])
	}
	if spans[1].Label != "vp1 outage" {
		t.Errorf("span 1 label = %q", spans[1].Label)
	}

	// Fill to the cap: the log must stop growing and count the drops.
	for i := len(spans); i < spanCap; i++ {
		tele.AddSpan("fill", "", v0, v0)
	}
	tele.AddSpan("overflow", "", v0, v0)
	tele.AddSpan("overflow", "", v0, v0)
	if got := len(tele.Spans()); got != spanCap {
		t.Errorf("span log grew past cap: %d > %d", got, spanCap)
	}
	if got := tele.SpansDropped.Load(); got != 2 {
		t.Errorf("SpansDropped = %d, want 2", got)
	}
	// EndSpan on the dropped ref must be a no-op, not a panic.
	tele.EndSpan(tele.BeginSpan("dropped", "", v0), v1)
}

func TestEventLog(t *testing.T) {
	tele := NewWithClock(fakeClock())
	v := simclock.Date(2016, time.July, 20)
	if d := tele.Eventf("progress", v, "links analyzed: %d", 7); d <= 0 {
		t.Errorf("Eventf elapsed = %v, want > 0", d)
	}
	evs := tele.Events()
	if len(evs) != 1 || evs[0].Msg != "links analyzed: 7" {
		t.Fatalf("events = %+v", evs)
	}
	for i := 1; i < eventCap; i++ {
		tele.Eventf("fill", v, "")
	}
	tele.Eventf("overflow", v, "")
	if got := len(tele.Events()); got != eventCap {
		t.Errorf("event log grew past cap: %d > %d", got, eventCap)
	}
	if got := tele.EventsDropped.Load(); got != 1 {
		t.Errorf("EventsDropped = %d, want 1", got)
	}
}

// TestSnapshotGolden freezes the JSON export layout. The fake clock
// makes every wall stamp deterministic, so any change to the snapshot
// schema shows up as a golden diff (regenerate with -update).
func TestSnapshotGolden(t *testing.T) {
	tele := NewWithClock(fakeClock())
	v0 := simclock.Date(2016, time.July, 20)
	v1 := v0.Add(6 * time.Hour)

	tele.Engine.BatchesOpened.Add(3)
	tele.Engine.QuiescentSteps.Add(1021)
	tele.Engine.Flushes.Add(3)
	tele.Engine.RoundsDispatched.Add(6144)
	tele.Engine.BatchLen.Observe(1024)
	tele.Engine.SetWorkers(2)
	tele.Engine.AddWorkerBusy(0, 2*time.Second)
	tele.Engine.AddWorkerBusy(1, time.Second)

	tele.Probe.Probes.Store(1000)
	tele.Probe.Delivered.Store(990)
	tele.Probe.PipeDrops.Store(6)
	tele.Probe.ICMPSilenced.Store(3)
	tele.Probe.RateLimited.Store(1)
	tele.Probe.QueueFrozenObs.Store(2000)
	tele.Probe.InjectWalks.Store(50)
	tele.Probe.InjectDelivered.Store(48)
	tele.Probe.InjectLost.Store(1)
	tele.Probe.InjectUnreachable.Store(1)
	tele.Probe.RTT.StoreBucket(14, 700) // 8.2–16.4 ms
	tele.Probe.RTT.StoreBucket(15, 290) // 16.4–32.8 ms

	tele.Analysis.Sweeps.Add(12)
	tele.Analysis.FoldsComputed.Add(4)
	tele.Analysis.FoldsReused.Add(12)

	tele.Faults.Planned.Store(5)
	tele.Faults.Entered.Store(2)
	tele.Faults.Exited.Store(2)

	ref := tele.BeginSpan("discovery", "vp1", v0)
	tele.EndSpan(ref, v0)
	ref = tele.BeginSpan("probing", "", v0)
	tele.EndSpan(ref, v1)
	tele.Eventf("progress", v1, "campaign done; analyzing %d links", 16)

	var buf strings.Builder
	if err := tele.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()

	golden := filepath.Join("testdata", "snapshot.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("snapshot JSON differs from golden (regenerate with -update):\ngot:\n%s\nwant:\n%s", got, want)
	}

	// The golden bytes must round-trip as a valid Snapshot too.
	var s Snapshot
	if err := json.Unmarshal([]byte(got), &s); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if s.Schema != SchemaVersion {
		t.Errorf("schema = %q, want %q", s.Schema, SchemaVersion)
	}
	if s.Analysis.FoldHitRate != 0.75 {
		t.Errorf("fold hit rate = %v, want 0.75", s.Analysis.FoldHitRate)
	}
}

func TestServe(t *testing.T) {
	tele := New()
	tele.Probe.Probes.Store(123)
	srv, err := tele.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return body
	}

	var s Snapshot
	if err := json.Unmarshal(get("/metrics"), &s); err != nil {
		t.Fatalf("/metrics is not snapshot JSON: %v", err)
	}
	if s.Schema != SchemaVersion {
		t.Errorf("/metrics schema = %q, want %q", s.Schema, SchemaVersion)
	}
	if s.Probe.Probes != 123 {
		t.Errorf("/metrics probes = %d, want 123", s.Probe.Probes)
	}

	if body := string(get("/debug/vars")); !strings.Contains(body, `"afrixp"`) {
		t.Error("/debug/vars does not publish the afrixp var")
	}

	// A second Serve (fresh telemetry) must not trip the process-global
	// expvar duplicate-publish panic, and the expvar hook must follow
	// the most recent telemetry.
	tele2 := New()
	tele2.Probe.Probes.Store(456)
	srv2, err := tele2.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	var vars struct {
		Afrixp Snapshot `json:"afrixp"`
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", srv2.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if vars.Afrixp.Probe.Probes != 456 {
		t.Errorf("expvar afrixp follows stale telemetry: probes = %d, want 456", vars.Afrixp.Probe.Probes)
	}
}

// TestServeMounts: extra handlers ride beside /metrics on the same
// port — the hook the streaming observatory uses — without touching
// the built-in endpoints.
func TestServeMounts(t *testing.T) {
	tele := New()
	tele.Probe.Probes.Store(7)
	srv, err := tele.Serve("127.0.0.1:0", func(mux *http.ServeMux) {
		mux.HandleFunc("/extra", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, "mounted")
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/extra")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "mounted" {
		t.Errorf("/extra = %q", body)
	}
	resp, err = http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	err = json.NewDecoder(resp.Body).Decode(&s)
	resp.Body.Close()
	if err != nil || s.Schema != SchemaVersion || s.Probe.Probes != 7 {
		t.Errorf("/metrics broken beside mounts: err=%v schema=%q probes=%d", err, s.Schema, s.Probe.Probes)
	}
}

// TestServeScrapeWhilePublishing races live /metrics scrapes against a
// campaign-shaped publisher hammering every counter family the engine
// writes at barriers — the exact concurrency a long run with
// -metrics-addr exhibits. Run under -race in CI; every scrape must
// still decode as a schema-correct snapshot.
func TestServeScrapeWhilePublishing(t *testing.T) {
	tele := New()
	tele.Engine.SetWorkers(2)
	tele.Engine.SetShards(1)
	srv, err := tele.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		at := simclock.Date(2016, time.July, 20)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tele.Engine.BatchesOpened.Inc()
			tele.Engine.RoundsDispatched.Add(64)
			tele.Engine.BatchLen.Observe(64)
			tele.Engine.AddWorkerBusy(i%2, time.Microsecond)
			tele.Probe.Probes.Store(uint64(i))
			tele.Probe.Delivered.Store(uint64(i))
			tele.Probe.RTT.StoreBucket(14, uint64(i))
			if g := tele.Engine.Shard(0); g != nil {
				g.ResidentBytes.Set(int64(i))
				g.Rounds.Set(int64(i))
			}
			if i%64 == 0 {
				ref := tele.BeginSpan("probe-batch", "", at)
				tele.EndSpan(ref, at)
				tele.Eventf("progress", at, "round %d", i)
			}
			at = at.Add(5 * time.Minute)
			// Pace the publisher: unthrottled it floods the span log and
			// every scrape pays to serialize it — the race coverage needs
			// overlap, not volume.
			time.Sleep(50 * time.Microsecond)
		}
	}()

	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; i < 25; i++ {
		resp, err := client.Get("http://" + srv.Addr() + "/metrics")
		if err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
		var s Snapshot
		err = json.NewDecoder(resp.Body).Decode(&s)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("scrape %d: not snapshot JSON: %v", i, err)
		}
		if s.Schema != SchemaVersion {
			t.Fatalf("scrape %d: schema %q", i, s.Schema)
		}
	}
	close(stop)
	<-done
	if tele.Engine.BatchesOpened.Load() == 0 {
		t.Fatal("publisher never ran; the race test is vacuous")
	}
}
