// Package telemetry is the campaign-wide instrumentation layer: lock-
// free counters, gauges, and fixed-bucket histograms, plus a bounded
// structured span/event log stamping every campaign phase with both
// virtual-clock and wall-clock time.
//
// The design rule is that telemetry is strictly read-side: nothing in
// this package feeds a value back into the simulation, so campaign
// results are bit-identical with telemetry on or off, at any worker
// count or batch size (TestTelemetryCampaignBitIdentical pins it).
// The second rule is that the steady-state probing step must stay at
// zero heap allocations with collection enabled: every metric is
// preallocated at construction and updated with atomic operations;
// the hottest counters (per-probe outcomes) are not even atomic —
// each vantage point's ProbeCtx counts into plain uint64s that the
// campaign coordinator republishes here at batch barriers, when the
// workers are quiescent (see netsim.ProbeStats and DESIGN.md §11).
//
// Readers (the JSON snapshot writer, the /metrics HTTP handler, the
// expvar hook) may run concurrently with a campaign: everything they
// touch is either atomic or guarded by the span-log mutex.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"afrixp/internal/simclock"
)

// Counter is a lock-free monotonic (or republished) counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Store republishes an externally-accumulated total — how the
// campaign coordinator mirrors per-worker plain counters at barriers.
func (c *Counter) Store(n uint64) { c.v.Store(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a lock-free instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram: bounds are immutable after
// construction and every bucket is a preallocated atomic counter, so
// Observe never allocates. Bucket i counts observations ≤ Bounds[i];
// the last bucket (len(Bounds)) is the overflow.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending bounds.
func NewHistogram(bounds ...float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not ascending at %d", i))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
}

// NumBuckets returns the bucket count (bounds + overflow).
func (h *Histogram) NumBuckets() int { return len(h.counts) }

// StoreBucket republishes an externally-accumulated bucket total —
// the barrier-time mirror of a per-worker plain bucket array.
func (h *Histogram) StoreBucket(i int, n uint64) { h.counts[i].Store(n) }

// snapshot captures bounds and counts.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Bounds: h.bounds, Counts: make([]uint64, len(h.counts))}
	for i := range h.counts {
		n := h.counts[i].Load()
		s.Counts[i] = n
		s.Total += n
	}
	return s
}

// Span and event log capacities. The logs are preallocated at these
// caps and never grow: a campaign that out-produces them (e.g. a
// full-period run at BatchSteps=1 emits one probe-batch span per
// step) drops the excess and counts it in SpansDropped/EventsDropped
// rather than allocating without bound.
const (
	spanCap  = 4096
	eventCap = 8192
)

// Span is one recorded campaign phase: a virtual-time window plus the
// wall-clock window in which the engine executed it.
type Span struct {
	Phase     string
	Label     string
	VStart    simclock.Time
	VEnd      simclock.Time
	WallStart time.Time
	WallEnd   time.Time
}

// SpanRef identifies an open span; a negative ref is a dropped or
// nil-telemetry span and EndSpan ignores it.
type SpanRef int

// SpanNone is the ref of a span that was never opened.
const SpanNone SpanRef = -1

// EngineStats instruments the campaign engine: the batch planner and
// the persistent worker pool.
type EngineStats struct {
	// BatchesOpened counts barrier steps (batch-planner open calls);
	// QuiescentSteps counts the steps batched beyond their opener;
	// Flushes counts worker-pool dispatch rounds; RoundsDispatched
	// counts per-VP probing rounds (batch steps × vantage points).
	BatchesOpened, QuiescentSteps, Flushes, RoundsDispatched Counter
	// BatchLen is the distribution of steps per flushed batch.
	BatchLen *Histogram

	// workerBusy accumulates per-worker busy nanoseconds. Sized once
	// by SetWorkers before the pool starts; each worker adds only to
	// its own slot.
	workerBusy []atomic.Int64

	// shards holds per-shard gauges when the sharded campaign engine
	// is active. Sized once by SetShards before probing starts; the
	// engine atomically Sets each gauge at batch barriers, so the
	// steady-state probe step stays allocation-free.
	shards []ShardGauges
}

// ShardGauges instruments one campaign shard: resident series bytes
// (the shard's chunk arena plus per-collector state), the number of
// links the shard owns, and probing rounds scheduled so far.
type ShardGauges struct {
	ResidentBytes Gauge
	LinksOwned    Gauge
	Rounds        Gauge
}

// SetWorkers sizes the per-worker busy-time table. Call before the
// worker pool starts; it is the only EngineStats allocation.
func (e *EngineStats) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	e.workerBusy = make([]atomic.Int64, n)
}

// AddWorkerBusy credits busy time to worker k.
func (e *EngineStats) AddWorkerBusy(k int, d time.Duration) {
	if k >= 0 && k < len(e.workerBusy) {
		e.workerBusy[k].Add(int64(d))
	}
}

// SetShards sizes the per-shard gauge table. Call before probing
// starts (it is the table's only allocation); n ≤ 0 clears it, which
// is the unsharded engine's state — no shard lines in reports.
func (e *EngineStats) SetShards(n int) {
	if n <= 0 {
		e.shards = nil
		return
	}
	e.shards = make([]ShardGauges, n)
}

// Shard returns shard k's gauges, or nil when sharding is off or k is
// out of range — callers publish through the returned pointer.
func (e *EngineStats) Shard(k int) *ShardGauges {
	if k < 0 || k >= len(e.shards) {
		return nil
	}
	return &e.shards[k]
}

// ProbeStats mirrors the measurement plane's hot-path accounting:
// per-probe outcomes on the frozen sampling path (republished from
// per-VP plain counters at batch barriers) and the packet-level
// injection walks discovery performs.
type ProbeStats struct {
	// Probes counts frozen TSLP samples sent; Delivered the ones that
	// came back. PipeDrops, ICMPSilenced, and RateLimited split the
	// losses by cause: queue/gate drops in a pipe, an ICMP-down (or
	// blackout) responder, and control-plane policing respectively.
	Probes, Delivered, PipeDrops, ICMPSilenced, RateLimited Counter
	// QueueFrozenObs counts frozen fluid-queue observations (pipe
	// traversals that consulted a queue's recorded frontier).
	QueueFrozenObs Counter
	// InjectWalks counts packet-level Network.Inject walks (discovery
	// traceroutes, pings, record-route probes), split by outcome.
	InjectWalks, InjectDelivered, InjectLost, InjectUnreachable Counter
	// RTT is the delivered-probe RTT distribution in microseconds
	// (power-of-two buckets, mirroring netsim.ProbeStats.RTTBuckets).
	RTT *Histogram
}

// AnalysisStats instruments the threshold-sweep analysis phase.
type AnalysisStats struct {
	// Sweeps counts AnalyzeLinkSweep runs (one per link per pass).
	Sweeps Counter
	// FoldsComputed and FoldsReused count diurnal day-folds computed
	// versus served from the per-link event-window cache; the hit
	// rate is the detect-once/threshold-many win on the diurnal leg.
	FoldsComputed, FoldsReused Counter
}

// FaultStats instruments the injected fault plan.
type FaultStats struct {
	// Planned is the episode count in the schedule; Entered and
	// Exited count episode boundary events the world clock crossed.
	Planned, Entered, Exited Counter
}

// Telemetry is one campaign's instrumentation root. Create with New
// (or NewWithClock in tests), hand it to the campaign via
// experiments.Config.Telemetry / afrixp.CampaignConfig.Telemetry, and
// read it any time through Snapshot, WriteJSON, or Serve.
type Telemetry struct {
	Engine   EngineStats
	Probe    ProbeStats
	Analysis AnalysisStats
	Faults   FaultStats

	// SpansDropped / EventsDropped count log entries discarded once
	// the preallocated logs filled.
	SpansDropped, EventsDropped Counter

	now   func() time.Time
	start time.Time

	mu     sync.Mutex
	spans  []Span
	events []Event
}

// Event is one timestamped log line (a campaign progress message).
type Event struct {
	Phase string
	V     simclock.Time
	Wall  time.Time
	Msg   string
}

// rttBucketCount matches netsim.RTTBucketCount: bucket i holds RTTs
// whose microsecond count has bit length i, i.e. [2^(i-1), 2^i) µs.
const rttBucketCount = 18

// New builds a telemetry root with all metrics preallocated.
func New() *Telemetry { return NewWithClock(time.Now) }

// NewWithClock is New with an injectable wall-clock source, letting
// tests produce deterministic snapshots.
func NewWithClock(now func() time.Time) *Telemetry {
	t := &Telemetry{now: now, start: now()}
	t.Engine.BatchLen = NewHistogram(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)
	bounds := make([]float64, rttBucketCount-1)
	for i := range bounds {
		bounds[i] = float64(uint64(1) << i) // ≤ 2^i µs
	}
	t.Probe.RTT = NewHistogram(bounds...)
	t.Engine.SetWorkers(1)
	return t
}

// Start returns the wall-clock instant the telemetry was created.
func (t *Telemetry) Start() time.Time { return t.start }

// Elapsed returns wall time since creation. Nil-safe (zero).
func (t *Telemetry) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return t.now().Sub(t.start)
}

// BeginSpan opens a phase span at virtual time v. It returns a ref
// for EndSpan; on a nil receiver or a full span log it drops the span
// and returns a negative ref. Allocation-free once the log exists.
func (t *Telemetry) BeginSpan(phase, label string, v simclock.Time) SpanRef {
	if t == nil {
		return -1
	}
	wall := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.spans == nil {
		t.spans = make([]Span, 0, spanCap)
	}
	if len(t.spans) >= spanCap {
		t.SpansDropped.Inc()
		return -1
	}
	t.spans = append(t.spans, Span{Phase: phase, Label: label, VStart: v, VEnd: v, WallStart: wall, WallEnd: wall})
	return SpanRef(len(t.spans) - 1)
}

// EndSpan closes a span at virtual time v. Negative refs are ignored,
// so callers never need to branch on dropped spans.
func (t *Telemetry) EndSpan(ref SpanRef, v simclock.Time) {
	if t == nil || ref < 0 {
		return
	}
	wall := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(ref) >= len(t.spans) {
		return
	}
	t.spans[ref].VEnd = v
	t.spans[ref].WallEnd = wall
}

// AddSpan records a closed span in one call — used for windows known
// after the fact (fault episodes, whose virtual window is fixed at
// injection time). Both wall stamps are the recording instant.
func (t *Telemetry) AddSpan(phase, label string, vStart, vEnd simclock.Time) {
	ref := t.BeginSpan(phase, label, vStart)
	t.EndSpan(ref, vEnd)
}

// SpanDuration returns the wall duration of a closed span (zero for
// dropped refs) — engines stamp progress lines with it.
func (t *Telemetry) SpanDuration(ref SpanRef) time.Duration {
	if t == nil || ref < 0 {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(ref) >= len(t.spans) {
		return 0
	}
	s := t.spans[ref]
	return s.WallEnd.Sub(s.WallStart)
}

// Eventf appends a formatted event at virtual time v and returns the
// wall time elapsed since telemetry start (for progress stamping).
func (t *Telemetry) Eventf(phase string, v simclock.Time, format string, args ...any) time.Duration {
	if t == nil {
		return 0
	}
	wall := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.events == nil {
		t.events = make([]Event, 0, eventCap)
	}
	if len(t.events) >= eventCap {
		t.EventsDropped.Inc()
		return wall.Sub(t.start)
	}
	t.events = append(t.events, Event{Phase: phase, V: v, Wall: wall, Msg: fmt.Sprintf(format, args...)})
	return wall.Sub(t.start)
}

// Spans returns a copy of the recorded spans.
func (t *Telemetry) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Events returns a copy of the recorded events.
func (t *Telemetry) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// ---------------------------------------------------------------
// Snapshot: the JSON export shared by -metrics files, the /metrics
// endpoint, the expvar hook, and the observatory report section.
// ---------------------------------------------------------------

// HistogramSnapshot is a histogram's frozen buckets.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Total  uint64    `json:"total"`
}

// WorkerSnapshot is one pool worker's busy accounting.
type WorkerSnapshot struct {
	Worker      int     `json:"worker"`
	BusyNS      int64   `json:"busy_ns"`
	Utilization float64 `json:"utilization"`
}

// ShardSnapshot is one campaign shard's gauge reading. RoundsPerSec
// divides scheduled rounds by the telemetry wall clock, a throughput
// figure comparable across shard counts.
type ShardSnapshot struct {
	Shard         int     `json:"shard"`
	ResidentBytes int64   `json:"resident_bytes"`
	LinksOwned    int64   `json:"links_owned"`
	Rounds        int64   `json:"rounds"`
	RoundsPerSec  float64 `json:"rounds_per_sec"`
}

// SpanSnapshot is a span rendered for export.
type SpanSnapshot struct {
	Phase          string `json:"phase"`
	Label          string `json:"label,omitempty"`
	VStart         string `json:"v_start"`
	VEnd           string `json:"v_end"`
	VDurationNS    int64  `json:"v_duration_ns"`
	WallOffsetNS   int64  `json:"wall_offset_ns"`
	WallDurationNS int64  `json:"wall_duration_ns"`
}

// EventSnapshot is an event rendered for export.
type EventSnapshot struct {
	Phase        string `json:"phase"`
	V            string `json:"v"`
	WallOffsetNS int64  `json:"wall_offset_ns"`
	Msg          string `json:"msg"`
}

// EngineSnapshot freezes EngineStats.
type EngineSnapshot struct {
	BatchesOpened    uint64            `json:"batches_opened"`
	QuiescentSteps   uint64            `json:"quiescent_steps"`
	Flushes          uint64            `json:"flushes"`
	RoundsDispatched uint64            `json:"rounds_dispatched"`
	BatchLen         HistogramSnapshot `json:"batch_len"`
	Workers          []WorkerSnapshot  `json:"workers"`
	Shards           []ShardSnapshot   `json:"shards,omitempty"`
}

// ProbeSnapshot freezes ProbeStats.
type ProbeSnapshot struct {
	Probes            uint64            `json:"probes"`
	Delivered         uint64            `json:"delivered"`
	PipeDrops         uint64            `json:"pipe_drops"`
	ICMPSilenced      uint64            `json:"icmp_silenced"`
	RateLimited       uint64            `json:"rate_limited"`
	QueueFrozenObs    uint64            `json:"queue_frozen_obs"`
	InjectWalks       uint64            `json:"inject_walks"`
	InjectDelivered   uint64            `json:"inject_delivered"`
	InjectLost        uint64            `json:"inject_lost"`
	InjectUnreachable uint64            `json:"inject_unreachable"`
	RTTMicros         HistogramSnapshot `json:"rtt_micros"`
}

// AnalysisSnapshot freezes AnalysisStats.
type AnalysisSnapshot struct {
	Sweeps        uint64  `json:"sweeps"`
	FoldsComputed uint64  `json:"folds_computed"`
	FoldsReused   uint64  `json:"folds_reused"`
	FoldHitRate   float64 `json:"fold_hit_rate"`
}

// FaultsSnapshot freezes FaultStats.
type FaultsSnapshot struct {
	Planned uint64 `json:"planned"`
	Entered uint64 `json:"entered"`
	Exited  uint64 `json:"exited"`
}

// Snapshot is the full JSON export.
type Snapshot struct {
	Schema        string           `json:"schema"`
	WallStart     string           `json:"wall_start"`
	WallElapsedNS int64            `json:"wall_elapsed_ns"`
	Engine        EngineSnapshot   `json:"engine"`
	Probe         ProbeSnapshot    `json:"probe"`
	Analysis      AnalysisSnapshot `json:"analysis"`
	Faults        FaultsSnapshot   `json:"faults"`
	Spans         []SpanSnapshot   `json:"spans"`
	SpansDropped  uint64           `json:"spans_dropped"`
	Events        []EventSnapshot  `json:"events"`
	EventsDropped uint64           `json:"events_dropped"`
}

// SchemaVersion names the snapshot layout.
const SchemaVersion = "afrixp-telemetry/1"

// Snapshot freezes every metric and log entry. Safe to call from any
// goroutine, including while a campaign is running.
func (t *Telemetry) Snapshot() Snapshot {
	now := t.now()
	elapsed := now.Sub(t.start)
	s := Snapshot{
		Schema:        SchemaVersion,
		WallStart:     t.start.UTC().Format(time.RFC3339Nano),
		WallElapsedNS: int64(elapsed),
	}

	s.Engine = EngineSnapshot{
		BatchesOpened:    t.Engine.BatchesOpened.Load(),
		QuiescentSteps:   t.Engine.QuiescentSteps.Load(),
		Flushes:          t.Engine.Flushes.Load(),
		RoundsDispatched: t.Engine.RoundsDispatched.Load(),
		BatchLen:         t.Engine.BatchLen.snapshot(),
	}
	for k := range t.Engine.workerBusy {
		busy := t.Engine.workerBusy[k].Load()
		util := 0.0
		if elapsed > 0 {
			util = float64(busy) / float64(elapsed)
		}
		s.Engine.Workers = append(s.Engine.Workers, WorkerSnapshot{Worker: k, BusyNS: busy, Utilization: util})
	}
	for k := range t.Engine.shards {
		g := &t.Engine.shards[k]
		rounds := g.Rounds.Load()
		rps := 0.0
		if elapsed > 0 {
			rps = float64(rounds) / (float64(elapsed) / float64(time.Second))
		}
		s.Engine.Shards = append(s.Engine.Shards, ShardSnapshot{
			Shard:         k,
			ResidentBytes: g.ResidentBytes.Load(),
			LinksOwned:    g.LinksOwned.Load(),
			Rounds:        rounds,
			RoundsPerSec:  rps,
		})
	}

	s.Probe = ProbeSnapshot{
		Probes:            t.Probe.Probes.Load(),
		Delivered:         t.Probe.Delivered.Load(),
		PipeDrops:         t.Probe.PipeDrops.Load(),
		ICMPSilenced:      t.Probe.ICMPSilenced.Load(),
		RateLimited:       t.Probe.RateLimited.Load(),
		QueueFrozenObs:    t.Probe.QueueFrozenObs.Load(),
		InjectWalks:       t.Probe.InjectWalks.Load(),
		InjectDelivered:   t.Probe.InjectDelivered.Load(),
		InjectLost:        t.Probe.InjectLost.Load(),
		InjectUnreachable: t.Probe.InjectUnreachable.Load(),
		RTTMicros:         t.Probe.RTT.snapshot(),
	}

	s.Analysis = AnalysisSnapshot{
		Sweeps:        t.Analysis.Sweeps.Load(),
		FoldsComputed: t.Analysis.FoldsComputed.Load(),
		FoldsReused:   t.Analysis.FoldsReused.Load(),
	}
	if tot := s.Analysis.FoldsComputed + s.Analysis.FoldsReused; tot > 0 {
		s.Analysis.FoldHitRate = float64(s.Analysis.FoldsReused) / float64(tot)
	}

	s.Faults = FaultsSnapshot{
		Planned: t.Faults.Planned.Load(),
		Entered: t.Faults.Entered.Load(),
		Exited:  t.Faults.Exited.Load(),
	}

	t.mu.Lock()
	for _, sp := range t.spans {
		s.Spans = append(s.Spans, SpanSnapshot{
			Phase:          sp.Phase,
			Label:          sp.Label,
			VStart:         sp.VStart.String(),
			VEnd:           sp.VEnd.String(),
			VDurationNS:    int64(sp.VEnd.Sub(sp.VStart)),
			WallOffsetNS:   int64(sp.WallStart.Sub(t.start)),
			WallDurationNS: int64(sp.WallEnd.Sub(sp.WallStart)),
		})
	}
	for _, ev := range t.events {
		s.Events = append(s.Events, EventSnapshot{
			Phase:        ev.Phase,
			V:            ev.V.String(),
			WallOffsetNS: int64(ev.Wall.Sub(t.start)),
			Msg:          ev.Msg,
		})
	}
	t.mu.Unlock()
	s.SpansDropped = t.SpansDropped.Load()
	s.EventsDropped = t.EventsDropped.Load()
	return s
}

// WriteJSON writes the indented snapshot JSON to w.
func (t *Telemetry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(t.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: marshal snapshot: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteJSONFile writes the snapshot to a file, replacing it.
func (t *Telemetry) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteReport renders the human-readable telemetry section the
// observatory report embeds: headline counters plus per-phase spans.
func (t *Telemetry) WriteReport(w io.Writer) {
	s := t.Snapshot()
	fmt.Fprintf(w, "telemetry (%s, wall %v)\n", s.Schema, time.Duration(s.WallElapsedNS).Round(time.Millisecond))
	fmt.Fprintf(w, "  engine: %d batches opened, %d quiescent steps, %d flushes, %d rounds dispatched\n",
		s.Engine.BatchesOpened, s.Engine.QuiescentSteps, s.Engine.Flushes, s.Engine.RoundsDispatched)
	for _, wk := range s.Engine.Workers {
		fmt.Fprintf(w, "  worker %d: busy %v (utilization %.1f%%)\n",
			wk.Worker, time.Duration(wk.BusyNS).Round(time.Millisecond), 100*wk.Utilization)
	}
	for _, sh := range s.Engine.Shards {
		fmt.Fprintf(w, "  shard %d: %d links, %.1f MiB resident, %d rounds (%.0f rounds/s)\n",
			sh.Shard, sh.LinksOwned, float64(sh.ResidentBytes)/(1<<20), sh.Rounds, sh.RoundsPerSec)
	}
	fmt.Fprintf(w, "  probe: %d sent, %d delivered, %d pipe drops, %d icmp-silenced, %d rate-limited, %d frozen queue obs\n",
		s.Probe.Probes, s.Probe.Delivered, s.Probe.PipeDrops, s.Probe.ICMPSilenced, s.Probe.RateLimited, s.Probe.QueueFrozenObs)
	fmt.Fprintf(w, "  inject: %d walks (%d delivered, %d lost, %d unreachable)\n",
		s.Probe.InjectWalks, s.Probe.InjectDelivered, s.Probe.InjectLost, s.Probe.InjectUnreachable)
	fmt.Fprintf(w, "  analysis: %d sweeps, diurnal-fold cache hit rate %.1f%% (%d computed, %d reused)\n",
		s.Analysis.Sweeps, 100*s.Analysis.FoldHitRate, s.Analysis.FoldsComputed, s.Analysis.FoldsReused)
	fmt.Fprintf(w, "  faults: %d planned, %d entered, %d exited\n",
		s.Faults.Planned, s.Faults.Entered, s.Faults.Exited)
	fmt.Fprintf(w, "  spans: %d recorded (%d dropped), events: %d recorded (%d dropped)\n",
		len(s.Spans), s.SpansDropped, len(s.Events), s.EventsDropped)
}
