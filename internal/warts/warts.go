// Package warts implements a compact binary on-disk format for probe
// records, modeled on scamper's warts output that Ark monitors upload.
// A campaign writes millions of records (the paper's six VPs produced
// 2.1 billion traceroutes); the format is therefore length-prefixed,
// append-only, and streamable: a Reader never loads more than one
// record.
//
// Layout: the file starts with the 4-byte magic "AWT1"; each record is
//
//	u16 length (of the body that follows)
//	u8  type
//	u8  flags
//	i64 timestamp (virtual ns)
//	u32 target, u32 responder (IPv4, big endian)
//	u8  ttl, u8 respType
//	u32 rtt (microseconds; meaningless when the Lost flag is set)
//	u8  vpLen, vp bytes
//	u8  rrCount, rrCount × u32 recorded addresses
package warts

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"afrixp/internal/netaddr"
	"afrixp/internal/simclock"
)

// Record types.
const (
	TypePing uint8 = iota + 1
	TypeTraceHop
	TypeTSLP
	TypeLossProbe
	TypeRRPing
)

// Flags.
const (
	FlagLost uint8 = 1 << iota
	FlagRRFull
)

// Record is one measurement result.
type Record struct {
	Type      uint8
	VP        string
	At        simclock.Time
	Target    netaddr.Addr
	Responder netaddr.Addr
	TTL       uint8
	RespType  uint8 // ICMP type of the response
	RTT       simclock.Duration
	Lost      bool
	RRFull    bool
	RR        []netaddr.Addr
}

var magic = [4]byte{'A', 'W', 'T', '1'}

// ErrBadMagic reports a stream that is not a warts file.
var ErrBadMagic = errors.New("warts: bad magic")

// Writer streams records to w.
type Writer struct {
	bw  *bufio.Writer
	buf []byte
}

// NewWriter writes the file header and returns a Writer. Call Flush
// when done.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	return &Writer{bw: bw}, nil
}

// Write appends one record.
func (w *Writer) Write(r *Record) error {
	if len(r.VP) > 255 {
		return fmt.Errorf("warts: VP name %q too long", r.VP)
	}
	if len(r.RR) > 255 {
		return fmt.Errorf("warts: %d RR entries", len(r.RR))
	}
	b := w.buf[:0]
	var flags uint8
	if r.Lost {
		flags |= FlagLost
	}
	if r.RRFull {
		flags |= FlagRRFull
	}
	b = append(b, r.Type, flags)
	b = binary.BigEndian.AppendUint64(b, uint64(r.At))
	b = binary.BigEndian.AppendUint32(b, uint32(r.Target))
	b = binary.BigEndian.AppendUint32(b, uint32(r.Responder))
	b = append(b, r.TTL, r.RespType)
	us := r.RTT.Microseconds()
	if us < 0 || us > int64(^uint32(0)) {
		us = int64(^uint32(0))
	}
	b = binary.BigEndian.AppendUint32(b, uint32(us))
	b = append(b, uint8(len(r.VP)))
	b = append(b, r.VP...)
	b = append(b, uint8(len(r.RR)))
	for _, a := range r.RR {
		b = binary.BigEndian.AppendUint32(b, uint32(a))
	}
	w.buf = b
	if len(b) > 0xFFFF {
		return fmt.Errorf("warts: record body %d bytes", len(b))
	}
	var hdr [2]byte
	binary.BigEndian.PutUint16(hdr[:], uint16(len(b)))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.bw.Write(b)
	return err
}

// Flush drains buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Reader streams records from r.
type Reader struct {
	br  *bufio.Reader
	buf []byte
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("warts: reading magic: %w", err)
	}
	if m != magic {
		return nil, ErrBadMagic
	}
	return &Reader{br: br}, nil
}

// Next returns the next record, or io.EOF at end of stream.
func (r *Reader) Next() (*Record, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("warts: record header: %w", err)
	}
	n := int(binary.BigEndian.Uint16(hdr[:]))
	if cap(r.buf) < n {
		r.buf = make([]byte, n)
	}
	b := r.buf[:n]
	if _, err := io.ReadFull(r.br, b); err != nil {
		return nil, fmt.Errorf("warts: record body: %w", err)
	}
	return decode(b)
}

func decode(b []byte) (*Record, error) {
	const fixed = 2 + 8 + 4 + 4 + 2 + 4 + 1
	if len(b) < fixed {
		return nil, fmt.Errorf("warts: record body %d bytes", len(b))
	}
	rec := &Record{Type: b[0]}
	flags := b[1]
	rec.Lost = flags&FlagLost != 0
	rec.RRFull = flags&FlagRRFull != 0
	rec.At = simclock.Time(binary.BigEndian.Uint64(b[2:]))
	rec.Target = netaddr.Addr(binary.BigEndian.Uint32(b[10:]))
	rec.Responder = netaddr.Addr(binary.BigEndian.Uint32(b[14:]))
	rec.TTL = b[18]
	rec.RespType = b[19]
	rec.RTT = time.Duration(binary.BigEndian.Uint32(b[20:])) * time.Microsecond
	vpLen := int(b[24])
	p := 25 + vpLen
	if len(b) < p+1 {
		return nil, errors.New("warts: truncated VP name")
	}
	rec.VP = string(b[25:p])
	rrCount := int(b[p])
	p++
	if len(b) < p+4*rrCount {
		return nil, errors.New("warts: truncated RR list")
	}
	for i := 0; i < rrCount; i++ {
		rec.RR = append(rec.RR, netaddr.Addr(binary.BigEndian.Uint32(b[p+4*i:])))
	}
	return rec, nil
}

// Count drains the reader and returns the number of records.
func Count(r *Reader) (int, error) {
	n := 0
	for {
		_, err := r.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		n++
	}
}
