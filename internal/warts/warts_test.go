package warts

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"afrixp/internal/netaddr"
	"afrixp/internal/simclock"
)

func ma(s string) netaddr.Addr { return netaddr.MustParseAddr(s) }

func sample() []*Record {
	return []*Record{
		{Type: TypePing, VP: "gixa-gh", At: simclock.Date(2016, time.March, 1),
			Target: ma("196.49.7.10"), Responder: ma("196.49.7.10"),
			TTL: 64, RespType: 0, RTT: 1234 * time.Microsecond},
		{Type: TypeTSLP, VP: "gixa-gh", At: simclock.Date(2016, time.March, 1).Add(5 * time.Minute),
			Target: ma("196.49.7.10"), TTL: 2, Lost: true},
		{Type: TypeRRPing, VP: "sixp-gm", At: simclock.Date(2016, time.July, 1),
			Target: ma("10.9.9.9"), Responder: ma("10.9.9.9"), TTL: 64,
			RTT: 20 * time.Millisecond, RRFull: true,
			RR: []netaddr.Addr{ma("10.0.0.1"), ma("10.9.9.9"), ma("10.0.0.2")}},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sample()
	for _, r := range want {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, wrec := range want {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, wrec) {
			t.Fatalf("record %d:\n got %+v\nwant %+v", i, got, wrec)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOPE1234"))); err != ErrBadMagic {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
	if _, err := NewReader(bytes.NewReader([]byte("AW"))); err == nil {
		t.Fatal("short magic must fail")
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(sample()[0])
	w.Flush()
	data := buf.Bytes()
	r, err := NewReader(bytes.NewReader(data[:len(data)-3]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Fatalf("truncated body should error, got %v", err)
	}
}

func TestCount(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 57; i++ {
		w.Write(&Record{Type: TypePing, VP: "x", At: simclock.Time(i)})
	}
	w.Flush()
	r, _ := NewReader(&buf)
	n, err := Count(r)
	if err != nil || n != 57 {
		t.Fatalf("count = %d err %v", n, err)
	}
}

func TestValidationErrors(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	long := make([]byte, 300)
	if err := w.Write(&Record{VP: string(long)}); err == nil {
		t.Fatal("long VP must be rejected")
	}
	if err := w.Write(&Record{RR: make([]netaddr.Addr, 300)}); err == nil {
		t.Fatal("long RR must be rejected")
	}
}

func TestRTTSaturation(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(&Record{Type: TypePing, VP: "x", RTT: 100 * time.Hour})
	w.Flush()
	r, _ := NewReader(&buf)
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.RTT != time.Duration(^uint32(0))*time.Microsecond {
		t.Fatalf("oversized RTT should saturate, got %v", rec.RTT)
	}
}

func TestFuzzRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	var want []*Record
	for i := 0; i < 500; i++ {
		rec := &Record{
			Type:      uint8(1 + rng.Intn(5)),
			VP:        string(rune('a' + rng.Intn(26))),
			At:        simclock.Time(rng.Int63n(1 << 50)),
			Target:    netaddr.Addr(rng.Uint32()),
			Responder: netaddr.Addr(rng.Uint32()),
			TTL:       uint8(rng.Intn(256)),
			RespType:  uint8(rng.Intn(256)),
			RTT:       time.Duration(rng.Intn(1e9)) * time.Microsecond,
			Lost:      rng.Intn(2) == 0,
			RRFull:    rng.Intn(2) == 0,
		}
		for j := 0; j < rng.Intn(9); j++ {
			rec.RR = append(rec.RR, netaddr.Addr(rng.Uint32()))
		}
		want = append(want, rec)
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	r, _ := NewReader(&buf)
	for i := range want {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func BenchmarkWrite(b *testing.B) {
	w, _ := NewWriter(io.Discard)
	rec := sample()[2]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Write(rec)
	}
	w.Flush()
}
