package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// Property: the min-aggregate of a series never exceeds any present
// input in its bin, and covers all inputs.
func TestQuickAggregateMinBound(t *testing.T) {
	f := func(seed int64, n8, factor8 uint8) bool {
		n := int(n8%200) + 10
		factor := int(factor8%10) + 1
		rng := rand.New(rand.NewSource(seed))
		s := NewRegular(0, 5*time.Minute, n)
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.8 {
				s.Set(i, rng.Float64()*100)
			}
		}
		agg := s.Aggregate(factor, Min)
		for i, v := range s.Values {
			if IsMissing(v) {
				continue
			}
			av := agg.Values[i/factor]
			if IsMissing(av) || av > v+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := int(n8%100) + 2
		rng := rand.New(rand.NewSource(seed))
		vs := make([]float64, n)
		for i := range vs {
			vs[i] = rng.NormFloat64() * 50
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(vs, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		lo, hi := Quantile(vs, 0), Quantile(vs, 1)
		for _, v := range vs {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: Slice never loses or invents samples — concatenating a
// two-way split reproduces the original present count.
func TestQuickSlicePartition(t *testing.T) {
	f := func(seed int64, n8, cut8 uint8) bool {
		n := int(n8%200) + 4
		rng := rand.New(rand.NewSource(seed))
		s := NewRegular(0, time.Minute, n)
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.7 {
				s.Set(i, float64(i))
			}
		}
		cutIdx := int(cut8) % n
		cut := s.TimeAt(cutIdx)
		end := s.TimeAt(n)
		left := s.Slice(0, cut)
		right := s.Slice(cut, end)
		return left.PresentCount()+right.PresentCount() == s.PresentCount() &&
			left.Len()+right.Len() == s.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: FoldDaily bins partition the samples — the per-bin counts
// sum to the present count.
func TestQuickFoldDailyPartition(t *testing.T) {
	f := func(seed int64, days8 uint8) bool {
		days := int(days8%10) + 1
		rng := rand.New(rand.NewSource(seed))
		s := NewRegular(0, 30*time.Minute, days*48)
		for i := 0; i < s.Len(); i++ {
			if rng.Float64() < 0.6 {
				s.Set(i, rng.Float64())
			}
		}
		count := 0
		counts := s.FoldDaily(30*time.Minute, func(vs []float64) float64 {
			count += len(vs)
			return 0
		})
		return count == s.PresentCount() && len(counts) == 48
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
