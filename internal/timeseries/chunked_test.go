package timeseries

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"afrixp/internal/simclock"
)

// randomSeries builds a flat series shaped like collector output: a
// regular grid with missing runs, repeated floors, and moving values.
func randomSeries(rng *rand.Rand) *Series {
	n := rng.Intn(1200) // spans several 256-slot blocks at the top end
	s := NewRegular(simclock.Time(rng.Intn(10_000))*simclock.Time(time.Second), 30*time.Minute, n)
	floor := 1 + rng.Float64()*50
	for i := 0; i < n; i++ {
		switch rng.Intn(5) {
		case 0: // missing (already NaN)
		case 1:
			s.Values[i] = floor
		default:
			s.Values[i] = floor + rng.Float64()*100
		}
	}
	return s
}

func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func bitsSliceEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bitsEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// TestChunkedMatchesFlat is the property-test satellite: every
// statistic on a chunk-backed series must match the flat
// implementation bit for bit.
func TestChunkedMatchesFlat(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		flat := randomSeries(rng)
		ch := Compress(flat)
		if !ch.Chunked() || ch.Len() != flat.Len() {
			return false
		}

		for i := 0; i < flat.Len(); i++ {
			if !bitsEqual(flat.ValueAt(i), ch.ValueAt(i)) {
				t.Logf("ValueAt(%d) differs", i)
				return false
			}
		}
		if flat.PresentCount() != ch.PresentCount() ||
			!bitsEqual(flat.LossFraction(), ch.LossFraction()) ||
			flat.LastPresentIndex() != ch.LastPresentIndex() {
			t.Logf("presence accounting differs")
			return false
		}
		if !bitsSliceEqual(flat.Present(), ch.Present()) {
			t.Logf("Present differs")
			return false
		}

		fa, ca := flat.Aggregate(6, Min), ch.Aggregate(6, Min)
		if fa.Start != ca.Start || fa.Step != ca.Step || !bitsSliceEqual(fa.Values, ca.Values) {
			t.Logf("Aggregate differs")
			return false
		}

		if flat.Len() > 0 {
			ff := flat.FoldDaily(30*time.Minute, Mean)
			cf := ch.FoldDaily(30*time.Minute, Mean)
			if !bitsSliceEqual(ff, cf) {
				t.Logf("FoldDaily differs")
				return false
			}
		}

		fs, cs := flat.Summarize(), ch.Summarize()
		if fs.N != cs.N || !bitsEqual(fs.Min, cs.Min) || !bitsEqual(fs.Max, cs.Max) ||
			!bitsEqual(fs.Mean, cs.Mean) || !bitsEqual(fs.Median, cs.Median) ||
			!bitsEqual(fs.P5, cs.P5) || !bitsEqual(fs.P95, cs.P95) ||
			!bitsEqual(fs.Stddev, cs.Stddev) {
			t.Logf("Summarize differs: %+v vs %+v", fs, cs)
			return false
		}

		// Windowing shares the chunk; a misaligned sub-view exercises
		// the partial-block paths in Each.
		if flat.Len() > 3 {
			from := flat.TimeAt(flat.Len() / 3)
			to := flat.TimeAt(2 * flat.Len() / 3)
			fw, cw := flat.Slice(from, to), ch.Slice(from, to)
			if fw.Len() != cw.Len() {
				t.Logf("Slice length differs")
				return false
			}
			if !bitsSliceEqual(fw.Present(), cw.Present()) {
				t.Logf("sliced Present differs")
				return false
			}
			if fw.Len() > 0 {
				if !bitsSliceEqual(fw.FoldDaily(30*time.Minute, Mean), cw.FoldDaily(30*time.Minute, Mean)) {
					t.Logf("sliced FoldDaily differs")
					return false
				}
			}
		}

		// SplitDays must agree on day keys and per-day presence.
		fd, cd := flat.SplitDays(), ch.SplitDays()
		if len(fd) != len(cd) {
			t.Logf("SplitDays size differs")
			return false
		}
		for day, sub := range fd {
			csub, ok := cd[day]
			if !ok || !bitsSliceEqual(sub.Present(), csub.Present()) {
				t.Logf("SplitDays day %d differs", day)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSummarizeSingleSortMatchesLegacy pins the Summarize rewrite
// against the definitionally-correct per-quantile clone+sort.
func TestSummarizeSingleSortMatchesLegacy(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSeries(rng)
		st := s.Summarize()
		vs := s.Present()
		if st.N != len(vs) {
			return false
		}
		if len(vs) == 0 {
			return math.IsNaN(st.Median)
		}
		return bitsEqual(st.Median, Quantile(vs, 0.5)) &&
			bitsEqual(st.P5, Quantile(vs, 0.05)) &&
			bitsEqual(st.P95, Quantile(vs, 0.95))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuantileSortedMatchesQuantile pins the sorted fast path.
func TestQuantileSortedMatchesQuantile(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(40)
		vs := make([]float64, n)
		for i := range vs {
			vs[i] = rng.NormFloat64() * 100
		}
		sorted := append([]float64(nil), vs...)
		sort.Float64s(sorted)
		for _, q := range []float64{-1, 0, 0.05, 0.1, 0.5, 0.95, 1, 2} {
			if !bitsEqual(Quantile(vs, q), QuantileSorted(sorted, q)) {
				t.Fatalf("trial %d q=%v: Quantile %v != QuantileSorted %v",
					trial, q, Quantile(vs, q), QuantileSorted(sorted, q))
			}
		}
	}
}

func TestChunkedSeriesIsImmutable(t *testing.T) {
	s := Compress(NewRegular(0, 5*time.Minute, 10))
	defer func() {
		if recover() == nil {
			t.Fatal("Set on chunked series did not panic")
		}
	}()
	s.Set(0, 1)
}
