package timeseries

import (
	"math"
	"testing"
	"time"

	"afrixp/internal/simclock"
)

func newFilled(n int, fn func(i int) float64) *Series {
	s := NewRegular(0, 5*time.Minute, n)
	for i := 0; i < n; i++ {
		s.Set(i, fn(i))
	}
	return s
}

func TestNewRegularAllMissing(t *testing.T) {
	s := NewRegular(0, time.Minute, 10)
	if s.Len() != 10 || s.PresentCount() != 0 {
		t.Fatalf("len %d present %d", s.Len(), s.PresentCount())
	}
	if s.LossFraction() != 1 {
		t.Fatal("all-missing series has loss fraction 1")
	}
}

func TestIndexAndTimeAt(t *testing.T) {
	start := simclock.Date(2016, time.March, 1)
	s := NewRegular(start, 5*time.Minute, 288)
	if got := s.Index(start.Add(12 * time.Minute)); got != 2 {
		t.Fatalf("Index = %d", got)
	}
	if got := s.TimeAt(2); got != start.Add(10*time.Minute) {
		t.Fatalf("TimeAt = %v", got)
	}
	if s.Index(start.Add(-time.Minute)) != -1 {
		t.Fatal("before start must be -1")
	}
	if s.Index(start.Add(24*time.Hour)) != -1 {
		t.Fatal("past end must be -1")
	}
}

func TestSetAtAndAt(t *testing.T) {
	start := simclock.Date(2016, time.March, 1)
	s := NewRegular(start, 5*time.Minute, 12)
	s.SetAt(start.Add(17*time.Minute), 42)
	if got := s.At(start.Add(15 * time.Minute)); got != 42 {
		t.Fatalf("At = %v", got)
	}
	s.SetAt(start.Add(-time.Hour), 1) // silently ignored
	s.SetAt(start.Add(2*time.Hour), 1)
	if s.PresentCount() != 1 {
		t.Fatal("out-of-grid SetAt must be ignored")
	}
	if !IsMissing(s.At(start)) {
		t.Fatal("unset slot must be missing")
	}
}

func TestSlice(t *testing.T) {
	start := simclock.Date(2016, time.March, 1)
	s := newFilled(288, func(i int) float64 { return float64(i) })
	s.Start = start
	sub := s.Slice(start.Add(time.Hour), start.Add(2*time.Hour))
	if sub.Len() != 12 {
		t.Fatalf("slice len = %d", sub.Len())
	}
	if sub.Values[0] != 12 {
		t.Fatalf("slice start value = %v", sub.Values[0])
	}
	if sub.Start != start.Add(time.Hour) {
		t.Fatal("slice start time wrong")
	}
	// Degenerate and out-of-range slices are safe.
	if s.Slice(start.Add(100*time.Hour), start.Add(200*time.Hour)).Len() != 0 {
		t.Fatal("past-end slice should be empty")
	}
	if s.Slice(start.Add(2*time.Hour), start.Add(time.Hour)).Len() != 0 {
		t.Fatal("inverted slice should be empty")
	}
}

func TestAggregateMin(t *testing.T) {
	s := newFilled(12, func(i int) float64 { return float64(10 + i%6) })
	s.Set(3, Missing)
	agg := s.Aggregate(6, Min)
	if agg.Len() != 2 || agg.Step != 30*time.Minute {
		t.Fatalf("agg: len %d step %v", agg.Len(), agg.Step)
	}
	if agg.Values[0] != 10 || agg.Values[1] != 10 {
		t.Fatalf("agg values: %v", agg.Values)
	}
}

func TestAggregateAllMissingBin(t *testing.T) {
	s := NewRegular(0, 5*time.Minute, 12)
	s.Set(7, 5)
	agg := s.Aggregate(6, Min)
	if !IsMissing(agg.Values[0]) {
		t.Fatal("empty bin must stay missing")
	}
	if agg.Values[1] != 5 {
		t.Fatal("second bin should carry the sample")
	}
}

func TestQuantileAndMedian(t *testing.T) {
	vs := []float64{5, 1, 3, 2, 4}
	if Median(vs) != 3 {
		t.Fatalf("median = %v", Median(vs))
	}
	if Quantile(vs, 0) != 1 || Quantile(vs, 1) != 5 {
		t.Fatal("extreme quantiles wrong")
	}
	if got := Quantile(vs, 0.25); got != 2 {
		t.Fatalf("q25 = %v", got)
	}
	if !IsMissing(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile must be missing")
	}
	// Input must not be mutated.
	if vs[0] != 5 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	s := newFilled(100, func(i int) float64 { return float64(i) })
	s.Set(50, Missing)
	st := s.Summarize()
	if st.N != 99 || st.Min != 0 || st.Max != 99 {
		t.Fatalf("stats: %+v", st)
	}
	if math.Abs(st.Mean-49.49) > 0.05 {
		t.Fatalf("mean = %v", st.Mean)
	}
	if st.Stddev <= 0 {
		t.Fatal("stddev must be positive")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	st := NewRegular(0, time.Minute, 5).Summarize()
	if st.N != 0 || !IsMissing(st.Mean) || !IsMissing(st.Min) {
		t.Fatalf("empty stats: %+v", st)
	}
}

func TestFoldDaily(t *testing.T) {
	// Three days of samples: value = hour of day. Folding by hour
	// should return the hour index per bin.
	start := simclock.Date(2016, time.March, 1)
	s := NewRegular(start, 5*time.Minute, 3*288)
	for i := 0; i < s.Len(); i++ {
		s.Set(i, math.Floor(s.TimeAt(i).HourOfDay()))
	}
	prof := s.FoldDaily(time.Hour, Mean)
	if len(prof) != 24 {
		t.Fatalf("profile bins = %d", len(prof))
	}
	for h, v := range prof {
		if v != float64(h) {
			t.Fatalf("bin %d = %v", h, v)
		}
	}
}

func TestFoldDailyPanicsOnBadBin(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRegular(0, time.Minute, 10).FoldDaily(7*time.Hour, Mean)
}

func TestSplitDays(t *testing.T) {
	start := simclock.Date(2016, time.March, 1)
	s := NewRegular(start, time.Hour, 72) // 3 days
	for i := 0; i < 72; i++ {
		s.Set(i, float64(i))
	}
	days := s.SplitDays()
	if len(days) != 3 {
		t.Fatalf("got %d days", len(days))
	}
	d0 := start.Day()
	if days[d0].Len() != 24 || days[d0].Values[0] != 0 {
		t.Fatalf("day 0: %+v", days[d0])
	}
	if days[d0+2].Values[0] != 48 {
		t.Fatal("day 2 should start at 48")
	}
}

func TestSplitDaysOmitsEmptyDays(t *testing.T) {
	start := simclock.Date(2016, time.March, 1)
	s := NewRegular(start, time.Hour, 48)
	s.Set(30, 1) // only day 1 has data
	days := s.SplitDays()
	if len(days) != 1 {
		t.Fatalf("got %d days, want 1", len(days))
	}
}

func TestMinMeanHelpers(t *testing.T) {
	if Min([]float64{3, 1, 2}) != 1 {
		t.Fatal("Min wrong")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
}
