// Package timeseries stores and summarizes the regular-grid RTT series
// TSLP produces: one sample per 5-minute round per probed target, with
// explicit missing values for lost probes. All statistics skip missing
// samples.
package timeseries

import (
	"fmt"
	"math"
	"sort"
	"time"

	"afrixp/internal/simclock"
)

// Missing marks a lost or never-taken sample.
var Missing = math.NaN()

// IsMissing reports whether v is the missing marker.
func IsMissing(v float64) bool { return math.IsNaN(v) }

// Series is a regular-grid time series: sample i was taken at
// Start + i*Step. Values are RTT milliseconds (or loss percentages in
// the loss pipeline); NaN marks missing samples.
type Series struct {
	Start  simclock.Time
	Step   simclock.Duration
	Values []float64
}

// NewRegular allocates an all-missing series of n samples.
func NewRegular(start simclock.Time, step simclock.Duration, n int) *Series {
	if step <= 0 {
		panic("timeseries: non-positive step")
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = Missing
	}
	return &Series{Start: start, Step: step, Values: v}
}

// Len returns the number of grid slots.
func (s *Series) Len() int { return len(s.Values) }

// TimeAt returns the timestamp of slot i.
func (s *Series) TimeAt(i int) simclock.Time {
	return s.Start.Add(time.Duration(i) * s.Step)
}

// Index returns the slot for time t, or -1 when t is off the grid.
func (s *Series) Index(t simclock.Time) int {
	if t < s.Start {
		return -1
	}
	i := int(t.Sub(s.Start) / s.Step)
	if i >= len(s.Values) {
		return -1
	}
	return i
}

// Set records a sample at slot i.
func (s *Series) Set(i int, v float64) { s.Values[i] = v }

// SetAt records a sample at the slot covering t; out-of-grid times are
// ignored (campaign edges).
func (s *Series) SetAt(t simclock.Time, v float64) {
	if i := s.Index(t); i >= 0 {
		s.Values[i] = v
	}
}

// At returns the sample at the slot covering t.
func (s *Series) At(t simclock.Time) float64 {
	if i := s.Index(t); i >= 0 {
		return s.Values[i]
	}
	return Missing
}

// Slice returns the sub-series covering [from, to).
func (s *Series) Slice(from, to simclock.Time) *Series {
	lo := 0
	if from.After(s.Start) {
		lo = int(from.Sub(s.Start) / s.Step)
	}
	hi := len(s.Values)
	if idx := s.Index(to); idx >= 0 {
		hi = idx
	}
	if lo > len(s.Values) {
		lo = len(s.Values)
	}
	if hi < lo {
		hi = lo
	}
	return &Series{Start: s.TimeAt(lo), Step: s.Step, Values: s.Values[lo:hi]}
}

// Present returns the non-missing values in order.
func (s *Series) Present() []float64 {
	out := make([]float64, 0, len(s.Values))
	for _, v := range s.Values {
		if !IsMissing(v) {
			out = append(out, v)
		}
	}
	return out
}

// PresentCount returns the number of non-missing samples.
func (s *Series) PresentCount() int {
	n := 0
	for _, v := range s.Values {
		if !IsMissing(v) {
			n++
		}
	}
	return n
}

// LossFraction returns the fraction of grid slots that are missing.
func (s *Series) LossFraction() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return 1 - float64(s.PresentCount())/float64(len(s.Values))
}

// Aggregate returns a coarser series whose slot j summarizes `factor`
// input slots with fn (e.g. Min over 6 five-minute samples → 30-minute
// minimum filtering, the standard TSLP noise reduction). Slots with no
// present inputs stay missing.
func (s *Series) Aggregate(factor int, fn func([]float64) float64) *Series {
	if factor <= 0 {
		panic("timeseries: non-positive aggregation factor")
	}
	n := (len(s.Values) + factor - 1) / factor
	out := NewRegular(s.Start, s.Step*time.Duration(factor), n)
	buf := make([]float64, 0, factor)
	for j := 0; j < n; j++ {
		buf = buf[:0]
		for k := j * factor; k < (j+1)*factor && k < len(s.Values); k++ {
			if !IsMissing(s.Values[k]) {
				buf = append(buf, s.Values[k])
			}
		}
		if len(buf) > 0 {
			out.Values[j] = fn(buf)
		}
	}
	return out
}

// Min returns the smallest of vs. It is the canonical Aggregate fn.
func Min(vs []float64) float64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Mean returns the arithmetic mean of vs.
func Mean(vs []float64) float64 {
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// Median returns the median of vs (vs is not modified).
func Median(vs []float64) float64 {
	return Quantile(vs, 0.5)
}

// Quantile returns the q-quantile of vs using linear interpolation.
func Quantile(vs []float64, q float64) float64 {
	if len(vs) == 0 {
		return Missing
	}
	c := append([]float64(nil), vs...)
	sort.Float64s(c)
	if q <= 0 {
		return c[0]
	}
	if q >= 1 {
		return c[len(c)-1]
	}
	pos := q * float64(len(c)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(c) {
		return c[len(c)-1]
	}
	return c[lo]*(1-frac) + c[lo+1]*frac
}

// Stats summarizes the present samples of a series.
type Stats struct {
	N            int
	Min, Max     float64
	Mean, Median float64
	P5, P95      float64
	Stddev       float64
}

// Summarize computes Stats over the present samples.
func (s *Series) Summarize() Stats {
	vs := s.Present()
	st := Stats{N: len(vs)}
	if len(vs) == 0 {
		st.Min, st.Max, st.Mean, st.Median, st.P5, st.P95, st.Stddev =
			Missing, Missing, Missing, Missing, Missing, Missing, Missing
		return st
	}
	st.Min, st.Max = vs[0], vs[0]
	var sum float64
	for _, v := range vs {
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
		sum += v
	}
	st.Mean = sum / float64(len(vs))
	var ss float64
	for _, v := range vs {
		d := v - st.Mean
		ss += d * d
	}
	st.Stddev = math.Sqrt(ss / float64(len(vs)))
	st.Median = Median(vs)
	st.P5 = Quantile(vs, 0.05)
	st.P95 = Quantile(vs, 0.95)
	return st
}

// FoldDaily folds the series by time of day into bins of the given
// width, returning per-bin aggregates (fn over all samples falling in
// that time-of-day bin across all days). The result has 24h/binWidth
// entries; empty bins are missing.
func (s *Series) FoldDaily(binWidth simclock.Duration, fn func([]float64) float64) []float64 {
	if binWidth <= 0 || 24*time.Hour%binWidth != 0 {
		panic(fmt.Sprintf("timeseries: bin width %v must divide 24h", binWidth))
	}
	nBins := int(24 * time.Hour / binWidth)
	secPerBin := int(binWidth / time.Second)

	// Two passes over the samples: count per bin, then fill contiguous
	// regions of one flat buffer. Same values in the same order as
	// per-bin append slices, without the per-bin allocation churn.
	offs := make([]int, nBins+1)
	for i, v := range s.Values {
		if IsMissing(v) {
			continue
		}
		offs[s.TimeAt(i).SecondOfDay()/secPerBin+1]++
	}
	for b := 0; b < nBins; b++ {
		offs[b+1] += offs[b]
	}
	flat := make([]float64, offs[nBins])
	cursor := make([]int, nBins)
	copy(cursor, offs[:nBins])
	for i, v := range s.Values {
		if IsMissing(v) {
			continue
		}
		b := s.TimeAt(i).SecondOfDay() / secPerBin
		flat[cursor[b]] = v
		cursor[b]++
	}
	out := make([]float64, nBins)
	for b := range out {
		lo, hi := offs[b], offs[b+1]
		if lo == hi {
			out[b] = Missing
		} else {
			out[b] = fn(flat[lo:hi])
		}
	}
	return out
}

// SplitDays returns one sub-series per UTC day, keyed by day index
// since the simclock epoch. Days with no present samples are omitted.
func (s *Series) SplitDays() map[int]*Series {
	out := make(map[int]*Series)
	perDay := int(24 * time.Hour / s.Step)
	if perDay == 0 {
		return out
	}
	for i := 0; i < len(s.Values); {
		day := s.TimeAt(i).Day()
		// Collect slots in this day.
		j := i
		for j < len(s.Values) && s.TimeAt(j).Day() == day {
			j++
		}
		sub := &Series{Start: s.TimeAt(i), Step: s.Step, Values: s.Values[i:j]}
		if sub.PresentCount() > 0 {
			out[day] = sub
		}
		i = j
	}
	return out
}
