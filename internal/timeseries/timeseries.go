// Package timeseries stores and summarizes the regular-grid RTT series
// TSLP produces: one sample per 5-minute round per probed target, with
// explicit missing values for lost probes. All statistics skip missing
// samples.
//
// A Series has two backings. The flat backing is a plain []float64 —
// mutable, cheap for short grids and synthetic test inputs. The chunked
// backing is an immutable tschunk.Chunk: XOR-compressed fixed-size
// blocks that the statistics stream through one decode buffer at a
// time, which is what lets a campaign hold months of per-link history
// (DESIGN.md §12). Both backings produce bit-identical statistics; the
// campaign engine pins that equivalence in its determinism tests.
package timeseries

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"afrixp/internal/simclock"
	"afrixp/internal/tschunk"
)

// Missing marks a lost or never-taken sample.
var Missing = math.NaN()

// IsMissing reports whether v is the missing marker.
func IsMissing(v float64) bool { return math.IsNaN(v) }

// Series is a regular-grid time series: sample i was taken at
// Start + i*Step. Values are RTT milliseconds (or loss percentages in
// the loss pipeline); NaN marks missing samples.
//
// Exactly one backing is active: Values (flat, mutable) or an
// immutable compressed chunk set via FromChunk. Mutating methods (Set,
// SetAt) panic on a chunked series; everything else works on both.
type Series struct {
	Start  simclock.Time
	Step   simclock.Duration
	Values []float64

	chunk *tschunk.Chunk // nil for flat series
	cOff  int            // first chunk slot of this view
	cLen  int            // view length in slots
}

// NewRegular allocates an all-missing flat series of n samples.
func NewRegular(start simclock.Time, step simclock.Duration, n int) *Series {
	if step <= 0 {
		panic("timeseries: non-positive step")
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = Missing
	}
	return &Series{Start: start, Step: step, Values: v}
}

// FromChunk wraps a sealed compressed chunk as a read-only series.
func FromChunk(start simclock.Time, step simclock.Duration, c *tschunk.Chunk) *Series {
	if step <= 0 {
		panic("timeseries: non-positive step")
	}
	return &Series{Start: start, Step: step, chunk: c, cLen: c.Len()}
}

// Chunked reports whether the series is backed by a compressed chunk.
func (s *Series) Chunked() bool { return s.chunk != nil }

// Chunk returns the compressed backing, or nil for a flat series. The
// returned chunk covers the whole underlying grid, not just this view;
// see ChunkSpan for the view's slot range.
func (s *Series) Chunk() *tschunk.Chunk { return s.chunk }

// ChunkSpan returns the [off, off+len) chunk-slot range this view
// covers. Meaningful only when Chunked.
func (s *Series) ChunkSpan() (off, n int) { return s.cOff, s.cLen }

// Len returns the number of grid slots.
func (s *Series) Len() int {
	if s.chunk != nil {
		return s.cLen
	}
	return len(s.Values)
}

// TimeAt returns the timestamp of slot i.
func (s *Series) TimeAt(i int) simclock.Time {
	return s.Start.Add(time.Duration(i) * s.Step)
}

// Index returns the slot for time t, or -1 when t is off the grid.
func (s *Series) Index(t simclock.Time) int {
	if t < s.Start {
		return -1
	}
	i := int(t.Sub(s.Start) / s.Step)
	if i >= s.Len() {
		return -1
	}
	return i
}

// ValueAt returns the sample at slot i regardless of backing. On a
// chunked series each call decodes the covering block; batch reads
// should use Each instead.
func (s *Series) ValueAt(i int) float64 {
	if s.chunk != nil {
		return s.chunk.At(s.cOff + i)
	}
	return s.Values[i]
}

// Set records a sample at slot i. Panics on a chunked series.
func (s *Series) Set(i int, v float64) {
	s.mutable()
	s.Values[i] = v
}

// SetAt records a sample at the slot covering t; out-of-grid times are
// ignored (campaign edges). Panics on a chunked series.
func (s *Series) SetAt(t simclock.Time, v float64) {
	s.mutable()
	if i := s.Index(t); i >= 0 {
		s.Values[i] = v
	}
}

func (s *Series) mutable() {
	if s.chunk != nil {
		panic("timeseries: write to chunk-backed series (chunks are immutable; build via tschunk.Builder)")
	}
}

// At returns the sample at the slot covering t.
func (s *Series) At(t simclock.Time) float64 {
	if i := s.Index(t); i >= 0 {
		return s.ValueAt(i)
	}
	return Missing
}

// blockBufs pools block decode buffers for Each. A stack array would
// be free, but the buffer is handed to an arbitrary callback, so
// escape analysis moves it to the heap on every call — and Each is the
// analysis read path, called thousands of times per link sweep. The
// pooled buffer is returned before Each exits; callbacks must not
// retain vals (documented on Each).
var blockBufs = sync.Pool{New: func() any { return new([tschunk.BlockLen]float64) }}

// Each streams the series in grid order as (base, vals) runs, where
// vals[k] is slot base+k. A flat series arrives as one run; a chunked
// series as one run per decoded block. The vals slice is only valid
// within the callback. This is the backing-agnostic bulk read path:
// every statistic below is built on it.
func (s *Series) Each(fn func(base int, vals []float64)) {
	if s.chunk == nil {
		if len(s.Values) > 0 {
			fn(0, s.Values)
		}
		return
	}
	if s.cLen == 0 {
		return
	}
	buf := blockBufs.Get().(*[tschunk.BlockLen]float64)
	defer blockBufs.Put(buf)
	first := s.cOff / tschunk.BlockLen
	last := (s.cOff + s.cLen - 1) / tschunk.BlockLen
	for b := first; b <= last; b++ {
		vals := s.chunk.DecodeBlock(b, buf[:0])
		base := s.chunk.BlockBase(b) - s.cOff // view-relative slot of vals[0]
		lo, hi := 0, len(vals)
		if base < 0 {
			lo = -base
		}
		if base+hi > s.cLen {
			hi = s.cLen - base
		}
		fn(base+lo, vals[lo:hi])
	}
}

// window returns the sub-view [lo, hi) by slot index, sharing the
// backing.
func (s *Series) window(lo, hi int) Series {
	w := Series{Start: s.TimeAt(lo), Step: s.Step}
	if s.chunk != nil {
		w.chunk = s.chunk
		w.cOff = s.cOff + lo
		w.cLen = hi - lo
	} else {
		w.Values = s.Values[lo:hi]
	}
	return w
}

// sliceBounds clamps [from, to) to slot indices the way Slice always
// has.
func (s *Series) sliceBounds(from, to simclock.Time) (lo, hi int) {
	lo = 0
	if from.After(s.Start) {
		lo = int(from.Sub(s.Start) / s.Step)
	}
	hi = s.Len()
	if idx := s.Index(to); idx >= 0 {
		hi = idx
	}
	if lo > s.Len() {
		lo = s.Len()
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// Slice returns the sub-series covering [from, to), sharing the
// backing (flat slices alias Values; chunked slices alias the chunk).
func (s *Series) Slice(from, to simclock.Time) *Series {
	lo, hi := s.sliceBounds(from, to)
	w := s.window(lo, hi)
	return &w
}

// Window is Slice without the heap allocation: the sub-series is
// returned by value for callers that window inside hot loops.
func (s *Series) Window(from, to simclock.Time) Series {
	lo, hi := s.sliceBounds(from, to)
	return s.window(lo, hi)
}

// Present returns the non-missing values in order.
func (s *Series) Present() []float64 {
	return s.AppendPresent(make([]float64, 0, s.Len()))
}

// AppendPresent appends the non-missing values in grid order to dst
// and returns it — the Present fast path for callers with scratch.
func (s *Series) AppendPresent(dst []float64) []float64 {
	s.Each(func(_ int, vals []float64) {
		for _, v := range vals {
			if !IsMissing(v) {
				dst = append(dst, v)
			}
		}
	})
	return dst
}

// PresentCount returns the number of non-missing samples.
func (s *Series) PresentCount() int {
	n := 0
	s.Each(func(_ int, vals []float64) {
		for _, v := range vals {
			if !IsMissing(v) {
				n++
			}
		}
	})
	return n
}

// LastPresentIndex returns the highest slot with a present sample, or
// -1 when the series is all-missing. Chunked series scan blocks from
// the tail, so a recently-active link answers in one block decode.
func (s *Series) LastPresentIndex() int {
	if s.chunk == nil {
		for i := len(s.Values) - 1; i >= 0; i-- {
			if !IsMissing(s.Values[i]) {
				return i
			}
		}
		return -1
	}
	if s.cLen == 0 {
		return -1
	}
	var buf [tschunk.BlockLen]float64
	first := s.cOff / tschunk.BlockLen
	last := (s.cOff + s.cLen - 1) / tschunk.BlockLen
	for b := last; b >= first; b-- {
		vals := s.chunk.DecodeBlock(b, buf[:0])
		base := s.chunk.BlockBase(b) - s.cOff
		lo, hi := 0, len(vals)
		if base < 0 {
			lo = -base
		}
		if base+hi > s.cLen {
			hi = s.cLen - base
		}
		for k := hi - 1; k >= lo; k-- {
			if !IsMissing(vals[k]) {
				return base + k
			}
		}
	}
	return -1
}

// LossFraction returns the fraction of grid slots that are missing.
func (s *Series) LossFraction() float64 {
	if s.Len() == 0 {
		return 0
	}
	return 1 - float64(s.PresentCount())/float64(s.Len())
}

// Compress re-encodes a flat series into the chunked backing (missing
// slots stay missing bit-exactly). A chunked series is returned as is.
func Compress(s *Series) *Series {
	if s.chunk != nil {
		return s
	}
	b := tschunk.NewBuilder(len(s.Values))
	for i, v := range s.Values {
		b.Set(i, v)
	}
	return FromChunk(s.Start, s.Step, b.Seal())
}

// Aggregate returns a coarser flat series whose slot j summarizes
// `factor` input slots with fn (e.g. Min over 6 five-minute samples →
// 30-minute minimum filtering, the standard TSLP noise reduction).
// Slots with no present inputs stay missing. Chunked input streams
// block by block; the collected per-slot values reach fn in grid
// order either way.
func (s *Series) Aggregate(factor int, fn func([]float64) float64) *Series {
	if factor <= 0 {
		panic("timeseries: non-positive aggregation factor")
	}
	sLen := s.Len()
	n := (sLen + factor - 1) / factor
	out := NewRegular(s.Start, s.Step*time.Duration(factor), n)
	buf := make([]float64, 0, factor)
	s.Each(func(base int, vals []float64) {
		for k, v := range vals {
			i := base + k
			if !IsMissing(v) {
				buf = append(buf, v)
			}
			if (i+1)%factor == 0 || i == sLen-1 {
				if len(buf) > 0 {
					out.Values[i/factor] = fn(buf)
				}
				buf = buf[:0]
			}
		}
	})
	return out
}

// Min returns the smallest of vs. It is the canonical Aggregate fn.
func Min(vs []float64) float64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Mean returns the arithmetic mean of vs.
func Mean(vs []float64) float64 {
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// Median returns the median of vs (vs is not modified).
func Median(vs []float64) float64 {
	return Quantile(vs, 0.5)
}

// Quantile returns the q-quantile of vs using linear interpolation.
// vs is not modified; callers that already hold a sorted buffer (or
// can afford to sort in place once for several quantiles) should use
// QuantileSorted instead — this convenience clones and sorts per call.
func Quantile(vs []float64, q float64) float64 {
	if len(vs) == 0 {
		return Missing
	}
	c := append([]float64(nil), vs...)
	sort.Float64s(c)
	return QuantileSorted(c, q)
}

// QuantileSorted returns the q-quantile of an ascending-sorted slice
// using the same linear interpolation as Quantile, without cloning or
// sorting. The fast path for deriving several quantiles from one sort.
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return Missing
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Stats summarizes the present samples of a series.
type Stats struct {
	N            int
	Min, Max     float64
	Mean, Median float64
	P5, P95      float64
	Stddev       float64
}

// StatsScratch is reusable working memory for SummarizeInto, for
// callers that summarize many series (per-link Stats in figures and
// what-if sweeps).
type StatsScratch struct {
	buf []float64
}

// Summarize computes Stats over the present samples.
func (s *Series) Summarize() Stats {
	var sc StatsScratch
	return s.SummarizeInto(&sc)
}

// SummarizeInto computes Stats using sc's buffer. The present samples
// are gathered once, the order statistics come from a single in-place
// sort, and Median/P5/P95 are derived from it via QuantileSorted —
// bit-identical to three independent clone+sorts of the same values,
// at a third of the work.
func (s *Series) SummarizeInto(sc *StatsScratch) Stats {
	vs := s.AppendPresent(sc.buf[:0])
	sc.buf = vs[:0]
	st := Stats{N: len(vs)}
	if len(vs) == 0 {
		st.Min, st.Max, st.Mean, st.Median, st.P5, st.P95, st.Stddev =
			Missing, Missing, Missing, Missing, Missing, Missing, Missing
		return st
	}
	st.Min, st.Max = vs[0], vs[0]
	var sum float64
	for _, v := range vs {
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
		sum += v
	}
	st.Mean = sum / float64(len(vs))
	var ss float64
	for _, v := range vs {
		d := v - st.Mean
		ss += d * d
	}
	st.Stddev = math.Sqrt(ss / float64(len(vs)))
	sort.Float64s(vs)
	st.Median = QuantileSorted(vs, 0.5)
	st.P5 = QuantileSorted(vs, 0.05)
	st.P95 = QuantileSorted(vs, 0.95)
	return st
}

// FoldScratch is reusable working memory for FoldDailyInto.
type FoldScratch struct {
	offs   []int
	cursor []int
	flat   []float64
	out    []float64
}

// FoldDaily folds the series by time of day into bins of the given
// width, returning per-bin aggregates (fn over all samples falling in
// that time-of-day bin across all days). The result has 24h/binWidth
// entries; empty bins are missing. The returned slice is freshly
// allocated; hot loops should use FoldDailyInto with a scratch.
func (s *Series) FoldDaily(binWidth simclock.Duration, fn func([]float64) float64) []float64 {
	var fs FoldScratch
	return s.FoldDailyInto(&fs, binWidth, fn)
}

// FoldDailyInto is FoldDaily into reusable scratch. The returned slice
// aliases fs.out and is valid until the next fold with the same
// scratch.
func (s *Series) FoldDailyInto(fs *FoldScratch, binWidth simclock.Duration, fn func([]float64) float64) []float64 {
	if binWidth <= 0 || 24*time.Hour%binWidth != 0 {
		panic(fmt.Sprintf("timeseries: bin width %v must divide 24h", binWidth))
	}
	nBins := int(24 * time.Hour / binWidth)
	secPerBin := int(binWidth / time.Second)

	// Two passes over the samples: count per bin, then fill contiguous
	// regions of one flat buffer. Same values in the same order as
	// per-bin append slices, without the per-bin allocation churn.
	offs := resizeInts(&fs.offs, nBins+1)
	for i := range offs {
		offs[i] = 0
	}
	s.Each(func(base int, vals []float64) {
		for k, v := range vals {
			if IsMissing(v) {
				continue
			}
			offs[s.TimeAt(base+k).SecondOfDay()/secPerBin+1]++
		}
	})
	for b := 0; b < nBins; b++ {
		offs[b+1] += offs[b]
	}
	flat := resizeFloats(&fs.flat, offs[nBins])
	cursor := resizeInts(&fs.cursor, nBins)
	copy(cursor, offs[:nBins])
	s.Each(func(base int, vals []float64) {
		for k, v := range vals {
			if IsMissing(v) {
				continue
			}
			b := s.TimeAt(base+k).SecondOfDay() / secPerBin
			flat[cursor[b]] = v
			cursor[b]++
		}
	})
	out := resizeFloats(&fs.out, nBins)
	for b := range out {
		lo, hi := offs[b], offs[b+1]
		if lo == hi {
			out[b] = Missing
		} else {
			out[b] = fn(flat[lo:hi])
		}
	}
	return out
}

func resizeInts(p *[]int, n int) []int {
	if cap(*p) < n {
		*p = make([]int, n)
	}
	*p = (*p)[:n]
	return *p
}

func resizeFloats(p *[]float64, n int) []float64 {
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return *p
}

// SplitDays returns one sub-series per UTC day, keyed by day index
// since the simclock epoch. Days with no present samples are omitted.
func (s *Series) SplitDays() map[int]*Series {
	out := make(map[int]*Series)
	perDay := int(24 * time.Hour / s.Step)
	if perDay == 0 {
		return out
	}
	for i := 0; i < s.Len(); {
		day := s.TimeAt(i).Day()
		// Collect slots in this day.
		j := i
		for j < s.Len() && s.TimeAt(j).Day() == day {
			j++
		}
		sub := s.window(i, j)
		if sub.PresentCount() > 0 {
			out[day] = &sub
		}
		i = j
	}
	return out
}
