// Package bgpsim computes interdomain routes over an asrel.Graph with
// Gao–Rexford (valley-free) policy semantics: routes learned from
// customers are exported to everyone, routes learned from peers or
// providers only to customers; route selection prefers customer over
// peer over provider routes, then shorter AS paths, then the lowest
// next-hop ASN for determinism.
//
// The package plays two roles in the reproduction. It is the control
// plane of the simulated internetwork (router FIBs resolve next hops
// here), and its prefix→origin table is the stand-in for the public
// BGP data (RouteViews/RIS) that bdrmap consumes.
package bgpsim

import (
	"fmt"
	"sort"

	"afrixp/internal/asrel"
	"afrixp/internal/lpm"
	"afrixp/internal/netaddr"
)

// RouteType orders route preference classes: lower is preferred.
type RouteType int8

// Route preference classes.
const (
	RouteSelf RouteType = iota
	RouteCustomer
	RoutePeer
	RouteProvider
	RouteNone
)

// String names the route type.
func (rt RouteType) String() string {
	switch rt {
	case RouteSelf:
		return "self"
	case RouteCustomer:
		return "customer-route"
	case RoutePeer:
		return "peer-route"
	case RouteProvider:
		return "provider-route"
	default:
		return "no-route"
	}
}

// Network is the BGP control plane: an AS relationship graph plus
// prefix originations. Route computation is cached per destination AS
// and invalidated whenever the topology or originations change.
type Network struct {
	graph   *asrel.Graph
	origins map[asrel.ASN][]netaddr.Prefix

	// dense indexing for the route computation
	asns []asrel.ASN
	idx  map[asrel.ASN]int

	prefixTable *lpm.Table[asrel.ASN]
	routeCache  map[asrel.ASN]*destRoutes
	dirty       bool
	// scratch holds the per-destination working arrays routesTo needs
	// (BFS queue, tentative distances, Dijkstra buckets). Continent-
	// scale worlds compute routes for thousands of destinations over
	// thousands of ASes; reusing the scratch turns ~7 O(V) allocations
	// per destination into amortized zero. Only the cached destRoutes
	// arrays — the actual result — are allocated per destination.
	scratch routeScratch
}

// routeScratch is routesTo's reusable working set.
type routeScratch struct {
	queue             []int
	custDist, custHop []int32
	provDist, provHop []int32
	buckets           [][]int
}

// grab sizes the scratch for v ASes and resets the tentative state.
func (s *routeScratch) grab(v, maxD int) {
	if cap(s.custDist) < v {
		s.custDist = make([]int32, v)
		s.custHop = make([]int32, v)
		s.provDist = make([]int32, v)
		s.provHop = make([]int32, v)
	}
	s.custDist, s.custHop = s.custDist[:v], s.custHop[:v]
	s.provDist, s.provHop = s.provDist[:v], s.provHop[:v]
	for i := 0; i < v; i++ {
		s.custDist[i], s.custHop[i] = 1<<30, -1
		s.provDist[i], s.provHop[i] = 1<<30, -1
	}
	if cap(s.buckets) < maxD+2 {
		s.buckets = make([][]int, maxD+2)
	}
	s.buckets = s.buckets[:maxD+2]
	for i := range s.buckets {
		s.buckets[i] = s.buckets[i][:0]
	}
	s.queue = s.queue[:0]
}

// destRoutes holds, for one destination AS, each AS's selected route.
type destRoutes struct {
	nextHop []int32 // index of next-hop AS, -1 = none, self-index for origin
	rtype   []RouteType
	dist    []int32 // AS-path length (hops to destination)
}

// New returns a Network over the given relationship graph. The graph
// may be mutated afterwards; call Invalidate when it is.
func New(g *asrel.Graph) *Network {
	n := &Network{
		graph:   g,
		origins: make(map[asrel.ASN][]netaddr.Prefix),
		dirty:   true,
	}
	return n
}

// Graph returns the underlying relationship graph.
func (n *Network) Graph() *asrel.Graph { return n.graph }

// Announce originates prefix p from AS a.
func (n *Network) Announce(a asrel.ASN, p netaddr.Prefix) {
	n.origins[a] = append(n.origins[a], p)
	n.dirty = true
}

// Withdraw removes all originations of p by a.
func (n *Network) Withdraw(a asrel.ASN, p netaddr.Prefix) {
	ps := n.origins[a]
	out := ps[:0]
	for _, q := range ps {
		if q != p {
			out = append(out, q)
		}
	}
	n.origins[a] = out
	n.dirty = true
}

// Invalidate drops all cached routes; call after mutating the
// relationship graph (membership churn is a first-class event in the
// African IXP ecosystem the paper observes).
func (n *Network) Invalidate() { n.dirty = true }

func (n *Network) rebuild() {
	if !n.dirty {
		return
	}
	n.asns = n.graph.ASes()
	// Origin-only ASes may not be in the graph; include them.
	seen := make(map[asrel.ASN]bool, len(n.asns))
	for _, a := range n.asns {
		seen[a] = true
	}
	extra := make([]asrel.ASN, 0)
	for a := range n.origins {
		if !seen[a] {
			extra = append(extra, a)
		}
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i] < extra[j] })
	n.asns = append(n.asns, extra...)
	n.idx = make(map[asrel.ASN]int, len(n.asns))
	for i, a := range n.asns {
		n.idx[a] = i
	}
	n.prefixTable = lpm.New[asrel.ASN]()
	for a, ps := range n.origins {
		for _, p := range ps {
			n.prefixTable.Insert(p, a)
		}
	}
	n.routeCache = make(map[asrel.ASN]*destRoutes)
	n.dirty = false
}

// OriginOf maps an address to the AS originating its longest covering
// prefix — the prefix→AS mapping bdrmap builds from public BGP data.
func (n *Network) OriginOf(addr netaddr.Addr) (asrel.ASN, bool) {
	n.rebuild()
	return n.prefixTable.Lookup(addr)
}

// PrefixOriginOf additionally returns the matched prefix.
func (n *Network) PrefixOriginOf(addr netaddr.Addr) (netaddr.Prefix, asrel.ASN, bool) {
	n.rebuild()
	return n.prefixTable.LookupPrefix(addr)
}

// RoutedPrefixes returns every announced prefix with its origin,
// sorted — "every routed prefix observed in BGP", the bdrmap trace
// target list.
func (n *Network) RoutedPrefixes() []PrefixOrigin {
	n.rebuild()
	var out []PrefixOrigin
	n.prefixTable.Walk(func(p netaddr.Prefix, a asrel.ASN) bool {
		out = append(out, PrefixOrigin{Prefix: p, Origin: a})
		return true
	})
	return out
}

// PrefixOrigin pairs an announced prefix with its origin AS.
type PrefixOrigin struct {
	Prefix netaddr.Prefix
	Origin asrel.ASN
}

// NextHopAS returns the AS that `from` forwards toward `dst`, along
// with the selected route type. ok is false when `from` has no route.
// A destination equal to `from` returns (from, RouteSelf, true).
func (n *Network) NextHopAS(from, dst asrel.ASN) (asrel.ASN, RouteType, bool) {
	n.rebuild()
	fi, ok := n.idx[from]
	if !ok {
		return 0, RouteNone, false
	}
	dr := n.routesTo(dst)
	if dr == nil || dr.rtype[fi] == RouteNone {
		return 0, RouteNone, false
	}
	if dr.rtype[fi] == RouteSelf {
		return from, RouteSelf, true
	}
	return n.asns[dr.nextHop[fi]], dr.rtype[fi], true
}

// ASPath returns the AS-level path from `from` to `dst` (inclusive of
// both ends), following selected next hops.
func (n *Network) ASPath(from, dst asrel.ASN) ([]asrel.ASN, error) {
	n.rebuild()
	path := []asrel.ASN{from}
	cur := from
	for cur != dst {
		nh, _, ok := n.NextHopAS(cur, dst)
		if !ok {
			return nil, fmt.Errorf("bgpsim: %v has no route to %v", cur, dst)
		}
		if nh == cur {
			break
		}
		path = append(path, nh)
		cur = nh
		if len(path) > len(n.asns)+1 {
			return nil, fmt.Errorf("bgpsim: routing loop from %v to %v", from, dst)
		}
	}
	return path, nil
}

// RouteTo reports the route type and AS-path length from `from` to
// `dst`.
func (n *Network) RouteTo(from, dst asrel.ASN) (RouteType, int, bool) {
	n.rebuild()
	fi, ok := n.idx[from]
	if !ok {
		return RouteNone, 0, false
	}
	dr := n.routesTo(dst)
	if dr == nil || dr.rtype[fi] == RouteNone {
		return RouteNone, 0, false
	}
	return dr.rtype[fi], int(dr.dist[fi]), true
}

// routesTo computes (or returns cached) selected routes toward dst.
func (n *Network) routesTo(dst asrel.ASN) *destRoutes {
	if dr, ok := n.routeCache[dst]; ok {
		return dr
	}
	di, ok := n.idx[dst]
	if !ok {
		n.routeCache[dst] = nil
		return nil
	}
	v := len(n.asns)
	dr := &destRoutes{
		nextHop: make([]int32, v),
		rtype:   make([]RouteType, v),
		dist:    make([]int32, v),
	}
	for i := range dr.nextHop {
		dr.nextHop[i] = -1
		dr.rtype[i] = RouteNone
		dr.dist[i] = 1 << 30
	}
	dr.rtype[di] = RouteSelf
	dr.dist[di] = 0
	dr.nextHop[di] = int32(di)

	// Phase 1: customer routes climb provider (and sibling) edges.
	// BFS guarantees shortest paths; neighbors are scanned in sorted
	// ASN order so ties break to the lowest next-hop ASN.
	maxD := 2 * v
	n.scratch.grab(v, maxD)
	queue := append(n.scratch.queue, di)
	custDist := n.scratch.custDist
	custHop := n.scratch.custHop
	custDist[di] = 0
	for qi := 0; qi < len(queue); qi++ {
		x := queue[qi]
		ax := n.asns[x]
		for _, b := range n.graph.Neighbors(ax) {
			r := n.graph.Rel(ax, b)
			// Route at x is exported upward to x's providers and
			// shared with siblings.
			if r != asrel.Provider && r != asrel.Sibling {
				continue
			}
			bi := n.idx[b]
			if custDist[bi] > custDist[x]+1 {
				custDist[bi] = custDist[x] + 1
				custHop[bi] = int32(x)
				queue = append(queue, bi)
			}
		}
	}
	for i := 0; i < v; i++ {
		if i != di && custHop[i] >= 0 {
			dr.rtype[i] = RouteCustomer
			dr.dist[i] = custDist[i]
			dr.nextHop[i] = custHop[i]
		}
	}

	// Phase 2: peer routes — one peer hop on top of a customer route
	// (or the origin itself).
	for i := 0; i < v; i++ {
		if dr.rtype[i] == RouteSelf || dr.rtype[i] == RouteCustomer {
			continue
		}
		ai := n.asns[i]
		best := int32(1 << 30)
		var hop int32 = -1
		for _, b := range n.graph.Neighbors(ai) {
			if n.graph.Rel(ai, b) != asrel.Peer {
				continue
			}
			bi := n.idx[b]
			if custDist[bi] < best {
				best = custDist[bi]
				hop = int32(bi)
			}
		}
		if hop >= 0 {
			dr.rtype[i] = RoutePeer
			dr.dist[i] = best + 1
			dr.nextHop[i] = hop
		}
	}

	// Phase 3: provider routes cascade down customer (and sibling)
	// edges from any routed AS. Dijkstra over unit weights with
	// heterogeneous source distances, implemented with distance
	// buckets for determinism and O(E) cost.
	buckets := n.scratch.buckets
	for i := 0; i < v; i++ {
		if dr.rtype[i] != RouteNone {
			d := int(dr.dist[i])
			if d <= maxD {
				buckets[d] = append(buckets[d], i)
			}
		}
	}
	provDist := n.scratch.provDist
	provHop := n.scratch.provHop
	for d := 0; d <= maxD; d++ {
		for _, x := range buckets[d] {
			// Skip stale entries (already settled at a lower level).
			settled := dr.rtype[x] != RouteNone && int(dr.dist[x]) < d
			if settled {
				continue
			}
			if provDist[x] < int32(d) {
				continue
			}
			ax := n.asns[x]
			for _, b := range n.graph.Neighbors(ax) {
				r := n.graph.Rel(ax, b)
				// Any route is exported down to customers; siblings
				// also receive everything.
				if r != asrel.Customer && r != asrel.Sibling {
					continue
				}
				bi := n.idx[b]
				if dr.rtype[bi] != RouteNone {
					continue // has a better class of route already
				}
				if provDist[bi] > int32(d)+1 {
					provDist[bi] = int32(d) + 1
					provHop[bi] = int32(x)
					if d+1 <= maxD {
						buckets[d+1] = append(buckets[d+1], bi)
					}
				}
			}
		}
	}
	for i := 0; i < v; i++ {
		if dr.rtype[i] == RouteNone && provHop[i] >= 0 {
			dr.rtype[i] = RouteProvider
			dr.dist[i] = provDist[i]
			dr.nextHop[i] = provHop[i]
		}
	}

	// Keep any capacity the BFS queue grew for the next destination.
	n.scratch.queue = queue[:0]
	n.routeCache[dst] = dr
	return dr
}
