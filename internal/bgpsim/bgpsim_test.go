package bgpsim

import (
	"reflect"
	"testing"

	"afrixp/internal/asrel"
	"afrixp/internal/netaddr"
)

func mp(s string) netaddr.Prefix { return netaddr.MustParsePrefix(s) }
func ma(s string) netaddr.Addr   { return netaddr.MustParseAddr(s) }

// chain builds 1 ← 2 ← 3 (2 buys from 1, 3 buys from 2).
func chain() *Network {
	g := asrel.NewGraph()
	g.SetProvider(2, 1)
	g.SetProvider(3, 2)
	return New(g)
}

func TestSelfRoute(t *testing.T) {
	n := chain()
	nh, rt, ok := n.NextHopAS(1, 1)
	if !ok || rt != RouteSelf || nh != 1 {
		t.Fatalf("self route: %v %v %v", nh, rt, ok)
	}
}

func TestCustomerRoutePreferred(t *testing.T) {
	// 1 reaches 3 via its customer chain.
	n := chain()
	nh, rt, ok := n.NextHopAS(1, 3)
	if !ok || rt != RouteCustomer || nh != 2 {
		t.Fatalf("got %v %v %v", nh, rt, ok)
	}
	path, err := n.ASPath(1, 3)
	if err != nil || !reflect.DeepEqual(path, []asrel.ASN{1, 2, 3}) {
		t.Fatalf("path = %v err %v", path, err)
	}
}

func TestProviderRoute(t *testing.T) {
	// 3 reaches 1 via its provider 2.
	n := chain()
	nh, rt, ok := n.NextHopAS(3, 1)
	if !ok || rt != RouteProvider || nh != 2 {
		t.Fatalf("got %v %v %v", nh, rt, ok)
	}
}

func TestPeerRouteAndValleyFreedom(t *testing.T) {
	// Two stubs under two providers that peer: path stub→prov→prov→stub.
	g := asrel.NewGraph()
	g.SetProvider(100, 10)
	g.SetProvider(200, 20)
	g.SetPeer(10, 20)
	n := New(g)

	path, err := n.ASPath(100, 200)
	if err != nil || !reflect.DeepEqual(path, []asrel.ASN{100, 10, 20, 200}) {
		t.Fatalf("path = %v err %v", path, err)
	}
	rt, dist, ok := n.RouteTo(10, 200)
	if !ok || rt != RoutePeer || dist != 2 {
		t.Fatalf("10→200: %v %d %v", rt, dist, ok)
	}
}

func TestNoValleyThroughPeers(t *testing.T) {
	// 10—20 peer, 20—30 peer. 10 must NOT reach 30's stub through two
	// successive peer links (valley-free violation).
	g := asrel.NewGraph()
	g.SetPeer(10, 20)
	g.SetPeer(20, 30)
	g.SetProvider(300, 30)
	n := New(g)
	if _, _, ok := n.NextHopAS(10, 300); ok {
		t.Fatal("route through two peer links must not exist")
	}
}

func TestCustomerPreferredOverPeerAndProvider(t *testing.T) {
	// 10 can reach 99 via customer chain (longer) or via peer
	// (shorter); policy prefers the customer route.
	g := asrel.NewGraph()
	g.SetProvider(50, 10) // 50 is customer of 10
	g.SetProvider(99, 50) // 99 customer of 50 → 10-50-99 customer route
	g.SetPeer(10, 99)     // direct peering, 1 hop
	n := New(g)
	nh, rt, ok := n.NextHopAS(10, 99)
	if !ok || rt != RouteCustomer || nh != 50 {
		t.Fatalf("want customer route via 50, got %v %v %v", nh, rt, ok)
	}
}

func TestShorterPathWinsWithinClass(t *testing.T) {
	// Two customer routes: direct customer vs via chain; direct wins.
	g := asrel.NewGraph()
	g.SetProvider(9, 1) // 9 is 1's customer
	g.SetProvider(5, 1) // 5 is 1's customer
	g.SetProvider(9, 5) // 9 also buys from 5
	n := New(g)
	nh, rt, ok := n.NextHopAS(1, 9)
	if !ok || rt != RouteCustomer || nh != 9 {
		t.Fatalf("want direct customer hop, got %v %v %v", nh, rt, ok)
	}
}

func TestTieBreakLowestASN(t *testing.T) {
	// Destination reachable via two equal-length customer chains.
	g := asrel.NewGraph()
	g.SetProvider(7, 3)
	g.SetProvider(7, 5)
	g.SetProvider(3, 1)
	g.SetProvider(5, 1)
	n := New(g)
	nh, _, ok := n.NextHopAS(1, 7)
	if !ok || nh != 3 {
		t.Fatalf("tie must break to lowest ASN: got %v", nh)
	}
}

func TestSiblingPropagation(t *testing.T) {
	// 10 and 11 are siblings; 11 has provider 1. 10's prefixes must be
	// reachable from 1 through 11.
	g := asrel.NewGraph()
	g.SetSibling(10, 11)
	g.SetProvider(11, 1)
	n := New(g)
	path, err := n.ASPath(1, 10)
	if err != nil || !reflect.DeepEqual(path, []asrel.ASN{1, 11, 10}) {
		t.Fatalf("path = %v err %v", path, err)
	}
}

func TestNoRouteBetweenDisconnected(t *testing.T) {
	g := asrel.NewGraph()
	g.AddAS(1, "", "")
	g.AddAS(2, "", "")
	n := New(g)
	if _, _, ok := n.NextHopAS(1, 2); ok {
		t.Fatal("disconnected ASes must have no route")
	}
	if _, err := n.ASPath(1, 2); err == nil {
		t.Fatal("ASPath must fail")
	}
}

func TestUnknownASes(t *testing.T) {
	n := New(asrel.NewGraph())
	if _, _, ok := n.NextHopAS(1, 2); ok {
		t.Fatal("unknown ASes must have no route")
	}
	if _, _, ok := n.RouteTo(1, 2); ok {
		t.Fatal("unknown ASes must have no route")
	}
}

func TestOriginLookup(t *testing.T) {
	n := chain()
	n.Announce(3, mp("10.3.0.0/16"))
	n.Announce(1, mp("10.1.0.0/16"))
	n.Announce(3, mp("10.3.128.0/17")) // more specific
	if a, ok := n.OriginOf(ma("10.3.200.1")); !ok || a != 3 {
		t.Fatalf("OriginOf = %v %v", a, ok)
	}
	p, a, ok := n.PrefixOriginOf(ma("10.3.200.1"))
	if !ok || a != 3 || p != mp("10.3.128.0/17") {
		t.Fatalf("PrefixOriginOf = %v %v %v", p, a, ok)
	}
	if _, ok := n.OriginOf(ma("99.0.0.1")); ok {
		t.Fatal("unannounced space must miss")
	}
}

func TestRoutedPrefixesSorted(t *testing.T) {
	n := chain()
	n.Announce(3, mp("10.3.0.0/16"))
	n.Announce(1, mp("10.1.0.0/16"))
	got := n.RoutedPrefixes()
	if len(got) != 2 || got[0].Prefix != mp("10.1.0.0/16") || got[1].Origin != 3 {
		t.Fatalf("RoutedPrefixes = %v", got)
	}
}

func TestWithdraw(t *testing.T) {
	n := chain()
	n.Announce(3, mp("10.3.0.0/16"))
	n.Withdraw(3, mp("10.3.0.0/16"))
	if _, ok := n.OriginOf(ma("10.3.0.1")); ok {
		t.Fatal("withdrawn prefix must not resolve")
	}
}

func TestInvalidateAfterTopologyChange(t *testing.T) {
	g := asrel.NewGraph()
	g.SetPeer(1, 2)
	n := New(g)
	if _, _, ok := n.NextHopAS(1, 2); !ok {
		t.Fatal("peers must route to each other")
	}
	g.RemoveLink(1, 2)
	n.Invalidate()
	if _, _, ok := n.NextHopAS(1, 2); ok {
		t.Fatal("route must disappear after de-peering + Invalidate")
	}
}

func TestOriginOnlyASIsRoutable(t *testing.T) {
	// An AS present only via Announce (no relationships) resolves
	// origins but has no routes.
	n := chain()
	n.Announce(999, mp("99.0.0.0/8"))
	if a, ok := n.OriginOf(ma("99.1.2.3")); !ok || a != 999 {
		t.Fatal("origin-only AS must resolve")
	}
	if _, _, ok := n.NextHopAS(1, 999); ok {
		t.Fatal("no route should exist to an unconnected origin")
	}
}

// TestIXPFabricPaths exercises the topology shape of the paper: many
// members peering at an IXP, the IXP content network AS peering with
// all members (route-server-like), and members' customers reachable
// across the fabric.
func TestIXPFabricPaths(t *testing.T) {
	g := asrel.NewGraph()
	ixpAS := asrel.ASN(30997) // GIXA content network
	members := []asrel.ASN{29614, 33786, 37309, 12345}
	for _, m := range members {
		g.SetPeer(ixpAS, m)
	}
	// Each member has a customer stub.
	for i, m := range members {
		g.SetProvider(asrel.ASN(60000+i), m)
	}
	n := New(g)

	// The content network reaches every member directly…
	for _, m := range members {
		nh, rt, ok := n.NextHopAS(ixpAS, m)
		if !ok || nh != m || rt != RoutePeer {
			t.Fatalf("ixp→%v: %v %v %v", m, nh, rt, ok)
		}
	}
	// …and member customers through one peer hop.
	path, err := n.ASPath(ixpAS, 60000)
	if err != nil || !reflect.DeepEqual(path, []asrel.ASN{ixpAS, 29614, 60000}) {
		t.Fatalf("path = %v err %v", path, err)
	}
	// Members do NOT transit the IXP content network to reach each
	// other's customers (peer→peer valley).
	if _, _, ok := n.NextHopAS(29614, 60001); ok {
		rt, _, _ := n.RouteTo(29614, 60001)
		if rt == RoutePeer {
			t.Fatal("member must not reach another member's customer through two peer hops")
		}
	}
}

func TestPathsAreValleyFreeProperty(t *testing.T) {
	// Property over a mid-size random-ish hierarchy: every computed
	// path is valley-free (no provider/peer edge after going downhill,
	// at most one peer edge).
	g := asrel.NewGraph()
	// 3 tier-1s fully meshed.
	t1 := []asrel.ASN{1, 2, 3}
	for i := range t1 {
		for j := i + 1; j < len(t1); j++ {
			g.SetPeer(t1[i], t1[j])
		}
	}
	// 9 regionals, each buying from two tier-1s, adjacent ones peer.
	for i := 0; i < 9; i++ {
		r := asrel.ASN(10 + i)
		g.SetProvider(r, t1[i%3])
		g.SetProvider(r, t1[(i+1)%3])
		if i > 0 {
			g.SetPeer(r, r-1)
		}
	}
	// 40 stubs.
	for i := 0; i < 40; i++ {
		g.SetProvider(asrel.ASN(100+i), asrel.ASN(10+i%9))
	}
	n := New(g)

	ases := g.ASes()
	for _, src := range ases {
		for _, dst := range ases {
			if src == dst {
				continue
			}
			path, err := n.ASPath(src, dst)
			if err != nil {
				t.Fatalf("no route %v→%v in connected hierarchy: %v", src, dst, err)
			}
			assertValleyFree(t, g, path)
		}
	}
}

func assertValleyFree(t *testing.T, g *asrel.Graph, path []asrel.ASN) {
	t.Helper()
	// Classify each edge from the perspective of the sender:
	// up (to provider), flat (peer), down (to customer).
	phase := 0 // 0=climbing, 1=peered, 2=descending
	for i := 0; i+1 < len(path); i++ {
		r := g.Rel(path[i], path[i+1])
		switch r {
		case asrel.Provider, asrel.Sibling: // uphill
			if phase > 0 {
				t.Fatalf("valley in path %v: uphill after phase %d", path, phase)
			}
		case asrel.Peer:
			if phase >= 1 {
				t.Fatalf("second peer edge in path %v", path)
			}
			phase = 1
		case asrel.Customer: // downhill
			phase = 2
		default:
			t.Fatalf("path %v uses non-adjacent edge %v-%v", path, path[i], path[i+1])
		}
	}
}

func BenchmarkRoutesTo(b *testing.B) {
	g := asrel.NewGraph()
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			g.SetPeer(asrel.ASN(1+i), asrel.ASN(1+j))
		}
	}
	for i := 0; i < 50; i++ {
		g.SetProvider(asrel.ASN(10+i), asrel.ASN(1+i%3))
	}
	for i := 0; i < 2000; i++ {
		g.SetProvider(asrel.ASN(1000+i), asrel.ASN(10+i%50))
	}
	n := New(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.routeCache = make(map[asrel.ASN]*destRoutes)
		n.routesTo(asrel.ASN(1000 + i%2000))
	}
}
