package monitor

import (
	"testing"
	"time"

	"afrixp/internal/bdrmap"
	"afrixp/internal/ixpdir"
	"afrixp/internal/prober"
	"afrixp/internal/registry"
	"afrixp/internal/scenario"
	"afrixp/internal/simclock"
)

// TestFleetWatchesWholeVP: discover VP4's links, watch all of them,
// and confirm that exactly the NETPAGE link alerts during phase 1.
func TestFleetWatchesWholeVP(t *testing.T) {
	w := scenario.Paper(scenario.Options{Seed: 41, Scale: 0.1})
	vp, _ := w.VPByID("VP4")
	p := prober.New(w.Net, vp.Node, prober.Config{Name: vp.Monitor})
	res, err := bdrmap.Run(p, bdrmap.Config{
		BGP: w.BGP, Rels: w.Graph,
		RIR: registry.NewIndex(w.RIRFile),
		IXP: ixpdir.NewIndex(w.Directory),
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	fleet := NewFleet(Config{})
	for _, l := range res.Links {
		ts, err := p.NewTSLP(prober.LinkTarget{Near: l.Near, Far: l.Far})
		if err != nil {
			continue
		}
		fleet.Watch(ts)
		fleet.Watch(ts) // idempotent
	}
	if fleet.Size() < 4 {
		t.Fatalf("fleet watches %d links", fleet.Size())
	}

	iv := simclock.Interval{
		Start: simclock.Date(2016, time.March, 1),
		End:   simclock.Date(2016, time.March, 18),
	}
	iv.Steps(5*time.Minute, func(tm simclock.Time) {
		w.AdvanceTo(tm)
		fleet.Round(tm)
	})

	congested := fleet.Congested()
	netpage := vp.CaseLinks["QCELL-NETPAGE"]
	if len(congested) != 1 || congested[0] != netpage {
		t.Fatalf("congested = %v, want only %v", congested, netpage)
	}
	// The history carries the onset alert for that link.
	found := false
	for _, a := range fleet.History() {
		if a.Kind == Onset && a.Target == netpage {
			found = true
		}
		if a.Kind == Onset && a.Target != netpage {
			t.Fatalf("spurious onset on %v", a.Target)
		}
	}
	if !found {
		t.Fatal("no onset alert in history")
	}
}

// TestFleetHistoryBounded pins the history ring's contract: retention
// caps at Config.HistoryCap, the retained window is the most recent
// alerts in raise order, and the total count survives eviction.
func TestFleetHistoryBounded(t *testing.T) {
	fleet := NewFleet(Config{HistoryCap: 8})
	for i := 0; i < 20; i++ {
		fleet.record([]Alert{{Kind: Onset, At: simclock.Time(i)}})
	}
	if got := fleet.TotalAlerts(); got != 20 {
		t.Fatalf("TotalAlerts = %d, want 20", got)
	}
	hist := fleet.History()
	if len(hist) != 8 {
		t.Fatalf("retained %d alerts, want HistoryCap 8", len(hist))
	}
	for i, a := range hist {
		if want := simclock.Time(12 + i); a.At != want {
			t.Fatalf("history[%d].At = %v, want %v (most recent tail, oldest first)", i, a.At, want)
		}
	}
	// Defaulted cap: unbounded growth is gone even with a zero config.
	if def := NewFleet(Config{}); cap(def.history) != 4096 {
		t.Fatalf("default history cap = %d, want 4096", cap(def.history))
	}
}

// TestFleetRewatchReplacesSession drives the rediscovery pattern: a
// topology churn invalidates resolved paths, discovery re-runs and
// hands the fleet a fresh TSLP session for an already-watched target.
// The fleet must adopt the new session (not silently keep probing
// with the stale one) while preserving the monitor's state.
func TestFleetRewatchReplacesSession(t *testing.T) {
	w := scenario.Paper(scenario.Options{Seed: 41, Scale: 0.1})
	vp, _ := w.VPByID("VP4")
	p := prober.New(w.Net, vp.Node, prober.Config{Name: vp.Monitor})
	target := vp.CaseLinks["QCELL-NETPAGE"]
	ts1, err := p.NewTSLP(target)
	if err != nil {
		t.Fatal(err)
	}
	fleet := NewFleet(Config{})
	fleet.Watch(ts1)

	at := simclock.Date(2016, time.March, 1)
	w.AdvanceTo(at)
	for i := 0; i < 12; i++ {
		fleet.Round(at)
		at = at.Add(5 * time.Minute)
	}
	mon := fleet.sessions[target].mon

	// Topology churn: resolved paths go stale, rediscovery builds a
	// fresh session for the same target.
	w.Net.InvalidateRoutes()
	ts2, err := p.NewTSLP(target)
	if err != nil {
		t.Fatal(err)
	}
	fleet.Watch(ts2)

	e := fleet.sessions[target]
	if e.tslp != ts2 {
		t.Fatal("re-watch kept the stale TSLP session")
	}
	if e.mon != mon {
		t.Fatal("re-watch discarded the monitor state")
	}
	if fleet.Size() != 1 || len(fleet.order) != 1 {
		t.Fatalf("re-watch duplicated the target: size=%d order=%d",
			fleet.Size(), len(fleet.order))
	}
	// And the fleet keeps measuring through the new session.
	for i := 0; i < 3; i++ {
		fleet.Round(at)
		at = at.Add(5 * time.Minute)
	}
	if got := e.mon.Congested(); got {
		t.Log("link congested early; state machine still live") // non-fatal sanity
	}
}
