package monitor

import (
	"sort"

	"afrixp/internal/prober"
	"afrixp/internal/simclock"
)

// Fleet watches every link of one vantage point: the deployment an
// IXP operator would actually run (§7 — "an IXP only monitors port
// sizes/traffic or ensures upgrades upon requests from ISPs"; this
// closes that gap). Links can be added as discovery finds them.
type Fleet struct {
	cfg      Config
	sessions map[prober.LinkTarget]*fleetEntry
	order    []prober.LinkTarget
	// history is a bounded ring of the most recent alerts (cap
	// Config.HistoryCap); histN counts every alert ever raised, so
	// truncation is visible as TotalAlerts() > len(History()).
	history []Alert
	histN   uint64
}

type fleetEntry struct {
	tslp *prober.TSLP
	mon  *Monitor
}

// NewFleet builds an empty fleet.
func NewFleet(cfg Config) *Fleet {
	return &Fleet{
		cfg:      cfg,
		sessions: make(map[prober.LinkTarget]*fleetEntry),
		history:  make([]Alert, 0, cfg.withDefaults().HistoryCap),
	}
}

// Watch adds a link (idempotent). The TSLP session drives the probes;
// the fleet owns the per-link monitor. Re-watching a target after a
// rediscovery replaces the probing session — its freshly resolved
// paths — while keeping the monitor's accumulated state, so topology
// churn neither strands a stale session nor resets alert history.
func (f *Fleet) Watch(ts *prober.TSLP) {
	if e, ok := f.sessions[ts.Target]; ok {
		e.tslp = ts
		return
	}
	f.sessions[ts.Target] = &fleetEntry{tslp: ts, mon: New(ts.Target, f.cfg)}
	f.order = append(f.order, ts.Target)
}

// Size returns the number of watched links.
func (f *Fleet) Size() int { return len(f.sessions) }

// Round probes every watched link once and returns the alerts this
// round raised (also recorded in the bounded history ring).
func (f *Fleet) Round(t simclock.Time) []Alert {
	var alerts []Alert
	for _, target := range f.order {
		e := f.sessions[target]
		alerts = append(alerts, e.mon.Feed(e.tslp.Round(t))...)
	}
	f.record(alerts)
	return alerts
}

// record commits alerts to the history ring; positions follow from the
// running count, so eviction never shifts elements.
func (f *Fleet) record(alerts []Alert) {
	for _, a := range alerts {
		if len(f.history) < cap(f.history) {
			f.history = append(f.history, a)
		} else {
			f.history[int(f.histN%uint64(cap(f.history)))] = a
		}
		f.histN++
	}
}

// History returns the retained alerts, oldest first: the most recent
// Config.HistoryCap of everything ever raised.
func (f *Fleet) History() []Alert {
	out := make([]Alert, 0, len(f.history))
	first := f.histN - uint64(len(f.history))
	for i := first; i < f.histN; i++ {
		out = append(out, f.history[int(i%uint64(cap(f.history)))])
	}
	return out
}

// TotalAlerts counts every alert ever raised, including those the
// bounded history has evicted.
func (f *Fleet) TotalAlerts() uint64 { return f.histN }

// Congested returns the targets currently believed congested, sorted.
func (f *Fleet) Congested() []prober.LinkTarget {
	var out []prober.LinkTarget
	for _, target := range f.order {
		if f.sessions[target].mon.Congested() {
			out = append(out, target)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Near != out[j].Near {
			return out[i].Near < out[j].Near
		}
		return out[i].Far < out[j].Far
	})
	return out
}
