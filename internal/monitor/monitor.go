// Package monitor implements the paper's §7 recommendation as a
// running system: "it is important that ISPs carefully monitor their
// peering links at IXPs to avoid or to quickly mitigate congestion".
// Where internal/analysis judges a finished campaign, the Monitor
// consumes TSLP rounds as they happen and raises congestion-onset and
// congestion-cleared alerts online, answering the operational question
// the paper leaves open: how quickly would an operator have been told?
package monitor

import (
	"time"

	"afrixp/internal/analysis"
	"afrixp/internal/levelshift"
	"afrixp/internal/prober"
	"afrixp/internal/simclock"
	"afrixp/internal/timeseries"
)

// Config tunes the online detector.
type Config struct {
	// ThresholdMs is the level-shift magnitude threshold (paper: 10).
	ThresholdMs float64
	// Window is the sliding analysis window. Default 7 days — long
	// enough for the diurnal-consistency check to mean something.
	Window simclock.Duration
	// ConfirmDays is how many consecutive window evaluations must
	// agree before an alert fires (debouncing). Default 2.
	ConfirmDays int
	// Step is the probing cadence feeding the monitor (default 5 min).
	Step simclock.Duration
	// EvaluateEvery controls how often the window is re-analyzed.
	// Default 24 h (one evaluation per day, after the day completes).
	EvaluateEvery simclock.Duration
	// HistoryCap bounds a Fleet's retained alert history: a ring of
	// the most recent alerts, so a year-long watch cannot grow without
	// bound. The total alert count survives truncation
	// (Fleet.TotalAlerts). Default 4096.
	HistoryCap int
}

func (c Config) withDefaults() Config {
	if c.ThresholdMs <= 0 {
		c.ThresholdMs = 10
	}
	if c.Window <= 0 {
		c.Window = 7 * 24 * time.Hour
	}
	if c.ConfirmDays <= 0 {
		c.ConfirmDays = 2
	}
	if c.Step <= 0 {
		c.Step = 5 * time.Minute
	}
	if c.EvaluateEvery <= 0 {
		c.EvaluateEvery = 24 * time.Hour
	}
	if c.HistoryCap <= 0 {
		c.HistoryCap = 4096
	}
	return c
}

// AlertKind labels an alert.
type AlertKind int8

// Alert kinds.
const (
	// Onset: the link entered confirmed congestion.
	Onset AlertKind = iota
	// Cleared: a previously congested link has been clean for the
	// confirmation period (mitigation verified — the upgrade worked).
	Cleared
	// Unreachable: the far end stopped answering entirely (the
	// GIXA–GHANATEL shutdown signature).
	Unreachable
)

// String names the kind.
func (k AlertKind) String() string {
	switch k {
	case Onset:
		return "congestion-onset"
	case Cleared:
		return "congestion-cleared"
	default:
		return "far-end-unreachable"
	}
}

// Alert is one operator notification.
type Alert struct {
	At     simclock.Time
	Target prober.LinkTarget
	Kind   AlertKind
	// MagnitudeMs carries the elevation for Onset alerts.
	MagnitudeMs float64
}

// Monitor watches one link online.
type Monitor struct {
	cfg    Config
	target prober.LinkTarget

	// ring buffers of aggregated 30-min minima over the window.
	near, far    *ring
	lastEval     simclock.Time
	started      bool
	congested    bool
	agreeOnset   int
	agreeCleared int

	// far-end reachability tracking
	farLostRun int
	unreachble bool
}

// New builds a monitor for one link.
func New(target prober.LinkTarget, cfg Config) *Monitor {
	cfg = cfg.withDefaults()
	bins := int(cfg.Window / (30 * time.Minute))
	return &Monitor{
		cfg:    cfg,
		target: target,
		near:   newRing(bins, 30*time.Minute),
		far:    newRing(bins, 30*time.Minute),
	}
}

// Feed consumes one TSLP round and returns any alerts it triggers.
func (m *Monitor) Feed(s prober.Sample) []Alert {
	if !m.started {
		m.near.reset(s.At)
		m.far.reset(s.At)
		m.lastEval = s.At
		m.started = true
	}
	if !s.NearLost {
		m.near.observe(s.At, float64(s.NearRTT)/float64(time.Millisecond))
	}
	if !s.FarLost {
		m.far.observe(s.At, float64(s.FarRTT)/float64(time.Millisecond))
		m.farLostRun = 0
	} else {
		m.farLostRun++
	}

	var alerts []Alert
	// Reachability: a day of continuous far loss is a dead link.
	deadAfter := int(24 * time.Hour / m.cfg.Step)
	if !m.unreachble && m.farLostRun >= deadAfter {
		m.unreachble = true
		alerts = append(alerts, Alert{At: s.At, Target: m.target, Kind: Unreachable})
	}
	if m.unreachble && !s.FarLost {
		m.unreachble = false
	}

	if s.At.Sub(m.lastEval) < m.cfg.EvaluateEvery {
		return alerts
	}
	m.lastEval = s.At
	alerts = append(alerts, m.evaluate(s.At)...)
	return alerts
}

// evaluate runs the windowed analysis and updates the alert state.
func (m *Monitor) evaluate(at simclock.Time) []Alert {
	nearS, farS := m.near.series(), m.far.series()
	if farS.PresentCount() < 48 { // need at least a day of data
		return nil
	}
	cfg := analysis.DefaultConfig()
	cfg.ThresholdMs = m.cfg.ThresholdMs
	// Online variant: the window is short, so diurnal confirmation
	// needs fewer days than the offline default.
	cfg.Diurnal.MinDays = 3
	v := analysis.AnalyzeLink(analysis.LinkSeries{Target: m.target, Near: nearS, Far: farS}, cfg)

	hot := v.Flagged && v.NearFlat && v.Diurnal.Diurnal
	var alerts []Alert
	if hot && !m.congested {
		m.agreeOnset++
		m.agreeCleared = 0
		if m.agreeOnset >= m.cfg.ConfirmDays {
			m.congested = true
			m.agreeOnset = 0
			alerts = append(alerts, Alert{At: at, Target: m.target, Kind: Onset,
				MagnitudeMs: levelshift.Result{Events: v.Far.Events}.AW()})
		}
	} else if !hot && m.congested {
		m.agreeCleared++
		m.agreeOnset = 0
		if m.agreeCleared >= m.cfg.ConfirmDays {
			m.congested = false
			m.agreeCleared = 0
			alerts = append(alerts, Alert{At: at, Target: m.target, Kind: Cleared})
		}
	} else {
		m.agreeOnset = 0
		m.agreeCleared = 0
	}
	return alerts
}

// Congested reports the monitor's current belief.
func (m *Monitor) Congested() bool { return m.congested }

// ring is a fixed-capacity window of min-filtered bins.
type ring struct {
	binWidth simclock.Duration
	vals     []float64
	start    simclock.Time // time of vals[0]
}

func newRing(bins int, width simclock.Duration) *ring {
	r := &ring{binWidth: width, vals: make([]float64, bins)}
	for i := range r.vals {
		r.vals[i] = timeseries.Missing
	}
	return r
}

func (r *ring) reset(at simclock.Time) {
	r.start = at.Truncate(r.binWidth)
	for i := range r.vals {
		r.vals[i] = timeseries.Missing
	}
}

// observe records a sample, sliding the window forward as needed.
func (r *ring) observe(at simclock.Time, v float64) {
	idx := int(at.Sub(r.start) / r.binWidth)
	for idx >= len(r.vals) {
		// Slide one bin: drop the oldest.
		copy(r.vals, r.vals[1:])
		r.vals[len(r.vals)-1] = timeseries.Missing
		r.start = r.start.Add(r.binWidth)
		idx--
	}
	if idx < 0 {
		return
	}
	if timeseries.IsMissing(r.vals[idx]) || v < r.vals[idx] {
		r.vals[idx] = v
	}
}

// series snapshots the window as a regular series.
func (r *ring) series() *timeseries.Series {
	s := timeseries.NewRegular(r.start, r.binWidth, len(r.vals))
	copy(s.Values, r.vals)
	return s
}
