package monitor

import (
	"testing"
	"time"

	"afrixp/internal/prober"
	"afrixp/internal/scenario"
	"afrixp/internal/simclock"
)

// drive runs a monitor over a case link for an interval, collecting
// alerts.
func drive(t *testing.T, w *scenario.World, vpID, caseName string,
	iv simclock.Interval, cfg Config) []Alert {
	t.Helper()
	vp, ok := w.VPByID(vpID)
	if !ok {
		t.Fatalf("no %s", vpID)
	}
	target, ok := vp.CaseLinks[caseName]
	if !ok {
		t.Fatalf("no case link %s", caseName)
	}
	p := prober.New(w.Net, vp.Node, prober.Config{Name: vp.Monitor})
	session, err := p.NewTSLP(target)
	if err != nil {
		t.Fatal(err)
	}
	m := New(target, cfg)
	var alerts []Alert
	iv.Steps(5*time.Minute, func(tm simclock.Time) {
		w.AdvanceTo(tm)
		alerts = append(alerts, m.Feed(session.Round(tm))...)
	})
	return alerts
}

func TestOnsetAlertForNetpage(t *testing.T) {
	w := scenario.Paper(scenario.Options{Seed: 31, Scale: 0.1})
	iv := simclock.Interval{
		Start: simclock.Date(2016, time.March, 1),
		End:   simclock.Date(2016, time.March, 21),
	}
	alerts := drive(t, w, "VP4", "QCELL-NETPAGE", iv, Config{})
	var onset *Alert
	for i := range alerts {
		if alerts[i].Kind == Onset {
			onset = &alerts[i]
			break
		}
	}
	if onset == nil {
		t.Fatalf("no onset alert in 3 weeks of congestion: %+v", alerts)
	}
	// Detection latency: the window needs a few days of diurnal
	// evidence plus debouncing — the alert must land within the first
	// ten days.
	if lag := onset.At.Sub(iv.Start); lag > 10*24*time.Hour {
		t.Fatalf("onset alert after %v", lag)
	}
	if onset.MagnitudeMs < 5 {
		t.Fatalf("onset magnitude %.1f", onset.MagnitudeMs)
	}
}

func TestClearedAlertAfterUpgrade(t *testing.T) {
	w := scenario.Paper(scenario.Options{Seed: 31, Scale: 0.1})
	// Straddle the 2016-04-28 upgrade by three weeks each side.
	iv := simclock.Interval{
		Start: simclock.Date(2016, time.April, 7),
		End:   simclock.Date(2016, time.May, 19),
	}
	alerts := drive(t, w, "VP4", "QCELL-NETPAGE", iv, Config{})
	var sawOnset, sawCleared bool
	var clearedAt simclock.Time
	for _, a := range alerts {
		switch a.Kind {
		case Onset:
			sawOnset = true
		case Cleared:
			sawCleared = true
			clearedAt = a.At
		}
	}
	if !sawOnset {
		t.Fatalf("no onset before the upgrade: %+v", alerts)
	}
	if !sawCleared {
		t.Fatalf("no cleared alert after the upgrade: %+v", alerts)
	}
	upgrade := simclock.Date(2016, time.April, 28)
	if clearedAt < upgrade {
		t.Fatal("cleared before the upgrade happened")
	}
	if lag := clearedAt.Sub(upgrade); lag > 12*24*time.Hour {
		t.Fatalf("mitigation confirmed only after %v", lag)
	}
}

func TestUnreachableAlertOnShutdown(t *testing.T) {
	w := scenario.Paper(scenario.Options{Seed: 31, Scale: 0.1})
	iv := simclock.Interval{
		Start: simclock.Date(2016, time.August, 1),
		End:   simclock.Date(2016, time.August, 10),
	}
	alerts := drive(t, w, "VP1", "GIXA-GHANATEL", iv, Config{})
	var unreach *Alert
	for i := range alerts {
		if alerts[i].Kind == Unreachable {
			unreach = &alerts[i]
		}
	}
	if unreach == nil {
		t.Fatalf("shutdown not alerted: %+v", alerts)
	}
	shutdown := simclock.Date(2016, time.August, 6)
	if unreach.At < shutdown || unreach.At.Sub(shutdown) > 2*24*time.Hour {
		t.Fatalf("unreachable alert at %v, want within 2 days of %v", unreach.At, shutdown)
	}
}

func TestNoAlertsOnCleanLink(t *testing.T) {
	w := scenario.Paper(scenario.Options{Seed: 31, Scale: 0.1})
	vp, _ := w.VPByID("VP4")
	// Probe a clean member instead of NETPAGE: pick any non-case link
	// from a border map.
	p := prober.New(w.Net, vp.Node, prober.Config{Name: vp.Monitor})
	// The SIXP content network port is clean.
	x := w.IXPs["SIXP"]
	target := prober.LinkTarget{Near: vp.NearAddr, Far: x.Members[scenario.ASSixp]}
	session, err := p.NewTSLP(target)
	if err != nil {
		t.Fatal(err)
	}
	m := New(target, Config{})
	iv := simclock.Interval{
		Start: simclock.Date(2016, time.March, 1),
		End:   simclock.Date(2016, time.March, 15),
	}
	var alerts []Alert
	iv.Steps(5*time.Minute, func(tm simclock.Time) {
		w.AdvanceTo(tm)
		alerts = append(alerts, m.Feed(session.Round(tm))...)
	})
	if len(alerts) != 0 {
		t.Fatalf("clean link alerted: %+v", alerts)
	}
	if m.Congested() {
		t.Fatal("clean link believed congested")
	}
}

func TestAlertKindString(t *testing.T) {
	if Onset.String() != "congestion-onset" || Cleared.String() != "congestion-cleared" ||
		Unreachable.String() != "far-end-unreachable" {
		t.Fatal("kind names wrong")
	}
}
