package netsim

import (
	"fmt"
	"io"
)

// DumpTopology writes a human-readable inventory of the internetwork:
// nodes grouped by AS, point-to-point links, and LAN attachments —
// the quickest way to see what a scenario actually built.
func (nw *Network) DumpTopology(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "topology: %d nodes, %d interfaces, %d links, %d LANs\n",
		len(nw.nodes), len(nw.ifaces), len(nw.links), len(nw.lans)); err != nil {
		return err
	}
	for _, n := range nw.nodes {
		kind := "router"
		if n.Gateway != noIface {
			kind = "host"
		}
		fmt.Fprintf(w, "  %s %s (%v)", kind, n.Name, n.ASN)
		if n.ICMPDelay != nil {
			fmt.Fprint(w, " [slow-icmp]")
		}
		if n.ICMPRateLimit != nil {
			fmt.Fprint(w, " [icmp-policed]")
		}
		fmt.Fprintln(w)
		for _, id := range n.Ifaces {
			ifc := nw.ifaces[id]
			switch {
			case ifc.link != nil:
				other := nw.ifaces[ifc.link.other(ifc.ID)]
				fmt.Fprintf(w, "    %v  p2p → %s (%v)\n",
					ifc.Addr, nw.nodes[other.Node].Name, other.Addr)
			case ifc.lan != nil:
				fmt.Fprintf(w, "    %v  port on LAN %v\n", ifc.Addr, ifc.lan.Prefix)
			default:
				fmt.Fprintf(w, "    %v  loopback\n", ifc.Addr)
			}
		}
	}
	for _, lan := range nw.lans {
		fmt.Fprintf(w, "  LAN %v: %d attachments\n", lan.Prefix, len(lan.Attachments))
	}
	return nil
}
