// Package netsim simulates the internetwork the measurement plane
// probes: routers and hosts with addressed interfaces, point-to-point
// links, IXP switch fabrics (LANs with per-member port queues), IPv4
// forwarding with TTL decrement and Record-Route stamping, ICMP
// echo/time-exceeded generation (with optional slow control-plane
// response), and fluid queues driven by background traffic models.
//
// Probe packets are real wire-format datagrams (internal/packet); the
// simulator walks them hop by hop, accumulating propagation and
// queueing delay and drawing deterministic loss. A cached fast path
// (ProbePath) replays the same pipe sequence without per-hop
// re-encoding for bulk year-long TSLP campaigns; its equivalence to
// the packet walk is property-tested.
package netsim

import (
	"time"

	"afrixp/internal/queue"
	"afrixp/internal/simclock"
)

// Pipe is one direction of a transmission path segment: fixed
// propagation delay, an optional fluid queue, an optional baseline
// loss rate, and an optional up/down schedule.
type Pipe struct {
	// Prop is the propagation + serialization delay.
	Prop simclock.Duration
	// Queue, when non-nil, contributes time-varying queueing delay and
	// congestion loss.
	Queue *queue.Fluid
	// BaseLoss is a load-independent loss probability (dirty optics,
	// faulty line cards). Zero for clean links.
	BaseLoss float64
	// Up, when non-nil, gates the pipe: packets entering while !Up(t)
	// are lost. Used for the GIXA–GHANATEL shutdown of 2016-08-06.
	Up func(simclock.Time) bool

	seed uint64
}

// Traverse moves a packet through the pipe starting at time t. It
// returns the exit time and whether the packet survived. n is a
// per-packet nonce used for deterministic loss draws.
func (p *Pipe) Traverse(t simclock.Time, n uint64) (simclock.Time, bool) {
	if p.Up != nil && !p.Up(t) {
		return t, false
	}
	d := p.Prop
	loss := p.BaseLoss
	if p.Queue != nil {
		d += p.Queue.DelayAt(t)
		loss = 1 - (1-loss)*(1-p.Queue.LossAt(t))
	}
	if loss > 0 && hashUnit(p.seed, n) < loss {
		return t, false
	}
	return t.Add(d), true
}

// TraverseFrozen is Traverse against the queue's frozen integration
// frontier: the fluid state is computed for t without being advanced,
// so concurrent probes (each with its own nonce stream) observe
// identical conditions regardless of ordering. The campaign engine
// pairs it with Network.AdvanceQueues at each step barrier.
func (p *Pipe) TraverseFrozen(t simclock.Time, n uint64) (simclock.Time, bool) {
	return p.TraverseFrozenStep(-1, t, n)
}

// TraverseFrozenStep is TraverseFrozen against the queue state recorded
// for step i of the most recent Network.AdvanceQueuesBatch, letting a
// worker replay any step of a batch without the frontier having stopped
// there. A negative i observes the live frontier (identical to
// TraverseFrozen).
func (p *Pipe) TraverseFrozenStep(i int, t simclock.Time, n uint64) (simclock.Time, bool) {
	if p.Up != nil && !p.Up(t) {
		return t, false
	}
	d := p.Prop
	loss := p.BaseLoss
	if p.Queue != nil {
		qd, ql := p.Queue.ObserveFrozenStep(i, t)
		d += qd
		loss = 1 - (1-loss)*(1-ql)
	}
	if loss > 0 && hashUnit(p.seed, n) < loss {
		return t, false
	}
	return t.Add(d), true
}

// DelayAt returns the pipe's one-way delay at t without a loss draw,
// used by the fast-path sampler's delay accounting.
func (p *Pipe) DelayAt(t simclock.Time) simclock.Duration {
	d := p.Prop
	if p.Queue != nil {
		d += p.Queue.DelayAt(t)
	}
	return d
}

// LossAt returns the pipe's total loss probability at t.
func (p *Pipe) LossAt(t simclock.Time) float64 {
	loss := p.BaseLoss
	if p.Queue != nil {
		loss = 1 - (1-loss)*(1-p.Queue.LossAt(t))
	}
	return loss
}

// IsUp reports whether the pipe passes traffic at t.
func (p *Pipe) IsUp(t simclock.Time) bool { return p.Up == nil || p.Up(t) }

// DownAfter returns an Up schedule that is up before cutoff and down
// from cutoff onward.
func DownAfter(cutoff simclock.Time) func(simclock.Time) bool {
	return func(t simclock.Time) bool { return t < cutoff }
}

// hashUnit maps (seed, n) to a uniform [0,1) float — SplitMix64, the
// same construction trafficmodel uses, so loss draws are reproducible
// across runs without a shared RNG stream.
func hashUnit(seed, n uint64) float64 {
	z := seed + n*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// defaultProp is used when scenario authors leave propagation unset:
// 200 µs, a metro-scale fiber hop.
const defaultProp = 200 * time.Microsecond
