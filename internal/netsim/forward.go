package netsim

import (
	"afrixp/internal/asrel"
	"afrixp/internal/netaddr"
)

// hop is one resolved forwarding step: the local egress interface, the
// interface the packet arrives on at the next node, and the pipes it
// traverses in order (one for p2p, two for a LAN crossing). The pipe
// list is a fixed-size array — hop values are built on every forwarded
// packet, and a heap-allocated slice here was one of the largest
// allocation sources in a campaign.
type hop struct {
	egress  *Iface
	arrival *Iface
	pipes   [2]*Pipe
	npipes  int8
}

// pipeSeq returns the pipes the hop traverses, in order.
func (h *hop) pipeSeq() []*Pipe { return h.pipes[:h.npipes] }

// fibEntry caches a node's forwarding decision toward a destination
// origin AS.
type fibEntry struct {
	egress  IfaceID
	arrival IfaceID
}

// resolveStep computes the forwarding step node n takes toward dst.
// ok is false when n has no route (the packet is silently dropped and
// the probe times out, as on the real Internet).
func (nw *Network) resolveStep(n *Node, dst netaddr.Addr) (hop, bool) {
	// 1. Directly connected subnets and LAN neighbors.
	if h, ok := nw.connectedStep(n, dst); ok {
		return h, true
	}
	// 2. Stub hosts forward everything else to their gateway.
	if n.Gateway != noIface {
		return nw.linkStep(nw.ifaces[n.Gateway])
	}
	// 3. BGP: where does the destination's origin AS live?
	origin, ok := nw.BGP.OriginOf(dst)
	if !ok {
		return hop{}, false
	}
	if origin == n.ASN {
		return nw.intraASStep(n, dst)
	}
	// 4. Interdomain: consult the (cached) FIB.
	if n.fibVersion != nw.version || n.fib == nil {
		n.fib = make(map[asrel.ASN]fibEntry)
		n.fibVersion = nw.version
	}
	if e, ok := n.fib[origin]; ok {
		if e.egress == noIface {
			return hop{}, false
		}
		return nw.stepVia(nw.ifaces[e.egress], nw.ifaces[e.arrival])
	}
	h, ok := nw.interdomainStep(n, origin)
	if !ok {
		n.fib[origin] = fibEntry{egress: noIface}
		return hop{}, false
	}
	n.fib[origin] = fibEntry{egress: h.egress.ID, arrival: h.arrival.ID}
	return h, true
}

// connectedStep handles destinations on subnets n is directly attached
// to.
func (nw *Network) connectedStep(n *Node, dst netaddr.Addr) (hop, bool) {
	for _, id := range n.Ifaces {
		ifc := nw.ifaces[id]
		if l := ifc.link; l != nil {
			other := nw.ifaces[l.other(ifc.ID)]
			if other.Addr == dst {
				return nw.linkStep(ifc)
			}
		}
		if ifc.lan != nil && ifc.lan.Prefix.Contains(dst) {
			if slot, ok := ifc.lan.byAddr[dst]; ok {
				return nw.lanStep(ifc, slot)
			}
			return hop{}, false // on-LAN address with no owner: dead
		}
	}
	return hop{}, false
}

// linkStep builds the hop across ifc's point-to-point link.
func (nw *Network) linkStep(ifc *Iface) (hop, bool) {
	l := ifc.link
	if l == nil {
		return hop{}, false
	}
	var pipe *Pipe
	var arrival IfaceID
	if l.A == ifc.ID {
		pipe, arrival = l.Pipes[0], l.B
	} else {
		pipe, arrival = l.Pipes[1], l.A
	}
	return hop{egress: ifc, arrival: nw.ifaces[arrival], pipes: [2]*Pipe{pipe}, npipes: 1}, true
}

// lanStep builds the hop across ifc's LAN to the attachment at slot.
func (nw *Network) lanStep(ifc *Iface, slot int) (hop, bool) {
	lan := ifc.lan
	src := lan.Attachments[ifc.lanSlot]
	dst := lan.Attachments[slot]
	return hop{
		egress:  ifc,
		arrival: nw.ifaces[dst.Iface],
		pipes:   [2]*Pipe{src.ToFabric, dst.FromFabric},
		npipes:  2,
	}, true
}

// stepVia rebuilds a hop from cached egress/arrival interfaces.
func (nw *Network) stepVia(egress, arrival *Iface) (hop, bool) {
	if egress.link != nil {
		return nw.linkStep(egress)
	}
	if egress.lan != nil {
		return nw.lanStep(egress, arrival.lanSlot)
	}
	return hop{}, false
}

// interdomainStep finds n's forwarding step toward origin, possibly
// via another border router of n's AS.
func (nw *Network) interdomainStep(n *Node, origin asrel.ASN) (hop, bool) {
	nhAS, _, ok := nw.BGP.NextHopAS(n.ASN, origin)
	if !ok || nhAS == n.ASN {
		return hop{}, false
	}
	// Scenario-authored egress preference (asymmetry ablation).
	if pref, ok := n.PreferredEgress[nhAS]; ok {
		if h, ok := nw.adjacencyVia(nw.ifaces[pref], nhAS); ok {
			return h, true
		}
	}
	// Does n itself have an adjacency to nhAS?
	if h, ok := nw.adjacencyToAS(n, nhAS); ok {
		return h, true
	}
	// Otherwise route toward a border router of our AS that does.
	for _, r := range nw.routersByAS[n.ASN] {
		if r == n {
			continue
		}
		if _, ok := nw.adjacencyToAS(r, nhAS); ok {
			if h, ok := nw.intraASStepToNode(n, r.ID); ok {
				return h, true
			}
		}
	}
	return hop{}, false
}

// adjacencyToAS scans n's interfaces for a direct adjacency to an AS.
// Interfaces are scanned in creation order, so selection is
// deterministic.
func (nw *Network) adjacencyToAS(n *Node, as asrel.ASN) (hop, bool) {
	for _, id := range n.Ifaces {
		if h, ok := nw.adjacencyVia(nw.ifaces[id], as); ok {
			return h, true
		}
	}
	return hop{}, false
}

// adjacencyVia checks one interface for an adjacency to the given AS.
func (nw *Network) adjacencyVia(ifc *Iface, as asrel.ASN) (hop, bool) {
	if l := ifc.link; l != nil {
		other := nw.ifaces[l.other(ifc.ID)]
		if nw.nodes[other.Node].ASN == as {
			return nw.linkStep(ifc)
		}
	}
	if lan := ifc.lan; lan != nil {
		// Lowest-addressed attachment of the target AS wins.
		bestSlot, found := -1, false
		var bestAddr netaddr.Addr
		for slot := range lan.Attachments {
			att := nw.ifaces[lan.Attachments[slot].Iface]
			if nw.nodes[att.Node].ASN == as {
				if !found || att.Addr < bestAddr {
					bestSlot, bestAddr, found = slot, att.Addr, true
				}
			}
		}
		if found {
			return nw.lanStep(ifc, bestSlot)
		}
	}
	return hop{}, false
}

// intraASStep routes within n's AS toward the node owning dst.
func (nw *Network) intraASStep(n *Node, dst netaddr.Addr) (hop, bool) {
	id, ok := nw.byAddr[dst]
	if !ok {
		return hop{}, false
	}
	target := nw.ifaces[id].Node
	if target == n.ID {
		return hop{}, false // local delivery is handled by the caller
	}
	return nw.intraASStepToNode(n, target)
}

// intraASStepToNode finds the next hop on the shortest intra-AS path
// from n to the target node, using only links internal to the AS.
func (nw *Network) intraASStepToNode(n *Node, target NodeID) (hop, bool) {
	if nw.nodes[target].ASN != n.ASN {
		return hop{}, false
	}
	// BFS backwards from target so the first neighbor reached from n
	// lies on a shortest path.
	prevIface := map[NodeID]IfaceID{target: noIface}
	queued := []NodeID{target}
	for len(queued) > 0 {
		cur := queued[0]
		queued = queued[1:]
		if cur == n.ID {
			break
		}
		for _, id := range nw.nodes[cur].Ifaces {
			ifc := nw.ifaces[id]
			l := ifc.link
			if l == nil {
				continue
			}
			other := nw.ifaces[l.other(ifc.ID)]
			on := nw.nodes[other.Node]
			if on.ASN != n.ASN {
				continue
			}
			if _, seen := prevIface[on.ID]; !seen {
				// From on, the step toward target leaves via `other`.
				prevIface[on.ID] = other.ID
				queued = append(queued, on.ID)
			}
		}
	}
	egress, ok := prevIface[n.ID]
	if !ok || egress == noIface {
		return hop{}, false
	}
	return nw.linkStep(nw.ifaces[egress])
}

// other returns the opposite endpoint of a link.
func (l *Link) other(id IfaceID) IfaceID {
	if l.A == id {
		return l.B
	}
	return l.A
}
