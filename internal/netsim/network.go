package netsim

import (
	"fmt"
	"sort"
	"sync"

	"afrixp/internal/asrel"
	"afrixp/internal/bgpsim"
	"afrixp/internal/netaddr"
	"afrixp/internal/packet"
	"afrixp/internal/queue"
	"afrixp/internal/simclock"
)

// NodeID and IfaceID index into the network's dense node/interface
// tables.
type (
	NodeID  int32
	IfaceID int32
)

const noIface = IfaceID(-1)

// Node is a router or host. Hosts are routers with a Gateway set: they
// forward everything they do not own to the gateway instead of
// consulting BGP (Ark probes are hosts inside the VP network).
type Node struct {
	ID   NodeID
	Name string
	ASN  asrel.ASN
	// Ifaces lists the node's interfaces.
	Ifaces []IfaceID
	// Gateway, when valid, marks the node as a stub host.
	Gateway IfaceID
	// ICMPDelay, when non-nil, adds control-plane delay to ICMP
	// responses this node originates (slow ICMP generation is one of
	// the paper's false-congestion causes, §6.2.1 GIXA–KNET
	// discussion and the VP5/VP6 flagged-but-not-diurnal links).
	ICMPDelay func(simclock.Time) simclock.Duration
	// PreferredEgress, when set, overrides egress interface selection
	// toward specific neighbor ASes — used to author asymmetric
	// routing for the Record-Route ablation.
	PreferredEgress map[asrel.ASN]IfaceID
	// ICMPRateLimit, when non-nil, bounds the rate at which this node
	// originates ICMP responses (echo replies and time-exceeded).
	// Real routers police control-plane traffic exactly like this —
	// the reason the paper kept its probing to 100 packets per second.
	ICMPRateLimit *queue.TokenBucket
	// ICMPDown, when non-nil, silences the node's ICMP generation
	// while it returns true: no echo replies, no time-exceeded errors
	// — the probe is simply never answered (the paper's unresponsive-
	// router losses). Unlike ICMPRateLimit it must be a pure function
	// of the probe's arrival time: fault injection relies on that to
	// keep the frozen sampling path stateless and bit-identical at any
	// worker count.
	ICMPDown func(simclock.Time) bool

	fib        map[asrel.ASN]fibEntry
	fibVersion int64
	ipid       uint16
	ipidInit   bool
}

// nextIPID returns the node's next IP identification value. Routers
// share one counter across interfaces, which is exactly the signal
// Ally-style alias resolution keys on.
func (n *Node) nextIPID() uint16 {
	if !n.ipidInit {
		// Distinct, well-separated starting points per router.
		n.ipid = uint16(uint32(n.ID)*9973 + 77)
		n.ipidInit = true
	}
	n.ipid++
	return n.ipid
}

// Iface is an addressed attachment point on a node.
type Iface struct {
	ID   IfaceID
	Node NodeID
	Addr netaddr.Addr
	// Name is the reverse-DNS label of the interface (geo hints).
	Name string

	link *Link
	lan  *LAN
	// lanSlot is this interface's attachment index within lan.
	lanSlot int
}

// Link is a point-to-point link: two interfaces and a pipe per
// direction (index 0: A→B, 1: B→A).
type Link struct {
	A, B  IfaceID
	Pipes [2]*Pipe
	// Subnet is the link's /30 or /31, when addressed.
	Subnet netaddr.Prefix
}

// LAN is a switched fabric (an IXP peering LAN): attachments share a
// prefix; traffic from member i to member j traverses i's ingress pipe
// (member→fabric) and j's egress pipe (fabric→member). The fabric
// itself is non-blocking, matching how IXP operators describe their
// switches; congestion lives on member ports.
type LAN struct {
	Prefix      netaddr.Prefix
	Attachments []Attachment
	byAddr      map[netaddr.Addr]int
}

// Attachment is one member port on a LAN.
type Attachment struct {
	Iface IfaceID
	// ToFabric carries member→switch traffic; FromFabric carries
	// switch→member traffic (the direction that congests when members
	// under-provision their IXP port, as NETPAGE did).
	ToFabric, FromFabric *Pipe
}

// Network is the simulated internetwork.
type Network struct {
	BGP *bgpsim.Network

	nodes  []*Node
	ifaces []*Iface
	links  []*Link
	lans   []*LAN

	byAddr      map[netaddr.Addr]IfaceID
	routersByAS map[asrel.ASN][]*Node

	version    int64
	pktCounter uint64
	seed       uint64
	// rlMu serializes shared ICMP rate-limit buckets on the frozen
	// sampling path; see ProbePath.SampleCtx.
	rlMu sync.Mutex

	// injWire double-buffers the wire images an injection walk
	// rewrites at every hop, and pkt stages their ICMP layers. Two
	// slots suffice: each rewrite reads the current wire and writes the
	// other slot. Owned by Inject, which (like pktCounter) is
	// single-goroutine by contract.
	injWire [2][]byte
	pkt     packet.Scratch

	// injStats counts injection walks by outcome; same single-
	// goroutine contract as injWire (see InjectStats).
	injStats InjectStats
}

// New creates an empty network over the given BGP control plane.
func New(bgp *bgpsim.Network, seed uint64) *Network {
	return &Network{
		BGP:         bgp,
		byAddr:      make(map[netaddr.Addr]IfaceID),
		routersByAS: make(map[asrel.ASN][]*Node),
		seed:        seed,
		version:     1,
	}
}

// AddNode creates a router (or host) in the given AS.
func (nw *Network) AddNode(name string, as asrel.ASN) *Node {
	n := &Node{ID: NodeID(len(nw.nodes)), Name: name, ASN: as, Gateway: noIface}
	nw.nodes = append(nw.nodes, n)
	nw.routersByAS[as] = append(nw.routersByAS[as], n)
	nw.bump()
	return n
}

// Node returns a node by id.
func (nw *Network) Node(id NodeID) *Node { return nw.nodes[id] }

// Iface returns an interface by id.
func (nw *Network) Iface(id IfaceID) *Iface { return nw.ifaces[id] }

// Nodes returns all nodes.
func (nw *Network) Nodes() []*Node { return nw.nodes }

// RoutersOf returns the nodes belonging to an AS.
func (nw *Network) RoutersOf(as asrel.ASN) []*Node { return nw.routersByAS[as] }

// addIface registers an interface on a node.
func (nw *Network) addIface(n *Node, addr netaddr.Addr, name string) *Iface {
	if addr.IsZero() {
		panic("netsim: interface address must be set")
	}
	if _, dup := nw.byAddr[addr]; dup {
		panic(fmt.Sprintf("netsim: duplicate interface address %v", addr))
	}
	ifc := &Iface{ID: IfaceID(len(nw.ifaces)), Node: n.ID, Addr: addr, Name: name}
	nw.ifaces = append(nw.ifaces, ifc)
	n.Ifaces = append(n.Ifaces, ifc.ID)
	nw.byAddr[addr] = ifc.ID
	nw.bump()
	return ifc
}

// OwnerOfAddr resolves an interface address to its node.
func (nw *Network) OwnerOfAddr(addr netaddr.Addr) (*Node, *Iface, bool) {
	id, ok := nw.byAddr[addr]
	if !ok {
		return nil, nil, false
	}
	ifc := nw.ifaces[id]
	return nw.nodes[ifc.Node], ifc, true
}

// PipesAt returns the directional pipes attached at the interface
// owning addr: in carries traffic arriving at the interface's node,
// out carries traffic leaving it (toward the link peer or the LAN
// fabric). ok is false for unknown addresses and loopbacks. Fault
// injection uses it to flap a specific port.
func (nw *Network) PipesAt(addr netaddr.Addr) (in, out *Pipe, ok bool) {
	id, found := nw.byAddr[addr]
	if !found {
		return nil, nil, false
	}
	ifc := nw.ifaces[id]
	if l := ifc.link; l != nil {
		if l.A == ifc.ID {
			return l.Pipes[1], l.Pipes[0], true
		}
		return l.Pipes[0], l.Pipes[1], true
	}
	if ifc.lan != nil {
		att := ifc.lan.Attachments[ifc.lanSlot]
		return att.FromFabric, att.ToFabric, true
	}
	return nil, nil, false
}

// LinkSpec configures ConnectLink. Zero-valued fields get defaults: a
// metro propagation delay and no queue.
type LinkSpec struct {
	Subnet     netaddr.Prefix // /30 etc.; A gets .1, B gets .2
	AddrA      netaddr.Addr   // explicit addresses override Subnet
	AddrB      netaddr.Addr
	NameA      string
	NameB      string
	Prop       simclock.Duration
	PipeAtoB   *Pipe // optional fully-specified pipes
	PipeBtoA   *Pipe
	IfaceNames [2]string
}

// ConnectLink joins two nodes with a point-to-point link and returns
// it. Addresses come from Subnet (first two usable) unless given
// explicitly.
func (nw *Network) ConnectLink(a, b *Node, spec LinkSpec) *Link {
	addrA, addrB := spec.AddrA, spec.AddrB
	if addrA.IsZero() || addrB.IsZero() {
		if spec.Subnet.Bits == 0 {
			panic("netsim: ConnectLink needs Subnet or explicit addresses")
		}
		if spec.Subnet.Bits == 31 {
			addrA, addrB = spec.Subnet.Nth(0), spec.Subnet.Nth(1)
		} else {
			addrA, addrB = spec.Subnet.Nth(1), spec.Subnet.Nth(2)
		}
	}
	ifA := nw.addIface(a, addrA, spec.NameA)
	ifB := nw.addIface(b, addrB, spec.NameB)
	prop := spec.Prop
	if prop <= 0 {
		prop = defaultProp
	}
	pAB, pBA := spec.PipeAtoB, spec.PipeBtoA
	if pAB == nil {
		pAB = &Pipe{Prop: prop}
	}
	if pBA == nil {
		pBA = &Pipe{Prop: prop}
	}
	pAB.seed = nw.seed ^ uint64(ifA.ID)<<32 ^ 0xA1
	pBA.seed = nw.seed ^ uint64(ifB.ID)<<32 ^ 0xB2
	l := &Link{A: ifA.ID, B: ifB.ID, Pipes: [2]*Pipe{pAB, pBA}, Subnet: spec.Subnet}
	ifA.link, ifB.link = l, l
	nw.links = append(nw.links, l)
	nw.bump()
	return l
}

// AddLAN creates an empty switched fabric over prefix.
func (nw *Network) AddLAN(prefix netaddr.Prefix) *LAN {
	lan := &LAN{Prefix: prefix, byAddr: make(map[netaddr.Addr]int)}
	nw.lans = append(nw.lans, lan)
	nw.bump()
	return lan
}

// AttachSpec configures AttachToLAN.
type AttachSpec struct {
	Addr       netaddr.Addr
	Name       string
	Prop       simclock.Duration
	ToFabric   *Pipe
	FromFabric *Pipe
}

// AttachToLAN gives node n a port on the LAN.
func (nw *Network) AttachToLAN(n *Node, lan *LAN, spec AttachSpec) *Iface {
	if !lan.Prefix.Contains(spec.Addr) {
		panic(fmt.Sprintf("netsim: %v outside LAN %v", spec.Addr, lan.Prefix))
	}
	ifc := nw.addIface(n, spec.Addr, spec.Name)
	prop := spec.Prop
	if prop <= 0 {
		prop = defaultProp / 2
	}
	to, from := spec.ToFabric, spec.FromFabric
	if to == nil {
		to = &Pipe{Prop: prop}
	}
	if from == nil {
		from = &Pipe{Prop: prop}
	}
	to.seed = nw.seed ^ uint64(ifc.ID)<<32 ^ 0xC3
	from.seed = nw.seed ^ uint64(ifc.ID)<<32 ^ 0xD4
	ifc.lan = lan
	ifc.lanSlot = len(lan.Attachments)
	lan.Attachments = append(lan.Attachments, Attachment{Iface: ifc.ID, ToFabric: to, FromFabric: from})
	lan.byAddr[spec.Addr] = ifc.lanSlot
	nw.bump()
	return ifc
}

// AddLoopback gives node n an interface not attached to any link —
// the router's loopback/service address, which terminates traceroutes
// into the AS and gives alias resolution a stable anchor.
func (nw *Network) AddLoopback(n *Node, addr netaddr.Addr, name string) *Iface {
	return nw.addIface(n, addr, name)
}

// SetGateway marks n as a stub host forwarding via the given
// interface's link peer.
func (nw *Network) SetGateway(n *Node, ifc *Iface) {
	if ifc.Node != n.ID {
		panic("netsim: gateway interface must belong to the node")
	}
	n.Gateway = ifc.ID
	nw.bump()
}

// bump invalidates cached FIBs and probe paths after topology changes.
func (nw *Network) bump() { nw.version++ }

// AdvanceQueues moves every fluid queue's integration frontier to t.
// It is the single-writer half of the parallel probing protocol:
// campaign engines call it once per step (with the world clock already
// at t), after which concurrent workers observe the network through
// the frozen read path (ProbePath.SampleCtx) without mutating any
// shared state. Queues are independent, so the iteration order is
// immaterial.
func (nw *Network) AdvanceQueues(t simclock.Time) {
	adv := func(p *Pipe) {
		if p != nil && p.Queue != nil {
			p.Queue.Advance(t)
		}
	}
	for _, l := range nw.links {
		adv(l.Pipes[0])
		adv(l.Pipes[1])
	}
	for _, lan := range nw.lans {
		for i := range lan.Attachments {
			adv(lan.Attachments[i].ToFabric)
			adv(lan.Attachments[i].FromFabric)
		}
	}
}

// AdvanceQueuesBatch moves every fluid queue's integration frontier
// through the given step times in order, recording per-step frontier
// states (queue.Fluid.AdvanceBatch) so workers can observe any step of
// the batch via the frozen-step read path (ProbeCtx.SetStep +
// ProbePath.SampleCtx). It is the batched form of AdvanceQueues: one
// call per quiescent run of steps instead of one per step. The final
// frontier position is the last step, exactly as len(steps) successive
// AdvanceQueues calls would leave it.
func (nw *Network) AdvanceQueuesBatch(steps []simclock.Time) {
	adv := func(p *Pipe) {
		if p != nil && p.Queue != nil {
			p.Queue.AdvanceBatch(steps)
		}
	}
	for _, l := range nw.links {
		adv(l.Pipes[0])
		adv(l.Pipes[1])
	}
	for _, lan := range nw.lans {
		for i := range lan.Attachments {
			adv(lan.Attachments[i].ToFabric)
			adv(lan.Attachments[i].FromFabric)
		}
	}
}

// Version returns the topology version; cached ProbePaths embed it.
func (nw *Network) Version() int64 { return nw.version }

// InvalidateRoutes must be called after mutating the AS relationship
// graph so both the BGP cache and node FIBs are recomputed.
func (nw *Network) InvalidateRoutes() {
	nw.BGP.Invalidate()
	nw.bump()
}

// InterdomainLinks enumerates ground-truth interdomain adjacencies
// visible in the data plane: p2p links whose endpoints belong to
// different ASes, and LAN attachment pairs of different ASes. Used by
// scenario validation and bdrmap accuracy scoring.
func (nw *Network) InterdomainLinks() []InterdomainLink {
	var out []InterdomainLink
	for _, l := range nw.links {
		a, b := nw.ifaces[l.A], nw.ifaces[l.B]
		asA, asB := nw.nodes[a.Node].ASN, nw.nodes[b.Node].ASN
		if asA != asB {
			out = append(out, InterdomainLink{NearIface: a.ID, FarIface: b.ID, NearAS: asA, FarAS: asB})
		}
	}
	for _, lan := range nw.lans {
		for i := range lan.Attachments {
			for j := range lan.Attachments {
				if i == j {
					continue
				}
				a := nw.ifaces[lan.Attachments[i].Iface]
				b := nw.ifaces[lan.Attachments[j].Iface]
				asA, asB := nw.nodes[a.Node].ASN, nw.nodes[b.Node].ASN
				if asA != asB {
					out = append(out, InterdomainLink{NearIface: a.ID, FarIface: b.ID, NearAS: asA, FarAS: asB})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].NearIface != out[j].NearIface {
			return out[i].NearIface < out[j].NearIface
		}
		return out[i].FarIface < out[j].FarIface
	})
	return out
}

// InterdomainLink is a directed ground-truth adjacency.
type InterdomainLink struct {
	NearIface, FarIface IfaceID
	NearAS, FarAS       asrel.ASN
}
