package netsim

import (
	"math/bits"

	"afrixp/internal/simclock"
)

// RTTBucketCount is the number of power-of-two-microsecond RTT
// buckets in ProbeStats: bucket i holds RTTs whose microsecond count
// has bit length i, i.e. [2^(i-1), 2^i) µs; the last bucket absorbs
// everything ≥ ~65 ms. internal/telemetry mirrors the same layout.
const RTTBucketCount = 18

// ProbeStats is hot-path measurement accounting. The fields are plain
// (non-atomic) uint64s on purpose: each ProbeCtx is owned by a single
// goroutine (one vantage point), so counting is free — no contention,
// no allocation, no effect on determinism. The campaign engine reads
// the totals at batch barriers (when workers are provably idle) and
// republishes them into atomic telemetry counters for concurrent
// readers. A ProbeStats must not be read while its owner is sampling.
type ProbeStats struct {
	// Probes counts SampleCtx calls; Delivered the ones that returned
	// an RTT. The three loss causes partition Probes - Delivered:
	// PipeDrops (queue/gate drops inside a pipe), ICMPSilenced (the
	// responder's control plane was down or blacked out), and
	// RateLimited (deterministic ICMP policing suppressed the reply).
	Probes, Delivered, PipeDrops, ICMPSilenced, RateLimited uint64
	// QueueFrozenObs counts pipe traversals that consulted a fluid
	// queue's recorded (frozen) frontier.
	QueueFrozenObs uint64
	// RTTBuckets is the delivered-probe RTT histogram (see
	// RTTBucketCount for the bucket layout).
	RTTBuckets [RTTBucketCount]uint64
}

// observeRTT banks one delivered RTT into its power-of-two bucket.
func (s *ProbeStats) observeRTT(d simclock.Duration) {
	us := uint64(d) / 1000 // ns → µs
	b := bits.Len64(us)
	if b >= RTTBucketCount {
		b = RTTBucketCount - 1
	}
	s.RTTBuckets[b]++
}

// Merge adds o's counts into s — how the engine folds per-VP stats
// into one campaign-wide total at a barrier.
func (s *ProbeStats) Merge(o *ProbeStats) {
	s.Probes += o.Probes
	s.Delivered += o.Delivered
	s.PipeDrops += o.PipeDrops
	s.ICMPSilenced += o.ICMPSilenced
	s.RateLimited += o.RateLimited
	s.QueueFrozenObs += o.QueueFrozenObs
	for i := range s.RTTBuckets {
		s.RTTBuckets[i] += o.RTTBuckets[i]
	}
}

// Stats exposes the context's accounting for barrier-time aggregation.
// The same single-goroutine contract as the ProbeCtx applies.
func (c *ProbeCtx) Stats() *ProbeStats { return &c.stats }

// InjectStats counts packet-level injection walks — the discovery
// plane's traffic (traceroutes, pings, record-route probes). Plain
// counters under the same single-goroutine contract as Inject itself
// (the double-buffered wire scratch already forbids concurrent
// injection); the engine republishes them at barriers.
type InjectStats struct {
	// Walks counts Inject calls; the other three split them by outcome
	// (walks that returned an error count as Unreachable).
	Walks, Delivered, Lost, Unreachable uint64
}

// InjectStats returns a copy of the network's injection accounting.
func (nw *Network) InjectStats() InjectStats { return nw.injStats }
