package netsim

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"afrixp/internal/asrel"
	"afrixp/internal/bgpsim"
	"afrixp/internal/netaddr"
	"afrixp/internal/packet"
	"afrixp/internal/queue"
	"afrixp/internal/simclock"
	"afrixp/internal/trafficmodel"
)

func ma(s string) netaddr.Addr   { return netaddr.MustParseAddr(s) }
func mp(s string) netaddr.Prefix { return netaddr.MustParsePrefix(s) }

// world builds a small IXP-shaped internetwork:
//
//	VP(host) --/30-- R100(AS100) ==LAN 196.49.7.0/24== R200(AS200), R300(AS300)
//	                                                    R200 --/30-- R400(AS400)
//
// AS100 peers with AS200 and AS300 at the IXP; AS400 buys transit from
// AS200.
type world struct {
	nw             *Network
	vp, r100, r200 *Node
	r300, r400     *Node
	lan            *LAN
	vpLink         *Link
	r200FromFabric *Pipe
	nearAddr       netaddr.Addr // R100's VP-facing address
	farAddr        netaddr.Addr // R200's LAN address
}

func buildWorld(t testing.TB) *world {
	g := asrel.NewGraph()
	g.AddAS(100, "CONTENT", "IXP-Org")
	g.AddAS(200, "MEMBER-A", "OrgA")
	g.AddAS(300, "MEMBER-B", "OrgB")
	g.AddAS(400, "STUB", "OrgC")
	g.SetPeer(100, 200)
	g.SetPeer(100, 300)
	g.SetProvider(400, 200)

	bgp := bgpsim.New(g)
	bgp.Announce(100, mp("10.100.0.0/16"))
	bgp.Announce(200, mp("10.200.0.0/16"))
	bgp.Announce(300, mp("10.201.0.0/16"))
	bgp.Announce(400, mp("10.202.0.0/16"))

	nw := New(bgp, 42)
	w := &world{nw: nw}
	w.vp = nw.AddNode("vp", 100)
	w.r100 = nw.AddNode("r100", 100)
	w.r200 = nw.AddNode("r200", 200)
	w.r300 = nw.AddNode("r300", 300)
	w.r400 = nw.AddNode("r400", 400)

	w.vpLink = nw.ConnectLink(w.vp, w.r100, LinkSpec{Subnet: mp("10.100.0.0/30")})
	nw.SetGateway(w.vp, nw.Iface(w.vp.Ifaces[0]))
	w.nearAddr = ma("10.100.0.2") // r100's side of the /30

	w.lan = nw.AddLAN(mp("196.49.7.0/24"))
	nw.AttachToLAN(w.r100, w.lan, AttachSpec{Addr: ma("196.49.7.1")})
	w.r200FromFabric = &Pipe{Prop: 100 * time.Microsecond}
	nw.AttachToLAN(w.r200, w.lan, AttachSpec{Addr: ma("196.49.7.10"),
		FromFabric: w.r200FromFabric})
	nw.AttachToLAN(w.r300, w.lan, AttachSpec{Addr: ma("196.49.7.11")})
	w.farAddr = ma("196.49.7.10")

	nw.ConnectLink(w.r200, w.r400, LinkSpec{Subnet: mp("10.200.255.0/30")})
	// Loopback-ish host addresses inside each member AS.
	nw.ConnectLink(w.r300, nw.AddNode("h300", 300), LinkSpec{Subnet: mp("10.201.0.0/30")})
	return w
}

func echoTo(t testing.TB, w *world, dst netaddr.Addr, ttl uint8) []byte {
	wire, err := packet.BuildEcho(packet.IPv4{TTL: ttl, Src: w.nw.SrcAddr(w.vp), Dst: dst},
		7, 1, []byte("timestamp"))
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func TestEchoReplyFromFarEnd(t *testing.T) {
	w := buildWorld(t)
	resp, out, err := w.nw.Inject(w.vp, echoTo(t, w, w.farAddr, 64), 0)
	if err != nil || out != Delivered {
		t.Fatalf("outcome %v err %v", out, err)
	}
	if resp.From != w.farAddr {
		t.Fatalf("reply from %v, want %v", resp.From, w.farAddr)
	}
	ip, pl, err := packet.DecodeIPv4(resp.Wire)
	if err != nil {
		t.Fatal(err)
	}
	m, err := packet.DecodeICMP(pl)
	if err != nil || m.Type != packet.ICMPEchoReply || m.ID != 7 {
		t.Fatalf("reply: %+v %v", m, err)
	}
	if ip.Dst != w.nw.SrcAddr(w.vp) {
		t.Fatal("reply must target the prober")
	}
	if time.Duration(resp.At) <= 0 {
		t.Fatal("RTT must be positive")
	}
}

func TestTTLExpiryAtNearRouter(t *testing.T) {
	w := buildWorld(t)
	resp, out, err := w.nw.Inject(w.vp, echoTo(t, w, w.farAddr, 1), 0)
	if err != nil || out != Delivered {
		t.Fatalf("outcome %v err %v", out, err)
	}
	if resp.From != w.nearAddr {
		t.Fatalf("TE from %v, want near router %v", resp.From, w.nearAddr)
	}
	_, pl, _ := packet.DecodeIPv4(resp.Wire)
	m, err := packet.DecodeICMP(pl)
	if err != nil || m.Type != packet.ICMPTimeExceeded {
		t.Fatalf("want time-exceeded, got %+v err %v", m, err)
	}
	// The quote must identify the original probe.
	qip, qicmp, err := packet.ParseQuote(m.Quote)
	if err != nil || qip.Dst != w.farAddr || qicmp.ID != 7 {
		t.Fatalf("quote: %+v %+v err %v", qip, qicmp, err)
	}
}

func TestTTLExpiryBeyondIXP(t *testing.T) {
	// Probing the stub AS400 with TTL=2 must expire at R200's LAN port
	// — exactly how TSLP measures the far end of the interdomain link.
	w := buildWorld(t)
	resp, out, err := w.nw.Inject(w.vp, echoTo(t, w, ma("10.202.0.1"), 2), 0)
	if err != nil || out != Delivered {
		t.Fatalf("outcome %v err %v", out, err)
	}
	if resp.From != w.farAddr {
		t.Fatalf("TE from %v, want %v", resp.From, w.farAddr)
	}
}

func TestUnreachableUnannounced(t *testing.T) {
	w := buildWorld(t)
	_, out, err := w.nw.Inject(w.vp, echoTo(t, w, ma("99.9.9.9"), 64), 0)
	if err != nil || out != Unreachable {
		t.Fatalf("outcome %v err %v", out, err)
	}
}

func TestCongestedPortRaisesFarRTTOnly(t *testing.T) {
	w := buildWorld(t)
	// Congest R200's fabric→member port: 100 Mbps, 28 ms buffer, 150%
	// offered load (the GIXA–GHANATEL shape).
	w.r200FromFabric.Queue = queue.NewFluid(queue.Config{
		CapacityBps: 100e6, BufferDrain: 28 * time.Millisecond,
		Load: trafficmodel.Constant(150e6),
	})
	at := simclock.Time(10 * time.Minute)

	respNear, out, err := w.nw.Inject(w.vp, echoTo(t, w, w.farAddr, 1), at)
	if err != nil || out != Delivered {
		t.Fatalf("near: %v %v", out, err)
	}
	respFar, out, err := w.nw.Inject(w.vp, echoTo(t, w, w.farAddr, 2), at)
	if err != nil || out != Delivered {
		t.Fatalf("far: %v %v", out, err)
	}
	nearRTT := respNear.At.Sub(at)
	farRTT := respFar.At.Sub(at)
	if nearRTT > 5*time.Millisecond {
		t.Fatalf("near RTT inflated: %v", nearRTT)
	}
	if farRTT < 28*time.Millisecond {
		t.Fatalf("far RTT %v does not carry the 28 ms standing queue", farRTT)
	}
}

func TestLossOnFaultyPipe(t *testing.T) {
	w := buildWorld(t)
	w.r200FromFabric.BaseLoss = 1.0
	_, out, err := w.nw.Inject(w.vp, echoTo(t, w, w.farAddr, 64), 0)
	if err != nil || out != Lost {
		t.Fatalf("outcome %v err %v", out, err)
	}
	// Near-end probes do not cross the faulty pipe.
	_, out, _ = w.nw.Inject(w.vp, echoTo(t, w, w.nearAddr, 64), 0)
	if out != Delivered {
		t.Fatalf("near probe should survive, got %v", out)
	}
}

func TestDownedLinkDropsProbes(t *testing.T) {
	w := buildWorld(t)
	cutoff := simclock.Date(2016, time.August, 6)
	w.r200FromFabric.Up = DownAfter(cutoff)
	_, out, _ := w.nw.Inject(w.vp, echoTo(t, w, w.farAddr, 64), cutoff.Add(-time.Hour))
	if out != Delivered {
		t.Fatalf("pre-cutoff probe should pass, got %v", out)
	}
	_, out, _ = w.nw.Inject(w.vp, echoTo(t, w, w.farAddr, 64), cutoff.Add(time.Hour))
	if out != Lost {
		t.Fatalf("post-cutoff probe should be lost, got %v", out)
	}
}

func TestRecordRouteStamping(t *testing.T) {
	w := buildWorld(t)
	ip := packet.IPv4{TTL: 64, Src: w.nw.SrcAddr(w.vp), Dst: w.farAddr,
		RecordRoute: &packet.RecordRoute{Slots: 9}}
	icmp := packet.ICMP{Type: packet.ICMPEcho, ID: 9, Seq: 9}
	wire, err := ip.SerializeTo(nil, icmp.SerializeTo(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp, out, err := w.nw.Inject(w.vp, wire, 0)
	if err != nil || out != Delivered {
		t.Fatalf("outcome %v err %v", out, err)
	}
	rip, _, err := packet.DecodeIPv4(resp.Wire)
	if err != nil || rip.RecordRoute == nil {
		t.Fatalf("reply lost RR: %v", err)
	}
	rec := rip.RecordRoute.Recorded
	// Forward: R100 stamps its LAN egress. Reverse: R200 stamps its
	// LAN egress, R100 stamps its /30 egress toward the VP.
	if len(rec) != 3 {
		t.Fatalf("recorded %d addrs: %v", len(rec), rec)
	}
	if rec[0] != ma("196.49.7.1") || rec[1] != w.farAddr || rec[2] != w.nearAddr {
		t.Fatalf("recorded %v", rec)
	}
}

func TestICMPDelayInflatesRTT(t *testing.T) {
	w := buildWorld(t)
	base, _, _ := w.nw.Inject(w.vp, echoTo(t, w, w.farAddr, 64), 0)
	w.r200.ICMPDelay = func(simclock.Time) simclock.Duration { return 40 * time.Millisecond }
	slow, out, err := w.nw.Inject(w.vp, echoTo(t, w, w.farAddr, 64), 0)
	if err != nil || out != Delivered {
		t.Fatalf("%v %v", out, err)
	}
	if d := time.Duration(slow.At-base.At) - 40*time.Millisecond; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("ICMP delay not applied: base %v slow %v", base.At, slow.At)
	}
}

func TestICMPRateLimitPolicesProbes(t *testing.T) {
	w := buildWorld(t)
	// r200 polices ICMP at 10 responses/second with a burst of 5.
	w.r200.ICMPRateLimit = queue.NewTokenBucket(10, 5, 0)
	delivered := 0
	// A 100-probe burst inside one second — twenty times the budget.
	for i := 0; i < 100; i++ {
		at := simclock.Time(time.Duration(i) * 10 * time.Millisecond)
		_, out, err := w.nw.Inject(w.vp, echoTo(t, w, w.farAddr, 64), at)
		if err != nil {
			t.Fatal(err)
		}
		if out == Delivered {
			delivered++
		}
	}
	// Budget over 1s: 5 burst + ~10 refill.
	if delivered < 10 || delivered > 20 {
		t.Fatalf("delivered %d of 100, want ≈15 (policed)", delivered)
	}
	// Low-rate probing (the paper's regime) is unaffected: one probe
	// per 5 minutes never exhausts the bucket.
	ok := 0
	for i := 0; i < 20; i++ {
		at := simclock.Time(time.Hour) + simclock.Time(time.Duration(i)*5*time.Minute)
		_, out, _ := w.nw.Inject(w.vp, echoTo(t, w, w.farAddr, 64), at)
		if out == Delivered {
			ok++
		}
	}
	if ok != 20 {
		t.Fatalf("low-rate probes delivered %d of 20", ok)
	}
}

func TestIntraASMultiRouterForwarding(t *testing.T) {
	// AS 500 has two routers chained; its border is r502. A VP behind
	// r501 must reach the IXP members through the chain.
	g := asrel.NewGraph()
	g.SetPeer(500, 600)
	bgp := bgpsim.New(g)
	bgp.Announce(500, mp("10.50.0.0/16"))
	bgp.Announce(600, mp("10.60.0.0/16"))
	nw := New(bgp, 1)
	vp := nw.AddNode("vp", 500)
	r501 := nw.AddNode("r501", 500)
	r502 := nw.AddNode("r502", 500)
	r600 := nw.AddNode("r600", 600)
	nw.ConnectLink(vp, r501, LinkSpec{Subnet: mp("10.50.0.0/30")})
	nw.SetGateway(vp, nw.Iface(vp.Ifaces[0]))
	nw.ConnectLink(r501, r502, LinkSpec{Subnet: mp("10.50.0.4/30")})
	// Interdomain link addressed from AS600's space, as providers
	// commonly address customer links.
	nw.ConnectLink(r502, r600, LinkSpec{Subnet: mp("10.60.255.0/30")})

	wire, _ := packet.BuildEcho(packet.IPv4{TTL: 64, Src: nw.SrcAddr(vp), Dst: ma("10.60.255.2")}, 1, 1, nil)
	resp, out, err := nw.Inject(vp, wire, 0)
	if err != nil || out != Delivered {
		t.Fatalf("outcome %v err %v", out, err)
	}
	if resp.From != ma("10.60.255.2") {
		t.Fatalf("reply from %v", resp.From)
	}
	// TTL accounting: r501 decrements once, r502 sees TTL 1 and
	// answers time-exceeded from its arrival interface.
	wire, _ = packet.BuildEcho(packet.IPv4{TTL: 2, Src: nw.SrcAddr(vp), Dst: ma("10.60.255.2")}, 1, 2, nil)
	resp, out, _ = nw.Inject(vp, wire, 0)
	if out != Delivered || resp.From != ma("10.50.0.6") {
		t.Fatalf("TTL=2 should expire at r502's arrival iface: %v %v", resp.From, out)
	}
}

func TestProbePathMatchesInject(t *testing.T) {
	// The fast-path sampler must agree with the packet walk on RTT,
	// responder, and loss-free behavior across TTLs and times.
	for _, ttl := range []int{1, 2, 64} {
		// Fresh worlds per TTL: queue state advances monotonically,
		// so each comparison run needs its own day of integration.
		w := buildWorld(t)
		w.r200FromFabric.Queue = queue.NewFluid(queue.Config{
			CapacityBps: 100e6, BufferDrain: 25 * time.Millisecond,
			Load: trafficmodel.Diurnal{BaseBps: 20e6, PeakBps: 160e6, PeakHour: 14, Width: 3}.Load(),
		})
		pp, err := w.nw.TracePath(w.vp, w.farAddr, ttl)
		if err != nil {
			t.Fatalf("ttl %d: %v", ttl, err)
		}
		// Walk a day of 5-minute samples; the queues advance jointly,
		// so use a fresh world per comparison run instead of sampling
		// both from one — here we compare against a twin world.
		w2 := buildWorld(t)
		w2.r200FromFabric.Queue = queue.NewFluid(queue.Config{
			CapacityBps: 100e6, BufferDrain: 25 * time.Millisecond,
			Load: trafficmodel.Diurnal{BaseBps: 20e6, PeakBps: 160e6, PeakHour: 14, Width: 3}.Load(),
		})
		compared := 0
		for min := 0; min < 24*60; min += 5 {
			at := simclock.Time(time.Duration(min) * time.Minute)
			// Loss draws consume independent nonce streams in the two
			// worlds, so pointwise loss may differ; delays, however,
			// are pure functions of time and must agree whenever both
			// probes survive.
			rtt, ok := pp.Sample(at)
			resp, out, err := w2.nw.Inject(w2.vp, echoTo(t, w2, w2.farAddr, uint8(ttl)), at)
			if err != nil {
				t.Fatalf("ttl %d at %v: %v", ttl, at, err)
			}
			if !ok || out != Delivered {
				continue
			}
			compared++
			injectRTT := resp.At.Sub(at)
			if diff := rtt - injectRTT; diff < -10*time.Microsecond || diff > 10*time.Microsecond {
				t.Fatalf("ttl %d at %v: Sample %v vs Inject %v", ttl, at, rtt, injectRTT)
			}
			if ttl == 1 && pp.RespAddr != w.nearAddr {
				t.Fatalf("ttl 1 responder %v", pp.RespAddr)
			}
			if ttl == 2 && pp.RespAddr != w.farAddr {
				t.Fatalf("ttl 2 responder %v", pp.RespAddr)
			}
		}
		if compared < 150 {
			t.Fatalf("ttl %d: only %d/288 samples compared", ttl, compared)
		}
	}
}

func TestProbePathValidity(t *testing.T) {
	w := buildWorld(t)
	pp, err := w.nw.TracePath(w.vp, w.farAddr, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !pp.Valid() {
		t.Fatal("fresh path must be valid")
	}
	w.nw.AddNode("new", 700)
	if pp.Valid() {
		t.Fatal("topology change must invalidate cached paths")
	}
}

func TestProbePathHopAddrs(t *testing.T) {
	w := buildWorld(t)
	pp, err := w.nw.TracePath(w.vp, w.farAddr, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(pp.HopAddrs) != 2 || pp.HopAddrs[0] != w.nearAddr || pp.HopAddrs[1] != w.farAddr {
		t.Fatalf("HopAddrs = %v", pp.HopAddrs)
	}
	if pp.Expired {
		t.Fatal("full-TTL probe should be answered, not expired")
	}
	pp1, _ := w.nw.TracePath(w.vp, w.farAddr, 1)
	if !pp1.Expired || pp1.RespAddr != w.nearAddr {
		t.Fatalf("TTL-1 path: expired=%v resp=%v", pp1.Expired, pp1.RespAddr)
	}
}

func TestProbePathUpTracksLinkState(t *testing.T) {
	w := buildWorld(t)
	cutoff := simclock.Date(2016, time.August, 6)
	w.r200FromFabric.Up = DownAfter(cutoff)
	pp, err := w.nw.TracePath(w.vp, w.farAddr, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !pp.Up(cutoff.Add(-time.Hour)) || pp.Up(cutoff.Add(time.Hour)) {
		t.Fatal("Up must follow the pipe schedule")
	}
	if _, ok := pp.Sample(cutoff.Add(2 * time.Hour)); ok {
		t.Fatal("sampling a downed path must report loss")
	}
}

func TestInterdomainLinksGroundTruth(t *testing.T) {
	w := buildWorld(t)
	links := w.nw.InterdomainLinks()
	// Expected: r200–r400 p2p (both directions appear once each as
	// near/far orderings? p2p appears once), LAN pairs 100-200, 100-300,
	// 200-300 in both directions, VP link is intra-AS (excluded),
	// r300-h300 intra-AS (excluded).
	var p2p, lanPairs int
	for _, l := range links {
		if l.NearAS == l.FarAS {
			t.Fatalf("intra-AS link leaked: %+v", l)
		}
		ifc := w.nw.Iface(l.NearIface)
		if ifc.link != nil {
			p2p++
		} else {
			lanPairs++
		}
	}
	if p2p != 1 {
		t.Fatalf("p2p interdomain links = %d, want 1", p2p)
	}
	if lanPairs != 6 {
		t.Fatalf("LAN interdomain pairs = %d, want 6", lanPairs)
	}
}

func TestDuplicateAddressPanics(t *testing.T) {
	w := buildWorld(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate address")
		}
	}()
	n := w.nw.AddNode("dup", 999)
	w.nw.ConnectLink(n, w.r100, LinkSpec{AddrA: w.farAddr, AddrB: ma("1.1.1.1")})
}

func TestOwnerOfAddr(t *testing.T) {
	w := buildWorld(t)
	n, ifc, ok := w.nw.OwnerOfAddr(w.farAddr)
	if !ok || n != w.r200 || ifc.Addr != w.farAddr {
		t.Fatal("OwnerOfAddr wrong")
	}
	if _, _, ok := w.nw.OwnerOfAddr(ma("9.9.9.9")); ok {
		t.Fatal("unknown address must miss")
	}
}

func BenchmarkInjectFarProbe(b *testing.B) {
	w := buildWorld(b)
	wire := echoTo(b, w, w.farAddr, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.nw.Inject(w.vp, wire, simclock.Time(i)*simclock.Time(time.Millisecond))
	}
}

func BenchmarkProbePathSample(b *testing.B) {
	w := buildWorld(b)
	pp, err := w.nw.TracePath(w.vp, w.farAddr, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pp.Sample(simclock.Time(i) * simclock.Time(time.Millisecond))
	}
}

func TestDumpTopology(t *testing.T) {
	w := buildWorld(t)
	var buf bytes.Buffer
	if err := w.nw.DumpTopology(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"router r100", "host vp", "LAN 196.49.7.0/24",
		"p2p", "port on LAN"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}
