package netsim

import (
	"fmt"

	"afrixp/internal/netaddr"
	"afrixp/internal/packet"
	"afrixp/internal/simclock"
)

// Outcome classifies what happened to an injected packet.
type Outcome int8

// Injection outcomes.
const (
	// Delivered: a response packet reached the injecting node.
	Delivered Outcome = iota
	// Lost: the packet (or its response) was dropped by a queue, a
	// faulty pipe, or a downed link.
	Lost
	// Unreachable: some node had no route; the packet vanished.
	Unreachable
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Delivered:
		return "delivered"
	case Lost:
		return "lost"
	default:
		return "unreachable"
	}
}

// Response is the packet that came back to the injecting node.
type Response struct {
	// Wire is the raw response datagram. It aliases scratch owned by
	// the Network and is only valid until the next Inject call; decode
	// it (or copy it) before injecting again.
	Wire []byte
	// At is the virtual arrival time; RTT = At - send time.
	At simclock.Time
	// From is the source address of the response.
	From netaddr.Addr
}

// maxWalkHops bounds a single injection walk (request + response).
const maxWalkHops = 128

// Inject sends the wire-format datagram from node src at virtual time
// t and walks it (and any ICMP response it elicits) through the
// network. It returns the response when one arrives back at src.
//
// The walk is synchronous: background traffic is fluid (inside the
// pipes' queues), so only the probe itself moves hop by hop. The
// caller's wire buffer is never written; rewritten wires live in the
// network's double-buffered scratch (see Response.Wire).
func (nw *Network) Inject(src *Node, wire []byte, t simclock.Time) (Response, Outcome, error) {
	resp, out, err := nw.injectWalk(src, wire, t)
	// Accounting only — the walk's result is untouched, so telemetry
	// cannot perturb it. Plain counters: Inject is single-goroutine by
	// contract (the shared wire scratch already forbids concurrency).
	nw.injStats.Walks++
	switch {
	case err != nil:
		nw.injStats.Unreachable++
	case out == Delivered:
		nw.injStats.Delivered++
	case out == Lost:
		nw.injStats.Lost++
	default:
		nw.injStats.Unreachable++
	}
	return resp, out, err
}

// injectWalk is the uninstrumented packet walk behind Inject.
func (nw *Network) injectWalk(src *Node, wire []byte, t simclock.Time) (Response, Outcome, error) {
	cur := src
	var arrival *Iface
	originated := true // the current node created the current wire
	slot := -1         // injWire slot backing wire; -1 = caller's buffer

	// nextWire returns the scratch slot a rewritten wire may be
	// serialized into: the one not backing the wire being read.
	nextWire := func() int {
		if slot == 0 {
			return 1
		}
		return 0
	}

	for hops := 0; hops < maxWalkHops; hops++ {
		ip, payload, err := packet.DecodeIPv4(wire)
		if err != nil {
			return Response{}, Unreachable, fmt.Errorf("netsim: hop %d at %s: %w", hops, cur.Name, err)
		}

		if nw.ownsAddr(cur, ip.Dst) {
			icmp, err := packet.DecodeICMP(payload)
			if err != nil {
				return Response{}, Unreachable, fmt.Errorf("netsim: non-ICMP payload at %s: %w", cur.Name, err)
			}
			if icmp.Type == packet.ICMPEcho {
				// An injected ICMP blackout (or deterministic rate
				// limit) silences the responder entirely.
				if cur.ICMPDown != nil && cur.ICMPDown(t) {
					return Response{}, Lost, nil
				}
				// Control-plane policing: a router out of ICMP budget
				// silently drops the request.
				if cur.ICMPRateLimit != nil && !cur.ICMPRateLimit.Allow(t) {
					return Response{}, Lost, nil
				}
				// Generate an echo reply (control-plane delay applies).
				if cur.ICMPDelay != nil {
					t = t.Add(cur.ICMPDelay(t))
				}
				// Host stacks record their own address when answering
				// a record-route probe (visible in ping -R output).
				if ip.RecordRoute != nil {
					ip.RecordRoute.Stamp(ip.Dst)
				}
				ns := nextWire()
				reply, err := nw.pkt.EchoReply(nw.injWire[ns][:0], ip, icmp, 64, cur.nextIPID())
				if err != nil {
					return Response{}, Unreachable, err
				}
				nw.injWire[ns] = reply
				wire, slot = reply, ns
				originated = true
				continue
			}
			// Echo reply or ICMP error arriving at its destination.
			if cur == src {
				return Response{Wire: wire, At: t, From: ip.Src}, Delivered, nil
			}
			// A response addressed to somebody else's address that we
			// own: swallow it (should not happen in practice).
			return Response{}, Unreachable, nil
		}

		// TTL check applies when forwarding somebody else's packet.
		if !originated {
			if ip.TTL <= 1 {
				if cur.ICMPDown != nil && cur.ICMPDown(t) {
					return Response{}, Lost, nil
				}
				if cur.ICMPRateLimit != nil && !cur.ICMPRateLimit.Allow(t) {
					return Response{}, Lost, nil
				}
				respAddr := ip.Dst // fallback; normally the arrival iface
				if arrival != nil {
					respAddr = arrival.Addr
				}
				if cur.ICMPDelay != nil {
					t = t.Add(cur.ICMPDelay(t))
				}
				ns := nextWire()
				te, err := nw.pkt.TimeExceeded(nw.injWire[ns][:0],
					packet.IPv4{TTL: 64, ID: cur.nextIPID(), Src: respAddr, Dst: ip.Src}, wire)
				if err != nil {
					return Response{}, Unreachable, err
				}
				nw.injWire[ns] = te
				wire, slot = te, ns
				originated = true
				continue
			}
			ip.TTL--
		}

		h, ok := nw.resolveStep(cur, ip.Dst)
		if !ok {
			return Response{}, Unreachable, nil
		}
		// Routers forwarding a packet stamp the Record Route option
		// with their egress address.
		if !originated && ip.RecordRoute != nil && cur.Gateway == noIface {
			ip.RecordRoute.Stamp(h.egress.Addr)
		}
		// Re-serialize into the free slot: payload aliases the wire
		// being replaced, so the write must not land on top of it.
		ns := nextWire()
		rewired, err := ip.SerializeTo(nw.injWire[ns][:0], payload)
		if err != nil {
			return Response{}, Unreachable, err
		}
		nw.injWire[ns] = rewired
		wire, slot = rewired, ns

		for _, p := range h.pipeSeq() {
			nw.pktCounter++
			exit, alive := p.Traverse(t, nw.pktCounter)
			if !alive {
				return Response{}, Lost, nil
			}
			t = exit
		}
		cur = nw.nodes[h.arrival.Node]
		arrival = h.arrival
		originated = false
	}
	return Response{}, Unreachable, fmt.Errorf("netsim: walk exceeded %d hops (loop?)", maxWalkHops)
}

// ownsAddr reports whether any of n's interfaces carries addr.
func (nw *Network) ownsAddr(n *Node, addr netaddr.Addr) bool {
	id, ok := nw.byAddr[addr]
	return ok && nw.ifaces[id].Node == n.ID
}

// SrcAddr returns the address probes from this node should use: the
// node's first interface.
func (nw *Network) SrcAddr(n *Node) netaddr.Addr {
	if len(n.Ifaces) == 0 {
		panic(fmt.Sprintf("netsim: node %s has no interfaces", n.Name))
	}
	return nw.ifaces[n.Ifaces[0]].Addr
}
