package netsim

import (
	"fmt"

	"afrixp/internal/netaddr"
	"afrixp/internal/packet"
	"afrixp/internal/simclock"
)

// Outcome classifies what happened to an injected packet.
type Outcome int8

// Injection outcomes.
const (
	// Delivered: a response packet reached the injecting node.
	Delivered Outcome = iota
	// Lost: the packet (or its response) was dropped by a queue, a
	// faulty pipe, or a downed link.
	Lost
	// Unreachable: some node had no route; the packet vanished.
	Unreachable
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Delivered:
		return "delivered"
	case Lost:
		return "lost"
	default:
		return "unreachable"
	}
}

// Response is the packet that came back to the injecting node.
type Response struct {
	// Wire is the raw response datagram.
	Wire []byte
	// At is the virtual arrival time; RTT = At - send time.
	At simclock.Time
	// From is the source address of the response.
	From netaddr.Addr
}

// maxWalkHops bounds a single injection walk (request + response).
const maxWalkHops = 128

// Inject sends the wire-format datagram from node src at virtual time
// t and walks it (and any ICMP response it elicits) through the
// network. It returns the response when one arrives back at src.
//
// The walk is synchronous: background traffic is fluid (inside the
// pipes' queues), so only the probe itself moves hop by hop.
func (nw *Network) Inject(src *Node, wire []byte, t simclock.Time) (*Response, Outcome, error) {
	cur := src
	var arrival *Iface
	originated := true // the current node created the current wire

	for hops := 0; hops < maxWalkHops; hops++ {
		ip, payload, err := packet.DecodeIPv4(wire)
		if err != nil {
			return nil, Unreachable, fmt.Errorf("netsim: hop %d at %s: %w", hops, cur.Name, err)
		}

		if nw.ownsAddr(cur, ip.Dst) {
			icmp, err := packet.DecodeICMP(payload)
			if err != nil {
				return nil, Unreachable, fmt.Errorf("netsim: non-ICMP payload at %s: %w", cur.Name, err)
			}
			if icmp.Type == packet.ICMPEcho {
				// Control-plane policing: a router out of ICMP budget
				// silently drops the request.
				if cur.ICMPRateLimit != nil && !cur.ICMPRateLimit.Allow(t) {
					return nil, Lost, nil
				}
				// Generate an echo reply (control-plane delay applies).
				if cur.ICMPDelay != nil {
					t = t.Add(cur.ICMPDelay(t))
				}
				// Host stacks record their own address when answering
				// a record-route probe (visible in ping -R output).
				if ip.RecordRoute != nil {
					ip.RecordRoute.Stamp(ip.Dst)
				}
				reply, err := packet.BuildEchoReply(ip, icmp, 64, cur.nextIPID())
				if err != nil {
					return nil, Unreachable, err
				}
				wire = reply
				originated = true
				continue
			}
			// Echo reply or ICMP error arriving at its destination.
			if cur == src {
				return &Response{Wire: wire, At: t, From: ip.Src}, Delivered, nil
			}
			// A response addressed to somebody else's address that we
			// own: swallow it (should not happen in practice).
			return nil, Unreachable, nil
		}

		// TTL check applies when forwarding somebody else's packet.
		if !originated {
			if ip.TTL <= 1 {
				if cur.ICMPRateLimit != nil && !cur.ICMPRateLimit.Allow(t) {
					return nil, Lost, nil
				}
				respAddr := ip.Dst // fallback; normally the arrival iface
				if arrival != nil {
					respAddr = arrival.Addr
				}
				if cur.ICMPDelay != nil {
					t = t.Add(cur.ICMPDelay(t))
				}
				te, err := packet.BuildTimeExceeded(
					packet.IPv4{TTL: 64, ID: cur.nextIPID(), Src: respAddr, Dst: ip.Src}, wire)
				if err != nil {
					return nil, Unreachable, err
				}
				wire = te
				originated = true
				continue
			}
			ip.TTL--
		}

		h, ok := nw.resolveStep(cur, ip.Dst)
		if !ok {
			return nil, Unreachable, nil
		}
		// Routers forwarding a packet stamp the Record Route option
		// with their egress address.
		if !originated && ip.RecordRoute != nil && cur.Gateway == noIface {
			ip.RecordRoute.Stamp(h.egress.Addr)
		}
		wire, err = ip.SerializeTo(nil, payload)
		if err != nil {
			return nil, Unreachable, err
		}

		for _, p := range h.pipes {
			nw.pktCounter++
			exit, alive := p.Traverse(t, nw.pktCounter)
			if !alive {
				return nil, Lost, nil
			}
			t = exit
		}
		cur = nw.nodes[h.arrival.Node]
		arrival = h.arrival
		originated = false
	}
	return nil, Unreachable, fmt.Errorf("netsim: walk exceeded %d hops (loop?)", maxWalkHops)
}

// ownsAddr reports whether any of n's interfaces carries addr.
func (nw *Network) ownsAddr(n *Node, addr netaddr.Addr) bool {
	id, ok := nw.byAddr[addr]
	return ok && nw.ifaces[id].Node == n.ID
}

// SrcAddr returns the address probes from this node should use: the
// node's first interface.
func (nw *Network) SrcAddr(n *Node) netaddr.Addr {
	if len(n.Ifaces) == 0 {
		panic(fmt.Sprintf("netsim: node %s has no interfaces", n.Name))
	}
	return nw.ifaces[n.Ifaces[0]].Addr
}
