package netsim

import (
	"testing"
	"time"

	"afrixp/internal/simclock"
)

// TestICMPDownSilencesResponder pins that an ICMP blackout gates every
// response-generation path the same way: the packet-walk protocol
// (Inject), the live sampling fast path (Sample), and the frozen
// per-context path (SampleCtx) must all see the probe go unanswered
// while the schedule is down and answered again once it lifts.
func TestICMPDownSilencesResponder(t *testing.T) {
	w := buildWorld(t)
	down := simclock.Interval{
		Start: simclock.Time(1 * time.Hour),
		End:   simclock.Time(2 * time.Hour),
	}
	w.r200.ICMPDown = func(at simclock.Time) bool { return down.Contains(at) }

	pp, err := w.nw.TracePath(w.vp, w.farAddr, 64)
	if err != nil {
		t.Fatal(err)
	}
	ctx := w.nw.NewProbeCtx(1)
	for _, tc := range []struct {
		at   simclock.Time
		want bool // response expected
	}{
		{simclock.Time(30 * time.Minute), true},
		{down.Start, false},
		{simclock.Time(90 * time.Minute), false},
		{down.End, true},
	} {
		_, out, err := w.nw.Inject(w.vp, echoTo(t, w, w.farAddr, 64), tc.at)
		if err != nil {
			t.Fatal(err)
		}
		if got := out == Delivered; got != tc.want {
			t.Fatalf("Inject at %v: delivered=%t, want %t", tc.at, got, tc.want)
		}
		if _, ok := pp.Sample(tc.at); ok != tc.want {
			t.Fatalf("Sample at %v: ok=%t, want %t", tc.at, ok, tc.want)
		}
		w.nw.AdvanceQueues(tc.at)
		if _, ok := pp.SampleCtx(ctx, tc.at); ok != tc.want {
			t.Fatalf("SampleCtx at %v: ok=%t, want %t", tc.at, ok, tc.want)
		}
	}
}

// TestICMPDownSilencesTimeExceeded covers the near-end case: a
// blacked-out router also stops originating TTL-exceeded errors,
// which is how the paper's unresponsive-router losses appear in
// TSLP's near series.
func TestICMPDownSilencesTimeExceeded(t *testing.T) {
	w := buildWorld(t)
	w.r100.ICMPDown = func(simclock.Time) bool { return true }
	_, out, err := w.nw.Inject(w.vp, echoTo(t, w, w.farAddr, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if out != Lost {
		t.Fatalf("TTL-expired probe at a blacked-out router: %v, want lost", out)
	}
}

// TestPipesAt resolves both port shapes fault injection flaps: a
// point-to-point link end and a LAN attachment.
func TestPipesAt(t *testing.T) {
	w := buildWorld(t)
	in, out, ok := w.nw.PipesAt(w.farAddr) // r200's LAN port
	if !ok || in != w.r200FromFabric || out == nil {
		t.Fatalf("LAN port pipes: in=%p out=%p ok=%t", in, out, ok)
	}
	in, out, ok = w.nw.PipesAt(w.nearAddr) // r100's side of the VP /30
	if !ok || in != w.vpLink.Pipes[0] || out != w.vpLink.Pipes[1] {
		t.Fatalf("p2p port pipes: in=%p out=%p ok=%t", in, out, ok)
	}
	if _, _, ok := w.nw.PipesAt(ma("203.0.113.1")); ok {
		t.Fatal("unknown address must not resolve")
	}
}
