package netsim

import (
	"fmt"

	"afrixp/internal/netaddr"
	"afrixp/internal/simclock"
)

// ProbePath is a cached probe trajectory: the exact pipe sequence a
// TTL-limited echo probe traverses from a vantage point to its
// responder and back. Bulk TSLP campaigns sample RTTs through it
// without re-encoding packets at every hop; equivalence with the
// packet-level walk is property-tested (TestProbePathMatchesInject).
type ProbePath struct {
	nw      *Network
	version int64

	// FwdPipes carries the probe to the responder; RevPipes carries
	// the response back.
	FwdPipes []*Pipe
	RevPipes []*Pipe
	// Responder answers the probe (echo reply if it owns Dst, time
	// exceeded if the TTL ran out there).
	Responder *Node
	// RespAddr is the source address of the response — the near- or
	// far-end identifier TSLP records.
	RespAddr netaddr.Addr
	// HopAddrs are the arrival interface addresses along the forward
	// path, hop by hop (what traceroute would reveal).
	HopAddrs []netaddr.Addr
	// Expired reports whether the responder answered with a
	// time-exceeded (TTL ran out) rather than an echo reply.
	Expired bool
}

// TracePath resolves the trajectory of an echo probe with the given
// TTL from src toward dst. Routing is time-invariant in the simulator
// (only pipe conditions vary), so the path can be cached until the
// topology version changes.
func (nw *Network) TracePath(src *Node, dst netaddr.Addr, ttl int) (*ProbePath, error) {
	pp := &ProbePath{nw: nw, version: nw.version}
	cur := src
	var arrival *Iface
	remaining := ttl

	for hops := 0; hops < maxWalkHops; hops++ {
		if cur != src && nw.ownsAddr(cur, dst) {
			pp.Responder = cur
			pp.RespAddr = dst
			break
		}
		if cur != src {
			if remaining <= 1 {
				pp.Responder = cur
				pp.RespAddr = arrival.Addr
				pp.Expired = true
				break
			}
			remaining--
		}
		h, ok := nw.resolveStep(cur, dst)
		if !ok {
			return nil, fmt.Errorf("netsim: no route from %s toward %v", cur.Name, dst)
		}
		pp.FwdPipes = append(pp.FwdPipes, h.pipeSeq()...)
		pp.HopAddrs = append(pp.HopAddrs, h.arrival.Addr)
		cur = nw.nodes[h.arrival.Node]
		arrival = h.arrival
	}
	if pp.Responder == nil {
		return nil, fmt.Errorf("netsim: probe toward %v never terminated", dst)
	}

	// Reverse path: route the response from the responder back to the
	// prober's source address.
	back := nw.SrcAddr(src)
	cur = pp.Responder
	for hops := 0; hops < maxWalkHops; hops++ {
		if nw.ownsAddr(cur, back) {
			return pp, nil
		}
		h, ok := nw.resolveStep(cur, back)
		if !ok {
			return nil, fmt.Errorf("netsim: no return route from %s toward %v", cur.Name, back)
		}
		pp.RevPipes = append(pp.RevPipes, h.pipeSeq()...)
		cur = nw.nodes[h.arrival.Node]
	}
	return nil, fmt.Errorf("netsim: return path toward %v never terminated", back)
}

// Valid reports whether the cached path still reflects the topology.
func (pp *ProbePath) Valid() bool { return pp.version == pp.nw.version }

// Sample sends one virtual probe along the cached path at time t,
// returning the RTT and whether a response arrived (false = loss).
func (pp *ProbePath) Sample(t simclock.Time) (simclock.Duration, bool) {
	start := t
	for _, p := range pp.FwdPipes {
		pp.nw.pktCounter++
		exit, ok := p.Traverse(t, pp.nw.pktCounter)
		if !ok {
			return 0, false
		}
		t = exit
	}
	if pp.Responder.ICMPDown != nil && pp.Responder.ICMPDown(t) {
		return 0, false
	}
	if pp.Responder.ICMPRateLimit != nil && !pp.Responder.ICMPRateLimit.Allow(t) {
		return 0, false
	}
	if pp.Responder.ICMPDelay != nil {
		t = t.Add(pp.Responder.ICMPDelay(t))
	}
	for _, p := range pp.RevPipes {
		pp.nw.pktCounter++
		exit, ok := p.Traverse(t, pp.nw.pktCounter)
		if !ok {
			return 0, false
		}
		t = exit
	}
	return t.Sub(start), true
}

// ProbeCtx is one measurement agent's private probe-side state: an
// independent nonce stream for deterministic loss draws. Each
// concurrently-probing agent (one per vantage point) owns its own
// context; the streams are disjoint by construction, so a probe's loss
// draw depends only on its position in its own VP's stream — never on
// how worker goroutines interleave. That property is what makes
// campaign results bit-identical for any worker count.
//
// A ProbeCtx must not be shared between goroutines.
type ProbeCtx struct {
	salt  uint64
	count uint64
	// step is the batch-step index plus one; zero observes the live
	// queue frontier (the non-batched protocol). See SetStep.
	step int
	// stats counts sampling outcomes. Plain counters: the single-owner
	// contract makes them free and race-free; the engine republishes
	// them into atomic telemetry counters at batch barriers (Stats).
	stats ProbeStats
}

// SetStep points subsequent samples at batch step i of the most recent
// Network.AdvanceQueuesBatch, so a worker can replay the whole batch
// without the world stopping at each step. A negative i restores
// live-frontier observation. The step index only selects which recorded
// queue state a sample reads; the nonce stream is untouched, which is
// why batching cannot perturb loss draws.
func (c *ProbeCtx) SetStep(i int) {
	if i < 0 {
		c.step = 0
	} else {
		c.step = i + 1
	}
}

// NewProbeCtx derives an agent-scoped probe context. id distinguishes
// agents (the VP node id); streams are spaced 2^40 nonces apart, far
// beyond any campaign's probe count.
func (nw *Network) NewProbeCtx(id uint64) *ProbeCtx {
	return &ProbeCtx{salt: (id + 1) << 40}
}

// nonce returns the next per-packet nonce of this context's stream.
func (c *ProbeCtx) nonce() uint64 {
	c.count++
	return c.salt + c.count
}

// NonceCount returns the number of nonces drawn so far — the context's
// position in its private stream, checkpointed by the engine so a
// resumed campaign replays the identical loss draws.
func (c *ProbeCtx) NonceCount() uint64 { return c.count }

// RestoreNonceCount repositions the nonce stream from a checkpoint.
func (c *ProbeCtx) RestoreNonceCount(n uint64) { c.count = n }

// SampleCtx sends one virtual probe along the cached path at time t
// using the caller's probe context for loss draws and the frozen queue
// read path for conditions. Unlike Sample it mutates no network state
// (shared ICMP rate-limit buckets, when present, are serialized under
// a lock — worlds probing such responders from multiple VPs trade
// cross-worker bit-determinism for the shared budget; the paper world
// has none). Callers must have advanced the world's queues to the
// current step barrier via Network.AdvanceQueues, or published the
// containing batch via Network.AdvanceQueuesBatch and pointed the
// context at the step being replayed with SetStep.
func (pp *ProbePath) SampleCtx(ctx *ProbeCtx, t simclock.Time) (simclock.Duration, bool) {
	st := &ctx.stats
	st.Probes++
	start := t
	for _, p := range pp.FwdPipes {
		if p.Queue != nil {
			st.QueueFrozenObs++
		}
		exit, ok := p.TraverseFrozenStep(ctx.step-1, t, ctx.nonce())
		if !ok {
			st.PipeDrops++
			return 0, false
		}
		t = exit
	}
	if pp.Responder.ICMPDown != nil && pp.Responder.ICMPDown(t) {
		st.ICMPSilenced++
		return 0, false
	}
	if rl := pp.Responder.ICMPRateLimit; rl != nil {
		pp.nw.rlMu.Lock()
		ok := rl.Allow(t)
		pp.nw.rlMu.Unlock()
		if !ok {
			st.RateLimited++
			return 0, false
		}
	}
	if pp.Responder.ICMPDelay != nil {
		t = t.Add(pp.Responder.ICMPDelay(t))
	}
	for _, p := range pp.RevPipes {
		if p.Queue != nil {
			st.QueueFrozenObs++
		}
		exit, ok := p.TraverseFrozenStep(ctx.step-1, t, ctx.nonce())
		if !ok {
			st.PipeDrops++
			return 0, false
		}
		t = exit
	}
	st.Delivered++
	rtt := t.Sub(start)
	st.observeRTT(rtt)
	return rtt, true
}

// SampleDelayOnly returns the RTT at t ignoring loss — used by
// analyses that need the latency surface itself.
func (pp *ProbePath) SampleDelayOnly(t simclock.Time) simclock.Duration {
	start := t
	for _, p := range pp.FwdPipes {
		t = t.Add(p.DelayAt(t))
	}
	if pp.Responder.ICMPDelay != nil {
		t = t.Add(pp.Responder.ICMPDelay(t))
	}
	for _, p := range pp.RevPipes {
		t = t.Add(p.DelayAt(t))
	}
	return t.Sub(start)
}

// Up reports whether every pipe on the path passes traffic at t.
func (pp *ProbePath) Up(t simclock.Time) bool {
	for _, p := range pp.FwdPipes {
		if !p.IsUp(t) {
			return false
		}
	}
	for _, p := range pp.RevPipes {
		if !p.IsUp(t) {
			return false
		}
	}
	return true
}
