package netsim

import (
	"testing"
	"time"

	"afrixp/internal/queue"
	"afrixp/internal/simclock"
	"afrixp/internal/trafficmodel"
)

// Batched world advancement (AdvanceQueuesBatch + ProbeCtx.SetStep)
// must reproduce the per-step frozen protocol bit-identically —
// delays, loss draws and all — since the campaign scheduler treats the
// two as interchangeable.
func TestSampleCtxBatchMatchesPerStep(t *testing.T) {
	build := func() (*world, *ProbePath, *ProbeCtx) {
		w := buildWorld(t)
		load := trafficmodel.Diurnal{
			BaseBps: 60e6, PeakBps: 70e6, PeakHour: 14, Width: 3,
			NoiseFrac: 0.3, Seed: 9,
		}
		w.r200FromFabric.Queue = queue.NewFluid(queue.Config{
			CapacityBps: 100e6, BufferDrain: 28 * time.Millisecond,
			Load: load.Bps, PacketBits: 12000,
		})
		w.r200FromFabric.BaseLoss = 0.01
		pp, err := w.nw.TracePath(w.vp, w.farAddr, 64)
		if err != nil {
			t.Fatal(err)
		}
		return w, pp, w.nw.NewProbeCtx(1)
	}
	wA, ppA, ctxA := build() // advanced step by step
	wB, ppB, ctxB := build() // advanced in one batch

	const n = 48
	steps := make([]simclock.Time, n)
	for i := range steps {
		steps[i] = simclock.Time(time.Duration(i) * 5 * time.Minute)
	}
	wB.nw.AdvanceQueuesBatch(steps)
	for i, at := range steps {
		wA.nw.AdvanceQueues(at)
		ctxB.SetStep(i)
		// Several probes per step, spilling past the step boundary the
		// way loss batches do, so the forward-integration path runs.
		for k := 0; k < 3; k++ {
			probeAt := at.Add(time.Duration(k) * 700 * time.Millisecond)
			d1, ok1 := ppA.SampleCtx(ctxA, probeAt)
			d2, ok2 := ppB.SampleCtx(ctxB, probeAt)
			if d1 != d2 || ok1 != ok2 {
				t.Fatalf("step %d probe %d: per-step (%v,%v) != batched (%v,%v)",
					i, k, d1, ok1, d2, ok2)
			}
		}
	}

	// SetStep(-1) returns the context to live-frontier observation; both
	// worlds' frontiers now sit at the last step, so samples still agree.
	ctxB.SetStep(-1)
	d1, ok1 := ppA.SampleCtx(ctxA, steps[n-1])
	d2, ok2 := ppB.SampleCtx(ctxB, steps[n-1])
	if d1 != d2 || ok1 != ok2 {
		t.Fatalf("frontier mode after batch: (%v,%v) != (%v,%v)", d1, ok1, d2, ok2)
	}
}
