package netsim

import (
	"testing"

	"afrixp/internal/asrel"
	"afrixp/internal/bgpsim"
	"afrixp/internal/netaddr"
	"afrixp/internal/packet"
	"afrixp/internal/rrcheck"
)

// buildTwoBorders creates AS20 with two border routers toward AS10:
//
//	vp — r1(AS10) ══╦══ linkA ══ r2a(AS20) ── internal ── r2b(AS20) ── host(lo)
//	                ╚══ linkB ═════════════════════════════╝   (asymmetric only)
//
// Forward traffic to the host enters via r2a (r1's first adjacency).
// With linkB present, r2b returns replies directly to r1 — a genuinely
// asymmetric route crossing different routers in each direction, which
// the record-route check must catch (§5.2). Without linkB the reply
// retraces the forward path.
func buildTwoBorders(t *testing.T, asymmetric bool) (*Network, *Node) {
	t.Helper()
	g := asrel.NewGraph()
	g.SetPeer(10, 20)
	bgp := bgpsim.New(g)
	bgp.Announce(10, mp("10.10.0.0/16"))
	bgp.Announce(20, mp("10.20.0.0/16"))
	nw := New(bgp, 77)
	vp := nw.AddNode("vp", 10)
	r1 := nw.AddNode("r1", 10)
	r2a := nw.AddNode("r2a", 20)
	r2b := nw.AddNode("r2b", 20)
	host := nw.AddNode("h20", 20)
	nw.ConnectLink(vp, r1, LinkSpec{Subnet: mp("10.10.0.0/30")})
	nw.SetGateway(vp, nw.Iface(vp.Ifaces[0]))
	nw.ConnectLink(r1, r2a, LinkSpec{Subnet: mp("10.20.0.0/30")}) // link A
	nw.ConnectLink(r2a, r2b, LinkSpec{Subnet: mp("10.20.0.8/30")})
	nw.ConnectLink(r2b, host, LinkSpec{Subnet: mp("10.20.0.12/30")})
	nw.AddLoopback(host, ma("10.20.1.1"), "lo.h20")
	if asymmetric {
		nw.ConnectLink(r2b, r1, LinkSpec{Subnet: mp("10.20.0.4/30")}) // link B
	}
	return nw, vp
}

// truthOracle answers same-router questions from simulator ground
// truth — the role alias resolution plays in a real deployment.
func truthOracle(nw *Network) rrcheck.SameRouter {
	return func(a, b netaddr.Addr) bool {
		na, _, okA := nw.OwnerOfAddr(a)
		nb, _, okB := nw.OwnerOfAddr(b)
		return okA && okB && na == nb
	}
}

func TestReturnPathDivertsThroughSecondBorder(t *testing.T) {
	nw, vp := buildTwoBorders(t, true)
	pp, err := nw.TracePath(vp, ma("10.20.1.1"), 64)
	if err != nil {
		t.Fatal(err)
	}
	// Forward: vp→r1→r2a→r2b→host = 4 pipes. Reverse: host→r2b→r1→vp
	// = 3 pipes.
	if len(pp.FwdPipes) != 4 || len(pp.RevPipes) != 3 {
		t.Fatalf("pipes fwd=%d rev=%d, want 4/3", len(pp.FwdPipes), len(pp.RevPipes))
	}
	// Symmetric control.
	nwS, vpS := buildTwoBorders(t, false)
	ppS, err := nwS.TracePath(vpS, ma("10.20.1.1"), 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(ppS.FwdPipes) != len(ppS.RevPipes) {
		t.Fatalf("symmetric control: fwd=%d rev=%d", len(ppS.FwdPipes), len(ppS.RevPipes))
	}
}

func TestRecordRouteDetectsAsymmetry(t *testing.T) {
	for _, asym := range []bool{false, true} {
		nw, vp := buildTwoBorders(t, asym)
		ip := packet.IPv4{TTL: 64, Src: nw.SrcAddr(vp), Dst: ma("10.20.1.1"),
			RecordRoute: &packet.RecordRoute{Slots: packet.MaxRecordRouteSlots}}
		icmp := packet.ICMP{Type: packet.ICMPEcho, ID: 4, Seq: 4}
		wire, err := ip.SerializeTo(nil, icmp.SerializeTo(nil))
		if err != nil {
			t.Fatal(err)
		}
		resp, out, err := nw.Inject(vp, wire, 0)
		if err != nil || out != Delivered {
			t.Fatalf("asym=%v: %v %v", asym, out, err)
		}
		rip, _, err := packet.DecodeIPv4(resp.Wire)
		if err != nil || rip.RecordRoute == nil {
			t.Fatalf("asym=%v: reply lost RR (%v)", asym, err)
		}
		v := rrcheck.Analyze(rip.RecordRoute.Recorded, ma("10.20.1.1"),
			rip.RecordRoute.Full(), truthOracle(nw))
		if asym && v.Symmetric {
			t.Fatalf("asymmetric route judged symmetric: stamps %v",
				rip.RecordRoute.Recorded)
		}
		if !asym && !v.Symmetric {
			t.Fatalf("symmetric route judged asymmetric: stamps %v",
				rip.RecordRoute.Recorded)
		}
	}
}
