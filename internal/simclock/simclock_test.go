package simclock

import (
	"testing"
	"time"
)

func TestEpochRoundTrip(t *testing.T) {
	if got := Time(0).Wall(); !got.Equal(Epoch) {
		t.Fatalf("Time(0).Wall() = %v, want %v", got, Epoch)
	}
	wall := time.Date(2016, time.August, 6, 13, 30, 0, 0, time.UTC)
	if got := At(wall).Wall(); !got.Equal(wall) {
		t.Fatalf("round trip = %v, want %v", got, wall)
	}
}

func TestDateHelper(t *testing.T) {
	d := Date(2016, time.April, 28)
	want := time.Date(2016, time.April, 28, 0, 0, 0, 0, time.UTC)
	if !d.Wall().Equal(want) {
		t.Fatalf("Date = %v, want %v", d.Wall(), want)
	}
}

func TestCampaignBoundariesOrdering(t *testing.T) {
	if !(Time(0) < LossStart && LossStart < LatencyEnd && LatencyEnd < LossEnd) {
		t.Fatalf("campaign boundaries out of order: 0, %d, %d, %d",
			LossStart, LatencyEnd, LossEnd)
	}
}

func TestAddSub(t *testing.T) {
	a := Date(2016, time.March, 1)
	b := a.Add(36 * time.Hour)
	if got := b.Sub(a); got != 36*time.Hour {
		t.Fatalf("Sub = %v, want 36h", got)
	}
	if !a.Before(b) || !b.After(a) {
		t.Fatal("Before/After inconsistent")
	}
}

func TestTruncate(t *testing.T) {
	tm := At(time.Date(2016, time.March, 1, 10, 7, 42, 0, time.UTC))
	got := tm.Truncate(5 * time.Minute)
	want := At(time.Date(2016, time.March, 1, 10, 5, 0, 0, time.UTC))
	if got != want {
		t.Fatalf("Truncate = %v, want %v", got, want)
	}
	if tm.Truncate(0) != tm {
		t.Fatal("Truncate(0) should be identity")
	}
}

func TestWeekendDetection(t *testing.T) {
	sat := Date(2016, time.March, 5) // Saturday
	mon := Date(2016, time.March, 7) // Monday
	if !sat.IsWeekend() {
		t.Errorf("%v should be a weekend", sat)
	}
	if mon.IsWeekend() {
		t.Errorf("%v should be a weekday", mon)
	}
	if got := sat.DayOfWeek(); got != time.Saturday {
		t.Errorf("DayOfWeek = %v, want Saturday", got)
	}
}

func TestSecondOfDayAndHour(t *testing.T) {
	tm := At(time.Date(2016, time.June, 15, 13, 30, 15, 0, time.UTC))
	if got := tm.SecondOfDay(); got != 13*3600+30*60+15 {
		t.Fatalf("SecondOfDay = %d", got)
	}
	if got := tm.HourOfDay(); got < 13.5 || got > 13.51 {
		t.Fatalf("HourOfDay = %v", got)
	}
}

func TestDayCounter(t *testing.T) {
	if got := Date(2016, time.February, 23).Day(); got != 1 {
		t.Fatalf("Day = %d, want 1", got)
	}
	if got := Time(0).Add(23 * time.Hour).Day(); got != 0 {
		t.Fatalf("Day = %d, want 0", got)
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock(Date(2016, time.March, 1))
	c.Advance(time.Hour)
	if got := c.Now().Sub(Date(2016, time.March, 1)); got != time.Hour {
		t.Fatalf("advance = %v", got)
	}
	c.AdvanceTo(Date(2016, time.March, 2))
	if c.Now() != Date(2016, time.March, 2) {
		t.Fatal("AdvanceTo failed")
	}
}

func TestClockPanicsOnBackwards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative advance")
		}
	}()
	NewClock(0).Advance(-time.Second)
}

func TestClockPanicsOnAdvanceToPast(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on AdvanceTo into past")
		}
	}()
	c := NewClock(Date(2016, time.March, 2))
	c.AdvanceTo(Date(2016, time.March, 1))
}

func TestIntervalContains(t *testing.T) {
	iv := Interval{Start: Date(2016, time.March, 1), End: Date(2016, time.March, 2)}
	if !iv.Contains(iv.Start) {
		t.Error("interval should contain its start")
	}
	if iv.Contains(iv.End) {
		t.Error("interval is half-open; must not contain End")
	}
	if got := iv.Duration(); got != 24*time.Hour {
		t.Errorf("Duration = %v", got)
	}
}

func TestIntervalDegenerate(t *testing.T) {
	iv := Interval{Start: 100, End: 50}
	if iv.Duration() != 0 {
		t.Error("degenerate interval should have zero duration")
	}
	if iv.NumSteps(time.Minute) != 0 {
		t.Error("degenerate interval should have zero steps")
	}
}

func TestIntervalSteps(t *testing.T) {
	iv := Interval{Start: 0, End: Time(25 * time.Minute)}
	var seen []Time
	iv.Steps(10*time.Minute, func(tm Time) { seen = append(seen, tm) })
	if len(seen) != 3 {
		t.Fatalf("Steps visited %d boundaries, want 3", len(seen))
	}
	if got := iv.NumSteps(10 * time.Minute); got != 3 {
		t.Fatalf("NumSteps = %d, want 3", got)
	}
	for i, tm := range seen {
		if want := Time(i) * Time(10*time.Minute); tm != want {
			t.Errorf("step %d at %v, want %v", i, tm, want)
		}
	}
}

func TestIntervalStepBatches(t *testing.T) {
	iv := Interval{Start: 0, End: Time(100 * time.Minute)}
	step := 10 * time.Minute
	// Barriers at 0 (always), 30 and 60 minutes; max batch of 3 forces
	// an extra break inside the 60..100 run.
	barrier := map[Time]bool{Time(30 * time.Minute): true, Time(60 * time.Minute): true}
	var opened, flat []Time
	var firsts []int
	var sizes []int
	iv.StepBatches(step, 3,
		func(tm Time) { opened = append(opened, tm) },
		func(tm Time) bool { return !barrier[tm] },
		func(first int, batch []Time) {
			firsts = append(firsts, first)
			sizes = append(sizes, len(batch))
			flat = append(flat, batch...)
		})

	// Every boundary Steps would visit, once, in order.
	var want []Time
	iv.Steps(step, func(tm Time) { want = append(want, tm) })
	if len(flat) != len(want) {
		t.Fatalf("StepBatches visited %d boundaries, want %d", len(flat), len(want))
	}
	for i := range want {
		if flat[i] != want[i] {
			t.Fatalf("boundary %d = %v, want %v", i, flat[i], want[i])
		}
	}
	// Batches: [0,10,20] (max), [30,40,50] (barrier then max),
	// [60,70,80] (barrier then max), [90].
	wantSizes := []int{3, 3, 3, 1}
	if len(sizes) != len(wantSizes) {
		t.Fatalf("batch sizes %v, want %v", sizes, wantSizes)
	}
	for i := range wantSizes {
		if sizes[i] != wantSizes[i] {
			t.Fatalf("batch sizes %v, want %v", sizes, wantSizes)
		}
	}
	// open ran exactly once per batch, on the batch's first boundary,
	// and firstIdx matches the Steps numbering.
	if len(opened) != len(firsts) {
		t.Fatalf("open ran %d times for %d batches", len(opened), len(firsts))
	}
	idx := 0
	for i, sz := range sizes {
		if opened[i] != want[firsts[i]] || firsts[i] != idx {
			t.Fatalf("batch %d opened at %v firstIdx %d, want %v firstIdx %d",
				i, opened[i], firsts[i], want[idx], idx)
		}
		idx += sz
	}
}

func TestIntervalStepBatchesPerStep(t *testing.T) {
	// max=1 degenerates to Steps with open on every boundary.
	iv := Interval{Start: 0, End: Time(25 * time.Minute)}
	n := 0
	iv.StepBatches(10*time.Minute, 1, func(Time) { n++ }, nil,
		func(first int, batch []Time) {
			if len(batch) != 1 || first != n-1 {
				t.Fatalf("batch %v first %d with max=1", batch, first)
			}
		})
	if n != 3 {
		t.Fatalf("open ran %d times, want 3", n)
	}
}

func TestIntervalStepsPanicsOnBadStep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero step")
		}
	}()
	Interval{Start: 0, End: 10}.Steps(0, func(Time) {})
}
