// Package simclock provides the virtual time base used by the whole
// simulation. All simulated components measure time as a Time value —
// nanoseconds since the start of the measurement epoch — and never read
// the wall clock, which keeps full-year campaigns deterministic and fast.
//
// The epoch and campaign boundaries correspond to the paper's
// measurement period: latency probing ran from 2016-02-22 to 2017-03-27
// and loss-rate probing from 2016-07-19 to 2017-04-01.
package simclock

import (
	"fmt"
	"time"
)

// Time is a virtual timestamp: nanoseconds elapsed since Epoch.
// The zero Time is the start of the campaign.
type Time int64

// Duration is a span of virtual time in nanoseconds. It is
// interconvertible with time.Duration.
type Duration = time.Duration

// Epoch is the wall-clock instant corresponding to Time(0):
// 2016-02-22 00:00 UTC, the day latency measurements began.
var Epoch = time.Date(2016, time.February, 22, 0, 0, 0, 0, time.UTC)

// Campaign boundaries from the paper, expressed as offsets from Epoch.
var (
	// LatencyEnd is 2017-03-27, the last day of TSLP probing.
	LatencyEnd = At(time.Date(2017, time.March, 27, 0, 0, 0, 0, time.UTC))
	// LossStart is 2016-07-19, when 1 pps loss probing began.
	LossStart = At(time.Date(2016, time.July, 19, 0, 0, 0, 0, time.UTC))
	// LossEnd is 2017-04-01, the last day of loss probing.
	LossEnd = At(time.Date(2017, time.April, 1, 0, 0, 0, 0, time.UTC))
)

// At converts a wall-clock instant into virtual time.
func At(t time.Time) Time { return Time(t.Sub(Epoch)) }

// Date is shorthand for At(time.Date(...)) in UTC.
func Date(year int, month time.Month, day int) Time {
	return At(time.Date(year, month, day, 0, 0, 0, 0, time.UTC))
}

// Wall converts a virtual timestamp back to the wall-clock instant.
func (t Time) Wall() time.Time { return Epoch.Add(time.Duration(t)) }

// Add advances the timestamp by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Truncate rounds t down to a multiple of d since Epoch.
func (t Time) Truncate(d Duration) Time {
	if d <= 0 {
		return t
	}
	return t - t%Time(d)
}

// DayOfWeek returns the weekday of the virtual instant.
func (t Time) DayOfWeek() time.Weekday { return t.Wall().Weekday() }

// IsWeekend reports whether the instant falls on Saturday or Sunday.
func (t Time) IsWeekend() bool {
	wd := t.DayOfWeek()
	return wd == time.Saturday || wd == time.Sunday
}

// SecondOfDay returns the number of seconds elapsed since local (UTC)
// midnight of the instant's day.
func (t Time) SecondOfDay() int {
	w := t.Wall()
	return w.Hour()*3600 + w.Minute()*60 + w.Second()
}

// HourOfDay returns the fractional hour of day in [0, 24).
func (t Time) HourOfDay() float64 { return float64(t.SecondOfDay()) / 3600 }

// Day returns the number of whole days elapsed since Epoch.
func (t Time) Day() int { return int(time.Duration(t) / (24 * time.Hour)) }

// String formats the instant as a compact UTC timestamp.
func (t Time) String() string { return t.Wall().Format("2006-01-02 15:04:05") }

// Clock is a monotonically advancing virtual clock. It is not safe for
// concurrent use; the simulator single-threads time advancement.
type Clock struct {
	now Time
}

// NewClock returns a clock positioned at start.
func NewClock(start Time) *Clock { return &Clock{now: start} }

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d. It panics if d is negative,
// since virtual time never flows backwards.
func (c *Clock) Advance(d Duration) Time {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative advance %v", d))
	}
	c.now = c.now.Add(d)
	return c.now
}

// AdvanceTo moves the clock forward to t. It panics if t is in the past.
func (c *Clock) AdvanceTo(t Time) {
	if t < c.now {
		panic(fmt.Sprintf("simclock: AdvanceTo backwards from %v to %v", c.now, t))
	}
	c.now = t
}

// Interval is a half-open span [Start, End) of virtual time.
type Interval struct {
	Start Time
	End   Time
}

// Contains reports whether t falls inside the interval.
func (iv Interval) Contains(t Time) bool { return t >= iv.Start && t < iv.End }

// Duration returns the span length, or zero for degenerate intervals.
func (iv Interval) Duration() Duration {
	if iv.End <= iv.Start {
		return 0
	}
	return iv.End.Sub(iv.Start)
}

// Steps calls fn once per step boundary in [Start, End), in order.
// It is the canonical way campaigns iterate virtual time.
func (iv Interval) Steps(step Duration, fn func(Time)) {
	if step <= 0 {
		panic("simclock: non-positive step")
	}
	for t := iv.Start; t < iv.End; t = t.Add(step) {
		fn(t)
	}
}

// StepBatches visits exactly the boundaries Steps would, but groups
// them into runs the caller can process in one go. For each batch it
// first calls open with the batch's opening step — the caller performs
// whatever serialized barrier work that step needs, updating the state
// quiescent reads — then extends the batch with following boundaries
// while quiescent approves them (up to max steps), and finally hands
// the whole run to flush. firstIdx is the index Steps would have given
// the batch's first boundary. The batch slice is reused between
// flushes, so callers must not retain it.
//
// quiescent is consulted for a boundary only after every earlier
// boundary's open ran, which is what lets the campaign's batch planner
// ask "does this step need a barrier?" against up-to-date engine
// state. A nil quiescent batches unconditionally.
func (iv Interval) StepBatches(step Duration, max int, open func(Time), quiescent func(Time) bool, flush func(firstIdx int, batch []Time)) {
	if step <= 0 {
		panic("simclock: non-positive step")
	}
	if max < 1 {
		max = 1
	}
	if quiescent == nil {
		quiescent = func(Time) bool { return true }
	}
	buf := make([]Time, 0, max)
	idx := 0
	for t := iv.Start; t < iv.End; {
		open(t)
		buf = append(buf[:0], t)
		next := t.Add(step)
		for len(buf) < max && next < iv.End && quiescent(next) {
			buf = append(buf, next)
			next = next.Add(step)
		}
		flush(idx, buf)
		idx += len(buf)
		t = next
	}
}

// NumSteps returns the number of boundaries Steps would visit.
func (iv Interval) NumSteps(step Duration) int {
	if step <= 0 || iv.End <= iv.Start {
		return 0
	}
	return int((iv.Duration() + step - 1) / step)
}
