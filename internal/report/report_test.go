package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"afrixp/internal/timeseries"
)

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "Table 1", Header: []string{"VP", "5 ms", "10 ms"}}
	tb.AddRow("VP1", "4 (2)", "4 (2)")
	tb.AddRow("All VPs", "339 (6)")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "All VPs") {
		t.Fatalf("output:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Alignment: the second column starts at the same offset everywhere.
	hdrIdx := strings.Index(lines[1], "5 ms")
	rowIdx := strings.Index(lines[3], "4 (2)")
	if hdrIdx != rowIdx {
		t.Fatalf("misaligned: %d vs %d\n%s", hdrIdx, rowIdx, out)
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	a := timeseries.NewRegular(0, 5*time.Minute, 3)
	b := timeseries.NewRegular(0, 5*time.Minute, 3)
	a.Set(0, 1.5)
	a.Set(2, 3.25)
	b.Set(1, 2)
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, []string{"near", "far"}, a, b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "time,near,far" {
		t.Fatalf("header: %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("lines: %v", lines)
	}
	if !strings.HasSuffix(lines[1], ",1.500,") {
		t.Fatalf("row 1: %q", lines[1])
	}
	if !strings.HasSuffix(lines[2], ",,2.000") {
		t.Fatalf("row 2: %q", lines[2])
	}
}

func TestWriteSeriesCSVValidation(t *testing.T) {
	a := timeseries.NewRegular(0, time.Minute, 1)
	b := timeseries.NewRegular(0, 2*time.Minute, 1)
	if err := WriteSeriesCSV(&bytes.Buffer{}, []string{"x"}, a, b); err == nil {
		t.Fatal("name/series count mismatch must fail")
	}
	if err := WriteSeriesCSV(&bytes.Buffer{}, []string{"x", "y"}, a, b); err == nil {
		t.Fatal("grid mismatch must fail")
	}
	if err := WriteSeriesCSV(&bytes.Buffer{}, nil); err != nil {
		t.Fatal("empty call should be a no-op")
	}
}

func TestASCIIPlot(t *testing.T) {
	s := timeseries.NewRegular(0, time.Hour, 48)
	for i := 0; i < 48; i++ {
		v := 2.0
		if i%24 >= 9 && i%24 < 17 {
			v = 30
		}
		s.Set(i, v)
	}
	flat := timeseries.NewRegular(0, time.Hour, 48)
	for i := 0; i < 48; i++ {
		flat.Set(i, 1)
	}
	var buf bytes.Buffer
	err := ASCIIPlot(&buf, []string{"far", "near"}, []rune{'o', '.'}, 60, 10, s, flat)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "o") || !strings.Contains(out, ".") {
		t.Fatalf("markers missing:\n%s", out)
	}
	if !strings.Contains(out, "30.0") || !strings.Contains(out, "1.0") {
		t.Fatalf("scale labels missing:\n%s", out)
	}
	if !strings.Contains(out, "o = far") {
		t.Fatalf("legend missing:\n%s", out)
	}
}

func TestASCIIPlotValidation(t *testing.T) {
	s := timeseries.NewRegular(0, time.Hour, 4)
	if err := ASCIIPlot(&bytes.Buffer{}, []string{"x"}, []rune{'o'}, 5, 2, s); err == nil {
		t.Fatal("tiny geometry must fail")
	}
	if err := ASCIIPlot(&bytes.Buffer{}, []string{"x"}, []rune{'o'}, 40, 8, s); err == nil {
		t.Fatal("all-missing series must fail")
	}
	s.Set(0, 5)
	if err := ASCIIPlot(&bytes.Buffer{}, []string{"x"}, []rune{'o'}, 40, 8, s); err != nil {
		t.Fatalf("constant series should plot: %v", err)
	}
}

func TestRenderComparisons(t *testing.T) {
	var buf bytes.Buffer
	err := RenderComparisons(&buf, "Fig 1", []PaperComparison{
		{Experiment: "fig1", Metric: "A_w", Paper: "27.9 ms", Measured: "26.1 ms", ShapeHolds: true},
		{Experiment: "fig1", Metric: "weekend dip", Paper: "yes", Measured: "no", ShapeHolds: false, Note: "check"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "HOLDS") || !strings.Contains(out, "DIFFERS") {
		t.Fatalf("output:\n%s", out)
	}
}
