package report

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"
	"time"

	"afrixp/internal/timeseries"
)

func svgSample() (*timeseries.Series, *timeseries.Series) {
	far := timeseries.NewRegular(0, time.Hour, 96)
	near := timeseries.NewRegular(0, time.Hour, 96)
	for i := 0; i < 96; i++ {
		v := 2.0
		if i%24 >= 9 && i%24 < 17 {
			v = 28
		}
		far.Set(i, v)
		near.Set(i, 0.5)
	}
	// A gap in the far series (lost probes).
	far.Set(40, timeseries.Missing)
	far.Set(41, timeseries.Missing)
	return near, far
}

func TestWriteSVGWellFormed(t *testing.T) {
	near, far := svgSample()
	var buf bytes.Buffer
	err := WriteSVG(&buf, "RTTs GIXA–GHANATEL", "RTT (ms)", 640, 360,
		SVGSeries{Name: "far", Series: far},
		SVGSeries{Name: "near", Series: near, Color: "#555"},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Well-formed XML.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v\n%s", err, out)
		}
	}
	for _, want := range []string{"<svg", "polyline", "RTT (ms)", "far", "near", "#555"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in SVG", want)
		}
	}
	// The gap must split the far polyline into at least two segments.
	if strings.Count(out, "<polyline") < 3 {
		t.Fatalf("gap did not split the line: %d polylines", strings.Count(out, "<polyline"))
	}
}

func TestWriteSVGScatter(t *testing.T) {
	_, far := svgSample()
	var buf bytes.Buffer
	err := WriteSVG(&buf, "loss", "%", 640, 360,
		SVGSeries{Name: "loss", Series: far, Scatter: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "<circle") < 50 {
		t.Fatal("scatter mode should emit one circle per sample")
	}
}

func TestWriteSVGValidation(t *testing.T) {
	_, far := svgSample()
	if err := WriteSVG(&bytes.Buffer{}, "t", "y", 640, 360); err == nil {
		t.Fatal("no series must fail")
	}
	if err := WriteSVG(&bytes.Buffer{}, "t", "y", 50, 50,
		SVGSeries{Name: "x", Series: far}); err == nil {
		t.Fatal("tiny geometry must fail")
	}
	empty := timeseries.NewRegular(0, time.Hour, 5)
	if err := WriteSVG(&bytes.Buffer{}, "t", "y", 640, 360,
		SVGSeries{Name: "x", Series: empty}); err == nil {
		t.Fatal("all-missing series must fail")
	}
}

func TestWriteSVGEscapesMarkup(t *testing.T) {
	_, far := svgSample()
	var buf bytes.Buffer
	if err := WriteSVG(&buf, `<b>&"title"</b>`, "y", 640, 360,
		SVGSeries{Name: "a<b", Series: far}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<b>") {
		t.Fatal("title markup not escaped")
	}
}
