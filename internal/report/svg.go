package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"afrixp/internal/timeseries"
)

// SVGSeries is one plotted series.
type SVGSeries struct {
	Name   string
	Color  string // CSS color; defaults applied when empty
	Series *timeseries.Series
	// Scatter plots points instead of a connected line (loss batches).
	Scatter bool
}

var defaultColors = []string{"#c0392b", "#2471a3", "#1e8449", "#9a7d0a", "#6c3483"}

// WriteSVG renders series as a standalone SVG line/scatter chart with
// axes, ticks, and a legend — the publication-shaped counterpart of
// the terminal ASCII plots. Series must share a time grid origin but
// may differ in length.
func WriteSVG(w io.Writer, title, yLabel string, width, height int, series ...SVGSeries) error {
	if len(series) == 0 {
		return fmt.Errorf("report: no series")
	}
	if width < 200 || height < 120 {
		return fmt.Errorf("report: SVG geometry %dx%d too small", width, height)
	}
	const (
		marginL = 62
		marginR = 16
		marginT = 34
		marginB = 46
	)
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)

	// Global scale.
	lo, hi := math.Inf(1), math.Inf(-1)
	var tMin, tMax int64 = math.MaxInt64, math.MinInt64
	for _, s := range series {
		s.Series.Each(func(base int, vals []float64) {
			for i, v := range vals {
				if timeseries.IsMissing(v) {
					continue
				}
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
				at := int64(s.Series.TimeAt(base + i))
				if at < tMin {
					tMin = at
				}
				if at > tMax {
					tMax = at
				}
			}
		})
	}
	if math.IsInf(lo, 1) {
		return fmt.Errorf("report: nothing to plot")
	}
	if hi == lo {
		hi = lo + 1
	}
	if tMax == tMin {
		tMax = tMin + 1
	}
	// A little headroom on top.
	hi += (hi - lo) * 0.05

	x := func(at int64) float64 {
		return float64(marginL) + (float64(at-tMin)/float64(tMax-tMin))*plotW
	}
	y := func(v float64) float64 {
		return float64(marginT) + (1-(v-lo)/(hi-lo))*plotH
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="18" font-size="13" font-weight="bold">%s</text>`+"\n", marginL, xmlEscape(title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#444"/>`+"\n",
		marginL, marginT, marginL, height-marginB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#444"/>`+"\n",
		marginL, height-marginB, width-marginR, height-marginB)
	// Y ticks.
	for i := 0; i <= 4; i++ {
		v := lo + (hi-lo)*float64(i)/4
		yy := y(v)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#bbb" stroke-dasharray="3,3"/>`+"\n",
			marginL, yy, width-marginR, yy)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">%.1f</text>`+"\n", marginL-6, yy+4, v)
	}
	fmt.Fprintf(&b, `<text x="14" y="%d" transform="rotate(-90 14 %d)" text-anchor="middle">%s</text>`+"\n",
		marginT+int(plotH/2), marginT+int(plotH/2), xmlEscape(yLabel))
	// X ticks: start / middle / end timestamps.
	for i := 0; i <= 2; i++ {
		at := tMin + (tMax-tMin)*int64(i)/2
		xx := x(at)
		label := seriesTimeLabel(series[0].Series, at)
		anchor := "middle"
		if i == 0 {
			anchor = "start"
		} else if i == 2 {
			anchor = "end"
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="%s">%s</text>`+"\n",
			xx, height-marginB+16, anchor, label)
	}

	// Series.
	for si, s := range series {
		color := s.Color
		if color == "" {
			color = defaultColors[si%len(defaultColors)]
		}
		if s.Scatter {
			s.Series.Each(func(base int, vals []float64) {
				for i, v := range vals {
					if timeseries.IsMissing(v) {
						continue
					}
					fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="1.6" fill="%s"/>`+"\n",
						x(int64(s.Series.TimeAt(base+i))), y(v), color)
				}
			})
		} else {
			var pts []string
			flush := func() {
				if len(pts) > 1 {
					fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.1"/>`+"\n",
						strings.Join(pts, " "), color)
				} else if len(pts) == 1 {
					fmt.Fprintf(&b, `<circle cx="%s" r="1.2" fill="%s"/>`+"\n", strings.Replace(pts[0], ",", `" cy="`, 1), color)
				}
				pts = pts[:0]
			}
			s.Series.Each(func(base int, vals []float64) {
				for i, v := range vals {
					if timeseries.IsMissing(v) {
						flush() // gaps break the line, as they should
						continue
					}
					pts = append(pts, fmt.Sprintf("%.1f,%.1f", x(int64(s.Series.TimeAt(base+i))), y(v)))
				}
			})
			flush()
		}
		// Legend.
		lx := marginL + 10 + 130*si
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n", lx, marginT-12, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n", lx+14, marginT-3, xmlEscape(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func seriesTimeLabel(s *timeseries.Series, at int64) string {
	// Reconstruct a wall-clock label through the series' epoch base.
	idx := 0
	if s.Step > 0 {
		idx = int((at - int64(s.Start)) / int64(s.Step))
	}
	if idx < 0 {
		idx = 0
	}
	return s.TimeAt(idx).Wall().Format("2006-01-02")
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
