// Package report renders campaign results: aligned text tables
// (paper-vs-measured comparisons), CSV exports of time series (the
// figures' data), and quick ASCII time-series plots for terminal
// inspection of the RTT waveforms.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"afrixp/internal/timeseries"
)

// Table is a simple aligned text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row; cells beyond the header width are dropped,
// missing cells are blank.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteString("\n")
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteSeriesCSV exports one or more series sharing a grid: the first
// column is the sample timestamp, one column per series. Missing
// samples are empty cells. All series must share Start/Step; length
// may differ (short series pad with blanks).
func WriteSeriesCSV(w io.Writer, names []string, series ...*timeseries.Series) error {
	if len(names) != len(series) {
		return fmt.Errorf("report: %d names for %d series", len(names), len(series))
	}
	if len(series) == 0 {
		return nil
	}
	for _, s := range series[1:] {
		if s.Start != series[0].Start || s.Step != series[0].Step {
			return fmt.Errorf("report: series grids differ")
		}
	}
	if _, err := fmt.Fprintf(w, "time,%s\n", strings.Join(names, ",")); err != nil {
		return err
	}
	n := 0
	for _, s := range series {
		if s.Len() > n {
			n = s.Len()
		}
	}
	for i := 0; i < n; i++ {
		cells := make([]string, 0, len(series)+1)
		cells = append(cells, series[0].TimeAt(i).Wall().Format("2006-01-02T15:04:05"))
		for _, s := range series {
			if i < s.Len() && !timeseries.IsMissing(s.ValueAt(i)) {
				cells = append(cells, fmt.Sprintf("%.3f", s.ValueAt(i)))
			} else {
				cells = append(cells, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// ASCIIPlot renders series as a (height × width) character plot:
// time on X (series resampled into width buckets by maximum), value
// on Y. Each series gets the corresponding marker rune.
func ASCIIPlot(w io.Writer, names []string, markers []rune, width, height int, series ...*timeseries.Series) error {
	if len(series) == 0 || width < 10 || height < 3 {
		return fmt.Errorf("report: bad plot geometry")
	}
	if len(markers) < len(series) || len(names) < len(series) {
		return fmt.Errorf("report: need a name and marker per series")
	}
	// Global scale. Each streams chunk-backed series block by block
	// and visits flat ones in a single run.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		s.Each(func(_ int, vals []float64) {
			for _, v := range vals {
				if timeseries.IsMissing(v) {
					continue
				}
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
		})
	}
	if math.IsInf(lo, 1) {
		return fmt.Errorf("report: nothing to plot")
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for si := len(series) - 1; si >= 0; si-- {
		s := series[si]
		if s.Len() == 0 {
			continue
		}
		for col := 0; col < width; col++ {
			a := col * s.Len() / width
			b := (col + 1) * s.Len() / width
			if b <= a {
				b = a + 1
			}
			vmax := math.Inf(-1)
			for i := a; i < b && i < s.Len(); i++ {
				if v := s.ValueAt(i); !timeseries.IsMissing(v) && v > vmax {
					vmax = v
				}
			}
			if math.IsInf(vmax, -1) {
				continue
			}
			row := int((vmax - lo) / (hi - lo) * float64(height-1))
			if row < 0 {
				row = 0
			}
			if row > height-1 {
				row = height - 1
			}
			grid[height-1-row][col] = markers[si]
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%8.1f ┤%s\n", hi, string(grid[0]))
	for r := 1; r < height-1; r++ {
		fmt.Fprintf(&b, "%8s │%s\n", "", string(grid[r]))
	}
	fmt.Fprintf(&b, "%8.1f ┤%s\n", lo, string(grid[height-1]))
	fmt.Fprintf(&b, "%8s └%s\n", "", strings.Repeat("─", width))
	fmt.Fprintf(&b, "%9s %s  →  %s\n", "", series[0].TimeAt(0), series[0].TimeAt(series[0].Len()-1))
	for i := 0; i < len(series); i++ {
		fmt.Fprintf(&b, "%9s %c = %s\n", "", markers[i], names[i])
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// PaperComparison is one paper-vs-measured line in EXPERIMENTS.md
// style output.
type PaperComparison struct {
	Experiment string
	Metric     string
	Paper      string
	Measured   string
	ShapeHolds bool
	Note       string
}

// RenderComparisons prints comparison rows as a table.
func RenderComparisons(w io.Writer, title string, rows []PaperComparison) error {
	t := &Table{Title: title,
		Header: []string{"experiment", "metric", "paper", "measured", "shape", "note"}}
	for _, r := range rows {
		shape := "HOLDS"
		if !r.ShapeHolds {
			shape = "DIFFERS"
		}
		t.AddRow(r.Experiment, r.Metric, r.Paper, r.Measured, shape, r.Note)
	}
	return t.Render(w)
}
