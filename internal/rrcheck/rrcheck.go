// Package rrcheck analyzes Record-Route probe results for path
// symmetry. TSLP's congestion localization assumes the reverse path
// crosses the same interdomain link as the forward path; the paper
// uses "the Record-routes method to check path symmetry, thereby
// ensuring that an increase in RTTs from a near to a far router was
// solely due to traffic on that link" (§5.2).
//
// A record-route echo returns the forward routers' egress addresses,
// the destination's address, and the reverse routers' egress
// addresses, in stamping order. Forward and reverse hops use different
// interfaces of the same routers, so raw address equality is useless;
// the checker takes a SameRouter oracle (alias resolution, or ground
// truth in validation runs) and tests the mirror property.
package rrcheck

import (
	"afrixp/internal/netaddr"
)

// SameRouter reports whether two interface addresses belong to the
// same router. Implementations come from alias resolution (inference
// path) or netsim ground truth (validation path).
type SameRouter func(a, b netaddr.Addr) bool

// Verdict is the outcome of a symmetry check.
type Verdict struct {
	// Symmetric is true when the reverse hop sequence mirrors the
	// forward one router-for-router.
	Symmetric bool
	// FwdHops and RevHops are the router counts on each direction.
	FwdHops, RevHops int
	// Complete is false when the RR option filled up before the
	// response returned (9 slots limit paths to ~4 hops each way);
	// symmetry is then judged on the recorded prefix only.
	Complete bool
}

// Analyze splits a recorded address list around the destination
// address and tests the mirror property. recorded is the RR list from
// the response; dst is the probed address; full reports whether the
// option had filled (no free slots left).
func Analyze(recorded []netaddr.Addr, dst netaddr.Addr, full bool, same SameRouter) Verdict {
	v := Verdict{Complete: !full}
	// Locate the destination's stamp.
	split := -1
	for i, a := range recorded {
		if a == dst || same(a, dst) {
			split = i
			break
		}
	}
	if split < 0 {
		// Destination never stamped: either the path out exceeded the
		// slots (incomplete) or the responder did not support RR.
		v.FwdHops = len(recorded)
		v.Complete = false
		return v
	}
	fwd := recorded[:split]
	rev := recorded[split+1:]
	v.FwdHops, v.RevHops = len(fwd), len(rev)

	n := len(fwd)
	if len(rev) < n {
		n = len(rev)
	}
	// Mirror test over the hops we can see. rev[j] should be the same
	// router as fwd[len(fwd)-1-j].
	mirrored := true
	for j := 0; j < n; j++ {
		f := fwd[len(fwd)-1-j]
		r := rev[j]
		if f != r && !same(f, r) {
			mirrored = false
			break
		}
	}
	if v.Complete {
		v.Symmetric = mirrored && len(fwd) == len(rev)
	} else {
		v.Symmetric = mirrored
	}
	return v
}
