package rrcheck

import (
	"testing"

	"afrixp/internal/netaddr"
)

func ma(s string) netaddr.Addr { return netaddr.MustParseAddr(s) }

// routerOracle groups addresses by router for the tests.
func routerOracle(groups ...[]string) SameRouter {
	owner := make(map[netaddr.Addr]int)
	for id, g := range groups {
		for _, s := range g {
			owner[ma(s)] = id + 1
		}
	}
	return func(a, b netaddr.Addr) bool {
		oa, ob := owner[a], owner[b]
		return oa != 0 && oa == ob
	}
}

func TestSymmetricPath(t *testing.T) {
	// Router1 has .1 (fwd egress) and .9 (rev egress); Router2 the
	// destination. Recorded: fwd R1, dst, rev R1.
	same := routerOracle([]string{"10.0.0.1", "10.0.0.9"}, []string{"10.0.1.2"})
	rec := []netaddr.Addr{ma("10.0.0.1"), ma("10.0.1.2"), ma("10.0.0.9")}
	v := Analyze(rec, ma("10.0.1.2"), false, same)
	if !v.Symmetric {
		t.Fatalf("symmetric path rejected: %+v", v)
	}
	if v.FwdHops != 1 || v.RevHops != 1 || !v.Complete {
		t.Fatalf("verdict: %+v", v)
	}
}

func TestAsymmetricPath(t *testing.T) {
	// Reverse path goes through a different router (R3).
	same := routerOracle(
		[]string{"10.0.0.1", "10.0.0.9"},
		[]string{"10.0.1.2"},
		[]string{"10.0.3.1"})
	rec := []netaddr.Addr{ma("10.0.0.1"), ma("10.0.1.2"), ma("10.0.3.1")}
	v := Analyze(rec, ma("10.0.1.2"), false, same)
	if v.Symmetric {
		t.Fatalf("asymmetric path accepted: %+v", v)
	}
}

func TestMultiHopMirror(t *testing.T) {
	same := routerOracle(
		[]string{"1.1.1.1", "1.1.1.9"}, // R1
		[]string{"2.2.2.2", "2.2.2.9"}, // R2
		[]string{"9.9.9.9"})            // dst
	rec := []netaddr.Addr{
		ma("1.1.1.1"), ma("2.2.2.2"), // forward: R1, R2
		ma("9.9.9.9"),                // destination
		ma("2.2.2.9"), ma("1.1.1.9"), // reverse: R2, R1 — mirrored
	}
	v := Analyze(rec, ma("9.9.9.9"), false, same)
	if !v.Symmetric || v.FwdHops != 2 || v.RevHops != 2 {
		t.Fatalf("verdict: %+v", v)
	}

	// Swap the reverse order: no longer a mirror.
	rec[3], rec[4] = rec[4], rec[3]
	if v := Analyze(rec, ma("9.9.9.9"), false, same); v.Symmetric {
		t.Fatalf("non-mirrored order accepted: %+v", v)
	}
}

func TestHopCountMismatch(t *testing.T) {
	same := routerOracle(
		[]string{"1.1.1.1", "1.1.1.9"},
		[]string{"2.2.2.2"},
		[]string{"9.9.9.9"})
	// Forward 2 hops, reverse 1 hop (mirror holds on the shared
	// prefix but lengths differ → asymmetric when complete).
	rec := []netaddr.Addr{
		ma("1.1.1.1"), ma("2.2.2.2"),
		ma("9.9.9.9"),
		ma("2.2.2.2"),
	}
	v := Analyze(rec, ma("9.9.9.9"), false, same)
	if v.Symmetric {
		t.Fatalf("length mismatch accepted: %+v", v)
	}
}

func TestIncompleteRecordingJudgedOnPrefix(t *testing.T) {
	same := routerOracle(
		[]string{"1.1.1.1", "1.1.1.9"},
		[]string{"2.2.2.2", "2.2.2.9"},
		[]string{"9.9.9.9"})
	// Option filled before the reverse path finished: only R2's
	// reverse stamp fits. Mirror holds on what we can see.
	rec := []netaddr.Addr{
		ma("1.1.1.1"), ma("2.2.2.2"),
		ma("9.9.9.9"),
		ma("2.2.2.9"),
	}
	v := Analyze(rec, ma("9.9.9.9"), true, same)
	if v.Complete {
		t.Fatal("full option must mark incomplete")
	}
	if !v.Symmetric {
		t.Fatalf("prefix-mirrored incomplete path rejected: %+v", v)
	}
}

func TestDestinationNeverStamped(t *testing.T) {
	same := routerOracle([]string{"1.1.1.1"})
	rec := []netaddr.Addr{ma("1.1.1.1")}
	v := Analyze(rec, ma("9.9.9.9"), false, same)
	if v.Symmetric || v.Complete {
		t.Fatalf("unstamped destination should be inconclusive: %+v", v)
	}
	if v.FwdHops != 1 {
		t.Fatalf("fwd hops = %d", v.FwdHops)
	}
}

func TestEmptyRecording(t *testing.T) {
	v := Analyze(nil, ma("9.9.9.9"), false, func(a, b netaddr.Addr) bool { return false })
	if v.Symmetric {
		t.Fatal("empty recording cannot be symmetric")
	}
}

func TestZeroHopPath(t *testing.T) {
	// Directly connected destination: only the destination stamps.
	same := routerOracle([]string{"9.9.9.9"})
	v := Analyze([]netaddr.Addr{ma("9.9.9.9")}, ma("9.9.9.9"), false, same)
	if !v.Symmetric || v.FwdHops != 0 || v.RevHops != 0 {
		t.Fatalf("zero-hop verdict: %+v", v)
	}
}
