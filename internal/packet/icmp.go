package packet

import (
	"encoding/binary"
	"fmt"

	"afrixp/internal/netaddr"
)

// ICMP message types used by the prober (a scamper-equivalent needs
// exactly these four).
const (
	ICMPEchoReply        = 0
	ICMPDestUnreachable  = 3
	ICMPTimeExceeded     = 11
	ICMPEcho             = 8
	ICMPCodeTTLExceeded  = 0 // code for TimeExceeded: TTL exceeded in transit
	ICMPCodePortUnreach  = 3
	ICMPCodeHostUnreach  = 1
	icmpHeaderLen        = 8
	icmpErrorQuoteLimit  = 28 // orig IPv4 header (20) + 8 bytes, no options
	icmpErrorQuoteOptMax = 68 // with maximal options
)

// ICMP is a decoded ICMP message. Echo messages carry ID/Seq and an
// opaque payload (the prober stores its transmit timestamp there, as
// scamper does). Error messages (time exceeded, unreachable) quote the
// offending datagram in Quote.
type ICMP struct {
	Type, Code uint8
	ID, Seq    uint16 // echo/echo-reply only
	Payload    []byte // echo/echo-reply only
	Quote      []byte // error messages: quoted original datagram
}

// IsEcho reports whether the message is an echo request or reply.
func (m *ICMP) IsEcho() bool {
	return m.Type == ICMPEcho || m.Type == ICMPEchoReply
}

// IsError reports whether the message quotes an offending datagram.
func (m *ICMP) IsError() bool {
	return m.Type == ICMPTimeExceeded || m.Type == ICMPDestUnreachable
}

// SerializeTo appends the ICMP wire form to b, computing the checksum.
func (m *ICMP) SerializeTo(b []byte) []byte {
	start := len(b)
	b = append(b, m.Type, m.Code, 0, 0)
	if m.IsEcho() {
		b = binary.BigEndian.AppendUint16(b, m.ID)
		b = binary.BigEndian.AppendUint16(b, m.Seq)
		b = append(b, m.Payload...)
	} else {
		b = append(b, 0, 0, 0, 0) // unused field
		b = append(b, m.Quote...)
	}
	cs := Checksum(b[start:])
	binary.BigEndian.PutUint16(b[start+2:], cs)
	return b
}

// DecodeICMP parses an ICMP message, verifying its checksum.
func DecodeICMP(b []byte) (ICMP, error) {
	if len(b) < icmpHeaderLen {
		return ICMP{}, fmt.Errorf("%w: %d bytes for ICMP", ErrTruncated, len(b))
	}
	if Checksum(b) != 0 {
		return ICMP{}, fmt.Errorf("%w: ICMP", ErrBadChecksum)
	}
	m := ICMP{Type: b[0], Code: b[1]}
	switch {
	case m.IsEcho():
		m.ID = binary.BigEndian.Uint16(b[4:])
		m.Seq = binary.BigEndian.Uint16(b[6:])
		m.Payload = b[8:]
	case m.IsError():
		m.Quote = b[8:]
	default:
		return ICMP{}, fmt.Errorf("packet: unsupported ICMP type %d", m.Type)
	}
	return m, nil
}

// Scratch holds the intermediate ICMP buffer datagram builders need,
// so a long-lived owner (a prober, the packet walker) can assemble
// packets without per-packet allocation. Methods append the finished
// datagram to dst and return the extended slice; passing scratch[:0]
// of a retained buffer reuses its capacity. The zero Scratch is ready
// to use. Not safe for concurrent use.
type Scratch struct {
	icmp []byte
}

// Append serializes ip carrying m as its ICMP payload, appending the
// datagram to dst. The ICMP layer is staged through the scratch buffer
// first, so dst may overlap the buffers m's Payload or Quote alias.
func (s *Scratch) Append(dst []byte, ip IPv4, m ICMP) ([]byte, error) {
	ip.Protocol = ProtoICMP
	s.icmp = m.SerializeTo(s.icmp[:0])
	return ip.SerializeTo(dst, s.icmp)
}

// Echo assembles a complete IPv4+ICMP echo request datagram.
func (s *Scratch) Echo(dst []byte, ip IPv4, id, seq uint16, payload []byte) ([]byte, error) {
	return s.Append(dst, ip, ICMP{Type: ICMPEcho, ID: id, Seq: seq, Payload: payload})
}

// EchoReply assembles the reply a destination host generates for an
// echo request: source/destination swapped, ID/Seq/payload echoed.
// ipID is the responder's IP identification value (routers use a
// shared per-box counter, which alias resolution exploits).
func (s *Scratch) EchoReply(dst []byte, req IPv4, echo ICMP, ttl uint8, ipID uint16) ([]byte, error) {
	reply := IPv4{TTL: ttl, ID: ipID, Src: req.Dst, Dst: req.Src,
		RecordRoute: req.RecordRoute.clone()}
	// Per RFC 791 the RR option is copied into the reply and continues
	// recording on the return path.
	return s.Append(dst, reply, ICMP{Type: ICMPEchoReply, ID: echo.ID, Seq: echo.Seq, Payload: echo.Payload})
}

// TimeExceeded assembles the ICMP time-exceeded error a router
// generates when a packet's TTL expires: the quote carries the original
// IPv4 header plus the first 8 payload bytes (RFC 792).
func (s *Scratch) TimeExceeded(dst []byte, routerAddr IPv4, orig []byte) ([]byte, error) {
	quote := orig
	if len(quote) > icmpErrorQuoteOptMax {
		quote = quote[:icmpErrorQuoteOptMax]
	}
	return s.Append(dst, routerAddr, ICMP{Type: ICMPTimeExceeded, Code: ICMPCodeTTLExceeded, Quote: quote})
}

// BuildEcho assembles a complete IPv4+ICMP echo request datagram.
func BuildEcho(ip IPv4, id, seq uint16, payload []byte) ([]byte, error) {
	var s Scratch
	return s.Echo(nil, ip, id, seq, payload)
}

// BuildEchoReply is Scratch.EchoReply into a fresh buffer.
func BuildEchoReply(req IPv4, echo ICMP, ttl uint8, ipID uint16) ([]byte, error) {
	var s Scratch
	return s.EchoReply(nil, req, echo, ttl, ipID)
}

// BuildTimeExceeded is Scratch.TimeExceeded into a fresh buffer.
func BuildTimeExceeded(routerAddr IPv4, orig []byte) ([]byte, error) {
	var s Scratch
	return s.TimeExceeded(nil, routerAddr, orig)
}

// ParseQuote decodes the datagram quoted inside an ICMP error so the
// prober can match the error to the probe that triggered it. The quoted
// ICMP header's checksum is not reverified because errors may quote
// only the first 8 transport bytes.
func ParseQuote(quote []byte) (IPv4, ICMP, error) {
	if len(quote) < ipv4MinHeaderLen {
		return IPv4{}, ICMP{}, fmt.Errorf("%w: quote", ErrTruncated)
	}
	hl := int(quote[0]&0x0F) * 4
	if quote[0]>>4 != 4 || hl < ipv4MinHeaderLen || len(quote) < hl {
		return IPv4{}, ICMP{}, fmt.Errorf("%w: quote header", ErrTruncated)
	}
	h := IPv4{
		TOS:      quote[1],
		ID:       binary.BigEndian.Uint16(quote[4:]),
		TTL:      quote[8],
		Protocol: quote[9],
		Src:      netaddr.AddrFromBytes(quote[12:16]),
		Dst:      netaddr.AddrFromBytes(quote[16:20]),
	}
	rest := quote[hl:]
	if len(rest) < 8 {
		return h, ICMP{}, fmt.Errorf("%w: quoted transport", ErrTruncated)
	}
	m := ICMP{Type: rest[0], Code: rest[1]}
	if m.IsEcho() {
		m.ID = binary.BigEndian.Uint16(rest[4:])
		m.Seq = binary.BigEndian.Uint16(rest[6:])
	}
	return h, m, nil
}
