package packet

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"afrixp/internal/netaddr"
)

func ma(s string) netaddr.Addr { return netaddr.MustParseAddr(s) }

func TestIPv4RoundTrip(t *testing.T) {
	h := IPv4{TOS: 0xC0, ID: 0xBEEF, TTL: 12, Protocol: ProtoICMP,
		Src: ma("196.49.7.1"), Dst: ma("41.242.0.9")}
	payload := []byte("hello probes")
	wire, err := h.SerializeTo(nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	got, pl, err := DecodeIPv4(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.TOS != h.TOS || got.ID != h.ID || got.TTL != h.TTL ||
		got.Protocol != h.Protocol || got.Src != h.Src || got.Dst != h.Dst {
		t.Fatalf("header mismatch: %+v vs %+v", got, h)
	}
	if !bytes.Equal(pl, payload) {
		t.Fatalf("payload mismatch: %q", pl)
	}
	if int(got.TotalLength) != len(wire) {
		t.Fatalf("TotalLength = %d, wire = %d", got.TotalLength, len(wire))
	}
}

func TestIPv4ChecksumDetection(t *testing.T) {
	h := IPv4{TTL: 64, Protocol: ProtoICMP, Src: ma("10.0.0.1"), Dst: ma("10.0.0.2")}
	wire, _ := h.SerializeTo(nil, nil)
	wire[8] ^= 0xFF // corrupt TTL
	if _, _, err := DecodeIPv4(wire); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("corruption not caught: %v", err)
	}
}

func TestIPv4Truncation(t *testing.T) {
	h := IPv4{TTL: 64, Src: ma("10.0.0.1"), Dst: ma("10.0.0.2")}
	wire, _ := h.SerializeTo(nil, []byte{1, 2, 3})
	for cut := 0; cut < 20; cut++ {
		if _, _, err := DecodeIPv4(wire[:cut]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut=%d: want ErrTruncated, got %v", cut, err)
		}
	}
}

func TestIPv4VersionCheck(t *testing.T) {
	h := IPv4{TTL: 64, Src: ma("10.0.0.1"), Dst: ma("10.0.0.2")}
	wire, _ := h.SerializeTo(nil, nil)
	wire[0] = 0x65 // version 6
	if _, _, err := DecodeIPv4(wire); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("want ErrBadVersion, got %v", err)
	}
}

func TestRecordRouteRoundTrip(t *testing.T) {
	h := IPv4{TTL: 32, Protocol: ProtoICMP, Src: ma("10.0.0.1"), Dst: ma("10.9.9.9"),
		RecordRoute: &RecordRoute{Slots: 9,
			Recorded: []netaddr.Addr{ma("10.0.0.2"), ma("10.0.1.2")}}}
	wire, err := h.SerializeTo(nil, []byte{0xAA})
	if err != nil {
		t.Fatal(err)
	}
	got, pl, err := DecodeIPv4(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.RecordRoute == nil {
		t.Fatal("RR option lost")
	}
	if got.RecordRoute.Slots != 9 || len(got.RecordRoute.Recorded) != 2 {
		t.Fatalf("RR state: %+v", got.RecordRoute)
	}
	if got.RecordRoute.Recorded[1] != ma("10.0.1.2") {
		t.Fatal("recorded addr mismatch")
	}
	if !bytes.Equal(pl, []byte{0xAA}) {
		t.Fatal("payload after options mismatch")
	}
}

func TestRecordRouteStamping(t *testing.T) {
	rr := &RecordRoute{Slots: 2}
	rr.Stamp(ma("1.1.1.1"))
	rr.Stamp(ma("2.2.2.2"))
	if !rr.Full() {
		t.Fatal("should be full")
	}
	rr.Stamp(ma("3.3.3.3")) // ignored
	if len(rr.Recorded) != 2 {
		t.Fatal("stamp past capacity must be a no-op")
	}
}

func TestRecordRouteMaxSlots(t *testing.T) {
	rr := &RecordRoute{Slots: MaxRecordRouteSlots}
	for i := 0; i < MaxRecordRouteSlots; i++ {
		rr.Stamp(netaddr.AddrFrom4(10, 0, 0, byte(i)))
	}
	h := IPv4{TTL: 1, Src: ma("10.0.0.1"), Dst: ma("10.0.0.2"), RecordRoute: rr}
	wire, err := h.SerializeTo(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeIPv4(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.RecordRoute.Recorded) != MaxRecordRouteSlots {
		t.Fatalf("got %d recorded", len(got.RecordRoute.Recorded))
	}
}

func TestIPv4CloneIndependence(t *testing.T) {
	h := IPv4{RecordRoute: &RecordRoute{Slots: 9, Recorded: []netaddr.Addr{ma("1.1.1.1")}}}
	c := h.Clone()
	c.RecordRoute.Stamp(ma("2.2.2.2"))
	if len(h.RecordRoute.Recorded) != 1 {
		t.Fatal("clone aliases original RR state")
	}
}

func TestICMPEchoRoundTrip(t *testing.T) {
	m := ICMP{Type: ICMPEcho, ID: 0x1234, Seq: 77, Payload: []byte{9, 8, 7, 6, 5, 4, 3, 2}}
	wire := m.SerializeTo(nil)
	got, err := DecodeICMP(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != m.ID || got.Seq != m.Seq || !bytes.Equal(got.Payload, m.Payload) {
		t.Fatalf("echo mismatch: %+v", got)
	}
}

func TestICMPChecksumDetection(t *testing.T) {
	m := ICMP{Type: ICMPEcho, ID: 1, Seq: 2}
	wire := m.SerializeTo(nil)
	wire[6] ^= 0x01
	if _, err := DecodeICMP(wire); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("want ErrBadChecksum, got %v", err)
	}
}

func TestICMPUnsupportedType(t *testing.T) {
	m := ICMP{Type: ICMPEcho}
	wire := m.SerializeTo(nil)
	wire[0] = 13 // timestamp request: unsupported
	// repair checksum manually
	wire[2], wire[3] = 0, 0
	cs := Checksum(wire)
	wire[2], wire[3] = byte(cs>>8), byte(cs)
	if _, err := DecodeICMP(wire); err == nil {
		t.Fatal("unsupported type must fail")
	}
}

func TestBuildEchoAndParse(t *testing.T) {
	wire, err := BuildEcho(IPv4{TTL: 3, Src: ma("10.0.0.1"), Dst: ma("10.0.9.9"), ID: 42},
		0xABCD, 17, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	ip, pl, err := DecodeIPv4(wire)
	if err != nil {
		t.Fatal(err)
	}
	if ip.Protocol != ProtoICMP || ip.TTL != 3 {
		t.Fatalf("ip: %+v", ip)
	}
	m, err := DecodeICMP(pl)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != ICMPEcho || m.ID != 0xABCD || m.Seq != 17 {
		t.Fatalf("icmp: %+v", m)
	}
}

func TestEchoReplySwapsAddresses(t *testing.T) {
	req := IPv4{TTL: 9, Src: ma("10.0.0.1"), Dst: ma("10.0.9.9")}
	wire, err := BuildEchoReply(req, ICMP{Type: ICMPEcho, ID: 5, Seq: 6}, 64, 777)
	if err != nil {
		t.Fatal(err)
	}
	ip, pl, err := DecodeIPv4(wire)
	if err != nil {
		t.Fatal(err)
	}
	if ip.Src != req.Dst || ip.Dst != req.Src {
		t.Fatal("reply must swap src/dst")
	}
	if ip.ID != 777 {
		t.Fatal("reply must carry the responder IP-ID")
	}
	m, err := DecodeICMP(pl)
	if err != nil || m.Type != ICMPEchoReply || m.ID != 5 || m.Seq != 6 {
		t.Fatalf("reply: %+v err %v", m, err)
	}
}

func TestTimeExceededQuote(t *testing.T) {
	orig, err := BuildEcho(IPv4{TTL: 1, Src: ma("10.0.0.1"), Dst: ma("10.0.9.9")},
		0x5151, 300, make([]byte, 56))
	if err != nil {
		t.Fatal(err)
	}
	te, err := BuildTimeExceeded(IPv4{TTL: 255, Src: ma("10.0.5.1"), Dst: ma("10.0.0.1")}, orig)
	if err != nil {
		t.Fatal(err)
	}
	ip, pl, err := DecodeIPv4(te)
	if err != nil {
		t.Fatal(err)
	}
	if ip.Src != ma("10.0.5.1") {
		t.Fatal("error source must be the router")
	}
	m, err := DecodeICMP(pl)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != ICMPTimeExceeded || m.Code != ICMPCodeTTLExceeded {
		t.Fatalf("icmp: %+v", m)
	}
	qip, qicmp, err := ParseQuote(m.Quote)
	if err != nil {
		t.Fatal(err)
	}
	if qip.Src != ma("10.0.0.1") || qip.Dst != ma("10.0.9.9") {
		t.Fatalf("quoted header: %+v", qip)
	}
	if qicmp.ID != 0x5151 || qicmp.Seq != 300 {
		t.Fatalf("quoted probe ids: %+v", qicmp)
	}
}

func TestParseQuoteTruncated(t *testing.T) {
	if _, _, err := ParseQuote(make([]byte, 10)); !errors.Is(err, ErrTruncated) {
		t.Fatal("short quote must fail")
	}
	// Valid IPv4 header but fewer than 8 transport bytes.
	h := IPv4{TTL: 1, Src: ma("10.0.0.1"), Dst: ma("10.0.0.2")}
	wire, _ := h.SerializeTo(nil, []byte{1, 2, 3})
	if _, _, err := ParseQuote(wire); !errors.Is(err, ErrTruncated) {
		t.Fatal("short transport quote must fail")
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example data.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != ^uint16(0xddf2) {
		t.Fatalf("Checksum = %#04x", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd-length buffers are padded with a zero byte.
	if Checksum([]byte{0xAB}) != ^uint16(0xAB00) {
		t.Fatal("odd-length checksum wrong")
	}
}

// Property: any serialized packet decodes back to itself.
func TestSerializeDecodeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(tos uint8, id uint16, ttl uint8, src, dst uint32, plen uint8) bool {
		h := IPv4{TOS: tos, ID: id, TTL: ttl, Protocol: ProtoICMP,
			Src: netaddr.Addr(src), Dst: netaddr.Addr(dst)}
		if rng.Intn(2) == 0 {
			n := 1 + rng.Intn(MaxRecordRouteSlots)
			rr := &RecordRoute{Slots: n}
			for i := 0; i < rng.Intn(n+1); i++ {
				rr.Stamp(netaddr.Addr(rng.Uint32()))
			}
			h.RecordRoute = rr
		}
		payload := make([]byte, plen)
		rng.Read(payload)
		wire, err := h.SerializeTo(nil, payload)
		if err != nil {
			return false
		}
		got, pl, err := DecodeIPv4(wire)
		if err != nil || !bytes.Equal(pl, payload) {
			return false
		}
		if got.Src != h.Src || got.Dst != h.Dst || got.TTL != h.TTL || got.ID != h.ID {
			return false
		}
		if (got.RecordRoute == nil) != (h.RecordRoute == nil) {
			return false
		}
		if h.RecordRoute != nil {
			if got.RecordRoute.Slots != h.RecordRoute.Slots ||
				len(got.RecordRoute.Recorded) != len(h.RecordRoute.Recorded) {
				return false
			}
			for i := range h.RecordRoute.Recorded {
				if got.RecordRoute.Recorded[i] != h.RecordRoute.Recorded[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoder never panics on arbitrary bytes.
func TestDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		b := make([]byte, rng.Intn(120))
		rng.Read(b)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("decode panicked on %x: %v", b, r)
				}
			}()
			if ip, pl, err := DecodeIPv4(b); err == nil {
				_, _ = DecodeICMP(pl)
				_ = ip
			}
			_, _ = DecodeICMP(b)
			_, _, _ = ParseQuote(b)
		}()
	}
}

func BenchmarkEchoRoundTrip(b *testing.B) {
	h := IPv4{TTL: 64, Src: ma("10.0.0.1"), Dst: ma("10.0.9.9")}
	var buf []byte
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		icmp := ICMP{Type: ICMPEcho, ID: 1, Seq: uint16(i)}
		wire, _ := h.SerializeTo(buf, icmp.SerializeTo(nil))
		if _, _, err := DecodeIPv4(wire); err != nil {
			b.Fatal(err)
		}
	}
}
