// Package packet implements wire-format encoding and decoding of the
// IPv4 and ICMP layers the measurement plane uses: TTL-limited echo
// probes, echo replies, time-exceeded errors, and the IPv4 Record Route
// option used for the paper's path-symmetry checks (§5.2).
//
// The design follows the gopacket layer model: each layer has a typed
// struct, a SerializeTo that appends its wire form, and a DecodeX that
// validates strictly (lengths, checksums, version) and returns typed
// errors. Packets inside the simulator are real byte slices, so the
// measurement code exercises exactly the parsing paths a raw-socket
// scamper deployment would.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"afrixp/internal/netaddr"
)

// Errors returned by the decoders. Callers match with errors.Is.
var (
	ErrTruncated   = errors.New("packet: truncated")
	ErrBadVersion  = errors.New("packet: not IPv4")
	ErrBadChecksum = errors.New("packet: bad checksum")
	ErrBadOption   = errors.New("packet: malformed IPv4 option")
)

// Protocol numbers carried in the IPv4 header.
const (
	ProtoICMP = 1
)

const (
	ipv4MinHeaderLen = 20
	ipv4MaxHeaderLen = 60
	optEOL           = 0 // end of option list
	optNOP           = 1 // no-operation padding
	optRR            = 7 // record route
)

// MaxRecordRouteSlots is the number of address slots that fit in the
// 40-byte IPv4 options area alongside the RR option header.
const MaxRecordRouteSlots = 9

// IPv4 is a decoded IPv4 header. Only the fields the measurement plane
// needs are modeled; the rest serialize as zeros.
type IPv4 struct {
	TOS      uint8
	ID       uint16
	TTL      uint8
	Protocol uint8
	Src, Dst netaddr.Addr

	// RecordRoute, when non-nil, carries the RR option state: Recorded
	// holds the stamped addresses and Slots the total capacity. A
	// router forwarding the packet stamps its outgoing address while
	// len(Recorded) < Slots.
	RecordRoute *RecordRoute

	// TotalLength is populated on decode with the length from the wire.
	TotalLength uint16
}

// RecordRoute models IPv4 option 7.
type RecordRoute struct {
	Slots    int
	Recorded []netaddr.Addr
}

// Full reports whether every slot has been stamped.
func (rr *RecordRoute) Full() bool { return len(rr.Recorded) >= rr.Slots }

// Stamp records addr in the next free slot; it is a no-op when full.
func (rr *RecordRoute) Stamp(addr netaddr.Addr) {
	if !rr.Full() {
		rr.Recorded = append(rr.Recorded, addr)
	}
}

// clone deep-copies the option so forwarded packets do not alias.
func (rr *RecordRoute) clone() *RecordRoute {
	if rr == nil {
		return nil
	}
	c := &RecordRoute{Slots: rr.Slots}
	c.Recorded = append(c.Recorded, rr.Recorded...)
	return c
}

// Clone returns a deep copy of the header (including options), used by
// routers when generating ICMP errors that quote the offending packet.
func (h *IPv4) Clone() IPv4 {
	c := *h
	c.RecordRoute = h.RecordRoute.clone()
	return c
}

// headerLen returns the header length in bytes including options.
func (h *IPv4) headerLen() int {
	n := ipv4MinHeaderLen
	if h.RecordRoute != nil {
		optLen := 3 + 4*h.RecordRoute.Slots
		// Options area is padded to a 4-byte boundary.
		n += (optLen + 3) &^ 3
	}
	return n
}

// zeroHeader is the zero-fill source SerializeTo extends buffers from.
var zeroHeader [ipv4MaxHeaderLen]byte

// SerializeTo appends the header followed by payload to b and returns
// the extended slice. The checksum and length fields are computed.
// Passing a buffer with spare capacity (b[:0] of a scratch slice) makes
// serialization allocation-free; see Scratch for the packet builders'
// reusable form.
func (h *IPv4) SerializeTo(b []byte, payload []byte) ([]byte, error) {
	hl := h.headerLen()
	if hl > ipv4MaxHeaderLen {
		return nil, fmt.Errorf("%w: options exceed 40 bytes", ErrBadOption)
	}
	total := hl + len(payload)
	if total > 0xFFFF {
		return nil, fmt.Errorf("packet: total length %d overflows", total)
	}
	start := len(b)
	// Extend from a static zero block: append(b, make(...)...) with a
	// variable length heap-allocates the temporary on every packet.
	b = append(b, zeroHeader[:hl]...)
	hdr := b[start : start+hl]

	hdr[0] = 0x40 | uint8(hl/4) // version 4, IHL
	hdr[1] = h.TOS
	binary.BigEndian.PutUint16(hdr[2:], uint16(total))
	binary.BigEndian.PutUint16(hdr[4:], h.ID)
	// flags+fragment offset zero (we never fragment probe packets)
	hdr[8] = h.TTL
	hdr[9] = h.Protocol
	// checksum at hdr[10:12] filled below
	h.Src.Put4(hdr[12:16])
	h.Dst.Put4(hdr[16:20])

	if rr := h.RecordRoute; rr != nil {
		opt := hdr[20:]
		opt[0] = optRR
		optLen := 3 + 4*rr.Slots
		opt[1] = uint8(optLen)
		opt[2] = uint8(4 + 4*len(rr.Recorded)) // pointer: 1-based offset of next slot
		for i, a := range rr.Recorded {
			a.Put4(opt[3+4*i:])
		}
		for i := optLen; i < len(opt); i++ {
			opt[i] = optEOL
		}
	}

	binary.BigEndian.PutUint16(hdr[10:], Checksum(hdr))
	return append(b, payload...), nil
}

// DecodeIPv4 parses an IPv4 header from b, returning the header and the
// payload bytes (aliasing b). The header checksum is verified.
func DecodeIPv4(b []byte) (IPv4, []byte, error) {
	if len(b) < ipv4MinHeaderLen {
		return IPv4{}, nil, fmt.Errorf("%w: %d bytes for IPv4 header", ErrTruncated, len(b))
	}
	if b[0]>>4 != 4 {
		return IPv4{}, nil, fmt.Errorf("%w: version %d", ErrBadVersion, b[0]>>4)
	}
	hl := int(b[0]&0x0F) * 4
	if hl < ipv4MinHeaderLen || hl > ipv4MaxHeaderLen || len(b) < hl {
		return IPv4{}, nil, fmt.Errorf("%w: IHL %d with %d bytes", ErrTruncated, hl, len(b))
	}
	if Checksum(b[:hl]) != 0 {
		return IPv4{}, nil, fmt.Errorf("%w: IPv4 header", ErrBadChecksum)
	}
	total := binary.BigEndian.Uint16(b[2:])
	if int(total) < hl || int(total) > len(b) {
		return IPv4{}, nil, fmt.Errorf("%w: total length %d of %d bytes", ErrTruncated, total, len(b))
	}
	h := IPv4{
		TOS:         b[1],
		ID:          binary.BigEndian.Uint16(b[4:]),
		TTL:         b[8],
		Protocol:    b[9],
		Src:         netaddr.AddrFromBytes(b[12:16]),
		Dst:         netaddr.AddrFromBytes(b[16:20]),
		TotalLength: total,
	}
	if hl > ipv4MinHeaderLen {
		rr, err := decodeOptions(b[ipv4MinHeaderLen:hl])
		if err != nil {
			return IPv4{}, nil, err
		}
		h.RecordRoute = rr
	}
	return h, b[hl:total], nil
}

func decodeOptions(opts []byte) (*RecordRoute, error) {
	var rr *RecordRoute
	for i := 0; i < len(opts); {
		switch opts[i] {
		case optEOL:
			return rr, nil
		case optNOP:
			i++
		case optRR:
			if i+3 > len(opts) {
				return nil, fmt.Errorf("%w: RR header truncated", ErrBadOption)
			}
			optLen := int(opts[i+1])
			if optLen < 3 || i+optLen > len(opts) || (optLen-3)%4 != 0 {
				return nil, fmt.Errorf("%w: RR length %d", ErrBadOption, optLen)
			}
			ptr := int(opts[i+2])
			if ptr < 4 || (ptr-4)%4 != 0 || ptr > optLen+1 {
				return nil, fmt.Errorf("%w: RR pointer %d", ErrBadOption, ptr)
			}
			slots := (optLen - 3) / 4
			used := (ptr - 4) / 4
			got := &RecordRoute{Slots: slots}
			for j := 0; j < used; j++ {
				got.Recorded = append(got.Recorded, netaddr.AddrFromBytes(opts[i+3+4*j:]))
			}
			rr = got
			i += optLen
		default:
			if i+1 >= len(opts) {
				return nil, fmt.Errorf("%w: option %d truncated", ErrBadOption, opts[i])
			}
			l := int(opts[i+1])
			if l < 2 || i+l > len(opts) {
				return nil, fmt.Errorf("%w: option %d length %d", ErrBadOption, opts[i], l)
			}
			i += l
		}
	}
	return rr, nil
}

// Checksum computes the RFC 1071 Internet checksum of b. Verifying a
// buffer that embeds a correct checksum yields zero.
func Checksum(b []byte) uint16 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xFFFF) + sum>>16
	}
	return ^uint16(sum)
}
