package alias

import (
	"testing"

	"afrixp/internal/asrel"
	"afrixp/internal/bgpsim"
	"afrixp/internal/netaddr"
	"afrixp/internal/netsim"
	"afrixp/internal/prober"
)

func ma(s string) netaddr.Addr   { return netaddr.MustParseAddr(s) }
func mp(s string) netaddr.Prefix { return netaddr.MustParsePrefix(s) }

// build creates: VP — R1(AS10) with three more interfaces on links to
// R2(AS20) and R3(AS20). R2 has two interfaces (aliases), R3 one.
func build(t testing.TB) (*netsim.Network, *netsim.Node) {
	g := asrel.NewGraph()
	g.SetPeer(10, 20)
	bgp := bgpsim.New(g)
	bgp.Announce(10, mp("10.10.0.0/16"))
	bgp.Announce(20, mp("10.20.0.0/16"))
	nw := netsim.New(bgp, 5)
	vp := nw.AddNode("vp", 10)
	r1 := nw.AddNode("r1", 10)
	r2 := nw.AddNode("r2", 20)
	r3 := nw.AddNode("r3", 20)
	nw.ConnectLink(vp, r1, netsim.LinkSpec{Subnet: mp("10.10.0.0/30")})
	nw.SetGateway(vp, nw.Iface(vp.Ifaces[0]))
	// Two parallel links r1–r2: r2 gets two interface addresses.
	nw.ConnectLink(r1, r2, netsim.LinkSpec{Subnet: mp("10.20.0.0/30")})
	nw.ConnectLink(r1, r2, netsim.LinkSpec{Subnet: mp("10.20.0.4/30")})
	nw.ConnectLink(r1, r3, netsim.LinkSpec{Subnet: mp("10.20.0.8/30")})
	// r2–r3 internal link so both are reachable.
	nw.ConnectLink(r2, r3, netsim.LinkSpec{Subnet: mp("10.20.1.0/30")})
	return nw, vp
}

func TestAllyDetectsAliases(t *testing.T) {
	nw, vp := build(t)
	r := NewResolver(prober.New(nw, vp, prober.Config{}), Config{})
	// 10.20.0.2 and 10.20.0.6 are both r2.
	same, err := r.Ally(ma("10.20.0.2"), ma("10.20.0.6"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Fatal("aliases of r2 not detected")
	}
}

func TestAllyRejectsDistinctRouters(t *testing.T) {
	nw, vp := build(t)
	r := NewResolver(prober.New(nw, vp, prober.Config{}), Config{})
	// 10.20.0.2 is r2; 10.20.0.10 is r3.
	same, err := r.Ally(ma("10.20.0.2"), ma("10.20.0.10"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if same {
		t.Fatal("distinct routers claimed as aliases")
	}
}

func TestAllyUnresponsiveTarget(t *testing.T) {
	nw, vp := build(t)
	r := NewResolver(prober.New(nw, vp, prober.Config{}), Config{})
	if _, err := r.Ally(ma("10.20.0.2"), ma("99.9.9.9"), 0); err == nil {
		t.Fatal("unresponsive target must error")
	}
}

func TestResolveGroups(t *testing.T) {
	nw, vp := build(t)
	r := NewResolver(prober.New(nw, vp, prober.Config{}), Config{})
	addrs := []netaddr.Addr{
		ma("10.20.0.2"), ma("10.20.0.6"), // r2 aliases
		ma("10.20.0.10"), // r3
		ma("10.10.0.2"),  // r1
	}
	groups, err := r.Resolve(addrs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("groups = %v", groups)
	}
	oracle := GroupOracle(groups)
	if !oracle(ma("10.20.0.2"), ma("10.20.0.6")) {
		t.Fatal("oracle must group r2 aliases")
	}
	if oracle(ma("10.20.0.2"), ma("10.20.0.10")) {
		t.Fatal("oracle must separate r2 and r3")
	}
	if oracle(ma("1.1.1.1"), ma("1.1.1.1")) {
		t.Fatal("unknown addresses must not match")
	}
}

func TestMonotonic(t *testing.T) {
	if !monotonic([]uint16{10, 11, 13, 20}, 100) {
		t.Fatal("increasing sequence rejected")
	}
	if monotonic([]uint16{10, 10}, 100) {
		t.Fatal("repeated ID accepted")
	}
	if monotonic([]uint16{10, 5000}, 100) {
		t.Fatal("huge gap accepted")
	}
	// Wraparound: 65535 → 3 is a small positive advance mod 2^16.
	if !monotonic([]uint16{65535, 3}, 100) {
		t.Fatal("wraparound rejected")
	}
	if !monotonic(nil, 100) || !monotonic([]uint16{7}, 100) {
		t.Fatal("degenerate sequences are trivially monotonic")
	}
}
