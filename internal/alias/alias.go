// Package alias implements IP alias resolution — deciding which
// interface addresses belong to the same physical router — using the
// Ally technique: routers draw the IP identification field of the
// responses they originate from one shared counter, so interleaved
// probes to two aliases of one router return a single monotonically
// increasing (mod 2^16) ID sequence, while two distinct routers return
// interleaved values from unrelated counters.
//
// bdrmap "applies alias resolution techniques to infer routers and
// point-to-point links used for interdomain interconnection" (§4);
// this package supplies that step.
package alias

import (
	"fmt"
	"time"

	"afrixp/internal/netaddr"
	"afrixp/internal/prober"
	"afrixp/internal/simclock"
)

// Config tunes the resolver.
type Config struct {
	// Probes per address in one Ally test (interleaved). Default 4.
	Probes int
	// MaxGap is the largest believable counter advance between two
	// consecutive responses of one router. Default 1000 (generous:
	// busy routers answer other traffic between our probes).
	MaxGap uint16
	// Spacing between consecutive probes. Default 20 ms.
	Spacing simclock.Duration
}

func (c Config) withDefaults() Config {
	if c.Probes <= 0 {
		c.Probes = 4
	}
	if c.MaxGap == 0 {
		c.MaxGap = 1000
	}
	if c.Spacing <= 0 {
		c.Spacing = 20 * time.Millisecond
	}
	return c
}

// Resolver runs alias tests through a prober.
type Resolver struct {
	p   *prober.Prober
	cfg Config
}

// NewResolver binds a resolver to a prober.
func NewResolver(p *prober.Prober, cfg Config) *Resolver {
	return &Resolver{p: p, cfg: cfg.withDefaults()}
}

// Ally tests whether addresses a and b alias to the same router by
// interleaving echo probes and checking that the combined IP-ID
// sequence is a single bounded-gap monotonic counter.
func (r *Resolver) Ally(a, b netaddr.Addr, t simclock.Time) (bool, error) {
	ids := make([]uint16, 0, 2*r.cfg.Probes)
	at := t
	for i := 0; i < r.cfg.Probes; i++ {
		for _, dst := range []netaddr.Addr{a, b} {
			res, err := r.p.Ping(dst, 64, at)
			if err != nil {
				return false, fmt.Errorf("alias: probing %v: %w", dst, err)
			}
			at = res.SentAt.Add(r.cfg.Spacing)
			if res.Lost {
				// One retry per slot; persistent loss aborts the test.
				res, err = r.p.Ping(dst, 64, at)
				if err != nil || res.Lost {
					return false, fmt.Errorf("alias: %v unresponsive", dst)
				}
				at = res.SentAt.Add(r.cfg.Spacing)
			}
			ids = append(ids, res.RespIPID)
		}
	}
	return monotonic(ids, r.cfg.MaxGap), nil
}

// monotonic reports whether ids advance by (0, maxGap] at every step,
// modulo 2^16.
func monotonic(ids []uint16, maxGap uint16) bool {
	for i := 1; i < len(ids); i++ {
		delta := ids[i] - ids[i-1] // wraps naturally
		if delta == 0 || delta > maxGap {
			return false
		}
	}
	return true
}

// Resolve groups addresses into routers using pairwise Ally tests and
// union-find. Unresponsive addresses end up in singleton groups.
// Cost is O(n²) probes; bdrmap applies it to the small per-neighbor
// candidate sets, not the whole address space.
func (r *Resolver) Resolve(addrs []netaddr.Addr, t simclock.Time) ([][]netaddr.Addr, error) {
	parent := make([]int, len(addrs))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	at := t
	for i := 0; i < len(addrs); i++ {
		for j := i + 1; j < len(addrs); j++ {
			if find(i) == find(j) {
				continue // already grouped transitively
			}
			same, err := r.Ally(addrs[i], addrs[j], at)
			at = at.Add(time.Duration(2*r.cfg.Probes) * r.cfg.Spacing)
			if err != nil {
				continue // unresponsive pair stays separate
			}
			if same {
				parent[find(j)] = find(i)
			}
		}
	}
	groups := make(map[int][]netaddr.Addr)
	for i, a := range addrs {
		root := find(i)
		groups[root] = append(groups[root], a)
	}
	out := make([][]netaddr.Addr, 0, len(groups))
	for i := range addrs {
		if find(i) == i {
			out = append(out, groups[i])
		}
	}
	return out, nil
}

// GroupOracle converts resolved groups into a SameRouter-style oracle
// (used by the record-route symmetry checker).
func GroupOracle(groups [][]netaddr.Addr) func(a, b netaddr.Addr) bool {
	id := make(map[netaddr.Addr]int)
	for g, addrs := range groups {
		for _, a := range addrs {
			id[a] = g + 1
		}
	}
	return func(a, b netaddr.Addr) bool {
		ga, gb := id[a], id[b]
		return ga != 0 && ga == gb
	}
}
