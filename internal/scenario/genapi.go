package scenario

import (
	"afrixp/internal/asrel"
	"afrixp/internal/netaddr"
	"afrixp/internal/netsim"
	"afrixp/internal/queue"
	"afrixp/internal/simclock"
	"afrixp/internal/trafficmodel"
)

// BuilderConfig parameterizes a world builder for programmatic
// construction (internal/worldgen). The zero value reproduces the
// paper builder's pools: /16 per AS out of 40.0.0.0/6 (1024 ASes),
// /24 per IXP LAN out of 196.60.0.0/14 (1024 LANs), member ASNs from
// 328000. Continent-scale worlds widen ASPool so tens of thousands of
// ASes fit without colliding with the IXP-LAN space.
type BuilderConfig struct {
	// Seed drives every deterministic noise process of the world.
	Seed uint64
	// ASPool is carved into one /ASBits block per AS.
	ASPool netaddr.Prefix
	// IXPPool is carved into /24 peering (and management) LANs.
	IXPPool netaddr.Prefix
	// ASBits is the prefix length allocated per AS (default 16).
	ASBits int
	// FirstASN seeds the synthetic-ASN allocator (default 328000).
	FirstASN asrel.ASN
}

// Builder is the exported world-construction surface: the same
// primitives Paper is written in — AS creation, IXP fabrics, bilateral
// peering meshes, transit wiring, vantage points, churn events — with
// configurable address pools so generated worlds can hold 10^3–10^4
// ASes. Not safe for concurrent use; build single-threaded, then hand
// the World to the campaign engine.
type Builder struct {
	b *builder
}

// AS is an opaque handle to one built autonomous system.
type AS struct {
	info *asInfo
}

// ASN returns the AS number.
func (a *AS) ASN() asrel.ASN { return a.info.ASN }

// Name returns the AS name.
func (a *AS) Name() string { return a.info.Name }

// ServiceAddr returns the in-network service loopback (x.x.0.1) that
// traceroute campaigns aim at.
func (a *AS) ServiceAddr() netaddr.Addr { return a.info.Service }

// Prefix returns the AS's announced block.
func (a *AS) Prefix() netaddr.Prefix { return a.info.Prefix }

// Border returns the AS's border router — congestion authoring hangs
// slow-ICMP profiles off it.
func (a *AS) Border() *netsim.Node { return a.info.Border }

// NewBuilder starts an empty world with the given pools.
func NewBuilder(cfg BuilderConfig) *Builder {
	b := newBuilder(cfg.Seed)
	if cfg.ASPool.Bits > 0 {
		b.asPool = netaddr.NewAllocator(cfg.ASPool)
	}
	if cfg.IXPPool.Bits > 0 {
		b.ixpPool = netaddr.NewAllocator(cfg.IXPPool)
	}
	if cfg.ASBits > 0 {
		b.asBits = cfg.ASBits
	}
	if cfg.FirstASN > 0 {
		b.nextASN = cfg.FirstASN
	}
	return &Builder{b: b}
}

// World returns the world under construction. Call
// World().Net.InvalidateRoutes() once authoring is done.
func (g *Builder) World() *World { return g.b.w }

// AllocASN hands out the next synthetic ASN.
func (g *Builder) AllocASN() asrel.ASN { return g.b.allocASN() }

// AddAS creates an AS: graph registration, prefix announcement,
// border router, internal host carrying the service address, RIR
// delegation, geolocation, and reverse DNS.
func (g *Builder) AddAS(asn asrel.ASN, name, org, cc, city string) *AS {
	return &AS{info: g.b.addAS(asn, name, org, cc, city)}
}

// AddIXP creates an exchange fabric with its directory entry.
func (g *Builder) AddIXP(name, cc, region, city string, launched int, ixpAS asrel.ASN, withMgmt bool) *IXPInfo {
	return g.b.addIXP(name, cc, region, city, launched, ixpAS, withMgmt)
}

// JoinIXP attaches the AS to the exchange, peering it bilaterally
// with every current member, and returns its port address.
func (g *Builder) JoinIXP(a *AS, x *IXPInfo, spec PortSpec) netaddr.Addr {
	return g.b.joinIXP(a.info, x, spec)
}

// JoinEvent schedules a future JoinIXP; onJoin (optional) receives
// the port address when the event fires.
func (g *Builder) JoinEvent(a *AS, x *IXPInfo, at simclock.Time, spec PortSpec, onJoin func(addr netaddr.Addr)) {
	g.b.joinEvent(a.info, x, at, spec, onJoin)
}

// LeaveEvent schedules the member's departure: port pipes go down and
// the bilateral peerings disappear from the control plane.
func (g *Builder) LeaveEvent(a *AS, x *IXPInfo, at simclock.Time, why string) {
	g.b.leaveEvent(a.info, x, at, why)
}

// Transit wires customer→provider with the /30 carved from the
// provider's block; pipeDown/pipeUp (optional) shape the data plane.
func (g *Builder) Transit(customer, provider *AS, pipeDown, pipeUp *netsim.Pipe) (custAddr, provAddr netaddr.Addr) {
	return g.b.transit(customer.info, provider.info, pipeDown, pipeUp)
}

// TransitFromCustomerSpace is Transit with the /30 carved from the
// customer's block — the addressing that makes bdrmap's border
// placement interesting.
func (g *Builder) TransitFromCustomerSpace(customer, provider *AS) (custAddr, provAddr netaddr.Addr) {
	return g.b.transitFromCustomerSpace(customer.info, provider.info)
}

// Interconnect wires a plain data-plane link mirroring an existing
// graph edge (IC-core peerings).
func (g *Builder) Interconnect(a, c *AS) {
	g.b.interconnect(a.info, c.info)
}

// SetPeer records a settlement-free peering in the control plane.
func (g *Builder) SetPeer(a, c *AS) {
	g.b.w.Graph.SetPeer(a.info.ASN, c.info.ASN)
}

// SetICRef marks the intercontinental carrier events fall back to.
func (g *Builder) SetICRef(a *AS) { g.b.icRef = a.info }

// AddVP attaches a probe host inside the AS and registers the vantage
// point with the world.
func (g *Builder) AddVP(id, monitor string, a *AS, ixp string) *VP {
	vp := g.b.addVP(id, monitor, a.info, ixp)
	g.b.w.VPs = append(g.b.w.VPs, vp)
	return vp
}

// CongestedPort builds a fabric→member (or transit) pipe with a fluid
// queue — the congestion-authoring primitive behind every case study.
func CongestedPort(capBps float64, drain simclock.Duration, load trafficmodel.Load) *netsim.Pipe {
	return congestedPort(capBps, drain, load)
}

// QueueWithPackets builds the standard congested-link queue: fluid
// buffer plus the near-saturation stochastic term.
func QueueWithPackets(capBps float64, drain simclock.Duration, load trafficmodel.Load) *queue.Fluid {
	return queueWithPackets(capBps, drain, load)
}

// SlowICMP builds a regime-switching control-plane delay profile
// (~level ms in ~30% of 5-hour blocks) for Border().ICMPDelay.
func SlowICMP(seed uint64, levelMs float64) func(simclock.Time) simclock.Duration {
	return slowICMP(seed, levelMs)
}

// HashUnit is the SplitMix64 unit hash shared by the deterministic
// noise processes — worldgen draws every distribution through it.
func HashUnit(seed, n uint64) float64 { return hashUnit(seed, n) }
