package scenario

import (
	"fmt"
	"time"

	"afrixp/internal/analysis"
	"afrixp/internal/asrel"
	"afrixp/internal/interview"
	"afrixp/internal/netaddr"
	"afrixp/internal/netsim"
	"afrixp/internal/prober"
	"afrixp/internal/simclock"
	"afrixp/internal/trafficmodel"
)

// Well-known ASNs from the paper.
const (
	ASGixa     asrel.ASN = 30997 // GIXA content network, Ghana
	ASGhanatel asrel.ASN = 29614 // GHANATEL (Vodafone Ghana)
	ASKnet     asrel.ASN = 33786 // KNET, Ghana
	ASTix      asrel.ASN = 33791 // TIX content network, Tanzania
	ASJinx     asrel.ASN = 37474 // JINX content network, South Africa
	ASSixp     asrel.ASN = 327719
	ASQcell    asrel.ASN = 37309 // QCell, Gambia (hosts VP4)
	ASLiquid   asrel.ASN = 30844 // Liquid Telecom, Kenya (hosts VP5)
	ASKixp     asrel.ASN = 4558
	ASRinex    asrel.ASN = 37224
	ASRdb      asrel.ASN = 37228 // RDB, Rwanda (hosts VP6)
)

// Options scales the synthetic world.
type Options struct {
	// Seed drives every deterministic noise process.
	Seed uint64
	// Scale multiplies the bulk synthetic populations (JINX members,
	// KIXP customers/members, RINEX customers). 1.0 ≈ the counts that
	// make Table 1 land near the paper's shape. Values below ~0.1 are
	// clamped to keep at least a couple of links per population.
	Scale float64
	// NetpageUpgradeBps overrides the capacity NETPAGE's SIXP port is
	// upgraded to on 2016-04-28 (default 1 Gbps, the paper's value).
	// What-if capacity-planning experiments sweep it.
	NetpageUpgradeBps float64
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 0xAF12016
	}
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	return o
}

func (o Options) scaled(n int) int {
	v := int(float64(n)*o.Scale + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

// noiseBand describes a slow-ICMP population: `count` links whose
// regime delay level is spread over [loMs, hiMs].
type noiseBand struct {
	count      int
	loMs, hiMs float64
}

// Paper builds the six-IXP world of the study.
func Paper(opts Options) *World {
	opts = opts.withDefaults()
	b := newBuilder(opts.Seed)
	w := b.w

	// ------------------------------------------------------------
	// Global core: two intercontinental carriers and the regional
	// transit ASes every member ultimately reaches the world through.
	// ------------------------------------------------------------
	ic1 := b.addAS(5511, "ic-one", "ICONE", "fr", "paris")
	ic2 := b.addAS(6453, "ic-two", "ICTWO", "us", "newyork")
	b.icRef = ic1
	b.w.Graph.SetPeer(ic1.ASN, ic2.ASN)
	// The data plane needs a pipe for the IC peering too.
	b.interconnect(ic1, ic2)

	regional := map[string]*asInfo{}
	for _, r := range []struct {
		cc, city, name string
	}{
		{"gh", "accra", "wafrinet"},
		{"tz", "daressalaam", "tz-transit"},
		{"za", "johannesburg", "za-transit"},
		{"gm", "banjul", "gamtel"},
		{"rw", "kigali", "rw-transit"},
	} {
		a := b.addAS(b.allocASN(), r.name, orgOf(r.name), r.cc, r.city)
		b.transit(a, ic1, nil, nil)
		b.transit(a, ic2, nil, nil)
		regional[r.cc] = a
	}

	buildGIXA(b, opts, regional["gh"])
	buildTIX(b, opts, regional["tz"])
	buildJINX(b, opts, regional["za"])
	buildSIXP(b, opts, regional["gm"])
	buildKIXP(b, opts, ic1, ic2)
	buildRINEX(b, opts, regional["rw"])

	w.Net.InvalidateRoutes()
	return w
}

// interconnect wires a plain data-plane link mirroring an existing
// graph edge (used for the IC1–IC2 peering).
func (b *builder) interconnect(a, c *asInfo) {
	sub := a.p2pPool.MustAlloc(30)
	b.w.Net.ConnectLink(a.Border, c.Border, netsim.LinkSpec{Subnet: sub,
		Prop: 3 * time.Millisecond})
}

func orgOf(name string) string { return "ORG-" + name }

// memberSpec describes one synthetic IXP member.
type memberSpec struct {
	name    string
	asn     asrel.ASN // 0 = allocate
	cc      string
	city    string
	port    PortSpec
	leaveAt simclock.Time
	joinAt  simclock.Time
	transit *asInfo // upstream; nil = none
}

// populate builds members for an IXP, wiring each to its transit and
// scheduling join/leave churn. It returns the built infos in order.
func (b *builder) populate(x *IXPInfo, specs []memberSpec) []*asInfo {
	out := make([]*asInfo, 0, len(specs))
	for _, s := range specs {
		asn := s.asn
		if asn == 0 {
			asn = b.allocASN()
		}
		a := b.addAS(asn, s.name, orgOf(s.name), s.cc, s.city)
		if s.transit != nil {
			b.transit(a, s.transit, nil, nil)
		}
		if s.joinAt > 0 {
			b.joinEvent(a, x, s.joinAt, s.port, nil)
		} else {
			b.joinIXP(a, x, s.port)
		}
		if s.leaveAt > 0 {
			b.leaveEvent(a, x, s.leaveAt, "membership churn")
		}
		out = append(out, a)
	}
	return out
}

// noiseSpecs expands noise bands into member specs with slow-ICMP
// levels spread deterministically over each band.
func (b *builder) noiseSpecs(prefix, cc, city string, transit *asInfo, bands []noiseBand) []memberSpec {
	var specs []memberSpec
	idx := 0
	for bi, band := range bands {
		for i := 0; i < band.count; i++ {
			u := hashUnit(b.w.Seed^uint64(bi)<<8, uint64(idx))
			level := band.loMs + u*(band.hiMs-band.loMs)
			specs = append(specs, memberSpec{
				name: fmt.Sprintf("%s%03d", prefix, idx), cc: cc, city: city,
				transit: transit,
				port:    PortSpec{SlowICMPLevel: level},
			})
			idx++
		}
	}
	return specs
}

// ------------------------------------------------------------------
// VP1 — GIXA, Ghana (content-network VP).
// ------------------------------------------------------------------
func buildGIXA(b *builder, opts Options, ghTransit *asInfo) {
	w := b.w
	x := b.addIXP("GIXA", "gh", "West Africa", "accra", 2005, ASGixa, true)
	content := b.addAS(ASGixa, "gixa", "GIXA", "gh", "accra")
	b.joinIXP(content, x, PortSpec{})
	vp := b.addVP("VP1", "gixa-gh", content, "GIXA")

	ghanatel := b.addAS(ASGhanatel, "ghanatel", "VODAFONE-GH", "gh", "accra")
	b.transit(ghanatel, ghTransit, nil, nil)

	// --- Case study: the GIXA–GHANATEL 100 Mbps transit link. ---
	// Congested in both directions: the download pipe carries the GGC
	// update traffic every day; the upload pipe saturates only on
	// business days. The stacked plateaus produce the paper's 20–50 ms
	// far-end peaks ("peak on top of the peak") with A_w ≈ 28 ms.
	const capBps = 100e6
	downLoad := trafficmodel.NewSchedule(trafficmodel.Diurnal{ // phase 1
		BaseBps: 0.72 * capBps, PeakBps: 1.35 * capBps, PeakHour: 14, Width: 7,
		WeekendFactor: 0.9, DayJitterFrac: 0.15, NoiseFrac: 0.05, Seed: b.w.Seed ^ 0xD1,
	}.Load())
	upLoad := trafficmodel.NewSchedule(trafficmodel.Diurnal{ // phase 1
		BaseBps: 0.5 * capBps, PeakBps: 1.3 * capBps, PeakHour: 13, Width: 4,
		WeekendFactor: 0.2, DayJitterFrac: 0.2, NoiseFrac: 0.05, Seed: b.w.Seed ^ 0xD2,
	}.Load())
	phase2 := simclock.Date(2016, time.June, 15)
	shutdown := simclock.Date(2016, time.August, 6)
	// Phase 2: GHANATEL shuts transit off to force payment; the link
	// carries peering spillover — small standing queues (≈10 ms
	// amplitude) but savage overload loss at the evening peaks
	// (0–85 % measured).
	downLoad.At(phase2, trafficmodel.Diurnal{
		BaseBps: 0.4 * capBps, PeakBps: 4.5 * capBps, PeakHour: 19, Width: 2.5,
		DayJitterFrac: 0.35, NoiseFrac: 0.1, Seed: b.w.Seed ^ 0xD3,
	}.Load())
	upLoad.At(phase2, trafficmodel.Constant(0.3*capBps))

	pipeDown := congestedPort(capBps, 25*time.Millisecond, downLoad.Load())
	pipeUp := congestedPort(capBps, 25*time.Millisecond, upLoad.Load())
	pipeDown.Up = netsim.DownAfter(shutdown)
	pipeUp.Up = netsim.DownAfter(shutdown)
	// At phase 2 the buffer shrinks: peering service on the same wire
	// runs a shallow queue (the measured amplitude drops to ~10 ms)
	// while the evening overload produces the 0–85 % loss of Fig. 2b.
	w.AddEvent(Event{At: phase2, Name: "GHANATEL transit shutoff: peering spillover",
		Apply: func(w *World) {
			// ~12.5 ms keeps the phase-2 amplitude visibly above the
			// 10 ms detection threshold after min-filtering — the
			// paper's pipeline kept tracking the ~10 ms waveform as
			// congestion through the shutdown.
			pipeDown.Queue.SetBufferDrain(phase2, 12500*time.Microsecond)
			pipeUp.Queue.SetBufferDrain(phase2, 12500*time.Microsecond)
		}})

	_, ghanatelFar := b.transit(content, ghanatel, pipeDown, pipeUp)
	vp.CaseLinks["GIXA-GHANATEL"] = prober.LinkTarget{Near: vp.NearAddr, Far: ghanatelFar}

	w.AddEvent(Event{At: shutdown, Name: "GIXA–GHANATEL link shut down",
		Apply: func(w *World) { w.Net.InvalidateRoutes() }})
	// Early October: the IXP buys 620 Mbps transit from an
	// intercontinental ISP; GHANATEL disappears from the control
	// plane; members must now register (more churn below).
	w.AddEvent(Event{At: simclock.Date(2016, time.October, 10),
		Name: "GIXA switches to 620 Mbps intercontinental transit",
		Apply: func(w *World) {
			w.Graph.RemoveLink(content.ASN, ghanatel.ASN)
			intercont := b.addAS(b.allocASN(), "intercont", "ICGGC", "pt", "lisbon")
			b.transit(intercont, b.icRef, nil, nil)
			b.transit(content, intercont, nil, nil)
			w.Net.InvalidateRoutes()
		}})

	w.Interviews.Add(&interview.Annotation{
		VP: "VP1", Target: vp.CaseLinks["GIXA-GHANATEL"],
		NearName: "GIXA", FarName: "GHANATEL",
		CongestedTruth: true, Class: analysis.Sustained, OperatorConfirmed: true,
		Phases: []interview.Phase{
			{Interval: simclock.Interval{Start: 0, End: phase2},
				Cause: interview.CauseTransitUnderprovisioned,
				Note:  "100 Mbps transit feeding the GGC; clients on a separate 1 Gbps peering link"},
			{Interval: simclock.Interval{Start: phase2, End: shutdown},
				Cause: interview.CausePeeringDispute,
				Note:  "transit shut off to force the IXP to pay; link repurposed for peering"},
		}})

	// --- Case study: GIXA–KNET (member port, joins 2016-06-29). ---
	knet := b.addAS(ASKnet, "knet", "KNET-GH", "gh", "accra")
	b.transit(knet, ghTransit, nil, nil)
	knetOnset := simclock.Date(2016, time.August, 6)
	// Mild overload (peak ≈ 1.035×C) keeps the measured loss in the
	// paper's "average 0.1 %, no customer complaints" regime while the
	// ~2-hour daily saturation produces the 18 ms plateau.
	// Low load noise matters here: with the peak only ~5 % above
	// capacity, minute-scale dips below line rate drain the shallow
	// queue entirely and the min-filter would erase the event.
	knetLoad := trafficmodel.NewSchedule(trafficmodel.Constant(0.2*1e9)).
		At(knetOnset, trafficmodel.Diurnal{
			BaseBps: 0.45 * 1e9, PeakBps: 1.05 * 1e9, PeakHour: 15, Width: 3.0,
			DayJitterFrac: 0.025, NoiseFrac: 0.015, Seed: b.w.Seed ^ 0xE1,
		}.Load())
	knetPort := congestedPort(1e9, 18*time.Millisecond, knetLoad.Load())
	b.joinEvent(knet, x, simclock.Date(2016, time.June, 29),
		PortSpec{FromFabric: knetPort},
		func(addr netaddr.Addr) {
			vp.CaseLinks["GIXA-KNET"] = prober.LinkTarget{Near: vp.NearAddr, Far: addr}
			w.Interviews.Add(&interview.Annotation{
				VP: "VP1", Target: vp.CaseLinks["GIXA-KNET"],
				NearName: "GIXA", FarName: "KNET",
				CongestedTruth: true, Class: analysis.Sustained, OperatorConfirmed: false,
				Phases: []interview.Phase{{
					Interval: simclock.Interval{Start: knetOnset, End: simclock.LatencyEnd},
					Cause:    interview.CauseUnknownExternal,
					Note:     "KNET denies congestion; avg loss 0.1% — router overload or content-network link",
				}}})
		})

	// --- Ordinary members with churn matching Table 2's decline. ---
	var specs []memberSpec
	for i := 0; i < 10; i++ {
		s := memberSpec{name: fmt.Sprintf("ghisp%02d", i), cc: "gh", city: "accra",
			transit: ghTransit}
		switch {
		case i < 5: // commercialization pressure: spring departures
			s.leaveAt = simclock.Date(2016, time.May, 15).Add(time.Duration(i) * 5 * 24 * time.Hour)
		case i == 5: // content network commercialized in October
			s.leaveAt = simclock.Date(2016, time.October, 12)
		case i == 6:
			s.leaveAt = simclock.Date(2016, time.October, 20)
		}
		specs = append(specs, s)
	}
	// Two noisy members complete the Table 1 VP1 row (4 flagged at
	// 5/10 ms, 3 at 15, 2 at 20: GHANATEL≈28, KNET≈17.5, plus ~11 and
	// ~25 ms slow-ICMP levels).
	specs = append(specs,
		memberSpec{name: "ghnoise0", cc: "gh", city: "accra", transit: ghTransit,
			port: PortSpec{SlowICMPLevel: 11.5}},
		memberSpec{name: "ghnoise1", cc: "gh", city: "kumasi", transit: ghTransit,
			port: PortSpec{SlowICMPLevel: 26}},
	)
	b.populate(x, specs)
	w.VPs = append(w.VPs, vp)
}

// ------------------------------------------------------------------
// VP2 — TIX, Tanzania (content-network VP).
// ------------------------------------------------------------------
func buildTIX(b *builder, opts Options, transit *asInfo) {
	w := b.w
	x := b.addIXP("TIX", "tz", "East Africa", "daressalaam", 2004, ASTix, false)
	content := b.addAS(ASTix, "tix", "TIX", "tz", "daressalaam")
	b.joinIXP(content, x, PortSpec{})
	b.transit(content, transit, nil, nil)
	vp := b.addVP("VP2", "tix-tz", content, "TIX")

	// Two transiently congested member ports, mitigated mid-October
	// (upgrades), so the 16/11 snapshot shows zero congested links.
	mitigate := simclock.Date(2016, time.October, 15)
	for i, mag := range []simclock.Duration{22 * time.Millisecond, 16 * time.Millisecond} {
		capBps := 200e6
		load := trafficmodel.Diurnal{
			BaseBps: 0.5 * capBps, PeakBps: 1.25 * capBps, PeakHour: float64(13 + i),
			Width: 2.2, WeekendFactor: 0.6, DayJitterFrac: 0.1, NoiseFrac: 0.06,
			Seed: b.w.Seed ^ uint64(0xF1+i),
		}
		port := &netsim.Pipe{Prop: 150 * time.Microsecond,
			Queue: queueWithPackets(capBps, mag, load.Load())}
		a := b.addAS(b.allocASN(), fmt.Sprintf("tzcong%d", i), orgOf("tzcong"), "tz", "daressalaam")
		b.transit(a, transit, nil, nil)
		addr := b.joinIXP(a, x, PortSpec{FromFabric: port})
		target := prober.LinkTarget{Near: vp.NearAddr, Far: addr}
		vp.CaseLinks[fmt.Sprintf("TIX-CONG%d", i)] = target
		q := port.Queue
		w.AddEvent(Event{At: mitigate, Name: fmt.Sprintf("TIX member %d port upgraded", i),
			Apply: func(w *World) { q.SetCapacity(mitigate, 10*capBps) }})
		w.Interviews.Add(&interview.Annotation{
			VP: "VP2", Target: target, NearName: "TIX", FarName: w.Graph.Name(a.ASN),
			CongestedTruth: true, Class: analysis.Transient, OperatorConfirmed: true,
			Phases: []interview.Phase{{
				Interval: simclock.Interval{Start: 0, End: mitigate},
				Cause:    interview.CausePortUnderprovisioned,
				Note:     "member port upgraded mid-October",
			}}})
	}

	// Noise population tuned to Table 1 VP2 (6/5/4/3).
	specs := b.noiseSpecs("tznoise", "tz", "daressalaam", transit, []noiseBand{
		{count: 1, loMs: 6.5, hiMs: 8.5},
		{count: 2, loMs: 11, hiMs: 13.5},
		{count: 1, loMs: 26, hiMs: 38},
	})
	// Ordinary members: ~24 more at start (31 neighbors total with
	// transit + congested + noise), one spring departure, six
	// September/October joiners (the 16/11 snapshot shows growth).
	for i := 0; i < 24; i++ {
		s := memberSpec{name: fmt.Sprintf("tzisp%02d", i), cc: "tz", city: "daressalaam",
			transit: transit}
		if i == 0 {
			s.leaveAt = simclock.Date(2016, time.May, 20)
		}
		specs = append(specs, s)
	}
	for i := 0; i < 6; i++ {
		specs = append(specs, memberSpec{
			name: fmt.Sprintf("tznew%02d", i), cc: "tz", city: "daressalaam",
			transit: transit,
			joinAt:  simclock.Date(2016, time.September, 10).Add(time.Duration(i) * 6 * 24 * time.Hour)})
	}
	b.populate(x, specs)
	w.VPs = append(w.VPs, vp)
}

// ------------------------------------------------------------------
// VP3 — JINX, South Africa (content-network VP).
// ------------------------------------------------------------------
func buildJINX(b *builder, opts Options, transit *asInfo) {
	w := b.w
	x := b.addIXP("JINX", "za", "Southern Africa", "johannesburg", 1996, ASJinx, false)
	content := b.addAS(ASJinx, "jinx", "JINX", "za", "johannesburg")
	b.joinIXP(content, x, PortSpec{})
	b.transit(content, transit, nil, nil)
	vp := b.addVP("VP3", "jinx-za", content, "JINX")

	// One transiently congested member port, gone by September (the
	// 27/07 snapshot shows 1 congested link, the later ones 0).
	capBps := 500e6
	mitigate := simclock.Date(2016, time.September, 1)
	load := trafficmodel.Diurnal{
		BaseBps: 0.5 * capBps, PeakBps: 1.2 * capBps, PeakHour: 20, Width: 2,
		WeekendFactor: 0.7, DayJitterFrac: 0.1, NoiseFrac: 0.05, Seed: b.w.Seed ^ 0xF8,
	}
	port := &netsim.Pipe{Prop: 150 * time.Microsecond,
		Queue: queueWithPackets(capBps, 18*time.Millisecond, load.Load())}
	cong := b.addAS(b.allocASN(), "zacong0", orgOf("zacong"), "za", "johannesburg")
	b.transit(cong, transit, nil, nil)
	addr := b.joinIXP(cong, x, PortSpec{FromFabric: port})
	target := prober.LinkTarget{Near: vp.NearAddr, Far: addr}
	vp.CaseLinks["JINX-CONG0"] = target
	q := port.Queue
	w.AddEvent(Event{At: mitigate, Name: "JINX member port upgraded",
		Apply: func(w *World) { q.SetCapacity(mitigate, 10*capBps) }})
	w.Interviews.Add(&interview.Annotation{
		VP: "VP3", Target: target, NearName: "JINX", FarName: "zacong0",
		CongestedTruth: true, Class: analysis.Transient, OperatorConfirmed: true,
		Phases: []interview.Phase{{
			Interval: simclock.Interval{Start: 0, End: mitigate},
			Cause:    interview.CausePortUnderprovisioned,
		}}})

	// Noise bands shaped after Table 1 VP3 (80/56/48/40).
	specs := b.noiseSpecs("zanoise", "za", "johannesburg", transit, []noiseBand{
		{count: opts.scaled(14), loMs: 6, hiMs: 9},
		{count: opts.scaled(8), loMs: 11, hiMs: 14},
		{count: opts.scaled(8), loMs: 16, hiMs: 19},
		{count: opts.scaled(28), loMs: 22, hiMs: 45},
	})
	for i := 0; i < opts.scaled(12); i++ {
		specs = append(specs, memberSpec{name: fmt.Sprintf("zaisp%02d", i),
			cc: "za", city: "johannesburg", transit: transit})
	}
	// Ten later joiners (32 → 42 neighbors between snapshots).
	for i := 0; i < opts.scaled(10); i++ {
		specs = append(specs, memberSpec{name: fmt.Sprintf("zanew%02d", i),
			cc: "za", city: "johannesburg", transit: transit,
			joinAt: simclock.Date(2016, time.August, 15).Add(time.Duration(i) * 7 * 24 * time.Hour)})
	}
	b.populate(x, specs)
	w.VPs = append(w.VPs, vp)
}

// ------------------------------------------------------------------
// VP4 — SIXP, Gambia (member VP inside QCell).
// ------------------------------------------------------------------
func buildSIXP(b *builder, opts Options, transit *asInfo) {
	w := b.w
	x := b.addIXP("SIXP", "gm", "West Africa", "serekunda", 2014, ASSixp, false)
	ixpNet := b.addAS(ASSixp, "sixp", "SIXP", "gm", "serekunda")
	b.joinIXP(ixpNet, x, PortSpec{})

	qcell := b.addAS(ASQcell, "qcell", "QCELL-GM", "gm", "serekunda")
	b.transit(qcell, transit, nil, nil)
	b.joinIXP(qcell, x, PortSpec{})
	vp := b.addVP("VP4", "sixp-gm", qcell, "SIXP")

	// --- Case study: QCELL–NETPAGE (10 Mbps port → 1 Gbps). ---
	// NETPAGE's users pull Google content cached behind QCell; the
	// 10 Mbps port saturates daily (35 ms weekday spikes, ~15 ms
	// weekends via the near-saturation regime) until the 28/04
	// upgrade.
	const capBps = 10e6
	upgrade := simclock.Date(2016, time.April, 28)
	load := trafficmodel.Diurnal{
		BaseBps: 0.35 * capBps, PeakBps: 1.15 * capBps, PeakHour: 13.5, Width: 2.8,
		WeekendFactor: 0.72, DayJitterFrac: 0.08, NoiseFrac: 0.05, Seed: b.w.Seed ^ 0xA7,
	}
	port := &netsim.Pipe{Prop: 200 * time.Microsecond,
		Queue: queueWithPackets(capBps, 35*time.Millisecond, load.Load())}
	netpage := b.addAS(b.allocASN(), "netpage", "NETPAGE-GM", "gm", "serekunda")
	b.transit(netpage, transit, nil, nil)
	netpageAddr := b.joinIXP(netpage, x, PortSpec{FromFabric: port})
	vp.CaseLinks["QCELL-NETPAGE"] = prober.LinkTarget{Near: vp.NearAddr, Far: netpageAddr}
	upgradeBps := opts.NetpageUpgradeBps
	if upgradeBps <= 0 {
		upgradeBps = 1e9
	}
	npq := port.Queue
	w.AddEvent(Event{At: upgrade,
		Name:  fmt.Sprintf("NETPAGE upgrades SIXP port 10 Mbps → %.0f Mbps", upgradeBps/1e6),
		Apply: func(w *World) { npq.SetCapacity(upgrade, upgradeBps) }})
	w.Interviews.Add(&interview.Annotation{
		VP: "VP4", Target: vp.CaseLinks["QCELL-NETPAGE"],
		NearName: "QCELL", FarName: "NETPAGE",
		CongestedTruth: true, Class: analysis.Transient, OperatorConfirmed: true,
		Phases: []interview.Phase{{
			Interval: simclock.Interval{Start: 0, End: upgrade},
			Cause:    interview.CausePortUnderprovisioned,
			Note:     "huge GGC demand; link upgraded on 2016-04-28 at NETPAGE's request",
		}}})

	// Other members + the VP4 noise link (Table 1: 2/1/0/0 — NETPAGE
	// ~10.7 plus one ~6 ms level).
	specs := []memberSpec{
		{name: "gmnoise0", cc: "gm", city: "banjul", transit: transit,
			port: PortSpec{SlowICMPLevel: 6}},
	}
	for i := 0; i < 3; i++ {
		s := memberSpec{name: fmt.Sprintf("gmisp%02d", i), cc: "gm", city: "serekunda",
			transit: transit}
		if i < 2 { // spring departures: 7 → 4 neighbors by July
			s.leaveAt = simclock.Date(2016, time.June, 1).Add(time.Duration(i) * 10 * 24 * time.Hour)
		}
		specs = append(specs, s)
	}
	// Two August joiners: 4 → 6 by the 07/09 snapshot.
	for i := 0; i < 2; i++ {
		specs = append(specs, memberSpec{name: fmt.Sprintf("gmnew%02d", i),
			cc: "gm", city: "serekunda", transit: transit,
			joinAt: simclock.Date(2016, time.August, 5).Add(time.Duration(i) * 6 * 24 * time.Hour)})
	}
	b.populate(x, specs)
	w.VPs = append(w.VPs, vp)
}

// ------------------------------------------------------------------
// VP5 — KIXP, Kenya (member VP inside Liquid Telecom).
// ------------------------------------------------------------------
func buildKIXP(b *builder, opts Options, ic1, ic2 *asInfo) {
	w := b.w
	x := b.addIXP("KIXP", "ke", "East Africa", "nairobi", 2002, ASKixp, false)
	ixpNet := b.addAS(ASKixp, "kixp", "KIXP", "ke", "nairobi")
	b.joinIXP(ixpNet, x, PortSpec{})

	liquid := b.addAS(ASLiquid, "liquid", "LIQUID-KE", "ke", "nairobi")
	b.transit(liquid, ic1, nil, nil)
	b.transit(liquid, ic2, nil, nil)
	b.joinIXP(liquid, x, PortSpec{})
	vp := b.addVP("VP5", "kixp-ke", liquid, "KIXP")

	// Initial KIXP peers (the 11/03 snapshot shows 4).
	for i := 0; i < 3; i++ {
		a := b.addAS(b.allocASN(), fmt.Sprintf("keisp%02d", i), orgOf("keisp"), "ke", "nairobi")
		b.transit(a, ic1, nil, nil)
		b.joinIXP(a, x, PortSpec{})
	}
	// Strong membership growth through the campaign (the paper's VP5
	// snapshot growth from 4 to ~200 peers, scaled).
	for i := 0; i < opts.scaled(46); i++ {
		a := b.addAS(b.allocASN(), fmt.Sprintf("kenew%02d", i), orgOf("kenew"), "ke", "nairobi")
		b.transit(a, ic2, nil, nil)
		b.joinEvent(a, x, simclock.Date(2016, time.July, 1).Add(time.Duration(i)*5*24*time.Hour),
			PortSpec{}, nil)
	}

	// Liquid's transit customers: the bulk of VP5's discovered links.
	// Their border routers answer ICMP from a slow control plane in
	// random regimes — level shifts, no diurnal pattern: Table 1's
	// 147/147/147/146 row (one borderline level in [16,18) ms).
	nCust := opts.scaled(146)
	for i := 0; i < nCust; i++ {
		a := b.addAS(b.allocASN(), fmt.Sprintf("kecust%03d", i), orgOf("kecust"), "ke", "nairobi")
		u := hashUnit(b.w.Seed^0x5E5, uint64(i))
		b.transitFromCustomerSpace(a, liquid)
		a.Border.ICMPDelay = slowICMP(b.w.Seed^uint64(a.ASN), 25+u*20)
	}
	border := b.addAS(b.allocASN(), "kecust-borderline", orgOf("kecust"), "ke", "nairobi")
	b.transitFromCustomerSpace(border, liquid)
	border.Border.ICMPDelay = slowICMP(b.w.Seed^uint64(border.ASN), 17)

	w.VPs = append(w.VPs, vp)
}

// ------------------------------------------------------------------
// VP6 — RINEX, Rwanda (member VP inside RDB).
// ------------------------------------------------------------------
func buildRINEX(b *builder, opts Options, transit *asInfo) {
	w := b.w
	x := b.addIXP("RINEX", "rw", "East Africa", "kigali", 2004, ASRinex, false)
	ixpNet := b.addAS(ASRinex, "rinex", "RINEX", "rw", "kigali")
	b.joinIXP(ixpNet, x, PortSpec{})

	rdb := b.addAS(ASRdb, "rdb", "RDB-RW", "rw", "kigali")
	b.transit(rdb, transit, nil, nil)
	b.joinIXP(rdb, x, PortSpec{})
	vp := b.addVP("VP6", "rinex-rw", rdb, "RINEX")

	// One settled peer at the exchange (the paper's "9 (1)" row).
	peer := b.addAS(b.allocASN(), "rwisp00", orgOf("rwisp"), "rw", "kigali")
	b.transit(peer, transit, nil, nil)
	b.joinIXP(peer, x, PortSpec{})

	// RDB's government/customer links carry the VP6 noise population
	// shaped after Table 1 (100/88/88/71): 12 levels in [6,9), 17 in
	// [15.5,19), 71 in [22,45).
	bands := []noiseBand{
		{count: opts.scaled(12), loMs: 6, hiMs: 9},
		{count: opts.scaled(17), loMs: 15.5, hiMs: 19},
		{count: opts.scaled(71), loMs: 22, hiMs: 45},
	}
	idx := 0
	for bi, band := range bands {
		for i := 0; i < band.count; i++ {
			u := hashUnit(b.w.Seed^0x6E6^uint64(bi)<<10, uint64(idx))
			level := band.loMs + u*(band.hiMs-band.loMs)
			a := b.addAS(b.allocASN(), fmt.Sprintf("rwcust%03d", idx), orgOf("rwcust"), "rw", "kigali")
			b.transitFromCustomerSpace(a, rdb)
			a.Border.ICMPDelay = slowICMP(b.w.Seed^uint64(a.ASN), level)
			idx++
		}
	}
	w.VPs = append(w.VPs, vp)
}
