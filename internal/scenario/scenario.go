// Package scenario constructs the simulated world of the paper: six
// African IXPs (GIXA, TIX, JINX, SIXP, KIXP, RINEX) with their member
// networks, content networks, transit hierarchy, the three detailed
// congestion case studies (GIXA–GHANATEL, GIXA–KNET, QCELL–NETPAGE),
// the slow-ICMP noise populations behind Table 1's flagged-but-not-
// diurnal counts, the membership churn behind Table 2, and the
// datasets (RIR delegations, IXP directory, geolocation, reverse DNS,
// operator interviews) the measurement pipeline consumes.
package scenario

import (
	"fmt"
	"sort"

	"afrixp/internal/asrel"
	"afrixp/internal/bgpsim"
	"afrixp/internal/geo"
	"afrixp/internal/interview"
	"afrixp/internal/ixpdir"
	"afrixp/internal/netaddr"
	"afrixp/internal/netsim"
	"afrixp/internal/prober"
	"afrixp/internal/registry"
	"afrixp/internal/simclock"
)

// World is the fully assembled simulation.
type World struct {
	Seed  uint64
	Graph *asrel.Graph
	BGP   *bgpsim.Network
	Net   *netsim.Network

	VPs  []*VP
	IXPs map[string]*IXPInfo

	// Datasets (§4 inputs).
	RIRFile    *registry.File
	Directory  *ixpdir.Directory
	GeoDB      *geo.DB
	RDNS       *geo.RDNS
	Interviews *interview.Registry

	events  []Event
	applied int
	now     simclock.Time
}

// VP is one vantage point of the study.
type VP struct {
	// ID is the paper's label ("VP1").
	ID string
	// Monitor is the Ark-style monitor name ("gixa-gh").
	Monitor string
	// IXP is the studied exchange's short name.
	IXP string
	// HostAS is the AS hosting the probe.
	HostAS asrel.ASN
	// Siblings of the host AS (bdrmap input).
	Siblings []asrel.ASN
	// Node is the probe host.
	Node *netsim.Node
	// NearAddr is the VP-facing interface of the host AS's border
	// router — the near end every traceroute from this VP reveals
	// first.
	NearAddr netaddr.Addr
	// CaseLinks maps case-study names ("GIXA-GHANATEL") to the link
	// targets the paper analyzes in depth.
	CaseLinks map[string]prober.LinkTarget
}

// IXPInfo describes one exchange in the world.
type IXPInfo struct {
	Name       string
	Country    string
	City       string
	Region     string
	Launched   int
	ASN        asrel.ASN // the IXP's own AS (content/mgmt network)
	PeeringLAN *netsim.LAN
	Peering    netaddr.Prefix
	Management netaddr.Prefix
	// Members maps member ASN → its border-router port address.
	Members map[asrel.ASN]netaddr.Addr
}

// Event is a timed world mutation (member churn, capacity upgrade,
// link shutdown, transit change).
type Event struct {
	At    simclock.Time
	Name  string
	Apply func(*World)
}

// AddEvent registers a mutation. Events may be added mid-campaign —
// fault injection, late operator actions — as long as they are not in
// the past. Only the unapplied tail is kept sorted: re-sorting the
// whole slice would shift the applied prefix under the w.applied
// cursor, silently re-applying an old event or skipping the new one.
func (w *World) AddEvent(e Event) {
	if e.At < w.now {
		panic(fmt.Sprintf("scenario: AddEvent(%q) at %v is before the world clock %v", e.Name, e.At, w.now))
	}
	w.events = append(w.events, e)
	tail := w.events[w.applied:]
	sort.SliceStable(tail, func(i, j int) bool { return tail[i].At < tail[j].At })
}

// AdvanceTo applies all events with At ≤ t. Time never rewinds.
func (w *World) AdvanceTo(t simclock.Time) {
	if t < w.now {
		panic(fmt.Sprintf("scenario: AdvanceTo backwards from %v to %v", w.now, t))
	}
	for w.applied < len(w.events) && w.events[w.applied].At <= t {
		w.events[w.applied].Apply(w)
		w.applied++
	}
	w.now = t
}

// Now returns the world's current virtual time.
func (w *World) Now() simclock.Time { return w.now }

// PendingEvents returns the not-yet-applied events (for campaign
// drivers that want to log them).
func (w *World) PendingEvents() []Event { return w.events[w.applied:] }

// VPByID finds a vantage point by paper label.
func (w *World) VPByID(id string) (*VP, bool) {
	for _, vp := range w.VPs {
		if vp.ID == id {
			return vp, true
		}
	}
	return nil, false
}

// TruthNeighbors returns the ground-truth AS neighbors of a VP's
// network visible in the data plane at the current time, excluding
// siblings — what bdrmap should discover.
func (w *World) TruthNeighbors(vp *VP) []asrel.ASN {
	inside := map[asrel.ASN]bool{vp.HostAS: true}
	for _, s := range vp.Siblings {
		inside[s] = true
	}
	set := make(map[asrel.ASN]bool)
	for _, a := range w.Graph.Neighbors(vp.HostAS) {
		if !inside[a] {
			set[a] = true
		}
	}
	for _, s := range vp.Siblings {
		for _, a := range w.Graph.Neighbors(s) {
			if !inside[a] {
				set[a] = true
			}
		}
	}
	out := make([]asrel.ASN, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
