package scenario

import (
	"testing"
	"time"

	"afrixp/internal/analysis"
	"afrixp/internal/bdrmap"
	"afrixp/internal/ixpdir"
	"afrixp/internal/prober"
	"afrixp/internal/registry"
	"afrixp/internal/simclock"
)

// smallWorld builds the paper world at reduced scale for fast tests.
func smallWorld(t testing.TB) *World {
	t.Helper()
	return Paper(Options{Seed: 1, Scale: 0.15})
}

func bdrCfg(w *World, vp *VP) bdrmap.Config {
	return bdrmap.Config{
		BGP:      w.BGP,
		Rels:     w.Graph,
		RIR:      registry.NewIndex(w.RIRFile),
		IXP:      ixpdir.NewIndex(w.Directory),
		Siblings: vp.Siblings,
	}
}

func TestWorldConstructs(t *testing.T) {
	w := smallWorld(t)
	if len(w.VPs) != 6 {
		t.Fatalf("VPs = %d", len(w.VPs))
	}
	if len(w.IXPs) != 6 {
		t.Fatalf("IXPs = %d", len(w.IXPs))
	}
	for _, name := range []string{"GIXA", "TIX", "JINX", "SIXP", "KIXP", "RINEX"} {
		if _, ok := w.IXPs[name]; !ok {
			t.Fatalf("missing IXP %s", name)
		}
	}
	if len(w.RIRFile.Delegations) == 0 || len(w.Directory.IXPs) != 6 {
		t.Fatal("datasets empty")
	}
	if len(w.Interviews.All()) < 5 {
		t.Fatalf("annotations = %d", len(w.Interviews.All()))
	}
}

func TestVPCaseLinksWired(t *testing.T) {
	w := smallWorld(t)
	vp1, _ := w.VPByID("VP1")
	if _, ok := vp1.CaseLinks["GIXA-GHANATEL"]; !ok {
		t.Fatal("GIXA-GHANATEL case link missing")
	}
	// KNET joins 2016-06-29; its case link appears with the event.
	if _, ok := vp1.CaseLinks["GIXA-KNET"]; ok {
		t.Fatal("KNET link must not exist before its join event")
	}
	w.AdvanceTo(simclock.Date(2016, time.July, 1))
	if _, ok := vp1.CaseLinks["GIXA-KNET"]; !ok {
		t.Fatal("KNET link missing after join event")
	}
	vp4, _ := w.VPByID("VP4")
	if _, ok := vp4.CaseLinks["QCELL-NETPAGE"]; !ok {
		t.Fatal("QCELL-NETPAGE case link missing")
	}
}

func TestBdrmapDiscoversNeighborsPerVP(t *testing.T) {
	w := smallWorld(t)
	for _, vp := range w.VPs {
		p := prober.New(w.Net, vp.Node, prober.Config{Name: vp.Monitor})
		res, err := bdrmap.Run(p, bdrCfg(w, vp), 0)
		if err != nil {
			t.Fatalf("%s: %v", vp.ID, err)
		}
		truth := w.TruthNeighbors(vp)
		frac, missed, _ := bdrmap.ValidateNeighbors(res, truth)
		if frac < 0.9 {
			t.Fatalf("%s: coverage %.2f (missed %v of %d)", vp.ID, frac, missed, len(truth))
		}
	}
}

func TestGhanatelCongestionDetected(t *testing.T) {
	w := smallWorld(t)
	vp1, _ := w.VPByID("VP1")
	p := prober.New(w.Net, vp1.Node, prober.Config{Name: vp1.Monitor})
	ts, err := p.NewTSLP(vp1.CaseLinks["GIXA-GHANATEL"])
	if err != nil {
		t.Fatal(err)
	}
	// Probe 3 weeks of phase 1.
	start := simclock.Date(2016, time.March, 3)
	campaign := simclock.Interval{Start: start, End: start.Add(21 * 24 * time.Hour)}
	col := analysis.NewCollector(ts, analysis.CollectorConfig{Campaign: campaign})
	w.AdvanceTo(start)
	campaign.Steps(5*time.Minute, func(tm simclock.Time) {
		w.AdvanceTo(tm)
		col.Round(tm)
	})
	v := analysis.AnalyzeLink(col.Series(), analysis.DefaultConfig())
	if !v.Congested {
		t.Fatalf("GHANATEL phase 1 not detected: flagged=%v nearFlat=%v diurnal=%+v",
			v.Flagged, v.NearFlat, v.Diurnal)
	}
	if v.AW < 15 || v.AW > 55 {
		t.Fatalf("A_w = %.1f ms, want tens of ms", v.AW)
	}
}

func TestGhanatelShutdownKillsFarProbes(t *testing.T) {
	w := smallWorld(t)
	vp1, _ := w.VPByID("VP1")
	p := prober.New(w.Net, vp1.Node, prober.Config{Name: vp1.Monitor})
	ts, err := p.NewTSLP(vp1.CaseLinks["GIXA-GHANATEL"])
	if err != nil {
		t.Fatal(err)
	}
	after := simclock.Date(2016, time.August, 10)
	w.AdvanceTo(after)
	s := ts.Round(after)
	if !s.FarLost {
		t.Fatal("far probes must fail after the 2016-08-06 shutdown")
	}
}

func TestNetpageUpgradeClearsCongestion(t *testing.T) {
	w := smallWorld(t)
	vp4, _ := w.VPByID("VP4")
	p := prober.New(w.Net, vp4.Node, prober.Config{Name: vp4.Monitor})
	ts, err := p.NewTSLP(vp4.CaseLinks["QCELL-NETPAGE"])
	if err != nil {
		t.Fatal(err)
	}
	// Peak-hour sample in phase 1 (a Wednesday at 13:30).
	ph1 := simclock.At(time.Date(2016, time.March, 9, 13, 30, 0, 0, time.UTC))
	w.AdvanceTo(ph1)
	s1 := ts.Round(ph1)
	if s1.FarLost || s1.FarRTT < 20*time.Millisecond {
		t.Fatalf("phase-1 peak far RTT = %v (lost=%v), want ≥20ms", s1.FarRTT, s1.FarLost)
	}
	if s1.NearLost || s1.NearRTT > 5*time.Millisecond {
		t.Fatalf("near RTT = %v", s1.NearRTT)
	}
	// Same time of day after the 2016-04-28 upgrade.
	ph2 := simclock.At(time.Date(2016, time.May, 11, 13, 30, 0, 0, time.UTC))
	w.AdvanceTo(ph2)
	s2 := ts.Round(ph2)
	if s2.FarLost || s2.FarRTT > 10*time.Millisecond {
		t.Fatalf("phase-2 far RTT = %v (lost=%v), want <10ms", s2.FarRTT, s2.FarLost)
	}
}

func TestMembershipChurnChangesNeighbors(t *testing.T) {
	w := smallWorld(t)
	vp1, _ := w.VPByID("VP1")
	n0 := len(w.TruthNeighbors(vp1))
	w.AdvanceTo(simclock.Date(2016, time.November, 15))
	n1 := len(w.TruthNeighbors(vp1))
	if n1 >= n0 {
		t.Fatalf("VP1 neighbors should decline: %d → %d", n0, n1)
	}
	vp2, _ := w.VPByID("VP2")
	// Advance already applied; TIX gained members in the autumn.
	if len(w.TruthNeighbors(vp2)) <= 2 {
		t.Fatal("VP2 lost its neighbors")
	}
}

func TestAdvanceToBackwardsPanics(t *testing.T) {
	w := smallWorld(t)
	w.AdvanceTo(simclock.Date(2016, time.June, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.AdvanceTo(simclock.Date(2016, time.March, 1))
}

func TestDeterminism(t *testing.T) {
	w1 := Paper(Options{Seed: 7, Scale: 0.1})
	w2 := Paper(Options{Seed: 7, Scale: 0.1})
	vpA, _ := w1.VPByID("VP4")
	vpB, _ := w2.VPByID("VP4")
	pA := prober.New(w1.Net, vpA.Node, prober.Config{})
	pB := prober.New(w2.Net, vpB.Node, prober.Config{})
	tsA, errA := pA.NewTSLP(vpA.CaseLinks["QCELL-NETPAGE"])
	tsB, errB := pB.NewTSLP(vpB.CaseLinks["QCELL-NETPAGE"])
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	for d := 0; d < 3; d++ {
		at := simclock.Date(2016, time.March, 7).Add(time.Duration(d) * 13 * time.Hour)
		w1.AdvanceTo(at)
		w2.AdvanceTo(at)
		sA, sB := tsA.Round(at), tsB.Round(at)
		if sA != sB {
			t.Fatalf("same seed diverged at %v: %+v vs %+v", at, sA, sB)
		}
	}
}

func TestSlowICMPMembersExist(t *testing.T) {
	w := smallWorld(t)
	n := 0
	for _, node := range w.Net.Nodes() {
		if node.ICMPDelay != nil {
			n++
		}
	}
	if n < 20 {
		t.Fatalf("slow-ICMP population = %d, want dozens even at small scale", n)
	}
}

// TestAddEventMidCampaign pins that events inserted after the world
// has already applied part of its schedule land in order, without
// disturbing the applied prefix.
func TestAddEventMidCampaign(t *testing.T) {
	w := &World{}
	var log []string
	ev := func(name string, at simclock.Time) Event {
		return Event{At: at, Name: name, Apply: func(*World) { log = append(log, name) }}
	}
	w.AddEvent(ev("a", simclock.Time(10)))
	w.AddEvent(ev("c", simclock.Time(30)))
	w.AdvanceTo(simclock.Time(20)) // applies a
	// Mid-campaign inserts: one between the clock and the pending
	// event, one exactly at the clock (allowed boundary).
	w.AddEvent(ev("b", simclock.Time(25)))
	w.AddEvent(ev("d", simclock.Time(20)))
	w.AdvanceTo(simclock.Time(40))
	want := []string{"a", "d", "b", "c"}
	if len(log) != len(want) {
		t.Fatalf("applied %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("applied %v, want %v", log, want)
		}
	}
	if n := len(w.PendingEvents()); n != 0 {
		t.Fatalf("%d events still pending", n)
	}
}

// TestAddEventInPastPanics is the regression test for the ordering
// bug: the old full-slice re-sort let a past-dated event slide before
// the applied prefix, re-applying an already-applied event and never
// running the new one. Such inserts must refuse loudly instead.
func TestAddEventInPastPanics(t *testing.T) {
	w := &World{}
	w.AddEvent(Event{At: simclock.Time(10), Name: "a", Apply: func(*World) {}})
	w.AdvanceTo(simclock.Time(100))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.AddEvent(Event{At: simclock.Time(50), Name: "late", Apply: func(*World) {}})
}
