package scenario

import (
	"fmt"
	"time"

	"afrixp/internal/asrel"
	"afrixp/internal/bgpsim"
	"afrixp/internal/geo"
	"afrixp/internal/interview"
	"afrixp/internal/ixpdir"
	"afrixp/internal/netaddr"
	"afrixp/internal/netsim"
	"afrixp/internal/prober"
	"afrixp/internal/queue"
	"afrixp/internal/registry"
	"afrixp/internal/simclock"
	"afrixp/internal/trafficmodel"
)

// builder accumulates the world during construction.
type builder struct {
	w *World

	// Address pools: /16 per AS from the African pool, /24 per IXP
	// LAN/management network, /30 interconnects carved from the
	// owning AS's block.
	asPool  *netaddr.Allocator
	ixpPool *netaddr.Allocator

	nextASN asrel.ASN
	// asBits is the prefix length allocated per AS (default /16). The
	// continent-scale generator widens the pool and keeps /16s; tests
	// may narrow it.
	asBits int
	// icRef is an intercontinental carrier used when events add
	// late-joining transit providers.
	icRef *asInfo
}

// asInfo is the built form of one autonomous system.
type asInfo struct {
	ASN     asrel.ASN
	Name    string
	Prefix  netaddr.Prefix
	Border  *netsim.Node
	Host    *netsim.Node // internal host carrying the service address
	Service netaddr.Addr
	CC      string
	City    string
	// p2pPool carves /30s for this AS's interconnects.
	p2pPool *netaddr.Allocator
}

func newBuilder(seed uint64) *builder {
	g := asrel.NewGraph()
	bgp := bgpsim.New(g)
	w := &World{
		Seed:       seed,
		Graph:      g,
		BGP:        bgp,
		Net:        netsim.New(bgp, seed),
		IXPs:       make(map[string]*IXPInfo),
		RIRFile:    &registry.File{Registry: "afrinic", Serial: "20170306"},
		Directory:  &ixpdir.Directory{},
		GeoDB:      geo.NewDB(),
		RDNS:       geo.NewRDNS(),
		Interviews: interview.NewRegistry(),
	}
	return &builder{
		w:       w,
		asPool:  netaddr.NewAllocator(netaddr.MustParsePrefix("40.0.0.0/6")),
		ixpPool: netaddr.NewAllocator(netaddr.MustParsePrefix("196.60.0.0/14")),
		nextASN: 328000,
		asBits:  16,
	}
}

// allocASN hands out synthetic member ASNs.
func (b *builder) allocASN() asrel.ASN {
	b.nextASN++
	return b.nextASN
}

// addAS creates an AS: graph registration, /16 announcement, border
// router, internal host with service address one hop behind it (so
// traces into the AS reveal the border's ingress interface), RIR
// delegation, geolocation, and reverse DNS.
func (b *builder) addAS(asn asrel.ASN, name, org, cc, city string) *asInfo {
	prefix := b.asPool.MustAlloc(b.asBits)
	b.w.Graph.AddAS(asn, name, asrel.Org(org))
	b.w.BGP.Announce(asn, prefix)

	border := b.w.Net.AddNode("br1."+name, asn)
	host := b.w.Net.AddNode("srv1."+name, asn)
	// The first sixteenth of the block is infrastructure: /30
	// interconnects (a /20 out of a /16 holds 1024, enough for
	// Liquid-scale customer counts). The very first /30 is reserved so
	// that x.x.0.1 — the address trace campaigns aim at — is the
	// service loopback behind the border, not the border's own
	// internal interface.
	p2p := netaddr.NewAllocator(netaddr.PrefixFrom(prefix.Addr, b.asBits+4))
	p2p.MustAlloc(30) // reserve x.x.0.0/30
	link := p2p.MustAlloc(30)
	b.w.Net.ConnectLink(border, host, netsim.LinkSpec{Subnet: link,
		NameA: geo.InterfaceName("ge0-0", "br1", city, cc, domainOf(name)),
		NameB: geo.InterfaceName("eth0", "srv1", city, cc, domainOf(name)),
	})
	service := prefix.Nth(1) // x.x.0.1: one hop behind the border
	b.w.Net.AddLoopback(host, service, geo.InterfaceName("lo0", "srv1", city, cc, domainOf(name)))

	info := &asInfo{ASN: asn, Name: name, Prefix: prefix, Border: border,
		Host: host, Service: service, CC: cc, City: city,
		p2pPool: p2p}
	b.w.RIRFile.Delegations = append(b.w.RIRFile.Delegations,
		registry.Delegation{Registry: "afrinic", CC: cc, Type: "ipv4",
			Prefix: prefix, Date: simclock.Epoch, Status: "allocated", Opaque: "ORG-" + org},
		registry.Delegation{Registry: "afrinic", CC: cc, Type: "asn",
			ASN: asn, Date: simclock.Epoch, Status: "allocated", Opaque: "ORG-" + org})
	b.w.GeoDB.Add(geo.Entry{Prefix: prefix, Country: cc, City: city})
	b.w.RDNS.Register(service, geo.InterfaceName("lo0", "srv1", city, cc, domainOf(name)))
	return info
}

func domainOf(name string) string { return name + ".net" }

// addIXP creates an exchange: peering LAN (and optional management
// prefix), directory entry, geolocation of the fabric.
func (b *builder) addIXP(name, cc, region, city string, launched int, ixpAS asrel.ASN, withMgmt bool) *IXPInfo {
	lanPrefix := b.ixpPool.MustAlloc(24)
	info := &IXPInfo{Name: name, Country: cc, City: city, Region: region, Launched: launched,
		ASN: ixpAS, Peering: lanPrefix, Members: make(map[asrel.ASN]netaddr.Addr)}
	info.PeeringLAN = b.w.Net.AddLAN(lanPrefix)
	if withMgmt {
		info.Management = b.ixpPool.MustAlloc(24)
	}
	b.w.Directory.IXPs = append(b.w.Directory.IXPs, ixpdir.IXP{
		Name: name, Country: cc, Region: region, Launched: launched,
		PeeringLAN: lanPrefix, Management: info.Management,
	})
	b.w.GeoDB.Add(geo.Entry{Prefix: lanPrefix, Country: cc, City: city})
	if withMgmt {
		b.w.GeoDB.Add(geo.Entry{Prefix: info.Management, Country: cc, City: city})
	}
	b.w.IXPs[name] = info
	return info
}

// PortSpec customizes one member's IXP port.
type PortSpec struct {
	// FromFabric/ToFabric pipes override the default clean port
	// (congestion authoring).
	FromFabric, ToFabric *netsim.Pipe
	// SlowICMPLevel > 0 gives the member's border router a regime
	// slow-ICMP profile with roughly this added latency (ms).
	SlowICMPLevel float64
	// SkipPCH leaves the port out of the published directory.
	SkipPCH bool
}

// joinIXP attaches an AS's border router to an exchange fabric and
// records peerings with the existing members, the directory port
// assignment, and rDNS for the port.
func (b *builder) joinIXP(a *asInfo, x *IXPInfo, spec PortSpec) netaddr.Addr {
	slot := len(x.PeeringLAN.Attachments)
	addr := x.Peering.Nth(uint64(10 + slot))
	name := geo.InterfaceName(fmt.Sprintf("xe0-%d", slot), "br1",
		cityOfIXP(x), x.Country, domainOf(a.Name))
	b.w.Net.AttachToLAN(a.Border, x.PeeringLAN, netsim.AttachSpec{
		Addr: addr, Name: name,
		FromFabric: spec.FromFabric, ToFabric: spec.ToFabric,
	})
	b.w.RDNS.Register(addr, name)
	// Bilateral peering with every current member.
	for m := range x.Members {
		b.w.Graph.SetPeer(a.ASN, m)
	}
	x.Members[a.ASN] = addr
	if !spec.SkipPCH {
		b.w.Directory.PortAssignments = append(b.w.Directory.PortAssignments,
			ixpdir.PortAssignment{IXPName: x.Name, Addr: addr, ASN: a.ASN})
	}
	if spec.SlowICMPLevel > 0 {
		a.Border.ICMPDelay = slowICMP(b.w.Seed^uint64(a.ASN), spec.SlowICMPLevel)
	}
	return addr
}

// leaveIXP disconnects a member: both port pipes go down and the
// bilateral peerings disappear from the control plane.
func (b *builder) leaveEvent(a *asInfo, x *IXPInfo, at simclock.Time, why string) {
	b.w.AddEvent(Event{At: at, Name: fmt.Sprintf("%s leaves %s (%s)", a.Name, x.Name, why),
		Apply: func(w *World) {
			addr := x.Members[a.ASN]
			for i := range x.PeeringLAN.Attachments {
				att := &x.PeeringLAN.Attachments[i]
				if w.Net.Iface(att.Iface).Addr == addr {
					att.ToFabric.Up = netsim.DownAfter(at)
					att.FromFabric.Up = netsim.DownAfter(at)
				}
			}
			for m := range x.Members {
				if m != a.ASN {
					w.Graph.RemoveLink(a.ASN, m)
				}
			}
			delete(x.Members, a.ASN)
			w.Net.InvalidateRoutes()
		}})
}

// joinEvent attaches a member at a future date.
func (b *builder) joinEvent(a *asInfo, x *IXPInfo, at simclock.Time, spec PortSpec, onJoin func(addr netaddr.Addr)) {
	b.w.AddEvent(Event{At: at, Name: fmt.Sprintf("%s joins %s", a.Name, x.Name),
		Apply: func(w *World) {
			addr := b.joinIXP(a, x, spec)
			w.Net.InvalidateRoutes()
			if onJoin != nil {
				onJoin(addr)
			}
		}})
}

// transit wires a provider→customer relationship with a /30 carved
// from the provider's block (providers commonly address customer
// links), and a data-plane link between border routers.
func (b *builder) transit(customer, provider *asInfo, pipeDown, pipeUp *netsim.Pipe) (custAddr, provAddr netaddr.Addr) {
	b.w.Graph.SetProvider(customer.ASN, provider.ASN)
	sub := provider.p2pPool.MustAlloc(30)
	l := b.w.Net.ConnectLink(provider.Border, customer.Border, netsim.LinkSpec{
		Subnet: sub,
		NameA:  geo.InterfaceName("ge1-0", "br1", provider.City, provider.CC, domainOf(provider.Name)),
		NameB:  geo.InterfaceName("ge1-0", "br1", customer.City, customer.CC, domainOf(customer.Name)),
		// provider side gets .1 (A), customer .2 (B)
		PipeAtoB: pipeDown, // provider→customer (download direction)
		PipeBtoA: pipeUp,
	})
	provAddr = b.w.Net.Iface(l.A).Addr
	custAddr = b.w.Net.Iface(l.B).Addr
	b.w.RDNS.Register(provAddr, geo.InterfaceName("ge1-0", "br1", provider.City, provider.CC, domainOf(provider.Name)))
	b.w.RDNS.Register(custAddr, geo.InterfaceName("ge1-0", "br1", customer.City, customer.CC, domainOf(customer.Name)))
	return custAddr, provAddr
}

// queueWithPackets builds the standard congested-link queue: fluid
// buffer plus the near-saturation stochastic term for a 1500-byte
// packet mix.
func queueWithPackets(capBps float64, drain simclock.Duration, load trafficmodel.Load) *queue.Fluid {
	return queue.NewFluid(queue.Config{
		CapacityBps: capBps, BufferDrain: drain, Load: load, PacketBits: 12000,
	})
}

// congestedPort builds a FromFabric pipe (switch→member) with a fluid
// queue — the under-provisioned member port of the QCELL–NETPAGE
// case.
func congestedPort(capBps float64, drain simclock.Duration, load trafficmodel.Load) *netsim.Pipe {
	return &netsim.Pipe{
		Prop:  150 * time.Microsecond,
		Queue: queueWithPackets(capBps, drain, load),
	}
}

// addVP attaches a probe host to an AS's border router and returns
// the vantage-point descriptor.
func (b *builder) addVP(id, monitor string, a *asInfo, ixp string) *VP {
	sub := a.p2pPool.MustAlloc(30)
	node := b.w.Net.AddNode("vp."+monitor, a.ASN)
	l := b.w.Net.ConnectLink(node, a.Border, netsim.LinkSpec{Subnet: sub,
		NameA: geo.InterfaceName("eth0", "ark-"+monitor, a.City, a.CC, domainOf(a.Name)),
		NameB: geo.InterfaceName("ge0-9", "br1", a.City, a.CC, domainOf(a.Name)),
	})
	b.w.Net.SetGateway(node, b.w.Net.Iface(node.Ifaces[0]))
	vp := &VP{ID: id, Monitor: monitor, IXP: ixp, HostAS: a.ASN, Node: node,
		NearAddr:  b.w.Net.Iface(l.B).Addr,
		CaseLinks: make(map[string]prober.LinkTarget)}
	return vp
}

// transitFromCustomerSpace is transit() with the /30 carved from the
// customer's block — common on large providers' customer links, and
// the addressing that makes bdrmap's border placement interesting.
func (b *builder) transitFromCustomerSpace(customer, provider *asInfo) (custAddr, provAddr netaddr.Addr) {
	b.w.Graph.SetProvider(customer.ASN, provider.ASN)
	sub := customer.p2pPool.MustAlloc(30)
	l := b.w.Net.ConnectLink(provider.Border, customer.Border, netsim.LinkSpec{
		Subnet: sub,
		NameA:  geo.InterfaceName("ge2-0", "br1", provider.City, provider.CC, domainOf(provider.Name)),
		NameB:  geo.InterfaceName("ge0-0", "br1", customer.City, customer.CC, domainOf(customer.Name)),
	})
	return b.w.Net.Iface(l.B).Addr, b.w.Net.Iface(l.A).Addr
}

// slowICMP builds a regime-switching control-plane delay: in roughly
// 30 % of 5-hour blocks the router answers ICMP ~level ms slower —
// level shifts without any diurnal structure, the cause behind the
// paper's flagged-but-not-diurnal links (VP5/VP6 rows of Table 1).
func slowICMP(seed uint64, levelMs float64) func(simclock.Time) simclock.Duration {
	const block = 5 * time.Hour
	return func(t simclock.Time) simclock.Duration {
		idx := uint64(time.Duration(t) / block)
		u := hashUnit(seed, idx)
		base := 150 * time.Microsecond
		if u < 0.3 {
			// Elevated regime: level ± 10 %, plus per-probe jitter.
			j := hashUnit(seed^0xABCD, uint64(time.Duration(t)/time.Minute))
			d := levelMs * (0.9 + 0.2*u/0.3)
			return base + time.Duration(d*float64(time.Millisecond)) +
				time.Duration(j*float64(500*time.Microsecond))
		}
		j := hashUnit(seed^0x1234, uint64(time.Duration(t)/time.Minute))
		return base + time.Duration(j*float64(300*time.Microsecond))
	}
}

func cityOfIXP(x *IXPInfo) string {
	if x.City != "" {
		return x.City
	}
	switch x.Name {
	case "GIXA":
		return "accra"
	case "TIX":
		return "daressalaam"
	case "JINX":
		return "johannesburg"
	case "SIXP":
		return "serekunda"
	case "KIXP":
		return "nairobi"
	case "RINEX":
		return "kigali"
	}
	return "unknown"
}

// hashUnit is the SplitMix64 unit hash shared by the deterministic
// noise processes.
func hashUnit(seed, n uint64) float64 {
	z := seed + n*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}
