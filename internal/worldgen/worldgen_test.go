package worldgen

import (
	"runtime"
	"testing"

	"afrixp/internal/analysis"
)

// goldenFP pins the Seed=7, Scale=10 world across runs and machines:
// the generator must be a pure function of its options, with no
// dependence on map iteration order, scheduling, or prior state.
const goldenFP = "5b41d9502a3fc04e7855a1984c4f0da65338bc514b7718d3f2115b699f14dc1b"

func TestGenerateDeterministic(t *testing.T) {
	opts := Options{Seed: 7, Scale: 10}

	// Same options, different GOMAXPROCS: byte-identical worlds.
	prev := runtime.GOMAXPROCS(1)
	fp1 := Fingerprint(Generate(opts))
	runtime.GOMAXPROCS(8)
	fp8 := Fingerprint(Generate(opts))
	runtime.GOMAXPROCS(prev)
	if fp1 != fp8 {
		t.Fatalf("fingerprint depends on GOMAXPROCS: %s vs %s", fp1, fp8)
	}
	if fp1 != goldenFP {
		t.Fatalf("fingerprint drifted from golden:\n got %s\nwant %s", fp1, goldenFP)
	}

	// Different seeds diverge, as do different scales.
	if fp := Fingerprint(Generate(Options{Seed: 8, Scale: 10})); fp == fp1 {
		t.Fatalf("different seeds produced identical worlds: %s", fp)
	}
	if fp := Fingerprint(Generate(Options{Seed: 7, Scale: 20})); fp == fp1 {
		t.Fatalf("different scales produced identical worlds: %s", fp)
	}
}

func TestScaleLawFloors(t *testing.T) {
	cases := []struct {
		scale                       float64
		minIXPs, minLinks, maxLinks int
		minVPs                      int
	}{
		{1, 5, 500, 5_000, 5},
		{10, 12, 4_000, 40_000, 30},
		{100, 30, 10_000, 200_000, 150},
	}
	if !testing.Short() {
		// The 1000× point must land in the paper-scale extrapolation
		// band: 10^5–10^6 interdomain links, thousands of VPs.
		cases = append(cases, struct {
			scale                       float64
			minIXPs, minLinks, maxLinks int
			minVPs                      int
		}{1000, 80, 100_000, 1_000_000, 1000})
	}
	for _, c := range cases {
		w := Generate(Options{Seed: 3, Scale: c.scale})
		st := StatsOf(w)
		if st.IXPs < c.minIXPs {
			t.Errorf("scale %v: %d IXPs, want ≥ %d", c.scale, st.IXPs, c.minIXPs)
		}
		if st.InterdomainLinks < c.minLinks || st.InterdomainLinks > c.maxLinks {
			t.Errorf("scale %v: %d links, want in [%d, %d]",
				c.scale, st.InterdomainLinks, c.minLinks, c.maxLinks)
		}
		if st.VPs < c.minVPs {
			t.Errorf("scale %v: %d VPs, want ≥ %d", c.scale, st.VPs, c.minVPs)
		}
		if st.GroundTruthLinks < st.IXPs {
			t.Errorf("scale %v: %d ground-truth links for %d IXPs, want ≥ 1 per IXP",
				c.scale, st.GroundTruthLinks, st.IXPs)
		}
	}
}

// TestAnnotationsResolve checks the planted ground truth is internally
// consistent: every annotation names a real VP, its target is
// registered as that VP's case link, and the far end is a member port
// on the annotated exchange.
func TestAnnotationsResolve(t *testing.T) {
	w := Generate(Options{Seed: 7, Scale: 10})
	anns := w.Interviews.All()
	if len(anns) == 0 {
		t.Fatal("generated world has no interview annotations")
	}
	for _, a := range anns {
		vp, ok := w.VPByID(a.VP)
		if !ok {
			t.Fatalf("annotation references unknown VP %s", a.VP)
		}
		found := false
		for _, target := range vp.CaseLinks {
			if target == a.Target {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: annotated target %v not in VP case links", a.VP, a.Target)
		}
		x, ok := w.IXPs[a.NearName]
		if !ok {
			t.Fatalf("annotation near name %q is not an exchange", a.NearName)
		}
		onFabric := false
		for _, addr := range x.Members {
			if addr == a.Target.Far {
				onFabric = true
				break
			}
		}
		if !onFabric {
			t.Errorf("%s: far addr %v is not a member port of %s", a.VP, a.Target.Far, a.NearName)
		}
		if a.Class != analysis.Sustained && a.Class != analysis.Transient {
			t.Errorf("%s: annotation class %v is neither Sustained nor Transient", a.VP, a.Class)
		}
		if len(a.Phases) == 0 {
			t.Errorf("%s: annotation has no episode phases", a.VP)
		}
	}
	// Planted transients must come with their mitigation event.
	var upgrades int
	for _, e := range w.PendingEvents() {
		if e.At > 0 {
			upgrades++
		}
	}
	var transients int
	for _, a := range anns {
		if a.Class == analysis.Transient {
			transients++
		}
	}
	if transients == 0 {
		t.Error("no transient ground truth planted at scale 10")
	}
	if upgrades < transients {
		t.Errorf("%d pending events for %d transient annotations", upgrades, transients)
	}
}
