package worldgen

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"afrixp/internal/asrel"
	"afrixp/internal/scenario"
)

// Stats summarizes a world's size for the scale sweep and the
// generator's acceptance thresholds.
type Stats struct {
	IXPs             int
	ASes             int
	VPs              int
	InterdomainLinks int
	// GroundTruthLinks counts planted congested links with interview
	// annotations (CongestedTruth).
	GroundTruthLinks int
}

// StatsOf measures a built world.
func StatsOf(w *scenario.World) Stats {
	s := Stats{
		IXPs:             len(w.IXPs),
		ASes:             len(w.Graph.ASes()),
		VPs:              len(w.VPs),
		InterdomainLinks: len(w.Net.InterdomainLinks()),
	}
	for _, a := range w.Interviews.All() {
		if a.CongestedTruth {
			s.GroundTruthLinks++
		}
	}
	return s
}

// Fingerprint hashes the world's complete observable structure —
// relationship graph, fabrics and memberships, vantage points with
// their case links, ground-truth interdomain adjacencies, scheduled
// events, and interview annotations — into a hex digest. Every
// enumeration is explicitly sorted (never raw map order), so the
// digest is a pure function of the generator inputs: same
// (Seed, Scale) must produce the same fingerprint on every run at any
// GOMAXPROCS, and different seeds must diverge. The determinism tests
// pin this.
func Fingerprint(w *scenario.World) string {
	h := sha256.New()
	fmt.Fprintf(h, "afrixp-worldgen/1 seed=%#x\n", w.Seed)

	ases := w.Graph.ASes() // sorted
	fmt.Fprintf(h, "ases=%d\n", len(ases))
	for _, a := range ases {
		fmt.Fprintf(h, "AS%d name=%s org=%s\n", a, w.Graph.Name(a), w.Graph.OrgOf(a))
		for _, nb := range w.Graph.Neighbors(a) { // sorted
			fmt.Fprintf(h, "  rel AS%d %d\n", nb, w.Graph.Rel(a, nb))
		}
	}

	names := make([]string, 0, len(w.IXPs))
	for name := range w.IXPs {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(h, "ixps=%d\n", len(names))
	for _, name := range names {
		x := w.IXPs[name]
		fmt.Fprintf(h, "ixp %s cc=%s city=%s region=%s launched=%d asn=%d peering=%v\n",
			x.Name, x.Country, x.City, x.Region, x.Launched, x.ASN, x.Peering)
		members := make([]asrel.ASN, 0, len(x.Members))
		for asn := range x.Members {
			members = append(members, asn)
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		for _, asn := range members {
			fmt.Fprintf(h, "  member AS%d port=%v\n", asn, x.Members[asn])
		}
	}

	fmt.Fprintf(h, "vps=%d\n", len(w.VPs))
	for _, vp := range w.VPs {
		fmt.Fprintf(h, "vp %s monitor=%s ixp=%s host=AS%d near=%v\n",
			vp.ID, vp.Monitor, vp.IXP, vp.HostAS, vp.NearAddr)
		cases := make([]string, 0, len(vp.CaseLinks))
		for name := range vp.CaseLinks {
			cases = append(cases, name)
		}
		sort.Strings(cases)
		for _, name := range cases {
			t := vp.CaseLinks[name]
			fmt.Fprintf(h, "  case %s near=%v far=%v\n", name, t.Near, t.Far)
		}
	}

	links := w.Net.InterdomainLinks() // sorted by the enumerator
	fmt.Fprintf(h, "links=%d\n", len(links))
	for _, l := range links {
		fmt.Fprintf(h, "link %d %d AS%d AS%d\n", l.NearIface, l.FarIface, l.NearAS, l.FarAS)
	}

	evs := w.PendingEvents() // sorted by At
	fmt.Fprintf(h, "events=%d\n", len(evs))
	for _, e := range evs {
		fmt.Fprintf(h, "event %d %s\n", e.At, e.Name)
	}

	anns := w.Interviews.All() // sorted by (VP, Target)
	fmt.Fprintf(h, "annotations=%d\n", len(anns))
	for _, a := range anns {
		fmt.Fprintf(h, "ann vp=%s near=%v far=%v names=%s/%s truth=%t class=%d confirmed=%t\n",
			a.VP, a.Target.Near, a.Target.Far, a.NearName, a.FarName,
			a.CongestedTruth, a.Class, a.OperatorConfirmed)
		for _, p := range a.Phases {
			fmt.Fprintf(h, "  phase %d..%d cause=%s\n", p.Interval.Start, p.Interval.End, p.Cause)
		}
	}

	var sum [sha256.Size]byte
	return hex.EncodeToString(h.Sum(sum[:0]))
}
