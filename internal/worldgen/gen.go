// Package worldgen synthesizes continent-scale measurement worlds on
// top of the scenario builder. Where scenario.Paper reproduces the six
// exchanges of the IMC 2017 study verbatim, Generate extrapolates the
// same structural recipe — regional transits multihomed to an
// intercontinental core, exchange fabrics with bilateral peering
// meshes, vantage points inside member networks, planted congestion
// with machine-checkable ground truth — to tens or hundreds of IXPs,
// thousands of vantage points, and 10^5–10^6 interdomain links, all
// derived deterministically from (Seed, Scale).
//
// Scale laws (S = Options.Scale):
//
//	IXPs            ≈ 6·S^0.4    (10×→15, 100×→38, 1000×→95)
//	members per IXP ≈ 12·S^0.25  (±40% spread)
//	vantage points  ≈ 6·S^0.75   (10×→34, 100×→190, 1000×→1068)
//
// The sub-linear exponents mirror the paper's observation that African
// IXP substrate growth is membership-heavy, not exchange-heavy: link
// count grows quadratically in per-fabric membership, so worlds reach
// 10^5–10^6 interdomain links at S=1000 while the exchange count stays
// within the continent's plausible ceiling.
package worldgen

import (
	"fmt"
	"math"
	"time"

	"afrixp/internal/analysis"
	"afrixp/internal/interview"
	"afrixp/internal/netaddr"
	"afrixp/internal/netsim"
	"afrixp/internal/prober"
	"afrixp/internal/scenario"
	"afrixp/internal/simclock"
	"afrixp/internal/trafficmodel"
)

// Options parameterizes a generated world.
type Options struct {
	// Seed drives every deterministic draw. Same (Seed, Scale) yields
	// a byte-identical world (see Fingerprint).
	Seed uint64
	// Scale is the size multiplier relative to the paper world
	// (clamped to ≥ 1). Scale 10/100/1000 are the calibrated points
	// exercised by the scale sweep.
	Scale float64
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 0xA1AF2C0
	}
	if o.Scale < 1 {
		o.Scale = 1
	}
	return o
}

// Counts reports the target sizes derived from the scale laws.
type Counts struct {
	IXPs        int
	MembersMean float64
	VPs         int
}

// DerivedCounts exposes the scale laws for tests and the sweep report.
func DerivedCounts(o Options) Counts {
	o = o.withDefaults()
	s := o.Scale
	return Counts{
		IXPs:        int(math.Round(6 * math.Pow(s, 0.4))),
		MembersMean: 12 * math.Pow(s, 0.25),
		VPs:         int(math.Round(6 * math.Pow(s, 0.75))),
	}
}

// regionSpec pins each synthetic region's country/city pool.
type regionSpec struct {
	name   string
	places []place
}

type place struct{ cc, city string }

var regions = []regionSpec{
	{"West Africa", []place{{"gh", "accra"}, {"ng", "lagos"}, {"sn", "dakar"}, {"ci", "abidjan"}, {"bj", "cotonou"}, {"ml", "bamako"}}},
	{"East Africa", []place{{"ke", "nairobi"}, {"tz", "daressalaam"}, {"ug", "kampala"}, {"et", "addisababa"}, {"mu", "portlouis"}}},
	{"Southern Africa", []place{{"za", "johannesburg"}, {"za", "capetown"}, {"zw", "harare"}, {"mz", "maputo"}, {"bw", "gaborone"}, {"zm", "lusaka"}}},
	{"North Africa", []place{{"eg", "cairo"}, {"ma", "casablanca"}, {"tn", "tunis"}, {"dz", "algiers"}, {"sd", "khartoum"}}},
	{"Central Africa", []place{{"cd", "kinshasa"}, {"cm", "douala"}, {"ga", "libreville"}, {"ao", "luanda"}, {"rw", "kigali"}}},
}

// capLadder is the member port-capacity distribution: the long tail of
// 100 Mbps ports the paper's congested cases sat on, a 200 Mbps
// mid-band, and a 1 Gbps top end for the upgraded exchanges.
var capLadder = []struct {
	bps    float64
	weight float64
}{
	{100e6, 0.45},
	{200e6, 0.35},
	{1e9, 0.20},
}

// maxTransitCustomers bounds how many member networks hang off one
// regional transit: each transit carves customer /30s from a 1024-slot
// pool, so regions that outgrow it get additional transit ASes.
const maxTransitCustomers = 500

// gen carries generation state. Every random draw flows through u(),
// a single SplitMix64 counter stream, so the draw sequence — and with
// it the whole world — is a pure function of (Seed, Scale) regardless
// of GOMAXPROCS or map iteration order (the generator never ranges
// over maps).
type gen struct {
	o     Options
	b     *scenario.Builder
	w     *scenario.World
	draws uint64

	transits map[string][]*scenario.AS // region → transit ASes, rotation order
	tNext    map[string]int            // region → next transit index
	tLoad    map[string]int            // region → customers on current transit

	// members records every fabric's joined member networks in join
	// order, for multihoming reuse and VP placement.
	members map[string][]memberRec
	ixps    []*scenario.IXPInfo
	vpSeq   int
}

type memberRec struct {
	as   *scenario.AS
	addr netaddr.Addr
	ixp  string
}

// u draws the next deterministic unit variate.
func (g *gen) u() float64 {
	g.draws++
	return scenario.HashUnit(g.o.Seed, g.draws)
}

// pick selects an index in [0, n) from the draw stream.
func (g *gen) pick(n int) int {
	i := int(g.u() * float64(n))
	if i >= n {
		i = n - 1
	}
	return i
}

func (g *gen) capDraw() float64 {
	u := g.u()
	for _, c := range capLadder {
		if u < c.weight {
			return c.bps
		}
		u -= c.weight
	}
	return capLadder[len(capLadder)-1].bps
}

// Generate builds a world at the requested scale. The result is fully
// routed (InvalidateRoutes has been called) and carries planted
// congestion ground truth in World.Interviews plus per-VP CaseLinks,
// so campaign recall can be scored exactly like the paper world's.
func Generate(o Options) *scenario.World {
	o = o.withDefaults()
	g := &gen{
		o: o,
		b: scenario.NewBuilder(scenario.BuilderConfig{
			Seed: o.Seed,
			// 32.0.0.0/3 holds 8192 /16 AS blocks — room for the
			// ~6.4k member networks of a 1000× world. The default
			// paper pool (40.0.0.0/6) holds only 1024.
			ASPool:   netaddr.MustParsePrefix("32.0.0.0/3"),
			FirstASN: 400000,
		}),
		transits: make(map[string][]*scenario.AS),
		tNext:    make(map[string]int),
		tLoad:    make(map[string]int),
		members:  make(map[string][]memberRec),
	}
	g.w = g.b.World()

	counts := DerivedCounts(o)

	// Intercontinental core: two peered carriers, as in the paper.
	ic1 := g.b.AddAS(g.b.AllocASN(), "gen-ic-one", "GEN-IC-ONE", "fr", "paris")
	ic2 := g.b.AddAS(g.b.AllocASN(), "gen-ic-two", "GEN-IC-TWO", "uk", "london")
	g.b.SetPeer(ic1, ic2)
	g.b.Interconnect(ic1, ic2)
	g.b.SetICRef(ic1)

	// Pre-draw each exchange's region and membership so regional
	// transit capacity can be provisioned up front.
	type ixpPlan struct {
		region  int
		members int
	}
	plans := make([]ixpPlan, counts.IXPs)
	regionMembers := make([]int, len(regions))
	for i := range plans {
		ri := i % len(regions)
		m := int(math.Round(counts.MembersMean * (0.6 + 0.8*g.u())))
		if m < 3 {
			m = 3
		}
		plans[i] = ixpPlan{region: ri, members: m}
		regionMembers[ri] += m + 2 // members + content AS + churn headroom
	}
	for ri, r := range regions {
		n := (regionMembers[ri] + maxTransitCustomers - 1) / maxTransitCustomers
		if n < 1 {
			n = 1
		}
		for k := 0; k < n; k++ {
			p := r.places[g.pick(len(r.places))]
			t := g.b.AddAS(g.b.AllocASN(), fmt.Sprintf("gentr-%d-%d", ri, k),
				fmt.Sprintf("GEN-TRANSIT-%d-%d", ri, k), p.cc, p.city)
			g.b.Transit(t, ic1, nil, nil)
			g.b.Transit(t, ic2, nil, nil)
			g.transits[r.name] = append(g.transits[r.name], t)
		}
	}

	for i, plan := range plans {
		g.buildIXP(i, regions[plan.region], plan.members)
	}

	// Extra vantage points beyond one per exchange live inside member
	// networks, round-robin across fabrics so big and small exchanges
	// alike gain observer diversity.
	for k := counts.IXPs; k < counts.VPs; k++ {
		x := g.ixps[k%len(g.ixps)]
		ms := g.members[x.Name]
		if len(ms) == 0 {
			continue
		}
		m := ms[g.pick(len(ms))]
		g.addVP(m.as, x.Name)
	}

	g.w.Net.InvalidateRoutes()
	return g.w
}

// transitFor rotates a region's member networks across its transit
// ASes, spilling to the next transit once the current one has taken
// maxTransitCustomers customers.
func (g *gen) transitFor(region string) *scenario.AS {
	ts := g.transits[region]
	i := g.tNext[region]
	if g.tLoad[region] >= maxTransitCustomers && i+1 < len(ts) {
		i++
		g.tNext[region] = i
		g.tLoad[region] = 0
	}
	g.tLoad[region]++
	return ts[i]
}

func (g *gen) addVP(host *scenario.AS, ixp string) *scenario.VP {
	g.vpSeq++
	id := fmt.Sprintf("GVP%03d", g.vpSeq)
	monitor := fmt.Sprintf("%s-%03d", host.Name(), g.vpSeq)
	return g.b.AddVP(id, monitor, host, ixp)
}

func (g *gen) buildIXP(i int, region regionSpec, nMembers int) {
	p := region.places[g.pick(len(region.places))]
	name := fmt.Sprintf("GIX%02d", i)
	// Launch years skew post-2005, matching the substrate's growth
	// curve; sqrt biases the draw toward recent years.
	launched := 1996 + int(19*math.Sqrt(g.u()))
	x := g.b.AddIXP(name, p.cc, region.name, p.city, launched,
		g.b.AllocASN(), i%4 == 0)
	g.ixps = append(g.ixps, x)

	// The exchange's own content/management network hosts the primary
	// vantage point, like GIXA's VP1.
	content := g.b.AddAS(x.ASN, fmt.Sprintf("gix%02d", i), name, p.cc, p.city)
	g.b.JoinIXP(content, x, scenario.PortSpec{})
	g.b.Transit(content, g.transitFor(region.name), nil, nil)
	vp := g.addVP(content, name)

	// Planted congestion: one or two member ports whose diurnal
	// offered load exceeds port capacity. Half are transient (the
	// operator upgrades the port mid-campaign — a planted level
	// shift), half sustained through the whole window. Peak ratios
	// ≥ 1.2 additionally produce peak-hour loss regimes.
	nCong := 1
	if g.u() < 0.5 {
		nCong = 2
	}
	for c := 0; c < nCong; c++ {
		g.plantCongestion(x, region, vp, i, c)
	}

	// Clean members fill the rest of the fabric.
	for j := nCong; j < nMembers; j++ {
		if g.u() < 0.25 {
			if g.multihome(x, region) {
				continue
			}
		}
		m := g.b.AddAS(g.b.AllocASN(), fmt.Sprintf("g%02dm%02d", i, j),
			fmt.Sprintf("GEN-ORG-%02d-%02d", i, j), p.cc, p.city)
		g.b.Transit(m, g.transitFor(region.name), nil, nil)
		spec := scenario.PortSpec{}
		if g.u() < 0.3 {
			// Slow-ICMP noise band: the control-plane artifact the
			// detector must not mistake for congestion.
			spec.SlowICMPLevel = 6 + 40*g.u()
		}
		addr := g.b.JoinIXP(m, x, spec)
		g.members[x.Name] = append(g.members[x.Name], memberRec{as: m, addr: addr, ixp: x.Name})
	}

	// Membership churn: some fabrics see a join or a leave during the
	// campaign, exercising the engine's event path at scale.
	if g.u() < 0.35 {
		joinAt := simclock.Date(2016, time.April, 1).Add(
			time.Duration(g.u()*240*24) * time.Hour)
		late := g.b.AddAS(g.b.AllocASN(), fmt.Sprintf("g%02dlate", i),
			fmt.Sprintf("GEN-ORG-%02d-LATE", i), p.cc, p.city)
		g.b.Transit(late, g.transitFor(region.name), nil, nil)
		g.b.JoinEvent(late, x, joinAt, scenario.PortSpec{}, nil)
	}
	if g.u() < 0.2 {
		if ms := g.members[x.Name]; len(ms) > 0 {
			last := ms[len(ms)-1]
			if last.ixp == x.Name {
				leaveAt := simclock.Date(2016, time.June, 1).Add(
					time.Duration(g.u()*200*24) * time.Hour)
				g.b.LeaveEvent(last.as, x, leaveAt, "membership lapsed")
			}
		}
	}
}

// multihome reattaches an existing member from the same region to this
// fabric, reproducing the multi-IXP presence of the larger networks.
// Returns false if no eligible candidate exists (the caller then
// creates a fresh member instead).
func (g *gen) multihome(x *scenario.IXPInfo, region regionSpec) bool {
	// Collect candidates deterministically: members of earlier
	// same-region fabrics not already present on this one.
	var cands []memberRec
	for i, xi := range g.ixps {
		if xi.Name == x.Name || regions[i%len(regions)].name != region.name {
			continue
		}
		for _, m := range g.members[xi.Name] {
			if m.ixp != xi.Name { // already a multihomed copy
				continue
			}
			if _, present := x.Members[m.as.ASN()]; present {
				continue
			}
			cands = append(cands, m)
		}
	}
	if len(cands) == 0 {
		return false
	}
	m := cands[g.pick(len(cands))]
	addr := g.b.JoinIXP(m.as, x, scenario.PortSpec{})
	g.members[x.Name] = append(g.members[x.Name], memberRec{as: m.as, addr: addr, ixp: m.ixp})
	return true
}

// plantCongestion joins one undersized member port to the fabric and
// records its ground truth: diurnal overload on a port drawn from the
// capacity ladder, observed by the exchange's primary VP, annotated
// with the authored class and episode phases so detection recall is
// machine-checkable.
func (g *gen) plantCongestion(x *scenario.IXPInfo, region regionSpec, vp *scenario.VP, i, c int) {
	p := region.places[g.pick(len(region.places))]
	capBps := g.capDraw()
	drain := time.Duration(14+18*g.u()) * time.Millisecond
	baseRatio := 0.4 + 0.2*g.u()
	peakRatio := 1.1 + 0.25*g.u()
	load := trafficmodel.Diurnal{
		BaseBps:       baseRatio * capBps,
		PeakBps:       peakRatio * capBps,
		PeakHour:      11 + 8*g.u(),
		Width:         1.8 + 1.4*g.u(),
		WeekendFactor: 0.5 + 0.5*g.u(),
		DayJitterFrac: 0.1,
		NoiseFrac:     0.06,
		Seed:          g.o.Seed ^ (uint64(i)<<16 | uint64(c)<<8 | 0x9D),
	}
	port := &netsim.Pipe{
		Prop:  150 * time.Microsecond,
		Queue: scenario.QueueWithPackets(capBps, drain, load.Load()),
	}
	m := g.b.AddAS(g.b.AllocASN(), fmt.Sprintf("g%02dc%d", i, c),
		fmt.Sprintf("GEN-ORG-%02d-C%d", i, c), p.cc, p.city)
	g.b.Transit(m, g.transitFor(region.name), nil, nil)
	addr := g.b.JoinIXP(m, x, scenario.PortSpec{FromFabric: port})
	g.members[x.Name] = append(g.members[x.Name], memberRec{as: m, addr: addr, ixp: x.Name})

	target := prober.LinkTarget{Near: vp.NearAddr, Far: addr}
	caseName := fmt.Sprintf("%s-CONG%d", x.Name, c)
	vp.CaseLinks[caseName] = target

	ann := &interview.Annotation{
		VP: vp.ID, Target: target,
		NearName: x.Name, FarName: g.w.Graph.Name(m.ASN()),
		CongestedTruth: true, OperatorConfirmed: g.u() < 0.7,
	}
	if g.u() < 0.5 {
		// Transient: the port is upgraded mid-campaign — a planted
		// downward level shift the detector should close the episode
		// on.
		mitigate := simclock.Date(2016, time.August, 1).Add(
			time.Duration(g.u()*90*24) * time.Hour)
		q := port.Queue
		g.w.AddEvent(scenario.Event{
			At:   mitigate,
			Name: fmt.Sprintf("%s port upgraded", caseName),
			Apply: func(w *scenario.World) {
				q.SetCapacity(mitigate, 10*capBps)
			},
		})
		ann.Class = analysis.Transient
		ann.Phases = []interview.Phase{{
			Interval: simclock.Interval{Start: 0, End: mitigate},
			Cause:    interview.CausePortUnderprovisioned,
			Note:     "port upgraded mid-campaign",
		}}
	} else {
		ann.Class = analysis.Sustained
		ann.Phases = []interview.Phase{{
			Interval: simclock.Interval{Start: 0, End: simclock.LatencyEnd},
			Cause:    interview.CausePortUnderprovisioned,
			Note:     "undersized port, no upgrade in window",
		}}
	}
	g.w.Interviews.Add(ann)
}
