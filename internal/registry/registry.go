// Package registry implements the RIR "extended delegated statistics"
// file format (the ftp.afrinic.net/stats files bdrmap consumes in the
// paper) — both a writer used by the scenario generator to publish its
// ground-truth address plan, and a strict parser used by the inference
// side. Keeping the interchange in the real byte format means the
// bdrmap pipeline would run unmodified against genuine RIR data.
//
// Format reference (one record per line, pipe-separated):
//
//	registry|cc|type|start|value|date|status[|opaque-id]
//
// preceded by a version line and per-type summary lines:
//
//	2|afrinic|20170306|3|19850701|20170306|+00:00
//	afrinic|*|ipv4|*|2|summary
//	afrinic|*|asn|*|1|summary
package registry

import (
	"bufio"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"time"

	"afrixp/internal/asrel"
	"afrixp/internal/netaddr"
)

// Delegation is one delegated resource: either an IPv4 block or an ASN.
type Delegation struct {
	Registry string // e.g. "afrinic"
	CC       string // ISO country code, e.g. "GH"
	Type     string // "ipv4" or "asn"

	// IPv4 delegations
	Prefix netaddr.Prefix

	// ASN delegations
	ASN asrel.ASN

	Date   time.Time // delegation date
	Status string    // "allocated" or "assigned"
	Opaque string    // opaque org id, shared by sibling resources
}

// File is a parsed delegation file.
type File struct {
	Registry    string
	Serial      string
	Delegations []Delegation
}

// Write serializes the file in the extended delegated format. IPv4
// delegations whose size is not a power of two are rejected (the
// simulator always delegates CIDR-aligned blocks).
func Write(w io.Writer, f *File) error {
	bw := bufio.NewWriter(w)
	var v4, asn int
	for _, d := range f.Delegations {
		switch d.Type {
		case "ipv4":
			v4++
		case "asn":
			asn++
		default:
			return fmt.Errorf("registry: unknown delegation type %q", d.Type)
		}
	}
	serial := f.Serial
	if serial == "" {
		serial = "20170306"
	}
	fmt.Fprintf(bw, "2|%s|%s|%d|19850701|%s|+00:00\n",
		f.Registry, serial, v4+asn, serial)
	fmt.Fprintf(bw, "%s|*|ipv4|*|%d|summary\n", f.Registry, v4)
	fmt.Fprintf(bw, "%s|*|asn|*|%d|summary\n", f.Registry, asn)
	for _, d := range f.Delegations {
		date := d.Date.Format("20060102")
		switch d.Type {
		case "ipv4":
			n := d.Prefix.NumAddrs()
			fmt.Fprintf(bw, "%s|%s|ipv4|%s|%d|%s|%s|%s\n",
				f.Registry, d.CC, d.Prefix.Addr, n, date, d.Status, d.Opaque)
		case "asn":
			fmt.Fprintf(bw, "%s|%s|asn|%d|1|%s|%s|%s\n",
				f.Registry, d.CC, uint32(d.ASN), date, d.Status, d.Opaque)
		}
	}
	return bw.Flush()
}

// Parse reads an extended delegated file, validating record syntax.
// Summary and version lines are checked for consistency with the
// records actually present.
func Parse(r io.Reader) (*File, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	f := &File{}
	lineNo := 0
	declared := map[string]int{}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "|")
		// Version line: 2|registry|serial|records|startdate|enddate|UTC
		if fields[0] == "2" || fields[0] == "2.3" {
			if len(fields) < 7 {
				return nil, fmt.Errorf("registry: line %d: short version line", lineNo)
			}
			f.Registry = fields[1]
			f.Serial = fields[2]
			continue
		}
		if len(fields) >= 6 && fields[5] == "summary" {
			n, err := strconv.Atoi(fields[4])
			if err != nil {
				return nil, fmt.Errorf("registry: line %d: bad summary count", lineNo)
			}
			declared[fields[2]] = n
			continue
		}
		if len(fields) < 7 {
			return nil, fmt.Errorf("registry: line %d: %d fields", lineNo, len(fields))
		}
		d := Delegation{Registry: fields[0], CC: fields[1], Type: fields[2], Status: fields[6]}
		if len(fields) >= 8 {
			d.Opaque = fields[7]
		}
		if fields[5] != "" {
			date, err := time.Parse("20060102", fields[5])
			if err != nil {
				return nil, fmt.Errorf("registry: line %d: bad date %q", lineNo, fields[5])
			}
			d.Date = date
		}
		switch d.Type {
		case "ipv4":
			start, err := netaddr.ParseAddr(fields[3])
			if err != nil {
				return nil, fmt.Errorf("registry: line %d: %v", lineNo, err)
			}
			count, err := strconv.ParseUint(fields[4], 10, 64)
			if err != nil || count == 0 || count&(count-1) != 0 {
				return nil, fmt.Errorf("registry: line %d: bad address count %q", lineNo, fields[4])
			}
			prefixBits := 32 - (bits.Len64(count) - 1)
			p := netaddr.PrefixFrom(start, prefixBits)
			if p.Addr != start {
				return nil, fmt.Errorf("registry: line %d: block %s/%d not CIDR-aligned", lineNo, start, count)
			}
			d.Prefix = p
		case "asn":
			v, err := strconv.ParseUint(fields[3], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("registry: line %d: bad ASN %q", lineNo, fields[3])
			}
			d.ASN = asrel.ASN(v)
		default:
			return nil, fmt.Errorf("registry: line %d: unknown type %q", lineNo, d.Type)
		}
		f.Delegations = append(f.Delegations, d)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for typ, n := range declared {
		got := 0
		for _, d := range f.Delegations {
			if d.Type == typ {
				got++
			}
		}
		if got != n {
			return nil, fmt.Errorf("registry: summary declares %d %s records, file has %d", n, typ, got)
		}
	}
	return f, nil
}

// Index answers "which country / org was this address delegated to",
// the lookups bdrmap's ownership heuristics make.
type Index struct {
	v4   []Delegation // sorted by prefix address
	byAS map[asrel.ASN]Delegation
}

// NewIndex builds an index over one or more parsed files.
func NewIndex(files ...*File) *Index {
	ix := &Index{byAS: make(map[asrel.ASN]Delegation)}
	for _, f := range files {
		for _, d := range f.Delegations {
			switch d.Type {
			case "ipv4":
				ix.v4 = append(ix.v4, d)
			case "asn":
				ix.byAS[d.ASN] = d
			}
		}
	}
	sort.Slice(ix.v4, func(i, j int) bool {
		if ix.v4[i].Prefix.Addr != ix.v4[j].Prefix.Addr {
			return ix.v4[i].Prefix.Addr < ix.v4[j].Prefix.Addr
		}
		return ix.v4[i].Prefix.Bits < ix.v4[j].Prefix.Bits
	})
	return ix
}

// LookupAddr returns the most specific delegation covering addr.
func (ix *Index) LookupAddr(addr netaddr.Addr) (Delegation, bool) {
	// Binary search for the last delegation starting at or before addr,
	// then walk back while ranges still cover addr, keeping the most
	// specific. Delegations rarely nest more than a few levels.
	i := sort.Search(len(ix.v4), func(i int) bool { return ix.v4[i].Prefix.Addr > addr })
	best := Delegation{}
	bestBits := -1
	for j := i - 1; j >= 0; j-- {
		p := ix.v4[j].Prefix
		if p.Contains(addr) && p.Bits > bestBits {
			best, bestBits = ix.v4[j], p.Bits
		}
		// Once we are more than a /8 below addr we can stop scanning.
		if addr-p.Addr > 1<<24 {
			break
		}
	}
	return best, bestBits >= 0
}

// LookupASN returns the delegation record for an ASN.
func (ix *Index) LookupASN(a asrel.ASN) (Delegation, bool) {
	d, ok := ix.byAS[a]
	return d, ok
}

// ASNForOrg returns the lowest ASN delegated to an opaque org id —
// the org→ASN direction of the mapping, used to attribute delegated
// but unannounced address space to a network.
func (ix *Index) ASNForOrg(opaque string) (asrel.ASN, bool) {
	best, found := asrel.ASN(0), false
	for asn, rec := range ix.byAS {
		if rec.Opaque == opaque && (!found || asn < best) {
			best, found = asn, true
		}
	}
	return best, found
}

// SiblingASNs returns all ASNs sharing the opaque org id of a — the
// seed for the paper's semi-manual sibling lists.
func (ix *Index) SiblingASNs(a asrel.ASN) []asrel.ASN {
	d, ok := ix.byAS[a]
	if !ok || d.Opaque == "" {
		return nil
	}
	var out []asrel.ASN
	for asn, rec := range ix.byAS {
		if asn != a && rec.Opaque == d.Opaque {
			out = append(out, asn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
