package registry

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"afrixp/internal/asrel"
	"afrixp/internal/netaddr"
)

func sample() *File {
	d := time.Date(2005, 1, 10, 0, 0, 0, 0, time.UTC)
	return &File{
		Registry: "afrinic",
		Serial:   "20170306",
		Delegations: []Delegation{
			{Registry: "afrinic", CC: "GH", Type: "ipv4",
				Prefix: netaddr.MustParsePrefix("196.49.0.0/16"), Date: d,
				Status: "allocated", Opaque: "ORG-GIXA"},
			{Registry: "afrinic", CC: "KE", Type: "ipv4",
				Prefix: netaddr.MustParsePrefix("41.242.0.0/20"), Date: d,
				Status: "assigned", Opaque: "ORG-LIQUID"},
			{Registry: "afrinic", CC: "GH", Type: "asn", ASN: 30997, Date: d,
				Status: "allocated", Opaque: "ORG-GIXA"},
			{Registry: "afrinic", CC: "KE", Type: "asn", ASN: 30844, Date: d,
				Status: "allocated", Opaque: "ORG-LIQUID"},
			{Registry: "afrinic", CC: "KE", Type: "asn", ASN: 4558, Date: d,
				Status: "allocated", Opaque: "ORG-LIQUID"},
		},
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sample()
	if got.Registry != "afrinic" || got.Serial != "20170306" {
		t.Fatalf("header: %+v", got)
	}
	if len(got.Delegations) != len(want.Delegations) {
		t.Fatalf("got %d delegations", len(got.Delegations))
	}
	for i, d := range got.Delegations {
		w := want.Delegations[i]
		if d.CC != w.CC || d.Type != w.Type || d.Prefix != w.Prefix ||
			d.ASN != w.ASN || d.Status != w.Status || d.Opaque != w.Opaque ||
			!d.Date.Equal(w.Date) {
			t.Errorf("delegation %d: %+v != %+v", i, d, w)
		}
	}
}

func TestWriteFormatShape(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.HasPrefix(lines[0], "2|afrinic|20170306|5|") {
		t.Fatalf("version line: %q", lines[0])
	}
	if lines[1] != "afrinic|*|ipv4|*|2|summary" {
		t.Fatalf("ipv4 summary: %q", lines[1])
	}
	if lines[2] != "afrinic|*|asn|*|3|summary" {
		t.Fatalf("asn summary: %q", lines[2])
	}
	if lines[3] != "afrinic|GH|ipv4|196.49.0.0|65536|20050110|allocated|ORG-GIXA" {
		t.Fatalf("ipv4 record: %q", lines[3])
	}
	if lines[5] != "afrinic|GH|asn|30997|1|20050110|allocated|ORG-GIXA" {
		t.Fatalf("asn record: %q", lines[5])
	}
}

func TestParseRejectsBadRecords(t *testing.T) {
	cases := map[string]string{
		"non-power-of-two": "afrinic|GH|ipv4|196.49.0.0|100|20050110|allocated",
		"unaligned":        "afrinic|GH|ipv4|196.49.0.1|256|20050110|allocated",
		"bad addr":         "afrinic|GH|ipv4|999.49.0.0|256|20050110|allocated",
		"bad asn":          "afrinic|GH|asn|notanasn|1|20050110|allocated",
		"bad type":         "afrinic|GH|ipv6|::1|1|20050110|allocated",
		"bad date":         "afrinic|GH|asn|1|1|2005|allocated",
		"short line":       "afrinic|GH|ipv4",
	}
	for name, line := range cases {
		if _, err := Parse(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("%s: expected parse error for %q", name, line)
		}
	}
}

func TestParseSummaryMismatch(t *testing.T) {
	in := "2|afrinic|20170306|1|19850701|20170306|+00:00\n" +
		"afrinic|*|ipv4|*|2|summary\n" +
		"afrinic|GH|ipv4|196.49.0.0|256|20050110|allocated\n"
	if _, err := Parse(strings.NewReader(in)); err == nil {
		t.Fatal("summary mismatch must be rejected")
	}
}

func TestParseSkipsCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\nafrinic|GH|asn|30997|1|20050110|allocated\n"
	f, err := Parse(strings.NewReader(in))
	if err != nil || len(f.Delegations) != 1 {
		t.Fatalf("got %v, err %v", f, err)
	}
}

func TestParseEmptyDate(t *testing.T) {
	in := "afrinic|ZZ|asn|100|1||reserved\n"
	f, err := Parse(strings.NewReader(in))
	if err != nil || !f.Delegations[0].Date.IsZero() {
		t.Fatalf("empty date should parse as zero time: %v err %v", f, err)
	}
}

func TestIndexLookupAddr(t *testing.T) {
	ix := NewIndex(sample())
	d, ok := ix.LookupAddr(netaddr.MustParseAddr("196.49.200.7"))
	if !ok || d.CC != "GH" {
		t.Fatalf("LookupAddr: %+v %v", d, ok)
	}
	if _, ok := ix.LookupAddr(netaddr.MustParseAddr("8.8.8.8")); ok {
		t.Fatal("undelegated space must miss")
	}
}

func TestIndexMostSpecificWins(t *testing.T) {
	f := sample()
	f.Delegations = append(f.Delegations, Delegation{
		Registry: "afrinic", CC: "NG", Type: "ipv4",
		Prefix: netaddr.MustParsePrefix("196.49.128.0/17"),
		Status: "assigned", Opaque: "ORG-SUB"})
	ix := NewIndex(f)
	d, ok := ix.LookupAddr(netaddr.MustParseAddr("196.49.200.1"))
	if !ok || d.CC != "NG" {
		t.Fatalf("most specific should win: %+v", d)
	}
	d, ok = ix.LookupAddr(netaddr.MustParseAddr("196.49.1.1"))
	if !ok || d.CC != "GH" {
		t.Fatalf("outside the /17 the /16 applies: %+v", d)
	}
}

func TestIndexLookupASNAndSiblings(t *testing.T) {
	ix := NewIndex(sample())
	d, ok := ix.LookupASN(30844)
	if !ok || d.Opaque != "ORG-LIQUID" {
		t.Fatalf("LookupASN: %+v", d)
	}
	sibs := ix.SiblingASNs(30844)
	if len(sibs) != 1 || sibs[0] != asrel.ASN(4558) {
		t.Fatalf("SiblingASNs = %v", sibs)
	}
	if got := ix.SiblingASNs(30997); len(got) != 0 {
		t.Fatalf("lone org should have no siblings, got %v", got)
	}
	if _, ok := ix.LookupASN(99999); ok {
		t.Fatal("unknown ASN must miss")
	}
}

func TestWriteRejectsUnknownType(t *testing.T) {
	f := &File{Registry: "afrinic", Delegations: []Delegation{{Type: "ipv6"}}}
	if err := Write(&bytes.Buffer{}, f); err == nil {
		t.Fatal("unknown type must be rejected")
	}
}
