// Package observatory is the campaign engine's live window: a
// streaming congestion-detection service an IXP NOC could sit on. The
// engine feeds it at batch barriers (strictly read-side — collected
// series flow in, nothing flows back); per-link streaming detectors
// (analysis.StreamDetector) walk the clear → suspected → congested
// ladder as virtual time advances; and an HTTP API (server.go) serves
// the link table, per-link detail, a since-cursor alert log, and an
// SSE/long-poll live stream through a bounded broadcast hub (hub.go).
//
// Two invariants carry over from the engine (DESIGN.md §16):
//
//   - The alert log is a pure function of the collected sample
//     sequence. Slots are fed in finalized-slot order with alert
//     timestamps taken from slot virtual times, and each barrier's
//     emissions are ordered by (slot time, link id) — so the log is
//     bit-identical across Workers × BatchSteps × Shards.
//   - End-of-campaign verdicts come from the same batch sweep
//     (analysis.AnalyzeLinkSweep) over the same frozen series the
//     engine analyzes, so they are bit-identical to the engine's by
//     construction; the streaming state steers alert timing only.
package observatory

import (
	"sync"

	"afrixp/internal/analysis"
	"afrixp/internal/prober"
	"afrixp/internal/simclock"
)

// Config tunes a Service.
type Config struct {
	// Detector tunes the per-link streaming detectors.
	Detector analysis.StreamConfig
	// AlertCap bounds the global alert ring (older alerts are dropped;
	// /alerts reports the truncation point). Default 65536.
	AlertCap int
	// LinkAlertCap bounds the per-link recent-alert ring surfaced by
	// /links/{id}. Default 32.
	LinkAlertCap int
	// SubscriberBuf is each SSE subscriber's channel depth; a consumer
	// slower than the barrier cadence loses batches (counted per
	// subscriber), never blocks the engine. Default 64.
	SubscriberBuf int
	// Thresholds is the sweep used by Finalize. Default the engine's
	// (5/10/15/20 ms).
	Thresholds []float64
}

func (c Config) withDefaults() Config {
	if c.AlertCap <= 0 {
		c.AlertCap = 65536
	}
	if c.LinkAlertCap <= 0 {
		c.LinkAlertCap = 32
	}
	if c.SubscriberBuf <= 0 {
		c.SubscriberBuf = 64
	}
	if len(c.Thresholds) == 0 {
		c.Thresholds = []float64{5, 10, 15, 20}
	}
	return c
}

// Alert is one timestamped link state transition — the unit of the
// /alerts log and the /stream events. AtNs is virtual time (ns since
// the simulation epoch), not wall time.
type Alert struct {
	Seq         uint64  `json:"seq"`
	Link        string  `json:"link"`
	AtNs        int64   `json:"at_ns"`
	At          string  `json:"at"`
	From        string  `json:"from"`
	To          string  `json:"to"`
	ThresholdMs float64 `json:"threshold_ms"`
	MagnitudeMs float64 `json:"magnitude_ms"`
	Evidence    float64 `json:"evidence"`
}

// linkState is one watched link.
type linkState struct {
	id       string
	vp       string
	caseName string
	target   prober.LinkTarget
	asym     bool
	col      *analysis.Collector
	det      *analysis.StreamDetector
	cursor   int // finalized slots fed so far
	recent   []Alert
	recentN  uint64
	verdicts map[float64]analysis.Verdict // set by Finalize
}

// Service is the streaming observatory. All methods are safe for
// concurrent use; the engine-facing feed path (Watch, ObserveBarrier,
// Finalize) is allocation-free in the steady state, which the
// zero-alloc campaign test pins with a service attached.
type Service struct {
	cfg Config

	mu      sync.RWMutex
	links   map[string]*linkState
	order   []*linkState // sorted by id — the deterministic feed order
	alerts  []Alert      // global ring, cap cfg.AlertCap
	alertN  uint64       // total alerts ever; Seq of the newest
	barrier simclock.Time
	fed     uint64 // total finalized slots fed across links
	final   bool

	// Feed scratch, reused across links and barriers.
	near, far []float64
	pend      []Alert

	hub *hub
}

// New builds a service.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	return &Service{
		cfg:    cfg,
		links:  make(map[string]*linkState),
		alerts: make([]Alert, 0, cfg.AlertCap),
		near:   make([]float64, 0, 256),
		far:    make([]float64, 0, 256),
		pend:   make([]Alert, 0, 64),
		hub:    newHub(cfg.SubscriberBuf),
	}
}

// LinkID names a watched link in the API: "vp~near~far". All three
// components are URL-safe (VP ids and addresses are plain ASCII), so
// the id needs no escaping in /links/{id}.
func LinkID(vp string, target prober.LinkTarget) string {
	return vp + "~" + target.Near.String() + "~" + target.Far.String()
}

// Watch registers a link's collector with the service. Idempotent by
// (vp, target); call again after discovery refreshes to pick up new
// links. The asymmetric flag carries the record-route verdict that
// invalidates congestion attribution (mirroring the batch pipeline).
func (s *Service) Watch(vp string, target prober.LinkTarget, col *analysis.Collector, caseName string, asymmetric bool) {
	id := LinkID(vp, target)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.links[id]; ok {
		return
	}
	ls := &linkState{
		id:       id,
		vp:       vp,
		caseName: caseName,
		target:   target,
		asym:     asymmetric,
		col:      col,
		det:      analysis.NewStreamDetector(s.cfg.Detector),
		recent:   make([]Alert, 0, s.cfg.LinkAlertCap),
	}
	s.links[id] = ls
	// Insert keeping s.order sorted by id: the feed (and with it the
	// alert log) must not depend on registration order, which can vary
	// with discovery grouping.
	i := len(s.order)
	for i > 0 && s.order[i-1].id > id {
		i--
	}
	s.order = append(s.order, nil)
	copy(s.order[i+1:], s.order[i:])
	s.order[i] = ls
}

// ObserveBarrier advances every link's streaming detector to the
// finalized-slot frontier at virtual time t. The engine calls it at
// batch barriers (when the worker pool is provably idle) and once
// after the campaign loop with t = campaign end to drain the tail.
// Feeding is cursor-based and idempotent per slot, so the cadence of
// calls — which depends on BatchSteps — cannot affect the alert log.
// Allocation-free in the steady state.
func (s *Service) ObserveBarrier(t simclock.Time) {
	s.mu.Lock()
	if t.After(s.barrier) {
		s.barrier = t
	}
	pend := s.pend[:0]
	for _, ls := range s.order {
		n := ls.col.FinalizedBefore(t)
		if n <= ls.cursor {
			continue
		}
		cnt := n - ls.cursor
		near, far := s.feedScratch(cnt)
		ls.col.CopyAgg(ls.cursor, near, far)
		start, step, _ := ls.col.AggSpan()
		for i := 0; i < cnt; i++ {
			at := start.Add(step * simclock.Duration(ls.cursor+i))
			if tr, ok := ls.det.Observe(at, near[i], far[i]); ok {
				pend = append(pend, Alert{
					Link:        ls.id,
					AtNs:        int64(tr.At),
					From:        tr.From.String(),
					To:          tr.To.String(),
					ThresholdMs: tr.ThresholdMs,
					MagnitudeMs: tr.MagnitudeMs,
					Evidence:    tr.Evidence,
				})
			}
		}
		ls.cursor = n
		s.fed += uint64(cnt)
	}
	if len(pend) > 0 {
		// Deterministic order within the barrier: (slot time, link id).
		// Barriers partition slot times into disjoint ascending ranges,
		// so the concatenation across barriers — the alert log — is the
		// global (time, link) order for any BatchSteps.
		for i := 1; i < len(pend); i++ {
			for j := i; j > 0 && alertBefore(pend[j], pend[j-1]); j-- {
				pend[j], pend[j-1] = pend[j-1], pend[j]
			}
		}
		// The human-readable At is filled at serve time (fillAt): string
		// formatting here would put an allocation on the barrier path.
		for i := range pend {
			s.alertN++
			pend[i].Seq = s.alertN
			s.appendAlert(pend[i])
		}
	}
	s.pend = pend[:0]
	s.publishLocked(t, len(pend))
	s.mu.Unlock()
	s.hub.wake()
}

func alertBefore(a, b Alert) bool {
	if a.AtNs != b.AtNs {
		return a.AtNs < b.AtNs
	}
	return a.Link < b.Link
}

// feedScratch returns cnt-length copy buffers, growing geometrically
// on the rare barrier whose span outgrows them.
func (s *Service) feedScratch(cnt int) (near, far []float64) {
	if cap(s.near) < cnt {
		grow := 2 * cap(s.near)
		if grow < cnt {
			grow = cnt
		}
		s.near = make([]float64, 0, grow)
		s.far = make([]float64, 0, grow)
	}
	return s.near[:cnt], s.far[:cnt]
}

// appendAlert commits one sequenced alert to the global and per-link
// rings. Ring positions follow from Seq, so no shifting ever happens.
func (s *Service) appendAlert(a Alert) {
	if len(s.alerts) < cap(s.alerts) {
		s.alerts = append(s.alerts, a)
	} else {
		s.alerts[int((a.Seq-1)%uint64(cap(s.alerts)))] = a
	}
	ls := s.links[a.Link]
	if cap(ls.recent) == 0 {
		return
	}
	if len(ls.recent) < cap(ls.recent) {
		ls.recent = append(ls.recent, a)
	} else {
		ls.recent[int(ls.recentN%uint64(cap(ls.recent)))] = a
	}
	ls.recentN++
}

// Finalize runs the batch sweep over every watched link's frozen
// series — the same pure function over the same input as the engine's
// Reanalyze, so the verdicts it stores are bit-identical to the
// engine's (the DESIGN.md §16 equivalence). The engine calls it after
// its own analysis phase, when collectors are sealed.
func (s *Service) Finalize(thresholds []float64) {
	if len(thresholds) == 0 {
		thresholds = s.cfg.Thresholds
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sw := analysis.NewSweeper()
	for _, ls := range s.order {
		verdicts := sw.AnalyzeLinkSweep(ls.col.Series(), analysis.DefaultConfig(), thresholds)
		ls.verdicts = make(map[float64]analysis.Verdict, len(thresholds))
		for k, thr := range thresholds {
			v := verdicts[k]
			if ls.asym {
				v.Symmetric = false
				v.Congested = false
			}
			ls.verdicts[thr] = v
		}
	}
	s.final = true
}

// Barrier is the latest virtual time the service has been fed to.
func (s *Service) Barrier() simclock.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.barrier
}

// FedSlots is the total number of finalized aggregated slots fed
// across all links — the feed path's non-vacuousness counter.
func (s *Service) FedSlots() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.fed
}

// TotalAlerts is the number of alerts ever emitted (the newest Seq).
func (s *Service) TotalAlerts() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.alertN
}

// NumLinks is the number of watched links.
func (s *Service) NumLinks() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.order)
}

// AlertsSince appends to dst the alerts with Seq > since that are
// still in the ring, in sequence order, and returns the slice plus the
// oldest retained sequence number (alerts older than it are gone).
func (s *Service) AlertsSince(since uint64, limit int, dst []Alert) ([]Alert, uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	base := s.alertN - uint64(len(s.alerts)) // alerts held: (base, alertN]
	from := since
	if from < base {
		from = base
	}
	for seq := from + 1; seq <= s.alertN; seq++ {
		if limit > 0 && len(dst) >= limit {
			break
		}
		dst = append(dst, s.alerts[int((seq-1)%uint64(cap(s.alerts)))])
	}
	return dst, base + 1
}

// LinkVerdicts returns a watched link's finalized per-threshold batch
// verdicts (nil before Finalize). The map is a copy.
func (s *Service) LinkVerdicts(vp string, target prober.LinkTarget) map[float64]analysis.Verdict {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ls := s.links[LinkID(vp, target)]
	if ls == nil || ls.verdicts == nil {
		return nil
	}
	out := make(map[float64]analysis.Verdict, len(ls.verdicts))
	for k, v := range ls.verdicts {
		out[k] = v
	}
	return out
}

// LinkState returns a watched link's current streaming state name
// ("clear", "suspected", "congested"), or "" if unknown.
func (s *Service) LinkState(vp string, target prober.LinkTarget) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ls := s.links[LinkID(vp, target)]
	if ls == nil {
		return ""
	}
	return ls.det.State().String()
}
