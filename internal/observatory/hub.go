package observatory

import (
	"sync"
	"sync/atomic"
)

// hubMsg is one barrier-batched update: a pre-encoded SSE payload
// shared by every subscriber (encoded once per barrier, never per
// subscriber).
type hubMsg struct {
	seq     uint64
	payload []byte
}

// subscriber is one attached /stream consumer. Its channel is bounded:
// a consumer slower than the barrier cadence loses whole batches —
// counted in dropped, never blocking the publisher. Memory per
// subscriber is therefore bounded by SubscriberBuf payload references
// regardless of how far behind it falls.
type subscriber struct {
	ch      chan hubMsg
	dropped atomic.Uint64
}

// hub is the bounded broadcast fan-out between the engine's barrier
// feed and the HTTP side: SSE subscribers get pre-encoded payloads
// over bounded channels; long-pollers wait on a broadcast channel
// closed at each barrier. With no subscribers and no waiters every
// hub operation is a few atomic/mutex instructions and zero
// allocations — the feed path's steady-state guarantee.
type hub struct {
	buf   int
	nsubs atomic.Int64

	mu      sync.Mutex
	subs    map[*subscriber]struct{}
	notify  chan struct{}
	waiters int
}

func newHub(buf int) *hub {
	return &hub{
		buf:    buf,
		subs:   make(map[*subscriber]struct{}),
		notify: make(chan struct{}),
	}
}

// active is the current subscriber count — the publisher's fast path
// gate: no subscribers, no payload encoding.
func (h *hub) active() int { return int(h.nsubs.Load()) }

func (h *hub) subscribe() *subscriber {
	sub := &subscriber{ch: make(chan hubMsg, h.buf)}
	h.mu.Lock()
	h.subs[sub] = struct{}{}
	h.mu.Unlock()
	h.nsubs.Add(1)
	return sub
}

func (h *hub) unsubscribe(sub *subscriber) {
	h.mu.Lock()
	delete(h.subs, sub)
	h.mu.Unlock()
	h.nsubs.Add(-1)
}

// publish fans one payload out to every subscriber, non-blocking: a
// full channel counts a drop for that subscriber and moves on.
func (h *hub) publish(seq uint64, payload []byte) {
	h.mu.Lock()
	for sub := range h.subs {
		select {
		case sub.ch <- hubMsg{seq: seq, payload: payload}:
		default:
			sub.dropped.Add(1)
		}
	}
	h.wakeLocked()
	h.mu.Unlock()
}

// wake releases long-poll waiters (if any) without publishing a
// payload — called at every barrier so /alerts?wait=1 sees progress
// even when no alert fired. Allocation-free when no one is waiting.
func (h *hub) wake() {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.wakeLocked()
	h.mu.Unlock()
}

func (h *hub) wakeLocked() {
	if h.waiters > 0 {
		close(h.notify)
		h.notify = make(chan struct{})
		h.waiters = 0
	}
}

// waitCh registers the caller as a long-poll waiter and returns the
// channel the next barrier will close.
func (h *hub) waitCh() <-chan struct{} {
	h.mu.Lock()
	h.waiters++
	ch := h.notify
	h.mu.Unlock()
	return ch
}
