package observatory_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"afrixp/internal/experiments"
	"afrixp/internal/observatory"
	"afrixp/internal/scenario"
	"afrixp/internal/simclock"
)

// serveCampaign runs the 7-day paper-world case study once with a
// service attached and hands back the service — the fixture every
// endpoint test below reads from. Shared across tests via sync.Once:
// the campaign is the expensive part, the HTTP reads are free.
var (
	fixtureOnce sync.Once
	fixtureSvc  *observatory.Service
	fixtureEnd  simclock.Time
)

func serveCampaign(t *testing.T) *observatory.Service {
	t.Helper()
	fixtureOnce.Do(func() {
		svc := observatory.New(observatory.Config{})
		end := simclock.Date(2016, time.July, 27)
		experiments.Run(experiments.Config{
			Opts: scenario.Options{Seed: 5, Scale: 0.1},
			Campaign: simclock.Interval{
				Start: simclock.Date(2016, time.July, 20),
				End:   end,
			},
			Workers:     2,
			BatchSteps:  4096,
			Observatory: svc,
		})
		fixtureSvc = svc
		fixtureEnd = end
	})
	if fixtureSvc == nil {
		t.Fatal("campaign fixture failed to build")
	}
	return fixtureSvc
}

func getJSON(t *testing.T, h http.Handler, url string) (int, map[string]any) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	var body map[string]any
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("GET %s: invalid JSON: %v", url, err)
		}
	}
	return rec.Code, body
}

func TestLinksEndpointPaging(t *testing.T) {
	svc := serveCampaign(t)
	h := svc.Handler()

	code, body := getJSON(t, h, "/links")
	if code != http.StatusOK {
		t.Fatalf("GET /links: status %d", code)
	}
	if body["schema"] != observatory.Schema {
		t.Fatalf("schema = %v, want %v", body["schema"], observatory.Schema)
	}
	total := int(body["total"].(float64))
	if total == 0 {
		t.Fatal("no links watched; the endpoint test is vacuous")
	}
	if body["barrier_ns"].(float64) != float64(fixtureEnd) {
		t.Errorf("barrier_ns = %v, want campaign end %d", body["barrier_ns"], int64(fixtureEnd))
	}
	rows := body["links"].([]any)
	if len(rows) != total {
		t.Fatalf("default page returned %d rows, total %d", len(rows), total)
	}
	for _, r := range rows {
		row := r.(map[string]any)
		for _, key := range []string{"id", "vp", "target", "state", "evidence", "magnitude_ms", "slots"} {
			if _, ok := row[key]; !ok {
				t.Fatalf("links row missing %q: %v", key, row)
			}
		}
		switch row["state"] {
		case "clear", "suspected", "congested":
		default:
			t.Fatalf("row state %q is not a detector state", row["state"])
		}
	}

	// One-per-page walk must visit every link exactly once, in id order.
	var walked []string
	for page := 1; ; page++ {
		code, body := getJSON(t, h, fmt.Sprintf("/links?page=%d&per=1", page))
		if code != http.StatusOK {
			t.Fatalf("page %d: status %d", page, code)
		}
		if int(body["pages"].(float64)) != total {
			t.Fatalf("per=1 pages = %v, want %d", body["pages"], total)
		}
		rows := body["links"].([]any)
		if len(rows) == 0 {
			break
		}
		walked = append(walked, rows[0].(map[string]any)["id"].(string))
	}
	if len(walked) != total {
		t.Fatalf("paged walk visited %d links, total %d", len(walked), total)
	}
	for i := 1; i < len(walked); i++ {
		if walked[i-1] >= walked[i] {
			t.Fatalf("paged ids out of order: %q before %q", walked[i-1], walked[i])
		}
	}
}

func TestLinkDetailEndpoint(t *testing.T) {
	svc := serveCampaign(t)
	h := svc.Handler()

	_, body := getJSON(t, h, "/links")
	rows := body["links"].([]any)
	id := rows[0].(map[string]any)["id"].(string)

	code, detail := getJSON(t, h, "/links/"+id)
	if code != http.StatusOK {
		t.Fatalf("GET /links/%s: status %d", id, code)
	}
	if detail["schema"] != observatory.Schema {
		t.Errorf("schema = %v", detail["schema"])
	}
	link := detail["link"].(map[string]any)
	if link["id"] != id {
		t.Errorf("detail id = %v, want %v", link["id"], id)
	}
	diurnal := detail["diurnal"].(map[string]any)
	for _, key := range []string{"diurnal", "amplitude_ms", "consistency", "peak_hour", "days_evaluated"} {
		if _, ok := diurnal[key]; !ok {
			t.Errorf("diurnal snapshot missing %q", key)
		}
	}
	if prof := detail["profile_ms"].([]any); len(prof) == 0 {
		t.Error("empty day-folded profile after a 7-day campaign")
	}
	// The campaign ran to completion, so the batch verdict sweep must be
	// attached, one entry per threshold with the full decision chain.
	verdicts, ok := detail["verdicts"].(map[string]any)
	if !ok || len(verdicts) == 0 {
		t.Fatalf("no finalized verdicts on %s after campaign end", id)
	}
	for thr, v := range verdicts {
		vm := v.(map[string]any)
		for _, key := range []string{"flagged", "near_flat", "diurnal", "symmetric", "congested", "class"} {
			if _, ok := vm[key]; !ok {
				t.Fatalf("verdict %s missing %q", thr, key)
			}
		}
	}

	if code, _ := getJSON(t, h, "/links/no~such~link"); code != http.StatusNotFound {
		t.Errorf("unknown link id: status %d, want 404", code)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/links", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /links: status %d, want 405", rec.Code)
	}
}

func TestAlertsEndpointCursor(t *testing.T) {
	svc := serveCampaign(t)
	h := svc.Handler()

	code, body := getJSON(t, h, "/alerts")
	if code != http.StatusOK {
		t.Fatalf("GET /alerts: status %d", code)
	}
	total := uint64(body["total"].(float64))
	if total == 0 {
		t.Fatal("campaign over the congested case-study window emitted no alerts")
	}
	alerts := body["alerts"].([]any)
	if uint64(len(alerts)) != total {
		t.Fatalf("since=0 returned %d alerts, total %d", len(alerts), total)
	}
	for i, a := range alerts {
		am := a.(map[string]any)
		if uint64(am["seq"].(float64)) != uint64(i+1) {
			t.Fatalf("alert %d has seq %v; the log must be gapless from 1", i, am["seq"])
		}
		if am["at"] == "" {
			t.Fatalf("alert %d has no rendered timestamp", i)
		}
		if am["to"] == am["from"] {
			t.Fatalf("alert %d is not a transition: %v", i, am)
		}
	}
	next := uint64(body["next"].(float64))
	if next != total {
		t.Fatalf("next cursor = %d, want newest seq %d", next, total)
	}

	// Resuming from the cursor returns nothing new; a mid-log cursor
	// returns exactly the tail; limit caps the page.
	if _, body := getJSON(t, h, fmt.Sprintf("/alerts?since=%d", next)); len(body["alerts"].([]any)) != 0 {
		t.Error("resuming from the newest cursor returned stale alerts")
	}
	if total > 1 {
		_, body := getJSON(t, h, fmt.Sprintf("/alerts?since=%d", total-1))
		tail := body["alerts"].([]any)
		if len(tail) != 1 || uint64(tail[0].(map[string]any)["seq"].(float64)) != total {
			t.Errorf("since=%d returned %v, want just seq %d", total-1, tail, total)
		}
	}
	_, body = getJSON(t, h, "/alerts?limit=1")
	if got := body["alerts"].([]any); len(got) != 1 {
		t.Errorf("limit=1 returned %d alerts", len(got))
	}
}

// TestStreamEndpointSmoke holds one SSE watcher over the finished
// campaign and heartbeats the barrier feed: the watcher must see the
// hello (with the resume cursor) and at least one barrier event.
func TestStreamEndpointSmoke(t *testing.T) {
	svc := serveCampaign(t)
	h := svc.Handler()

	ctx, cancel := context.WithCancel(context.Background())
	rec := httptest.NewRecorder()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stream", nil).WithContext(ctx))
	}()
	// Heartbeat until the subscriber has certainly attached and been
	// served, then tear the watcher down.
	for i := 0; i < 100; i++ {
		svc.ObserveBarrier(fixtureEnd)
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	wg.Wait()

	out := rec.Body.String()
	if !strings.Contains(out, "event: hello") {
		t.Fatalf("no hello event on /stream; got: %.200s", out)
	}
	if !strings.Contains(out, observatory.Schema) {
		t.Error("hello event does not carry the schema")
	}
	if !strings.Contains(out, "event: barrier") {
		t.Fatalf("no barrier event on /stream; got: %.200s", out)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
}
