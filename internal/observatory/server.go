package observatory

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"afrixp/internal/simclock"
	"afrixp/internal/timeseries"
)

// Schema identifies the observatory JSON API; bump on breaking field
// changes (the telemetry endpoint's afrixp-telemetry/1 convention).
const Schema = "afrixp-observatory/1"

// Mount registers the observatory API on mux: GET /links (paged
// status table), GET /links/{id} (detail), GET /alerts (since-cursor
// log, ?wait=1 long-polls), GET /stream (SSE). Mounted beside
// /metrics by telemetry.Serve.
func (s *Service) Mount(mux *http.ServeMux) {
	mux.HandleFunc("/links", s.handleLinks)
	mux.HandleFunc("/links/", s.handleLink)
	mux.HandleFunc("/alerts", s.handleAlerts)
	mux.HandleFunc("/stream", s.handleStream)
}

// Handler returns a standalone handler serving the API at the mux
// root — what the tests and cmd/observatory use.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	s.Mount(mux)
	return mux
}

// linkStatus is one /links row.
type linkStatus struct {
	ID          string  `json:"id"`
	VP          string  `json:"vp"`
	Target      string  `json:"target"`
	Case        string  `json:"case,omitempty"`
	State       string  `json:"state"`
	Evidence    float64 `json:"evidence"`
	MagnitudeMs float64 `json:"magnitude_ms"`
	Slots       int     `json:"slots"`
	Alerts      uint64  `json:"alerts"`
}

func (s *Service) statusLocked(ls *linkState) linkStatus {
	return linkStatus{
		ID:          ls.id,
		VP:          ls.vp,
		Target:      ls.target.String(),
		Case:        ls.caseName,
		State:       ls.det.State().String(),
		Evidence:    ls.det.Evidence(),
		MagnitudeMs: ls.det.MagnitudeMs(),
		Slots:       ls.cursor,
		Alerts:      ls.recentN,
	}
}

// handleLinks serves the paged status table.
func (s *Service) handleLinks(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	page := queryInt(r, "page", 1)
	per := queryInt(r, "per", 100)
	if page < 1 {
		page = 1
	}
	if per < 1 || per > 1000 {
		per = 100
	}
	s.mu.RLock()
	total := len(s.order)
	lo := (page - 1) * per
	hi := lo + per
	if lo > total {
		lo = total
	}
	if hi > total {
		hi = total
	}
	rows := make([]linkStatus, 0, hi-lo)
	for _, ls := range s.order[lo:hi] {
		rows = append(rows, s.statusLocked(ls))
	}
	barrier := s.barrier
	s.mu.RUnlock()
	pages := (total + per - 1) / per
	writeJSON(w, map[string]any{
		"schema":    Schema,
		"barrier":   barrier.String(),
		"barrier_ns": int64(barrier),
		"total":     total,
		"page":      page,
		"pages":     pages,
		"per":       per,
		"links":     rows,
	})
}

// handleLink serves one link's detail: live status, streaming diurnal
// snapshot, day-folded profile, recent alerts, and (after Finalize)
// the batch verdict sweep.
func (s *Service) handleLink(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/links/")
	s.mu.RLock()
	ls, ok := s.links[id]
	if !ok {
		s.mu.RUnlock()
		http.Error(w, "unknown link id", http.StatusNotFound)
		return
	}
	status := s.statusLocked(ls)
	snap := ls.det.Snapshot()
	profile := ls.det.Profile(nil)
	recent := make([]Alert, 0, len(ls.recent))
	recent, _ = appendRing(recent, ls.recent, ls.recentN, 0)
	var verdicts map[string]any
	if ls.verdicts != nil {
		verdicts = make(map[string]any, len(ls.verdicts))
		for thr, v := range ls.verdicts {
			verdicts[strconv.FormatFloat(thr, 'g', -1, 64)] = map[string]any{
				"flagged":   v.Flagged,
				"near_flat": v.NearFlat,
				"diurnal":   v.Diurnal.Diurnal,
				"symmetric": v.Symmetric,
				"congested": v.Congested,
				"class":     v.Class.String(),
			}
		}
	}
	barrier := s.barrier
	s.mu.RUnlock()

	prof := make([]*float64, len(profile))
	for i := range profile {
		if !timeseries.IsMissing(profile[i]) {
			v := profile[i]
			prof[i] = &v
		}
	}
	fillAt(recent)
	writeJSON(w, map[string]any{
		"schema":     Schema,
		"barrier":    barrier.String(),
		"barrier_ns": int64(barrier),
		"link":       status,
		"diurnal": map[string]any{
			"diurnal":        snap.Diurnal,
			"amplitude_ms":   snap.AmplitudeMs,
			"consistency":    snap.Consistency,
			"peak_hour":      snap.PeakHour,
			"days_evaluated": snap.DaysEvaluated,
		},
		"profile_ms": prof,
		"alerts":     recent,
		"verdicts":   verdicts,
	})
}

// appendRing appends a per-link recent ring's contents in append order.
func appendRing(dst, ring []Alert, n uint64, limit int) ([]Alert, uint64) {
	if len(ring) == 0 {
		return dst, 0
	}
	first := n - uint64(len(ring))
	for i := first; i < n; i++ {
		if limit > 0 && len(dst) >= limit {
			break
		}
		dst = append(dst, ring[int(i%uint64(cap(ring)))])
	}
	return dst, first
}

// handleAlerts serves the global alert log from a since-cursor.
// ?since=SEQ returns alerts with Seq > SEQ (0 = from the oldest
// retained); ?limit=N caps the page; ?wait=1 long-polls until the
// next barrier lands when the page would be empty (fallback for
// clients that cannot hold an SSE stream).
func (s *Service) handleAlerts(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	since := uint64(queryInt(r, "since", 0))
	limit := queryInt(r, "limit", 1000)
	wait := r.URL.Query().Get("wait") != ""

	out, oldest := s.AlertsSince(since, limit, nil)
	if len(out) == 0 && wait {
		select {
		case <-s.hub.waitCh():
			out, oldest = s.AlertsSince(since, limit, nil)
		case <-r.Context().Done():
		case <-time.After(25 * time.Second):
		}
	}
	next := since
	if len(out) > 0 {
		next = out[len(out)-1].Seq
	}
	fillAt(out)
	if out == nil {
		out = []Alert{}
	}
	writeJSON(w, map[string]any{
		"schema":  Schema,
		"barrier": s.Barrier().String(),
		"total":   s.TotalAlerts(),
		"oldest":  oldest,
		"next":    next,
		"alerts":  out,
	})
}

// streamHello is the first SSE event on /stream: where the campaign
// is and what cursor to resume /alerts from.
type streamHello struct {
	Schema    string `json:"schema"`
	Barrier   string `json:"barrier"`
	BarrierNs int64  `json:"barrier_ns"`
	Links     int    `json:"links"`
	Seq       uint64 `json:"seq"`
}

// handleStream serves the SSE live stream: a hello event, then one
// barrier event per engine barrier (heartbeat included — barriers
// with no alerts still produce an event), plus dropped events when
// this subscriber's bounded buffer overflowed.
func (s *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	s.mu.RLock()
	hello := streamHello{
		Schema:    Schema,
		Barrier:   s.barrier.String(),
		BarrierNs: int64(s.barrier),
		Links:     len(s.order),
		Seq:       s.alertN,
	}
	s.mu.RUnlock()
	hb, _ := json.Marshal(hello)
	fmt.Fprintf(w, "event: hello\ndata: %s\n\n", hb)
	fl.Flush()

	sub := s.hub.subscribe()
	defer s.hub.unsubscribe(sub)
	var reported uint64
	for {
		select {
		case <-r.Context().Done():
			return
		case msg := <-sub.ch:
			if d := sub.dropped.Load(); d != reported {
				fmt.Fprintf(w, "event: dropped\ndata: {\"dropped\":%d}\n\n", d)
				reported = d
			}
			if _, err := fmt.Fprintf(w, "event: barrier\nid: %d\ndata: %s\n\n", msg.seq, msg.payload); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// barrierEvent is the /stream per-barrier payload.
type barrierEvent struct {
	Barrier   string  `json:"barrier"`
	BarrierNs int64   `json:"barrier_ns"`
	Seq       uint64  `json:"seq"`
	FedSlots  uint64  `json:"fed_slots"`
	Clear     int     `json:"clear"`
	Suspected int     `json:"suspected"`
	Congested int     `json:"congested"`
	Alerts    []Alert `json:"alerts"`
}

// publishLocked encodes and fans out one barrier update. Called by
// ObserveBarrier with s.mu held; nAlerts is how many alerts this
// barrier appended (the ring tail). With no subscribers it is a
// single atomic load — the zero-alloc steady-state path.
func (s *Service) publishLocked(t simclock.Time, nAlerts int) {
	if s.hub.active() == 0 {
		return
	}
	ev := barrierEvent{
		Barrier:   t.String(),
		BarrierNs: int64(t),
		Seq:       s.alertN,
		FedSlots:  s.fed,
		Alerts:    make([]Alert, 0, nAlerts),
	}
	for _, ls := range s.order {
		switch ls.det.State().String() {
		case "suspected":
			ev.Suspected++
		case "congested":
			ev.Congested++
		default:
			ev.Clear++
		}
	}
	for seq := s.alertN - uint64(nAlerts) + 1; seq <= s.alertN && nAlerts > 0; seq++ {
		ev.Alerts = append(ev.Alerts, s.alerts[int((seq-1)%uint64(cap(s.alerts)))])
	}
	fillAt(ev.Alerts)
	payload, err := json.Marshal(ev)
	if err != nil {
		return
	}
	s.hub.publish(s.alertN, payload)
}

// fillAt renders the human-readable virtual time on served alert
// copies — deferred from the append path, which must not allocate.
func fillAt(alerts []Alert) {
	for i := range alerts {
		alerts[i].At = simclock.Time(alerts[i].AtNs).String()
	}
}

func queryInt(r *http.Request, key string, def int) int {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
