package observatory

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"afrixp/internal/simclock"
)

// fakeStream is a minimal Flusher-capable ResponseWriter for driving
// handleStream without TCP: thousands of watchers become goroutines,
// not file descriptors. Event parsing rides on the handler's one
// Write per Fprintf.
type fakeStream struct {
	hdr      http.Header
	hello    atomic.Bool
	barriers atomic.Int64
	dropped  atomic.Int64
	onFirst  func()
}

func newFakeStream(onFirst func()) *fakeStream {
	return &fakeStream{hdr: make(http.Header), onFirst: onFirst}
}

func (f *fakeStream) Header() http.Header  { return f.hdr }
func (f *fakeStream) WriteHeader(code int) {}
func (f *fakeStream) Flush()               {}
func (f *fakeStream) Write(p []byte) (int, error) {
	s := string(p)
	switch {
	case strings.HasPrefix(s, "event: hello"):
		f.hello.Store(true)
	case strings.HasPrefix(s, "event: barrier"):
		if f.barriers.Add(1) == 1 && f.onFirst != nil {
			f.onFirst()
		}
	case strings.HasPrefix(s, "event: dropped"):
		f.dropped.Add(1)
	}
	return len(p), nil
}

// TestThousandConcurrentWatchers races ≥1000 SSE watchers plus 200
// long-pollers against a barrier feeder hammering ObserveBarrier —
// the acceptance-scale fan-out, run under -race in CI. Every watcher
// must receive its hello and at least one barrier event; every
// long-poller must be released by a barrier wake; and teardown must
// drain the hub back to zero subscribers.
func TestThousandConcurrentWatchers(t *testing.T) {
	const (
		nSSE  = 1000
		nPoll = 200
	)
	svc := New(Config{SubscriberBuf: 8})
	handler := svc.Handler()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Feeder: one barrier every loop until told to stop. No links are
	// watched — barrier heartbeats alone must be enough to feed SSE
	// watchers and release long-pollers.
	stop := make(chan struct{})
	var feederDone sync.WaitGroup
	feederDone.Add(1)
	go func() {
		defer feederDone.Done()
		at := simclock.Date(2016, time.July, 20)
		for {
			select {
			case <-stop:
				return
			default:
			}
			svc.ObserveBarrier(at)
			at = at.Add(5 * time.Minute)
			time.Sleep(200 * time.Microsecond)
		}
	}()

	var sawBarrier atomic.Int64
	writers := make([]*fakeStream, nSSE)
	var wg sync.WaitGroup
	for i := range writers {
		w := newFakeStream(func() { sawBarrier.Add(1) })
		writers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodGet, "/stream", nil).WithContext(ctx)
			handler.ServeHTTP(w, req)
		}()
	}

	var pollOK atomic.Int64
	for i := 0; i < nPoll; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := httptest.NewRecorder()
			req := httptest.NewRequest(http.MethodGet, "/alerts?wait=1", nil).WithContext(ctx)
			handler.ServeHTTP(rec, req)
			if rec.Code == http.StatusOK &&
				strings.Contains(rec.Body.String(), Schema) {
				pollOK.Add(1)
			}
		}()
	}

	deadline := time.Now().Add(60 * time.Second)
	for sawBarrier.Load() < nSSE {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d SSE watchers saw a barrier event in time", sawBarrier.Load(), nSSE)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	wg.Wait()
	close(stop)
	feederDone.Wait()

	for i, w := range writers {
		if !w.hello.Load() {
			t.Fatalf("watcher %d never received the hello event", i)
		}
		if w.barriers.Load() == 0 {
			t.Fatalf("watcher %d never received a barrier event", i)
		}
	}
	if got := pollOK.Load(); got != nPoll {
		t.Errorf("%d/%d long-pollers returned a valid response", got, nPoll)
	}
	if n := svc.hub.active(); n != 0 {
		t.Errorf("hub still reports %d subscribers after teardown", n)
	}
}

// TestHubBoundedSubscriber pins the bounded-broadcast contract
// directly: a subscriber that never drains holds at most SubscriberBuf
// payload references, every overflow is counted in its drop counter,
// and the publisher is never blocked.
func TestHubBoundedSubscriber(t *testing.T) {
	svc := New(Config{SubscriberBuf: 4})
	sub := svc.hub.subscribe()
	defer svc.hub.unsubscribe(sub)

	if cap(sub.ch) != 4 {
		t.Fatalf("subscriber channel cap = %d, want SubscriberBuf 4", cap(sub.ch))
	}
	at := simclock.Date(2016, time.July, 20)
	const barriers = 32
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < barriers; i++ {
			svc.ObserveBarrier(at)
			at = at.Add(5 * time.Minute)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("publisher blocked on a full subscriber channel")
	}
	if n := len(sub.ch); n > cap(sub.ch) {
		t.Errorf("subscriber buffered %d messages, cap %d", n, cap(sub.ch))
	}
	if got := sub.dropped.Load(); got != barriers-4 {
		t.Errorf("dropped counter = %d, want %d (every overflow counted)", got, barriers-4)
	}
	// A draining subscriber's next event reports the drops on the wire.
	w := newFakeStream(nil)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for w.barriers.Load() == 0 {
			svc.ObserveBarrier(at)
			at = at.Add(5 * time.Minute)
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	req := httptest.NewRequest(http.MethodGet, "/stream", nil).WithContext(ctx)
	svc.Handler().ServeHTTP(w, req)
	if !w.hello.Load() || w.barriers.Load() == 0 {
		t.Error("draining watcher saw no events")
	}
}
