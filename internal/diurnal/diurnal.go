// Package diurnal decides whether an RTT series exhibits a recurring
// daily pattern — the paper's criterion separating genuinely congested
// links ("persistent diurnal pattern indicating peak-hour congestion")
// from links that merely trip the level-shift threshold through noise
// or slow ICMP generation (the VP5/VP6 rows of Table 1, flagged but
// with zero diurnal links).
//
// The detector folds the series by time of day and requires both a
// sufficient daily amplitude and day-to-day consistency: each day's
// profile must correlate with the average profile. Random regime
// shifts produce amplitude without consistency; flat series produce
// neither.
package diurnal

import (
	"math"
	"sort"
	"time"

	"afrixp/internal/simclock"
	"afrixp/internal/timeseries"
)

// Config tunes the detector.
type Config struct {
	// BinWidth is the time-of-day fold bin. Default 30 minutes.
	BinWidth simclock.Duration
	// MinAmplitudeMs is the required peak-to-floor amplitude of the
	// folded profile. Default 8 ms (just under the paper's 10 ms
	// level-shift threshold, since min-filtering shaves peaks).
	MinAmplitudeMs float64
	// MinConsistency is the required mean correlation between per-day
	// profiles and the overall profile. Default 0.5.
	MinConsistency float64
	// MinDays is the minimum number of evaluable days. Default 5.
	MinDays int
}

func (c Config) withDefaults() Config {
	if c.BinWidth <= 0 {
		c.BinWidth = 30 * time.Minute
	}
	if c.MinAmplitudeMs <= 0 {
		c.MinAmplitudeMs = 8
	}
	if c.MinConsistency <= 0 {
		c.MinConsistency = 0.5
	}
	if c.MinDays <= 0 {
		c.MinDays = 5
	}
	return c
}

// Verdict is the detector output.
type Verdict struct {
	// Diurnal is the overall decision.
	Diurnal bool
	// AmplitudeMs is the folded profile's P95−P5 spread.
	AmplitudeMs float64
	// Consistency is the mean per-day correlation with the profile.
	Consistency float64
	// PeakHour is the fractional hour of the profile maximum.
	PeakHour float64
	// DaysEvaluated counts days with enough samples to score.
	DaysEvaluated int
}

// Detect runs the analysis: Fold's threshold-independent profile
// statistics gated by cfg's amplitude/consistency/day floors (Decide).
func Detect(s *timeseries.Series, cfg Config) Verdict {
	return Fold(s, cfg).Decide(cfg)
}

// Fold computes the threshold-independent statistics — the day-folded
// profile's amplitude, peak hour, and day-to-day consistency — leaving
// the Diurnal decision false. The amplitude gate (MinAmplitudeMs) is
// the only input that varies across a Table-1 threshold sweep, so one
// Fold serves every threshold via Decide.
func Fold(s *timeseries.Series, cfg Config) Verdict {
	var scr Scratch
	return FoldWith(s, cfg, &scr)
}

// Scratch is reusable working memory for FoldWith: the fold buffers
// for the overall and per-day profiles, the quantile buffer, and the
// correlation pair buffers. One scratch per sweep worker removes the
// per-(link, window) fold allocations; nothing in a Verdict aliases
// it.
type Scratch struct {
	fold    timeseries.FoldScratch
	dayFold timeseries.FoldScratch
	present []float64
	xs, ys  []float64
}

// FoldWith is Fold through caller-owned scratch; results are
// bit-identical to Fold.
func FoldWith(s *timeseries.Series, cfg Config, scr *Scratch) Verdict {
	cfg = cfg.withDefaults()
	var v Verdict
	if s.Len() == 0 {
		return v
	}
	profile := s.FoldDailyInto(&scr.fold, cfg.BinWidth, timeseries.Mean)
	present := scr.present[:0]
	for _, p := range profile {
		if !timeseries.IsMissing(p) {
			present = append(present, p)
		}
	}
	scr.present = present[:0]
	if len(present) < len(profile)/2 {
		return v
	}
	// One in-place sort serves both quantiles — bit-identical to two
	// independent clone+sort Quantile calls on the unsorted values.
	sort.Float64s(present)
	v.AmplitudeMs = timeseries.QuantileSorted(present, 0.95) - timeseries.QuantileSorted(present, 0.05)

	// Peak hour.
	peakBin, peakVal := 0, math.Inf(-1)
	for b, p := range profile {
		if !timeseries.IsMissing(p) && p > peakVal {
			peakBin, peakVal = b, p
		}
	}
	v.PeakHour = float64(peakBin) * cfg.BinWidth.Hours()

	// Day-to-day consistency. Days are visited in calendar order: map
	// iteration order would vary the float summation order run to run,
	// perturbing Consistency by an ulp — enough to break the campaign
	// engine's bit-identical reproducibility guarantee. The walk runs
	// over ascending day ranges directly (the order SplitDays' sorted
	// keys used to produce) so no per-day map or sub-series allocation
	// survives; days with no present samples contribute nothing either
	// way, because correlate rejects their all-missing profiles.
	nBins := len(profile)
	var corrSum float64
	for i := 0; i < s.Len(); {
		day := s.TimeAt(i).Day()
		j := i
		for j < s.Len() && s.TimeAt(j).Day() == day {
			j++
		}
		sub := s.Window(s.TimeAt(i), s.TimeAt(j))
		dayProf := sub.FoldDailyInto(&scr.dayFold, cfg.BinWidth, timeseries.Mean)
		if r, ok := correlateWith(dayProf, profile, nBins/2, scr); ok {
			corrSum += r
			v.DaysEvaluated++
		}
		i = j
	}
	if v.DaysEvaluated > 0 {
		v.Consistency = corrSum / float64(v.DaysEvaluated)
	}
	return v
}

// Decide applies cfg's gates to folded statistics and returns the
// verdict with the Diurnal decision set. Pure — the same folded
// statistics can be gated at any number of amplitude thresholds.
func (v Verdict) Decide(cfg Config) Verdict {
	cfg = cfg.withDefaults()
	v.Diurnal = v.AmplitudeMs >= cfg.MinAmplitudeMs &&
		v.Consistency >= cfg.MinConsistency &&
		v.DaysEvaluated >= cfg.MinDays
	return v
}

// correlate computes the Pearson correlation between two profiles over
// bins present in both, requiring at least minBins shared bins.
func correlate(a, b []float64, minBins int) (float64, bool) {
	var scr Scratch
	return correlateWith(a, b, minBins, &scr)
}

// correlateWith is correlate through scratch pair buffers.
func correlateWith(a, b []float64, minBins int, scr *Scratch) (float64, bool) {
	xs, ys := scr.xs[:0], scr.ys[:0]
	defer func() { scr.xs, scr.ys = xs[:0], ys[:0] }()
	for i := range a {
		if i < len(b) && !timeseries.IsMissing(a[i]) && !timeseries.IsMissing(b[i]) {
			xs = append(xs, a[i])
			ys = append(ys, b[i])
		}
	}
	if len(xs) < minBins || len(xs) < 3 {
		return 0, false
	}
	mx, my := timeseries.Mean(xs), timeseries.Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, false
	}
	return sxy / math.Sqrt(sxx*syy), true
}
