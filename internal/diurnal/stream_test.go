package diurnal

import (
	"math"
	"testing"
	"time"

	"afrixp/internal/simclock"
	"afrixp/internal/timeseries"
)

// buildDiurnalSeries returns a 30-min series with a daily sinusoid of
// the given amplitude on a 20 ms floor, plus a deterministic dither.
func buildDiurnalSeries(days int, ampMs float64) *timeseries.Series {
	step := simclock.Duration(30 * time.Minute)
	n := days * 48
	s := timeseries.NewRegular(0, step, n)
	for i := 0; i < n; i++ {
		hod := float64(i%48) / 48 * 2 * math.Pi
		dither := 0.3 * math.Sin(float64(i)*0.7)
		s.Set(i, 20+ampMs/2*(1-math.Cos(hod))+dither)
	}
	return s
}

func TestStreamFoldMatchesBatchAmplitude(t *testing.T) {
	s := buildDiurnalSeries(6, 24)
	cfg := Config{MinDays: 3}
	batch := Fold(s, cfg)

	f := NewStreamFold(cfg)
	for i := 0; i < s.Len(); i++ {
		f.Observe(s.TimeAt(i), s.Values[i])
	}
	got := f.Snapshot()

	// The overall profile's bin means are identical sums in identical
	// order, so amplitude and peak hour must agree bit-for-bit.
	if math.Float64bits(got.AmplitudeMs) != math.Float64bits(batch.AmplitudeMs) {
		t.Fatalf("amplitude: stream %v batch %v", got.AmplitudeMs, batch.AmplitudeMs)
	}
	if got.PeakHour != batch.PeakHour {
		t.Fatalf("peak hour: stream %v batch %v", got.PeakHour, batch.PeakHour)
	}
	// Completed days only: the sixth day is still open.
	if got.DaysEvaluated != 5 {
		t.Fatalf("days evaluated = %d; want 5", got.DaysEvaluated)
	}
	// Consistency is an online approximation (day vs profile-so-far),
	// but a clean sinusoid must still correlate strongly.
	if got.Consistency < 0.9 {
		t.Fatalf("consistency = %v; want ≥ 0.9", got.Consistency)
	}
	if !got.Decide(cfg).Diurnal {
		t.Fatalf("clean 24 ms diurnal series not detected")
	}
}

func TestStreamFoldFlatSeriesNotDiurnal(t *testing.T) {
	s := buildDiurnalSeries(6, 0)
	f := NewStreamFold(Config{MinDays: 3})
	for i := 0; i < s.Len(); i++ {
		f.Observe(s.TimeAt(i), s.Values[i])
	}
	v := f.Snapshot().Decide(Config{MinDays: 3})
	if v.Diurnal {
		t.Fatalf("flat series detected as diurnal: %+v", v)
	}
	if v.AmplitudeMs >= 8 {
		t.Fatalf("flat series amplitude %v; want < 8", v.AmplitudeMs)
	}
}

func TestStreamFoldHandlesMissingAndReset(t *testing.T) {
	cfg := Config{MinDays: 3}
	f := NewStreamFold(cfg)
	s := buildDiurnalSeries(6, 24)
	for i := 0; i < s.Len(); i++ {
		v := s.Values[i]
		if i%7 == 3 {
			v = timeseries.Missing
		}
		f.Observe(s.TimeAt(i), v)
	}
	if got := f.Snapshot().Decide(cfg); !got.Diurnal {
		t.Fatalf("diurnal pattern lost to 1/7 missing slots: %+v", got)
	}

	// Reset + replay reproduces the same snapshot bit-for-bit.
	before := f.Snapshot()
	f.Reset()
	if v := f.Snapshot(); v.DaysEvaluated != 0 || v.AmplitudeMs != 0 {
		t.Fatalf("reset left state: %+v", v)
	}
	for i := 0; i < s.Len(); i++ {
		v := s.Values[i]
		if i%7 == 3 {
			v = timeseries.Missing
		}
		f.Observe(s.TimeAt(i), v)
	}
	after := f.Snapshot()
	if math.Float64bits(before.AmplitudeMs) != math.Float64bits(after.AmplitudeMs) ||
		math.Float64bits(before.Consistency) != math.Float64bits(after.Consistency) ||
		before.DaysEvaluated != after.DaysEvaluated {
		t.Fatalf("replay after reset diverged: %+v vs %+v", before, after)
	}
}

func TestStreamFoldZeroAlloc(t *testing.T) {
	cfg := Config{MinDays: 3}
	f := NewStreamFold(cfg)
	s := buildDiurnalSeries(4, 24)
	for i := 0; i < s.Len(); i++ {
		f.Observe(s.TimeAt(i), s.Values[i])
	}
	i := 0
	if n := testing.AllocsPerRun(200, func() {
		f.Observe(s.TimeAt(i%s.Len()), s.Values[i%s.Len()])
		_ = f.Snapshot()
		i++
	}); n != 0 {
		t.Fatalf("Observe+Snapshot allocates %.1f/op; want 0", n)
	}
}
