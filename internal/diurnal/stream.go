package diurnal

import (
	"afrixp/internal/simclock"
	"afrixp/internal/timeseries"
)

// StreamFold is the incremental counterpart of Fold: it consumes one
// aggregated (time, value) bin at a time and maintains the day-folded
// profile statistics online — per-bin running means for the overall
// profile, the current day's partial profile, and a running mean of
// per-day correlations against the overall profile. Snapshot answers
// "does this link show a recurring daily pattern *so far*" at any
// point of the stream, which is what lets the observatory promote a
// suspected level shift to confirmed congestion mid-campaign instead
// of at campaign end.
//
// The statistics are an online approximation of Fold's, not a
// bit-identical replay: each completed day correlates against the
// overall profile *as of that day*, where the batch fold correlates
// every day against the final profile. The approximation only steers
// alert timing — final verdicts always come from the batch pipeline
// over the full series (see DESIGN.md §16) — and it is still a pure
// function of the fed sequence, so determinism holds. Allocation-free
// after New.
type StreamFold struct {
	cfg   Config
	nBins int

	binSum []float64 // overall profile accumulators
	binCnt []int
	daySum []float64 // current (open) day accumulators
	dayCnt []int

	curDay  int
	haveDay bool

	corrSum  float64
	daysEval int

	// scratch for Snapshot/closeDay, sized once.
	prof, dayProf, present []float64
	scr                    Scratch
}

// NewStreamFold builds an incremental fold. The amplitude, consistency
// and day gates used by Snapshot().Decide come from cfg exactly as in
// the batch detector.
func NewStreamFold(cfg Config) *StreamFold {
	cfg = cfg.withDefaults()
	nBins := int((24 * 60 * 60 * 1e9) / int64(cfg.BinWidth))
	if nBins < 1 {
		nBins = 1
	}
	f := &StreamFold{
		cfg:     cfg,
		nBins:   nBins,
		binSum:  make([]float64, nBins),
		binCnt:  make([]int, nBins),
		daySum:  make([]float64, nBins),
		dayCnt:  make([]int, nBins),
		prof:    make([]float64, nBins),
		dayProf: make([]float64, nBins),
		present: make([]float64, 0, nBins),
	}
	f.scr.xs = make([]float64, 0, nBins)
	f.scr.ys = make([]float64, 0, nBins)
	return f
}

// Observe feeds one aggregated bin. Missing values (NaN) advance the
// day bookkeeping but contribute nothing to the profiles, mirroring
// how the batch fold skips missing grid slots.
func (f *StreamFold) Observe(t simclock.Time, v float64) {
	day := t.Day()
	if f.haveDay && day != f.curDay {
		f.closeDay()
	}
	if !f.haveDay || day != f.curDay {
		f.curDay = day
		f.haveDay = true
	}
	if timeseries.IsMissing(v) {
		return
	}
	bin := t.SecondOfDay() / int(f.cfg.BinWidth/simclock.Duration(1e9))
	if bin < 0 || bin >= f.nBins {
		return
	}
	f.binSum[bin] += v
	f.binCnt[bin]++
	f.daySum[bin] += v
	f.dayCnt[bin]++
}

// closeDay folds the completed day into the running consistency mean:
// the day's profile is correlated against the overall profile (which
// includes the day, as the batch fold's does) and the day accumulators
// reset for the next day.
func (f *StreamFold) closeDay() {
	f.fillProfiles()
	if r, ok := correlateWith(f.dayProf, f.prof, f.nBins/2, &f.scr); ok {
		f.corrSum += r
		f.daysEval++
	}
	for i := range f.daySum {
		f.daySum[i] = 0
		f.dayCnt[i] = 0
	}
}

// fillProfiles renders the overall and current-day bin means into the
// scratch profile buffers (Missing where a bin has no samples).
func (f *StreamFold) fillProfiles() {
	for i := 0; i < f.nBins; i++ {
		if f.binCnt[i] > 0 {
			f.prof[i] = f.binSum[i] / float64(f.binCnt[i])
		} else {
			f.prof[i] = timeseries.Missing
		}
		if f.dayCnt[i] > 0 {
			f.dayProf[i] = f.daySum[i] / float64(f.dayCnt[i])
		} else {
			f.dayProf[i] = timeseries.Missing
		}
	}
}

// Profile appends the current overall folded profile (bin means,
// Missing where empty) to dst and returns it — the /links/{id} diurnal
// surface.
func (f *StreamFold) Profile(dst []float64) []float64 {
	f.fillProfiles()
	return append(dst, f.prof...)
}

// Snapshot computes the profile statistics accumulated so far, leaving
// the Diurnal decision to Decide exactly like the batch Fold. Days
// evaluated counts *completed* days — the open day joins when its
// first next-day sample arrives. Allocation-free.
func (f *StreamFold) Snapshot() Verdict {
	var v Verdict
	f.fillProfiles()
	present := f.present[:0]
	for _, p := range f.prof {
		if !timeseries.IsMissing(p) {
			present = append(present, p)
		}
	}
	if len(present) < f.nBins/2 {
		if f.daysEval > 0 {
			v.Consistency = f.corrSum / float64(f.daysEval)
			v.DaysEvaluated = f.daysEval
		}
		return v
	}
	insertionSort(present)
	v.AmplitudeMs = timeseries.QuantileSorted(present, 0.95) - timeseries.QuantileSorted(present, 0.05)
	peakBin, peakVal := 0, timeseries.Missing
	for b, p := range f.prof {
		if !timeseries.IsMissing(p) && (timeseries.IsMissing(peakVal) || p > peakVal) {
			peakBin, peakVal = b, p
		}
	}
	v.PeakHour = float64(peakBin) * f.cfg.BinWidth.Hours()
	if f.daysEval > 0 {
		v.Consistency = f.corrSum / float64(f.daysEval)
		v.DaysEvaluated = f.daysEval
	}
	return v
}

// Reset clears all accumulated state but keeps the tuning and the
// buffer allocations — the checkpoint-resume replay path.
func (f *StreamFold) Reset() {
	for i := range f.binSum {
		f.binSum[i] = 0
		f.binCnt[i] = 0
		f.daySum[i] = 0
		f.dayCnt[i] = 0
	}
	f.haveDay = false
	f.corrSum = 0
	f.daysEval = 0
}

// insertionSort sorts a short slice in place without the interface
// conversions sort.Float64s may allocate — profiles are ≤ 48 bins, so
// the quadratic bound is irrelevant and the zero-alloc guarantee is
// not.
func insertionSort(a []float64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
