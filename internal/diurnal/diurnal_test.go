package diurnal

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"afrixp/internal/timeseries"
)

// series builds days of 5-minute samples from a value function of
// (dayIndex, hourOfDay).
func series(days int, fn func(day int, hour float64) float64) *timeseries.Series {
	s := timeseries.NewRegular(0, 5*time.Minute, days*288)
	for i := 0; i < s.Len(); i++ {
		t := s.TimeAt(i)
		s.Set(i, fn(t.Day(), t.HourOfDay()))
	}
	return s
}

func TestCleanDiurnalDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := series(14, func(_ int, h float64) float64 {
		v := 2.0
		if h >= 9 && h < 17 {
			v = 25
		}
		return v + math.Abs(0.5*rng.NormFloat64())
	})
	v := Detect(s, Config{})
	if !v.Diurnal {
		t.Fatalf("clean diurnal not detected: %+v", v)
	}
	if v.AmplitudeMs < 15 {
		t.Fatalf("amplitude = %v", v.AmplitudeMs)
	}
	if v.PeakHour < 9 || v.PeakHour >= 17 {
		t.Fatalf("peak hour = %v", v.PeakHour)
	}
	if v.DaysEvaluated < 13 {
		t.Fatalf("days = %d", v.DaysEvaluated)
	}
}

func TestFlatSeriesRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := series(14, func(int, float64) float64 {
		return 3 + math.Abs(0.8*rng.NormFloat64())
	})
	if v := Detect(s, Config{}); v.Diurnal {
		t.Fatalf("flat series detected diurnal: %+v", v)
	}
}

func TestRandomRegimeShiftsRejected(t *testing.T) {
	// Slow-ICMP regimes: RTT jumps to 30 ms for random multi-hour
	// blocks at arbitrary times of day. Level-shift detectors flag
	// this; the diurnal check must not.
	rng := rand.New(rand.NewSource(3))
	level := 2.0
	s := timeseries.NewRegular(0, 5*time.Minute, 20*288)
	for i := 0; i < s.Len(); i++ {
		if i%60 == 0 && rng.Float64() < 0.3 { // reconsider every 5h
			if level == 2 {
				level = 30
			} else {
				level = 2
			}
		}
		s.Set(i, level+math.Abs(0.5*rng.NormFloat64()))
	}
	v := Detect(s, Config{})
	if v.Diurnal {
		t.Fatalf("random regimes detected as diurnal: %+v", v)
	}
	if v.Consistency > 0.5 {
		t.Fatalf("random regimes should have low consistency: %v", v.Consistency)
	}
}

func TestWeekdayWeekendAmplitudeStillDiurnal(t *testing.T) {
	// QCELL–NETPAGE: 35 ms weekday spikes, 15 ms weekend spikes — the
	// pattern differs in amplitude but stays diurnal.
	rng := rand.New(rand.NewSource(4))
	s := timeseries.NewRegular(0, 5*time.Minute, 21*288)
	for i := 0; i < s.Len(); i++ {
		tm := s.TimeAt(i)
		amp := 35.0
		if tm.IsWeekend() {
			amp = 15
		}
		h := tm.HourOfDay()
		v := 1.5
		if h >= 10 && h < 16 {
			v += amp
		}
		s.Set(i, v+math.Abs(0.5*rng.NormFloat64()))
	}
	v := Detect(s, Config{})
	if !v.Diurnal {
		t.Fatalf("amplitude-modulated diurnal rejected: %+v", v)
	}
}

func TestLossySeriesTolerated(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := series(14, func(_ int, h float64) float64 {
		v := 2.0
		if h >= 12 && h < 20 {
			v = 20
		}
		return v + math.Abs(0.4*rng.NormFloat64())
	})
	for i := 0; i < s.Len(); i++ {
		if rng.Float64() < 0.25 {
			s.Set(i, timeseries.Missing)
		}
	}
	if v := Detect(s, Config{}); !v.Diurnal {
		t.Fatalf("lossy diurnal rejected: %+v", v)
	}
}

func TestTooFewDaysRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := series(3, func(_ int, h float64) float64 {
		v := 2.0
		if h >= 9 && h < 17 {
			v = 25
		}
		return v + math.Abs(0.3*rng.NormFloat64())
	})
	if v := Detect(s, Config{MinDays: 5}); v.Diurnal {
		t.Fatalf("3-day series accepted: %+v", v)
	}
}

func TestSmallAmplitudeRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := series(14, func(_ int, h float64) float64 {
		v := 2.0
		if h >= 9 && h < 17 {
			v = 5 // only 3 ms swing
		}
		return v + math.Abs(0.2*rng.NormFloat64())
	})
	if v := Detect(s, Config{MinAmplitudeMs: 8}); v.Diurnal {
		t.Fatalf("3 ms amplitude accepted: %+v", v)
	}
}

func TestEmptySeries(t *testing.T) {
	if v := Detect(timeseries.NewRegular(0, time.Minute, 0), Config{}); v.Diurnal {
		t.Fatal("empty series accepted")
	}
	s := timeseries.NewRegular(0, 5*time.Minute, 288)
	if v := Detect(s, Config{}); v.Diurnal {
		t.Fatal("all-missing series accepted")
	}
}

func TestCorrelateEdgeCases(t *testing.T) {
	if _, ok := correlate([]float64{1, 2}, []float64{1, 2}, 1); ok {
		t.Fatal("fewer than 3 shared bins must fail")
	}
	if _, ok := correlate([]float64{1, 1, 1, 1}, []float64{1, 2, 3, 4}, 2); ok {
		t.Fatal("zero-variance profile must fail")
	}
	r, ok := correlate([]float64{1, 2, 3, 4}, []float64{2, 4, 6, 8}, 2)
	if !ok || math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect correlation: %v %v", r, ok)
	}
}

func TestFoldDecideMatchesDetect(t *testing.T) {
	// Detect is exactly Fold gated by Decide, and the folded statistics
	// are independent of the amplitude gate — the property the analysis
	// threshold sweep exploits by folding once per link.
	rng := rand.New(rand.NewSource(31))
	s := series(10, func(_ int, h float64) float64 {
		v := 2.0
		if h >= 10 && h < 15 {
			v = 14
		}
		return v + math.Abs(0.4*rng.NormFloat64())
	})
	fold := Fold(s, Config{})
	for _, minAmp := range []float64{4, 8, 12, 16} {
		cfg := Config{MinAmplitudeMs: minAmp}
		want := Detect(s, cfg)
		got := fold.Decide(cfg)
		if got != want {
			t.Fatalf("minAmp %v: Fold+Decide %+v != Detect %+v", minAmp, got, want)
		}
		if refold := Fold(s, cfg); refold != fold {
			t.Fatalf("minAmp %v: folded statistics vary with the gate: %+v vs %+v",
				minAmp, refold, fold)
		}
	}
}

func TestFoldLeavesDecisionFalse(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	s := series(14, func(_ int, h float64) float64 {
		v := 2.0
		if h >= 9 && h < 17 {
			v = 25
		}
		return v + math.Abs(0.3*rng.NormFloat64())
	})
	if Fold(s, Config{}).Diurnal {
		t.Fatal("Fold must not decide; Decide does")
	}
	if !Fold(s, Config{}).Decide(Config{}).Diurnal {
		t.Fatal("gated fold should confirm the clean diurnal")
	}
}

// TestFoldGapNormalization pins the fold's missing-bin handling on a
// NaN-heavy series (>50% missing): every other sample knocked out plus
// three whole dark days, the VP-outage shape. The values are exact
// (40 ms peak / 10 ms floor, no noise), so present-only normalization
// must reproduce the full series' amplitude exactly — any zero-filled
// or expected-count fold would shrink it — and fully-missing days must
// drop out of the day count instead of dragging consistency down.
func TestFoldGapNormalization(t *testing.T) {
	shape := func(_ int, h float64) float64 {
		if h >= 9 && h < 17 {
			return 40
		}
		return 10
	}
	full := series(12, shape)
	gappy := series(12, shape)
	missing := 0
	for i := 0; i < gappy.Len(); i++ {
		day := gappy.TimeAt(i).Day()
		if i%2 == 0 || (day >= 4 && day < 7) {
			gappy.Set(i, timeseries.Missing)
			missing++
		}
	}
	if 2*missing < gappy.Len() {
		t.Fatalf("gap pattern too thin: %d/%d missing", missing, gappy.Len())
	}

	v := Fold(gappy, Config{})
	if want := Fold(full, Config{}).AmplitudeMs; v.AmplitudeMs != want {
		t.Fatalf("amplitude %v with gaps, %v without: fold normalization leaks missing bins",
			v.AmplitudeMs, want)
	}
	if v.AmplitudeMs != 30 {
		t.Fatalf("amplitude = %v, want exactly 30", v.AmplitudeMs)
	}
	if v.DaysEvaluated != 9 {
		t.Fatalf("days evaluated = %d, want 9 (12 minus 3 dark days)", v.DaysEvaluated)
	}
	if v.Consistency < 0.999 {
		t.Fatalf("consistency = %v on an exact profile", v.Consistency)
	}
	if dec := v.Decide(Config{}); !dec.Diurnal {
		t.Fatalf("gappy diurnal series rejected: %+v", dec)
	}
	if v.PeakHour < 9 || v.PeakHour >= 17 {
		t.Fatalf("peak hour = %v", v.PeakHour)
	}
}
