package geo

import (
	"bytes"
	"strings"
	"testing"

	"afrixp/internal/netaddr"
)

func ma(s string) netaddr.Addr   { return netaddr.MustParseAddr(s) }
func mp(s string) netaddr.Prefix { return netaddr.MustParsePrefix(s) }

func sampleDB() *DB {
	db := NewDB()
	db.Add(Entry{Prefix: mp("196.49.0.0/16"), Country: "GH", City: "Accra"})
	db.Add(Entry{Prefix: mp("196.49.128.0/17"), Country: "gh", City: "kumasi"})
	db.Add(Entry{Prefix: mp("196.223.14.0/23"), Country: "ke", City: "nairobi"})
	return db
}

func TestLookupMostSpecificAndCaseFolding(t *testing.T) {
	db := sampleDB()
	e, ok := db.Lookup(ma("196.49.1.1"))
	if !ok || e.Country != "gh" || e.City != "accra" {
		t.Fatalf("lookup: %+v %v", e, ok)
	}
	e, ok = db.Lookup(ma("196.49.200.1"))
	if !ok || e.City != "kumasi" {
		t.Fatalf("most specific: %+v", e)
	}
	if _, ok := db.Lookup(ma("8.8.8.8")); ok {
		t.Fatal("unknown space must miss")
	}
}

func TestDBRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleDB().Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := got.Lookup(ma("196.223.14.9"))
	if !ok || e.Country != "ke" || e.City != "nairobi" {
		t.Fatalf("round trip: %+v %v", e, ok)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{"196.49.0.0/16|gh", "notaprefix|gh|accra"} {
		if _, err := Parse(strings.NewReader(bad + "\n")); err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
	db, err := Parse(strings.NewReader("# comment\n\n"))
	if err != nil || db == nil {
		t.Fatal("comments/blank lines must parse")
	}
}

func TestRDNS(t *testing.T) {
	r := NewRDNS()
	r.Register(ma("196.49.7.1"), "GE0-0.SW1.Accra.GH.gixa.org.gh")
	name, ok := r.Lookup(ma("196.49.7.1"))
	if !ok || name != "ge0-0.sw1.accra.gh.gixa.org.gh" {
		t.Fatalf("rdns: %q %v", name, ok)
	}
	if _, ok := r.Lookup(ma("1.2.3.4")); ok {
		t.Fatal("unknown addr must miss")
	}
}

func TestInterfaceName(t *testing.T) {
	got := InterfaceName("Gi0-1", "cr1", "Nairobi", "KE", "liquid.tel")
	if got != "gi0-1.cr1.nairobi.ke.liquid.tel" {
		t.Fatalf("name = %q", got)
	}
}

func TestParseHints(t *testing.T) {
	cases := []struct {
		name          string
		country, city string
	}{
		{"ge0-0.sw1.accra.gh.gixa.org.gh", "gh", "accra"},
		{"xe-1-2.cr1.jnb.liquid.net", "za", "johannesburg"},
		{"core1-nbo.tespok.ke", "ke", "nairobi"},
		{"router.example.com", "", ""},
		{"po1.edge.dar.tz.tix.or.tz", "tz", "dar es salaam"},
	}
	for _, c := range cases {
		h := ParseHints(c.name)
		if h.Country != c.country || h.City != c.city {
			t.Errorf("ParseHints(%q) = %+v, want %s/%s", c.name, h, c.country, c.city)
		}
	}
}

func TestConsistent(t *testing.T) {
	db := sampleDB()
	r := NewRDNS()
	r.Register(ma("196.49.7.1"), "sw1.accra.gh.gixa.org.gh")
	r.Register(ma("196.49.7.2"), "sw2.nbo.tespok.ke") // contradicts GH geo
	// Consistent hint.
	if !Consistent(db, r, ma("196.49.7.1")) {
		t.Fatal("matching hint judged inconsistent")
	}
	// Contradicting hint.
	if Consistent(db, r, ma("196.49.7.2")) {
		t.Fatal("contradicting hint judged consistent")
	}
	// Missing rDNS or geo entry: consistent by default.
	if !Consistent(db, r, ma("196.49.9.9")) {
		t.Fatal("no-rdns addr must be consistent")
	}
	if !Consistent(db, r, ma("8.8.8.8")) {
		t.Fatal("no-geo addr must be consistent")
	}
}
