// Package geo stands in for the Netacuity Edge database and the
// reverse-DNS hint extraction the paper uses as added checks that
// discovered links were really established at the studied IXPs (§5.1).
// It provides a prefix-keyed geolocation database with a line-oriented
// interchange format, a reverse-DNS registry following operator naming
// conventions, and a hint parser that extracts country/city codes from
// interface names.
package geo

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"afrixp/internal/lpm"
	"afrixp/internal/netaddr"
)

// Entry is one geolocation record.
type Entry struct {
	Prefix  netaddr.Prefix
	Country string // ISO-3166 alpha-2, lower case ("gh")
	City    string // lower case ("accra")
}

// DB is a longest-prefix-match geolocation database.
type DB struct {
	table *lpm.Table[Entry]
	n     int
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{table: lpm.New[Entry]()} }

// Add inserts a record; later inserts of the same prefix win.
func (db *DB) Add(e Entry) {
	e.Country = strings.ToLower(e.Country)
	e.City = strings.ToLower(e.City)
	db.table.Insert(e.Prefix, e)
	db.n++
}

// Lookup geolocates an address via its most specific covering prefix.
func (db *DB) Lookup(addr netaddr.Addr) (Entry, bool) {
	return db.table.Lookup(addr)
}

// Write serializes the database: one "prefix|country|city" line per
// record, most-specific ordering not required.
func (db *DB) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var err error
	db.table.Walk(func(p netaddr.Prefix, e Entry) bool {
		_, err = fmt.Fprintf(bw, "%s|%s|%s\n", p, e.Country, e.City)
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// Parse reads the database format.
func Parse(r io.Reader) (*DB, error) {
	db := NewDB()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Split(line, "|")
		if len(f) != 3 {
			return nil, fmt.Errorf("geo: line %d: want 3 fields, got %d", lineNo, len(f))
		}
		p, err := netaddr.ParsePrefix(f[0])
		if err != nil {
			return nil, fmt.Errorf("geo: line %d: %v", lineNo, err)
		}
		db.Add(Entry{Prefix: p, Country: f[1], City: f[2]})
	}
	return db, sc.Err()
}

// RDNS is the reverse-DNS registry of the simulated internetwork.
type RDNS struct {
	names map[netaddr.Addr]string
}

// NewRDNS returns an empty registry.
func NewRDNS() *RDNS { return &RDNS{names: make(map[netaddr.Addr]string)} }

// Register binds a PTR name to an address.
func (r *RDNS) Register(addr netaddr.Addr, name string) {
	r.names[addr] = strings.ToLower(name)
}

// Lookup returns the PTR name for addr.
func (r *RDNS) Lookup(addr netaddr.Addr) (string, bool) {
	n, ok := r.names[addr]
	return n, ok
}

// InterfaceName composes a conventional operator interface name, e.g.
// "gi0-1.cr1.accra.gh.example.net" — the shapes the hint parser
// understands.
func InterfaceName(ifaceLabel, router, city, cc, domain string) string {
	return strings.ToLower(strings.Join(
		[]string{ifaceLabel, router, city, cc, domain}, "."))
}

// Hints are location tokens extracted from a PTR name.
type Hints struct {
	Country string
	City    string
}

// knownCities maps city tokens (and common airport-style codes) used
// by African operators to (city, country).
var knownCities = map[string][2]string{
	"accra":        {"accra", "gh"},
	"acc":          {"accra", "gh"},
	"johannesburg": {"johannesburg", "za"},
	"jnb":          {"johannesburg", "za"},
	"nairobi":      {"nairobi", "ke"},
	"nbo":          {"nairobi", "ke"},
	"daressalaam":  {"dar es salaam", "tz"},
	"dar":          {"dar es salaam", "tz"},
	"serekunda":    {"serekunda", "gm"},
	"banjul":       {"banjul", "gm"},
	"bjl":          {"banjul", "gm"},
	"kigali":       {"kigali", "rw"},
	"kgl":          {"kigali", "rw"},
}

// knownCountries is the set of country-code tokens recognized in
// names (the studied sub-regions plus common transit locations).
var knownCountries = map[string]bool{
	"gh": true, "za": true, "ke": true, "tz": true, "gm": true, "rw": true,
	"ng": true, "uk": true, "fr": true, "us": true, "pt": true,
}

// ParseHints extracts country/city hints from a PTR name by scanning
// dot- and dash-separated tokens.
func ParseHints(name string) Hints {
	var h Hints
	for _, tok := range strings.FieldsFunc(strings.ToLower(name), func(r rune) bool {
		return r == '.' || r == '-' || r == '_'
	}) {
		if c, ok := knownCities[tok]; ok && h.City == "" {
			h.City = c[0]
			if h.Country == "" {
				h.Country = c[1]
			}
		}
		if knownCountries[tok] && h.Country == "" {
			h.Country = tok
		}
	}
	return h
}

// Consistent reports whether the geolocation of addr and the rDNS
// hints agree (either source missing counts as consistent — the check
// only fires on contradiction, as in the paper's sanity pass).
func Consistent(db *DB, rdns *RDNS, addr netaddr.Addr) bool {
	e, okDB := db.Lookup(addr)
	name, okR := rdns.Lookup(addr)
	if !okDB || !okR {
		return true
	}
	h := ParseHints(name)
	if h.Country != "" && h.Country != e.Country {
		return false
	}
	if h.City != "" && e.City != "" && h.City != e.City {
		return false
	}
	return true
}
