// Package cusum implements Taylor-style change-point analysis: the
// cumulative-sum chart with bootstrap significance testing, applied
// recursively to segment a series into constant-level regions. The
// paper's level-shift detector "identifies changes in the direction of
// the rank-based non-parametric statistical cumulative sum (CUSUM)
// test as evidence of a level-shift" [Taylor 2000]; ranks make the
// test robust to the heavy-tailed RTT outliers ICMP measurement is
// full of.
package cusum

import (
	"math/rand"
	"sort"
)

// Config tunes the detector.
type Config struct {
	// Bootstraps is the number of shuffles per significance test.
	// Default 100.
	Bootstraps int
	// Confidence in (0,1) required to accept a change point.
	// Default 0.95.
	Confidence float64
	// MinSegment is the minimum number of samples on each side of a
	// change point. Default 2.
	MinSegment int
	// UseRanks switches to the rank-based (non-parametric) variant
	// the paper uses. Default is true in Detect; DetectRaw keeps raw
	// values.
	UseRanks bool
	// MinMagnitude, when positive, drops change points whose level
	// change (in original units) is smaller — the paper's magnitude
	// threshold that suppresses detections caused by measurement
	// noise. Weakest-first removal re-merges the adjacent segments.
	MinMagnitude float64
	// Seed makes the bootstrap deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Bootstraps <= 0 {
		c.Bootstraps = 100
	}
	if c.Confidence <= 0 {
		c.Confidence = 0.95
	}
	if c.MinSegment < 2 {
		c.MinSegment = 2
	}
	return c
}

// ChangePoint is a detected shift between two constant-level segments.
type ChangePoint struct {
	// Index is the first sample of the new level.
	Index int
	// Confidence is the bootstrap confidence of the detection.
	Confidence float64
	// Before and After are the mean levels (of the original values,
	// not the ranks) on each side, over the local segments.
	Before, After float64
}

// Candidate is a change point accepted by the bootstrap significance
// test but not yet filtered by MinMagnitude. Candidates depend only on
// the series, the detector configuration, and the seed — never on the
// magnitude threshold — which is what lets a threshold sweep detect
// once and filter many times (ApplyMagnitude).
type Candidate struct {
	// Index is the first sample of the new level.
	Index int
	// Confidence is the bootstrap confidence of the detection.
	Confidence float64
}

// Magnitude returns the signed level change.
func (cp ChangePoint) Magnitude() float64 { return cp.After - cp.Before }

// Detect runs rank-based recursive change-point detection over xs and
// returns the accepted change points in index order.
func Detect(xs []float64, cfg Config) []ChangePoint {
	cfg = cfg.withDefaults()
	cfg.UseRanks = true
	return NewDetector(cfg).Detect(xs, cfg.Seed)
}

// DetectRaw runs the same analysis on raw values (no rank transform).
func DetectRaw(xs []float64, cfg Config) []ChangePoint {
	cfg = cfg.withDefaults()
	cfg.UseRanks = false
	return NewDetector(cfg).Detect(xs, cfg.Seed)
}

// Detector runs repeated change-point detections with one set of
// reusable scratch buffers (rank transform, bootstrap shuffle copy,
// candidate lists). The level-shift analyzer calls Detect once per
// detection window per link per threshold — reusing the scratch removes
// the dominant allocation cost of a campaign's analysis phase. Results
// are bit-identical to the package-level Detect/DetectRaw: reseeding a
// rand.Rand produces the same stream as constructing it from the same
// seed, and every buffer is fully overwritten per call.
//
// A Detector is not safe for concurrent use; fan-out callers create one
// per goroutine.
type Detector struct {
	cfg Config
	rng *rand.Rand

	ranks   []float64
	rankIdx []int
	shuf    []float64
	cps     []int
	confs   []float64
	order   []int
}

// NewDetector builds a reusable detector. cfg.Seed is ignored — each
// Detect call takes its own seed.
func NewDetector(cfg Config) *Detector {
	return &Detector{
		cfg: cfg.withDefaults(),
		rng: rand.New(rand.NewSource(0)),
	}
}

// Reconfigure swaps the detector's configuration while keeping its
// scratch buffers — fan-out callers thread one detector per worker
// across many analyses whose configs may differ.
func (d *Detector) Reconfigure(cfg Config) {
	d.cfg = cfg.withDefaults()
}

// Detect runs the recursive change-point analysis over xs with the
// given bootstrap seed, honoring cfg.UseRanks as configured. The
// returned slice is freshly allocated (safe to retain); everything else
// comes from scratch buffers. Detect is exactly Candidates followed by
// ApplyMagnitude at cfg.MinMagnitude.
func (d *Detector) Detect(xs []float64, seed int64) []ChangePoint {
	return ApplyMagnitude(xs, d.Candidates(xs, seed), d.cfg.MinMagnitude)
}

// Candidates runs the expensive, threshold-independent phase —
// segmentation plus bootstrap significance — and returns the accepted
// candidates sorted by index. cfg.MinMagnitude is deliberately ignored:
// the caller filters with ApplyMagnitude, once per magnitude threshold,
// over one shared candidate list. The returned slice is freshly
// allocated (safe to retain across further Candidates calls).
func (d *Detector) Candidates(xs []float64, seed int64) []Candidate {
	return d.AppendCandidates(nil, xs, seed)
}

// AppendCandidates is Candidates appending into dst — the arena
// variant for sweep callers that batch every detection window's
// candidates into one reusable buffer instead of one allocation per
// window.
func (d *Detector) AppendCandidates(dst []Candidate, xs []float64, seed int64) []Candidate {
	work := xs
	if d.cfg.UseRanks {
		work = d.ranksInto(xs)
	}
	d.rng.Seed(seed)
	d.cps = d.cps[:0]
	d.confs = d.confs[:0]
	d.segment(work, 0, len(work))

	d.order = d.order[:0]
	for i := range d.cps {
		d.order = append(d.order, i)
	}
	sort.Slice(d.order, func(a, b int) bool { return d.cps[d.order[a]] < d.cps[d.order[b]] })

	for _, oi := range d.order {
		dst = append(dst, Candidate{Index: d.cps[oi], Confidence: d.confs[oi]})
	}
	return dst
}

// ApplyMagnitude is the cheap per-threshold phase: it removes, weakest
// first, candidates whose level change across adjacent segments falls
// below minMag (re-merging the segments after each removal) and
// materializes the survivors as ChangePoints with Before/After levels
// under the final segmentation. Pure — the same candidate list can be
// filtered at any number of thresholds. cands must be sorted by Index
// (as Candidates returns them).
func ApplyMagnitude(xs []float64, cands []Candidate, minMag float64) []ChangePoint {
	out, _ := ApplyMagnitudeInto(nil, nil, xs, cands, minMag)
	return out
}

// ApplyMagnitudeInto is ApplyMagnitude appending survivors into dst,
// with keptBuf as reusable index scratch. It returns the appended
// slice and the (possibly grown) scratch for the next call. The sweep
// analyzer filters the same candidates at several thresholds per link;
// threading one dst/keptBuf pair through removes two allocations per
// (window, threshold) pair.
func ApplyMagnitudeInto(dst []ChangePoint, keptBuf []int, xs []float64, cands []Candidate, minMag float64) ([]ChangePoint, []int) {
	kept := keptBuf[:0]
	for _, c := range cands {
		kept = append(kept, c.Index)
	}
	if minMag > 0 {
		for len(kept) > 0 {
			// Compute each kept point's magnitude under current segmentation.
			weakest, weakestMag := -1, minMag
			for k, idx := range kept {
				lo := 0
				if k > 0 {
					lo = kept[k-1]
				}
				hi := len(xs)
				if k+1 < len(kept) {
					hi = kept[k+1]
				}
				mag := abs(mean(xs[idx:hi]) - mean(xs[lo:idx]))
				if mag < weakestMag {
					weakest, weakestMag = k, mag
				}
			}
			if weakest < 0 {
				break
			}
			kept = append(kept[:weakest], kept[weakest+1:]...)
		}
	}

	prev := 0
	for k, idx := range kept {
		next := len(xs)
		if k+1 < len(kept) {
			next = kept[k+1]
		}
		dst = append(dst, ChangePoint{
			Index:      idx,
			Confidence: confAt(cands, idx),
			Before:     mean(xs[prev:idx]),
			After:      mean(xs[idx:next]),
		})
		prev = idx
	}
	return dst, kept
}

// confAt looks up the bootstrap confidence recorded for index idx in
// the pre-filter candidate list (sorted by index).
func confAt(cands []Candidate, idx int) float64 {
	k := sort.Search(len(cands), func(i int) bool { return cands[i].Index >= idx })
	if k < len(cands) && cands[k].Index == idx {
		return cands[k].Confidence
	}
	return 0
}

// ranksInto is Ranks writing into the detector's scratch buffers.
func (d *Detector) ranksInto(xs []float64) []float64 {
	n := len(xs)
	if cap(d.rankIdx) < n {
		d.rankIdx = make([]int, n)
		d.ranks = make([]float64, n)
	}
	rankInto(xs, d.rankIdx[:n], d.ranks[:n])
	return d.ranks[:n]
}

// segment recursively tests [lo,hi) for a change point.
func (d *Detector) segment(xs []float64, lo, hi int) {
	n := hi - lo
	if n < 2*d.cfg.MinSegment {
		return
	}
	idx, diff := maxCusumSplit(xs[lo:hi])
	if idx < d.cfg.MinSegment || idx > n-d.cfg.MinSegment {
		// Re-clamp: pick the best split within the allowed band.
		idx, diff = maxCusumSplitBounded(xs[lo:hi], d.cfg.MinSegment)
		if idx < 0 {
			return
		}
	}
	conf := d.bootstrapConfidence(xs[lo:hi], diff)
	if conf < d.cfg.Confidence {
		return
	}
	d.cps = append(d.cps, lo+idx)
	d.confs = append(d.confs, conf)
	d.segment(xs, lo, lo+idx)
	d.segment(xs, lo+idx, hi)
}

// maxCusumSplit computes the CUSUM chart of xs and returns the index
// after the extreme excursion (the estimated change point) plus the
// chart range Smax−Smin (the detection statistic).
func maxCusumSplit(xs []float64) (int, float64) {
	m := mean(xs)
	var s, smax, smin float64
	argExt := 0
	absExt := 0.0
	for i, x := range xs {
		s += x - m
		if s > smax {
			smax = s
		}
		if s < smin {
			smin = s
		}
		if a := abs(s); a > absExt {
			absExt = a
			argExt = i
		}
	}
	return argExt + 1, smax - smin
}

// maxCusumSplitBounded restricts the split to [minSeg, n-minSeg].
func maxCusumSplitBounded(xs []float64, minSeg int) (int, float64) {
	m := mean(xs)
	var s, smax, smin float64
	argExt, absExt := -1, -1.0
	for i, x := range xs {
		s += x - m
		if s > smax {
			smax = s
		}
		if s < smin {
			smin = s
		}
		split := i + 1
		if split >= minSeg && split <= len(xs)-minSeg {
			if a := abs(s); a > absExt {
				absExt = a
				argExt = split
			}
		}
	}
	if argExt < 0 {
		return -1, 0
	}
	return argExt, smax - smin
}

// bootstrapConfidence estimates how often a random reordering of xs
// produces a smaller CUSUM range than observed. The shuffle copy lives
// in detector scratch — this is the analysis phase's hot spot.
func (d *Detector) bootstrapConfidence(xs []float64, observed float64) float64 {
	if observed <= 0 {
		return 0
	}
	shuf := append(d.shuf[:0], xs...)
	d.shuf = shuf
	smaller := 0
	n := d.cfg.Bootstraps
	for b := 0; b < n; b++ {
		d.rng.Shuffle(len(shuf), func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })
		if _, diff := maxCusumSplit(shuf); diff < observed {
			smaller++
		}
	}
	return float64(smaller) / float64(n)
}

// Ranks replaces each value by its (average-tie) rank, the
// non-parametric transform of the paper's detector.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	out := make([]float64, n)
	rankInto(xs, make([]int, n), out)
	return out
}

// rankInto writes each value's (average-tie) rank into out, using idx
// as sort scratch. Both Ranks and the detector's scratch-buffer variant
// funnel through here; len(idx) and len(out) must equal len(xs).
func rankInto(xs []float64, idx []int, out []float64) {
	n := len(xs)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
