package cusum

import (
	"math/rand"
	"reflect"
	"testing"
)

func step(n1 int, v1 float64, n2 int, v2 float64, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, 0, n1+n2)
	for i := 0; i < n1; i++ {
		out = append(out, v1+noise*rng.NormFloat64())
	}
	for i := 0; i < n2; i++ {
		out = append(out, v2+noise*rng.NormFloat64())
	}
	return out
}

func TestDetectSingleStep(t *testing.T) {
	xs := step(100, 2, 100, 30, 0.5, 1)
	cps := Detect(xs, Config{Seed: 7})
	if len(cps) != 1 {
		t.Fatalf("detected %d change points, want 1: %+v", len(cps), cps)
	}
	cp := cps[0]
	if cp.Index < 95 || cp.Index > 105 {
		t.Fatalf("change point at %d, want ~100", cp.Index)
	}
	if cp.Magnitude() < 25 || cp.Magnitude() > 31 {
		t.Fatalf("magnitude %v, want ~28", cp.Magnitude())
	}
	if cp.Confidence < 0.95 {
		t.Fatalf("confidence %v", cp.Confidence)
	}
}

func TestDetectNoChangeOnFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = 10 + rng.NormFloat64()
	}
	cps := Detect(xs, Config{Seed: 3})
	if len(cps) != 0 {
		t.Fatalf("flat noise produced %d change points: %+v", len(cps), cps)
	}
}

func TestDetectUpThenDown(t *testing.T) {
	// The level-shift pattern: baseline, congestion plateau, baseline.
	xs := append(step(80, 2, 60, 20, 0.3, 4), step(0, 0, 80, 2, 0.3, 5)...)
	cps := Detect(xs, Config{Seed: 9})
	if len(cps) != 2 {
		t.Fatalf("want up+down, got %d: %+v", len(cps), cps)
	}
	if cps[0].Magnitude() < 10 || cps[1].Magnitude() > -10 {
		t.Fatalf("shift directions wrong: %+v", cps)
	}
	if !(cps[0].Index < cps[1].Index) {
		t.Fatal("change points must be ordered")
	}
}

func TestDetectMultipleLevels(t *testing.T) {
	var xs []float64
	levels := []float64{5, 25, 5, 40, 5}
	for _, l := range levels {
		xs = append(xs, step(60, l, 0, 0, 0.4, int64(l))...)
	}
	cps := Detect(xs, Config{Seed: 11, MinMagnitude: 3})
	if len(cps) != 4 {
		t.Fatalf("want 4 change points, got %d", len(cps))
	}
	for i, cp := range cps {
		want := (i + 1) * 60
		if cp.Index < want-5 || cp.Index > want+5 {
			t.Fatalf("cp %d at %d, want ~%d", i, cp.Index, want)
		}
	}
}

func TestRankRobustnessToOutliers(t *testing.T) {
	// A handful of giant outliers must not mask a modest shift.
	xs := step(150, 10, 150, 22, 0.5, 6)
	for i := 10; i < len(xs); i += 37 {
		xs[i] = 900 // ICMP stragglers
	}
	cps := Detect(xs, Config{Seed: 13})
	if len(cps) == 0 {
		t.Fatal("rank-based detector should survive outliers")
	}
	found := false
	for _, cp := range cps {
		if cp.Index > 140 && cp.Index < 160 {
			found = true
		}
	}
	if !found {
		t.Fatalf("true shift at 150 not found: %+v", cps)
	}
}

func TestDetectRawFindsStep(t *testing.T) {
	xs := step(100, 1, 100, 50, 0.1, 8)
	cps := DetectRaw(xs, Config{Seed: 5})
	if len(cps) != 1 || cps[0].Index < 95 || cps[0].Index > 105 {
		t.Fatalf("raw detect: %+v", cps)
	}
}

func TestDetectShortSeries(t *testing.T) {
	if got := Detect([]float64{1, 2, 3}, Config{}); len(got) != 0 {
		t.Fatal("series shorter than 2*MinSegment must yield nothing")
	}
	if got := Detect(nil, Config{}); len(got) != 0 {
		t.Fatal("nil series must yield nothing")
	}
}

func TestDetectDeterminism(t *testing.T) {
	xs := step(200, 3, 200, 18, 1.0, 10)
	a := Detect(xs, Config{Seed: 42})
	b := Detect(xs, Config{Seed: 42})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must give identical detections")
	}
}

func TestMinSegmentRespected(t *testing.T) {
	xs := step(5, 0, 300, 10, 0.2, 12)
	cps := Detect(xs, Config{MinSegment: 20, Seed: 1})
	for _, cp := range cps {
		if cp.Index < 20 || cp.Index > len(xs)-20 {
			t.Fatalf("change point %d violates MinSegment", cp.Index)
		}
	}
}

func TestBeforeAfterUseOriginalUnits(t *testing.T) {
	xs := step(100, 2, 100, 30, 0.2, 14)
	cps := Detect(xs, Config{Seed: 2})
	if len(cps) != 1 {
		t.Fatalf("got %d cps", len(cps))
	}
	// Rank transform is internal: Before/After must be ~2 and ~30,
	// not rank values (~50 and ~150).
	if cps[0].Before > 5 || cps[0].After < 25 {
		t.Fatalf("levels in wrong units: %+v", cps[0])
	}
}

func TestMinMagnitudeFilter(t *testing.T) {
	// A 2-unit wiggle between two 30-unit shifts must be filtered at
	// MinMagnitude 10 while the real shifts survive.
	var xs []float64
	xs = append(xs, step(80, 5, 80, 35, 0.3, 20)...)
	xs = append(xs, step(80, 37, 80, 5, 0.3, 21)...)
	filtered := Detect(xs, Config{Seed: 30, MinMagnitude: 10})
	if len(filtered) != 2 {
		t.Fatalf("want 2 surviving shifts, got %d: %+v", len(filtered), filtered)
	}
	for _, cp := range filtered {
		if abs(cp.Magnitude()) < 10 {
			t.Fatalf("sub-threshold shift survived: %+v", cp)
		}
	}
	unfiltered := Detect(xs, Config{Seed: 30})
	if len(unfiltered) < 3 {
		t.Fatalf("unfiltered run should also see the wiggle, got %d", len(unfiltered))
	}
}

func TestRanksMatchDetectorScratch(t *testing.T) {
	// Ranks and the detector's scratch-buffer variant share one
	// implementation; pin their equality (ties included) so the dedupe
	// cannot silently regress.
	rng := rand.New(rand.NewSource(77))
	d := NewDetector(Config{})
	for trial := 0; trial < 50; trial++ {
		xs := make([]float64, rng.Intn(200)+1)
		for i := range xs {
			xs[i] = float64(rng.Intn(20)) // many ties
		}
		if got, want := d.ranksInto(xs), Ranks(xs); !reflect.DeepEqual(append([]float64(nil), got...), want) {
			t.Fatalf("trial %d: ranksInto = %v, Ranks = %v", trial, got, want)
		}
	}
}

func TestCandidatesPlusApplyMagnitudeEqualsDetect(t *testing.T) {
	// The two-phase API must reproduce Detect bit for bit at every
	// magnitude threshold — the contract the threshold sweep relies on.
	xs := append(step(80, 5, 80, 35, 0.3, 20), step(80, 37, 80, 5, 0.3, 21)...)
	for _, minMag := range []float64{0, 2.5, 5, 10, 20} {
		cfg := Config{Seed: 30, MinMagnitude: minMag}
		want := Detect(xs, cfg)

		dcfg := cfg
		dcfg.UseRanks = true
		d := NewDetector(dcfg)
		cands := d.Candidates(xs, cfg.Seed)
		got := ApplyMagnitude(xs, cands, minMag)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("minMag %v: two-phase %+v != Detect %+v", minMag, got, want)
		}
	}
}

func TestCandidatesIgnoreMinMagnitude(t *testing.T) {
	// Candidate detection is threshold-independent: the same list comes
	// back whatever MinMagnitude says.
	xs := step(100, 2, 100, 30, 0.5, 1)
	a := NewDetector(Config{UseRanks: true}).Candidates(xs, 7)
	b := NewDetector(Config{UseRanks: true, MinMagnitude: 50}).Candidates(xs, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("candidates vary with MinMagnitude: %+v vs %+v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("no candidates on a clean step")
	}
}

func TestReconfigureKeepsScratch(t *testing.T) {
	xs := step(100, 2, 100, 30, 0.5, 1)
	d := NewDetector(Config{UseRanks: true})
	before := d.Detect(xs, 7)
	d.Reconfigure(Config{UseRanks: true, MinMagnitude: 5})
	after := d.Detect(xs, 7)
	want := Detect(xs, Config{Seed: 7, MinMagnitude: 5})
	if !reflect.DeepEqual(after, want) {
		t.Fatalf("reconfigured detector: %+v, want %+v", after, want)
	}
	if len(before) == 0 {
		t.Fatal("pre-reconfigure detection empty")
	}
}

func TestRanksAverageTies(t *testing.T) {
	got := Ranks([]float64{10, 20, 10, 30})
	want := []float64{1.5, 3, 1.5, 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Ranks = %v, want %v", got, want)
	}
}

func TestRanksMonotone(t *testing.T) {
	xs := []float64{5, 1, 9, 3}
	r := Ranks(xs)
	if !(r[1] < r[3] && r[3] < r[0] && r[0] < r[2]) {
		t.Fatalf("rank order wrong: %v", r)
	}
}

func BenchmarkDetectYearHourly(b *testing.B) {
	// A year of hourly samples with a dozen shifts: the bulk-scan cost
	// per link in the Table 1 experiment.
	rng := rand.New(rand.NewSource(99))
	xs := make([]float64, 24*365)
	level := 5.0
	for i := range xs {
		if i%700 == 0 {
			if level == 5 {
				level = 25
			} else {
				level = 5
			}
		}
		xs[i] = level + rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Detect(xs, Config{Bootstraps: 50, Seed: 1})
	}
}
