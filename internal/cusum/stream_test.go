package cusum

import (
	"math"
	"math/rand"
	"testing"
)

// A flat noisy series should keep evidence low; a level shift of a few
// noise units should push it well above the flat ceiling, and the
// evidence should relax again once the baseline absorbs the new level.
func TestStreamDetectsLevelShift(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := NewStream(StreamConfig{})

	var flatMax float64
	for i := 0; i < 500; i++ {
		s.Observe(10 + rng.NormFloat64())
		if i > 50 && s.Evidence() > flatMax {
			flatMax = s.Evidence()
		}
	}
	var shiftMax float64
	for i := 0; i < 200; i++ {
		s.Observe(16 + rng.NormFloat64())
		if s.Evidence() > shiftMax {
			shiftMax = s.Evidence()
		}
	}
	if shiftMax < 4*flatMax || shiftMax < 10 {
		t.Fatalf("shift evidence %.2f not clearly above flat ceiling %.2f", shiftMax, flatMax)
	}
	for i := 0; i < 3000; i++ {
		s.Observe(16 + rng.NormFloat64())
	}
	if rel := s.Evidence(); rel > shiftMax/2 {
		t.Fatalf("evidence did not relax after absorption: %.2f (peak %.2f)", rel, shiftMax)
	}
}

func TestStreamNegativeShiftSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	up := NewStream(StreamConfig{})
	down := NewStream(StreamConfig{})
	for i := 0; i < 400; i++ {
		e := rng.NormFloat64()
		up.Observe(50 + e)
		down.Observe(50 + e)
	}
	var u, d float64
	for i := 0; i < 100; i++ {
		e := rng.NormFloat64()
		up.Observe(55 + e)
		down.Observe(45 + e)
		u = math.Max(u, up.Evidence())
		d = math.Max(d, down.Evidence())
	}
	if u < 5 || d < 5 || math.Abs(u-d) > 0.3*math.Max(u, d) {
		t.Fatalf("one-sided asymmetry: up peak=%.2f down peak=%.2f", u, d)
	}
}

// Two taps fed identical values must hold bit-identical state — the
// budget scheduler's determinism rests on this.
func TestStreamBitDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewStream(StreamConfig{})
	b := NewStream(StreamConfig{})
	for i := 0; i < 1000; i++ {
		x := 20 + 5*rng.NormFloat64()
		if i%3 == 0 {
			x += 8
		}
		a.Observe(x)
		b.Observe(x)
	}
	if math.Float64bits(a.Evidence()) != math.Float64bits(b.Evidence()) ||
		math.Float64bits(a.Baseline()) != math.Float64bits(b.Baseline()) ||
		math.Float64bits(a.Dev()) != math.Float64bits(b.Dev()) {
		t.Fatalf("streams diverged: %+v vs %+v", a, b)
	}
}

func TestStreamZeroValueUsable(t *testing.T) {
	var s Stream
	for i := 0; i < 100; i++ {
		s.Observe(float64(i % 3))
	}
	if s.Samples() != 100 {
		t.Fatalf("samples = %d", s.Samples())
	}
	if math.IsNaN(s.Evidence()) || math.IsInf(s.Evidence(), 0) {
		t.Fatalf("evidence not finite: %v", s.Evidence())
	}
}

func TestStreamConstantSeriesNoEvidence(t *testing.T) {
	s := NewStream(StreamConfig{})
	for i := 0; i < 1000; i++ {
		s.Observe(25)
	}
	if ev := s.Evidence(); ev != 0 {
		t.Fatalf("constant series accumulated evidence %.3f", ev)
	}
}

func BenchmarkStreamObserve(b *testing.B) {
	s := NewStream(StreamConfig{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Observe(float64(i&127) * 0.25)
	}
}
