package cusum

import "math"

// RankStreamConfig tunes a RankStream tap.
type RankStreamConfig struct {
	// Window is how many recent samples each new observation is ranked
	// against. Default 128 — at the collector's 30-minute bins that is
	// just under three days, long enough to hold the pre-shift level
	// while a diurnal congestion pattern develops on top of it.
	Window int
	// Slack is the CUSUM allowance k, in rank-sigma units, subtracted
	// from each standardized rank residual before it accumulates.
	// Default 0.6.
	Slack float64
	// Decay leaks the one-sided sums each observation. Default 0.995 —
	// slower than Stream's 0.99 because the tap runs on 30-minute bins,
	// not 5-minute samples.
	Decay float64
}

func (c RankStreamConfig) withDefaults() RankStreamConfig {
	if c.Window <= 0 {
		c.Window = 128
	}
	if c.Slack <= 0 {
		c.Slack = 0.6
	}
	if c.Decay <= 0 {
		c.Decay = 0.995
	}
	return c
}

// rankWarmup is the number of window samples required before the
// evidence sums start accumulating — ranks over a near-empty window
// are too coarse to standardize.
const rankWarmup = 16

// sqrt12 standardizes a U(0,1) rank statistic: (u−½)·√12 has unit
// variance under exchangeability.
var sqrt12 = math.Sqrt(12)

// RankStream is the streaming counterpart of the offline rank-CUSUM
// Detector, the way Stream is the streaming counterpart of the
// bootstrap pipeline: a constant-memory tap fed one sample at a time
// that maintains Page's one-sided sums over *rank* residuals instead
// of EWMA-standardized ones. Each observation is ranked against a
// sliding window of recent values, the normalized rank is centered and
// scaled to unit variance, and the leaky CUSUM accumulates it — so a
// sustained level shift shows up as evidence growing by roughly
// (√12·(u−½) − Slack) per sample while heavy-tailed RTT spikes, which
// wreck mean/deviation estimates, move a rank by at most one position.
// Everything is pure float arithmetic on the sample sequence: two
// RankStreams fed the same values in the same order hold bit-identical
// state, which is what lets the streaming observatory alert live
// without touching campaign determinism. Allocation-free after New.
type RankStream struct {
	cfg  RankStreamConfig
	ring []float64 // last min(n, Window) samples, insertion-ordered
	next int       // ring slot the next sample overwrites
	n    uint64    // total samples observed
	sPos float64
	sNeg float64
}

// NewRankStream builds a tap, allocating its window ring once.
func NewRankStream(cfg RankStreamConfig) *RankStream {
	cfg = cfg.withDefaults()
	return &RankStream{cfg: cfg, ring: make([]float64, 0, cfg.Window)}
}

// Observe feeds one sample. NaNs must be filtered by the caller (the
// collector grid's missing marker carries no rank information).
// Allocation-free.
func (s *RankStream) Observe(x float64) {
	// Rank x against the current window before x enters it, so the
	// statistic is a genuine sequential rank (new value vs recent
	// history), not a self-inclusive one.
	if n := len(s.ring); n >= rankWarmup {
		less, equal := 0, 0
		for _, v := range s.ring {
			if v < x {
				less++
			} else if v == x {
				equal++
			}
		}
		u := (float64(less) + 0.5*float64(equal) + 0.5) / float64(n+1)
		z := (u - 0.5) * sqrt12
		s.sPos = s.sPos*s.cfg.Decay + z - s.cfg.Slack
		if s.sPos < 0 {
			s.sPos = 0
		}
		s.sNeg = s.sNeg*s.cfg.Decay - z - s.cfg.Slack
		if s.sNeg < 0 {
			s.sNeg = 0
		}
	}
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, x)
	} else {
		s.ring[s.next] = x
		s.next++
		if s.next == len(s.ring) {
			s.next = 0
		}
	}
	s.n++
}

// Evidence is the current level-shift evidence: the larger one-sided
// sum, in rank-sigma units. A flat exchangeable series hovers near
// zero; a sustained upward shift past the window's old level grows
// evidence by up to (√12/2 − Slack) per sample until the shifted
// regime fills the window.
func (s *RankStream) Evidence() float64 {
	if s.sPos > s.sNeg {
		return s.sPos
	}
	return s.sNeg
}

// Upward reports whether the dominant evidence side is the upward one
// (RTT rise) rather than the downward one.
func (s *RankStream) Upward() bool { return s.sPos >= s.sNeg }

// Samples is the number of observations fed so far.
func (s *RankStream) Samples() uint64 { return s.n }

// Reset clears the window and sums but keeps the tuning (and the ring
// allocation).
func (s *RankStream) Reset() {
	s.ring = s.ring[:0]
	s.next = 0
	s.n = 0
	s.sPos, s.sNeg = 0, 0
}
