package cusum

import "math"

// StreamConfig tunes a Stream tap.
type StreamConfig struct {
	// BaselineAlpha is the EWMA adaptation rate of the level estimate.
	// Small values keep the baseline slow so genuine level shifts show
	// up as sustained drift before being absorbed. Default 0.02.
	BaselineAlpha float64
	// DevAlpha is the EWMA rate of the absolute-deviation (noise
	// scale) estimate. Default 0.05.
	DevAlpha float64
	// Slack is the dead band, in deviation units, subtracted from each
	// standardized residual before it accumulates — the classic CUSUM
	// allowance k that keeps pure noise from drifting the sums.
	// Default 0.9.
	Slack float64
	// Decay leaks the one-sided sums each observation so evidence
	// relaxes after the baseline absorbs a shift. Default 0.99.
	Decay float64
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.BaselineAlpha <= 0 {
		c.BaselineAlpha = 0.02
	}
	if c.DevAlpha <= 0 {
		c.DevAlpha = 0.05
	}
	if c.Slack <= 0 {
		c.Slack = 0.9
	}
	if c.Decay <= 0 {
		c.Decay = 0.99
	}
	return c
}

// Stream is a constant-memory, one-pass CUSUM tap: a cheap streaming
// counterpart to the offline bootstrap Detector, meant to be fed every
// collected sample and asked "how much recent level-shift evidence
// does this series carry?". It maintains an EWMA baseline, an EWMA
// noise scale, and two leaky one-sided cumulative sums of the
// standardized residuals (Page's test on a slowly adapting level).
// Everything is pure float arithmetic on the sample sequence: two
// Streams fed the same values in the same order hold bit-identical
// state, which is what lets the budget scheduler rank links without
// breaking campaign determinism.
type Stream struct {
	cfg      StreamConfig
	n        uint64
	baseline float64
	dev      float64
	sPos     float64
	sNeg     float64
}

// NewStream builds a tap. The zero Stream is also usable with default
// tuning.
func NewStream(cfg StreamConfig) Stream {
	return Stream{cfg: cfg.withDefaults()}
}

// Observe feeds one sample. Allocation-free.
func (s *Stream) Observe(x float64) {
	if s.n == 0 {
		if s.cfg.BaselineAlpha == 0 {
			s.cfg = s.cfg.withDefaults()
		}
		s.baseline = x
		s.n = 1
		return
	}
	d := x - s.baseline
	ad := math.Abs(d)
	if s.n == 1 {
		s.dev = ad
	} else {
		s.dev += s.cfg.DevAlpha * (ad - s.dev)
	}
	// The noise-scale estimate needs a few samples before standardized
	// residuals mean anything; accumulating sums earlier would turn
	// warmup jitter into phantom evidence.
	if s.n >= streamWarmup {
		scale := s.dev
		if scale < 1e-9 {
			scale = 1e-9
		}
		z := d / scale
		s.sPos = s.sPos*s.cfg.Decay + z - s.cfg.Slack
		if s.sPos < 0 {
			s.sPos = 0
		}
		s.sNeg = s.sNeg*s.cfg.Decay - z - s.cfg.Slack
		if s.sNeg < 0 {
			s.sNeg = 0
		}
	}
	s.baseline += s.cfg.BaselineAlpha * d
	s.n++
}

// streamWarmup is the number of samples fed to the baseline and noise
// estimates before the evidence sums start accumulating.
const streamWarmup = 8

// Evidence is the current level-shift evidence: the larger of the two
// one-sided sums, in noise-scale units. Flat series hover near zero;
// a sustained shift of m deviations grows evidence by roughly
// (m - Slack) per sample until the baseline catches up.
func (s *Stream) Evidence() float64 {
	if s.sPos > s.sNeg {
		return s.sPos
	}
	return s.sNeg
}

// Baseline is the current EWMA level estimate.
func (s *Stream) Baseline() float64 { return s.baseline }

// Dev is the current EWMA absolute-deviation (noise scale) estimate.
func (s *Stream) Dev() float64 { return s.dev }

// Samples is the number of observations fed so far.
func (s *Stream) Samples() uint64 { return s.n }

// Reset clears the accumulated state but keeps the tuning.
func (s *Stream) Reset() {
	s.n, s.baseline, s.dev, s.sPos, s.sNeg = 0, 0, 0, 0, 0
}

// StreamState is a Stream's full serializable state for engine
// checkpoints. The resolved config rides along: Observe lazily
// defaults the tuning only on the very first sample, so a restored
// mid-stream tap must carry the exact tuning it was running with.
type StreamState struct {
	BaselineAlpha, DevAlpha, Slack, Decay float64
	N                                     uint64
	Baseline, Dev, SPos, SNeg             float64
}

// State captures the tap for a checkpoint.
func (s *Stream) State() StreamState {
	return StreamState{
		BaselineAlpha: s.cfg.BaselineAlpha,
		DevAlpha:      s.cfg.DevAlpha,
		Slack:         s.cfg.Slack,
		Decay:         s.cfg.Decay,
		N:             s.n,
		Baseline:      s.baseline,
		Dev:           s.dev,
		SPos:          s.sPos,
		SNeg:          s.sNeg,
	}
}

// RestoreState overwrites the tap from a checkpoint.
func (s *Stream) RestoreState(st StreamState) {
	s.cfg = StreamConfig{
		BaselineAlpha: st.BaselineAlpha,
		DevAlpha:      st.DevAlpha,
		Slack:         st.Slack,
		Decay:         st.Decay,
	}
	s.n = st.N
	s.baseline = st.Baseline
	s.dev = st.Dev
	s.sPos = st.SPos
	s.sNeg = st.SNeg
}
