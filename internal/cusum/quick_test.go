package cusum

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// Property: Ranks is a bijection onto {1..n} for distinct inputs, and
// order-preserving.
func TestQuickRanksBijection(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := int(n8%60) + 2
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		used := map[float64]bool{}
		for i := range xs {
			v := rng.Float64()
			for used[v] {
				v = rng.Float64()
			}
			used[v] = true
			xs[i] = v
		}
		r := Ranks(xs)
		sorted := append([]float64(nil), r...)
		sort.Float64s(sorted)
		for i, v := range sorted {
			if v != float64(i+1) {
				return false
			}
		}
		// Order preservation.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if (xs[i] < xs[j]) != (r[i] < r[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: ranks are invariant under any strictly monotone transform
// of the inputs — the robustness the paper buys with the rank-based
// CUSUM.
func TestQuickRanksMonotoneInvariance(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := int(n8%60) + 2
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		ys := make([]float64, n)
		for i, x := range xs {
			ys[i] = x*x*x + 5*x // strictly increasing
		}
		ra, rb := Ranks(xs), Ranks(ys)
		for i := range ra {
			if ra[i] != rb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: one candidate list filtered at increasing magnitude
// thresholds yields monotonically fewer change points, and each
// filtered list equals a from-scratch Detect at that threshold.
func TestQuickApplyMagnitudeSweep(t *testing.T) {
	f := func(seed int64, n8 uint8, mag uint8) bool {
		n := int(n8%150) + 50
		m := float64(mag%30) + 5
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		for i := range xs {
			v := 5.0
			if i >= n/2 {
				v += m
			}
			xs[i] = v + rng.NormFloat64()
		}
		d := NewDetector(Config{UseRanks: true})
		cands := d.Candidates(xs, seed)
		prevLen := len(cands) + 1
		for _, minMag := range []float64{0, 3, 9, 27} {
			got := ApplyMagnitude(xs, cands, minMag)
			if len(got) > prevLen {
				return false
			}
			prevLen = len(got)
			want := Detect(xs, Config{Seed: seed, MinMagnitude: minMag})
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: detected change points are strictly increasing, inside
// the series, and magnitudes respect MinMagnitude.
func TestQuickDetectInvariants(t *testing.T) {
	f := func(seed int64, n8 uint8, shiftAt uint8, mag uint8) bool {
		n := int(n8%200) + 40
		cut := int(shiftAt) % (n - 20)
		if cut < 10 {
			cut = 10
		}
		m := float64(mag%40) + 5
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		for i := range xs {
			v := 5.0
			if i >= cut {
				v += m
			}
			xs[i] = v + rng.NormFloat64()
		}
		cps := Detect(xs, Config{Seed: seed, MinMagnitude: 3})
		prev := -1
		for _, cp := range cps {
			if cp.Index <= prev || cp.Index <= 0 || cp.Index >= n {
				return false
			}
			prev = cp.Index
			if abs(cp.Magnitude()) < 3 {
				return false
			}
			if cp.Confidence < 0 || cp.Confidence > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
