package cusum

import (
	"math"
	"testing"
)

// lcg is a tiny deterministic generator so the tests are reproducible
// without seeding global state.
type lcg uint64

func (l *lcg) next() float64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return float64(*l>>11) / float64(1<<53)
}

// gauss approximates a standard normal via the sum of 12 uniforms.
func (l *lcg) gauss() float64 {
	var s float64
	for i := 0; i < 12; i++ {
		s += l.next()
	}
	return s - 6
}

func TestRankStreamFlatSeriesStaysQuiet(t *testing.T) {
	s := NewRankStream(RankStreamConfig{})
	r := lcg(1)
	maxEv := 0.0
	for i := 0; i < 2000; i++ {
		s.Observe(20 + r.gauss())
		if ev := s.Evidence(); ev > maxEv {
			maxEv = ev
		}
	}
	if maxEv >= 8 {
		t.Fatalf("flat gaussian series reached evidence %.2f; want < 8", maxEv)
	}
}

func TestRankStreamDetectsLevelShift(t *testing.T) {
	s := NewRankStream(RankStreamConfig{})
	r := lcg(2)
	for i := 0; i < 500; i++ {
		s.Observe(20 + r.gauss())
	}
	pre := s.Evidence()
	// 15 ms upward shift — three slots should already push the rank
	// statistic, and within a day of 30-min slots evidence must clear
	// the promotion bar by a wide margin.
	crossed := -1
	for i := 0; i < 48; i++ {
		s.Observe(35 + r.gauss())
		if s.Evidence() >= 8 && crossed < 0 {
			crossed = i
		}
	}
	if crossed < 0 {
		t.Fatalf("15 ms shift never reached evidence 8 (pre=%.2f post=%.2f)", pre, s.Evidence())
	}
	if !s.Upward() {
		t.Fatalf("upward shift classified as downward")
	}
	if crossed > 24 {
		t.Fatalf("evidence crossed only after %d shifted slots; want ≤ 24", crossed)
	}
}

func TestRankStreamRobustToSpikes(t *testing.T) {
	s := NewRankStream(RankStreamConfig{})
	r := lcg(3)
	maxEv := 0.0
	for i := 0; i < 2000; i++ {
		v := 20 + r.gauss()
		if i%40 == 7 {
			v += 500 // heavy-tailed RTT spike
		}
		s.Observe(v)
		if ev := s.Evidence(); ev > maxEv {
			maxEv = ev
		}
	}
	if maxEv >= 8 {
		t.Fatalf("sparse 500 ms spikes reached evidence %.2f; want < 8", maxEv)
	}
}

func TestRankStreamDeterministicAndResettable(t *testing.T) {
	a := NewRankStream(RankStreamConfig{})
	b := NewRankStream(RankStreamConfig{})
	r1, r2 := lcg(4), lcg(4)
	for i := 0; i < 700; i++ {
		a.Observe(20 + 10*r1.next())
		b.Observe(20 + 10*r2.next())
		if math.Float64bits(a.Evidence()) != math.Float64bits(b.Evidence()) {
			t.Fatalf("evidence diverged at sample %d: %v vs %v", i, a.Evidence(), b.Evidence())
		}
	}
	// Reset + replay must reproduce the same trajectory bit-for-bit —
	// the checkpoint-resume resync path depends on it.
	a.Reset()
	if a.Evidence() != 0 || a.Samples() != 0 {
		t.Fatalf("reset left state behind: ev=%v n=%d", a.Evidence(), a.Samples())
	}
	r3 := lcg(4)
	for i := 0; i < 700; i++ {
		a.Observe(20 + 10*r3.next())
	}
	if math.Float64bits(a.Evidence()) != math.Float64bits(b.Evidence()) {
		t.Fatalf("replay after reset diverged: %v vs %v", a.Evidence(), b.Evidence())
	}
}

func TestRankStreamObserveZeroAlloc(t *testing.T) {
	s := NewRankStream(RankStreamConfig{})
	r := lcg(5)
	for i := 0; i < 300; i++ {
		s.Observe(20 + r.gauss())
	}
	x := 21.5
	if n := testing.AllocsPerRun(200, func() { s.Observe(x); x += 0.1 }); n != 0 {
		t.Fatalf("Observe allocates %.1f/op; want 0", n)
	}
}
