package analysis

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"afrixp/internal/levelshift"
	"afrixp/internal/timeseries"
)

// summarizeVerdict renders every verdict observable with floats as raw
// IEEE bits, so two summaries are equal iff the verdicts are
// bit-identical (NaN-holed series defeat reflect.DeepEqual).
func summarizeVerdict(v Verdict) string {
	var b bytes.Buffer
	bits := func(f float64) uint64 { return math.Float64bits(f) }
	fmt.Fprintf(&b, "flag=%t nearflat=%t sym=%t cong=%t class=%d aw=%x dt=%d\n",
		v.Flagged, v.NearFlat, v.Symmetric, v.Congested, v.Class, bits(v.AW), v.DeltaTUD)
	fmt.Fprintf(&b, "diur=%t amp=%x cons=%x peak=%x days=%d\n",
		v.Diurnal.Diurnal, bits(v.Diurnal.AmplitudeMs), bits(v.Diurnal.Consistency),
		bits(v.Diurnal.PeakHour), v.Diurnal.DaysEvaluated)
	for _, r := range []levelshift.Result{v.Far, v.Near} {
		fmt.Fprintf(&b, "base=%x shifts=", bits(r.Baseline))
		for _, cp := range r.Shifts {
			fmt.Fprintf(&b, "(%d,%x,%x,%x)", cp.Index, bits(cp.Confidence), bits(cp.Before), bits(cp.After))
		}
		b.WriteString(" events=")
		for _, e := range r.Events {
			fmt.Fprintf(&b, "(%d,%d,%x,%t)", e.Start, e.End, bits(e.Magnitude), e.OpenEnded)
		}
		b.WriteString(" series=")
		if r.Series != nil {
			fmt.Fprintf(&b, "step=%d:", r.Series.Step)
			for _, x := range r.Series.Values {
				fmt.Fprintf(&b, "%x,", bits(x))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// sweepLinkSeries builds link series of various congestion shapes,
// including gap patterns, so the sweep equality is not checked on
// clean inputs only.
func sweepLinkSeries(t *testing.T) map[string]LinkSeries {
	t.Helper()
	out := map[string]LinkSeries{
		"diurnal-congested": synth(21, diurnalFn(2, 25, 9, 17, 0.5, 1), flatFn(1, 0.3, 2)),
		"borderline-12ms":   synth(14, diurnalFn(2, 12, 10, 16, 0.4, 3), flatFn(1, 0.3, 4)),
		"near-shifts-too":   synth(14, diurnalFn(2, 25, 9, 17, 0.5, 5), diurnalFn(2, 25, 9, 17, 0.5, 6)),
		"flat":              synth(14, flatFn(2, 0.4, 7), flatFn(1, 0.3, 8)),
	}
	lossy := synth(21, diurnalFn(2, 20, 9, 17, 0.5, 9), flatFn(1, 0.3, 10))
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < lossy.Far.Len(); i++ {
		if rng.Float64() < 0.15 {
			lossy.Far.Set(i, timeseries.Missing)
		}
		if rng.Float64() < 0.1 {
			lossy.Near.Set(i, timeseries.Missing)
		}
	}
	out["lossy"] = lossy
	return out
}

// TestAnalyzeLinkSweepBitIdentical is the sweep's acceptance property:
// the shared-detection path must produce, per threshold, exactly the
// verdict of an independent AnalyzeLink call — bit for bit, across
// congestion shapes and gap patterns.
func TestAnalyzeLinkSweepBitIdentical(t *testing.T) {
	thresholds := []float64{5, 10, 15, 20}
	for name, ls := range sweepLinkSeries(t) {
		cfg := DefaultConfig()
		swept := AnalyzeLinkSweep(ls, cfg, thresholds)
		if len(swept) != len(thresholds) {
			t.Fatalf("%s: %d verdicts for %d thresholds", name, len(swept), len(thresholds))
		}
		for k, thr := range thresholds {
			one := cfg
			one.ThresholdMs = thr
			want := summarizeVerdict(AnalyzeLink(ls, one))
			got := summarizeVerdict(swept[k])
			if got != want {
				t.Errorf("%s @ %g ms: sweep verdict diverges from AnalyzeLink\nsweep: %s\nsolo:  %s",
					name, thr, got, want)
			}
		}
	}
}

// TestSweeperReuseAcrossLinks pins that one Sweeper fed many links in
// sequence (the campaign worker pattern) matches fresh per-link
// sweeps — detector scratch must not leak state between links.
func TestSweeperReuseAcrossLinks(t *testing.T) {
	thresholds := []float64{5, 10, 15, 20}
	cfg := DefaultConfig()
	sw := NewSweeper()
	for name, ls := range sweepLinkSeries(t) {
		reused := sw.AnalyzeLinkSweep(ls, cfg, thresholds)
		fresh := AnalyzeLinkSweep(ls, cfg, thresholds)
		for k := range thresholds {
			if a, b := summarizeVerdict(reused[k]), summarizeVerdict(fresh[k]); a != b {
				t.Errorf("%s @ %g ms: reused sweeper diverges\nreused: %s\nfresh:  %s",
					name, thresholds[k], a, b)
			}
		}
	}
}

// TestSweepNearFlatOverride pins that an explicit NearFlatMs applies
// at every threshold (not just the default nearLimit=thr case).
func TestSweepNearFlatOverride(t *testing.T) {
	ls := sweepLinkSeries(t)["near-shifts-too"]
	cfg := DefaultConfig()
	cfg.NearFlatMs = 50 // near shifts of ~25 ms now count as flat
	thresholds := []float64{5, 10}
	swept := AnalyzeLinkSweep(ls, cfg, thresholds)
	for k, thr := range thresholds {
		one := cfg
		one.ThresholdMs = thr
		want := AnalyzeLink(ls, one)
		if swept[k].NearFlat != want.NearFlat {
			t.Fatalf("thr %g: NearFlat %t != %t", thr, swept[k].NearFlat, want.NearFlat)
		}
		if !swept[k].NearFlat {
			t.Fatalf("thr %g: 50 ms NearFlatMs must tolerate 25 ms near shifts", thr)
		}
	}
}

// TestSweepEmptyThresholds keeps the degenerate call well-defined.
func TestSweepEmptyThresholds(t *testing.T) {
	ls := synth(7, flatFn(2, 0.4, 20), flatFn(1, 0.3, 21))
	if got := AnalyzeLinkSweep(ls, DefaultConfig(), nil); len(got) != 0 {
		t.Fatalf("nil thresholds produced %d verdicts", len(got))
	}
}

// TestSweepNaNHeavyMatchesSingleShot drives the sweep over a series
// with ≥50% of both ends missing — alternating per-round losses plus a
// four-day outage hole, the fault-injection shapes — and requires the
// shared-detection sweep to (a) survive without panics, (b) keep every
// verdict number finite, and (c) match the single-shot pipeline bit
// for bit at every threshold.
func TestSweepNaNHeavyMatchesSingleShot(t *testing.T) {
	ls := synth(21, diurnalFn(2, 25, 9, 17, 0.5, 30), flatFn(1, 0.3, 31))
	missing := 0
	holeStart, holeEnd := 7*48, 11*48 // days 7–10 fully dark
	for i := 0; i < ls.Far.Len(); i++ {
		if i%2 == 0 || (i >= holeStart && i < holeEnd) {
			ls.Far.Set(i, timeseries.Missing)
			ls.Near.Set(i, timeseries.Missing)
			missing++
		}
	}
	if 2*missing < ls.Far.Len() {
		t.Fatalf("gap pattern too thin: %d/%d missing", missing, ls.Far.Len())
	}

	thresholds := []float64{5, 10, 15, 20}
	cfg := DefaultConfig()
	swept := AnalyzeLinkSweep(ls, cfg, thresholds)
	for k, thr := range thresholds {
		one := cfg
		one.ThresholdMs = thr
		want := summarizeVerdict(AnalyzeLink(ls, one))
		if got := summarizeVerdict(swept[k]); got != want {
			t.Errorf("NaN-heavy series @ %g ms: sweep diverges from single-shot\nsweep: %s\nsolo:  %s",
				thr, got, want)
		}
		if v := swept[k]; math.IsNaN(v.AW) || math.IsNaN(v.Diurnal.Consistency) ||
			math.IsNaN(v.Diurnal.AmplitudeMs) {
			t.Fatalf("NaN leaked into the verdict at %g ms: %+v", thr, v)
		}
	}
}
