package analysis

import (
	"afrixp/internal/cusum"
	"afrixp/internal/diurnal"
	"afrixp/internal/simclock"
	"afrixp/internal/timeseries"
)

// StreamState is a link's live status in the streaming observatory —
// the online projection of the batch pipeline's verdict ladder:
// StreamClear ↔ not flagged, StreamSuspected ↔ flagged with a flat
// near end ("potentially congested" in Table 1 terms), and
// StreamCongested once the recurring diurnal pattern confirms.
type StreamState int8

// Streaming link states.
const (
	StreamClear StreamState = iota
	StreamSuspected
	StreamCongested
)

// String names the state for the API and alert log.
func (s StreamState) String() string {
	switch s {
	case StreamSuspected:
		return "suspected"
	case StreamCongested:
		return "congested"
	default:
		return "clear"
	}
}

// StreamTransition is one timestamped state change on one link — the
// observatory's alert unit. At is the virtual time of the aggregated
// slot whose evidence crossed, NOT the wall/barrier time it was
// computed at, which is what keeps the alert log invariant across
// Workers × BatchSteps × Shards.
type StreamTransition struct {
	At       simclock.Time
	From, To StreamState
	// ThresholdMs is the magnitude threshold in force.
	ThresholdMs float64
	// MagnitudeMs is the estimated level-shift magnitude (current fast
	// level minus frozen pre-shift baseline) at the transition.
	MagnitudeMs float64
	// Evidence is the far-end rank-CUSUM evidence at the transition.
	Evidence float64
}

// StreamConfig tunes a StreamDetector.
type StreamConfig struct {
	// ThresholdMs is the level-shift magnitude threshold, as in the
	// batch Config. Default 10 (the paper's operating point).
	ThresholdMs float64
	// EvidenceOn is the far-end rank-CUSUM evidence needed to promote
	// Clear → Suspected. Default 8 rank-sigma.
	EvidenceOn float64
	// EvidenceOff is the evidence floor below which (together with a
	// collapsed magnitude) a link demotes back to Clear. It also gates
	// the pre-shift baseline freeze. Default 2.
	EvidenceOff float64
	// NearFlatMs bounds the near end's own magnitude estimate: a link
	// only promotes while the near shift stays under it, mirroring the
	// batch pipeline's NearFlat gate. Default: the analysis threshold.
	NearFlatMs float64
	// HoldSlots is how many consecutive qualifying slots the demotion
	// condition must hold before a non-clear link demotes — diurnal
	// congestion relaxes every off-peak night, and the batch pipeline
	// treats the whole epoch as one event, so demotion must survive a
	// full day of quiet. Default 48 slots (one day at 30-minute bins).
	HoldSlots int
	// Rank tunes the far-end rank-CUSUM tap.
	Rank cusum.RankStreamConfig
	// Near tunes the near-end rank-CUSUM tap (the "is the shift really
	// at this link" guard). A rank tap, not an EWMA one, for the same
	// reason as the far end: a diurnal ramp is slow enough for an EWMA
	// baseline to absorb, while a ~3-day rank window still sees it.
	Near cusum.RankStreamConfig
	// Diurnal gates Suspected → Congested. Defaults follow the online
	// monitor: MinDays 3 (an operator wants confirmation in days, not
	// the batch detector's 5) and MinAmplitudeMs ThresholdMs·0.8.
	Diurnal diurnal.Config
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.ThresholdMs <= 0 {
		c.ThresholdMs = 10
	}
	if c.EvidenceOn <= 0 {
		c.EvidenceOn = 8
	}
	if c.EvidenceOff <= 0 {
		c.EvidenceOff = 2
	}
	if c.NearFlatMs <= 0 {
		c.NearFlatMs = c.ThresholdMs
	}
	if c.HoldSlots <= 0 {
		c.HoldSlots = 48
	}
	if c.Diurnal.MinDays <= 0 {
		c.Diurnal.MinDays = 3
	}
	if c.Diurnal.MinAmplitudeMs <= 0 {
		c.Diurnal.MinAmplitudeMs = c.ThresholdMs * 0.8
	}
	return c
}

// StreamDetector is the incremental per-link counterpart of
// AnalyzeLink: fed one finalized aggregated slot at a time it keeps
// (1) a rank-CUSUM over the far end for robust level-shift evidence,
// (2) a frozen-baseline magnitude estimate, (3) an EWMA-CUSUM over
// the near end to reject shifts upstream of the link, and (4) an
// incremental diurnal fold to confirm the recurring daily pattern —
// and walks the clear → suspected → congested ladder the moment the
// evidence crosses, instead of at campaign end.
//
// The detector's outputs steer *alert timing only*; end-of-campaign
// verdicts always come from the batch sweep over the full collected
// series, which is how bit-identity with AnalyzeLinkSweep is kept (see
// DESIGN.md §16). Everything here is a pure function of the fed
// (time, near, far) sequence, so the alert log itself is also
// deterministic. Allocation-free after New.
type StreamDetector struct {
	cfg  StreamConfig
	far  *cusum.RankStream
	near *cusum.RankStream
	fold *diurnal.StreamFold

	// Magnitude estimates per end: slow tracks the pre-shift level
	// (frozen while that end's evidence is elevated so the shift cannot
	// leak in), fast tracks the current level.
	farLvl, nearLvl levelTrack

	state    StreamState
	holdDown int // consecutive slots the demotion condition held
}

// levelTrack is a two-speed EWMA level estimator; magnitude is the
// fast (current) level minus the slow (pre-shift) baseline.
type levelTrack struct {
	slow, fast float64
	primed     bool
}

func (l *levelTrack) observe(v float64, freeze bool) {
	if !l.primed {
		l.slow, l.fast, l.primed = v, v, true
		return
	}
	l.fast += streamFastAlpha * (v - l.fast)
	if !freeze {
		l.slow += streamSlowAlpha * (v - l.slow)
	}
}

func (l *levelTrack) magnitude() float64 {
	if !l.primed {
		return 0
	}
	if m := l.fast - l.slow; m > 0 {
		return m
	}
	return 0
}

func (l *levelTrack) reset() { l.slow, l.fast, l.primed = 0, 0, false }

// NewStreamDetector builds a per-link detector.
func NewStreamDetector(cfg StreamConfig) *StreamDetector {
	cfg = cfg.withDefaults()
	return &StreamDetector{
		cfg:  cfg,
		far:  cusum.NewRankStream(cfg.Rank),
		near: cusum.NewRankStream(cfg.Near),
		fold: diurnal.NewStreamFold(cfg.Diurnal),
	}
}

// EWMA smoothing factors for the magnitude estimate, per 30-minute
// slot: slow ≈ 4-day memory, fast ≈ 2.5-hour memory.
const (
	streamSlowAlpha = 0.005
	streamFastAlpha = 0.2
)

// Observe feeds one finalized aggregated slot (virtual time t, near
// and far RTT in ms, Missing allowed) and reports the state
// transition it caused, if any. Allocation-free.
func (d *StreamDetector) Observe(t simclock.Time, nearMs, farMs float64) (StreamTransition, bool) {
	d.fold.Observe(t, farMs)
	if !timeseries.IsMissing(nearMs) {
		d.near.Observe(nearMs)
		d.nearLvl.observe(nearMs, d.near.Evidence() >= d.cfg.EvidenceOff)
	}
	if timeseries.IsMissing(farMs) {
		return StreamTransition{}, false
	}
	d.far.Observe(farMs)
	// Freeze the pre-shift baseline while any meaningful evidence is
	// accumulating so the shifted regime cannot absorb into it.
	d.farLvl.observe(farMs, d.far.Evidence() >= d.cfg.EvidenceOff)
	return d.step(t)
}

// step evaluates the state machine after a slot lands.
func (d *StreamDetector) step(t simclock.Time) (StreamTransition, bool) {
	ev := d.far.Evidence()
	mag := d.MagnitudeMs()
	quiet := ev < d.cfg.EvidenceOff && mag < d.cfg.ThresholdMs/2
	if quiet {
		d.holdDown++
	} else {
		d.holdDown = 0
	}
	from := d.state
	switch d.state {
	case StreamClear:
		if ev >= d.cfg.EvidenceOn && d.far.Upward() && mag >= d.cfg.ThresholdMs &&
			d.nearLvl.magnitude() < d.cfg.NearFlatMs {
			d.state = StreamSuspected
		}
	case StreamSuspected:
		if d.fold.Snapshot().Decide(d.cfg.Diurnal).Diurnal {
			d.state = StreamCongested
		} else if d.holdDown >= d.cfg.HoldSlots {
			d.state = StreamClear
		}
	case StreamCongested:
		if d.holdDown >= d.cfg.HoldSlots {
			d.state = StreamClear
		}
	}
	if d.state == from {
		return StreamTransition{}, false
	}
	d.holdDown = 0
	return StreamTransition{
		At:          t,
		From:        from,
		To:          d.state,
		ThresholdMs: d.cfg.ThresholdMs,
		MagnitudeMs: mag,
		Evidence:    ev,
	}, true
}

// State is the link's current streaming status.
func (d *StreamDetector) State() StreamState { return d.state }

// Evidence is the current far-end rank-CUSUM evidence.
func (d *StreamDetector) Evidence() float64 { return d.far.Evidence() }

// MagnitudeMs is the current far-end level-shift magnitude estimate
// (fast level minus frozen pre-shift baseline, floored at zero).
func (d *StreamDetector) MagnitudeMs() float64 { return d.farLvl.magnitude() }

// Snapshot is the incremental diurnal fold's verdict so far, gated by
// the detector's diurnal config.
func (d *StreamDetector) Snapshot() diurnal.Verdict {
	return d.fold.Snapshot().Decide(d.cfg.Diurnal)
}

// Profile appends the current day-folded far-end profile to dst — the
// /links/{id} diurnal surface.
func (d *StreamDetector) Profile(dst []float64) []float64 {
	return d.fold.Profile(dst)
}

// Reset clears all accumulated state, keeping tuning and allocations —
// the checkpoint-resume replay path re-feeds from slot zero.
func (d *StreamDetector) Reset() {
	d.far.Reset()
	d.near.Reset()
	d.fold.Reset()
	d.farLvl.reset()
	d.nearLvl.reset()
	d.state = StreamClear
	d.holdDown = 0
}
