package analysis

import (
	"time"

	"afrixp/internal/loss"
	"afrixp/internal/prober"
	"afrixp/internal/simclock"
	"afrixp/internal/timeseries"
	"afrixp/internal/tschunk"
)

// Collector streams one link's TSLP rounds into RTT series. To keep a
// year-long multi-VP campaign in memory, samples land directly in
// min-filtered bins of AggStep (default 30 minutes, the resolution the
// level-shift detector runs at), and by default the bins live in
// XOR-compressed tschunk builders — probing writes march strictly
// forward in virtual time, so each 256-bin block compresses exactly
// once as the frontier passes it (DESIGN.md §12). An optional
// full-resolution window retains flat 5-minute samples for the
// case-study figures.
type Collector struct {
	TSLP *prober.TSLP

	// Flat backing (CollectorConfig.Flat) …
	near, far *timeseries.Series
	// … or the default chunked backing.
	nearB, farB *tschunk.Builder
	aggStart    simclock.Time
	aggStep     simclock.Duration
	nAgg        int
	nearS, farS *timeseries.Series // sealed views, cached by Series
	// fullNear/fullFar retain native-resolution samples inside Window.
	fullNear, fullFar *timeseries.Series
	window            simclock.Interval

	// farLossRounds / farRounds track round-level far loss for the
	// "probes unsuccessful" signal; missedRounds counts rounds that
	// never ran because the vantage point itself was down;
	// skippedRounds counts rounds the probe-budget scheduler elected
	// not to run (a deliberate saving, not an outage).
	farRounds, farLostRounds, missedRounds, skippedRounds int
}

// CollectorConfig sizes a Collector.
type CollectorConfig struct {
	// Campaign is the full probing interval.
	Campaign simclock.Interval
	// Step is the probing cadence (default 5 minutes).
	Step simclock.Duration
	// AggStep is the stored bin width (default 30 minutes).
	AggStep simclock.Duration
	// FullResWindow, when non-degenerate, retains native-resolution
	// series over the given sub-interval (for figures).
	FullResWindow simclock.Interval
	// Flat opts out of the compressed chunked backing and stores the
	// aggregated series as plain []float64 — the pre-tschunk layout,
	// kept for the backing-equivalence tests and for callers that want
	// to mutate collected series.
	Flat bool
	// Arena, when non-nil, seals the chunked builders into the given
	// shared slab instead of private per-builder arenas — the sharded
	// campaign engine hands every shard one Arena so a shard's series
	// memory is bounded and accountable in one place. Ignored with
	// Flat. The sample values are bit-identical either way; only the
	// byte store moves.
	Arena *tschunk.Arena
}

func (c CollectorConfig) withDefaults() CollectorConfig {
	if c.Step <= 0 {
		c.Step = 5 * time.Minute
	}
	if c.AggStep <= 0 {
		c.AggStep = 30 * time.Minute
	}
	return c
}

// NewCollector builds a collector for one TSLP session. The chunked
// builders pre-reserve their compression arenas here, at campaign
// start, so the steady-state probe step never allocates.
func NewCollector(ts *prober.TSLP, cfg CollectorConfig) *Collector {
	cfg = cfg.withDefaults()
	nAgg := cfg.Campaign.NumSteps(cfg.AggStep)
	c := &Collector{
		TSLP:     ts,
		aggStart: cfg.Campaign.Start,
		aggStep:  cfg.AggStep,
		nAgg:     nAgg,
		window:   cfg.FullResWindow,
	}
	if cfg.Flat {
		c.near = timeseries.NewRegular(cfg.Campaign.Start, cfg.AggStep, nAgg)
		c.far = timeseries.NewRegular(cfg.Campaign.Start, cfg.AggStep, nAgg)
	} else {
		c.nearB = tschunk.NewBuilderArena(nAgg, cfg.Arena)
		c.farB = tschunk.NewBuilderArena(nAgg, cfg.Arena)
	}
	if cfg.FullResWindow.Duration() > 0 {
		n := cfg.FullResWindow.NumSteps(cfg.Step)
		c.fullNear = timeseries.NewRegular(cfg.FullResWindow.Start, cfg.Step, n)
		c.fullFar = timeseries.NewRegular(cfg.FullResWindow.Start, cfg.Step, n)
	}
	return c
}

// aggIndex maps t onto the aggregated grid, or -1 off-grid — the same
// clamping Series.Index applies.
func (c *Collector) aggIndex(t simclock.Time) int {
	if t < c.aggStart {
		return -1
	}
	i := int(t.Sub(c.aggStart) / c.aggStep)
	if i >= c.nAgg {
		return -1
	}
	return i
}

// Round probes the link once and records the result.
func (c *Collector) Round(t simclock.Time) {
	c.recordSample(t, c.TSLP.Round(t))
}

// RoundFrozen probes the link once through the frozen-frontier sampler
// (see prober.TSLP.RoundFrozen) and records the result, which is also
// returned so the caller can feed schedulers (the budget scheduler's
// utility tap) without a second probe. Used by the parallel campaign
// engine after the per-step queue advance.
func (c *Collector) RoundFrozen(t simclock.Time) prober.Sample {
	s := c.TSLP.RoundFrozen(t)
	c.recordSample(t, s)
	return s
}

func (c *Collector) recordSample(t simclock.Time, s prober.Sample) {
	c.farRounds++
	if s.FarLost {
		c.farLostRounds++
	}
	c.record(c.near, c.nearB, c.fullNear, t, s.NearLost, s.NearRTT)
	c.record(c.far, c.farB, c.fullFar, t, s.FarLost, s.FarRTT)
}

func (c *Collector) record(agg *timeseries.Series, aggB *tschunk.Builder, full *timeseries.Series, t simclock.Time, lost bool, rtt simclock.Duration) {
	if lost {
		return
	}
	ms := float64(rtt) / float64(time.Millisecond)
	if i := c.aggIndex(t); i >= 0 {
		if aggB != nil {
			aggB.MergeMin(i, ms) // streaming min filter, compressed backing
		} else if timeseries.IsMissing(agg.Values[i]) || ms < agg.Values[i] {
			agg.Values[i] = ms // streaming min filter
		}
	}
	if full != nil && c.window.Contains(t) {
		full.SetAt(t, ms)
	}
}

// Series returns the aggregated link series for analysis. Chunked
// collectors seal their builders on first call (the campaign engine
// analyzes only after probing ends); the sealed views are cached, so
// repeated calls return the same series.
func (c *Collector) Series() LinkSeries {
	if c.nearB != nil && c.nearS == nil {
		c.nearS = timeseries.FromChunk(c.aggStart, c.aggStep, c.nearB.Seal())
		c.farS = timeseries.FromChunk(c.aggStart, c.aggStep, c.farB.Seal())
	}
	if c.nearS != nil {
		return LinkSeries{Target: c.TSLP.Target, Near: c.nearS, Far: c.farS}
	}
	return LinkSeries{Target: c.TSLP.Target, Near: c.near, Far: c.far}
}

// AggSpan returns the aggregated grid geometry: the grid origin, the
// bin width, and the slot count.
func (c *Collector) AggSpan() (start simclock.Time, step simclock.Duration, n int) {
	return c.aggStart, c.aggStep, c.nAgg
}

// FinalizedBefore returns how many leading aggregated slots can no
// longer change once every probing step strictly before t has run:
// exactly the bins whose window closes at or before t. The streaming
// observatory feeds its detectors from this frontier at batch
// barriers — samples land min-filtered into a bin until virtual time
// passes its end, so only closed bins are safe to read incrementally.
func (c *Collector) FinalizedBefore(t simclock.Time) int {
	if t <= c.aggStart {
		return 0
	}
	n := int(t.Sub(c.aggStart) / c.aggStep)
	if n > c.nAgg {
		n = c.nAgg
	}
	return n
}

// CopyAgg copies aggregated slots [from, from+len(near)) of both
// series into caller-owned buffers (near and far must be the same
// length). Unlike Series it never seals the chunked builders, so it
// is safe mid-campaign: the engine's write path continues bit-for-bit
// as if the read never happened. Allocation-free.
func (c *Collector) CopyAgg(from int, near, far []float64) {
	if c.nearB != nil && c.nearS == nil {
		c.nearB.CopyRange(from, near)
		c.farB.CopyRange(from, far)
		return
	}
	ns, fs := c.near, c.far
	if c.nearS != nil {
		ns, fs = c.nearS, c.farS
	}
	copySeriesRange(ns, from, near)
	copySeriesRange(fs, from, far)
}

// copySeriesRange copies slots [from, from+len(dst)) of s into dst,
// backing-agnostic. The chunked walk decodes every block up to the
// range end; it only runs on sealed series (the mid-campaign fast
// path reads the builders directly), where the cost is a one-off.
func copySeriesRange(s *timeseries.Series, from int, dst []float64) {
	if !s.Chunked() {
		copy(dst, s.Values[from:from+len(dst)])
		return
	}
	to := from + len(dst)
	s.Each(func(base int, vals []float64) {
		for k, v := range vals {
			if i := base + k; i >= from && i < to {
				dst[i-from] = v
			}
		}
	})
}

// FullRes returns the native-resolution window series (nil when not
// configured).
func (c *Collector) FullRes() (near, far *timeseries.Series) {
	return c.fullNear, c.fullFar
}

// MemBytes reports the collector's resident series bytes outside any
// shared arena: the aggregated backings (flat values or chunked
// builder state) plus the full-resolution window. Collectors sealing
// into a shared tschunk.Arena exclude the slab — the engine accounts
// it once per shard. Allocation-free; the engine publishes per-shard
// memory gauges from this at every batch barrier.
func (c *Collector) MemBytes() int {
	n := 0
	if c.near != nil {
		n += 8 * (len(c.near.Values) + len(c.far.Values))
	}
	if c.nearB != nil {
		n += c.nearB.MemBytes() + c.farB.MemBytes()
	}
	if c.fullNear != nil {
		n += 8 * (len(c.fullNear.Values) + len(c.fullFar.Values))
	}
	return n
}

// RoundMissed accounts a probing round that never ran — the vantage
// point was offline. The grid slots stay missing (the NaN gap the
// analysis pipeline must survive) and the round counts toward
// sample-yield accounting, but not toward far loss: no probe was sent.
func (c *Collector) RoundMissed() { c.missedRounds++ }

// RoundSkipped accounts a probing round the budget scheduler elected
// not to run. Distinct from RoundMissed: the VP was healthy, the
// scheduler just spent its probes elsewhere — so skipped rounds are
// excluded from the sample-yield denominator instead of dragging it
// down like an outage would.
func (c *Collector) RoundSkipped() { c.skippedRounds++ }

// Yield reports round-level accounting: rounds attempted, rounds that
// produced a far sample, rounds missed entirely (VP outages), and
// rounds skipped by the probe-budget scheduler.
func (c *Collector) Yield() (attempted, farSamples, missed, skipped int) {
	return c.farRounds, c.farRounds - c.farLostRounds, c.missedRounds, c.skippedRounds
}

// FarLossFraction is the fraction of rounds whose far probe was lost.
func (c *Collector) FarLossFraction() float64 {
	if c.farRounds == 0 {
		return 0
	}
	return float64(c.farLostRounds) / float64(c.farRounds)
}

// CollectorState is a Collector's full mutable state at a batch
// barrier, for engine checkpoints (DESIGN.md §15). Exactly one of the
// chunked (NearB/FarB) or flat (Near/Far) pairs is populated,
// mirroring the backing the collector runs with.
type CollectorState struct {
	// Chunked backing.
	Chunked     bool
	NearB, FarB tschunk.BuilderState
	// Flat backing: the aggregated sample values.
	Near, Far []float64
	// Full-resolution window values, when configured.
	FullNear, FullFar []float64
	// Round accounting.
	FarRounds, FarLostRounds, MissedRounds, SkippedRounds int
}

// Checkpoint captures the collector's state. Must run at a batch
// barrier before any further writes: chunked builder state aliases
// live buffers until serialized. Panics if Series has already sealed
// the builders (collectors are only checkpointed mid-campaign).
func (c *Collector) Checkpoint() CollectorState {
	st := CollectorState{
		FarRounds:     c.farRounds,
		FarLostRounds: c.farLostRounds,
		MissedRounds:  c.missedRounds,
		SkippedRounds: c.skippedRounds,
	}
	if c.nearB != nil {
		st.Chunked = true
		st.NearB = c.nearB.State()
		st.FarB = c.farB.State()
	} else {
		st.Near = c.near.Values
		st.Far = c.far.Values
	}
	if c.fullNear != nil {
		st.FullNear = c.fullNear.Values
		st.FullFar = c.fullFar.Values
	}
	return st
}

// RestoreCheckpoint overwrites the collector's state from a snapshot
// taken at the same barrier of an equivalent run. The collector must
// have been built with the same CollectorConfig.
func (c *Collector) RestoreCheckpoint(st CollectorState) {
	if st.Chunked != (c.nearB != nil) {
		panic("analysis: RestoreCheckpoint backing mismatch (chunked vs flat)")
	}
	if st.Chunked {
		c.nearB.RestoreState(st.NearB)
		c.farB.RestoreState(st.FarB)
	} else {
		copy(c.near.Values, st.Near)
		copy(c.far.Values, st.Far)
	}
	if c.fullNear != nil {
		copy(c.fullNear.Values, st.FullNear)
		copy(c.fullFar.Values, st.FullFar)
	}
	c.farRounds = st.FarRounds
	c.farLostRounds = st.FarLostRounds
	c.missedRounds = st.MissedRounds
	c.skippedRounds = st.SkippedRounds
}

// RunLossCampaign drives 1 pps loss probing over an interval at the
// paper's cadence — continuous batches of 100 probes — returning the
// far-end batches. To keep virtual cost proportional to information,
// probes are issued in one 100-probe batch per batchEvery (default
// 10 min), which matches the paper's effective batch granularity.
func RunLossCampaign(ts *prober.TSLP, iv simclock.Interval, batchEvery simclock.Duration) []loss.Batch {
	if batchEvery <= 0 {
		batchEvery = 10 * time.Minute
	}
	var col loss.Collector
	iv.Steps(batchEvery, func(t simclock.Time) {
		for i := 0; i < loss.BatchSize; i++ {
			at := t.Add(time.Duration(i) * time.Second)
			_, farLost := ts.LossRound(at)
			col.Record(at, farLost)
		}
	})
	return col.Batches()
}
