package analysis

import (
	"math"
	"testing"
	"time"

	"afrixp/internal/simclock"
	"afrixp/internal/timeseries"
)

// streamSlot is one synthetic aggregated observation.
type streamSlot struct {
	t         simclock.Time
	near, far float64
}

// buildOnsetTrace builds quietDays of flat 20 ms far RTT followed by
// onsetDays of diurnal congestion (a +ampMs peak-hours hump), with a
// flat 5 ms near end throughout — the canonical remote-peering
// congestion signature the streaming detector must catch.
func buildOnsetTrace(quietDays, onsetDays int, ampMs float64) []streamSlot {
	step := simclock.Duration(30 * time.Minute)
	n := (quietDays + onsetDays) * 48
	slots := make([]streamSlot, n)
	for i := range slots {
		t := simclock.Time(0).Add(step * simclock.Duration(i))
		far := 20 + 0.4*math.Sin(float64(i)*0.9)
		if i >= quietDays*48 {
			hod := float64(i%48) / 48 * 2 * math.Pi
			far += ampMs / 2 * (1 - math.Cos(hod))
		}
		slots[i] = streamSlot{t: t, near: 5 + 0.2*math.Sin(float64(i)*1.3), far: far}
	}
	return slots
}

// feed runs the trace through a detector collecting transitions.
func feed(d *StreamDetector, slots []streamSlot) []StreamTransition {
	var out []StreamTransition
	for _, s := range slots {
		if tr, ok := d.Observe(s.t, s.near, s.far); ok {
			out = append(out, tr)
		}
	}
	return out
}

func TestStreamDetectorWalksTheLadder(t *testing.T) {
	slots := buildOnsetTrace(4, 6, 30)
	d := NewStreamDetector(StreamConfig{})
	trs := feed(d, slots)
	if len(trs) < 2 {
		t.Fatalf("got %d transitions, want ≥ 2 (suspected then congested): %+v", len(trs), trs)
	}
	onset := slots[4*48].t
	if trs[0].From != StreamClear || trs[0].To != StreamSuspected {
		t.Fatalf("first transition %v→%v; want clear→suspected", trs[0].From, trs[0].To)
	}
	if trs[0].At.Before(onset) {
		t.Fatalf("suspected alert at %v, before onset %v — false alarm during quiet phase", trs[0].At, onset)
	}
	// The suspicion must land within two days of onset, and the
	// magnitude estimate must reflect a real shift at the threshold.
	if lag := trs[0].At.Sub(onset); lag > 48*time.Hour {
		t.Fatalf("suspected lag %v; want ≤ 48h", lag)
	}
	if trs[0].MagnitudeMs < trs[0].ThresholdMs {
		t.Fatalf("promoted with magnitude %v < threshold %v", trs[0].MagnitudeMs, trs[0].ThresholdMs)
	}
	if trs[1].From != StreamSuspected || trs[1].To != StreamCongested {
		t.Fatalf("second transition %v→%v; want suspected→congested", trs[1].From, trs[1].To)
	}
	// Congested needs MinDays (3) evaluable days of pattern — so it
	// lands later than suspicion but within ~4 days of onset.
	if lag := trs[1].At.Sub(onset); lag > 4*24*time.Hour {
		t.Fatalf("congested lag %v; want ≤ 4 days", lag)
	}
	if d.State() != StreamCongested {
		t.Fatalf("final state %v; want congested", d.State())
	}
	if v := d.Snapshot(); !v.Diurnal {
		t.Fatalf("congested but snapshot not diurnal: %+v", v)
	}
}

func TestStreamDetectorQuietLinkStaysClear(t *testing.T) {
	slots := buildOnsetTrace(10, 0, 0)
	d := NewStreamDetector(StreamConfig{})
	if trs := feed(d, slots); len(trs) != 0 {
		t.Fatalf("flat link produced transitions: %+v", trs)
	}
	if d.State() != StreamClear {
		t.Fatalf("flat link ended %v; want clear", d.State())
	}
}

func TestStreamDetectorNearShiftSuppressed(t *testing.T) {
	// Both ends shift together — congestion upstream of the link, the
	// case the near-flat gate exists for. The detector must not promote.
	slots := buildOnsetTrace(4, 6, 30)
	for i := range slots {
		if i >= 4*48 {
			hod := float64(i%48) / 48 * 2 * math.Pi
			slots[i].near += 15 * (1 - math.Cos(hod))
		}
	}
	d := NewStreamDetector(StreamConfig{})
	for _, tr := range feed(d, slots) {
		if tr.To == StreamSuspected && tr.From == StreamClear {
			t.Fatalf("promoted despite shifted near end: %+v", tr)
		}
	}
}

func TestStreamDetectorMissingSlotsTolerated(t *testing.T) {
	slots := buildOnsetTrace(4, 6, 30)
	for i := range slots {
		if i%5 == 2 {
			slots[i].far = timeseries.Missing
		}
		if i%11 == 4 {
			slots[i].near = timeseries.Missing
		}
	}
	d := NewStreamDetector(StreamConfig{})
	trs := feed(d, slots)
	if d.State() != StreamCongested {
		t.Fatalf("20%% loss ended %v (transitions %+v); want congested", d.State(), trs)
	}
}

func TestStreamDetectorDeterministicReplay(t *testing.T) {
	slots := buildOnsetTrace(4, 6, 30)
	a := NewStreamDetector(StreamConfig{})
	trsA := feed(a, slots)

	// Fresh detector: identical alert log, bit for bit.
	b := NewStreamDetector(StreamConfig{})
	trsB := feed(b, slots)
	compareTransitions(t, "fresh", trsA, trsB)

	// Reset + replay (the checkpoint-resume path): also identical.
	a.Reset()
	if a.State() != StreamClear {
		t.Fatalf("reset left state %v", a.State())
	}
	trsC := feed(a, slots)
	compareTransitions(t, "replayed", trsA, trsC)
	if math.Float64bits(a.Evidence()) != math.Float64bits(b.Evidence()) ||
		math.Float64bits(a.MagnitudeMs()) != math.Float64bits(b.MagnitudeMs()) {
		t.Fatalf("replay state diverged: ev %v vs %v, mag %v vs %v",
			a.Evidence(), b.Evidence(), a.MagnitudeMs(), b.MagnitudeMs())
	}
}

func compareTransitions(t *testing.T, label string, a, b []StreamTransition) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d transitions", label, len(a), len(b))
	}
	for i := range a {
		if a[i].At != b[i].At || a[i].From != b[i].From || a[i].To != b[i].To ||
			math.Float64bits(a[i].MagnitudeMs) != math.Float64bits(b[i].MagnitudeMs) ||
			math.Float64bits(a[i].Evidence) != math.Float64bits(b[i].Evidence) {
			t.Fatalf("%s: transition %d diverged: %+v vs %+v", label, i, a[i], b[i])
		}
	}
}

func TestStreamDetectorObserveZeroAlloc(t *testing.T) {
	slots := buildOnsetTrace(2, 2, 30)
	d := NewStreamDetector(StreamConfig{})
	feed(d, slots)
	i := 0
	if n := testing.AllocsPerRun(200, func() {
		s := slots[i%len(slots)]
		d.Observe(s.t.Add(simclock.Duration(i)*30*time.Minute), s.near, s.far)
		i++
	}); n != 0 {
		t.Fatalf("Observe allocates %.1f/op; want 0", n)
	}
}
