package analysis

import (
	"bytes"
	"testing"
	"time"

	"afrixp/internal/prober"
	"afrixp/internal/queue"
	"afrixp/internal/simclock"
	"afrixp/internal/trafficmodel"
	"afrixp/internal/warts"
)

// TestWartsReplayMatchesLiveAnalysis records a live campaign into a
// warts archive, replays it, and checks the replayed verdict agrees
// with the live one — the offline-analysis closed loop.
func TestWartsReplayMatchesLiveAnalysis(t *testing.T) {
	w := buildLive(t)
	w.port.Queue = queue.NewFluid(queue.Config{
		CapacityBps: 100e6, BufferDrain: 25 * time.Millisecond,
		Load: trafficmodel.Diurnal{BaseBps: 30e6, PeakBps: 130e6, PeakHour: 14,
			Width: 3, Seed: 4}.Load(),
	})
	var buf bytes.Buffer
	ww, err := warts.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p := prober.New(w.nw, w.vp, prober.Config{Name: "mon", Warts: ww})
	ts, err := p.NewTSLP(prober.LinkTarget{Near: w.near, Far: w.far})
	if err != nil {
		t.Fatal(err)
	}
	campaign := simclock.Interval{Start: 0, End: simclock.Time(14 * 24 * time.Hour)}
	col := NewCollector(ts, CollectorConfig{Campaign: campaign})
	campaign.Steps(5*time.Minute, col.Round)
	if err := ww.Flush(); err != nil {
		t.Fatal(err)
	}
	live := AnalyzeLink(col.Series(), DefaultConfig())
	if !live.Congested {
		t.Fatal("live analysis should detect congestion")
	}

	rd, err := warts.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := FromWarts(rd, campaign, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	vpLinks, ok := replayed["mon"]
	if !ok || len(vpLinks) != 1 {
		t.Fatalf("replay found %d VPs / %d links", len(replayed), len(vpLinks))
	}
	for target, ls := range vpLinks {
		if target.Near != w.near || target.Far != w.far {
			t.Fatalf("replayed target %v, want %v→%v", target, w.near, w.far)
		}
		v := AnalyzeLink(ls, DefaultConfig())
		if v.Congested != live.Congested {
			t.Fatalf("replay verdict %v, live %v", v.Congested, live.Congested)
		}
		if v.AW < live.AW*0.7 || v.AW > live.AW*1.3 {
			t.Fatalf("replay A_w %.1f vs live %.1f", v.AW, live.AW)
		}
		// Sample parity: the replayed far series carries the same
		// present-count as the live aggregated one, modulo the grid
		// aggregation factor.
		if ls.Far.PresentCount() == 0 || ls.Near.PresentCount() == 0 {
			t.Fatal("replayed series empty")
		}
	}
}

func TestFromWartsSkipsForeignRecords(t *testing.T) {
	var buf bytes.Buffer
	ww, _ := warts.NewWriter(&buf)
	ww.Write(&warts.Record{Type: warts.TypePing, VP: "x", At: 0})
	ww.Write(&warts.Record{Type: warts.TypeTSLP, VP: "x",
		At: simclock.Time(100 * 24 * time.Hour)}) // outside campaign
	ww.Flush()
	rd, _ := warts.NewReader(&buf)
	out, err := FromWarts(rd, simclock.Interval{Start: 0, End: simclock.Time(24 * time.Hour)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("non-TSLP / out-of-window records must be ignored: %v", out)
	}
}
