package analysis

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"afrixp/internal/asrel"
	"afrixp/internal/bgpsim"
	"afrixp/internal/diurnal"
	"afrixp/internal/loss"
	"afrixp/internal/netaddr"
	"afrixp/internal/netsim"
	"afrixp/internal/prober"
	"afrixp/internal/queue"
	"afrixp/internal/simclock"
	"afrixp/internal/timeseries"
	"afrixp/internal/trafficmodel"
)

func ma(s string) netaddr.Addr   { return netaddr.MustParseAddr(s) }
func mp(s string) netaddr.Prefix { return netaddr.MustParsePrefix(s) }

// synth builds LinkSeries synthetically (30-min grid, `days` days).
func synth(days int, far func(t simclock.Time) float64, near func(t simclock.Time) float64) LinkSeries {
	n := days * 48
	fs := timeseries.NewRegular(0, 30*time.Minute, n)
	ns := timeseries.NewRegular(0, 30*time.Minute, n)
	for i := 0; i < n; i++ {
		t := fs.TimeAt(i)
		fs.Set(i, far(t))
		ns.Set(i, near(t))
	}
	return LinkSeries{Near: ns, Far: fs}
}

func diurnalFn(base, mag float64, from, to float64, noise float64, seed int64) func(simclock.Time) float64 {
	rng := rand.New(rand.NewSource(seed))
	return func(t simclock.Time) float64 {
		v := base
		if h := t.HourOfDay(); h >= from && h < to {
			v += mag
		}
		return v + math.Abs(noise*rng.NormFloat64())
	}
}

func flatFn(base, noise float64, seed int64) func(simclock.Time) float64 {
	rng := rand.New(rand.NewSource(seed))
	return func(simclock.Time) float64 {
		return base + math.Abs(noise*rng.NormFloat64())
	}
}

func TestCongestedLinkVerdict(t *testing.T) {
	ls := synth(21, diurnalFn(2, 25, 9, 17, 0.5, 1), flatFn(1, 0.3, 2))
	v := AnalyzeLink(ls, DefaultConfig())
	if !v.Flagged || !v.NearFlat || !v.Diurnal.Diurnal || !v.Congested {
		t.Fatalf("verdict: %+v", v)
	}
	if v.Class != Sustained {
		t.Fatalf("class = %v, want sustained (events run to the end)", v.Class)
	}
	if v.AW < 20 || v.AW > 30 {
		t.Fatalf("A_w = %v", v.AW)
	}
	if v.DeltaTUD < 6*time.Hour || v.DeltaTUD > 10*time.Hour {
		t.Fatalf("Δt_UD = %v", v.DeltaTUD)
	}
}

func TestNearShiftDisqualifies(t *testing.T) {
	// Both ends shift together: congestion is upstream of the link.
	fn := diurnalFn(2, 25, 9, 17, 0.5, 3)
	fn2 := diurnalFn(2, 25, 9, 17, 0.5, 4)
	ls := synth(21, fn, fn2)
	v := AnalyzeLink(ls, DefaultConfig())
	if v.NearFlat {
		t.Fatal("shifting near end must not be flat")
	}
	if v.Congested {
		t.Fatal("link must not be classified congested")
	}
	if !v.Flagged {
		t.Fatal("far end still qualifies as flagged")
	}
}

func TestNoisyRegimeLinkFlaggedNotCongested(t *testing.T) {
	// Slow-ICMP regimes: flagged by thresholding, rejected by the
	// diurnal filter — the VP5/VP6 population of Table 1.
	rng := rand.New(rand.NewSource(5))
	level := 2.0
	far := func(simclock.Time) float64 {
		if rng.Intn(70) == 0 {
			if level == 2 {
				level = 28
			} else {
				level = 2
			}
		}
		return level + math.Abs(0.4*rng.NormFloat64())
	}
	ls := synth(30, far, flatFn(1, 0.3, 6))
	v := AnalyzeLink(ls, DefaultConfig())
	if !v.Flagged {
		t.Fatalf("regime noise should trip the threshold: %+v", v.Far.Events)
	}
	if v.Diurnal.Diurnal || v.Congested {
		t.Fatalf("regime noise must fail the diurnal test: %+v", v.Diurnal)
	}
}

func TestTransientClassification(t *testing.T) {
	// Congested for the first 10 of 40 days, then clean — the
	// QCELL–NETPAGE upgrade shape.
	cong := diurnalFn(2, 20, 9, 17, 0.4, 7)
	clean := flatFn(2, 0.4, 8)
	cut := simclock.Time(10 * 24 * time.Hour)
	far := func(tm simclock.Time) float64 {
		if tm < cut {
			return cong(tm)
		}
		return clean(tm)
	}
	ls := synth(40, far, flatFn(1, 0.3, 9))
	v := AnalyzeLink(ls, DefaultConfig())
	if !v.Congested {
		t.Fatalf("phase-1 congestion missed: %+v", v)
	}
	if v.Class != Transient {
		t.Fatalf("class = %v, want transient", v.Class)
	}
}

func TestAsymmetryDisqualifies(t *testing.T) {
	ls := synth(21, diurnalFn(2, 25, 9, 17, 0.5, 10), flatFn(1, 0.3, 11))
	cfg := DefaultConfig()
	v := AnalyzeLink(ls, cfg)
	if !v.Congested {
		t.Fatal("baseline must be congested")
	}
	// Re-run with the symmetry bit cleared by the caller.
	v2 := AnalyzeLink(ls, cfg)
	v2.Symmetric = false
	v2.Congested = v2.Flagged && v2.NearFlat && v2.Diurnal.Diurnal && v2.Symmetric
	if v2.Congested {
		t.Fatal("asymmetric route must disqualify")
	}
}

func TestSummarize(t *testing.T) {
	verdicts := []Verdict{
		{Flagged: true, Diurnal: diurnal.Verdict{Diurnal: true}, Congested: true, Class: Sustained},
		{Flagged: true},
		{Flagged: false},
		{Flagged: true, Diurnal: diurnal.Verdict{Diurnal: true}, Congested: true, Class: Transient},
	}
	s := Summarize("VP1", verdicts)
	if s.Links != 4 || s.Flagged != 3 || s.FlaggedDiurnal != 2 || s.Congested != 2 {
		t.Fatalf("summary: %+v", s)
	}
	if s.Sustained != 1 || s.Transient != 1 {
		t.Fatalf("classes: %+v", s)
	}
}

// --- end-to-end collection over a live simulated link ---

type liveWorld struct {
	nw   *netsim.Network
	vp   *netsim.Node
	port *netsim.Pipe
	near netaddr.Addr
	far  netaddr.Addr
}

func buildLive(t testing.TB) *liveWorld {
	g := asrel.NewGraph()
	g.SetPeer(10, 20)
	bgp := bgpsim.New(g)
	bgp.Announce(10, mp("10.10.0.0/16"))
	bgp.Announce(20, mp("10.20.0.0/16"))
	nw := netsim.New(bgp, 21)
	vp := nw.AddNode("vp", 10)
	r1 := nw.AddNode("r1", 10)
	r2 := nw.AddNode("r2", 20)
	nw.ConnectLink(vp, r1, netsim.LinkSpec{Subnet: mp("10.10.0.0/30")})
	nw.SetGateway(vp, nw.Iface(vp.Ifaces[0]))
	lan := nw.AddLAN(mp("196.49.7.0/24"))
	nw.AttachToLAN(r1, lan, netsim.AttachSpec{Addr: ma("196.49.7.1")})
	port := &netsim.Pipe{Prop: 100 * time.Microsecond}
	nw.AttachToLAN(r2, lan, netsim.AttachSpec{Addr: ma("196.49.7.10"), FromFabric: port})
	return &liveWorld{nw: nw, vp: vp, port: port,
		near: ma("10.10.0.2"), far: ma("196.49.7.10")}
}

func TestCollectorEndToEnd(t *testing.T) {
	w := buildLive(t)
	w.port.Queue = queue.NewFluid(queue.Config{
		CapacityBps: 100e6, BufferDrain: 25 * time.Millisecond,
		Load: trafficmodel.Diurnal{BaseBps: 30e6, PeakBps: 130e6, PeakHour: 14,
			Width: 3, NoiseFrac: 0.05, Seed: 4}.Load(),
	})
	p := prober.New(w.nw, w.vp, prober.Config{})
	ts, err := p.NewTSLP(prober.LinkTarget{Near: w.near, Far: w.far})
	if err != nil {
		t.Fatal(err)
	}
	campaign := simclock.Interval{Start: 0, End: simclock.Time(21 * 24 * time.Hour)}
	figWindow := simclock.Interval{Start: 0, End: simclock.Time(2 * 24 * time.Hour)}
	col := NewCollector(ts, CollectorConfig{Campaign: campaign, FullResWindow: figWindow})
	campaign.Steps(5*time.Minute, col.Round)

	v := AnalyzeLink(col.Series(), DefaultConfig())
	if !v.Congested {
		t.Fatalf("live congested link not detected: flagged=%v diurnal=%+v nearFlat=%v",
			v.Flagged, v.Diurnal, v.NearFlat)
	}
	if v.AW < 15 || v.AW > 30 {
		t.Fatalf("A_w = %v, want near the 25 ms buffer", v.AW)
	}
	fullNear, fullFar := col.FullRes()
	if fullNear.PresentCount() == 0 || fullFar.PresentCount() == 0 {
		t.Fatal("full-resolution window empty")
	}
	if fullFar.Len() != 2*288 {
		t.Fatalf("full-res window = %d slots", fullFar.Len())
	}
	if f := col.FarLossFraction(); f > 0.5 {
		t.Fatalf("far loss fraction = %v", f)
	}
}

func TestCollectorIdleLinkNotCongested(t *testing.T) {
	w := buildLive(t)
	p := prober.New(w.nw, w.vp, prober.Config{})
	ts, err := p.NewTSLP(prober.LinkTarget{Near: w.near, Far: w.far})
	if err != nil {
		t.Fatal(err)
	}
	campaign := simclock.Interval{Start: 0, End: simclock.Time(14 * 24 * time.Hour)}
	col := NewCollector(ts, CollectorConfig{Campaign: campaign})
	campaign.Steps(5*time.Minute, col.Round)
	if v := AnalyzeLink(col.Series(), DefaultConfig()); v.Flagged || v.Congested {
		t.Fatalf("idle link flagged: %+v", v)
	}
}

func TestRunLossCampaign(t *testing.T) {
	w := buildLive(t)
	// Constant 20% overload → ~1/6 loss on the far direction.
	w.port.Queue = queue.NewFluid(queue.Config{
		CapacityBps: 100e6, BufferDrain: 20 * time.Millisecond,
		Load: trafficmodel.Constant(120e6),
	})
	p := prober.New(w.nw, w.vp, prober.Config{})
	ts, err := p.NewTSLP(prober.LinkTarget{Near: w.near, Far: w.far})
	if err != nil {
		t.Fatal(err)
	}
	iv := simclock.Interval{Start: 0, End: simclock.Time(6 * time.Hour)}
	batches := RunLossCampaign(ts, iv, 10*time.Minute)
	if len(batches) != 36 {
		t.Fatalf("batches = %d", len(batches))
	}
	sum := loss.Summarize(batches)
	if sum.MeanRate < 8 || sum.MeanRate > 25 {
		t.Fatalf("mean loss = %v%%, want ~16%%", sum.MeanRate)
	}
}

func TestClassifyEmpty(t *testing.T) {
	if classify(nil, timeseries.NewRegular(0, time.Minute, 10), DefaultConfig()) != NotCongested {
		t.Fatal("no events must be NotCongested")
	}
}

func TestClassificationString(t *testing.T) {
	if NotCongested.String() != "not-congested" || Transient.String() != "transient" ||
		Sustained.String() != "sustained" {
		t.Fatal("Classification strings wrong")
	}
}
