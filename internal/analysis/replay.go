package analysis

import (
	"fmt"
	"io"
	"time"

	"afrixp/internal/netaddr"
	"afrixp/internal/packet"
	"afrixp/internal/prober"
	"afrixp/internal/simclock"
	"afrixp/internal/timeseries"
	"afrixp/internal/warts"
)

// FromWarts reconstructs per-link TSLP series from an archived warts
// stream — the offline-analysis path: Ark monitors upload warts
// archives and the pipeline re-runs over them. TSLP records carry the
// link's far address as Target (both probes of a round are addressed
// to the far end; the near probe is merely TTL-limited to expire one
// hop earlier) and the answering end as Responder, so a record is a
// near sample when it answered with time-exceeded and a far sample
// when the far address itself echoed.
//
// Grid bounds come from campaign; records outside it are dropped.
// step should match the probing cadence (5 minutes in the paper).
// The result maps VP name → link → series.
func FromWarts(r *warts.Reader, campaign simclock.Interval, step simclock.Duration) (map[string]map[prober.LinkTarget]LinkSeries, error) {
	return fromWarts(r, campaign, step, false)
}

// FromWartsChunked is FromWarts returning chunk-backed series: each
// reconstructed grid is XOR-compressed once ingest finishes. Warts
// archives carry no per-link ordering guarantee, so ingest accumulates
// into flat grids and compresses at the end — the resident set after
// return is the compressed one, which is what matters for replaying
// month-scale archives. Series values are bit-identical to FromWarts.
func FromWartsChunked(r *warts.Reader, campaign simclock.Interval, step simclock.Duration) (map[string]map[prober.LinkTarget]LinkSeries, error) {
	return fromWarts(r, campaign, step, true)
}

func fromWarts(r *warts.Reader, campaign simclock.Interval, step simclock.Duration, compress bool) (map[string]map[prober.LinkTarget]LinkSeries, error) {
	if step <= 0 {
		step = 5 * time.Minute
	}
	n := campaign.NumSteps(step)

	type key struct {
		vp  string
		far netaddr.Addr
	}
	type link struct {
		near     *timeseries.Series
		far      *timeseries.Series
		nearAddr netaddr.Addr
	}
	links := make(map[key]*link)
	ensure := func(k key) *link {
		l, ok := links[k]
		if !ok {
			l = &link{
				near: timeseries.NewRegular(campaign.Start, step, n),
				far:  timeseries.NewRegular(campaign.Start, step, n),
			}
			links[k] = l
		}
		return l
	}

	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("analysis: replaying warts: %w", err)
		}
		if rec.Type != warts.TypeTSLP || !campaign.Contains(rec.At) {
			continue
		}
		l := ensure(key{vp: rec.VP, far: rec.Target})
		ms := float64(rec.RTT) / float64(time.Millisecond)
		if rec.RespType == packet.ICMPTimeExceeded {
			if !rec.Responder.IsZero() {
				l.nearAddr = rec.Responder
			}
			if !rec.Lost {
				// Streaming min filter onto the grid, matching the
				// live Collector's behavior for repeated samples.
				if i := l.near.Index(rec.At); i >= 0 {
					if timeseries.IsMissing(l.near.Values[i]) || ms < l.near.Values[i] {
						l.near.Values[i] = ms
					}
				}
			}
		} else {
			if !rec.Lost {
				if i := l.far.Index(rec.At); i >= 0 {
					if timeseries.IsMissing(l.far.Values[i]) || ms < l.far.Values[i] {
						l.far.Values[i] = ms
					}
				}
			}
		}
	}

	out := make(map[string]map[prober.LinkTarget]LinkSeries)
	for k, l := range links {
		if out[k.vp] == nil {
			out[k.vp] = make(map[prober.LinkTarget]LinkSeries)
		}
		target := prober.LinkTarget{Near: l.nearAddr, Far: k.far}
		near, far := l.near, l.far
		if compress {
			near, far = timeseries.Compress(near), timeseries.Compress(far)
		}
		out[k.vp][target] = LinkSeries{Target: target, Near: near, Far: far}
	}
	return out, nil
}
