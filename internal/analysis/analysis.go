// Package analysis assembles the paper's §5.2 congestion pipeline for
// whole campaigns: collect near/far RTT series per discovered link,
// flag links whose far end shows qualifying level shifts, require a
// flat near end, test for a recurring diurnal pattern, optionally
// check record-route path symmetry, classify surviving links as
// sustained or transient congestion, and aggregate per-VP counts for
// the paper's tables.
package analysis

import (
	"time"

	"afrixp/internal/cusum"
	"afrixp/internal/diurnal"
	"afrixp/internal/levelshift"
	"afrixp/internal/prober"
	"afrixp/internal/simclock"
	"afrixp/internal/timeseries"
)

// Config tunes the pipeline.
type Config struct {
	// ThresholdMs is the level-shift magnitude threshold (Table 1
	// sweeps 5/10/15/20; the paper settles on 10).
	ThresholdMs float64
	// LevelShift is the base level-shift configuration; its
	// ThresholdMs is overridden per analysis.
	LevelShift levelshift.Config
	// Diurnal configures the recurring-pattern detector.
	Diurnal diurnal.Config
	// NearFlatMs bounds how much the near-end series may shift before
	// the link is discarded as "congestion not at the targeted link".
	// Default: the analysis threshold.
	NearFlatMs float64
	// SustainedTail: congestion whose last event ends within this
	// span of the campaign end is sustained, otherwise transient
	// (NETPAGE's congestion vanished after the upgrade → transient).
	SustainedTail simclock.Duration
}

// DefaultConfig returns the paper's operating point.
func DefaultConfig() Config {
	return Config{
		ThresholdMs:   10,
		LevelShift:    levelshift.DefaultConfig(),
		Diurnal:       diurnal.Config{},
		SustainedTail: 14 * 24 * time.Hour,
	}
}

// Classification labels a congested link.
type Classification int8

// Classifications.
const (
	NotCongested Classification = iota
	Transient
	Sustained
)

// String names the classification.
func (c Classification) String() string {
	switch c {
	case Transient:
		return "transient"
	case Sustained:
		return "sustained"
	default:
		return "not-congested"
	}
}

// LinkSeries carries one link's collected measurement series.
type LinkSeries struct {
	Target prober.LinkTarget
	// Near and Far are RTT series in milliseconds.
	Near, Far *timeseries.Series
}

// Verdict is the pipeline outcome for one link.
type Verdict struct {
	Target prober.LinkTarget
	// Far and Near are the level-shift analyses of each end.
	Far, Near levelshift.Result
	// Diurnal is the recurring-pattern verdict on the far end.
	Diurnal diurnal.Verdict
	// Flagged: far end shows qualifying level shifts (a "potentially
	// congested" link in Table 1 terms).
	Flagged bool
	// NearFlat: the near end shows no comparable shifts.
	NearFlat bool
	// Symmetric carries the record-route result when available;
	// defaults to true when unchecked.
	Symmetric bool
	// Congested: Flagged ∧ NearFlat ∧ Diurnal ∧ Symmetric.
	Congested bool
	// Class is Sustained/Transient for congested links.
	Class Classification
	// AW and DeltaTUD summarize the far-end waveform (sanitized).
	AW       float64
	DeltaTUD simclock.Duration
}

// AnalyzeLink runs the full per-link pipeline at cfg.ThresholdMs — the
// single-threshold case of AnalyzeLinkSweep.
func AnalyzeLink(ls LinkSeries, cfg Config) Verdict {
	return AnalyzeLinkSweep(ls, cfg, []float64{cfg.ThresholdMs})[0]
}

// AnalyzeLinkSweep runs the per-link pipeline across a threshold sweep
// (Table 1's 5/10/15/20 ms sensitivity analysis), detecting once and
// classifying per threshold. The far and near series each get one
// level-shift detection (windowed rank-CUSUM bootstrap — the analysis
// hot spot) and one diurnal fold per distinct event window; each
// threshold then pays only the cheap classification: magnitude
// filtering, elevation runs, event assembly, and the diurnal gates.
// Verdicts are bit-identical to len(thresholds) independent
// AnalyzeLink calls. cfg.ThresholdMs is ignored; thresholds rules.
func AnalyzeLinkSweep(ls LinkSeries, cfg Config, thresholds []float64) []Verdict {
	return NewSweeper().AnalyzeLinkSweep(ls, cfg, thresholds)
}

// Sweeper runs link analyses reusing one rank-CUSUM detector's scratch
// buffers across calls. Campaign engines keep one Sweeper per analysis
// worker and feed it links; results are bit-identical to fresh
// per-call detectors. Not safe for concurrent use.
type Sweeper struct {
	det     *cusum.Detector
	farScr  levelshift.Scratch
	nearScr levelshift.Scratch
	diurScr diurnal.Scratch
	folds   map[foldWindow]diurnal.Verdict
	stats   SweeperStats
}

// foldWindow keys the per-link diurnal fold cache: thresholds whose
// flagged events span the same window share one fold.
type foldWindow struct {
	whole    bool
	from, to simclock.Time
}

// SweeperStats counts a sweeper's work: link sweeps run, diurnal
// day-folds computed, and folds served from the per-link event-window
// cache. Plain counters — a Sweeper is single-goroutine by contract;
// campaign engines sum per-worker stats after an analysis pass and
// republish them into atomic telemetry counters.
type SweeperStats struct {
	Sweeps, FoldsComputed, FoldsReused uint64
}

// Stats returns the sweeper's accumulated accounting.
func (sw *Sweeper) Stats() SweeperStats { return sw.stats }

// NewSweeper builds a reusable analysis worker state.
func NewSweeper() *Sweeper {
	return &Sweeper{det: cusum.NewDetector(cusum.Config{})}
}

// AnalyzeLinkSweep is the package-level AnalyzeLinkSweep reusing the
// sweeper's detector scratch across calls.
func (sw *Sweeper) AnalyzeLinkSweep(ls LinkSeries, cfg Config, thresholds []float64) []Verdict {
	sw.stats.Sweeps++
	// Detection phase, once per end: candidates, baseline, and the
	// aggregated series are all independent of the magnitude threshold.
	lcfg := cfg.LevelShift
	farDet := levelshift.DetectScratch(sw.det, ls.Far, lcfg, &sw.farScr)
	nearDet := levelshift.DetectScratch(sw.det, ls.Near, lcfg, &sw.nearScr)

	// The diurnal day-folded profile depends on the threshold only
	// through the event window it is computed over; thresholds that
	// flag the same window share one fold. The cache map itself is
	// reused across links.
	if sw.folds == nil {
		sw.folds = make(map[foldWindow]diurnal.Verdict, 1)
	}
	clear(sw.folds)
	folds := sw.folds

	out := make([]Verdict, 0, len(thresholds))
	for _, thr := range thresholds {
		v := Verdict{Target: ls.Target, Symmetric: true}
		v.Far = farDet.AtThreshold(thr)
		v.Flagged = v.Far.Flagged()

		nearLimit := cfg.NearFlatMs
		if nearLimit <= 0 {
			nearLimit = thr
		}
		v.Near = nearDet.AtThreshold(nearLimit)
		v.NearFlat = !v.Near.Flagged()

		dcfg := cfg.Diurnal
		if dcfg.MinAmplitudeMs <= 0 {
			// Track the flagging threshold, discounted for min-filter
			// peak shaving.
			dcfg.MinAmplitudeMs = thr * 0.8
		}
		// The paper checks for a recurring diurnal pattern during the
		// congestion epoch — QCELL–NETPAGE was diurnal in phase 1 only,
		// before the upgrade. Testing the whole campaign would dilute a
		// phase-limited pattern, so the window spans the flagged events
		// (with margin); links whose events scatter across the campaign
		// (slow-ICMP regimes) still see a near-full window and fail on
		// consistency.
		win := foldWindow{whole: true}
		if len(v.Far.Events) > 0 {
			margin := simclock.Duration(48 * time.Hour)
			win = foldWindow{
				from: v.Far.Events[0].Start.Add(-margin),
				to:   v.Far.Events[len(v.Far.Events)-1].End.Add(margin),
			}
		}
		fold, ok := folds[win]
		if !ok {
			diurnalInput := ls.Far
			if !win.whole {
				w := ls.Far.Window(win.from, win.to)
				diurnalInput = &w
			}
			fold = diurnal.FoldWith(diurnalInput, dcfg, &sw.diurScr)
			folds[win] = fold
			sw.stats.FoldsComputed++
		} else {
			sw.stats.FoldsReused++
		}
		v.Diurnal = fold.Decide(dcfg)

		v.Congested = v.Flagged && v.NearFlat && v.Diurnal.Diurnal && v.Symmetric
		if v.Congested {
			events := levelshift.Sanitize(v.Far.Events, 90*time.Minute, lcfg.MinDuration)
			r := levelshift.Result{Events: events}
			// A_w follows the paper's definition: the mean magnitude of
			// the level shifts themselves.
			v.AW = v.Far.ShiftAW()
			v.DeltaTUD = r.MeanDuration()
			v.Class = classify(events, ls.Far, cfg)
		}
		out = append(out, v)
	}
	return out
}

// classify separates sustained from transient congestion by where the
// last event sits relative to the end of *observation* — the last
// far-end response, not the campaign end. GIXA–GHANATEL was congested
// until the link itself disappeared (far probes unsuccessful from
// 2016-08-06): that is sustained congestion, never mitigated, even
// though the campaign ran seven more months.
func classify(events []levelshift.Event, far *timeseries.Series, cfg Config) Classification {
	if len(events) == 0 {
		return NotCongested
	}
	last := events[len(events)-1]
	end := far.TimeAt(far.Len())
	if idx := far.LastPresentIndex(); idx >= 0 {
		end = far.TimeAt(idx + 1)
	}
	tail := cfg.SustainedTail
	if tail <= 0 {
		tail = 14 * 24 * time.Hour
	}
	if last.OpenEnded || end.Sub(last.End) <= tail {
		return Sustained
	}
	return Transient
}

// VPSummary aggregates verdicts for one vantage point — a Table 1/2
// row at one threshold.
type VPSummary struct {
	VP string
	// Links is the number of links analyzed.
	Links int
	// Flagged is the "potentially congested" count.
	Flagged int
	// FlaggedDiurnal is the parenthesized Table 1 count.
	FlaggedDiurnal int
	// Congested is the final count (flagged ∧ diurnal ∧ flat near).
	Congested int
	// Sustained / Transient split the congested links.
	Sustained, Transient int
}

// Summarize aggregates link verdicts.
func Summarize(vp string, verdicts []Verdict) VPSummary {
	s := VPSummary{VP: vp, Links: len(verdicts)}
	for _, v := range verdicts {
		if v.Flagged {
			s.Flagged++
			if v.Diurnal.Diurnal {
				s.FlaggedDiurnal++
			}
		}
		if v.Congested {
			s.Congested++
			switch v.Class {
			case Sustained:
				s.Sustained++
			case Transient:
				s.Transient++
			}
		}
	}
	return s
}
