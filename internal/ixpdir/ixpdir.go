// Package ixpdir models the public IXP directories the paper's
// pipeline consumes: a PeeringDB/PCH-style list of IXPs with their
// peering (and management) prefixes, plus the PCH-style IP→ASN port
// mapping published at prefix.pch.net. bdrmap uses the prefix list to
// recognize interdomain links established across an IXP fabric, and
// the analysis (§5.1) uses it to classify discovered links as "at the
// IXP".
package ixpdir

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"afrixp/internal/asrel"
	"afrixp/internal/lpm"
	"afrixp/internal/netaddr"
)

// IXP is one exchange point record.
type IXP struct {
	Name     string // short name, e.g. "GIXA"
	Country  string // ISO code, e.g. "GH"
	Region   string // African sub-region, e.g. "West Africa"
	Launched int    // year
	// PeeringLAN is the shared switch-fabric prefix members address
	// their ports from.
	PeeringLAN netaddr.Prefix
	// Management is the IXP's management/content-network prefix (may
	// be zero). GIXA's separated content network (§6.2.1) lives here.
	Management netaddr.Prefix
}

// Directory is the full dataset.
type Directory struct {
	IXPs []IXP
	// PortAssignments is the PCH-style ip→asn mapping of member ports.
	PortAssignments []PortAssignment
}

// PortAssignment maps one fabric address to the member AS using it.
type PortAssignment struct {
	IXPName string
	Addr    netaddr.Addr
	ASN     asrel.ASN
}

// Write serializes the directory in a line-oriented format:
//
//	ixp|GIXA|GH|West Africa|2005|196.49.7.0/24|196.49.8.0/24
//	port|GIXA|196.49.7.10|29614
func Write(w io.Writer, d *Directory) error {
	bw := bufio.NewWriter(w)
	for _, x := range d.IXPs {
		mgmt := ""
		if x.Management.Bits != 0 || !x.Management.Addr.IsZero() {
			mgmt = x.Management.String()
		}
		fmt.Fprintf(bw, "ixp|%s|%s|%s|%d|%s|%s\n",
			x.Name, x.Country, x.Region, x.Launched, x.PeeringLAN, mgmt)
	}
	for _, p := range d.PortAssignments {
		fmt.Fprintf(bw, "port|%s|%s|%d\n", p.IXPName, p.Addr, uint32(p.ASN))
	}
	return bw.Flush()
}

// Parse reads the directory format back.
func Parse(r io.Reader) (*Directory, error) {
	sc := bufio.NewScanner(r)
	d := &Directory{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Split(line, "|")
		switch f[0] {
		case "ixp":
			if len(f) != 7 {
				return nil, fmt.Errorf("ixpdir: line %d: want 7 fields, got %d", lineNo, len(f))
			}
			year, err := strconv.Atoi(f[4])
			if err != nil {
				return nil, fmt.Errorf("ixpdir: line %d: bad year %q", lineNo, f[4])
			}
			lan, err := netaddr.ParsePrefix(f[5])
			if err != nil {
				return nil, fmt.Errorf("ixpdir: line %d: %v", lineNo, err)
			}
			x := IXP{Name: f[1], Country: f[2], Region: f[3], Launched: year, PeeringLAN: lan}
			if f[6] != "" {
				mgmt, err := netaddr.ParsePrefix(f[6])
				if err != nil {
					return nil, fmt.Errorf("ixpdir: line %d: %v", lineNo, err)
				}
				x.Management = mgmt
			}
			d.IXPs = append(d.IXPs, x)
		case "port":
			if len(f) != 4 {
				return nil, fmt.Errorf("ixpdir: line %d: want 4 fields, got %d", lineNo, len(f))
			}
			addr, err := netaddr.ParseAddr(f[2])
			if err != nil {
				return nil, fmt.Errorf("ixpdir: line %d: %v", lineNo, err)
			}
			asn, err := strconv.ParseUint(f[3], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("ixpdir: line %d: bad asn %q", lineNo, f[3])
			}
			d.PortAssignments = append(d.PortAssignments,
				PortAssignment{IXPName: f[1], Addr: addr, ASN: asrel.ASN(asn)})
		default:
			return nil, fmt.Errorf("ixpdir: line %d: unknown record %q", lineNo, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}

// Index provides the lookups the measurement pipeline needs.
type Index struct {
	byPrefix *lpm.Table[*IXP]
	byName   map[string]*IXP
	ports    map[netaddr.Addr]PortAssignment
}

// NewIndex builds lookup structures over the directory. Both peering
// and management prefixes map to their IXP.
func NewIndex(d *Directory) *Index {
	ix := &Index{
		byPrefix: lpm.New[*IXP](),
		byName:   make(map[string]*IXP),
		ports:    make(map[netaddr.Addr]PortAssignment),
	}
	for i := range d.IXPs {
		x := &d.IXPs[i]
		ix.byPrefix.Insert(x.PeeringLAN, x)
		if x.Management.Bits != 0 {
			ix.byPrefix.Insert(x.Management, x)
		}
		ix.byName[x.Name] = x
	}
	for _, p := range d.PortAssignments {
		ix.ports[p.Addr] = p
	}
	return ix
}

// IXPForAddr returns the IXP whose peering or management prefix covers
// addr — the §5.1 test for "link established at the IXP".
func (ix *Index) IXPForAddr(addr netaddr.Addr) (*IXP, bool) {
	return ix.byPrefix.Lookup(addr)
}

// OnPeeringLAN reports whether addr is on some IXP's peering fabric
// (management prefixes do not count).
func (ix *Index) OnPeeringLAN(addr netaddr.Addr) bool {
	x, ok := ix.byPrefix.Lookup(addr)
	return ok && x.PeeringLAN.Contains(addr)
}

// ByName returns the IXP record with the given short name.
func (ix *Index) ByName(name string) (*IXP, bool) {
	x, ok := ix.byName[name]
	return x, ok
}

// PortOwner returns the member AS assigned a fabric address, per the
// PCH-style mapping.
func (ix *Index) PortOwner(addr netaddr.Addr) (asrel.ASN, bool) {
	p, ok := ix.ports[addr]
	return p.ASN, ok
}

// Members returns the distinct member ASNs with ports at the named
// IXP, sorted.
func (ix *Index) Members(name string) []asrel.ASN {
	seen := make(map[asrel.ASN]bool)
	for _, p := range ix.ports {
		if p.IXPName == name {
			seen[p.ASN] = true
		}
	}
	out := make([]asrel.ASN, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
