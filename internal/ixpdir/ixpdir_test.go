package ixpdir

import (
	"bytes"
	"strings"
	"testing"

	"afrixp/internal/asrel"
	"afrixp/internal/netaddr"
)

func sample() *Directory {
	return &Directory{
		IXPs: []IXP{
			{Name: "GIXA", Country: "GH", Region: "West Africa", Launched: 2005,
				PeeringLAN: netaddr.MustParsePrefix("196.49.7.0/24"),
				Management: netaddr.MustParsePrefix("196.49.8.0/24")},
			{Name: "KIXP", Country: "KE", Region: "East Africa", Launched: 2002,
				PeeringLAN: netaddr.MustParsePrefix("196.223.14.0/23")},
		},
		PortAssignments: []PortAssignment{
			{IXPName: "GIXA", Addr: netaddr.MustParseAddr("196.49.7.10"), ASN: 29614},
			{IXPName: "GIXA", Addr: netaddr.MustParseAddr("196.49.7.11"), ASN: 33786},
			{IXPName: "KIXP", Addr: netaddr.MustParseAddr("196.223.14.5"), ASN: 30844},
		},
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sample()
	if len(got.IXPs) != 2 || len(got.PortAssignments) != 3 {
		t.Fatalf("parsed %d ixps, %d ports", len(got.IXPs), len(got.PortAssignments))
	}
	for i := range want.IXPs {
		if got.IXPs[i] != want.IXPs[i] {
			t.Errorf("IXP %d: %+v != %+v", i, got.IXPs[i], want.IXPs[i])
		}
	}
	for i := range want.PortAssignments {
		if got.PortAssignments[i] != want.PortAssignments[i] {
			t.Errorf("port %d mismatch", i)
		}
	}
}

func TestEmptyManagementPrefixRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "|196.223.14.0/23|\n") {
		t.Fatalf("KIXP line should end with empty management field:\n%s", buf.String())
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.IXPs[1].Management.Bits != 0 {
		t.Fatal("empty management prefix should stay zero")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"ixp|GIXA|GH|West Africa|2005|196.49.7.0/24",         // 6 fields
		"ixp|GIXA|GH|West Africa|year|196.49.7.0/24|",        // bad year
		"ixp|GIXA|GH|West Africa|2005|196.49.7.0|",           // bad prefix
		"ixp|GIXA|GH|West Africa|2005|196.49.7.0/24|badmgmt", // bad mgmt
		"port|GIXA|196.49.7.10",                              // short
		"port|GIXA|notanip|29614",                            // bad addr
		"port|GIXA|196.49.7.10|notasn",                       // bad asn
		"wat|x",                                              // unknown record
	}
	for _, line := range bad {
		if _, err := Parse(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("expected error for %q", line)
		}
	}
}

func TestParseSkipsComments(t *testing.T) {
	in := "# header\n\nport|GIXA|196.49.7.10|29614\n"
	d, err := Parse(strings.NewReader(in))
	if err != nil || len(d.PortAssignments) != 1 {
		t.Fatalf("%v err=%v", d, err)
	}
}

func TestIXPForAddr(t *testing.T) {
	ix := NewIndex(sample())
	x, ok := ix.IXPForAddr(netaddr.MustParseAddr("196.49.7.200"))
	if !ok || x.Name != "GIXA" {
		t.Fatalf("peering LAN lookup: %v %v", x, ok)
	}
	x, ok = ix.IXPForAddr(netaddr.MustParseAddr("196.49.8.1"))
	if !ok || x.Name != "GIXA" {
		t.Fatal("management prefix must also map to the IXP")
	}
	if _, ok := ix.IXPForAddr(netaddr.MustParseAddr("10.0.0.1")); ok {
		t.Fatal("non-IXP space must miss")
	}
}

func TestOnPeeringLAN(t *testing.T) {
	ix := NewIndex(sample())
	if !ix.OnPeeringLAN(netaddr.MustParseAddr("196.49.7.1")) {
		t.Fatal("peering LAN address must be on LAN")
	}
	if ix.OnPeeringLAN(netaddr.MustParseAddr("196.49.8.1")) {
		t.Fatal("management address is not on the peering LAN")
	}
}

func TestByNameAndPortOwner(t *testing.T) {
	ix := NewIndex(sample())
	x, ok := ix.ByName("KIXP")
	if !ok || x.Country != "KE" {
		t.Fatal("ByName failed")
	}
	if _, ok := ix.ByName("NOPE"); ok {
		t.Fatal("unknown name must miss")
	}
	asn, ok := ix.PortOwner(netaddr.MustParseAddr("196.49.7.11"))
	if !ok || asn != 33786 {
		t.Fatalf("PortOwner = %v %v", asn, ok)
	}
}

func TestMembers(t *testing.T) {
	ix := NewIndex(sample())
	m := ix.Members("GIXA")
	if len(m) != 2 || m[0] != asrel.ASN(29614) || m[1] != asrel.ASN(33786) {
		t.Fatalf("Members = %v", m)
	}
	if len(ix.Members("NONE")) != 0 {
		t.Fatal("unknown IXP has no members")
	}
}
