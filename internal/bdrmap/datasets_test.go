package bdrmap

import (
	"testing"
	"time"

	"afrixp/internal/geo"
	"afrixp/internal/netaddr"
	"afrixp/internal/netsim"
	"afrixp/internal/prober"
	"afrixp/internal/registry"
)

func netsimLinkSpec(sub netaddr.Prefix) netsim.LinkSpec {
	return netsim.LinkSpec{Subnet: sub}
}

// TestRIRFallbackOwnership: an AS whose interconnect block is
// delegated by the RIR but never announced in BGP must still be
// attributable through the delegation's org→ASN chain.
func TestRIRFallbackOwnership(t *testing.T) {
	w := build(t)
	// AS600 sits behind the transit provider AS500, so traces to its
	// prefix cross AS500's interconnect even when AS500 announces
	// nothing itself.
	w.nw.BGP.Graph().SetProvider(600, 500)
	w.cfg.BGP.Announce(600, mp("10.60.0.0/16"))
	r500 := w.nw.RoutersOf(500)[0]
	r600 := w.nw.AddNode("r600", 600)
	h600 := w.nw.AddNode("h600", 600)
	w.nw.ConnectLink(r500, r600, netsimLinkSpec(mp("10.60.255.0/30")))
	w.nw.ConnectLink(r600, h600, netsimLinkSpec(mp("10.60.254.0/30")))
	w.nw.AddLoopback(h600, ma("10.60.0.1"), "lo.h600")
	w.nw.InvalidateRoutes()

	// Withdraw AS500's announcement: its own transit-link address
	// (10.50.255.x) vanishes from the prefix→AS table…
	w.cfg.BGP.Withdraw(500, mp("10.50.0.0/16"))
	// …but the RIR has delegated that space to ORG-R500, which also
	// holds AS500.
	rirFile := &registry.File{Registry: "afrinic", Delegations: []registry.Delegation{
		{Registry: "afrinic", CC: "gh", Type: "ipv4",
			Prefix: mp("10.50.0.0/16"), Date: time.Now(), Status: "allocated", Opaque: "ORG-R500"},
		{Registry: "afrinic", CC: "gh", Type: "asn",
			ASN: 500, Date: time.Now(), Status: "allocated", Opaque: "ORG-R500"},
	}}
	cfg := w.cfg
	cfg.RIR = registry.NewIndex(rirFile)

	p := prober.New(w.nw, w.vp, prober.Config{})
	res, err := Run(p, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasNeighbor(500) {
		t.Fatalf("RIR fallback did not attribute the transit link: %v", res.Neighbors)
	}
}

func TestGeoConsistencyCheck(t *testing.T) {
	w := build(t)
	db := geo.NewDB()
	rdns := geo.NewRDNS()
	// The GIXA fabric and member 200's port geolocate to Ghana —
	// consistent with the exchange's country.
	db.Add(geo.Entry{Prefix: mp("196.49.7.0/24"), Country: "gh", City: "accra"})
	// Member 300's port is (wrongly) geolocated to Kenya: the §5.1
	// cross-check must flag it.
	db.Add(geo.Entry{Prefix: mp("196.49.7.11/32"), Country: "ke", City: "nairobi"})
	cfg := w.cfg
	cfg.Geo = db
	cfg.RDNS = rdns

	p := prober.New(w.nw, w.vp, prober.Config{})
	res, err := Run(p, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	var flagged, consistent int
	for _, l := range res.PeeringLinks() {
		if l.GeoConsistent {
			consistent++
		} else {
			flagged++
			if l.Far != ma("196.49.7.11") {
				t.Fatalf("wrong link flagged: %+v", l)
			}
		}
	}
	if flagged != 1 || consistent != 1 {
		t.Fatalf("flagged=%d consistent=%d, want 1/1", flagged, consistent)
	}
}

func TestGeoRDNSContradictionFlagged(t *testing.T) {
	w := build(t)
	db := geo.NewDB()
	rdns := geo.NewRDNS()
	db.Add(geo.Entry{Prefix: mp("196.49.7.0/24"), Country: "gh", City: "accra"})
	// rDNS for member 200's port claims Nairobi — contradicting the
	// geolocation database.
	rdns.Register(ma("196.49.7.10"), "xe0-1.br1.nbo.ke.member200.net")
	cfg := w.cfg
	cfg.Geo = db
	cfg.RDNS = rdns

	p := prober.New(w.nw, w.vp, prober.Config{})
	res, err := Run(p, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range res.PeeringLinks() {
		if l.Far == ma("196.49.7.10") && l.GeoConsistent {
			t.Fatal("rDNS contradiction not flagged")
		}
		if l.Far == ma("196.49.7.11") && !l.GeoConsistent {
			t.Fatal("clean link wrongly flagged")
		}
	}
}

func TestGeoCheckSkippedWithoutDatasets(t *testing.T) {
	w := build(t)
	p := prober.New(w.nw, w.vp, prober.Config{})
	res, err := Run(p, w.cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range res.Links {
		if !l.GeoConsistent {
			t.Fatalf("without geo datasets every link is consistent: %+v", l)
		}
	}
}
