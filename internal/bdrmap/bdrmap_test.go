package bdrmap

import (
	"testing"
	"time"

	"afrixp/internal/asrel"
	"afrixp/internal/bgpsim"
	"afrixp/internal/ixpdir"
	"afrixp/internal/netaddr"
	"afrixp/internal/netsim"
	"afrixp/internal/prober"
	"afrixp/internal/registry"
	"afrixp/internal/simclock"
)

func ma(s string) netaddr.Addr   { return netaddr.MustParseAddr(s) }
func mp(s string) netaddr.Prefix { return netaddr.MustParsePrefix(s) }

// world: VP host in AS100 (content network, sibling AS101). AS100
// peers at "GIXA" with members 200 and 300; 200 sells transit to 400;
// AS100 buys transit from 500 over a private link addressed from
// 500's space. Member 300's PCH port record is present; 200's too.
type world struct {
	nw  *netsim.Network
	vp  *netsim.Node
	cfg Config
}

func build(t testing.TB) *world {
	g := asrel.NewGraph()
	g.AddAS(100, "CONTENT", "IXP-Org")
	g.AddAS(101, "CONTENT-2", "IXP-Org")
	g.SetSibling(100, 101)
	g.SetPeer(100, 200)
	g.SetPeer(100, 300)
	g.SetProvider(400, 200)
	g.SetProvider(100, 500)

	bgp := bgpsim.New(g)
	bgp.Announce(100, mp("10.100.0.0/16"))
	bgp.Announce(101, mp("10.101.0.0/16"))
	bgp.Announce(200, mp("10.200.0.0/16"))
	bgp.Announce(300, mp("10.201.0.0/16"))
	bgp.Announce(400, mp("10.202.0.0/16"))
	bgp.Announce(500, mp("10.50.0.0/16"))

	nw := netsim.New(bgp, 11)
	vp := nw.AddNode("vp", 100)
	r100 := nw.AddNode("r100", 100)
	r101 := nw.AddNode("r101", 101)
	r200 := nw.AddNode("r200", 200)
	r300 := nw.AddNode("r300", 300)
	r400 := nw.AddNode("r400", 400)
	r500 := nw.AddNode("r500", 500)

	nw.ConnectLink(vp, r100, netsim.LinkSpec{Subnet: mp("10.100.0.0/30")})
	nw.SetGateway(vp, nw.Iface(vp.Ifaces[0]))

	lan := nw.AddLAN(mp("196.49.7.0/24"))
	nw.AttachToLAN(r100, lan, netsim.AttachSpec{Addr: ma("196.49.7.1")})
	nw.AttachToLAN(r200, lan, netsim.AttachSpec{Addr: ma("196.49.7.10")})
	nw.AttachToLAN(r300, lan, netsim.AttachSpec{Addr: ma("196.49.7.11")})

	// Private transit link addressed from the provider's space.
	nw.ConnectLink(r100, r500, netsim.LinkSpec{Subnet: mp("10.50.255.0/30")})
	// Sibling interconnect (intra-organization, must not appear as a
	// border).
	nw.ConnectLink(r100, r101, netsim.LinkSpec{Subnet: mp("10.100.1.0/30")})
	// Member 200's customer 400.
	nw.ConnectLink(r200, r400, netsim.LinkSpec{Subnet: mp("10.200.255.0/30")})

	// Service addresses live on hosts *behind* each border router, so
	// traces into the AS reveal the border router's ingress interface
	// (the IXP port) as a time-exceeded hop — as real member networks
	// do.
	for _, m := range []struct {
		border *netsim.Node
		as     asrel.ASN
		subnet string
		lo     string
	}{
		{r200, 200, "10.200.1.0/30", "10.200.0.1"},
		{r300, 300, "10.201.1.0/30", "10.201.0.1"},
		{r400, 400, "10.202.1.0/30", "10.202.0.1"},
		{r500, 500, "10.50.1.0/30", "10.50.0.1"},
		{r101, 101, "10.101.1.0/30", "10.101.0.1"},
	} {
		h := nw.AddNode("h"+m.border.Name, m.as)
		nw.ConnectLink(m.border, h, netsim.LinkSpec{Subnet: mp(m.subnet)})
		nw.AddLoopback(h, ma(m.lo), "lo."+m.border.Name)
	}

	dir := &ixpdir.Directory{
		IXPs: []ixpdir.IXP{{Name: "GIXA", Country: "GH", Region: "West Africa",
			Launched: 2005, PeeringLAN: mp("196.49.7.0/24")}},
		PortAssignments: []ixpdir.PortAssignment{
			{IXPName: "GIXA", Addr: ma("196.49.7.10"), ASN: 200},
			{IXPName: "GIXA", Addr: ma("196.49.7.11"), ASN: 300},
		},
	}
	rirIdx := registry.NewIndex(&registry.File{Registry: "afrinic"})
	cfg := Config{
		BGP:      bgp,
		Rels:     g,
		RIR:      rirIdx,
		IXP:      ixpdir.NewIndex(dir),
		Siblings: []asrel.ASN{101},
	}
	return &world{nw: nw, vp: vp, cfg: cfg}
}

func TestDiscoversAllNeighbors(t *testing.T) {
	w := build(t)
	p := prober.New(w.nw, w.vp, prober.Config{})
	res, err := Run(p, w.cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []asrel.ASN{200, 300, 500}
	if len(res.Neighbors) != len(want) {
		t.Fatalf("neighbors = %v, want %v", res.Neighbors, want)
	}
	for i, a := range want {
		if res.Neighbors[i] != a {
			t.Fatalf("neighbors = %v, want %v", res.Neighbors, want)
		}
	}
	if res.TracesRun < 4 {
		t.Fatalf("traces run = %d", res.TracesRun)
	}
}

func TestPeeringVsTransitClassification(t *testing.T) {
	w := build(t)
	p := prober.New(w.nw, w.vp, prober.Config{})
	res, err := Run(p, w.cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	peering := res.PeeringLinks()
	if len(peering) != 2 {
		t.Fatalf("peering links = %+v", peering)
	}
	for _, l := range peering {
		if l.ViaIXP != "GIXA" {
			t.Fatalf("peering link not at GIXA: %+v", l)
		}
		if l.FarAS != 200 && l.FarAS != 300 {
			t.Fatalf("peering far AS = %v", l.FarAS)
		}
		if l.Rel != asrel.Peer {
			t.Fatalf("IXP link relationship = %v", l.Rel)
		}
	}
	// Peers: 200 and 300, not the transit provider 500.
	if len(res.Peers) != 2 || res.Peers[0] != 200 || res.Peers[1] != 300 {
		t.Fatalf("peers = %v", res.Peers)
	}
}

func TestProviderAddressedLink(t *testing.T) {
	w := build(t)
	p := prober.New(w.nw, w.vp, prober.Config{})
	res, err := Run(p, w.cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	var transit *Link
	for i := range res.Links {
		if res.Links[i].FarAS == 500 {
			transit = &res.Links[i]
		}
	}
	if transit == nil {
		t.Fatalf("transit link missing: %+v", res.Links)
	}
	if transit.ViaIXP != "" {
		t.Fatal("private link must not be at an IXP")
	}
	if transit.Far != ma("10.50.255.2") {
		t.Fatalf("far end = %v", transit.Far)
	}
	if transit.Rel != asrel.Provider {
		t.Fatalf("relationship = %v", transit.Rel)
	}
}

func TestSiblingNotANeighbor(t *testing.T) {
	w := build(t)
	p := prober.New(w.nw, w.vp, prober.Config{})
	res, err := Run(p, w.cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.HasNeighbor(101) {
		t.Fatal("sibling AS must not appear as a neighbor")
	}
	if res.HasNeighbor(400) {
		t.Fatal("member's customer is not a VP neighbor")
	}
}

func TestNearEndsInsideVPNetwork(t *testing.T) {
	w := build(t)
	p := prober.New(w.nw, w.vp, prober.Config{})
	res, err := Run(p, w.cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range res.Links {
		origin, ok := w.cfg.BGP.OriginOf(l.Near)
		if !ok || (origin != 100 && origin != 101) {
			t.Fatalf("near end %v not inside VP network (origin %v)", l.Near, origin)
		}
	}
}

func TestAliasGroupsBorders(t *testing.T) {
	w := build(t)
	cfg := w.cfg
	cfg.ResolveAliases = true
	p := prober.New(w.nw, w.vp, prober.Config{})
	res, err := Run(p, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	// All near addresses belong to r100: one border router group.
	if len(res.BorderGroups) != 1 {
		t.Fatalf("border groups = %v", res.BorderGroups)
	}
}

func TestValidateNeighbors(t *testing.T) {
	res := &Result{Neighbors: []asrel.ASN{200, 300}}
	frac, missed, spurious := ValidateNeighbors(res, []asrel.ASN{200, 300, 500})
	if frac < 0.66 || frac > 0.67 {
		t.Fatalf("frac = %v", frac)
	}
	if len(missed) != 1 || missed[0] != 500 || len(spurious) != 0 {
		t.Fatalf("missed %v spurious %v", missed, spurious)
	}
	frac, _, spurious = ValidateNeighbors(&Result{Neighbors: []asrel.ASN{9}}, nil)
	if frac != 1 || len(spurious) != 1 {
		t.Fatalf("empty truth: %v %v", frac, spurious)
	}
}

func TestGroundTruthValidation(t *testing.T) {
	// End-to-end: the inferred neighbor set must cover the data-plane
	// ground truth (the paper's 96.2 % check — here the world is
	// fully responsive, so coverage is 100 %).
	w := build(t)
	p := prober.New(w.nw, w.vp, prober.Config{})
	res, err := Run(p, w.cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	truthSet := map[asrel.ASN]bool{}
	for _, l := range w.nw.InterdomainLinks() {
		if (l.NearAS == 100 || l.NearAS == 101) && l.FarAS != 100 && l.FarAS != 101 {
			truthSet[l.FarAS] = true
		}
	}
	var truth []asrel.ASN
	for a := range truthSet {
		truth = append(truth, a)
	}
	frac, missed, _ := ValidateNeighbors(res, truth)
	if frac != 1 {
		t.Fatalf("coverage = %v, missed %v", frac, missed)
	}
}

// TestMultiBorderRouterVP: a VP AS with two border routers — one
// holding the IXP port, one holding the transit uplink — must yield
// two distinct near addresses, which alias resolution then groups
// into two border routers.
func TestMultiBorderRouterVP(t *testing.T) {
	g := asrel.NewGraph()
	g.AddAS(100, "CONTENT", "IXP-Org")
	g.SetPeer(100, 200)
	g.SetProvider(100, 500)
	bgp := bgpsim.New(g)
	bgp.Announce(100, mp("10.100.0.0/16"))
	bgp.Announce(200, mp("10.200.0.0/16"))
	bgp.Announce(500, mp("10.50.0.0/16"))

	nw := netsim.New(bgp, 13)
	vp := nw.AddNode("vp", 100)
	core := nw.AddNode("core", 100)
	brIXP := nw.AddNode("br-ixp", 100)
	brTransit := nw.AddNode("br-transit", 100)
	r200 := nw.AddNode("r200", 200)
	r500 := nw.AddNode("r500", 500)

	nw.ConnectLink(vp, core, netsim.LinkSpec{Subnet: mp("10.100.0.0/30")})
	nw.SetGateway(vp, nw.Iface(vp.Ifaces[0]))
	nw.ConnectLink(core, brIXP, netsim.LinkSpec{Subnet: mp("10.100.0.4/30")})
	nw.ConnectLink(core, brTransit, netsim.LinkSpec{Subnet: mp("10.100.0.8/30")})

	lan := nw.AddLAN(mp("196.49.9.0/24"))
	nw.AttachToLAN(brIXP, lan, netsim.AttachSpec{Addr: ma("196.49.9.1")})
	nw.AttachToLAN(r200, lan, netsim.AttachSpec{Addr: ma("196.49.9.10")})
	nw.ConnectLink(brTransit, r500, netsim.LinkSpec{Subnet: mp("10.50.255.0/30")})

	// Service hosts behind the far borders.
	for _, m := range []struct {
		border *netsim.Node
		as     asrel.ASN
		sub    string
		lo     string
	}{
		{r200, 200, "10.200.1.0/30", "10.200.0.1"},
		{r500, 500, "10.50.1.0/30", "10.50.0.1"},
	} {
		h := nw.AddNode("h"+m.border.Name, m.as)
		nw.ConnectLink(m.border, h, netsim.LinkSpec{Subnet: mp(m.sub)})
		nw.AddLoopback(h, ma(m.lo), "lo")
	}

	dir := &ixpdir.Directory{IXPs: []ixpdir.IXP{{Name: "X", Country: "GH",
		Region: "West Africa", Launched: 2005, PeeringLAN: mp("196.49.9.0/24")}},
		PortAssignments: []ixpdir.PortAssignment{
			{IXPName: "X", Addr: ma("196.49.9.10"), ASN: 200}}}
	cfg := Config{
		BGP: bgp, Rels: g,
		RIR:            registry.NewIndex(&registry.File{Registry: "afrinic"}),
		IXP:            ixpdir.NewIndex(dir),
		ResolveAliases: true,
	}
	p := prober.New(nw, vp, prober.Config{})
	res, err := Run(p, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) != 2 {
		t.Fatalf("neighbors = %v", res.Neighbors)
	}
	// Two distinct near addresses: brIXP's arrival iface for the IXP
	// path, brTransit's for the transit path.
	nears := map[string]bool{}
	for _, l := range res.Links {
		nears[l.Near.String()] = true
	}
	if len(nears) != 2 {
		t.Fatalf("near addresses = %v, want 2 distinct borders", nears)
	}
	if len(res.BorderGroups) != 2 {
		t.Fatalf("alias resolution grouped borders into %d routers: %v",
			len(res.BorderGroups), res.BorderGroups)
	}
}

func TestTrimTrailingLoss(t *testing.T) {
	hops := []prober.Hop{
		{TTL: 1}, {TTL: 2, Lost: true}, {TTL: 3},
		{TTL: 4, Lost: true}, {TTL: 5, Lost: true}, {TTL: 6, Lost: true},
		{TTL: 7},
	}
	got := trimTrailingLoss(hops, 3)
	if len(got) != 4 {
		t.Fatalf("trimmed to %d hops", len(got))
	}
}

func TestTraceTarget(t *testing.T) {
	if traceTarget(mp("10.0.0.0/16")) != ma("10.0.0.1") {
		t.Fatal("host target wrong")
	}
	if traceTarget(mp("10.0.0.8/31")) != ma("10.0.0.8") {
		t.Fatal("/31 target wrong")
	}
}

func BenchmarkBorderMapping(b *testing.B) {
	w := build(b)
	p := prober.New(w.nw, w.vp, prober.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(p, w.cfg, simclock.Time(time.Duration(i)*time.Minute)); err != nil {
			b.Fatal(err)
		}
	}
}
