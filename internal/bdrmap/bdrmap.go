// Package bdrmap reproduces CAIDA's border mapping process (§4 of the
// paper): from a vantage point it traces toward every routed prefix
// observed in BGP, then applies ownership heuristics — prefix→AS
// mappings, AS relationships, RIR delegations, IXP prefix lists, and
// the VP AS's sibling list — plus alias resolution to infer the
// interdomain links of the VP's host network: the (near IP, far IP)
// pairs TSLP will probe, the set of AS neighbors, and which of them
// are settlement-free peers.
package bdrmap

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"afrixp/internal/alias"
	"afrixp/internal/asrel"
	"afrixp/internal/bgpsim"
	"afrixp/internal/geo"
	"afrixp/internal/ixpdir"
	"afrixp/internal/netaddr"
	"afrixp/internal/prober"
	"afrixp/internal/registry"
	"afrixp/internal/simclock"
)

// Config carries the input datasets of the border mapping process.
type Config struct {
	// BGP supplies prefix→AS mappings and the routed-prefix trace
	// target list (the RouteViews/RIS stand-in).
	BGP *bgpsim.Network
	// Rels carries AS relationships (the AS-rank stand-in); used to
	// classify neighbors as peers/providers/customers. May be the
	// inferred graph rather than ground truth.
	Rels *asrel.Graph
	// RIR indexes address delegations (ownership corroboration).
	RIR *registry.Index
	// IXP indexes IXP peering/management prefixes and the PCH-style
	// port→AS assignments.
	IXP *ixpdir.Index
	// Geo and RDNS, when set, enable the §5.1 cross-check: both ends
	// of a link classified "at the IXP" are geolocated (database +
	// reverse-DNS hints) and compared against the exchange's country.
	Geo  *geo.DB
	RDNS *geo.RDNS
	// Siblings lists ASes belonging to the VP's organization; hops in
	// their space count as inside the VP network.
	Siblings []asrel.ASN
	// MaxTTL bounds each traceroute. Default 16.
	MaxTTL uint8
	// MaxConsecutiveLoss stops a trace after this many silent hops.
	// Default 3.
	MaxConsecutiveLoss int
	// ResolveAliases enables the Ally pass over border addresses.
	ResolveAliases bool
}

func (c Config) withDefaults() Config {
	if c.MaxTTL == 0 {
		c.MaxTTL = 16
	}
	if c.MaxConsecutiveLoss == 0 {
		c.MaxConsecutiveLoss = 3
	}
	return c
}

// Link is one inferred interdomain IP link.
type Link struct {
	// Near and Far are the link's two ends: the last address inside
	// the VP network and the first address beyond it.
	Near, Far netaddr.Addr
	// FarAS is the inferred owner of the far end.
	FarAS asrel.ASN
	// ViaIXP names the IXP whose prefix covers either end ("" when
	// the link is a private interconnect). Links with ViaIXP set are
	// the paper's "inferred IP peering links" (§5.1).
	ViaIXP string
	// Rel is the business relationship of FarAS relative to the VP AS
	// per the supplied relationship data (asrel.None when unknown).
	Rel asrel.Rel
	// GeoConsistent reports whether geolocation and reverse-DNS hints
	// agree with the link being at ViaIXP's location (§5.1's added
	// check). Always true when the check did not run or the link is
	// not at an exchange.
	GeoConsistent bool
}

// Result is the border map of one VP.
type Result struct {
	VPAS asrel.ASN
	// Links are the discovered interdomain IP links, deduplicated,
	// sorted by (Near, Far).
	Links []Link
	// Neighbors are the distinct far ASes.
	Neighbors []asrel.ASN
	// Peers are neighbors classified as settlement-free peers (IXP
	// fabric links or peer relationships).
	Peers []asrel.ASN
	// BorderGroups are alias-resolved groups of near-side border
	// addresses (one group ≈ one border router), when enabled.
	BorderGroups [][]netaddr.Addr
	// TracesRun counts traceroutes issued.
	TracesRun int
}

// PeeringLinks returns the subset of links established across an IXP.
func (r *Result) PeeringLinks() []Link {
	var out []Link
	for _, l := range r.Links {
		if l.ViaIXP != "" {
			out = append(out, l)
		}
	}
	return out
}

// HasNeighbor reports whether as appears among the inferred neighbors.
func (r *Result) HasNeighbor(as asrel.ASN) bool {
	for _, n := range r.Neighbors {
		if n == as {
			return true
		}
	}
	return false
}

// Run executes the border mapping process from the prober's VP at
// virtual time t. The VP's AS is taken from the prober's node.
func Run(p *prober.Prober, cfg Config, t simclock.Time) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.BGP == nil {
		return nil, fmt.Errorf("bdrmap: BGP dataset required")
	}
	vpAS := p.VP().ASN
	inside := map[asrel.ASN]bool{vpAS: true}
	for _, s := range cfg.Siblings {
		inside[s] = true
	}

	res := &Result{VPAS: vpAS}
	type linkKey struct{ near, far netaddr.Addr }
	seen := make(map[linkKey]*Link)

	at := t
	for _, po := range cfg.BGP.RoutedPrefixes() {
		if inside[po.Origin] {
			continue // no border crossing toward our own prefixes
		}
		target := traceTarget(po.Prefix)
		hops, err := p.Traceroute(target, cfg.MaxTTL, at)
		if err != nil {
			return nil, fmt.Errorf("bdrmap: tracing %v: %w", po.Prefix, err)
		}
		res.TracesRun++
		at = at.Add(200 * time.Millisecond)
		hops = trimTrailingLoss(hops, cfg.MaxConsecutiveLoss)

		near, far, ok := findBorder(hops, inside, cfg)
		if !ok {
			continue
		}
		farAS, viaIXP := classifyFar(hops, far, inside, cfg)
		if farAS == 0 {
			continue
		}
		k := linkKey{near, far}
		if _, dup := seen[k]; dup {
			continue
		}
		l := &Link{Near: near, Far: far, FarAS: farAS, ViaIXP: viaIXP,
			Rel: asrel.None, GeoConsistent: true}
		if cfg.Rels != nil {
			l.Rel = cfg.Rels.Rel(vpAS, farAS)
		}
		if l.ViaIXP != "" {
			l.GeoConsistent = geoCheck(l, cfg)
		}
		seen[k] = l
		res.Links = append(res.Links, *l)
	}

	sort.Slice(res.Links, func(i, j int) bool {
		if res.Links[i].Near != res.Links[j].Near {
			return res.Links[i].Near < res.Links[j].Near
		}
		return res.Links[i].Far < res.Links[j].Far
	})

	// Neighbor and peer sets.
	nset := make(map[asrel.ASN]bool)
	pset := make(map[asrel.ASN]bool)
	for _, l := range res.Links {
		nset[l.FarAS] = true
		if l.ViaIXP != "" || l.Rel == asrel.Peer {
			pset[l.FarAS] = true
		}
	}
	res.Neighbors = sortedASNs(nset)
	res.Peers = sortedASNs(pset)

	if cfg.ResolveAliases {
		borders := make(map[netaddr.Addr]bool)
		for _, l := range res.Links {
			borders[l.Near] = true
		}
		addrs := make([]netaddr.Addr, 0, len(borders))
		for a := range borders {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		groups, err := alias.NewResolver(p, alias.Config{}).Resolve(addrs, at)
		if err == nil {
			res.BorderGroups = groups
		}
	}
	return res, nil
}

// traceTarget picks the probe destination inside a prefix: the first
// usable host address.
func traceTarget(p netaddr.Prefix) netaddr.Addr {
	if p.Bits >= 31 {
		return p.First()
	}
	return p.Nth(1)
}

// trimTrailingLoss cuts the trace after maxLoss consecutive silent
// hops.
func trimTrailingLoss(hops []prober.Hop, maxLoss int) []prober.Hop {
	run := 0
	for i, h := range hops {
		if h.Lost {
			run++
			if run >= maxLoss {
				return hops[:i+1-run+1]
			}
		} else {
			run = 0
		}
	}
	return hops
}

// findBorder locates the last responding hop inside the VP network and
// the first hop beyond it. The far hop must directly follow the near
// hop: attributing a border across unresponsive hops would splice
// distant routers into fake adjacencies (exactly what happens when a
// lossy link swallows the true far end but a router beyond it
// answers), so gap-crossing traces are treated as inconclusive.
func findBorder(hops []prober.Hop, inside map[asrel.ASN]bool, cfg Config) (near, far netaddr.Addr, ok bool) {
	lastInside := -1
	for i, h := range hops {
		if h.Lost {
			continue
		}
		if owner, known := hopOwner(h.Responder, cfg); known && inside[owner] {
			lastInside = i
		} else {
			break
		}
	}
	if lastInside < 0 || lastInside+1 >= len(hops) {
		return 0, 0, false
	}
	next := hops[lastInside+1]
	if next.Lost {
		return 0, 0, false
	}
	return hops[lastInside].Responder, next.Responder, true
}

// hopOwner maps a hop address to an AS using BGP first, then RIR
// delegations via the opaque-org→ASN chain (addresses can be
// delegated but not announced — infrastructure blocks often are).
// IXP fabric addresses return unknown: they are shared infrastructure.
func hopOwner(a netaddr.Addr, cfg Config) (asrel.ASN, bool) {
	if cfg.IXP != nil && cfg.IXP.OnPeeringLAN(a) {
		return 0, false
	}
	if origin, ok := cfg.BGP.OriginOf(a); ok {
		return origin, true
	}
	if cfg.RIR != nil {
		if del, ok := cfg.RIR.LookupAddr(a); ok && del.Opaque != "" {
			if asn, ok := cfg.RIR.ASNForOrg(del.Opaque); ok {
				return asn, true
			}
		}
	}
	return 0, false
}

// classifyFar infers the owner of the far address and whether the
// link crosses an IXP fabric.
func classifyFar(hops []prober.Hop, far netaddr.Addr, inside map[asrel.ASN]bool, cfg Config) (asrel.ASN, string) {
	viaIXP := ""
	if cfg.IXP != nil {
		if x, ok := cfg.IXP.IXPForAddr(far); ok {
			viaIXP = x.Name
		}
	}
	// Direct mapping: the far address is announced by a non-VP AS.
	if owner, ok := hopOwner(far, cfg); ok && !inside[owner] {
		return owner, viaIXP
	}
	// IXP fabric addresses: the PCH-style port assignment is
	// authoritative for who holds the port.
	if viaIXP != "" && cfg.IXP != nil {
		if owner, ok := cfg.IXP.PortOwner(far); ok {
			return owner, viaIXP
		}
	}
	// Otherwise (unlisted port, provider-addressed far end) the owner
	// is revealed by the next hops — the first subsequent responding
	// hop mapping to an outside AS.
	idx := -1
	for i, h := range hops {
		if !h.Lost && h.Responder == far {
			idx = i
			break
		}
	}
	if idx >= 0 {
		for j := idx + 1; j < len(hops); j++ {
			if hops[j].Lost {
				continue
			}
			if owner, ok := hopOwner(hops[j].Responder, cfg); ok && !inside[owner] {
				return owner, viaIXP
			}
		}
	}
	return 0, viaIXP
}

// geoCheck runs the §5.1 consistency pass on one IXP link: the far
// address's geolocation must match the exchange's country, and any
// reverse-DNS hints must not contradict the geolocation database.
func geoCheck(l *Link, cfg Config) bool {
	if cfg.Geo == nil || cfg.IXP == nil {
		return true
	}
	x, ok := cfg.IXP.ByName(l.ViaIXP)
	if !ok {
		return true
	}
	if e, ok := cfg.Geo.Lookup(l.Far); ok && e.Country != "" &&
		!strings.EqualFold(e.Country, x.Country) {
		return false
	}
	if cfg.RDNS != nil {
		if !geo.Consistent(cfg.Geo, cfg.RDNS, l.Far) ||
			!geo.Consistent(cfg.Geo, cfg.RDNS, l.Near) {
			return false
		}
	}
	return true
}

func sortedASNs(set map[asrel.ASN]bool) []asrel.ASN {
	out := make([]asrel.ASN, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ValidateNeighbors scores an inferred neighbor set against ground
// truth, returning the discovered fraction (the paper reports 96.2 %
// on average) plus the missed and spurious neighbor lists.
func ValidateNeighbors(res *Result, truth []asrel.ASN) (frac float64, missed, spurious []asrel.ASN) {
	tset := make(map[asrel.ASN]bool, len(truth))
	for _, a := range truth {
		tset[a] = true
	}
	iset := make(map[asrel.ASN]bool, len(res.Neighbors))
	found := 0
	for _, a := range res.Neighbors {
		iset[a] = true
		if tset[a] {
			found++
		} else {
			spurious = append(spurious, a)
		}
	}
	for _, a := range truth {
		if !iset[a] {
			missed = append(missed, a)
		}
	}
	if len(truth) == 0 {
		return 1, nil, spurious
	}
	return float64(found) / float64(len(truth)), missed, spurious
}
