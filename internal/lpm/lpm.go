// Package lpm implements a longest-prefix-match binary trie over IPv4
// prefixes. Every simulated router's FIB is a Table, and the bdrmap
// pipeline uses one to map addresses to origin ASes; lookups are the
// single hottest operation in a campaign, so the trie is a flat slice
// of nodes indexed by int32 rather than pointer-chased heap nodes.
package lpm

import (
	"fmt"
	"sort"

	"afrixp/internal/netaddr"
)

const nilNode = int32(-1)

type node struct {
	child [2]int32
	// value index into Table.values, or -1 when no route terminates here.
	value int32
}

// Table is a longest-prefix-match table mapping prefixes to arbitrary
// values. The zero value is not usable; call New.
type Table[V any] struct {
	nodes  []node
	values []V
	// prefixes mirrors values for enumeration.
	prefixes []netaddr.Prefix
	size     int
}

// New returns an empty table.
func New[V any]() *Table[V] {
	t := &Table[V]{}
	t.nodes = append(t.nodes, node{child: [2]int32{nilNode, nilNode}, value: nilNode})
	return t
}

// Len returns the number of distinct prefixes in the table.
func (t *Table[V]) Len() int { return t.size }

// Insert adds or replaces the value for p.
func (t *Table[V]) Insert(p netaddr.Prefix, v V) {
	cur := int32(0)
	for depth := 0; depth < p.Bits; depth++ {
		bit := (uint32(p.Addr) >> (31 - uint(depth))) & 1
		next := t.nodes[cur].child[bit]
		if next == nilNode {
			t.nodes = append(t.nodes, node{child: [2]int32{nilNode, nilNode}, value: nilNode})
			next = int32(len(t.nodes) - 1)
			t.nodes[cur].child[bit] = next
		}
		cur = next
	}
	if t.nodes[cur].value == nilNode {
		t.values = append(t.values, v)
		t.prefixes = append(t.prefixes, p)
		t.nodes[cur].value = int32(len(t.values) - 1)
		t.size++
	} else {
		t.values[t.nodes[cur].value] = v
	}
}

// Lookup returns the value of the longest prefix containing a.
func (t *Table[V]) Lookup(a netaddr.Addr) (V, bool) {
	best := nilNode
	cur := int32(0)
	for depth := 0; ; depth++ {
		if v := t.nodes[cur].value; v != nilNode {
			best = v
		}
		if depth == 32 {
			break
		}
		bit := (uint32(a) >> (31 - uint(depth))) & 1
		next := t.nodes[cur].child[bit]
		if next == nilNode {
			break
		}
		cur = next
	}
	if best == nilNode {
		var zero V
		return zero, false
	}
	return t.values[best], true
}

// LookupPrefix returns both the matched prefix and its value.
func (t *Table[V]) LookupPrefix(a netaddr.Addr) (netaddr.Prefix, V, bool) {
	best := nilNode
	cur := int32(0)
	for depth := 0; ; depth++ {
		if v := t.nodes[cur].value; v != nilNode {
			best = v
		}
		if depth == 32 {
			break
		}
		bit := (uint32(a) >> (31 - uint(depth))) & 1
		next := t.nodes[cur].child[bit]
		if next == nilNode {
			break
		}
		cur = next
	}
	if best == nilNode {
		var zero V
		return netaddr.Prefix{}, zero, false
	}
	return t.prefixes[best], t.values[best], true
}

// Exact returns the value stored for exactly p, ignoring covering
// routes.
func (t *Table[V]) Exact(p netaddr.Prefix) (V, bool) {
	cur := int32(0)
	for depth := 0; depth < p.Bits; depth++ {
		bit := (uint32(p.Addr) >> (31 - uint(depth))) & 1
		next := t.nodes[cur].child[bit]
		if next == nilNode {
			var zero V
			return zero, false
		}
		cur = next
	}
	if v := t.nodes[cur].value; v != nilNode {
		return t.values[v], true
	}
	var zero V
	return zero, false
}

// Walk visits every (prefix, value) pair in ascending prefix order.
func (t *Table[V]) Walk(fn func(netaddr.Prefix, V) bool) {
	idx := make([]int, len(t.prefixes))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		pi, pj := t.prefixes[idx[i]], t.prefixes[idx[j]]
		if pi.Addr != pj.Addr {
			return pi.Addr < pj.Addr
		}
		return pi.Bits < pj.Bits
	})
	for _, i := range idx {
		if !fn(t.prefixes[i], t.values[i]) {
			return
		}
	}
}

// String summarizes the table for debugging.
func (t *Table[V]) String() string {
	return fmt.Sprintf("lpm.Table{%d prefixes, %d nodes}", t.size, len(t.nodes))
}
