package lpm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"afrixp/internal/netaddr"
)

func mp(s string) netaddr.Prefix { return netaddr.MustParsePrefix(s) }
func ma(s string) netaddr.Addr   { return netaddr.MustParseAddr(s) }

func TestEmptyLookup(t *testing.T) {
	tb := New[int]()
	if _, ok := tb.Lookup(ma("1.2.3.4")); ok {
		t.Fatal("empty table must miss")
	}
	if tb.Len() != 0 {
		t.Fatal("empty table Len != 0")
	}
}

func TestLongestMatchWins(t *testing.T) {
	tb := New[string]()
	tb.Insert(mp("0.0.0.0/0"), "default")
	tb.Insert(mp("10.0.0.0/8"), "eight")
	tb.Insert(mp("10.1.0.0/16"), "sixteen")
	tb.Insert(mp("10.1.2.0/24"), "twentyfour")

	cases := []struct{ addr, want string }{
		{"10.1.2.3", "twentyfour"},
		{"10.1.3.1", "sixteen"},
		{"10.2.0.1", "eight"},
		{"11.0.0.1", "default"},
	}
	for _, c := range cases {
		got, ok := tb.Lookup(ma(c.addr))
		if !ok || got != c.want {
			t.Errorf("Lookup(%s) = %q,%v; want %q", c.addr, got, ok, c.want)
		}
	}
}

func TestLookupPrefixReturnsMatchedPrefix(t *testing.T) {
	tb := New[int]()
	tb.Insert(mp("196.49.0.0/16"), 1)
	tb.Insert(mp("196.49.7.0/24"), 2)
	p, v, ok := tb.LookupPrefix(ma("196.49.7.200"))
	if !ok || v != 2 || p != mp("196.49.7.0/24") {
		t.Fatalf("got %v %d %v", p, v, ok)
	}
	p, v, ok = tb.LookupPrefix(ma("196.49.8.1"))
	if !ok || v != 1 || p != mp("196.49.0.0/16") {
		t.Fatalf("got %v %d %v", p, v, ok)
	}
}

func TestInsertReplace(t *testing.T) {
	tb := New[int]()
	tb.Insert(mp("10.0.0.0/8"), 1)
	tb.Insert(mp("10.0.0.0/8"), 2)
	if tb.Len() != 1 {
		t.Fatalf("Len = %d after replace", tb.Len())
	}
	if v, _ := tb.Lookup(ma("10.0.0.1")); v != 2 {
		t.Fatalf("replace did not take: %d", v)
	}
}

func TestExact(t *testing.T) {
	tb := New[int]()
	tb.Insert(mp("10.0.0.0/8"), 8)
	if _, ok := tb.Exact(mp("10.0.0.0/16")); ok {
		t.Fatal("Exact must not use covering routes")
	}
	if v, ok := tb.Exact(mp("10.0.0.0/8")); !ok || v != 8 {
		t.Fatal("Exact miss on stored prefix")
	}
}

func TestHostRoute(t *testing.T) {
	tb := New[int]()
	tb.Insert(mp("10.0.0.1/32"), 99)
	if v, ok := tb.Lookup(ma("10.0.0.1")); !ok || v != 99 {
		t.Fatal("host route must match its own address")
	}
	if _, ok := tb.Lookup(ma("10.0.0.2")); ok {
		t.Fatal("host route must not match neighbors")
	}
}

func TestDefaultRouteOnly(t *testing.T) {
	tb := New[int]()
	tb.Insert(mp("0.0.0.0/0"), 7)
	f := func(v uint32) bool {
		got, ok := tb.Lookup(netaddr.Addr(v))
		return ok && got == 7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWalkOrderAndCompleteness(t *testing.T) {
	tb := New[int]()
	ins := []string{"10.1.2.0/24", "0.0.0.0/0", "10.0.0.0/8", "192.168.0.0/16"}
	for i, s := range ins {
		tb.Insert(mp(s), i)
	}
	var seen []string
	tb.Walk(func(p netaddr.Prefix, _ int) bool {
		seen = append(seen, p.String())
		return true
	})
	want := []string{"0.0.0.0/0", "10.0.0.0/8", "10.1.2.0/24", "192.168.0.0/16"}
	if len(seen) != len(want) {
		t.Fatalf("Walk visited %d, want %d", len(seen), len(want))
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("Walk[%d] = %s, want %s", i, seen[i], want[i])
		}
	}
}

func TestWalkEarlyStop(t *testing.T) {
	tb := New[int]()
	tb.Insert(mp("10.0.0.0/8"), 0)
	tb.Insert(mp("11.0.0.0/8"), 1)
	n := 0
	tb.Walk(func(netaddr.Prefix, int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Walk did not stop early: %d", n)
	}
}

// TestAgainstLinearScan cross-checks the trie against a brute-force
// longest-match over a random rule set — the core correctness property.
func TestAgainstLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tb := New[int]()
	type rule struct {
		p netaddr.Prefix
		v int
	}
	var rules []rule
	for i := 0; i < 300; i++ {
		bits := rng.Intn(33)
		p := netaddr.PrefixFrom(netaddr.Addr(rng.Uint32()), bits)
		// Keep only the first rule per distinct prefix, mirroring
		// Insert-replace semantics by always overwriting.
		rules = append(rules, rule{p, i})
		tb.Insert(p, i)
	}
	lookup := func(a netaddr.Addr) (int, bool) {
		best, bestBits, found := 0, -1, false
		for _, r := range rules {
			if r.p.Contains(a) && r.p.Bits >= bestBits {
				// Later rules replace earlier equal-prefix rules.
				if r.p.Bits > bestBits || r.v > best || !found {
					best, bestBits, found = r.v, r.p.Bits, true
				}
			}
		}
		return best, found
	}
	for i := 0; i < 5000; i++ {
		a := netaddr.Addr(rng.Uint32())
		wantV, wantOK := lookup(a)
		gotV, gotOK := tb.Lookup(a)
		if gotOK != wantOK || (gotOK && gotV != wantV) {
			t.Fatalf("Lookup(%v) = %d,%v; scan says %d,%v", a, gotV, gotOK, wantV, wantOK)
		}
	}
}

func BenchmarkLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	tb := New[int]()
	for i := 0; i < 10000; i++ {
		tb.Insert(netaddr.PrefixFrom(netaddr.Addr(rng.Uint32()), 8+rng.Intn(25)), i)
	}
	addrs := make([]netaddr.Addr, 1024)
	for i := range addrs {
		addrs[i] = netaddr.Addr(rng.Uint32())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Lookup(addrs[i&1023])
	}
}
