// Package interview encodes what the paper obtained by talking to the
// IXP operators: ground-truth annotations about each link — whether it
// was really congested, why, and what changed when. The scenario
// attaches annotations when it authors congestion; the validation
// engine then confronts the measurement pipeline's verdicts with them,
// reproducing the paper's §6 cause analysis programmatically.
package interview

import (
	"fmt"
	"sort"

	"afrixp/internal/analysis"
	"afrixp/internal/prober"
	"afrixp/internal/simclock"
)

// Cause labels why a link showed (or appeared to show) congestion.
type Cause string

// Causes seen in the paper.
const (
	// CauseTransitUnderprovisioned: a transit link too small for the
	// demand (GIXA–GHANATEL phase 1: 100 Mbps feeding the GGC).
	CauseTransitUnderprovisioned Cause = "transit-underprovisioned"
	// CausePeeringDispute: capacity withheld during a payment dispute
	// (GIXA–GHANATEL phase 2).
	CausePeeringDispute Cause = "peering-dispute"
	// CausePortUnderprovisioned: an IXP member port too small for
	// content demand (QCELL–NETPAGE's 10 Mbps port).
	CausePortUnderprovisioned Cause = "port-underprovisioned"
	// CauseUnknownExternal: operator denies congestion; cause needs
	// the far network's cooperation (GIXA–KNET).
	CauseUnknownExternal Cause = "unknown-external"
	// CauseSlowICMP: control-plane artifact, not data-plane
	// congestion.
	CauseSlowICMP Cause = "slow-icmp"
	// CauseNone: clean link.
	CauseNone Cause = "none"
)

// Phase is one episode in a link's annotated history.
type Phase struct {
	Interval simclock.Interval
	Cause    Cause
	// Note is free-text operator detail.
	Note string
}

// Annotation is the operator ground truth for one link.
type Annotation struct {
	VP     string
	Target prober.LinkTarget
	// NearName/FarName are human labels ("GIXA", "GHANATEL").
	NearName, FarName string
	// CongestedTruth: whether the link's data plane was really
	// congested at any point.
	CongestedTruth bool
	// Class is the ground-truth sustained/transient label.
	Class analysis.Classification
	// Phases carries the episode history.
	Phases []Phase
	// OperatorConfirmed: the operator corroborated the inference
	// (KNET's operator did not, despite the measured pattern).
	OperatorConfirmed bool
}

// PrimaryCause returns the first non-none phase cause.
func (a *Annotation) PrimaryCause() Cause {
	for _, p := range a.Phases {
		if p.Cause != CauseNone {
			return p.Cause
		}
	}
	return CauseNone
}

// Registry stores annotations keyed by (VP, link).
type Registry struct {
	byKey map[string]*Annotation
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{byKey: make(map[string]*Annotation)} }

func key(vp string, t prober.LinkTarget) string {
	return fmt.Sprintf("%s|%v|%v", vp, t.Near, t.Far)
}

// Add stores an annotation (replacing any previous one for the link).
func (r *Registry) Add(a *Annotation) { r.byKey[key(a.VP, a.Target)] = a }

// Find returns the annotation for a link.
func (r *Registry) Find(vp string, t prober.LinkTarget) (*Annotation, bool) {
	a, ok := r.byKey[key(vp, t)]
	return a, ok
}

// All returns annotations sorted by VP then target, for reports.
func (r *Registry) All() []*Annotation {
	out := make([]*Annotation, 0, len(r.byKey))
	for _, a := range r.byKey {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].VP != out[j].VP {
			return out[i].VP < out[j].VP
		}
		if out[i].Target.Near != out[j].Target.Near {
			return out[i].Target.Near < out[j].Target.Near
		}
		return out[i].Target.Far < out[j].Target.Far
	})
	return out
}

// Validation scores pipeline verdicts against ground truth.
type Validation struct {
	// TruePositives: congested per truth and per pipeline.
	TruePositives int
	// FalsePositives: pipeline says congested, truth disagrees.
	FalsePositives int
	// FalseNegatives: truth congested, pipeline missed it.
	FalseNegatives int
	// TrueNegatives: both agree the link is clean.
	TrueNegatives int
	// ClassMatches: true positives whose sustained/transient label
	// also matches.
	ClassMatches int
	// Mismatches lists human-readable disagreements.
	Mismatches []string
}

// Precision returns TP/(TP+FP), or 1 when nothing was reported.
func (v Validation) Precision() float64 {
	if v.TruePositives+v.FalsePositives == 0 {
		return 1
	}
	return float64(v.TruePositives) / float64(v.TruePositives+v.FalsePositives)
}

// Recall returns TP/(TP+FN), or 1 when nothing was congested.
func (v Validation) Recall() float64 {
	if v.TruePositives+v.FalseNegatives == 0 {
		return 1
	}
	return float64(v.TruePositives) / float64(v.TruePositives+v.FalseNegatives)
}

// Validate confronts verdicts with annotations. Links without an
// annotation are treated as clean ground truth.
func (r *Registry) Validate(vp string, verdicts []analysis.Verdict) Validation {
	var val Validation
	for _, v := range verdicts {
		ann, ok := r.Find(vp, v.Target)
		truth := ok && ann.CongestedTruth
		switch {
		case truth && v.Congested:
			val.TruePositives++
			if ann.Class == v.Class {
				val.ClassMatches++
			} else {
				val.Mismatches = append(val.Mismatches, fmt.Sprintf(
					"%s %v: class %v, operator says %v", vp, v.Target, v.Class, ann.Class))
			}
		case truth && !v.Congested:
			val.FalseNegatives++
			val.Mismatches = append(val.Mismatches, fmt.Sprintf(
				"%s %v: missed congestion (%s)", vp, v.Target, ann.PrimaryCause()))
		case !truth && v.Congested:
			val.FalsePositives++
			cause := CauseNone
			if ok {
				cause = ann.PrimaryCause()
			}
			val.Mismatches = append(val.Mismatches, fmt.Sprintf(
				"%s %v: spurious congestion (truth: %s)", vp, v.Target, cause))
		default:
			val.TrueNegatives++
		}
	}
	return val
}
