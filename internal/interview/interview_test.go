package interview

import (
	"strings"
	"testing"

	"afrixp/internal/analysis"
	"afrixp/internal/netaddr"
	"afrixp/internal/prober"
)

func lt(near, far string) prober.LinkTarget {
	return prober.LinkTarget{
		Near: netaddr.MustParseAddr(near),
		Far:  netaddr.MustParseAddr(far),
	}
}

func TestRegistryAddFind(t *testing.T) {
	r := NewRegistry()
	a := &Annotation{VP: "VP1", Target: lt("10.0.0.1", "10.0.0.2"),
		FarName: "GHANATEL", CongestedTruth: true}
	r.Add(a)
	got, ok := r.Find("VP1", a.Target)
	if !ok || got.FarName != "GHANATEL" {
		t.Fatal("Find failed")
	}
	if _, ok := r.Find("VP2", a.Target); ok {
		t.Fatal("wrong VP must miss")
	}
	// Replacement.
	r.Add(&Annotation{VP: "VP1", Target: a.Target, FarName: "X"})
	if got, _ := r.Find("VP1", a.Target); got.FarName != "X" {
		t.Fatal("Add must replace")
	}
}

func TestAllSorted(t *testing.T) {
	r := NewRegistry()
	r.Add(&Annotation{VP: "VP2", Target: lt("10.0.0.1", "10.0.0.2")})
	r.Add(&Annotation{VP: "VP1", Target: lt("10.0.0.9", "10.0.0.2")})
	r.Add(&Annotation{VP: "VP1", Target: lt("10.0.0.1", "10.0.0.2")})
	all := r.All()
	if len(all) != 3 || all[0].VP != "VP1" || all[2].VP != "VP2" {
		t.Fatalf("order: %+v", all)
	}
	if all[0].Target.Near != netaddr.MustParseAddr("10.0.0.1") {
		t.Fatal("within-VP order wrong")
	}
}

func TestPrimaryCause(t *testing.T) {
	a := &Annotation{Phases: []Phase{
		{Cause: CauseNone},
		{Cause: CauseTransitUnderprovisioned},
		{Cause: CausePeeringDispute},
	}}
	if a.PrimaryCause() != CauseTransitUnderprovisioned {
		t.Fatal("PrimaryCause wrong")
	}
	if (&Annotation{}).PrimaryCause() != CauseNone {
		t.Fatal("empty annotation cause wrong")
	}
}

func TestValidateAllQuadrants(t *testing.T) {
	r := NewRegistry()
	tgtTP := lt("1.0.0.1", "1.0.0.2")
	tgtFN := lt("2.0.0.1", "2.0.0.2")
	tgtFP := lt("3.0.0.1", "3.0.0.2")
	tgtTN := lt("4.0.0.1", "4.0.0.2")
	r.Add(&Annotation{VP: "VP1", Target: tgtTP, CongestedTruth: true,
		Class:  analysis.Sustained,
		Phases: []Phase{{Cause: CausePortUnderprovisioned}}})
	r.Add(&Annotation{VP: "VP1", Target: tgtFN, CongestedTruth: true,
		Phases: []Phase{{Cause: CauseTransitUnderprovisioned}}})
	r.Add(&Annotation{VP: "VP1", Target: tgtFP, CongestedTruth: false,
		Phases: []Phase{{Cause: CauseSlowICMP}}})

	verdicts := []analysis.Verdict{
		{Target: tgtTP, Congested: true, Class: analysis.Sustained},
		{Target: tgtFN, Congested: false},
		{Target: tgtFP, Congested: true, Class: analysis.Transient},
		{Target: tgtTN, Congested: false},
	}
	val := r.Validate("VP1", verdicts)
	if val.TruePositives != 1 || val.FalseNegatives != 1 ||
		val.FalsePositives != 1 || val.TrueNegatives != 1 {
		t.Fatalf("quadrants: %+v", val)
	}
	if val.ClassMatches != 1 {
		t.Fatalf("class matches = %d", val.ClassMatches)
	}
	if val.Precision() != 0.5 || val.Recall() != 0.5 {
		t.Fatalf("precision %v recall %v", val.Precision(), val.Recall())
	}
	if len(val.Mismatches) != 2 {
		t.Fatalf("mismatches: %v", val.Mismatches)
	}
	joined := strings.Join(val.Mismatches, "\n")
	if !strings.Contains(joined, "missed congestion") ||
		!strings.Contains(joined, "spurious congestion") {
		t.Fatalf("mismatch text: %s", joined)
	}
}

func TestValidateClassMismatchNoted(t *testing.T) {
	r := NewRegistry()
	tgt := lt("1.0.0.1", "1.0.0.2")
	r.Add(&Annotation{VP: "VP4", Target: tgt, CongestedTruth: true,
		Class: analysis.Transient})
	val := r.Validate("VP4", []analysis.Verdict{
		{Target: tgt, Congested: true, Class: analysis.Sustained},
	})
	if val.TruePositives != 1 || val.ClassMatches != 0 {
		t.Fatalf("%+v", val)
	}
	if len(val.Mismatches) != 1 || !strings.Contains(val.Mismatches[0], "class") {
		t.Fatalf("mismatch: %v", val.Mismatches)
	}
}

func TestValidatePerfectScores(t *testing.T) {
	r := NewRegistry()
	val := r.Validate("VP1", []analysis.Verdict{{Target: lt("1.1.1.1", "2.2.2.2")}})
	if val.Precision() != 1 || val.Recall() != 1 || val.TrueNegatives != 1 {
		t.Fatalf("%+v", val)
	}
}
