// Package asrel models autonomous systems, business relationships
// between them, and organization/sibling structure. It provides both
// the ground-truth graph the simulator routes over (Gao–Rexford
// semantics live in bgpsim) and an AS-rank-like relationship inference
// pass that reconstructs relationships from observed AS paths — the
// role CAIDA's AS-rank dataset plays as a bdrmap input in the paper.
package asrel

import (
	"fmt"
	"sort"
)

// ASN is an autonomous system number.
type ASN uint32

// String renders the conventional "AS30997" form.
func (a ASN) String() string { return fmt.Sprintf("AS%d", uint32(a)) }

// Rel is the relationship of a neighbor B relative to an AS A.
type Rel int8

// Relationship kinds. Values are chosen so that -Rel inverts the
// relationship (provider ↔ customer) and peers/siblings are symmetric.
const (
	Customer Rel = -1 // B is A's customer
	Peer     Rel = 0  // B is A's settlement-free peer
	Provider Rel = 1  // B is A's transit provider
	Sibling  Rel = 2  // B belongs to the same organization as A
	None     Rel = 3  // no relationship
)

// String names the relationship.
func (r Rel) String() string {
	switch r {
	case Customer:
		return "customer"
	case Peer:
		return "peer"
	case Provider:
		return "provider"
	case Sibling:
		return "sibling"
	default:
		return "none"
	}
}

// Invert returns the relationship from the other side's viewpoint.
func (r Rel) Invert() Rel {
	switch r {
	case Customer:
		return Provider
	case Provider:
		return Customer
	default:
		return r
	}
}

// Org identifies an organization owning one or more ASes; ASes of the
// same org are siblings (the paper's sibling lists are seeded from
// CAIDA's AS-to-organization mapping).
type Org string

// Graph is a mutable AS relationship graph. The zero value is not
// usable; call NewGraph.
type Graph struct {
	rels map[ASN]map[ASN]Rel
	orgs map[ASN]Org
	name map[ASN]string
	// adjCache memoizes sorted neighbor lists; route computation
	// scans them millions of times per topology version.
	adjCache map[ASN][]ASN
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		rels:     make(map[ASN]map[ASN]Rel),
		orgs:     make(map[ASN]Org),
		name:     make(map[ASN]string),
		adjCache: make(map[ASN][]ASN),
	}
}

// dirty drops cached adjacency after any mutation.
func (g *Graph) dirty(ases ...ASN) {
	for _, a := range ases {
		delete(g.adjCache, a)
	}
}

// ensure registers an AS (idempotent).
func (g *Graph) ensure(a ASN) {
	if _, ok := g.rels[a]; !ok {
		g.rels[a] = make(map[ASN]Rel)
	}
}

// AddAS registers an AS with a human-readable name and organization.
func (g *Graph) AddAS(a ASN, name string, org Org) {
	g.ensure(a)
	g.name[a] = name
	g.orgs[a] = org
}

// Name returns the registered name of a, or "" when unknown.
func (g *Graph) Name(a ASN) string { return g.name[a] }

// OrgOf returns the organization owning a.
func (g *Graph) OrgOf(a ASN) Org { return g.orgs[a] }

// SetProvider records that provider sells transit to customer.
func (g *Graph) SetProvider(customer, provider ASN) {
	g.ensure(customer)
	g.ensure(provider)
	g.rels[customer][provider] = Provider
	g.rels[provider][customer] = Customer
	g.dirty(customer, provider)
}

// SetPeer records a settlement-free peering between a and b.
func (g *Graph) SetPeer(a, b ASN) {
	g.ensure(a)
	g.ensure(b)
	g.rels[a][b] = Peer
	g.rels[b][a] = Peer
	g.dirty(a, b)
}

// SetSibling records that a and b belong to the same organization.
func (g *Graph) SetSibling(a, b ASN) {
	g.ensure(a)
	g.ensure(b)
	g.rels[a][b] = Sibling
	g.rels[b][a] = Sibling
	g.dirty(a, b)
}

// RemoveLink deletes any relationship between a and b (e.g. an ISP
// de-peering from an IXP, as GIXA's members did when the content
// network was commercialized).
func (g *Graph) RemoveLink(a, b ASN) {
	if m, ok := g.rels[a]; ok {
		delete(m, b)
	}
	if m, ok := g.rels[b]; ok {
		delete(m, a)
	}
	g.dirty(a, b)
}

// Rel returns the relationship of b relative to a.
func (g *Graph) Rel(a, b ASN) Rel {
	if m, ok := g.rels[a]; ok {
		if r, ok := m[b]; ok {
			return r
		}
	}
	return None
}

// Neighbors returns all ASes adjacent to a, sorted. The returned
// slice is shared with the graph's cache; callers must not modify it.
func (g *Graph) Neighbors(a ASN) []ASN {
	if cached, ok := g.adjCache[a]; ok {
		return cached
	}
	m := g.rels[a]
	out := make([]ASN, 0, len(m))
	for b := range m {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	g.adjCache[a] = out
	return out
}

// neighborsByRel returns a's neighbors with the given relationship.
func (g *Graph) neighborsByRel(a ASN, want Rel) []ASN {
	var out []ASN
	for b, r := range g.rels[a] {
		if r == want {
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Providers returns a's transit providers.
func (g *Graph) Providers(a ASN) []ASN { return g.neighborsByRel(a, Provider) }

// Customers returns a's customers.
func (g *Graph) Customers(a ASN) []ASN { return g.neighborsByRel(a, Customer) }

// Peers returns a's settlement-free peers.
func (g *Graph) Peers(a ASN) []ASN { return g.neighborsByRel(a, Peer) }

// Siblings returns the ASes sharing a's organization, including
// explicit sibling links and org-derived ones, excluding a itself.
func (g *Graph) Siblings(a ASN) []ASN {
	set := make(map[ASN]bool)
	for _, b := range g.neighborsByRel(a, Sibling) {
		set[b] = true
	}
	if org := g.orgs[a]; org != "" {
		for b, o := range g.orgs {
			if b != a && o == org {
				set[b] = true
			}
		}
	}
	out := make([]ASN, 0, len(set))
	for b := range set {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ASes returns every registered AS, sorted.
func (g *Graph) ASes() []ASN {
	out := make([]ASN, 0, len(g.rels))
	for a := range g.rels {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Degree returns the number of neighbors of a.
func (g *Graph) Degree(a ASN) int { return len(g.rels[a]) }

// CustomerCone returns the set of ASes reachable from a by walking
// only provider→customer edges, including a itself — CAIDA's
// customer-cone definition used for AS ranking.
func (g *Graph) CustomerCone(a ASN) map[ASN]bool {
	cone := map[ASN]bool{a: true}
	stack := []ASN{a}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for b, r := range g.rels[cur] {
			if r == Customer && !cone[b] {
				cone[b] = true
				stack = append(stack, b)
			}
		}
	}
	return cone
}

// Clone deep-copies the graph, used by scenarios that mutate topology
// over time while retaining snapshots.
func (g *Graph) Clone() *Graph {
	c := NewGraph()
	for a, m := range g.rels {
		c.rels[a] = make(map[ASN]Rel, len(m))
		for b, r := range m {
			c.rels[a][b] = r
		}
	}
	for a, o := range g.orgs {
		c.orgs[a] = o
	}
	for a, n := range g.name {
		c.name[a] = n
	}
	return c
}
