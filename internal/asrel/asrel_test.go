package asrel

import (
	"reflect"
	"testing"
)

func TestRelInvert(t *testing.T) {
	cases := map[Rel]Rel{Customer: Provider, Provider: Customer, Peer: Peer, Sibling: Sibling, None: None}
	for r, want := range cases {
		if got := r.Invert(); got != want {
			t.Errorf("%v.Invert() = %v, want %v", r, got, want)
		}
	}
}

func TestRelString(t *testing.T) {
	if Customer.String() != "customer" || Peer.String() != "peer" ||
		Provider.String() != "provider" || Sibling.String() != "sibling" || None.String() != "none" {
		t.Fatal("Rel.String incomplete")
	}
}

func TestASNString(t *testing.T) {
	if ASN(30997).String() != "AS30997" {
		t.Fatal("ASN formatting wrong")
	}
}

func TestProviderCustomerSymmetry(t *testing.T) {
	g := NewGraph()
	g.SetProvider(100, 200) // 200 provides transit to 100
	if g.Rel(100, 200) != Provider {
		t.Fatal("customer should see provider")
	}
	if g.Rel(200, 100) != Customer {
		t.Fatal("provider should see customer")
	}
	if got := g.Providers(100); !reflect.DeepEqual(got, []ASN{200}) {
		t.Fatalf("Providers = %v", got)
	}
	if got := g.Customers(200); !reflect.DeepEqual(got, []ASN{100}) {
		t.Fatalf("Customers = %v", got)
	}
}

func TestPeerSymmetry(t *testing.T) {
	g := NewGraph()
	g.SetPeer(1, 2)
	if g.Rel(1, 2) != Peer || g.Rel(2, 1) != Peer {
		t.Fatal("peering must be symmetric")
	}
}

func TestRelNoneForStrangers(t *testing.T) {
	g := NewGraph()
	g.AddAS(1, "a", "orgA")
	if g.Rel(1, 99) != None || g.Rel(98, 99) != None {
		t.Fatal("strangers must be None")
	}
}

func TestRemoveLink(t *testing.T) {
	g := NewGraph()
	g.SetPeer(1, 2)
	g.RemoveLink(1, 2)
	if g.Rel(1, 2) != None || g.Rel(2, 1) != None {
		t.Fatal("RemoveLink must clear both directions")
	}
	g.RemoveLink(5, 6) // absent links are a no-op
}

func TestNeighborsSorted(t *testing.T) {
	g := NewGraph()
	g.SetPeer(10, 5)
	g.SetPeer(10, 30)
	g.SetProvider(10, 2)
	if got := g.Neighbors(10); !reflect.DeepEqual(got, []ASN{2, 5, 30}) {
		t.Fatalf("Neighbors = %v", got)
	}
	if g.Degree(10) != 3 {
		t.Fatal("Degree wrong")
	}
}

func TestSiblingsFromOrgAndExplicit(t *testing.T) {
	g := NewGraph()
	g.AddAS(1, "tel-a", "TelecomCo")
	g.AddAS(2, "tel-b", "TelecomCo")
	g.AddAS(3, "other", "OtherCo")
	g.SetSibling(1, 4) // explicit sibling outside the org map
	sibs := g.Siblings(1)
	if !reflect.DeepEqual(sibs, []ASN{2, 4}) {
		t.Fatalf("Siblings = %v", sibs)
	}
	if g.OrgOf(2) != "TelecomCo" || g.Name(1) != "tel-a" {
		t.Fatal("org/name lookups wrong")
	}
}

func TestCustomerCone(t *testing.T) {
	g := NewGraph()
	// 1 provides to 2 and 3; 2 provides to 4; 3 peers with 5.
	g.SetProvider(2, 1)
	g.SetProvider(3, 1)
	g.SetProvider(4, 2)
	g.SetPeer(3, 5)
	cone := g.CustomerCone(1)
	for _, a := range []ASN{1, 2, 3, 4} {
		if !cone[a] {
			t.Errorf("cone should contain %v", a)
		}
	}
	if cone[5] {
		t.Error("peers are not in the customer cone")
	}
	if len(g.CustomerCone(4)) != 1 {
		t.Error("stub cone is itself only")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := NewGraph()
	g.AddAS(1, "a", "A")
	g.SetPeer(1, 2)
	c := g.Clone()
	c.RemoveLink(1, 2)
	c.AddAS(3, "c", "C")
	if g.Rel(1, 2) != Peer {
		t.Fatal("clone mutation leaked")
	}
	if g.Name(3) != "" {
		t.Fatal("clone AS registration leaked")
	}
}

func TestASesSorted(t *testing.T) {
	g := NewGraph()
	g.AddAS(9, "", "")
	g.AddAS(3, "", "")
	g.SetPeer(5, 7)
	if got := g.ASes(); !reflect.DeepEqual(got, []ASN{3, 5, 7, 9}) {
		t.Fatalf("ASes = %v", got)
	}
}

// buildHierarchy constructs a small realistic hierarchy:
// tier1 {1,2} peer; regionals {10,11} buy from both tier1s and peer
// with each other; stubs 100..105 buy from regionals.
func buildHierarchy() *Graph {
	g := NewGraph()
	g.SetPeer(1, 2)
	for _, r := range []ASN{10, 11} {
		g.SetProvider(r, 1)
		g.SetProvider(r, 2)
	}
	g.SetPeer(10, 11)
	for i := ASN(100); i <= 105; i++ {
		if i%2 == 0 {
			g.SetProvider(i, 10)
		} else {
			g.SetProvider(i, 11)
		}
	}
	return g
}

// validPaths generates the valley-free paths a route collector would
// see in the hierarchy: stub → regional → tier1(s) → regional → stub.
func validPaths(g *Graph) [][]ASN {
	var paths [][]ASN
	// Stub-to-stub via shared regional or via tier1 backbone.
	stubs := []ASN{100, 101, 102, 103, 104, 105}
	for _, s := range stubs {
		for _, d := range stubs {
			if s == d {
				continue
			}
			sp, dp := s%2, d%2
			switch {
			case sp == dp && sp == 0:
				paths = append(paths, []ASN{s, 10, d})
			case sp == dp:
				paths = append(paths, []ASN{s, 11, d})
			default:
				// across regionals: use their peering
				if sp == 0 {
					paths = append(paths, []ASN{s, 10, 11, d})
				} else {
					paths = append(paths, []ASN{s, 11, 10, d})
				}
			}
		}
	}
	// Regionals reaching the world through tier1 peering.
	paths = append(paths,
		[]ASN{100, 10, 1, 2, 11, 101},
		[]ASN{102, 10, 2, 1, 11, 103},
		[]ASN{10, 1, 2, 11},
		[]ASN{11, 2, 1, 10},
	)
	return paths
}

func TestInferFromPathsRecoversHierarchy(t *testing.T) {
	truth := buildHierarchy()
	inferred := InferFromPaths(validPaths(truth))
	exact, covered, total := Accuracy(truth, inferred)
	if total != 12 {
		t.Fatalf("total truth links = %d, want 12", total)
	}
	if covered < 0.9 {
		t.Fatalf("covered = %v, want ≥0.9", covered)
	}
	if exact < 0.7 {
		t.Fatalf("exact = %v, want ≥0.7 (got %v of %d)", exact, exact, total)
	}
	// The stub→regional links must never be inferred as peering.
	if r := inferred.Rel(100, 10); r != Provider && r != None {
		t.Errorf("stub uplink inferred as %v", r)
	}
}

func TestInferIgnoresPrependsAndShortPaths(t *testing.T) {
	paths := [][]ASN{
		{1},
		{2, 2, 3}, // prepend collapses to one link
	}
	g := InferFromPaths(paths)
	if g.Rel(2, 2) != None {
		t.Fatal("self-link must not exist")
	}
	if g.Rel(2, 3) == None {
		t.Fatal("link 2-3 should be inferred")
	}
}

func TestAccuracyEmptyTruth(t *testing.T) {
	e, c, n := Accuracy(NewGraph(), NewGraph())
	if e != 0 || c != 0 || n != 0 {
		t.Fatal("empty truth should yield zeros")
	}
}

func TestComparableDegree(t *testing.T) {
	if !comparableDegree(10, 19) || comparableDegree(10, 21) {
		t.Fatal("factor-2 heuristic wrong")
	}
	if comparableDegree(0, 5) {
		t.Fatal("zero degree is never comparable")
	}
}
