package asrel

import "sort"

// InferFromPaths reconstructs AS relationships from a set of observed
// AS paths using a simplified Gao algorithm, standing in for CAIDA's
// AS-rank input to bdrmap. For each path, the AS with the highest
// transit degree is taken as the path's summit: links left of the
// summit are inferred customer→provider, links right of it
// provider→customer. The summit link itself is inferred peer-peer when
// the two summit-adjacent ASes have comparable degree. Votes across
// all paths are tallied and the majority relationship wins.
//
// The inference is deliberately imperfect in the ways the real
// algorithm is (mistaking small peer links for transit when degrees
// are skewed); bdrmap's validation step measures exactly that gap.
func InferFromPaths(paths [][]ASN) *Graph {
	// Transit degree: number of distinct neighbors seen in any path.
	neigh := make(map[ASN]map[ASN]bool)
	note := func(a, b ASN) {
		if neigh[a] == nil {
			neigh[a] = make(map[ASN]bool)
		}
		neigh[a][b] = true
	}
	for _, p := range paths {
		for i := 0; i+1 < len(p); i++ {
			if p[i] == p[i+1] {
				continue // prepending collapse
			}
			note(p[i], p[i+1])
			note(p[i+1], p[i])
		}
	}
	degree := func(a ASN) int { return len(neigh[a]) }

	type pair struct{ a, b ASN }
	votes := make(map[pair]map[Rel]int)
	vote := func(a, b ASN, r Rel) {
		// Canonicalize so each undirected link has one ballot box,
		// storing the relationship of b relative to a with a < b.
		if a > b {
			a, b = b, a
			r = r.Invert()
		}
		k := pair{a, b}
		if votes[k] == nil {
			votes[k] = make(map[Rel]int)
		}
		votes[k][r]++
	}

	for _, p := range paths {
		if len(p) < 2 {
			continue
		}
		// Find the summit: the highest-degree AS, ties to the earliest.
		top, topDeg := 0, -1
		for i, a := range p {
			if d := degree(a); d > topDeg {
				top, topDeg = i, d
			}
		}
		for i := 0; i+1 < len(p); i++ {
			a, b := p[i], p[i+1]
			if a == b {
				continue
			}
			switch {
			case i+1 < top: // strictly uphill
				vote(a, b, Provider) // b provides transit to a
			case i >= top: // strictly downhill (summit edge handled below)
				if i == top && comparableDegree(degree(a), degree(b)) {
					vote(a, b, Peer)
				} else {
					vote(a, b, Customer)
				}
			default: // i+1 == top: edge climbing into the summit
				if comparableDegree(degree(a), degree(b)) {
					vote(a, b, Peer)
				} else {
					vote(a, b, Provider)
				}
			}
		}
	}

	g := NewGraph()
	// Deterministic iteration for reproducible inference output.
	keys := make([]pair, 0, len(votes))
	for k := range votes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	for _, k := range keys {
		best, bestN := None, -1
		for _, r := range []Rel{Customer, Peer, Provider} {
			if n := votes[k][r]; n > bestN {
				best, bestN = r, n
			}
		}
		switch best {
		case Peer:
			g.SetPeer(k.a, k.b)
		case Provider: // k.b provides transit to k.a
			g.SetProvider(k.a, k.b)
		case Customer:
			g.SetProvider(k.b, k.a)
		}
	}
	return g
}

// comparableDegree reports whether two transit degrees are within a
// factor of 2 of each other — the peering heuristic.
func comparableDegree(d1, d2 int) bool {
	if d1 == 0 || d2 == 0 {
		return false
	}
	if d1 > d2 {
		d1, d2 = d2, d1
	}
	return d2 <= 2*d1
}

// Accuracy compares an inferred graph against ground truth, returning
// the fraction of truth links whose relationship was inferred exactly,
// the fraction inferred with any relationship, and the total number of
// truth links considered (sibling links are skipped — the inference
// has no organization data).
func Accuracy(truth, inferred *Graph) (exact, covered float64, total int) {
	var nExact, nCovered int
	for _, a := range truth.ASes() {
		for _, b := range truth.Neighbors(a) {
			if a >= b {
				continue // count each undirected link once
			}
			r := truth.Rel(a, b)
			if r == Sibling {
				continue
			}
			total++
			ir := inferred.Rel(a, b)
			if ir == None {
				continue
			}
			nCovered++
			if ir == r {
				nExact++
			}
		}
	}
	if total == 0 {
		return 0, 0, 0
	}
	return float64(nExact) / float64(total), float64(nCovered) / float64(total), total
}
