package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"afrixp/internal/budget"
	"afrixp/internal/checkpoint"
	"afrixp/internal/faults"
	"afrixp/internal/scenario"
	"afrixp/internal/simclock"
)

// ckptInterval is the 4-day mid-2016 window every determinism test
// uses (snapshot discovery, TSLP rounds, and loss batches all run).
var ckptInterval = simclock.Interval{
	Start: simclock.Date(2016, time.July, 20),
	End:   simclock.Date(2016, time.July, 24),
}

// ckptCampaignCfg is the checkpoint matrix's campaign: fault plan and
// a 50% probe budget both enabled, so snapshots must carry outage
// accounting, CUSUM streams, rate ladders, and loss-round state.
func ckptCampaignCfg(workers, batchSteps, shards int) Config {
	return Config{
		Opts:       scenario.Options{Seed: 5, Scale: 0.1},
		Campaign:   ckptInterval,
		Workers:    workers,
		BatchSteps: batchSteps,
		Shards:     shards,
		Faults:     &faults.Config{},
		Budget:     &budget.Config{Fraction: 0.5, Seed: 1, RecomputeEvery: 6 * time.Hour},
	}
}

// requireNonVacuous fails unless the reference campaign exercises
// everything a snapshot serializes: discovered links, fault episodes,
// and budget skips.
func requireNonVacuous(t *testing.T, res *Result) {
	t.Helper()
	links, skipped := 0, 0
	for _, vr := range res.VPs {
		links += len(vr.Links)
		for _, lr := range vr.SortedLinks() {
			_, _, _, s := lr.Collector.Yield()
			skipped += s
		}
	}
	if links == 0 {
		t.Fatal("campaign discovered no links; checkpoint equivalence is vacuous")
	}
	if res.Faults == nil || len(res.Faults.Faults) == 0 {
		t.Fatal("campaign injected no fault episodes; checkpoint equivalence is vacuous")
	}
	if skipped == 0 {
		t.Fatal("budget scheduler skipped nothing; checkpoint equivalence is vacuous")
	}
}

// TestCheckpointResumeBitIdentical is the tentpole guarantee: a
// campaign that (a) writes barrier checkpoints and (b) is restarted
// from the newest checkpoint produces exactly the same numbers as an
// uninterrupted run — across the full Workers × BatchSteps × Shards
// matrix, with faults injected and a 50% probe budget installed.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	ref := Run(ckptCampaignCfg(1, 1, 0))
	requireNonVacuous(t, ref)
	refSum := summarizeResult(ref)

	for _, workers := range []int{1, 8} {
		for _, batch := range []int{1, 4096} {
			for _, shards := range []int{1, 4} {
				dir := t.TempDir()

				// Writing run: checkpoints on must not perturb results.
				cfg := ckptCampaignCfg(workers, batch, shards)
				cfg.CheckpointDir = dir
				cfg.CheckpointEvery = 30 * time.Hour
				if got := summarizeResult(Run(cfg)); got != refSum {
					t.Errorf("workers=%d batch=%d shards=%d: checkpointing perturbed the run\n%s",
						workers, batch, shards, firstDiff(refSum, got))
				}
				snap, err := checkpoint.LoadLatest(dir, nil)
				if err != nil || snap == nil {
					t.Fatalf("workers=%d batch=%d shards=%d: no checkpoint written: %v", workers, batch, shards, err)
				}
				if want := ckptInterval.Start.Add(90 * time.Hour); snap.Barrier != want {
					t.Fatalf("newest barrier %v, want %v", snap.Barrier, want)
				}

				// Resumed run: replay to the newest barrier, restore,
				// probe the tail — bit-identical to never stopping.
				cfg.ResumeFrom = dir
				if got := summarizeResult(Run(cfg)); got != refSum {
					t.Errorf("workers=%d batch=%d shards=%d: resumed run differs\n%s",
						workers, batch, shards, firstDiff(refSum, got))
				}
			}
		}
	}
}

// TestResumeFallsBackPastTruncatedCheckpoint pins SIGKILL-mid-write
// recovery: when the newest snapshot is truncated (what a kill during
// the write leaves), resume must fall back to the previous barrier
// snapshot and still finish bit-identical to an uninterrupted run.
func TestResumeFallsBackPastTruncatedCheckpoint(t *testing.T) {
	ref := Run(ckptCampaignCfg(1, 1, 0))
	requireNonVacuous(t, ref)
	refSum := summarizeResult(ref)

	dir := t.TempDir()
	cfg := ckptCampaignCfg(8, 4096, 2)
	cfg.CheckpointDir = dir
	cfg.CheckpointEvery = 30 * time.Hour
	if got := summarizeResult(Run(cfg)); got != refSum {
		t.Fatalf("writing run differs from reference\n%s", firstDiff(refSum, got))
	}

	// Truncate the newest snapshot mid-payload.
	names, err := filepath.Glob(filepath.Join(dir, "ckpt-*.bin"))
	if err != nil || len(names) < 2 {
		t.Fatalf("want ≥2 checkpoint files to fall back across, have %v (%v)", names, err)
	}
	newest := names[len(names)-1]
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	snap, err := checkpoint.LoadLatest(dir, nil)
	if err != nil || snap == nil {
		t.Fatalf("no fallback snapshot after truncation: %v", err)
	}
	if want := ckptInterval.Start.Add(60 * time.Hour); snap.Barrier != want {
		t.Fatalf("fallback barrier %v, want the previous barrier %v", snap.Barrier, want)
	}

	var progress bytes.Buffer
	cfg.ResumeFrom = dir
	cfg.Progress = &progress
	if got := summarizeResult(Run(cfg)); got != refSum {
		t.Errorf("resume after truncation differs\n%s", firstDiff(refSum, got))
	}
	if !strings.Contains(progress.String(), "replaying to checkpoint barrier") {
		t.Errorf("resume did not replay from a checkpoint; progress:\n%s", progress.String())
	}
}

// TestResumeRefusesWrongRun pins the manifest check: resuming a
// checkpoint onto a campaign with a different seed must fail loudly,
// never silently diverge or quietly start fresh.
func TestResumeRefusesWrongRun(t *testing.T) {
	dir := t.TempDir()
	cfg := ckptCampaignCfg(8, 0, 0)
	cfg.CheckpointDir = dir
	cfg.CheckpointEvery = 30 * time.Hour
	Run(cfg)

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("resuming onto a different seed must panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "different run") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	wrong := ckptCampaignCfg(8, 0, 0)
	wrong.Opts.Seed = 6
	wrong.ResumeFrom = dir
	Run(wrong)
}

// TestResumeFromEmptyDirStartsFresh: a resume pointed at a directory
// with no checkpoints is a fresh start, not an error.
func TestResumeFromEmptyDirStartsFresh(t *testing.T) {
	ref := Run(ckptCampaignCfg(1, 1, 0))
	cfg := ckptCampaignCfg(8, 0, 0)
	cfg.ResumeFrom = t.TempDir()
	if a, b := summarizeResult(ref), summarizeResult(Run(cfg)); a != b {
		t.Errorf("fresh-start resume differs from plain run\n%s", firstDiff(a, b))
	}
}
