package experiments

import (
	"testing"

	"afrixp/internal/scenario"
)

func TestUpgradeWhatIf(t *testing.T) {
	pts, err := RunUpgradeWhatIf(scenario.Options{Seed: 5, Scale: 0.1},
		[]float64{11e6, 50e6, 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// An 11 Mbps "upgrade" barely covers the 10 Mbps port's demand:
	// peak load (~11.5 Mbps) still saturates it → congestion persists.
	if !pts[0].CongestedAfter {
		t.Fatalf("11 Mbps upgrade should not clear the congestion: %+v", pts[0])
	}
	// 50 Mbps and 1 Gbps both clear it — the operators' 1 Gbps was
	// comfortable over-provisioning.
	if pts[1].CongestedAfter || pts[2].CongestedAfter {
		t.Fatalf("adequate upgrades still congested: %+v", pts[1:])
	}
	// Latency improves monotonically with capacity.
	if !(pts[0].PeakP95Ms > pts[1].PeakP95Ms && pts[1].PeakP95Ms >= pts[2].PeakP95Ms-0.01) {
		t.Fatalf("P95 not monotone: %+v", pts)
	}
}
