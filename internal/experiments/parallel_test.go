package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"afrixp/internal/loss"
	"afrixp/internal/scenario"
	"afrixp/internal/simclock"
)

// runShortCampaign runs a 4-day mid-2016 campaign that exercises every
// concurrent code path: the window covers a Table 2 snapshot date
// (VP4, 2016-07-22) and the 1 pps loss campaigns (which begin
// 2016-07-19 + 2 days), so snapshot discovery, TSLP rounds, and loss
// batches all run.
func runShortCampaign(workers int) *Result {
	return runShortCampaignCfg(workers, 0, false)
}

// runShortCampaignCfg is runShortCampaign with the batch-planner cap
// and the series backing pinned too — the axes the chunked-backing
// equivalence matrix sweeps.
func runShortCampaignCfg(workers, batchSteps int, flat bool) *Result {
	return Run(Config{
		Opts: scenario.Options{Seed: 5, Scale: 0.1},
		Campaign: simclock.Interval{
			Start: simclock.Date(2016, time.July, 20),
			End:   simclock.Date(2016, time.July, 24),
		},
		Workers:    workers,
		BatchSteps: batchSteps,
		FlatSeries: flat,
	})
}

// renderReports renders Table 1, Table 2, and the headline fraction as
// the CLI would print them.
func renderReports(t *testing.T, res *Result) string {
	t.Helper()
	var b bytes.Buffer
	if err := Table1Report(res).Render(&b); err != nil {
		t.Fatalf("table1: %v", err)
	}
	if err := Table2Report(res).Render(&b); err != nil {
		t.Fatalf("table2: %v", err)
	}
	rows, frac := Headline(res)
	fmt.Fprintf(&b, "headline=%x\n", bits(frac))
	for _, r := range rows {
		fmt.Fprintf(&b, "%s %d %d %x\n", r.VP, r.Links, r.Congested, bits(r.Fraction))
	}
	return b.String()
}

// firstDiff locates the first differing line of two multi-line strings.
func firstDiff(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return fmt.Sprintf("line %d:\n  workers=1: %s\n  workers=8: %s", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(la), len(lb))
}

// TestParallelCampaignBitIdentical is the engine's core guarantee: a
// campaign probed and analyzed by 8 workers produces exactly the same
// numbers as the sequential run — every series value, verdict, shift,
// event, loss batch, and rendered report, compared at the bit level.
func TestParallelCampaignBitIdentical(t *testing.T) {
	seq := runShortCampaign(1)
	par := runShortCampaign(8)

	links := 0
	for _, vr := range seq.VPs {
		links += len(vr.Links)
	}
	if links == 0 {
		t.Fatal("campaign discovered no links; determinism check is vacuous")
	}

	if a, b := summarizeResult(seq), summarizeResult(par); a != b {
		t.Errorf("campaign results differ between workers=1 and workers=8\n%s", firstDiff(a, b))
	}
	if a, b := renderReports(t, seq), renderReports(t, par); a != b {
		t.Errorf("rendered reports differ between workers=1 and workers=8\n%s", firstDiff(a, b))
	}
}

// TestChunkedCampaignBitIdentical is the tschunk retrofit's guarantee:
// a campaign collected into XOR-compressed chunked series produces
// exactly the same numbers — every series value, verdict scalar,
// shift, event, loss batch, loss grid, and rendered report — as the
// flat-slice backing, across the full Workers × BatchSteps matrix. The
// flat workers=1 batch=1 run is the reference; every other cell of
// {flat, chunked} × {1, 8 workers} × {1, 4096 batch steps} must match
// it at the bit level.
func TestChunkedCampaignBitIdentical(t *testing.T) {
	ref := runShortCampaignCfg(1, 1, true)
	links := 0
	for _, vr := range ref.VPs {
		links += len(vr.Links)
	}
	if links == 0 {
		t.Fatal("campaign discovered no links; equivalence check is vacuous")
	}
	refSum, refRep := summarizeResult(ref), renderReports(t, ref)

	for _, flat := range []bool{true, false} {
		for _, workers := range []int{1, 8} {
			for _, batch := range []int{1, 4096} {
				if flat && workers == 1 && batch == 1 {
					continue // the reference itself
				}
				res := runShortCampaignCfg(workers, batch, flat)
				checkBacking(t, res, flat)
				if got := summarizeResult(res); got != refSum {
					t.Errorf("flat=%t workers=%d batch=%d: results differ from flat reference\n%s",
						flat, workers, batch, firstDiff(refSum, got))
				}
				if got := renderReports(t, res); got != refRep {
					t.Errorf("flat=%t workers=%d batch=%d: reports differ from flat reference\n%s",
						flat, workers, batch, firstDiff(refRep, got))
				}
				if !flat && workers == 1 && batch == 1 {
					checkLossGrids(t, res)
				}
			}
		}
	}
}

// checkBacking asserts every collected series actually uses the
// backing under test — otherwise the equivalence matrix could pass by
// comparing flat against flat.
func checkBacking(t *testing.T, res *Result, flat bool) {
	t.Helper()
	for _, vr := range res.VPs {
		for _, lr := range vr.SortedLinks() {
			ls := lr.Collector.Series()
			if ls.Near.Chunked() == flat || ls.Far.Chunked() == flat {
				t.Fatalf("link %v: Chunked()=%t with FlatSeries=%t", lr.Target, ls.Near.Chunked(), flat)
			}
		}
	}
}

// checkLossGrids pins the streaming loss grid against the offline
// construction: gridding the completed batches with loss.ToSeries over
// the same GridFor layout must reproduce LossGrid bit for bit, with no
// batch falling off the grid.
func checkLossGrids(t *testing.T, res *Result) {
	t.Helper()
	grids := 0
	for _, vr := range res.VPs {
		for _, lr := range vr.SortedLinks() {
			g := lr.LossGrid()
			if g == nil {
				continue
			}
			grids++
			if !g.Chunked() {
				t.Errorf("link %v: loss grid is not chunk-backed", lr.Target)
			}
			gridStart, gridStep, gridN := loss.GridFor(lr.lossIv)
			want, dropped := loss.ToSeries(lr.LossBatches, gridStart, gridStep, gridN)
			if dropped != 0 {
				t.Errorf("link %v: ToSeries dropped %d batches off its own grid", lr.Target, dropped)
			}
			if g.Len() != want.Len() {
				t.Fatalf("link %v: grid len %d, ToSeries len %d", lr.Target, g.Len(), want.Len())
			}
			for i := 0; i < g.Len(); i++ {
				if bits(g.ValueAt(i)) != bits(want.ValueAt(i)) {
					t.Fatalf("link %v: loss grid slot %d = %x, ToSeries = %x",
						lr.Target, i, bits(g.ValueAt(i)), bits(want.ValueAt(i)))
				}
			}
		}
	}
	if grids == 0 {
		t.Fatal("no loss grids collected; grid equivalence check is vacuous")
	}
}

// TestReanalyzeParallelMatchesSequential checks the analysis fan-out in
// isolation: re-deriving verdicts with many workers from one collected
// campaign must reproduce the sequential verdicts bit for bit.
func TestReanalyzeParallelMatchesSequential(t *testing.T) {
	res := runShortCampaign(1)
	before := summarizeResult(res)
	res.Reanalyze(8)
	if after := summarizeResult(res); before != after {
		t.Errorf("Reanalyze(8) changed verdicts\n%s", firstDiff(before, after))
	}
}
