package experiments

import (
	"fmt"
	"io"
	"time"

	"afrixp/internal/loss"
	"afrixp/internal/report"
	"afrixp/internal/simclock"
	"afrixp/internal/timeseries"
)

// Figure is one reproduced plot: near/far RTT series (figures 1, 2a,
// 3a, 4a, 4b) or a loss-rate series (figures 2b, 3b).
type Figure struct {
	ID    string
	Title string
	// Near/Far are RTT series (ms) on the native 5-minute grid; nil
	// for loss figures.
	Near, Far *timeseries.Series
	// Loss is the batch loss-rate series (percent); nil for RTT
	// figures.
	Loss *timeseries.Series
	// Window is the plotted interval.
	Window simclock.Interval
}

// figureSpec ties a figure to its case link and window.
type figureSpec struct {
	id, title, caseName, vp string
	window                  simclock.Interval
	isLoss                  bool
}

func figureSpecs() []figureSpec {
	return []figureSpec{
		{id: "fig1", vp: "VP1", caseName: "GIXA-GHANATEL",
			title:  "Figure 1: RTTs GIXA–GHANATEL in part of phase 1",
			window: simclock.Interval{Start: simclock.Date(2016, time.March, 15), End: simclock.Date(2016, time.April, 5)}},
		{id: "fig2a", vp: "VP1", caseName: "GIXA-GHANATEL",
			title:  "Figure 2a: RTTs GIXA–GHANATEL in phase 2",
			window: simclock.Interval{Start: simclock.Date(2016, time.June, 15), End: simclock.Date(2016, time.August, 6)}},
		{id: "fig2b", vp: "VP1", caseName: "GIXA-GHANATEL", isLoss: true,
			title:  "Figure 2b: packet loss GIXA–GHANATEL in phase 2",
			window: simclock.Interval{Start: simclock.Date(2016, time.July, 21), End: simclock.Date(2016, time.August, 6)}},
		{id: "fig3a", vp: "VP1", caseName: "GIXA-KNET",
			title:  "Figure 3a: RTTs GIXA–KNET (diurnal onset 2016-08-06)",
			window: simclock.Interval{Start: simclock.Date(2016, time.August, 1), End: simclock.Date(2016, time.October, 31)}},
		{id: "fig3b", vp: "VP1", caseName: "GIXA-KNET", isLoss: true,
			title:  "Figure 3b: packet loss GIXA–KNET",
			window: simclock.Interval{Start: simclock.Date(2016, time.July, 21), End: simclock.Date(2017, time.March, 27)}},
		{id: "fig4a", vp: "VP4", caseName: "QCELL-NETPAGE",
			title:  "Figure 4a: RTTs QCELL–NETPAGE in phase 1 (before the upgrade)",
			window: simclock.Interval{Start: simclock.Date(2016, time.February, 29), End: simclock.Date(2016, time.April, 28)}},
		{id: "fig4b", vp: "VP4", caseName: "QCELL-NETPAGE",
			title:  "Figure 4b: RTTs QCELL–NETPAGE in phase 2 (after the upgrade)",
			window: simclock.Interval{Start: simclock.Date(2016, time.April, 28), End: simclock.Date(2016, time.June, 30)}},
	}
}

// Figures extracts every reproducible figure from the campaign. When
// the campaign interval does not cover a figure's window (short test
// runs), that figure is skipped.
func Figures(res *Result) []Figure {
	var out []Figure
	for _, spec := range figureSpecs() {
		vr, ok := res.VPByID(spec.vp)
		if !ok {
			continue
		}
		lr, ok := vr.CaseLink(spec.caseName)
		if !ok {
			continue
		}
		win := clamp(spec.window, res.Cfg.Campaign)
		if win.Duration() <= 0 {
			continue
		}
		fig := Figure{ID: spec.id, Title: spec.title, Window: win}
		if spec.isLoss {
			if len(lr.LossBatches) == 0 {
				continue
			}
			start, step, n := loss.GridFor(win)
			// Batches outside the figure window are dropped by design.
			fig.Loss, _ = loss.ToSeries(lr.LossBatches, start, step, n)
			if fig.Loss.PresentCount() == 0 {
				continue
			}
		} else {
			near, far := lr.Collector.FullRes()
			if near == nil || far == nil {
				continue
			}
			fig.Near = near.Slice(win.Start, win.End)
			fig.Far = far.Slice(win.Start, win.End)
			if fig.Far.PresentCount() == 0 {
				continue
			}
		}
		out = append(out, fig)
	}
	return out
}

// Render writes the figure as an ASCII plot.
func (f Figure) Render(w io.Writer, width, height int) error {
	if _, err := fmt.Fprintln(w, f.Title); err != nil {
		return err
	}
	if f.Loss != nil {
		return report.ASCIIPlot(w, []string{"loss %"}, []rune{'x'}, width, height, f.Loss)
	}
	return report.ASCIIPlot(w, []string{"far RTT", "near RTT"}, []rune{'o', '.'},
		width, height, f.Far, f.Near)
}

// WriteCSV exports the figure's series.
func (f Figure) WriteCSV(w io.Writer) error {
	if f.Loss != nil {
		return report.WriteSeriesCSV(w, []string{"loss_pct"}, f.Loss)
	}
	return report.WriteSeriesCSV(w, []string{"near_ms", "far_ms"}, f.Near, f.Far)
}

// WriteSVG renders the figure as a standalone SVG chart.
func (f Figure) WriteSVG(w io.Writer, width, height int) error {
	if f.Loss != nil {
		return report.WriteSVG(w, f.Title, "loss (%)", width, height,
			report.SVGSeries{Name: "far-end loss", Series: f.Loss, Scatter: true})
	}
	return report.WriteSVG(w, f.Title, "RTT (ms)", width, height,
		report.SVGSeries{Name: "far RTT", Series: f.Far},
		report.SVGSeries{Name: "near RTT", Series: f.Near},
	)
}

// Stats summarizes the plotted series for paper-vs-measured rows.
func (f Figure) Stats() timeseries.Stats {
	var sc timeseries.StatsScratch
	return f.StatsWith(&sc)
}

// StatsWith is Stats through a caller-owned quantile scratch, so a
// loop summarizing every figure (or every link) sorts in one reused
// buffer instead of three clones per call. Results are bit-identical
// to Stats.
func (f Figure) StatsWith(sc *timeseries.StatsScratch) timeseries.Stats {
	switch {
	case f.Loss != nil:
		return f.Loss.SummarizeInto(sc)
	case f.Far != nil:
		return f.Far.SummarizeInto(sc)
	default:
		return timeseries.Stats{}
	}
}
