package experiments

import (
	"fmt"

	"afrixp/internal/asrel"
	"afrixp/internal/bdrmap"
	"afrixp/internal/ixpdir"
	"afrixp/internal/netaddr"
	"afrixp/internal/netsim"
	"afrixp/internal/prober"
	"afrixp/internal/registry"
	"afrixp/internal/scenario"
	"afrixp/internal/simclock"
)

// VantageCoverage quantifies the paper's §3/§8 observation that VP
// placement determines what a probe can see: a VP on the IXP content
// network discovers every member accessing the content, while a VP
// inside one member sees that member's own neighbors. The experiment
// plants an additional probe inside a member of the same IXP as a
// content-network VP and compares the discovered link sets.
type VantageCoverage struct {
	IXP string
	// ContentLinks / MemberLinks are the discovered link counts.
	ContentLinks, MemberLinks int
	// ContentNeighbors / MemberNeighbors are the AS neighbor counts.
	ContentNeighbors, MemberNeighbors int
	// SharedFarASes counts far ASes both vantage points discovered.
	SharedFarASes int
	// The two probes should see *each other's* networks: the member
	// VP discovers the content AS (it provides the member transit to
	// the caches), the content VP discovers the member.
	MemberSeesContentAS, ContentSeesMemberAS bool
}

// RunVantageCoverage executes the comparison at GIXA: the real VP1
// (content network) versus a synthetic probe hosted inside GHANATEL.
func RunVantageCoverage(opts scenario.Options, at simclock.Time) (*VantageCoverage, error) {
	w := scenario.Paper(opts)
	w.AdvanceTo(at)
	vp1, ok := w.VPByID("VP1")
	if !ok {
		return nil, fmt.Errorf("experiments: VP1 missing")
	}

	cfg := func(siblings []asrel.ASN) bdrmap.Config {
		return bdrmap.Config{
			BGP:      w.BGP,
			Rels:     w.Graph,
			RIR:      registry.NewIndex(w.RIRFile),
			IXP:      ixpdir.NewIndex(w.Directory),
			Siblings: siblings,
		}
	}

	contentRes, err := bdrmap.Run(
		prober.New(w.Net, vp1.Node, prober.Config{Name: "content-vp"}),
		cfg(vp1.Siblings), at)
	if err != nil {
		return nil, err
	}

	// Plant a probe inside GHANATEL: a host behind its border router,
	// exactly how VP4–VP6 are hosted inside members.
	ghBorder := w.Net.RoutersOf(scenario.ASGhanatel)
	if len(ghBorder) == 0 {
		return nil, fmt.Errorf("experiments: GHANATEL has no routers")
	}
	probe := w.Net.AddNode("vp.ghanatel-extra", scenario.ASGhanatel)
	// Address the probe link from an unused corner of GHANATEL's /16.
	ghPrefix, _, okP := w.BGP.PrefixOriginOf(wFirstAddrOf(w, ghBorder[0]))
	if !okP {
		return nil, fmt.Errorf("experiments: cannot locate GHANATEL prefix")
	}
	sub := ghPrefix.Nth(15 * 256) // x.x.15.0, inside the infra /20
	w.Net.ConnectLink(probe, ghBorder[0], netsim.LinkSpec{
		AddrA: sub + 1, AddrB: sub + 2,
	})
	w.Net.SetGateway(probe, w.Net.Iface(probe.Ifaces[0]))
	w.Net.InvalidateRoutes()

	memberRes, err := bdrmap.Run(
		prober.New(w.Net, probe, prober.Config{Name: "member-vp"}),
		cfg(nil), at)
	if err != nil {
		return nil, err
	}

	out := &VantageCoverage{
		IXP:              vp1.IXP,
		ContentLinks:     len(contentRes.Links),
		MemberLinks:      len(memberRes.Links),
		ContentNeighbors: len(contentRes.Neighbors),
		MemberNeighbors:  len(memberRes.Neighbors),
	}
	seen := make(map[asrel.ASN]bool)
	for _, a := range contentRes.Neighbors {
		seen[a] = true
	}
	for _, a := range memberRes.Neighbors {
		if seen[a] {
			out.SharedFarASes++
		}
	}
	out.MemberSeesContentAS = memberRes.HasNeighbor(vp1.HostAS)
	out.ContentSeesMemberAS = contentRes.HasNeighbor(scenario.ASGhanatel)
	return out, nil
}

// wFirstAddrOf returns the first interface address of a node, used to
// locate its AS prefix.
func wFirstAddrOf(w *scenario.World, n *netsim.Node) netaddr.Addr {
	return w.Net.SrcAddr(n)
}
