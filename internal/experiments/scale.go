package experiments

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"afrixp/internal/scenario"
	"afrixp/internal/simclock"
	"afrixp/internal/telemetry"
	"afrixp/internal/worldgen"
)

// ScalePoint is one row of the scale sweep: how the sharded engine
// behaves on a generated world at one scale factor.
type ScalePoint struct {
	Scale float64
	// World sizes (worldgen.StatsOf).
	IXPs, ASes, VPs, WorldLinks int
	// ProbedLinks counts the links the campaign discovered and probed;
	// Rounds the link-rounds attempted across them.
	ProbedLinks, Rounds int
	// WallSecs is the campaign wall time (build + probe + analyze).
	WallSecs float64
	// LinkRoundsPerSec is probing throughput: Rounds / WallSecs.
	LinkRoundsPerSec float64
	// BytesPerLink is resident series memory per probed link: the
	// shard arenas (shared slabs, counted once each) plus every
	// collector's private state, divided by ProbedLinks.
	BytesPerLink float64
	// PeakRSSMB is the process high-water resident set (VmHWM) after
	// the point ran. Cumulative across the process, so within one
	// sweep it is monotone — compare points run in separate processes
	// (the benchmark does) for isolated figures.
	PeakRSSMB float64
}

// ScaleSweepConfig drives RunScaleSweep.
type ScaleSweepConfig struct {
	// Scales to run (default 1, 10, 100). Scale 1 uses the authored
	// paper world; larger scales generate worlds with worldgen.
	Scales []float64
	// GenSeed seeds the world generator (default worldgen's).
	GenSeed uint64
	// Days is each point's campaign length (default 1).
	Days int
	// Shards is the campaign shard count (default 4).
	Shards int
	// Workers is the probing/analysis worker count (default
	// GOMAXPROCS).
	Workers int
	// MaxVPs, when positive, truncates probing to the first MaxVPs
	// vantage points (world-scale stats still describe the full
	// world). The benchmark uses it to keep 100× iterations tractable;
	// 0 probes from every VP.
	MaxVPs int
	// Progress, when non-nil, receives one line per point.
	Progress io.Writer
}

func (c ScaleSweepConfig) withDefaults() ScaleSweepConfig {
	if len(c.Scales) == 0 {
		c.Scales = []float64{1, 10, 100}
	}
	if c.Days <= 0 {
		c.Days = 1
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// RunScaleSweep measures the sharded campaign engine across world
// scales: for each scale it builds (or generates) the world, runs a
// short campaign, and reports throughput and memory-residency figures.
// The bench ledger records these via BenchmarkScaleCampaign.
func RunScaleSweep(cfg ScaleSweepConfig) []ScalePoint {
	cfg = cfg.withDefaults()
	out := make([]ScalePoint, 0, len(cfg.Scales))
	for _, scale := range cfg.Scales {
		p := runScalePoint(scale, cfg)
		out = append(out, p)
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress,
				"scale %g: %d IXPs, %d links (%d probed), %.0f rounds/s, %.0f bytes/link, peak RSS %.1f MB (wall %.1fs)\n",
				p.Scale, p.IXPs, p.WorldLinks, p.ProbedLinks,
				p.LinkRoundsPerSec, p.BytesPerLink, p.PeakRSSMB, p.WallSecs)
		}
	}
	return out
}

func runScalePoint(scale float64, cfg ScaleSweepConfig) ScalePoint {
	tele := telemetry.New()
	ccfg := Config{
		Campaign: simclock.Interval{
			Start: simclock.Date(2016, time.July, 20),
			End:   simclock.Date(2016, time.July, 20).Add(time.Duration(cfg.Days) * 24 * time.Hour),
		},
		Workers:   cfg.Workers,
		Shards:    cfg.Shards,
		Telemetry: tele,
	}
	var w *scenario.World
	if scale > 1 {
		w = worldgen.Generate(worldgen.Options{Seed: cfg.GenSeed, Scale: scale})
	} else {
		w = scenario.Paper(scenario.Options{})
	}
	st := worldgen.StatsOf(w)
	if cfg.MaxVPs > 0 && len(w.VPs) > cfg.MaxVPs {
		w.VPs = w.VPs[:cfg.MaxVPs]
	}
	ccfg.BuildWorld = func() *scenario.World { return w }

	wall := time.Now()
	res := Run(ccfg)
	elapsed := time.Since(wall).Seconds()

	p := ScalePoint{
		Scale: scale,
		IXPs:  st.IXPs, ASes: st.ASes, VPs: st.VPs, WorldLinks: st.InterdomainLinks,
		WallSecs: elapsed,
	}
	for _, y := range res.Yields() {
		p.ProbedLinks += y.Links
		p.Rounds += y.Rounds + y.Missed + y.Skipped
	}
	if elapsed > 0 {
		p.LinkRoundsPerSec = float64(p.Rounds) / elapsed
	}
	p.BytesPerLink = bytesPerLink(res, tele)
	p.PeakRSSMB = float64(peakRSSBytes()) / 1e6
	return p
}

// bytesPerLink computes resident series bytes per probed link. Sharded
// campaigns publish the authoritative per-shard figure (shared arena
// plus collector state) as telemetry gauges at barriers; unsharded
// campaigns sum the private collectors directly.
func bytesPerLink(res *Result, tele *telemetry.Telemetry) float64 {
	links := 0
	for _, vr := range res.VPs {
		links += len(vr.Links)
	}
	if links == 0 {
		return 0
	}
	var resident int64
	if shards := tele.Snapshot().Engine.Shards; len(shards) > 0 {
		for _, sh := range shards {
			resident += sh.ResidentBytes
		}
	} else {
		for _, vr := range res.VPs {
			for _, lr := range vr.SortedLinks() {
				resident += int64(lr.Collector.MemBytes())
			}
		}
	}
	return float64(resident) / float64(links)
}

// peakRSSBytes reads the process resident-set high-water mark (VmHWM).
// Falls back to the Go heap high-water proxy when /proc is unavailable
// (non-Linux).
func peakRSSBytes() int64 {
	f, err := os.Open("/proc/self/status")
	if err == nil {
		defer f.Close()
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "VmHWM:") {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				if kb, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
					return kb << 10
				}
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.Sys)
}

// RenderScaleSweep writes the sweep as the EXPERIMENTS.md-style table.
func RenderScaleSweep(w io.Writer, points []ScalePoint) {
	fmt.Fprintf(w, "%8s %6s %6s %6s %10s %8s %12s %12s %10s\n",
		"scale", "ixps", "ases", "vps", "worldlinks", "probed", "rounds/s", "bytes/link", "peakRSS")
	for _, p := range points {
		fmt.Fprintf(w, "%8g %6d %6d %6d %10d %8d %12.0f %12.0f %8.1fMB\n",
			p.Scale, p.IXPs, p.ASes, p.VPs, p.WorldLinks, p.ProbedLinks,
			p.LinkRoundsPerSec, p.BytesPerLink, p.PeakRSSMB)
	}
}
