package experiments

import (
	"time"

	"afrixp/internal/monitor"
	"afrixp/internal/prober"
	"afrixp/internal/scenario"
	"afrixp/internal/simclock"
)

// AlertLatency is one case link's online-detection timing: how long
// after congestion truly started (per the operator annotation) the
// monitor raised its onset alert, and — when the scenario mitigates
// the link — how long after the fix the cleared alert confirmed it.
type AlertLatency struct {
	Case string
	// OnsetLag is alert time − true congestion start; negative means
	// never alerted (Alerted false).
	Alerted  bool
	OnsetLag simclock.Duration
	// ClearedLag is confirmation time − mitigation time, when the
	// link was mitigated during the watch window.
	Cleared    bool
	ClearedLag simclock.Duration
}

// RunAlertLatency drives the online monitor over the QCELL–NETPAGE
// story (truth: congested from the campaign start, mitigated
// 2016-04-28) and the GIXA–GHANATEL phase 1, reporting detection
// latencies. It quantifies the §7 claim that monitoring would let
// ISPs "quickly mitigate the occurrence of congestion".
func RunAlertLatency(opts scenario.Options) ([]AlertLatency, error) {
	type spec struct {
		name      string
		vp        string
		truthFrom simclock.Time
		mitigated simclock.Time // zero when never mitigated in-window
		watch     simclock.Interval
	}
	specs := []spec{
		{name: "QCELL-NETPAGE", vp: "VP4",
			truthFrom: simclock.Date(2016, time.February, 29),
			mitigated: simclock.Date(2016, time.April, 28),
			watch: simclock.Interval{Start: simclock.Date(2016, time.February, 29),
				End: simclock.Date(2016, time.May, 26)}},
		{name: "GIXA-GHANATEL", vp: "VP1",
			truthFrom: simclock.Date(2016, time.March, 3),
			watch: simclock.Interval{Start: simclock.Date(2016, time.March, 1),
				End: simclock.Date(2016, time.April, 5)}},
	}

	var out []AlertLatency
	for _, sp := range specs {
		w := scenario.Paper(opts)
		vp, _ := w.VPByID(sp.vp)
		target, ok := vp.CaseLinks[sp.name]
		if !ok {
			continue
		}
		p := prober.New(w.Net, vp.Node, prober.Config{Name: vp.Monitor})
		session, err := p.NewTSLP(target)
		if err != nil {
			return nil, err
		}
		m := monitor.New(target, monitor.Config{})
		al := AlertLatency{Case: sp.name}
		w.AdvanceTo(sp.watch.Start)
		sp.watch.Steps(5*time.Minute, func(t simclock.Time) {
			w.AdvanceTo(t)
			for _, a := range m.Feed(session.Round(t)) {
				switch a.Kind {
				case monitor.Onset:
					if !al.Alerted {
						al.Alerted = true
						al.OnsetLag = a.At.Sub(sp.truthFrom)
					}
				case monitor.Cleared:
					if sp.mitigated > 0 && !al.Cleared && a.At >= sp.mitigated {
						al.Cleared = true
						al.ClearedLag = a.At.Sub(sp.mitigated)
					}
				}
			}
		})
		out = append(out, al)
	}
	return out, nil
}
