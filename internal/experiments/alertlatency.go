package experiments

import (
	"sort"
	"time"

	"afrixp/internal/budget"
	"afrixp/internal/interview"
	"afrixp/internal/monitor"
	"afrixp/internal/observatory"
	"afrixp/internal/prober"
	"afrixp/internal/scenario"
	"afrixp/internal/simclock"
	"afrixp/internal/timeseries"
	"afrixp/internal/worldgen"
)

// AlertLatency is one case link's online-detection timing: how long
// after congestion truly started (per the operator annotation) the
// monitor raised its onset alert, and — when the scenario mitigates
// the link — how long after the fix the cleared alert confirmed it.
type AlertLatency struct {
	Case string
	// OnsetLag is alert time − true congestion start; negative means
	// never alerted (Alerted false).
	Alerted  bool
	OnsetLag simclock.Duration
	// ClearedLag is confirmation time − mitigation time, when the
	// link was mitigated during the watch window.
	Cleared    bool
	ClearedLag simclock.Duration
}

// RunAlertLatency drives the online monitor over the QCELL–NETPAGE
// story (truth: congested from the campaign start, mitigated
// 2016-04-28) and the GIXA–GHANATEL phase 1, reporting detection
// latencies. It quantifies the §7 claim that monitoring would let
// ISPs "quickly mitigate the occurrence of congestion".
func RunAlertLatency(opts scenario.Options) ([]AlertLatency, error) {
	type spec struct {
		name      string
		vp        string
		truthFrom simclock.Time
		mitigated simclock.Time // zero when never mitigated in-window
		watch     simclock.Interval
	}
	specs := []spec{
		{name: "QCELL-NETPAGE", vp: "VP4",
			truthFrom: simclock.Date(2016, time.February, 29),
			mitigated: simclock.Date(2016, time.April, 28),
			watch: simclock.Interval{Start: simclock.Date(2016, time.February, 29),
				End: simclock.Date(2016, time.May, 26)}},
		{name: "GIXA-GHANATEL", vp: "VP1",
			truthFrom: simclock.Date(2016, time.March, 3),
			watch: simclock.Interval{Start: simclock.Date(2016, time.March, 1),
				End: simclock.Date(2016, time.April, 5)}},
	}

	var out []AlertLatency
	for _, sp := range specs {
		w := scenario.Paper(opts)
		vp, _ := w.VPByID(sp.vp)
		target, ok := vp.CaseLinks[sp.name]
		if !ok {
			continue
		}
		p := prober.New(w.Net, vp.Node, prober.Config{Name: vp.Monitor})
		session, err := p.NewTSLP(target)
		if err != nil {
			return nil, err
		}
		m := monitor.New(target, monitor.Config{})
		al := AlertLatency{Case: sp.name}
		w.AdvanceTo(sp.watch.Start)
		sp.watch.Steps(5*time.Minute, func(t simclock.Time) {
			w.AdvanceTo(t)
			for _, a := range m.Feed(session.Round(t)) {
				switch a.Kind {
				case monitor.Onset:
					if !al.Alerted {
						al.Alerted = true
						al.OnsetLag = a.At.Sub(sp.truthFrom)
					}
				case monitor.Cleared:
					if sp.mitigated > 0 && !al.Cleared && a.At >= sp.mitigated {
						al.Cleared = true
						al.ClearedLag = a.At.Sub(sp.mitigated)
					}
				}
			}
		})
		out = append(out, al)
	}
	return out, nil
}

// StreamAlertLatency is the streaming observatory's detection-lag
// distribution over planted ground truth at one probe-budget fraction:
// how long of virtual time passed between annotated congestion onset
// and the first streaming alert (any transition out of "clear") on
// each truly-congested link.
type StreamAlertLatency struct {
	// Budget is the probe-budget fraction this row ran under.
	Budget float64
	// Truth counts the annotated congested links the campaign probed.
	Truth int
	// Alerted counts those whose streaming detector raised any alert.
	Alerted int
	// P50/P95 are virtual-time lag quantiles over the alerted links.
	P50, P95 simclock.Duration
}

// RunStreamAlertLatency measures the observatory's alert latency on a
// 10× generated world: one 7-day campaign per budget fraction with the
// streaming service attached, lag measured per annotated congested
// link from ground-truth onset (the annotation's first congested
// phase, clamped to the campaign start) to the first streaming alert.
// Where RunAlertLatency times the per-link window monitor on the two
// paper case studies, this times the campaign-wide streaming detector
// on planted truth — and quantifies what probing at half budget costs
// in notification delay.
func RunStreamAlertLatency(budgets []float64) []StreamAlertLatency {
	iv := simclock.Interval{
		Start: simclock.Date(2016, time.July, 20),
		End:   simclock.Date(2016, time.July, 27),
	}
	out := make([]StreamAlertLatency, 0, len(budgets))
	for _, frac := range budgets {
		svc := observatory.New(observatory.Config{})
		res := Run(Config{
			BuildWorld: func() *scenario.World {
				return worldgen.Generate(worldgen.Options{Seed: 7, Scale: 10})
			},
			Campaign:    iv,
			Workers:     8,
			Shards:      2,
			Budget:      &budget.Config{Fraction: frac, Seed: 1},
			Observatory: svc,
		})

		// First alert per link, one pass over the ordered log.
		alerts, _ := svc.AlertsSince(0, 0, nil)
		firstAt := make(map[string]simclock.Time, len(alerts))
		for _, a := range alerts {
			if a.To == "clear" {
				continue
			}
			if _, ok := firstAt[a.Link]; !ok {
				firstAt[a.Link] = simclock.Time(a.AtNs)
			}
		}

		row := StreamAlertLatency{Budget: frac}
		var lags []float64
		for _, vr := range res.VPs {
			for _, lr := range vr.SortedLinks() {
				ann, ok := res.World.Interviews.Find(vr.VP.ID, lr.Target)
				if !ok || !ann.CongestedTruth {
					continue
				}
				row.Truth++
				at, ok := firstAt[observatory.LinkID(vr.VP.ID, lr.Target)]
				if !ok {
					continue
				}
				row.Alerted++
				onset := iv.Start
				for _, ph := range ann.Phases {
					if ph.Cause != interview.CauseNone && ph.Cause != "" {
						if ph.Interval.Start > onset {
							onset = ph.Interval.Start
						}
						break
					}
				}
				lags = append(lags, float64(at.Sub(onset)))
			}
		}
		if len(lags) > 0 {
			sort.Float64s(lags)
			row.P50 = simclock.Duration(timeseries.QuantileSorted(lags, 0.5))
			row.P95 = simclock.Duration(timeseries.QuantileSorted(lags, 0.95))
		}
		out = append(out, row)
	}
	return out
}
