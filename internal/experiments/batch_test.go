package experiments

import (
	"testing"
	"time"

	"afrixp/internal/scenario"
	"afrixp/internal/simclock"
)

// runBatchCampaign is runShortCampaign with an explicit batch size.
func runBatchCampaign(workers, batchSteps int) *Result {
	return Run(Config{
		Opts: scenario.Options{Seed: 5, Scale: 0.1},
		Campaign: simclock.Interval{
			Start: simclock.Date(2016, time.July, 20),
			End:   simclock.Date(2016, time.July, 24),
		},
		Workers:    workers,
		BatchSteps: batchSteps,
	})
}

// TestBatchCampaignBitIdentical is the batch planner's core guarantee:
// batch size is a scheduling knob, never a modeling one. A campaign run
// step by step (BatchSteps=1, the old per-step protocol) must produce
// exactly the same numbers as one run in maximal batches — every
// series value, verdict, shift, event, loss batch, and rendered
// report, compared at the bit level — at one worker and at many.
func TestBatchCampaignBitIdentical(t *testing.T) {
	// 4 days at 5-minute steps is 1152 steps; a 4096-step cap means the
	// planner only breaks batches at genuine barriers.
	perStep := runBatchCampaign(1, 1)
	batched := runBatchCampaign(1, 4096)
	batchedPar := runBatchCampaign(8, 4096)

	links := 0
	for _, vr := range perStep.VPs {
		links += len(vr.Links)
	}
	if links == 0 {
		t.Fatal("campaign discovered no links; batch equivalence check is vacuous")
	}

	want := summarizeResult(perStep)
	if got := summarizeResult(batched); want != got {
		t.Errorf("results differ between BatchSteps=1 and BatchSteps=4096 (workers=1)\n%s",
			firstDiff(want, got))
	}
	if got := summarizeResult(batchedPar); want != got {
		t.Errorf("results differ between BatchSteps=1/workers=1 and BatchSteps=4096/workers=8\n%s",
			firstDiff(want, got))
	}
	if a, b := renderReports(t, perStep), renderReports(t, batchedPar); a != b {
		t.Errorf("rendered reports differ across batch sizes\n%s", firstDiff(a, b))
	}
}

// TestBatchSizeSweepBitIdentical sweeps awkward batch sizes — ones
// that misalign with the refresh cadence and loss-round phase — to
// pin that batch boundaries never leak into results.
func TestBatchSizeSweepBitIdentical(t *testing.T) {
	want := summarizeResult(runBatchCampaign(2, 1))
	for _, bs := range []int{2, 7, 97} {
		if got := summarizeResult(runBatchCampaign(2, bs)); want != got {
			t.Errorf("BatchSteps=%d diverges from per-step results\n%s", bs, firstDiff(want, got))
		}
	}
}
