//go:build !race

package experiments

// raceEnabled reports whether the race detector is compiled in; the
// continent-scale acceptance matrix skips under it (the 10× generated
// world smoke in scripts/ci.sh is the raced scale path).
const raceEnabled = false
