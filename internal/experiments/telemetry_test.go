package experiments

import (
	"testing"
	"time"

	"afrixp/internal/faults"
	"afrixp/internal/scenario"
	"afrixp/internal/simclock"
	"afrixp/internal/telemetry"
)

// runTelemetryCampaign is runFaultCampaign with a telemetry root
// attached; it returns both so tests can check results and metrics.
func runTelemetryCampaign(workers, batchSteps int) (*Result, *telemetry.Telemetry) {
	tele := telemetry.New()
	res := Run(Config{
		Opts: scenario.Options{Seed: 5, Scale: 0.1},
		Campaign: simclock.Interval{
			Start: simclock.Date(2016, time.July, 20),
			End:   simclock.Date(2016, time.July, 24),
		},
		Workers:    workers,
		BatchSteps: batchSteps,
		Faults:     &faults.Config{},
		Telemetry:  tele,
	})
	return res, tele
}

// TestTelemetryCampaignBitIdentical pins the read-side contract:
// attaching telemetry must not change a single campaign number, at any
// worker count or batch size, with the fault plan active. Telemetry
// only reads simulation state (counters republished at barriers, spans
// stamped from the engine's own schedule), so the instrumented runs
// must summarize identically to the uninstrumented per-step baseline.
func TestTelemetryCampaignBitIdentical(t *testing.T) {
	want := summarizeResult(runFaultCampaign(1, 1))

	for _, tc := range []struct{ workers, batch int }{
		{1, 1},
		{8, 4096},
	} {
		res, tele := runTelemetryCampaign(tc.workers, tc.batch)
		if got := summarizeResult(res); got != want {
			t.Errorf("telemetry perturbed the campaign at workers=%d batch=%d: %s",
				tc.workers, tc.batch, firstDiff(got, want))
		}

		// Non-vacuity: the claim is empty unless the telemetry actually
		// collected across every instrumented layer.
		if n := tele.Probe.Probes.Load(); n == 0 {
			t.Errorf("workers=%d batch=%d: no probes counted", tc.workers, tc.batch)
		}
		if tele.Probe.Delivered.Load() == 0 || tele.Probe.QueueFrozenObs.Load() == 0 {
			t.Errorf("workers=%d batch=%d: probe outcome counters untouched", tc.workers, tc.batch)
		}
		if tele.Probe.InjectWalks.Load() == 0 {
			t.Errorf("workers=%d batch=%d: no discovery inject walks counted", tc.workers, tc.batch)
		}
		if tele.Engine.BatchesOpened.Load() == 0 || tele.Engine.Flushes.Load() == 0 ||
			tele.Engine.RoundsDispatched.Load() == 0 {
			t.Errorf("workers=%d batch=%d: engine counters untouched", tc.workers, tc.batch)
		}
		if tele.Analysis.Sweeps.Load() == 0 || tele.Analysis.FoldsComputed.Load() == 0 {
			t.Errorf("workers=%d batch=%d: analysis counters untouched", tc.workers, tc.batch)
		}
		if tele.Faults.Planned.Load() == 0 {
			t.Errorf("workers=%d batch=%d: no fault episodes planned", tc.workers, tc.batch)
		}
		if tele.Faults.Entered.Load() == 0 || tele.Faults.Exited.Load() == 0 {
			t.Errorf("workers=%d batch=%d: fault boundary counters untouched (entered=%d exited=%d)",
				tc.workers, tc.batch, tele.Faults.Entered.Load(), tele.Faults.Exited.Load())
		}

		phases := map[string]int{}
		for _, sp := range tele.Spans() {
			phases[sp.Phase]++
		}
		for _, phase := range []string{"build-world", "discovery", "probing", "probe-batch", "analysis", "fault-episode"} {
			if phases[phase] == 0 {
				t.Errorf("workers=%d batch=%d: no %q span recorded (phases: %v)",
					tc.workers, tc.batch, phase, phases)
			}
		}
		if len(tele.Events()) == 0 {
			t.Errorf("workers=%d batch=%d: no progress events recorded", tc.workers, tc.batch)
		}
	}
}

// TestTelemetryCountersConsistent cross-checks counters that must
// agree by construction, independent of batch geometry.
func TestTelemetryCountersConsistent(t *testing.T) {
	_, tele := runTelemetryCampaign(4, 64)

	probes := tele.Probe.Probes.Load()
	outcomes := tele.Probe.Delivered.Load() + tele.Probe.PipeDrops.Load() +
		tele.Probe.ICMPSilenced.Load() + tele.Probe.RateLimited.Load()
	if probes != outcomes {
		t.Errorf("probe outcomes do not partition: %d probes vs %d outcome total", probes, outcomes)
	}
	iw := tele.Probe.InjectWalks.Load()
	io := tele.Probe.InjectDelivered.Load() + tele.Probe.InjectLost.Load() +
		tele.Probe.InjectUnreachable.Load()
	if iw != io {
		t.Errorf("inject outcomes do not partition: %d walks vs %d outcome total", iw, io)
	}
	s := tele.Snapshot()
	if fl := s.Engine.Flushes; fl == 0 || fl > s.Engine.BatchesOpened {
		t.Errorf("flushes (%d) out of range vs batches opened (%d)", fl, s.Engine.BatchesOpened)
	}
	if s.Engine.BatchLen.Total != s.Engine.Flushes {
		t.Errorf("batch-length histogram total (%d) != flushes (%d)",
			s.Engine.BatchLen.Total, s.Engine.Flushes)
	}
	if s.Probe.RTTMicros.Total != s.Probe.Delivered {
		t.Errorf("RTT histogram total (%d) != delivered probes (%d)",
			s.Probe.RTTMicros.Total, s.Probe.Delivered)
	}
	if s.Faults.Entered != s.Faults.Exited {
		t.Errorf("fault episodes unbalanced after campaign end: entered=%d exited=%d",
			s.Faults.Entered, s.Faults.Exited)
	}
}
