package experiments

import (
	"time"

	"afrixp/internal/analysis"
	"afrixp/internal/prober"
	"afrixp/internal/scenario"
	"afrixp/internal/simclock"
	"afrixp/internal/timeseries"
)

// WhatIfPoint is one row of the capacity-planning sweep: had NETPAGE
// upgraded its 10 Mbps SIXP port to UpgradeBps instead of the 1 Gbps
// it actually bought, would the congestion have returned?
type WhatIfPoint struct {
	UpgradeBps float64
	// CongestedAfter reports whether the post-upgrade window still
	// qualifies as congested under the paper's pipeline.
	CongestedAfter bool
	// PeakP95Ms is the 95th-percentile far RTT after the upgrade.
	PeakP95Ms float64
}

// RunUpgradeWhatIf sweeps NETPAGE's upgrade capacity — the
// capacity-planning question the operators of §6.2.2 answered by
// over-provisioning, which only a simulated substrate can answer
// cheaply. Each sweep point rebuilds the world with the alternative
// upgrade and probes six post-upgrade weeks.
func RunUpgradeWhatIf(base scenario.Options, capacities []float64) ([]WhatIfPoint, error) {
	if len(capacities) == 0 {
		capacities = []float64{12e6, 20e6, 50e6, 1e9}
	}
	upgrade := simclock.Date(2016, time.April, 28)
	window := simclock.Interval{Start: upgrade, End: upgrade.Add(42 * 24 * time.Hour)}

	var out []WhatIfPoint
	var statsScr timeseries.StatsScratch // one sort buffer across the sweep
	for _, capBps := range capacities {
		opts := base
		opts.NetpageUpgradeBps = capBps
		w := scenario.Paper(opts)
		vp, _ := w.VPByID("VP4")
		p := prober.New(w.Net, vp.Node, prober.Config{Name: "whatif"})
		session, err := p.NewTSLP(vp.CaseLinks["QCELL-NETPAGE"])
		if err != nil {
			return nil, err
		}
		col := analysis.NewCollector(session, analysis.CollectorConfig{Campaign: window})
		w.AdvanceTo(window.Start)
		window.Steps(5*time.Minute, func(t simclock.Time) {
			w.AdvanceTo(t)
			col.Round(t)
		})
		ls := col.Series()
		v := analysis.AnalyzeLink(ls, analysis.DefaultConfig())
		st := ls.Far.SummarizeInto(&statsScr)
		out = append(out, WhatIfPoint{
			UpgradeBps:     capBps,
			CongestedAfter: v.Congested,
			PeakP95Ms:      st.P95,
		})
	}
	return out, nil
}
