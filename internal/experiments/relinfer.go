package experiments

import (
	"sort"

	"afrixp/internal/asrel"
	"afrixp/internal/bdrmap"
	"afrixp/internal/ixpdir"
	"afrixp/internal/prober"
	"afrixp/internal/registry"
	"afrixp/internal/scenario"
	"afrixp/internal/simclock"
)

// RelInference validates the AS-rank stand-in: the paper's bdrmap run
// consumes CAIDA's inferred AS relationships, not ground truth. This
// experiment collects AS paths the way public route collectors see
// them (full routes from a handful of peering ASes), runs the
// Gao-style inference, scores it against the scenario's ground truth,
// and re-runs border mapping with the *inferred* graph to check that
// the peer/transit classification survives imperfect inputs.
type RelInference struct {
	// Paths collected and fed to the inference.
	Paths int
	// Exact is the fraction of ground-truth links whose relationship
	// was inferred exactly; Covered the fraction inferred at all.
	Exact, Covered float64
	// TotalLinks is the ground-truth link count scored.
	TotalLinks int
	// PeersTruth / PeersInferred compare one VP's bdrmap peer count
	// under ground-truth vs inferred relationships.
	VP                        string
	PeersTruth, PeersInferred int
	NeighborsAgree            bool
}

// RunRelInference executes the experiment on a fresh world.
func RunRelInference(opts scenario.Options, at simclock.Time) (*RelInference, error) {
	w := scenario.Paper(opts)
	w.AdvanceTo(at)

	// Route collectors peer with the intercontinental carriers, the
	// regional transits, and each VP's host AS — the RouteViews/RIS
	// vantage mix.
	collectorASes := map[asrel.ASN]bool{5511: true, 6453: true}
	for _, vp := range w.VPs {
		collectorASes[vp.HostAS] = true
	}
	var collectors []asrel.ASN
	for a := range collectorASes {
		collectors = append(collectors, a)
	}
	sort.Slice(collectors, func(i, j int) bool { return collectors[i] < collectors[j] })

	var paths [][]asrel.ASN
	for _, c := range collectors {
		for _, dst := range w.Graph.ASes() {
			if dst == c {
				continue
			}
			if p, err := w.BGP.ASPath(c, dst); err == nil {
				paths = append(paths, p)
			}
		}
	}
	inferred := asrel.InferFromPaths(paths)
	exact, covered, total := asrel.Accuracy(w.Graph, inferred)

	res := &RelInference{
		Paths: len(paths), Exact: exact, Covered: covered, TotalLinks: total,
	}

	// Border mapping under both relationship inputs for VP2 (a
	// content-network VP with a clean peer/transit mix).
	vp, _ := w.VPByID("VP2")
	res.VP = vp.ID
	base := bdrmap.Config{
		BGP:      w.BGP,
		RIR:      registry.NewIndex(w.RIRFile),
		IXP:      ixpdir.NewIndex(w.Directory),
		Geo:      w.GeoDB,
		RDNS:     w.RDNS,
		Siblings: vp.Siblings,
	}
	truthCfg := base
	truthCfg.Rels = w.Graph
	p1 := prober.New(w.Net, vp.Node, prober.Config{Name: vp.Monitor + "-truth"})
	truthRes, err := bdrmap.Run(p1, truthCfg, at)
	if err != nil {
		return nil, err
	}
	infCfg := base
	infCfg.Rels = inferred
	p2 := prober.New(w.Net, vp.Node, prober.Config{Name: vp.Monitor + "-inferred"})
	infRes, err := bdrmap.Run(p2, infCfg, at)
	if err != nil {
		return nil, err
	}
	res.PeersTruth = len(truthRes.Peers)
	res.PeersInferred = len(infRes.Peers)
	res.NeighborsAgree = len(truthRes.Neighbors) == len(infRes.Neighbors)
	return res, nil
}
