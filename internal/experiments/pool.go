package experiments

import (
	"sync"
	"time"

	"afrixp/internal/telemetry"
)

// probePool is the campaign's persistent probing crew: long-lived
// worker goroutines fed task indexes over a channel, replacing the
// spawn-and-join barrier the engine used to pay at every 5-minute step
// (~115k barrier cycles per full campaign). The pool is built once per
// campaign; each dispatch round sends one task per vantage point and
// waits for as many completions, so a round is still a barrier — just
// one whose goroutines, stacks, and scheduler state are reused.
//
// Memory model: the coordinator writes the shared batch state, then
// sends task indexes; workers read the state after receiving. The
// channel send/receive pairs order those accesses, so workers never
// observe a half-written batch, and the coordinator never reclaims
// state a worker is still reading.
type probePool struct {
	workers int
	tasks   chan int
	done    chan struct{}
	wg      sync.WaitGroup
	// run is the task body. It must be set before the first do call
	// and must only touch per-task state (one VP's prober, collectors).
	run func(task int)
	// eng, when non-nil, accumulates per-worker busy time for
	// utilization reporting. Each worker writes only its own slot, so
	// the timing is pure accounting and never orders the work.
	eng *telemetry.EngineStats
}

// newProbePool starts workers goroutines. workers <= 1 starts none:
// the sequential engine is the pool with inline dispatch, not a
// separate code path. eng may be nil (telemetry off).
func newProbePool(workers int, eng *telemetry.EngineStats) *probePool {
	p := &probePool{workers: workers, eng: eng}
	if eng != nil {
		eng.SetWorkers(workers)
	}
	if workers <= 1 {
		return p
	}
	p.tasks = make(chan int, workers)
	p.done = make(chan struct{}, workers)
	p.wg.Add(workers)
	for k := 0; k < workers; k++ {
		go func(worker int) {
			defer p.wg.Done()
			for i := range p.tasks {
				p.exec(worker, i)
				p.done <- struct{}{}
			}
		}(k)
	}
	return p
}

// exec runs one task, crediting its wall time to the worker when
// telemetry is attached.
func (p *probePool) exec(worker, task int) {
	if p.eng == nil {
		p.run(task)
		return
	}
	t0 := time.Now()
	p.run(task)
	p.eng.AddWorkerBusy(worker, time.Since(t0))
}

// do runs run(0..n-1) across the pool and returns when all complete.
// Task sends and completion receives are interleaved: with n greater
// than the channel buffering (workers per channel), a send-all-first
// dispatch would deadlock — every worker blocked sending done while the
// coordinator blocks sending the next task.
func (p *probePool) do(n int) {
	if p.workers <= 1 {
		for i := 0; i < n; i++ {
			p.exec(0, i)
		}
		return
	}
	sent, recv := 0, 0
	for sent < n {
		select {
		case p.tasks <- sent:
			sent++
		case <-p.done:
			recv++
		}
	}
	for ; recv < n; recv++ {
		<-p.done
	}
}

// close retires the workers. The pool must be idle.
func (p *probePool) close() {
	if p.tasks != nil {
		close(p.tasks)
		p.wg.Wait()
	}
}
