package experiments

import (
	"testing"

	"afrixp/internal/scenario"
)

func TestVantageCoverage(t *testing.T) {
	vc, err := RunVantageCoverage(scenario.Options{Seed: 8, Scale: 0.15}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if vc.IXP != "GIXA" {
		t.Fatalf("IXP = %s", vc.IXP)
	}
	// The content-network VP sees every member accessing the content;
	// the member-hosted VP sees GHANATEL's own neighbors (its transit
	// and customers), a different and typically smaller set at this
	// small IXP.
	if vc.ContentNeighbors < 5 {
		t.Fatalf("content VP neighbors = %d", vc.ContentNeighbors)
	}
	if vc.MemberNeighbors < 1 {
		t.Fatalf("member VP neighbors = %d", vc.MemberNeighbors)
	}
	if vc.ContentNeighbors == vc.MemberNeighbors && vc.SharedFarASes == vc.ContentNeighbors {
		t.Fatal("the two vantage points should not see identical worlds")
	}
	// The probes see each other's networks (the transit relationship
	// between GHANATEL and the content network is visible from both
	// sides), but their neighbor horizons differ.
	if !vc.MemberSeesContentAS {
		t.Fatal("member VP should discover the content AS")
	}
	if !vc.ContentSeesMemberAS {
		t.Fatal("content VP should discover GHANATEL")
	}
}
