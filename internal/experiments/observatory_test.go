package experiments

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"afrixp/internal/budget"
	"afrixp/internal/faults"
	"afrixp/internal/observatory"
	"afrixp/internal/scenario"
	"afrixp/internal/simclock"
)

// runObservatoryCampaign runs the 7-day paper-world campaign with
// faults and a 50% probe budget — the adversarial setting the
// streaming-observatory determinism claim is made under — with a
// fresh service attached.
func runObservatoryCampaign(workers, batchSteps, shards int) (*Result, *observatory.Service) {
	svc := observatory.New(observatory.Config{})
	res := Run(Config{
		Opts: scenario.Options{Seed: 5, Scale: 0.1},
		Campaign: simclock.Interval{
			Start: simclock.Date(2016, time.July, 20),
			End:   simclock.Date(2016, time.July, 27),
		},
		Workers:     workers,
		BatchSteps:  batchSteps,
		Shards:      shards,
		Faults:      &faults.Config{},
		Budget:      &budget.Config{Fraction: 0.5, Seed: 1},
		Observatory: svc,
	})
	return res, svc
}

// renderAlerts flattens a service's full alert log for bit-comparison
// (IEEE-exact float rendering via %v round-trips the bits).
func renderAlerts(svc *observatory.Service) string {
	alerts, _ := svc.AlertsSince(0, 0, nil)
	var b strings.Builder
	for _, a := range alerts {
		fmt.Fprintf(&b, "%d %s %d %s->%s thr=%v mag=%v ev=%v\n",
			a.Seq, a.Link, a.AtNs, a.From, a.To, a.ThresholdMs, a.MagnitudeMs, a.Evidence)
	}
	return b.String()
}

// checkServiceVerdicts asserts the service's finalized verdicts are
// bit-identical to the engine's batch sweep for every link of res.
func checkServiceVerdicts(t *testing.T, label string, res *Result, svc *observatory.Service) {
	t.Helper()
	links := 0
	for _, vr := range res.VPs {
		for _, lr := range vr.SortedLinks() {
			got := svc.LinkVerdicts(vr.VP.ID, lr.Target)
			if got == nil {
				t.Fatalf("%s: service has no verdicts for %s %v", label, vr.VP.ID, lr.Target)
			}
			for thr, want := range lr.Verdicts {
				g, ok := got[thr]
				if !ok {
					t.Fatalf("%s: service missing threshold %v for %s %v", label, thr, vr.VP.ID, lr.Target)
				}
				if fmt.Sprintf("%+v", g) != fmt.Sprintf("%+v", want) {
					t.Fatalf("%s: verdict mismatch for %s %v at %v ms:\nservice: %+v\nengine:  %+v",
						label, vr.VP.ID, lr.Target, thr, g, want)
				}
			}
			links++
		}
	}
	if links == 0 {
		t.Fatalf("%s: no links compared; the equivalence claim is vacuous", label)
	}
}

// TestObservatoryCampaignMatrix is the streaming observatory's
// determinism gate: with faults and a 50% probe budget enabled, the
// attached service must (1) leave campaign results bit-identical to a
// service-free run, (2) produce a bit-identical alert log across the
// full Workers × BatchSteps × Shards matrix — the feed is cursor-based
// over finalized slots with slot-time stamps, so barrier cadence must
// not reach it — and (3) finalize end-of-campaign verdicts
// bit-identical to the engine's AnalyzeLinkSweep (DESIGN.md §16).
func TestObservatoryCampaignMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("observatory matrix skipped in -short")
	}

	// Service-free reference: attaching the observatory must not change
	// campaign results.
	bare := Run(Config{
		Opts: scenario.Options{Seed: 5, Scale: 0.1},
		Campaign: simclock.Interval{
			Start: simclock.Date(2016, time.July, 20),
			End:   simclock.Date(2016, time.July, 27),
		},
		Workers:    1,
		BatchSteps: 1,
		Faults:     &faults.Config{},
		Budget:     &budget.Config{Fraction: 0.5, Seed: 1},
	})
	bareSum := summarizeResult(bare)

	ref, refSvc := runObservatoryCampaign(1, 1, 1)
	refSum := summarizeResult(ref)
	if refSum != bareSum {
		t.Fatalf("attaching the observatory changed campaign results\n%s", firstDiff(bareSum, refSum))
	}
	refAlerts := renderAlerts(refSvc)
	refFed := refSvc.FedSlots()
	if refFed == 0 {
		t.Fatal("observatory fed no slots; the matrix claim is vacuous")
	}
	if refSvc.TotalAlerts() == 0 {
		t.Fatal("observatory emitted no alerts over a congested case-study window; the alert-log claim is vacuous")
	}
	checkServiceVerdicts(t, "reference", ref, refSvc)

	cells := [][3]int{
		{1, 1, 4}, {1, 4096, 1}, {1, 4096, 4},
		{8, 1, 1}, {8, 1, 4}, {8, 4096, 1}, {8, 4096, 4},
	}
	if raceEnabled || testing.Short() {
		// Race runs pay ~10× per campaign; two far-corner cells still
		// cross every axis (workers, batch, shards) against the ref.
		cells = [][3]int{{8, 4096, 4}, {8, 1, 4}}
	}
	for _, c := range cells {
		workers, batch, shards := c[0], c[1], c[2]
		label := fmt.Sprintf("workers=%d batch=%d shards=%d", workers, batch, shards)
		res, svc := runObservatoryCampaign(workers, batch, shards)
		if got := summarizeResult(res); got != refSum {
			t.Fatalf("%s: results differ from reference\n%s", label, firstDiff(refSum, got))
		}
		if got := renderAlerts(svc); got != refAlerts {
			t.Fatalf("%s: alert log differs from reference\n%s", label, firstDiff(refAlerts, got))
		}
		if svc.FedSlots() != refFed {
			t.Fatalf("%s: fed %d slots, reference fed %d", label, svc.FedSlots(), refFed)
		}
		checkServiceVerdicts(t, label, res, svc)
	}
}
