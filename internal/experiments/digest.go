package experiments

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"math"

	"afrixp/internal/levelshift"
	"afrixp/internal/timeseries"
)

func bits(f float64) uint64 { return math.Float64bits(f) }

// dumpSeries renders a series' grid values as raw IEEE bits through the
// backing-agnostic block iterator, so flat and chunked series with the
// same values render identically.
func dumpSeries(b *bytes.Buffer, s *timeseries.Series) {
	s.Each(func(_ int, vals []float64) {
		for _, v := range vals {
			fmt.Fprintf(b, "%x,", bits(v))
		}
	})
	b.WriteByte('\n')
}

// summarizeResult renders every campaign observable — series values,
// verdict scalars, shifts, events, loss batches — with floats as raw
// IEEE bits, so two summaries are equal iff the results are
// bit-identical (NaN-holed series defeat reflect.DeepEqual).
func summarizeResult(res *Result) string {
	var b bytes.Buffer
	for _, vr := range res.VPs {
		fmt.Fprintf(&b, "VP %s links=%d snaps=%d sched=%d down=%d\n",
			vr.VP.ID, len(vr.Links), len(vr.Snapshots), vr.RoundsScheduled, vr.RoundsDown)
		for _, s := range vr.Snapshots {
			fmt.Fprintf(&b, " snap at=%d truth=%d cov=%x links=%d\n",
				s.At, s.TruthNeighborCount, bits(s.Coverage), len(s.Bdrmap.Links))
		}
		for _, lr := range vr.SortedLinks() {
			att, samp, miss, skip := lr.Collector.Yield()
			lskip, lmiss := 0, 0
			if lr.lossCol != nil {
				lskip, lmiss = lr.lossCol.RoundAccounting()
			}
			fmt.Fprintf(&b, " link %v as=%d ixp=%s disc=%d case=%q farloss=%x yield=%d/%d/%d/%d lossacct=%d/%d\n",
				lr.Target, lr.FarAS, lr.ViaIXP, lr.DiscoveredAt, lr.CaseName,
				bits(lr.Collector.FarLossFraction()), att, samp, miss, skip, lskip, lmiss)
			ls := lr.Collector.Series()
			dumpSeries(&b, ls.Near)
			dumpSeries(&b, ls.Far)
			for _, thr := range res.Cfg.Thresholds {
				v := lr.Verdicts[thr]
				fmt.Fprintf(&b, "  thr=%g flag=%t nearflat=%t sym=%t cong=%t class=%d aw=%x dt=%d diur=%t amp=%x cons=%x peak=%x days=%d\n",
					thr, v.Flagged, v.NearFlat, v.Symmetric, v.Congested, v.Class,
					bits(v.AW), v.DeltaTUD, v.Diurnal.Diurnal, bits(v.Diurnal.AmplitudeMs),
					bits(v.Diurnal.Consistency), bits(v.Diurnal.PeakHour), v.Diurnal.DaysEvaluated)
				for _, r := range []levelshift.Result{v.Far, v.Near} {
					fmt.Fprintf(&b, "   base=%x shifts=", bits(r.Baseline))
					for _, cp := range r.Shifts {
						fmt.Fprintf(&b, "(%d,%x,%x,%x)", cp.Index, bits(cp.Confidence), bits(cp.Before), bits(cp.After))
					}
					b.WriteString(" events=")
					for _, e := range r.Events {
						fmt.Fprintf(&b, "(%d,%d,%x,%t)", e.Start, e.End, bits(e.Magnitude), e.OpenEnded)
					}
					b.WriteByte('\n')
				}
			}
			fmt.Fprintf(&b, "  lossbatches=%d", len(lr.LossBatches))
			for _, lb := range lr.LossBatches {
				fmt.Fprintf(&b, " (%d,%d,%d)", lb.Start, lb.Sent, lb.Lost)
			}
			b.WriteByte('\n')
			if g := lr.LossGrid(); g != nil {
				b.WriteString("  lossgrid=")
				dumpSeries(&b, g)
			}
		}
	}
	return b.String()
}

// ResultDigest returns a SHA-256 hex digest over every campaign
// observable rendered at the bit level (the same rendering the
// determinism tests compare). Two campaign runs produce the same digest
// iff their results are bit-identical — the checkpoint-restart CI smoke
// compares this digest between an uninterrupted run and a killed-and-
// resumed one.
func ResultDigest(res *Result) string {
	sum := sha256.Sum256([]byte(summarizeResult(res)))
	return fmt.Sprintf("%x", sum[:])
}
