package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"afrixp/internal/scenario"
	"afrixp/internal/simclock"
	"afrixp/internal/telemetry"
	"afrixp/internal/worldgen"
)

// runShardCampaign is the 4-day paper-world short campaign with the
// sharded engine installed.
func runShardCampaign(workers, batchSteps, shards int, tele *telemetry.Telemetry) *Result {
	return Run(Config{
		Opts: scenario.Options{Seed: 5, Scale: 0.1},
		Campaign: simclock.Interval{
			Start: simclock.Date(2016, time.July, 20),
			End:   simclock.Date(2016, time.July, 24),
		},
		Workers:    workers,
		BatchSteps: batchSteps,
		Shards:     shards,
		Telemetry:  tele,
	})
}

// TestShardedCampaignBitIdentical: sharding is a memory/scheduling
// change only — a sharded campaign must reproduce the unsharded one at
// the bit level for any shard and worker count.
func TestShardedCampaignBitIdentical(t *testing.T) {
	ref := runShortCampaignCfg(1, 1, false)
	refSum, refRep := summarizeResult(ref), renderReports(t, ref)

	for _, shards := range []int{2, 4} {
		for _, workers := range []int{1, 8} {
			res := runShardCampaign(workers, 0, shards, nil)
			if got := summarizeResult(res); got != refSum {
				t.Errorf("shards=%d workers=%d: results differ from unsharded reference\n%s",
					shards, workers, firstDiff(refSum, got))
			}
			if got := renderReports(t, res); got != refRep {
				t.Errorf("shards=%d workers=%d: reports differ from unsharded reference\n%s",
					shards, workers, firstDiff(refRep, got))
			}
		}
	}
}

// TestShardedTelemetryGauges: the sharded engine publishes per-shard
// gauges — links owned, rounds scheduled, resident series bytes — that
// must sum to the campaign totals, and the report must render them.
func TestShardedTelemetryGauges(t *testing.T) {
	tele := telemetry.New()
	res := runShardCampaign(4, 0, 4, tele)

	snap := tele.Snapshot()
	if len(snap.Engine.Shards) != 4 {
		t.Fatalf("snapshot has %d shard gauges, want 4", len(snap.Engine.Shards))
	}
	var links, rounds, resident int64
	for _, sh := range snap.Engine.Shards {
		if sh.ResidentBytes <= 0 {
			t.Errorf("shard %d: resident bytes %d, want > 0", sh.Shard, sh.ResidentBytes)
		}
		if sh.LinksOwned <= 0 {
			t.Errorf("shard %d: links owned %d, want > 0", sh.Shard, sh.LinksOwned)
		}
		links += sh.LinksOwned
		rounds += sh.Rounds
		resident += sh.ResidentBytes
	}
	var wantLinks, wantRounds int64
	for _, vr := range res.VPs {
		wantLinks += int64(len(vr.Links))
		wantRounds += int64(vr.RoundsScheduled)
	}
	if links != wantLinks {
		t.Errorf("shard gauges own %d links, campaign discovered %d", links, wantLinks)
	}
	if rounds != wantRounds {
		t.Errorf("shard gauges scheduled %d rounds, campaign scheduled %d", rounds, wantRounds)
	}

	var b bytes.Buffer
	tele.WriteReport(&b)
	if !strings.Contains(b.String(), "shard 0:") {
		t.Errorf("telemetry report lacks shard lines:\n%s", b.String())
	}

	// An unsharded campaign publishes no shard gauges.
	tele2 := telemetry.New()
	runShardCampaign(4, 0, 0, tele2)
	if n := len(tele2.Snapshot().Engine.Shards); n != 0 {
		t.Errorf("unsharded campaign published %d shard gauges, want 0", n)
	}
}

// residentBytesPrivate sums the private collectors' resident series
// bytes — the unsharded memory figure.
func residentBytesPrivate(res *Result) int64 {
	var n int64
	for _, vr := range res.VPs {
		for _, lr := range vr.SortedLinks() {
			n += int64(lr.Collector.MemBytes())
		}
	}
	return n
}

// TestShardedMemoryBounded: sealing a shard's collectors into one
// shared arena must not cost more resident series bytes per link than
// the private-arena layout (it saves the per-builder encode scratch).
func TestShardedMemoryBounded(t *testing.T) {
	ref := runShortCampaignCfg(1, 1, false)
	refResident := residentBytesPrivate(ref)
	refLinks := int64(0)
	for _, vr := range ref.VPs {
		refLinks += int64(len(vr.Links))
	}
	if refLinks == 0 || refResident == 0 {
		t.Fatal("reference campaign has no links or no resident bytes")
	}

	tele := telemetry.New()
	runShardCampaign(1, 1, 4, tele)
	var resident, links int64
	for _, sh := range tele.Snapshot().Engine.Shards {
		resident += sh.ResidentBytes
		links += sh.LinksOwned
	}
	if links != refLinks {
		t.Fatalf("sharded campaign owns %d links, reference %d", links, refLinks)
	}
	sharded := float64(resident) / float64(links)
	private := float64(refResident) / float64(refLinks)
	if sharded > private {
		t.Errorf("sharded resident bytes/link %.0f exceeds private %.0f", sharded, private)
	}
	t.Logf("bytes/link: sharded %.0f, private %.0f", sharded, private)
}

// TestGeneratedWorldShardMatrix is the continent-scale acceptance
// gate: a 100×-scale generated world (≥ 30 IXPs, ≥ 10^4 interdomain
// links) runs the sharded campaign bit-identically across the full
// Workers × BatchSteps × Shards matrix, and the sharded runs stay
// within the unsharded memory-per-link figure. Probing is truncated to
// a deterministic 48-VP prefix to keep the 8-cell matrix tractable;
// world-scale assertions run on the full generated world. Skipped in
// -short and under the race detector (scripts/ci.sh races the 10×
// generated-world smoke instead).
func TestGeneratedWorldShardMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("100× matrix skipped in -short")
	}
	if raceEnabled {
		t.Skip("100× matrix skipped under race detector")
	}

	st := worldgen.StatsOf(worldgen.Generate(worldgen.Options{Seed: 11, Scale: 100}))
	if st.IXPs < 30 {
		t.Fatalf("100× world has %d IXPs, want ≥ 30", st.IXPs)
	}
	if st.InterdomainLinks < 10_000 {
		t.Fatalf("100× world has %d interdomain links, want ≥ 10^4", st.InterdomainLinks)
	}

	// Each campaign run advances its world's event clock, so every run
	// regenerates the (deterministic) world rather than sharing one.
	genWorld := func() *scenario.World {
		w := worldgen.Generate(worldgen.Options{Seed: 11, Scale: 100})
		if len(w.VPs) > 48 {
			w.VPs = w.VPs[:48]
		}
		return w
	}

	run := func(workers, batch, shards int, tele *telemetry.Telemetry) *Result {
		return Run(Config{
			BuildWorld: genWorld,
			Campaign: simclock.Interval{
				Start: simclock.Date(2016, time.July, 20),
				End:   simclock.Date(2016, time.July, 21),
			},
			Workers:    workers,
			BatchSteps: batch,
			Shards:     shards,
			Telemetry:  tele,
		})
	}

	ref := run(1, 1, 1, nil)
	probed := 0
	for _, vr := range ref.VPs {
		probed += len(vr.Links)
	}
	if probed < 2000 {
		t.Fatalf("campaign probed %d links, want ≥ 2000", probed)
	}
	refSum := summarizeResult(ref)
	privatePerLink := float64(residentBytesPrivate(ref)) / float64(probed)

	for _, workers := range []int{1, 8} {
		for _, batch := range []int{1, 4096} {
			for _, shards := range []int{1, 4} {
				if workers == 1 && batch == 1 && shards == 1 {
					continue // the reference itself
				}
				tele := telemetry.New()
				res := run(workers, batch, shards, tele)
				if got := summarizeResult(res); got != refSum {
					t.Fatalf("workers=%d batch=%d shards=%d: results differ from reference\n%s",
						workers, batch, shards, firstDiff(refSum, got))
				}
				if shardSnaps := tele.Snapshot().Engine.Shards; len(shardSnaps) > 0 {
					var resident, links int64
					for _, sh := range shardSnaps {
						resident += sh.ResidentBytes
						links += sh.LinksOwned
					}
					if perLink := float64(resident) / float64(links); perLink > privatePerLink {
						t.Errorf("workers=%d batch=%d shards=%d: %.0f resident bytes/link exceeds private %.0f",
							workers, batch, shards, perLink, privatePerLink)
					}
				}
			}
		}
	}
}

// TestGeneratedWorldRecall round-trips the planted ground truth: a
// short campaign over a 10× generated world must discover the
// annotated links and detect a solid majority of the planted
// congestion at the paper's 10 ms operating point. The window spans
// seven days because the diurnal gate needs MinDays (5) evaluable
// days of folded profile before it will confirm a recurring pattern.
func TestGeneratedWorldRecall(t *testing.T) {
	res := Run(Config{
		BuildWorld: func() *scenario.World {
			return worldgen.Generate(worldgen.Options{Seed: 7, Scale: 10})
		},
		Campaign: simclock.Interval{
			Start: simclock.Date(2016, time.July, 20),
			End:   simclock.Date(2016, time.July, 27),
		},
		Workers: 8,
		Shards:  2,
	})
	truth, detected, _ := budgetRecall(res)
	if truth < 10 {
		t.Fatalf("campaign saw %d annotated truth links, want ≥ 10 (planted ground truth not discovered)", truth)
	}
	recall := float64(detected) / float64(truth)
	t.Logf("planted ground truth: %d/%d detected (recall %.2f)", detected, truth, recall)
	if recall < 0.6 {
		t.Errorf("recall %.2f below 0.6: planted congestion is not detectable", recall)
	}
}
