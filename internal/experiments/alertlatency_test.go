package experiments

import (
	"testing"
	"time"

	"afrixp/internal/scenario"
)

func TestAlertLatency(t *testing.T) {
	rows, err := RunAlertLatency(scenario.Options{Seed: 17, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	byCase := map[string]AlertLatency{}
	for _, r := range rows {
		byCase[r.Case] = r
	}
	np := byCase["QCELL-NETPAGE"]
	if !np.Alerted {
		t.Fatal("NETPAGE congestion never alerted")
	}
	if np.OnsetLag > 10*24*time.Hour {
		t.Fatalf("NETPAGE onset lag %v", np.OnsetLag)
	}
	if !np.Cleared {
		t.Fatal("NETPAGE mitigation never confirmed")
	}
	if np.ClearedLag > 14*24*time.Hour {
		t.Fatalf("NETPAGE cleared lag %v", np.ClearedLag)
	}
	gh := byCase["GIXA-GHANATEL"]
	if !gh.Alerted {
		t.Fatal("GHANATEL congestion never alerted")
	}
	if gh.OnsetLag > 12*24*time.Hour {
		t.Fatalf("GHANATEL onset lag %v", gh.OnsetLag)
	}
	if gh.Cleared {
		t.Fatal("GHANATEL was never mitigated in-window")
	}
}
