package experiments

import (
	"testing"
	"time"

	"afrixp/internal/scenario"
	"afrixp/internal/simclock"
)

func TestAlertLatency(t *testing.T) {
	rows, err := RunAlertLatency(scenario.Options{Seed: 17, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	byCase := map[string]AlertLatency{}
	for _, r := range rows {
		byCase[r.Case] = r
	}
	np := byCase["QCELL-NETPAGE"]
	if !np.Alerted {
		t.Fatal("NETPAGE congestion never alerted")
	}
	if np.OnsetLag > 10*24*time.Hour {
		t.Fatalf("NETPAGE onset lag %v", np.OnsetLag)
	}
	if !np.Cleared {
		t.Fatal("NETPAGE mitigation never confirmed")
	}
	if np.ClearedLag > 14*24*time.Hour {
		t.Fatalf("NETPAGE cleared lag %v", np.ClearedLag)
	}
	gh := byCase["GIXA-GHANATEL"]
	if !gh.Alerted {
		t.Fatal("GHANATEL congestion never alerted")
	}
	if gh.OnsetLag > 12*24*time.Hour {
		t.Fatalf("GHANATEL onset lag %v", gh.OnsetLag)
	}
	if gh.Cleared {
		t.Fatal("GHANATEL was never mitigated in-window")
	}
}

// TestStreamAlertLatency runs the observatory's latency experiment at
// full and half probe budget over the 10× generated world: planted
// congestion must be discovered and alerted on within the campaign
// window, and starving the prober must not make notification faster.
func TestStreamAlertLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("10x-world latency experiment skipped in -short")
	}
	rows := RunStreamAlertLatency([]float64{1, 0.5})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	week := 7 * 24 * time.Hour
	for _, r := range rows {
		t.Logf("budget %.0f%%: %d/%d alerted, p50 %v, p95 %v",
			100*r.Budget, r.Alerted, r.Truth, r.P50, r.P95)
		if r.Truth < 10 {
			t.Fatalf("budget %v: campaign saw %d annotated truth links, want ≥ 10", r.Budget, r.Truth)
		}
		if r.Alerted*2 < r.Truth {
			t.Errorf("budget %v: only %d/%d truth links alerted", r.Budget, r.Alerted, r.Truth)
		}
		if r.P50 <= 0 || r.P50 > simclock.Duration(week) {
			t.Errorf("budget %v: p50 lag %v outside (0, one week]", r.Budget, r.P50)
		}
		if r.P95 < r.P50 {
			t.Errorf("budget %v: p95 %v < p50 %v", r.Budget, r.P95, r.P50)
		}
	}
}
