package experiments

import (
	"math"
	"testing"
	"time"

	"afrixp/internal/budget"
	"afrixp/internal/faults"
	"afrixp/internal/scenario"
	"afrixp/internal/simclock"
	"afrixp/internal/timeseries"
)

// runFaultCampaign is runBatchCampaign with the default fault plan
// injected: VP outages, ICMP blackouts, duty-cycle rate limiting, and
// link flaps all land inside the 4-day window.
func runFaultCampaign(workers, batchSteps int) *Result {
	return Run(Config{
		Opts: scenario.Options{Seed: 5, Scale: 0.1},
		Campaign: simclock.Interval{
			Start: simclock.Date(2016, time.July, 20),
			End:   simclock.Date(2016, time.July, 24),
		},
		Workers:    workers,
		BatchSteps: batchSteps,
		Faults:     &faults.Config{},
	})
}

// TestFaultCampaignBitIdentical extends the batch planner's guarantee
// to fault injection: a campaign full of VP outages, ICMP blackouts,
// rate-limit duty cycles, and link flaps must produce bit-identical
// results across Workers ∈ {1, 8} × BatchSteps ∈ {1, max}. Fault
// boundaries are scenario events (batch barriers) and every fault is
// a pure function of virtual time, so neither the worker interleaving
// nor the batch geometry can reach the numbers.
func TestFaultCampaignBitIdentical(t *testing.T) {
	perStep := runFaultCampaign(1, 1)

	// Non-vacuity: the plan must actually have taken VPs down and the
	// campaign must still have discovered links.
	links, down := 0, 0
	for _, vr := range perStep.VPs {
		links += len(vr.Links)
		down += vr.RoundsDown
	}
	if links == 0 {
		t.Fatal("fault campaign discovered no links; equivalence check is vacuous")
	}
	if down == 0 {
		t.Fatal("no VP-outage rounds were skipped; fault plan is dormant")
	}
	if perStep.Faults == nil || len(perStep.Faults.Faults) == 0 {
		t.Fatal("no fault schedule on the result")
	}

	want := summarizeResult(perStep)
	for _, tc := range []struct{ workers, batch int }{
		{1, 4096}, {8, 1}, {8, 4096},
	} {
		got := summarizeResult(runFaultCampaign(tc.workers, tc.batch))
		if want != got {
			t.Errorf("fault campaign differs at workers=%d batch=%d\n%s",
				tc.workers, tc.batch, firstDiff(want, got))
		}
	}
}

// TestFaultCampaignOutageGapsFlow drives the acceptance scenario: a VP
// outage must leave NaN gaps in the per-link series, those gaps must
// flow through AnalyzeLinkSweep without panics (Run analyzes every
// link), and the missing rounds must surface in the per-VP sample
// yield accounting.
func TestFaultCampaignOutageGapsFlow(t *testing.T) {
	res := runFaultCampaign(2, 4096)

	outages := res.Faults.ByKind(faults.VPOutage)
	if len(outages) == 0 {
		t.Fatal("no VP outage episodes")
	}
	yields := res.Yields()
	byVP := make(map[string]VPYield, len(yields))
	for _, y := range yields {
		byVP[y.VP] = y
	}

	checkedGaps := false
	for _, f := range outages {
		vr, ok := res.VPByID(f.Target)
		if !ok || len(vr.Links) == 0 {
			continue
		}
		y := byVP[f.Target]
		if y.DownSteps == 0 || y.Uptime >= 1 {
			t.Fatalf("%s: outage episode %v but uptime %.3f (down %d)",
				f.Target, f.Window, y.Uptime, y.DownSteps)
		}
		if y.Missed == 0 || y.SampleYield >= 1 {
			t.Fatalf("%s: no missed rounds in the yield accounting: %+v", f.Target, y)
		}
		// Every link discovered before the outage must show an
		// unbroken NaN gap across the episode's interior bins.
		for _, lr := range vr.SortedLinks() {
			if lr.DiscoveredAt >= f.Window.Start {
				continue
			}
			far := lr.Collector.Series().Far
			gapped := 0
			for i := 0; i < far.Len(); i++ {
				at := far.TimeAt(i)
				// Interior bins only: edge bins can mix up/down steps.
				if at.Add(far.Step) <= f.Window.End && at >= f.Window.Start {
					if !timeseries.IsMissing(far.ValueAt(i)) {
						t.Fatalf("%s %v: sample %v at %v inside outage %v",
							f.Target, lr.Target, far.ValueAt(i), at, f.Window)
					}
					gapped++
				}
			}
			if gapped > 0 {
				checkedGaps = true
			}
			// The NaN-holed series went through the sweep: verdicts
			// exist and are finite where numbers are promised.
			for thr, v := range lr.Verdicts {
				if math.IsNaN(v.Diurnal.Consistency) || math.IsNaN(v.AW) {
					t.Fatalf("%s %v thr=%g: NaN leaked into the verdict", f.Target, lr.Target, thr)
				}
			}
			if len(lr.Verdicts) != len(res.Cfg.Thresholds) {
				t.Fatalf("%s %v: %d verdicts for %d thresholds",
					f.Target, lr.Target, len(lr.Verdicts), len(res.Cfg.Thresholds))
			}
		}
	}
	if !checkedGaps {
		t.Fatal("no outage overlapped a pre-discovered link's series; gap check is vacuous")
	}
}

// TestOutageBudgetOverlapPartition pins the Skipped/Missed partition
// when a budget-skipped round coincides with a VP outage on the same
// (step, link): the budget gate wins, so each scheduled round lands in
// exactly one of RoundSkipped/RoundMissed and VPYield.SampleYield
// never double-counts the overlap. The fault window is confined to the
// campaign's last day so the 25% budget has recomputed (and parked
// flat links) long before the first outage — the regression this pins
// counted every down-step round as missed for every link, budget
// notwithstanding.
func TestOutageBudgetOverlapPartition(t *testing.T) {
	campaign := simclock.Interval{
		Start: simclock.Date(2016, time.July, 20),
		End:   simclock.Date(2016, time.July, 24),
	}
	res := Run(Config{
		Opts:     scenario.Options{Seed: 5, Scale: 0.1},
		Campaign: campaign,
		Workers:  8,
		Faults: &faults.Config{Window: simclock.Interval{
			Start: simclock.Date(2016, time.July, 23),
			End:   simclock.Date(2016, time.July, 24),
		}},
		Budget: &budget.Config{Fraction: 0.25, Seed: 1, RecomputeEvery: 6 * time.Hour},
	})

	outages := res.Faults.ByKind(faults.VPOutage)
	if len(outages) == 0 {
		t.Fatal("no VP outage episodes in the confined window; overlap check is vacuous")
	}

	overlapChecked := false
	for _, f := range outages {
		vr, ok := res.VPByID(f.Target)
		if !ok || len(vr.Links) == 0 || vr.RoundsDown == 0 {
			continue
		}
		// Partition sanity: rounds land in exactly one of
		// attempted/missed/skipped, so two links watched over the same
		// steps must account for the same total.
		totals := make(map[simclock.Time]int)
		for _, lr := range vr.SortedLinks() {
			att, _, miss, skip := lr.Collector.Yield()
			sum := att + miss + skip
			if prev, seen := totals[lr.DiscoveredAt]; seen && prev != sum {
				t.Fatalf("%s %v: rounds accounted %d, sibling discovered at the same time accounted %d — a round landed in two buckets",
					f.Target, lr.Target, sum, prev)
			}
			totals[lr.DiscoveredAt] = sum
		}
		// The overlap itself: the budget parked links before the
		// outage, so some down-step rounds are budget skips, not
		// misses. Under the double-count bug every link discovered
		// before the outage showed missed == RoundsDown.
		for _, lr := range vr.SortedLinks() {
			if lr.DiscoveredAt >= f.Window.Start {
				continue
			}
			_, _, miss, skip := lr.Collector.Yield()
			if skip > 0 && miss < vr.RoundsDown {
				overlapChecked = true
			}
			if miss > vr.RoundsDown {
				t.Fatalf("%s %v: %d missed rounds exceed the VP's %d down rounds",
					f.Target, lr.Target, miss, vr.RoundsDown)
			}
		}
	}
	if !overlapChecked {
		t.Fatal("no link showed a budget skip absorbing a down step; overlap partition check is vacuous")
	}
}
