package experiments

import (
	"fmt"
	"time"

	"afrixp/internal/analysis"
	"afrixp/internal/levelshift"
	"afrixp/internal/report"
	"afrixp/internal/simclock"
)

// Table1Row is one VP's threshold-sensitivity counts: flagged links
// (and, parenthesized in the paper, those with a recurring diurnal
// pattern) per threshold.
type Table1Row struct {
	VP      string
	Links   int
	Flagged map[float64]int
	Diurnal map[float64]int
}

// Table1 computes the sensitivity analysis of §5.2.
func Table1(res *Result) []Table1Row {
	rows := make([]Table1Row, 0, len(res.VPs)+1)
	total := Table1Row{VP: "All VPs",
		Flagged: map[float64]int{}, Diurnal: map[float64]int{}}
	for _, vr := range res.VPs {
		row := Table1Row{VP: vr.VP.ID, Links: len(vr.Links),
			Flagged: map[float64]int{}, Diurnal: map[float64]int{}}
		for _, lr := range vr.SortedLinks() {
			for thr, v := range lr.Verdicts {
				if v.Flagged {
					row.Flagged[thr]++
					total.Flagged[thr]++
					if v.Diurnal.Diurnal {
						row.Diurnal[thr]++
						total.Diurnal[thr]++
					}
				}
			}
		}
		total.Links += row.Links
		rows = append(rows, row)
	}
	return append(rows, total)
}

// Table1Report renders the rows paper-style.
func Table1Report(res *Result) *report.Table {
	t := &report.Table{
		Title:  "Table 1: sensitivity of the congestion-labeling threshold (flagged links, diurnal in parentheses)",
		Header: []string{"VP", "links"},
	}
	for _, thr := range res.Cfg.Thresholds {
		t.Header = append(t.Header, fmt.Sprintf("%g ms", thr))
	}
	for _, row := range Table1(res) {
		cells := []string{row.VP, fmt.Sprint(row.Links)}
		for _, thr := range res.Cfg.Thresholds {
			cells = append(cells, fmt.Sprintf("%d (%d)", row.Flagged[thr], row.Diurnal[thr]))
		}
		t.AddRow(cells...)
	}
	return t
}

// Table2Row is one VP snapshot of the Table 2 evolution.
type Table2Row struct {
	VP            string
	IXP           string
	At            simclock.Time
	Links         int
	PeeringLinks  int
	CongestedPeer int
	Neighbors     int
	Peers         int
	Coverage      float64
}

// congestionWindow is how far around a snapshot congestion events
// count as "congested at the snapshot".
const congestionWindow = 21 * 24 * time.Hour

// Table2 computes the per-VP evolution rows.
func Table2(res *Result) []Table2Row {
	defaultThr := 10.0
	var rows []Table2Row
	for _, vr := range res.VPs {
		for _, snap := range vr.Snapshots {
			row := Table2Row{
				VP: vr.VP.ID, IXP: vr.VP.IXP, At: snap.At,
				Links:        len(snap.Bdrmap.Links),
				PeeringLinks: len(snap.Bdrmap.PeeringLinks()),
				Neighbors:    len(snap.Bdrmap.Neighbors),
				Peers:        len(snap.Bdrmap.Peers),
				Coverage:     snap.Coverage,
			}
			win := simclock.Interval{Start: snap.At.Add(-congestionWindow),
				End: snap.At.Add(congestionWindow)}
			for _, lr := range vr.SortedLinks() {
				v, ok := lr.Verdicts[defaultThr]
				if !ok || !v.Congested {
					continue
				}
				if eventsOverlap(v.Far.Events, win) {
					row.CongestedPeer++
				}
			}
			rows = append(rows, row)
		}
	}
	return rows
}

func eventsOverlap(events []levelshift.Event, win simclock.Interval) bool {
	for _, e := range events {
		if e.Start < win.End && e.End > win.Start {
			return true
		}
	}
	return false
}

// Table2Report renders the evolution table.
func Table2Report(res *Result) *report.Table {
	t := &report.Table{
		Title: "Table 2: evolution of discovered links, congested links, and neighbors per VP",
		Header: []string{"VP", "IXP", "snapshot", "links (peering)",
			"congested", "neighbors (peers)", "bdrmap coverage"},
	}
	for _, r := range Table2(res) {
		t.AddRow(r.VP, r.IXP, r.At.Wall().Format("2006-01-02"),
			fmt.Sprintf("%d (%d)", r.Links, r.PeeringLinks),
			fmt.Sprint(r.CongestedPeer),
			fmt.Sprintf("%d (%d)", r.Neighbors, r.Peers),
			fmt.Sprintf("%.1f%%", 100*r.Coverage))
	}
	return t
}

// Headline computes the §6.1 summary: the fraction of discovered
// links that experienced congestion, overall and per VP.
type HeadlineRow struct {
	VP               string
	Links, Congested int
	Fraction         float64
}

// Headline computes the congested-fraction summary at the 10 ms
// threshold.
func Headline(res *Result) ([]HeadlineRow, float64) {
	var rows []HeadlineRow
	links, congested := 0, 0
	for _, vr := range res.VPs {
		row := HeadlineRow{VP: vr.VP.ID, Links: len(vr.Links)}
		for _, lr := range vr.SortedLinks() {
			if v, ok := lr.Verdicts[10]; ok && v.Congested {
				row.Congested++
			}
		}
		if row.Links > 0 {
			row.Fraction = float64(row.Congested) / float64(row.Links)
		}
		links += row.Links
		congested += row.Congested
		rows = append(rows, row)
	}
	if links == 0 {
		return rows, 0
	}
	return rows, float64(congested) / float64(links)
}

// BdrmapAccuracy summarizes neighbor-discovery coverage across all
// snapshots — the paper reports 96.2 % on average.
func BdrmapAccuracy(res *Result) float64 {
	var sum float64
	n := 0
	for _, vr := range res.VPs {
		for _, s := range vr.Snapshots {
			sum += s.Coverage
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Waveform summarizes one case link's sanitized level-shift waveform.
type Waveform struct {
	Case     string
	AW       float64
	DeltaTUD simclock.Duration
	Events   int
	Class    string
}

// waveformWindows restricts a case link's A_w / Δt_UD computation to
// the span the paper quotes — GIXA–GHANATEL's 27.9 ms / ~20 h come
// from "the level shifts that occurred periodically between
// 15/03/2016 and 14/06/2016" (phase 1 only).
var waveformWindows = map[string]simclock.Interval{
	"GIXA-GHANATEL": {Start: simclock.Date(2016, time.March, 15), End: simclock.Date(2016, time.June, 14)},
	"QCELL-NETPAGE": {Start: simclock.Date(2016, time.February, 29), End: simclock.Date(2016, time.April, 28)},
}

// Waveforms computes A_w and Δt_UD for every case-study link at the
// 10 ms operating point, windowed to the paper's quoted spans where
// applicable.
func Waveforms(res *Result) []Waveform {
	var out []Waveform
	for _, vr := range res.VPs {
		for _, lr := range vr.SortedLinks() {
			if lr.CaseName == "" {
				continue
			}
			v, ok := lr.Verdicts[10]
			if !ok {
				continue
			}
			if win, ok := waveformWindows[lr.CaseName]; ok {
				win = clamp(win, res.Cfg.Campaign)
				if win.Duration() > 0 {
					ls := lr.Collector.Series()
					ls.Near = ls.Near.Slice(win.Start, win.End)
					ls.Far = ls.Far.Slice(win.Start, win.End)
					acfg := analysis.DefaultConfig()
					wv := analysis.AnalyzeLink(ls, acfg)
					if wv.Congested {
						// Keep the whole-campaign classification; the
						// window refines only the waveform statistics.
						wv.Class = v.Class
						v = wv
					}
				}
			}
			out = append(out, Waveform{
				Case: lr.CaseName, AW: v.AW, DeltaTUD: v.DeltaTUD,
				Events: len(v.Far.Events), Class: v.Class.String(),
			})
		}
	}
	return out
}
