package experiments

import (
	"fmt"

	"afrixp/internal/budget"
	"afrixp/internal/interview"
	"afrixp/internal/report"
	"afrixp/internal/simclock"
)

// BudgetPoint is one row of the probe-budget sweep: what a campaign
// run at the given fraction of the full probing rate still detects.
type BudgetPoint struct {
	// Fraction is the configured probe budget (1 = full rate).
	Fraction float64
	// Rounds is the number of per-link probe rounds actually attempted
	// (budget skips and outage misses excluded); Skipped counts the
	// rounds the scheduler saved.
	Rounds, Skipped int
	// SentFrac is Rounds / the full-rate campaign's Rounds.
	SentFrac float64
	// TruthLinks is the number of discovered links whose ground-truth
	// annotation says the data plane was really congested; Detected is
	// how many of those the analysis labels Congested at the paper's
	// 10 ms operating point.
	TruthLinks, Detected int
	// Recall is Detected / TruthLinks; RecallVsFull normalizes by the
	// full-rate campaign's recall.
	Recall, RecallVsFull float64
	// MeanDetectDelay is the mean virtual time from a truth link's
	// first congestion onset (clamped to campaign start) to the first
	// detected far-end event, over links both runs detected.
	MeanDetectDelay simclock.Duration
	// Table1Fidelity is 1 − L1(flagged-count cells vs full rate) /
	// Σ(full-rate cells): how closely the budgeted Table 1 reproduces
	// the full-rate one (1 = identical).
	Table1Fidelity float64
}

// budgetRecall scores detection against the scenario's ground-truth
// interview annotations at the paper's 10 ms operating point, and
// accumulates time-to-detect over detected truth links.
func budgetRecall(res *Result) (truth, detected int, meanDelay simclock.Duration) {
	var delaySum simclock.Duration
	for _, vr := range res.VPs {
		for _, lr := range vr.SortedLinks() {
			ann, ok := res.World.Interviews.Find(vr.VP.ID, lr.Target)
			if !ok || !ann.CongestedTruth {
				continue
			}
			truth++
			v, ok := lr.Verdicts[10]
			if !ok || !v.Congested {
				continue
			}
			detected++
			if len(v.Far.Events) == 0 {
				continue
			}
			onset := res.Cfg.Campaign.Start
			for _, ph := range ann.Phases {
				if ph.Cause != interview.CauseNone && ph.Cause != "" {
					if ph.Interval.Start > onset {
						onset = ph.Interval.Start
					}
					break
				}
			}
			if d := v.Far.Events[0].Start.Sub(onset); d > 0 {
				delaySum += d
			}
		}
	}
	if detected > 0 {
		meanDelay = delaySum / simclock.Duration(detected)
	}
	return truth, detected, meanDelay
}

// attemptedRounds sums per-link rounds attempted and budget-skipped.
func attemptedRounds(res *Result) (rounds, skipped int) {
	for _, y := range res.Yields() {
		rounds += y.Rounds
		skipped += y.Skipped
	}
	return rounds, skipped
}

// table1Fidelity compares flagged-link counts cell by cell (per VP ×
// threshold, "All VPs" row excluded) between a budgeted and the
// full-rate campaign.
func table1Fidelity(budgeted, full *Result) float64 {
	br, fr := Table1(budgeted), Table1(full)
	var diff, tot float64
	for i := range fr {
		if fr[i].VP == "All VPs" {
			continue
		}
		for _, thr := range full.Cfg.Thresholds {
			f := fr[i].Flagged[thr]
			b := 0
			if i < len(br) {
				b = br[i].Flagged[thr]
			}
			if d := f - b; d >= 0 {
				diff += float64(d)
			} else {
				diff -= float64(d)
			}
			tot += float64(f)
		}
	}
	if tot == 0 {
		return 1
	}
	fid := 1 - diff/tot
	if fid < 0 {
		fid = 0
	}
	return fid
}

// RunBudgetSweep runs the campaign at full rate and at each budget
// fraction, and scores every run against ground truth and against the
// full-rate baseline. Every positive fraction goes through the budget
// scheduler — a fraction of 1 (or above, clamped) runs it at full
// spend, so the sweep's 100 % row exercises the same code path as
// 99.9 % instead of silently bypassing the scheduler; only
// non-positive fractions disable it. base.Budget carries the scheduler
// tuning (seed, cadence, weights); its Fraction is overridden per
// point. The returned slice is ordered as given, with the full-rate
// reference prepended if the list doesn't already lead with it.
func RunBudgetSweep(base Config, fractions []float64) []BudgetPoint {
	bcfg := budget.Config{}
	if base.Budget != nil {
		bcfg = *base.Budget
	}
	if len(fractions) == 0 {
		fractions = []float64{1, 0.5, 0.25, 0.1}
	}
	if !(fractions[0] >= 1 || fractions[0] <= 0) {
		fractions = append([]float64{1}, fractions...)
	}

	run := func(frac float64) *Result {
		cfg := base
		if frac > 0 {
			bc := bcfg
			bc.Fraction = frac
			cfg.Budget = &bc
		} else {
			cfg.Budget = nil
		}
		return Run(cfg)
	}

	full := run(fractions[0])
	fullRounds, _ := attemptedRounds(full)
	fullTruth, fullDetected, _ := budgetRecall(full)

	points := make([]BudgetPoint, 0, len(fractions))
	for i, frac := range fractions {
		res := full
		if i > 0 {
			res = run(frac)
		}
		p := BudgetPoint{Fraction: frac}
		if frac > 1 {
			p.Fraction = 1
		}
		p.Rounds, p.Skipped = attemptedRounds(res)
		if fullRounds > 0 {
			p.SentFrac = float64(p.Rounds) / float64(fullRounds)
		}
		var delay simclock.Duration
		p.TruthLinks, p.Detected, delay = budgetRecall(res)
		p.MeanDetectDelay = delay
		if p.TruthLinks > 0 {
			p.Recall = float64(p.Detected) / float64(p.TruthLinks)
		}
		if fullTruth > 0 && fullDetected > 0 {
			fullRecall := float64(fullDetected) / float64(fullTruth)
			p.RecallVsFull = p.Recall / fullRecall
		}
		p.Table1Fidelity = table1Fidelity(res, full)
		points = append(points, p)
	}
	return points
}

// BudgetSweepReport renders the sweep as a table: probe spend,
// ground-truth recall, time-to-detect, and Table-1 fidelity per
// budget fraction.
func BudgetSweepReport(points []BudgetPoint) *report.Table {
	t := &report.Table{
		Title: "Probe budget sweep: detection vs. probing spend (10 ms operating point)",
		Header: []string{"budget", "rounds", "sent frac", "recall",
			"vs full", "mean detect delay", "table1 fidelity"},
	}
	for _, p := range points {
		t.AddRow(
			fmt.Sprintf("%.0f%%", 100*p.Fraction),
			fmt.Sprint(p.Rounds),
			fmt.Sprintf("%.3f", p.SentFrac),
			fmt.Sprintf("%d/%d", p.Detected, p.TruthLinks),
			fmt.Sprintf("%.3f", p.RecallVsFull),
			fmt.Sprint(p.MeanDetectDelay),
			fmt.Sprintf("%.3f", p.Table1Fidelity),
		)
	}
	return t
}
