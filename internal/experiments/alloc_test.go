package experiments

import (
	"testing"
	"time"

	"afrixp/internal/analysis"
	"afrixp/internal/faults"
	"afrixp/internal/loss"
	"afrixp/internal/prober"
	"afrixp/internal/scenario"
	"afrixp/internal/simclock"
)

// TestSteadyStateProbeStepZeroAlloc pins the engine's allocation diet:
// once discovery has run and every scratch buffer is warm, a quiescent
// probing step — the batched queue advance, a frozen TSLP round per
// link, collector and loss-batch recording — must not touch the heap
// at all. Any regression here multiplies by the ~115k steps of a
// full-period campaign.
func TestSteadyStateProbeStepZeroAlloc(t *testing.T) {
	w := scenario.Paper(scenario.Options{Seed: 5, Scale: 0.1})
	campaign := simclock.Interval{
		Start: simclock.Date(2016, time.July, 20),
		End:   simclock.Date(2016, time.July, 24),
	}
	step := 5 * time.Minute

	// Faults configured but dormant: the plan occupies early July while
	// probing runs July 20–24, so every step still pays the outage
	// lookup and the ICMP-silence schedules installed on the case-link
	// routers — and none of it may allocate.
	sched := faults.Inject(w, campaign, faults.Config{Window: simclock.Interval{
		Start: simclock.Date(2016, time.July, 1),
		End:   simclock.Date(2016, time.July, 10),
	}})

	// One prober on a VP with case links, probing each of them — the
	// same per-(step, link) work the campaign's pool.run performs.
	var pr *prober.Prober
	var collectors []*analysis.Collector
	var tslps []*prober.TSLP
	var outage *faults.Outage
	for _, vp := range w.VPs {
		if len(vp.CaseLinks) == 0 {
			continue
		}
		outage = sched.VPOutage(vp.ID)
		pr = prober.New(w.Net, vp.Node, prober.Config{Name: vp.Monitor})
		for _, target := range vp.CaseLinks {
			ts, err := pr.NewTSLP(target)
			if err != nil {
				t.Fatalf("NewTSLP(%v): %v", target, err)
			}
			tslps = append(tslps, ts)
			collectors = append(collectors, analysis.NewCollector(ts,
				analysis.CollectorConfig{Campaign: campaign, Step: step}))
		}
		break
	}
	if pr == nil {
		t.Fatal("no VP with case links in the paper scenario")
	}

	var lossCol loss.Collector
	lossCol.Reserve(64)

	w.AdvanceTo(campaign.Start)
	at := campaign.Start
	steps := make([]simclock.Time, 1)
	round := func() {
		steps[0] = at
		w.Net.AdvanceQueuesBatch(steps)
		// The engine's outage gate runs on every step, dormant or not.
		if outage.Down(at) {
			at = at.Add(step)
			return
		}
		pr.SetBatchStep(0)
		for _, c := range collectors {
			c.RoundFrozen(at)
		}
		_, farLost := tslps[0].LossRoundFrozen(at)
		lossCol.Record(at, farLost)
		pr.SetBatchStep(-1)
		at = at.Add(step)
	}
	// Warm up: the first rounds size the per-queue frontier tables and
	// any lazily-grown scratch.
	for i := 0; i < 8; i++ {
		round()
	}
	if avg := testing.AllocsPerRun(200, round); avg != 0 {
		t.Errorf("steady-state probing step makes %v heap allocations; want 0", avg)
	}
}
