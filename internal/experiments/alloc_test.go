package experiments

import (
	"testing"
	"time"

	"afrixp/internal/analysis"
	"afrixp/internal/budget"
	"afrixp/internal/faults"
	"afrixp/internal/loss"
	"afrixp/internal/netsim"
	"afrixp/internal/observatory"
	"afrixp/internal/prober"
	"afrixp/internal/scenario"
	"afrixp/internal/simclock"
	"afrixp/internal/telemetry"
	"afrixp/internal/tschunk"
)

// TestSteadyStateProbeStepZeroAlloc pins the engine's allocation diet:
// once discovery has run and every scratch buffer is warm, a quiescent
// probing step — the batched queue advance, a frozen TSLP round per
// link, collector and loss-batch recording, and the full telemetry
// bill (hot-path counting plus the barrier republication) — must not
// touch the heap at all. Any regression here multiplies by the ~115k
// steps of a full-period campaign.
func TestSteadyStateProbeStepZeroAlloc(t *testing.T) {
	w := scenario.Paper(scenario.Options{Seed: 5, Scale: 0.1})
	campaign := simclock.Interval{
		Start: simclock.Date(2016, time.July, 20),
		End:   simclock.Date(2016, time.July, 24),
	}
	step := 5 * time.Minute

	// Faults configured but dormant: the plan occupies early July while
	// probing runs July 20–24, so every step still pays the outage
	// lookup and the ICMP-silence schedules installed on the case-link
	// routers — and none of it may allocate.
	sched := faults.Inject(w, campaign, faults.Config{Window: simclock.Interval{
		Start: simclock.Date(2016, time.July, 1),
		End:   simclock.Date(2016, time.July, 10),
	}})

	// One prober on a VP with case links, probing each of them — the
	// same per-(step, link) work the campaign's pool.run performs. The
	// collectors seal into one shared arena, the sharded engine's
	// per-shard memory layout, so the shared-slab append path is under
	// the zero-alloc claim too.
	arena := tschunk.NewArena(0)
	var pr *prober.Prober
	var collectors []*analysis.Collector
	var tslps []*prober.TSLP
	var outage *faults.Outage
	// Streaming observatory attached, as the engine attaches it: the
	// barrier-time detector feed (finalized-slot copy, rank-CUSUM and
	// diurnal-fold updates, alert-ring append) joins the per-round bill
	// and must stay off the heap with no subscribers connected.
	svc := observatory.New(observatory.Config{})
	for _, vp := range w.VPs {
		if len(vp.CaseLinks) == 0 {
			continue
		}
		outage = sched.VPOutage(vp.ID)
		pr = prober.New(w.Net, vp.Node, prober.Config{Name: vp.Monitor})
		for _, target := range vp.CaseLinks {
			ts, err := pr.NewTSLP(target)
			if err != nil {
				t.Fatalf("NewTSLP(%v): %v", target, err)
			}
			tslps = append(tslps, ts)
			col := analysis.NewCollector(ts,
				analysis.CollectorConfig{Campaign: campaign, Step: step, Arena: arena})
			collectors = append(collectors, col)
			svc.Watch(vp.ID, target, col, "", false)
		}
		break
	}
	if pr == nil {
		t.Fatal("no VP with case links in the paper scenario")
	}

	// Probe-budget scheduler installed at a deliberately tight
	// recompute cadence (30 min = every 6 steps), so the measured
	// window crosses dozens of barrier recomputes: the Skip gate, the
	// Observe tap, and the RecomputeAt re-ranking must all stay off
	// the heap once the rank scratch is warm.
	bsched := budget.New(budget.Config{
		Fraction: 0.5, Seed: 1, RecomputeEvery: 30 * time.Minute,
	}, campaign)
	bv := bsched.AddVP()
	for range collectors {
		bv.AddLink()
	}
	stepIdx := 0

	var lossCol loss.Collector
	lossCol.Reserve(64)
	// Bind the compressed loss grid too: the streaming MergeMax into
	// the tschunk builder is part of the per-step loss bill and must
	// stay off the heap like everything else.
	lossCol.BindGrid(loss.GridFor(campaign))

	// Telemetry enabled, at the worst-case cadence: BatchSteps=1 makes
	// every step a barrier, so each round pays the full telemetry bill
	// the engine pays per batch — the counter republication (Store of
	// every per-VP plain counter into the atomic mirrors), the engine
	// counters, the batch-length histogram, the probe-batch span, and
	// the per-worker busy-time credit. All of it must stay off the heap.
	tele := telemetry.New()
	// Shard gauges sized up front, as the sharded engine does before
	// probing starts: their barrier republication — the resident-bytes
	// walk over arena and collectors plus three gauge stores — is part
	// of the per-batch telemetry bill being measured.
	tele.Engine.SetShards(1)
	roundsScheduled := int64(0)
	publish := func() {
		var agg netsim.ProbeStats
		agg.Merge(pr.ProbeStats())
		p := &tele.Probe
		p.Probes.Store(agg.Probes)
		p.Delivered.Store(agg.Delivered)
		p.PipeDrops.Store(agg.PipeDrops)
		p.ICMPSilenced.Store(agg.ICMPSilenced)
		p.RateLimited.Store(agg.RateLimited)
		p.QueueFrozenObs.Store(agg.QueueFrozenObs)
		for i := 0; i < len(agg.RTTBuckets) && i < p.RTT.NumBuckets(); i++ {
			p.RTT.StoreBucket(i, agg.RTTBuckets[i])
		}
		is := w.Net.InjectStats()
		p.InjectWalks.Store(is.Walks)
		p.InjectDelivered.Store(is.Delivered)
		p.InjectLost.Store(is.Lost)
		p.InjectUnreachable.Store(is.Unreachable)
		tele.Faults.Entered.Store(sched.Entered())
		tele.Faults.Exited.Store(sched.Exited())
		if g := tele.Engine.Shard(0); g != nil {
			resident := int64(arena.MemBytes())
			for _, c := range collectors {
				resident += int64(c.MemBytes())
			}
			g.ResidentBytes.Set(resident)
			g.LinksOwned.Set(int64(len(collectors)))
			g.Rounds.Set(roundsScheduled)
		}
	}

	// Advancing to the campaign start replays months of scenario churn,
	// bumping the topology version and invalidating the trajectories
	// cached at NewTSLP time. Refresh them the way the engine does at
	// every step barrier — otherwise each round takes the invalid-path
	// early return and the test measures nothing.
	w.AdvanceTo(campaign.Start)
	for _, ts := range tslps {
		if err := ts.EnsureResolved(); err != nil {
			t.Fatalf("EnsureResolved: %v", err)
		}
	}
	at := campaign.Start
	steps := make([]simclock.Time, 1)
	round := func() {
		tele.Engine.BatchesOpened.Inc()
		roundsScheduled++
		publish()
		// Observatory barrier feed, exactly as the engine's open step
		// runs it: advance every link's streaming detector to the
		// finalized-slot frontier.
		svc.ObserveBarrier(at)
		steps[0] = at
		w.Net.AdvanceQueuesBatch(steps)
		ref := tele.BeginSpan("probe-batch", "", at)
		tele.Engine.Flushes.Inc()
		tele.Engine.RoundsDispatched.Inc()
		tele.Engine.BatchLen.Observe(1)
		workStart := time.Now()
		// The engine's outage gate runs on every step, dormant or not.
		if outage.Down(at) {
			at = at.Add(step)
			stepIdx++
			tele.EndSpan(ref, at)
			return
		}
		// Budget barrier work, exactly as the engine's open step runs
		// it — part of the steady-state bill at this cadence.
		if bsched.Due(at) {
			bsched.RecomputeAt(at)
		}
		pr.SetBatchStep(0)
		for ci, c := range collectors {
			if bv.Skip(ci, stepIdx) {
				c.RoundSkipped()
				continue
			}
			s := c.RoundFrozen(at)
			bv.Observe(ci, at, float64(s.FarRTT)/float64(time.Millisecond), s.FarLost)
		}
		if bv.Skip(0, stepIdx) {
			lossCol.RoundSkipped()
		} else {
			_, farLost := tslps[0].LossRoundFrozen(at)
			lossCol.Record(at, farLost)
		}
		pr.SetBatchStep(-1)
		stepIdx++
		tele.Engine.AddWorkerBusy(0, time.Since(workStart))
		tele.EndSpan(ref, at)
		at = at.Add(step)
	}
	// Warm up: the first rounds size the per-queue frontier tables and
	// any lazily-grown scratch.
	for i := 0; i < 8; i++ {
		round()
	}
	if avg := testing.AllocsPerRun(200, round); avg != 0 {
		t.Errorf("steady-state probing step makes %v heap allocations; want 0", avg)
	}
	// The zero-alloc claim must cover an *active* telemetry path, not a
	// vacuously idle one.
	publish()
	if tele.Probe.Probes.Load() == 0 {
		t.Error("telemetry counted no probes; the telemetry-on claim is vacuous")
	}
	if tele.Engine.Flushes.Load() == 0 || tele.Engine.BatchLen.NumBuckets() == 0 {
		t.Error("telemetry engine counters untouched")
	}
	if len(tele.Spans()) == 0 {
		t.Error("no probe-batch spans recorded")
	}
	// The shard-gauge claim must cover real values: a resident figure
	// from the shared arena and a live round count.
	if sh := tele.Snapshot().Engine.Shards; len(sh) != 1 ||
		sh[0].ResidentBytes <= 0 || sh[0].LinksOwned <= 0 || sh[0].Rounds == 0 {
		t.Errorf("shard gauges unpublished (%+v); the sharded-telemetry zero-alloc claim is vacuous", sh)
	}
	// The chunked backings must actually have been fed: every collector
	// a chunk-backed series with samples, and the loss grid populated.
	for _, c := range collectors {
		ls := c.Series()
		if !ls.Far.Chunked() || ls.Far.PresentCount() == 0 {
			t.Error("collector series not chunk-backed or empty; the chunked zero-alloc claim is vacuous")
		}
	}
	if g := lossCol.GridSeries(); g == nil || g.PresentCount() == 0 {
		t.Error("loss grid empty; the chunked loss-append zero-alloc claim is vacuous")
	}
	// The budget-scheduler-on claim must not be vacuous either: the
	// measured window must have crossed recompute barriers and the
	// gate must actually have skipped rounds.
	if st := bsched.Stats(); st.Recomputes < 10 {
		t.Errorf("only %d budget recomputes ran; the recompute zero-alloc claim is vacuous", st.Recomputes)
	}
	skippedTotal := 0
	for _, c := range collectors {
		_, _, _, skipped := c.Yield()
		skippedTotal += skipped
	}
	if skippedTotal == 0 {
		t.Error("budget gate never skipped a round; the budgeted zero-alloc claim is vacuous")
	}
	// The observatory-attached claim must not be vacuous: the measured
	// window must have pushed finalized aggregation slots through the
	// streaming detectors.
	if svc.NumLinks() != len(collectors) {
		t.Errorf("observatory watches %d links, want %d", svc.NumLinks(), len(collectors))
	}
	if svc.FedSlots() == 0 {
		t.Error("observatory fed no finalized slots; the streaming-feed zero-alloc claim is vacuous")
	}
}
