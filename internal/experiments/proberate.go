package experiments

import (
	"time"

	"afrixp/internal/netaddr"
	"afrixp/internal/prober"
	"afrixp/internal/queue"
	"afrixp/internal/scenario"
	"afrixp/internal/simclock"
)

// ProbeRatePoint is one row of the probing-rate ablation: at `RatePPS`
// probes per second against an ICMP-policed router, `ResponseRate` of
// probes were answered.
type ProbeRatePoint struct {
	RatePPS      float64
	Sent, Lost   int
	ResponseRate float64
}

// RunProbeRateAblation quantifies the paper's §4 methodology choice:
// "we ensured that our measurements would not adversely affect the VP
// network by using a low probing rate (small packets sent at the rate
// of 100 packets per second)". Routers police ICMP generation; probing
// above the police rate manufactures loss that looks like congestion.
// The ablation gives a member router a typical 200-response/second
// ICMP policer and sweeps the probing rate across it.
func RunProbeRateAblation(opts scenario.Options, rates []float64) ([]ProbeRatePoint, error) {
	if len(rates) == 0 {
		rates = []float64{10, 100, 500, 2000}
	}
	w := scenario.Paper(opts)
	vp, _ := w.VPByID("VP4")
	target := vp.CaseLinks["QCELL-NETPAGE"]

	var out []ProbeRatePoint
	base := simclock.Time(0)
	for _, rate := range rates {
		// Fresh policer per sweep point so earlier floods do not
		// starve later ones.
		far, _, ok := w.Net.OwnerOfAddr(target.Far)
		if !ok {
			continue
		}
		far.ICMPRateLimit = queue.NewTokenBucket(200, 50, base)

		p := prober.New(w.Net, vp.Node, prober.Config{
			Name: "rate-ablation", RatePPS: rate,
		})
		pt := ProbeRatePoint{RatePPS: rate}
		const probes = 500
		gap := time.Duration(float64(time.Second) / rate)
		at := base
		for i := 0; i < probes; i++ {
			// Steady-state pacing: one probe per 1/rate, not a
			// token-bucket burst.
			res, err := p.Ping(target.Far, 64, at)
			if err != nil {
				return nil, err
			}
			at = res.SentAt.Add(gap)
			pt.Sent++
			if res.Lost {
				pt.Lost++
			}
		}
		pt.ResponseRate = 1 - float64(pt.Lost)/float64(pt.Sent)
		out = append(out, pt)
		// Separate sweep points in time so bucket states don't leak.
		base = at.Add(time.Hour)
	}
	return out, nil
}

// probeTargetAddr is a tiny helper kept for tests.
func probeTargetAddr(w *scenario.World, vpID, caseName string) (netaddr.Addr, bool) {
	vp, ok := w.VPByID(vpID)
	if !ok {
		return 0, false
	}
	lt, ok := vp.CaseLinks[caseName]
	return lt.Far, ok
}
