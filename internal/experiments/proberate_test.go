package experiments

import (
	"testing"

	"afrixp/internal/scenario"
)

func TestProbeRateAblation(t *testing.T) {
	pts, err := RunProbeRateAblation(scenario.Options{Seed: 4, Scale: 0.1},
		[]float64{10, 100, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// At or below the paper's 100 pps the policer never engages…
	if pts[0].ResponseRate < 0.99 || pts[1].ResponseRate < 0.99 {
		t.Fatalf("low rates policed: %+v", pts[:2])
	}
	// …well above it, most probes die.
	if pts[2].ResponseRate > 0.5 {
		t.Fatalf("1000 pps should be heavily policed: %+v", pts[2])
	}
	// Response rate is monotone non-increasing in probe rate.
	for i := 1; i < len(pts); i++ {
		if pts[i].ResponseRate > pts[i-1].ResponseRate+0.01 {
			t.Fatalf("response rate rose with probing rate: %+v", pts)
		}
	}
}

func TestProbeTargetHelper(t *testing.T) {
	w := scenario.Paper(scenario.Options{Seed: 4, Scale: 0.1})
	if _, ok := probeTargetAddr(w, "VP4", "QCELL-NETPAGE"); !ok {
		t.Fatal("helper lost the case link")
	}
	if _, ok := probeTargetAddr(w, "VP9", "X"); ok {
		t.Fatal("unknown VP must miss")
	}
}
