package experiments

import (
	"testing"
	"time"

	"afrixp/internal/budget"
	"afrixp/internal/scenario"
	"afrixp/internal/simclock"
)

// runBudgetCampaign is the 4-day short campaign with the probe-budget
// scheduler installed. The tight recompute cadence gives the 4-day
// window plenty of barrier recomputes.
func runBudgetCampaign(workers, batchSteps int, frac float64, seed uint64) *Result {
	return Run(Config{
		Opts: scenario.Options{Seed: 5, Scale: 0.1},
		Campaign: simclock.Interval{
			Start: simclock.Date(2016, time.July, 20),
			End:   simclock.Date(2016, time.July, 24),
		},
		Workers:    workers,
		BatchSteps: batchSteps,
		Budget:     &budget.Config{Fraction: frac, Seed: seed},
	})
}

// TestBudgetCampaignBitIdentical is the scheduler's load-bearing
// invariant: per (budget, seed), a budgeted campaign is IEEE-bit-
// identical for any Workers × BatchSteps — utility ranking, rate
// assignment, and the skip schedule depend only on virtual time and
// the collected series, never on worker interleaving or batch edges.
func TestBudgetCampaignBitIdentical(t *testing.T) {
	perStep := runBudgetCampaign(1, 1, 0.5, 7)

	// Non-vacuity: the budget must actually have withheld probes.
	rounds, skipped := attemptedRounds(perStep)
	if skipped == 0 {
		t.Fatal("budget=0.5 campaign skipped no rounds; bit-identity check is vacuous")
	}
	if rounds == 0 {
		t.Fatal("budget=0.5 campaign attempted no rounds")
	}

	want := summarizeResult(perStep)
	for _, cse := range []struct {
		workers, batchSteps int
	}{{1, 4096}, {8, 1}, {8, 4096}} {
		got := summarizeResult(runBudgetCampaign(cse.workers, cse.batchSteps, 0.5, 7))
		if want != got {
			t.Errorf("budgeted results differ: workers=%d batchSteps=%d vs workers=1 batchSteps=1\n%s",
				cse.workers, cse.batchSteps, firstDiff(want, got))
		}
	}

	// Re-run from the same (budget, seed): bit-identical too.
	if got := summarizeResult(runBudgetCampaign(1, 1, 0.5, 7)); want != got {
		t.Errorf("same (budget, seed) re-run diverged\n%s", firstDiff(want, got))
	}

	// A different budget seed reschedules probes: results must differ
	// (otherwise the seed plumbing is dead).
	if got := summarizeResult(runBudgetCampaign(1, 1, 0.5, 8)); want == got {
		t.Error("different budget seed produced identical results; seed not wired through")
	}
}

// TestBudgetAwkwardBatchSizesBitIdentical sweeps batch sizes that
// misalign with the recompute cadence, so recompute barriers fall
// mid-batch-plan and must still break batches deterministically.
func TestBudgetAwkwardBatchSizesBitIdentical(t *testing.T) {
	want := summarizeResult(runBudgetCampaign(2, 1, 0.25, 3))
	for _, bs := range []int{7, 97} {
		if got := summarizeResult(runBudgetCampaign(2, bs, 0.25, 3)); want != got {
			t.Errorf("budgeted BatchSteps=%d diverges from per-step results\n%s", bs, firstDiff(want, got))
		}
	}
}

// TestBudgetReducesProbes pins the spend side: a 50% budget must send
// at most 55% of the full-rate rounds (5 points of slack for the
// full-rate exploration window before the first recompute), and lower
// budgets must send monotonically less.
func TestBudgetReducesProbes(t *testing.T) {
	full := runShortCampaignCfg(2, 0, false)
	fullRounds, _ := attemptedRounds(full)
	// Every link runs at full rate until the first recompute barrier
	// (the exploration window: 6 h of this 96 h campaign), so the
	// achievable spend is frac outside that window plus full rate
	// inside it — negligible over 13 months, visible over 4 days.
	explore := 6.0 / 96.0
	prev := fullRounds + 1
	for _, frac := range []float64{0.5, 0.25, 0.1} {
		res := runBudgetCampaign(2, 0, frac, 7)
		rounds, skipped := attemptedRounds(res)
		if skipped == 0 {
			t.Fatalf("budget=%.2f skipped no rounds", frac)
		}
		bound := frac*(1-explore) + explore + 0.02
		if got := float64(rounds) / float64(fullRounds); got > bound {
			t.Errorf("budget=%.2f sent %.3f of full-rate rounds; want ≤ %.3f", frac, got, bound)
		}
		if rounds >= prev {
			t.Errorf("budget=%.2f sent %d rounds, not less than the next-larger budget's %d", frac, rounds, prev)
		}
		prev = rounds
	}
}

// TestFullBudgetCampaignMatchesUnscheduled pins the Fraction ≥ 1
// contract end to end: installing the scheduler at a full budget (or
// any over-budget fraction, which clamps to 1) must reproduce the
// unscheduled campaign bit for bit and skip nothing — the scheduler
// runs, folds windows, and counts recomputes, but every link stays at
// period 1.
func TestFullBudgetCampaignMatchesUnscheduled(t *testing.T) {
	plain := Run(Config{
		Opts:     scenario.Options{Seed: 5, Scale: 0.1},
		Campaign: ckptInterval,
		Workers:  8,
	})
	want := summarizeResult(plain)
	rounds, _ := attemptedRounds(plain)
	if rounds == 0 {
		t.Fatal("unscheduled campaign attempted no rounds; parity check is vacuous")
	}

	for _, frac := range []float64{1, 100} {
		res := runBudgetCampaign(8, 0, frac, 7)
		if got := summarizeResult(res); got != want {
			t.Errorf("budget=%g campaign diverges from the unscheduled run\n%s",
				frac, firstDiff(want, got))
		}
		if _, skipped := attemptedRounds(res); skipped != 0 {
			t.Errorf("budget=%g skipped %d rounds; a full budget must skip none", frac, skipped)
		}
		for _, y := range res.Yields() {
			if y.Skipped != 0 {
				t.Errorf("budget=%g: VP %s shows %d skipped rounds in the yield accounting", frac, y.VP, y.Skipped)
			}
		}
	}
}

// TestBudgetSweepRecall runs the budget experiment over a window
// centered on the case-study congestion (QCELL-NETPAGE congested from
// late February, GIXA-GHANATEL from early March) and pins the
// headline trade-off: at a 50% budget, ground-truth recall stays at
// ≥95% of the full-rate campaign's.
func TestBudgetSweepRecall(t *testing.T) {
	base := Config{
		Opts: scenario.Options{Seed: 3, Scale: 0.12},
		Campaign: simclock.Interval{
			Start: simclock.Date(2016, time.March, 1),
			End:   simclock.Date(2016, time.March, 15),
		},
		DisableLoss: true,
		Budget:      &budget.Config{Seed: 11},
	}
	points := RunBudgetSweep(base, []float64{1, 0.5, 0.25})
	if len(points) != 3 {
		t.Fatalf("got %d points, want 3", len(points))
	}
	full := points[0]
	if full.TruthLinks == 0 || full.Detected == 0 {
		t.Fatalf("full-rate campaign detected nothing (truth=%d detected=%d); recall comparison is vacuous",
			full.TruthLinks, full.Detected)
	}
	if full.SentFrac != 1 || full.RecallVsFull != 1 || full.Table1Fidelity != 1 {
		t.Fatalf("full-rate point not normalized: %+v", full)
	}
	p50 := points[1]
	if p50.SentFrac > 0.55 {
		t.Errorf("budget=50%% sent %.3f of full-rate rounds; want ≤ 0.55", p50.SentFrac)
	}
	if p50.RecallVsFull < 0.95 {
		t.Errorf("budget=50%% recall %.3f of full rate (%d/%d vs %d/%d); want ≥ 0.95",
			p50.RecallVsFull, p50.Detected, p50.TruthLinks, full.Detected, full.TruthLinks)
	}
	p25 := points[2]
	if p25.SentFrac > 0.30 {
		t.Errorf("budget=25%% sent %.3f of full-rate rounds; want ≤ 0.30", p25.SentFrac)
	}

	// Render must not panic and must carry one row per point.
	tab := BudgetSweepReport(points)
	if len(tab.Rows) != len(points) {
		t.Fatalf("report has %d rows, want %d", len(tab.Rows), len(points))
	}
}
