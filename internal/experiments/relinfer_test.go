package experiments

import (
	"testing"

	"afrixp/internal/scenario"
)

func TestRelationshipInference(t *testing.T) {
	res, err := RunRelInference(scenario.Options{Seed: 6, Scale: 0.12}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Paths < 500 {
		t.Fatalf("paths = %d, want hundreds", res.Paths)
	}
	if res.TotalLinks < 50 {
		t.Fatalf("scored links = %d", res.TotalLinks)
	}
	// Route collectors famously see only a fraction of the world's
	// peering mesh (an IXP with N members has N(N-1)/2 peer edges but
	// collector paths cross almost none of them) — coverage well below
	// 1 is the realistic outcome. What must hold is accuracy on the
	// links that ARE visible.
	if res.Covered < 0.1 || res.Covered > 0.9 {
		t.Fatalf("covered = %.2f, want partial visibility", res.Covered)
	}
	// Degree-only Gao inference misreads IXP hub↔member peerings as
	// transit (the hub's degree dwarfs the members'), a weakness the
	// production AS-rank algorithm patches with clique and IXP data;
	// ~60 % exact on visible links is the honest degree-only number.
	if acc := res.Exact / res.Covered; acc < 0.55 {
		t.Fatalf("accuracy on visible links = %.2f", acc)
	}
	// bdrmap's neighbor discovery must not depend on relationship
	// quality (relationships only label links), and the peer count
	// under inferred relationships should be close to truth: IXP
	// fabric links are classified by prefix, not relationship, so at
	// minimum those survive.
	if !res.NeighborsAgree {
		t.Fatal("neighbor sets must not depend on relationship input")
	}
	if res.PeersInferred < res.PeersTruth/2 {
		t.Fatalf("peer classification collapsed: truth %d, inferred %d",
			res.PeersTruth, res.PeersInferred)
	}
}
