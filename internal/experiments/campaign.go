// Package experiments reproduces the paper's evaluation: it drives
// the full measurement campaign (bdrmap discovery snapshots, per-link
// TSLP probing every 5 minutes, 1 pps loss batches on the case-study
// links) over the simulated world, then regenerates every table and
// figure: Table 1 (threshold sensitivity), Table 2 (per-VP evolution),
// Figures 1–4 (case-study RTT and loss series), the §6.1 headline
// congested fraction, the §4 bdrmap validation, and the §5.2 waveform
// statistics.
package experiments

import (
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"afrixp/internal/analysis"
	"afrixp/internal/asrel"
	"afrixp/internal/bdrmap"
	"afrixp/internal/budget"
	"afrixp/internal/checkpoint"
	"afrixp/internal/faults"
	"afrixp/internal/ixpdir"
	"afrixp/internal/loss"
	"afrixp/internal/netaddr"
	"afrixp/internal/netsim"
	"afrixp/internal/observatory"
	"afrixp/internal/prober"
	"afrixp/internal/registry"
	"afrixp/internal/rrcheck"
	"afrixp/internal/scenario"
	"afrixp/internal/simclock"
	"afrixp/internal/telemetry"
	"afrixp/internal/timeseries"
	"afrixp/internal/tschunk"
	"afrixp/internal/worldgen"
)

// Config drives one campaign.
type Config struct {
	// Opts builds the world.
	Opts scenario.Options
	// BuildWorld, when non-nil, supplies the world instead of
	// scenario.Paper(Opts) — the hook continent-scale generated worlds
	// (internal/worldgen) enter the engine through. The builder must
	// return a fully authored world; Run calls nothing but the
	// standard campaign machinery on it.
	BuildWorld func() *scenario.World
	// Campaign bounds the probing. Zero value = the paper's period
	// (2016-02-22 … 2017-03-27).
	Campaign simclock.Interval
	// Step is the TSLP cadence (default 5 min).
	Step simclock.Duration
	// RefreshEvery re-runs link discovery (default 14 days).
	RefreshEvery simclock.Duration
	// Thresholds for the Table 1 sweep (default 5/10/15/20 ms).
	Thresholds []float64
	// LossBatchEvery spaces the 100-probe loss batches on case links
	// (default 10 min; the paper probed continuously at 1 pps —
	// batch subsampling preserves the per-batch loss statistics).
	LossBatchEvery simclock.Duration
	// DisableLoss skips the loss campaigns.
	DisableLoss bool
	// FlatSeries opts the RTT collectors out of the XOR-compressed
	// chunked backing and stores aggregated series as plain []float64
	// — the pre-tschunk layout. Results are bit-identical either way
	// (TestChunkedCampaignBitIdentical); the flag exists for the
	// backing-equivalence tests and for callers that mutate collected
	// series in place.
	FlatSeries bool
	// Workers fans the probing loop out across per-VP goroutines and
	// the analysis phase across per-link goroutines. Results are
	// bit-identical for any value: probing always samples against the
	// frozen per-step queue frontier with per-VP loss-nonce streams, so
	// goroutine interleaving cannot reach the numbers. Default
	// runtime.GOMAXPROCS(0); 1 runs inline without goroutines.
	Workers int
	// BatchSteps caps how many consecutive quiescent steps the batch
	// planner hands the worker pool at once. Bigger batches amortize
	// the per-step coordination; the cap bounds the per-queue frontier
	// tables AdvanceQueuesBatch records. Results are bit-identical for
	// any value (see DESIGN.md §9). Default 1024; 1 degenerates to the
	// per-step protocol.
	BatchSteps int
	// Shards, when > 1, partitions vantage points into shards (VP i
	// belongs to shard i mod Shards, clamped to the VP count) and
	// makes the shard — not the VP — the engine's unit of scheduling
	// and memory: one pool task probes a shard's VPs in ascending
	// index order, and all the shard's collectors seal their
	// compressed series into one shared tschunk.Arena, so per-shard
	// resident bytes are bounded and accountable (published as
	// telemetry shard gauges at batch barriers). Per-VP probing state
	// is fully independent and within-shard order is fixed, so results
	// are bit-identical for any Workers × BatchSteps × Shards setting;
	// with sharding on, effective probing parallelism is min(Workers,
	// Shards). Shards ≤ 1 keeps the per-VP scheduling with private
	// collector arenas.
	Shards int
	// Faults, when non-nil, injects a deterministic fault plan — VP
	// outages, ICMP blackouts and rate-limiting at case-link routers,
	// link flaps — into the world before probing starts (see
	// internal/faults). Every episode boundary is a scenario event and
	// therefore a batch-planner barrier; faults are pure functions of
	// virtual time, so results stay bit-identical for any Workers ×
	// BatchSteps setting.
	Faults *faults.Config
	// Budget, when non-nil and enabled, installs the probe-budget
	// scheduler (see internal/budget): links are ranked by marginal
	// utility at fixed virtual-time barriers and probed at adaptive
	// power-of-two periods under Budget.Fraction of the full-rate
	// spend. The hot-path skip decision is pure arithmetic on the
	// global step index (an Outage.Down-style gate), utility state is
	// written only by each VP's own worker, and recompute instants are
	// batch barriers — so budgeted campaigns remain bit-identical per
	// (budget, seed) for any Workers × BatchSteps, and the quiescent
	// probing step stays allocation-free.
	Budget *budget.Config
	// Progress, when non-nil, receives one line per campaign phase.
	// Writes are serialized by the engine. With Telemetry attached the
	// lines are routed through the telemetry event log and stamped
	// with virtual + wall time; without it the plain format is kept.
	Progress io.Writer
	// Telemetry, when non-nil, receives campaign instrumentation:
	// engine/probe/analysis/fault counters, per-worker utilization,
	// and the phase span/event log. Strictly read-side — nothing it
	// records feeds back into the simulation, so results are
	// bit-identical with telemetry on or off at any Workers ×
	// BatchSteps setting (TestTelemetryCampaignBitIdentical pins it),
	// and the steady-state probing step stays allocation-free with
	// collection enabled (DESIGN.md §11).
	Telemetry *telemetry.Telemetry
	// Observatory, when non-nil, attaches the streaming observatory
	// service (internal/observatory): discovered links are registered
	// as they appear, and at every batch barrier the service advances
	// its per-link streaming detectors to the finalized-slot frontier,
	// emitting live clear/suspected/congested alerts over its HTTP API.
	// Strictly read-side, like Telemetry: the feed is cursor-based over
	// finalized aggregation slots with alert timestamps taken from slot
	// virtual times, so the alert log — and, a fortiori, the campaign
	// results — stay bit-identical for any Workers × BatchSteps ×
	// Shards, and the steady-state probing step stays allocation-free
	// with the service attached (both pinned by tests). After the
	// analysis phase the engine calls Finalize, which derives the
	// service's end-of-campaign verdicts from the same batch sweep over
	// the same frozen series — bit-identical to the engine's own
	// (DESIGN.md §16). Excluded from the checkpoint manifest: a resumed
	// run may attach or detach it freely.
	Observatory *observatory.Service
	// CheckpointDir, when non-empty, serializes the engine's full
	// measurement state into the directory every CheckpointEvery of
	// virtual time (internal/checkpoint, DESIGN.md §15). Checkpoint
	// instants are forced batch barriers — the step-batched scheduler's
	// proven safe points — so with the batch-partition independence
	// invariant, results stay bit-identical with checkpointing on or
	// off at any Workers × BatchSteps × Shards.
	CheckpointDir string
	// CheckpointEvery is the virtual-time checkpoint cadence, anchored
	// at campaign start. Default 24 h when CheckpointDir is set.
	CheckpointEvery simclock.Duration
	// ResumeFrom, when non-empty, loads the newest valid checkpoint
	// from the directory (usually CheckpointDir itself) and resumes the
	// campaign from its barrier. The engine rebuilds the world, replays
	// the campaign loop up to the barrier without probing (world, queue
	// and discovery state are deterministic functions of config and
	// virtual time), restores the measurement state at the barrier, and
	// probes on — bit-identical to an uninterrupted run. A manifest
	// mismatch (wrong seed, scale, faults, budget, shards, …) panics;
	// Workers and BatchSteps may change freely across the restart. An
	// empty directory starts fresh with a progress note.
	ResumeFrom string
}

func (c Config) withDefaults() Config {
	if c.Campaign.Duration() <= 0 {
		c.Campaign = simclock.Interval{Start: 0, End: simclock.LatencyEnd}
	}
	if c.Step <= 0 {
		c.Step = 5 * time.Minute
	}
	if c.RefreshEvery <= 0 {
		c.RefreshEvery = 14 * 24 * time.Hour
	}
	if len(c.Thresholds) == 0 {
		c.Thresholds = []float64{5, 10, 15, 20}
	}
	if c.LossBatchEvery <= 0 {
		c.LossBatchEvery = 10 * time.Minute
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.BatchSteps <= 0 {
		c.BatchSteps = 1024
	}
	if c.CheckpointDir != "" && c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 24 * time.Hour
	}
	return c
}

// configHash digests every determinism-relevant knob into the
// checkpoint manifest, so a resume onto a differently-configured run
// fails loudly. Execution-shape knobs — Workers, BatchSteps, the
// checkpoint cadence and directories — are deliberately excluded: the
// engine is bit-identical across them, so a restart may change them.
// Call on the defaulted config (withDefaults) so both sides hash the
// same resolved values.
func (c Config) configHash() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "opts=%+v campaign=%d..%d step=%d refresh=%d thr=%v lossEvery=%d noloss=%t flat=%t shards=%d",
		c.Opts, c.Campaign.Start, c.Campaign.End, c.Step, c.RefreshEvery,
		c.Thresholds, c.LossBatchEvery, c.DisableLoss, c.FlatSeries, c.Shards)
	if c.Faults != nil {
		fmt.Fprintf(h, " faults=%+v", *c.Faults)
	}
	if c.Budget != nil {
		fmt.Fprintf(h, " budget=%+v", *c.Budget)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Snapshot is one bdrmap run at a Table 2 date.
type Snapshot struct {
	At     simclock.Time
	Bdrmap *bdrmap.Result
	// TruthNeighborCount is the ground-truth neighbor count at the
	// snapshot (bdrmap validation).
	TruthNeighborCount int
	// Coverage is the fraction of true neighbors discovered.
	Coverage float64
}

// LinkRecord accumulates one discovered link's campaign data.
type LinkRecord struct {
	Target       prober.LinkTarget
	FarAS        asrel.ASN
	ViaIXP       string
	DiscoveredAt simclock.Time
	// CaseName is non-empty for the paper's case-study links.
	CaseName string

	Collector *analysis.Collector
	// Verdicts holds the per-threshold analysis (filled by Analyze).
	Verdicts map[float64]analysis.Verdict
	// LossBatches carries the far-end 1 pps loss batches (case links).
	LossBatches []loss.Batch
	// Symmetry is the record-route path-symmetry verdict (§5.2),
	// measured at discovery for case links. Nil when not checked.
	Symmetry *rrcheck.Verdict

	tslp    *prober.TSLP
	lossCol *loss.Collector
	lossIv  simclock.Interval
}

// LossGrid returns the streamed, XOR-compressed loss-rate grid for a
// case link — bit-identical to gridding LossBatches with loss.ToSeries
// over loss.GridFor(the link's loss window), but built incrementally
// during probing so the rate series never exists flat. Nil for links
// without a loss campaign. The first call seals the grid.
func (lr *LinkRecord) LossGrid() *timeseries.Series {
	if lr.lossCol == nil {
		return nil
	}
	return lr.lossCol.GridSeries()
}

// VPResult is one vantage point's campaign output.
type VPResult struct {
	VP        *scenario.VP
	Prober    *prober.Prober
	Snapshots []Snapshot
	Links     map[prober.LinkTarget]*LinkRecord
	// RoundsScheduled counts the probing steps the engine planned for
	// this VP; RoundsDown counts the ones an injected outage skipped.
	// Uptime accounting for cmd/repro -faults.
	RoundsScheduled, RoundsDown int
	// Ordered targets for deterministic iteration.
	order []prober.LinkTarget
}

// SortedLinks returns the VP's link records in discovery order.
func (v *VPResult) SortedLinks() []*LinkRecord {
	out := make([]*LinkRecord, 0, len(v.order))
	for _, t := range v.order {
		out = append(out, v.Links[t])
	}
	return out
}

// CaseLink finds a case-study record by name.
func (v *VPResult) CaseLink(name string) (*LinkRecord, bool) {
	for _, lr := range v.Links {
		if lr.CaseName == name {
			return lr, true
		}
	}
	return nil, false
}

// Result is the whole campaign.
type Result struct {
	World *scenario.World
	Cfg   Config
	VPs   []*VPResult
	// Faults is the injected fault schedule; nil without Cfg.Faults.
	Faults *faults.Schedule

	// shards is the effective shard count the engine ran with (0 or 1
	// = unsharded). Reanalyze must respect it: a shard's collectors
	// seal into one shared arena, so sealing parallelism is per shard,
	// not per link.
	shards int
}

// VPYield is one vantage point's measurement-health accounting under
// fault injection: how often the VP was up and how often an attempted
// round actually produced a far sample.
type VPYield struct {
	VP string
	// Steps and DownSteps count scheduled probing steps and the ones
	// skipped by VP outages.
	Steps, DownSteps int
	// Links is the number of links the VP watched.
	Links int
	// Rounds / Samples / Missed aggregate per-link collector
	// accounting: rounds attempted, rounds with a far sample, rounds
	// never run because the VP was down.
	Rounds, Samples, Missed int
	// Skipped counts rounds the probe-budget scheduler elected not to
	// run. Kept apart from Missed so budget back-off never reads as
	// an outage: skips are excluded from the SampleYield denominator.
	Skipped int
	// LossSkipped / LossMissed are the same split for the scheduled
	// 1 pps loss rounds on this VP's case links.
	LossSkipped, LossMissed int
	// Uptime is 1 − DownSteps/Steps.
	Uptime float64
	// SampleYield is Samples / (Rounds + Missed): the fraction of
	// scheduled per-link rounds that yielded a far sample. Budget
	// skips are not scheduled work lost, so they don't count.
	SampleYield float64
}

// Yields summarizes per-VP uptime and sample yield, in VP order.
func (r *Result) Yields() []VPYield {
	out := make([]VPYield, 0, len(r.VPs))
	for _, vr := range r.VPs {
		y := VPYield{VP: vr.VP.ID, Steps: vr.RoundsScheduled,
			DownSteps: vr.RoundsDown, Links: len(vr.Links)}
		for _, lr := range vr.SortedLinks() {
			attempted, samples, missed, skipped := lr.Collector.Yield()
			y.Rounds += attempted
			y.Samples += samples
			y.Missed += missed
			y.Skipped += skipped
			if lr.lossCol != nil {
				ls, lm := lr.lossCol.RoundAccounting()
				y.LossSkipped += ls
				y.LossMissed += lm
			}
		}
		if y.Steps > 0 {
			y.Uptime = 1 - float64(y.DownSteps)/float64(y.Steps)
		}
		if tot := y.Rounds + y.Missed; tot > 0 {
			y.SampleYield = float64(y.Samples) / float64(tot)
		}
		out = append(out, y)
	}
	return out
}

// VPByID finds a VP result by paper label.
func (r *Result) VPByID(id string) (*VPResult, bool) {
	for _, v := range r.VPs {
		if v.VP.ID == id {
			return v, true
		}
	}
	return nil, false
}

// paperSnapshots are the Table 2 dates.
var paperSnapshots = map[string][]simclock.Time{
	"VP1": {simclock.Date(2016, time.March, 17), simclock.Date(2016, time.June, 18), simclock.Date(2016, time.November, 15)},
	"VP2": {simclock.Date(2016, time.March, 19), simclock.Date(2016, time.June, 18), simclock.Date(2016, time.November, 16)},
	"VP3": {simclock.Date(2016, time.July, 27), simclock.Date(2016, time.November, 15), simclock.Date(2017, time.February, 19)},
	"VP4": {simclock.Date(2016, time.March, 18), simclock.Date(2016, time.July, 22), simclock.Date(2016, time.September, 7)},
	"VP5": {simclock.Date(2016, time.March, 11), simclock.Date(2017, time.February, 23), simclock.Date(2017, time.March, 23)},
	"VP6": {simclock.Date(2016, time.July, 27), simclock.Date(2016, time.November, 15), simclock.Date(2017, time.February, 19)},
}

// figureWindows maps case links to the full-resolution retention
// window (union of that link's figure windows).
var figureWindows = map[string]simclock.Interval{
	"GIXA-GHANATEL": {Start: simclock.Date(2016, time.March, 3), End: simclock.Date(2016, time.August, 6)},
	"GIXA-KNET":     {Start: simclock.Date(2016, time.August, 1), End: simclock.Date(2016, time.October, 31)},
	"QCELL-NETPAGE": {Start: simclock.Date(2016, time.February, 29), End: simclock.Date(2016, time.June, 30)},
}

// lossWindows maps case links to their 1 pps loss campaigns.
var lossWindows = map[string]simclock.Interval{
	"GIXA-GHANATEL": {Start: simclock.LossStart.Add(2 * 24 * time.Hour), End: simclock.Date(2016, time.August, 6)},
	"GIXA-KNET":     {Start: simclock.LossStart.Add(2 * 24 * time.Hour), End: simclock.Date(2017, time.March, 27)},
}

// Run executes the campaign and the per-link analysis.
func Run(cfg Config) *Result {
	cfg = cfg.withDefaults()
	tele := cfg.Telemetry
	buildRef := tele.BeginSpan("build-world", "", cfg.Campaign.Start)
	var w *scenario.World
	if cfg.BuildWorld != nil {
		w = cfg.BuildWorld()
	} else {
		w = scenario.Paper(cfg.Opts)
	}
	tele.EndSpan(buildRef, cfg.Campaign.Start)
	res := &Result{World: w, Cfg: cfg}
	if cfg.Faults != nil {
		// Inject before the world advances: episode boundaries become
		// scenario events, which must not predate the world clock.
		res.Faults = faults.Inject(w, cfg.Campaign, *cfg.Faults)
		if tele != nil {
			tele.Faults.Planned.Store(uint64(len(res.Faults.Faults)))
			// Episode windows are fixed at injection time; record each
			// as a closed span so the virtual fault timeline is in the
			// export alongside the live entered/exited counters.
			for _, f := range res.Faults.Faults {
				tele.AddSpan("fault-episode", f.Target+" "+f.Kind.String(),
					f.Window.Start, f.Window.End)
			}
		}
	}

	// progress only runs on the coordinator goroutine (the mutex
	// guards against future callers, not the engine), so reading the
	// world clock for the virtual-time stamp is safe.
	var progressMu sync.Mutex
	progress := func(format string, args ...any) {
		if cfg.Progress == nil && tele == nil {
			return
		}
		progressMu.Lock()
		defer progressMu.Unlock()
		if tele == nil {
			fmt.Fprintf(cfg.Progress, format+"\n", args...)
			return
		}
		v := w.Now()
		elapsed := tele.Eventf("progress", v, format, args...)
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "[v %v | w +%v] "+format+"\n",
				append([]any{v, elapsed.Round(time.Millisecond)}, args...)...)
		}
	}

	type vpState struct {
		vr        *VPResult
		snapshots []simclock.Time
		snapIdx   int
		// shard is the VP's shard index (0 when sharding is off).
		shard int
		// outage is the VP's injected downtime schedule (nil = always
		// up); consulted every probing step, allocation-free.
		outage *faults.Outage
	}
	var states []*vpState
	for _, vp := range w.VPs {
		vr := &VPResult{VP: vp,
			Prober: prober.New(w.Net, vp.Node, prober.Config{Name: vp.Monitor}),
			Links:  make(map[prober.LinkTarget]*LinkRecord)}
		res.VPs = append(res.VPs, vr)
		var snaps []simclock.Time
		for _, s := range paperSnapshots[vp.ID] {
			if cfg.Campaign.Contains(s) {
				snaps = append(snaps, s)
			}
		}
		if len(snaps) == 0 {
			// Short campaigns snapshot start/middle/end.
			mid := cfg.Campaign.Start.Add(cfg.Campaign.Duration() / 2)
			end := cfg.Campaign.Start.Add(cfg.Campaign.Duration() - cfg.Step)
			snaps = []simclock.Time{cfg.Campaign.Start, mid, end}
		}
		sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
		states = append(states, &vpState{vr: vr, snapshots: snaps,
			outage: res.Faults.VPOutage(vp.ID)})
	}
	if res.Faults != nil {
		progress("injected %d fault episodes", len(res.Faults.Faults))
	}

	// Shard partition: VP i → shard i mod shards, so each shard owns a
	// stride of the VP list and one shared compression arena. The
	// arenas exist before discovery runs — collectors are born sealing
	// into their shard's slab.
	shards := cfg.Shards
	if shards > len(states) {
		shards = len(states)
	}
	sharded := shards > 1
	var arenas []*tschunk.Arena
	if sharded {
		res.shards = shards
		arenas = make([]*tschunk.Arena, shards)
		for s := range arenas {
			arenas[s] = tschunk.NewArena(0)
		}
		for si, st := range states {
			st.shard = si % shards
		}
		progress("sharded engine: %d shards over %d VPs", shards, len(states))
	}

	// Checkpoint manifest + resume load (DESIGN.md §15). The world
	// fingerprint must be taken now, before AdvanceTo consumes the
	// pending scenario events it hashes; the manifest then pins the
	// snapshot to this exact (world, config) pair. resume being non-nil
	// puts the probing loop below into replay mode: barrier work runs
	// live (it deterministically reconstructs discovery and scheduler
	// registration), but no probes fire and no accounting accrues until
	// the snapshot's barrier, where the measurement state is restored.
	var resume *checkpoint.Snapshot
	var manifest checkpoint.Manifest
	if cfg.CheckpointDir != "" || cfg.ResumeFrom != "" {
		manifest = checkpoint.Manifest{
			Format:           checkpoint.Format,
			ConfigHash:       cfg.configHash(),
			WorldFingerprint: worldgen.Fingerprint(w),
		}
	}
	if cfg.ResumeFrom != "" {
		snap, err := checkpoint.LoadLatest(cfg.ResumeFrom, &manifest)
		if err != nil {
			// No error return on Run; a wrong-run resume must not
			// silently probe from scratch (or worse, diverge).
			panic(fmt.Sprintf("experiments: resume from %s: %v", cfg.ResumeFrom, err))
		}
		if snap == nil {
			progress("resume: no checkpoint in %s; starting fresh", cfg.ResumeFrom)
		} else {
			resume = snap
			progress("resume: replaying to checkpoint barrier %v", snap.Barrier)
		}
	}

	// The RIR and IXP-directory indexes are pure functions of their
	// datasets; rebuilding them for every discovery run (6 VPs × ~28
	// refreshes) was pure waste. They are cached per dataset version —
	// scenario events can grow the delegation file mid-campaign (the
	// October 2016 AS turn-up does), which the length key detects,
	// since delegations are only ever appended.
	var idxCache struct {
		delegs, ixps int
		rir          *registry.Index
		ixp          *ixpdir.Index
	}
	bcfg := func(vp *scenario.VP) bdrmap.Config {
		if idxCache.rir == nil || idxCache.delegs != len(w.RIRFile.Delegations) || idxCache.ixps != len(w.Directory.IXPs) {
			idxCache.delegs = len(w.RIRFile.Delegations)
			idxCache.ixps = len(w.Directory.IXPs)
			idxCache.rir = registry.NewIndex(w.RIRFile)
			idxCache.ixp = ixpdir.NewIndex(w.Directory)
		}
		return bdrmap.Config{
			BGP:      w.BGP,
			Rels:     w.Graph,
			RIR:      idxCache.rir,
			IXP:      idxCache.ixp,
			Geo:      w.GeoDB,
			RDNS:     w.RDNS,
			Siblings: vp.Siblings,
		}
	}

	discover := func(st *vpState, t simclock.Time, record bool) {
		ref := tele.BeginSpan("discovery", st.vr.VP.ID, t)
		defer tele.EndSpan(ref, t)
		vr := st.vr
		bres, err := bdrmap.Run(vr.Prober, bcfg(vr.VP), t)
		if err != nil {
			progress("%s discovery at %v failed: %v", vr.VP.ID, t, err)
			return
		}
		for _, l := range bres.Links {
			target := prober.LinkTarget{Near: l.Near, Far: l.Far}
			if _, seen := vr.Links[target]; seen {
				continue
			}
			ts, err := vr.Prober.NewTSLP(target)
			if err != nil {
				continue // link visible in one trace but not stable
			}
			lr := &LinkRecord{Target: target, FarAS: l.FarAS, ViaIXP: l.ViaIXP,
				DiscoveredAt: t, tslp: ts, Verdicts: make(map[float64]analysis.Verdict)}
			ccfg := analysis.CollectorConfig{Campaign: cfg.Campaign, Step: cfg.Step, Flat: cfg.FlatSeries}
			if arenas != nil {
				ccfg.Arena = arenas[st.shard]
			}
			for name, cl := range vr.VP.CaseLinks {
				if cl == target {
					lr.CaseName = name
					if fw, ok := figureWindows[name]; ok {
						ccfg.FullResWindow = clamp(fw, cfg.Campaign)
					}
					if lw, ok := lossWindows[name]; ok && !cfg.DisableLoss {
						lr.lossIv = clamp(lw, cfg.Campaign)
						lr.lossCol = &loss.Collector{}
						// One batch per loss round over the window.
						lr.lossCol.Reserve(lr.lossIv.NumSteps(cfg.LossBatchEvery) + 1)
						// Stream completed batch rates into a compressed
						// grid alongside the batch store; LossGrid exposes
						// it after the campaign.
						lr.lossCol.BindGrid(loss.GridFor(lr.lossIv))
					}
				}
			}
			lr.Collector = analysis.NewCollector(ts, ccfg)
			if lr.CaseName != "" {
				// Record-route symmetry check at discovery (§5.2):
				// the paper verified that an increase in far RTT was
				// attributable to the probed link by confirming the
				// reverse path mirrors the forward one.
				if rr, err := vr.Prober.RRPing(target.Far, t); err == nil && !rr.Lost {
					v := rrcheck.Analyze(rr.Recorded, target.Far, rr.Full, sameRouterOracle(w))
					lr.Symmetry = &v
				}
			}
			vr.Links[target] = lr
			vr.order = append(vr.order, target)
		}
		if record {
			truth := w.TruthNeighbors(vr.VP)
			frac, _, _ := bdrmap.ValidateNeighbors(bres, truth)
			vr.Snapshots = append(vr.Snapshots, Snapshot{
				At: t, Bdrmap: bres,
				TruthNeighborCount: len(truth), Coverage: frac,
			})
		}
	}

	// Initial discovery.
	w.AdvanceTo(cfg.Campaign.Start)
	for _, st := range states {
		ws := time.Now()
		discover(st, cfg.Campaign.Start, false)
		progress("%s: initial discovery found %d links (took %v)",
			st.vr.VP.ID, len(st.vr.Links), time.Since(ws).Round(time.Millisecond))
	}

	// Main probing loop — step-batched. A *barrier step* is any step
	// needing single-threaded work: scenario event application, a
	// discovery refresh, a Table-2 snapshot, or topology-churn path
	// re-resolution. The planner (simclock.Interval.StepBatches) opens a
	// batch at each barrier step, runs the serialized work there, then
	// scans ahead collecting quiescent steps (up to BatchSteps). The
	// fluid queues advance once per batch with every step's frontier
	// recorded (AdvanceQueuesBatch); the persistent worker pool then
	// replays the whole batch, each worker pointing its VP's probe
	// context at the step being sampled (SetBatchStep). Workers touch
	// only their own VP's state (pacing bucket, nonce stream,
	// collectors) and visit (step, link) pairs in exactly the per-step
	// engine's order, so results are bit-identical for any worker count
	// and any batch size — see DESIGN.md §9.
	nextRefresh := cfg.Campaign.Start.Add(cfg.RefreshEvery)
	lossEvery := int(cfg.LossBatchEvery / cfg.Step)
	if lossEvery < 1 {
		lossEvery = 1
	}
	pathVersion := w.Net.Version()

	// Probe-budget scheduler (optional). Each VP gets its own link
	// view, indexed identically to links[si]; utility state is fed by
	// the VP's own worker and re-ranked only at recompute barriers, so
	// the schedule is a pure function of (budget config, virtual time,
	// collected series) — never of worker interleaving.
	var sched *budget.Scheduler
	bviews := make([]*budget.VPLinks, len(states))
	if cfg.Budget != nil && cfg.Budget.Enabled() {
		sched = budget.New(*cfg.Budget, cfg.Campaign)
		for si := range states {
			bviews[si] = sched.AddVP()
		}
	}

	// Per-VP link slices, refreshed only when discovery grows them, so
	// the hot loop never walks the Links map.
	svc := cfg.Observatory
	links := make([][]*LinkRecord, len(states))
	refreshLinks := func() {
		for si, st := range states {
			if len(links[si]) != len(st.vr.order) {
				links[si] = st.vr.SortedLinks()
				if sched != nil {
					// Register newly discovered links with the budget
					// scheduler; they start at full rate (exploration).
					for bviews[si].Len() < len(links[si]) {
						bviews[si].AddLink()
					}
				}
				if svc != nil {
					// Register newly discovered links with the streaming
					// observatory (Watch is idempotent by (vp, target);
					// the service keeps its own sorted feed order, so
					// registration grouping cannot affect the alert log).
					for _, lr := range links[si] {
						svc.Watch(st.vr.VP.ID, lr.Target, lr.Collector,
							lr.CaseName, lr.Symmetry != nil && !lr.Symmetry.Symmetric)
					}
				}
			}
		}
	}
	refreshLinks()

	// Checkpoint barrier chain, anchored at campaign start so the
	// writing and resumed runs force the same barrier instants
	// (Start + k·CheckpointEvery, advanced past every barrier that
	// lands). buildSnapshot and restoreSnapshot run only at the top of
	// open(t) — before any of the barrier's own work — so capture in
	// one run and restore in another see the engine at the identical
	// point: every batch below t probed, nothing at or after t touched.
	ckptOn := cfg.CheckpointDir != ""
	var ckptNext simclock.Time
	if ckptOn {
		ckptNext = cfg.Campaign.Start.Add(cfg.CheckpointEvery)
	}
	buildSnapshot := func(t simclock.Time) *checkpoint.Snapshot {
		snap := &checkpoint.Snapshot{
			Manifest: manifest,
			Barrier:  t,
			VPs:      make([]checkpoint.VPState, len(states)),
			Budget:   sched.Checkpoint(),
		}
		for si, st := range states {
			vs := checkpoint.VPState{
				RoundsScheduled: st.vr.RoundsScheduled,
				RoundsDown:      st.vr.RoundsDown,
				Prober:          st.vr.Prober.Checkpoint(),
				Links:           make([]checkpoint.LinkState, len(links[si])),
			}
			for li, lr := range links[si] {
				vs.Links[li] = checkpoint.LinkState{Collector: lr.Collector.Checkpoint()}
				if lr.lossCol != nil {
					lc := lr.lossCol.Checkpoint()
					vs.Links[li].Loss = &lc
				}
			}
			snap.VPs[si] = vs
		}
		if arenas != nil {
			snap.Arenas = make([][]byte, len(arenas))
			for i, a := range arenas {
				snap.Arenas[i] = a.State()
			}
		}
		return snap
	}
	restoreSnapshot := func(snap *checkpoint.Snapshot) {
		// Shape mismatches here mean the replayed discovery diverged
		// from the writing run's — impossible per the manifest unless
		// the determinism invariant itself broke, so fail loudly.
		if len(snap.VPs) != len(states) {
			panic(fmt.Sprintf("experiments: resume: %d VPs, checkpoint has %d",
				len(states), len(snap.VPs)))
		}
		for si, st := range states {
			vs := &snap.VPs[si]
			if len(vs.Links) != len(links[si]) {
				panic(fmt.Sprintf("experiments: resume: %s has %d links at the barrier, checkpoint has %d",
					st.vr.VP.ID, len(links[si]), len(vs.Links)))
			}
			st.vr.RoundsScheduled = vs.RoundsScheduled
			st.vr.RoundsDown = vs.RoundsDown
			st.vr.Prober.RestoreCheckpoint(vs.Prober)
			for li, lr := range links[si] {
				lr.Collector.RestoreCheckpoint(vs.Links[li].Collector)
				if (lr.lossCol != nil) != (vs.Links[li].Loss != nil) {
					panic("experiments: resume: loss-collector binding mismatch")
				}
				if lr.lossCol != nil {
					lr.lossCol.RestoreCheckpoint(*vs.Links[li].Loss)
				}
			}
		}
		sched.RestoreCheckpoint(snap.Budget)
		if len(snap.Arenas) != len(arenas) {
			panic(fmt.Sprintf("experiments: resume: %d shard arenas, checkpoint has %d",
				len(arenas), len(snap.Arenas)))
		}
		for i, a := range arenas {
			a.RestoreState(snap.Arenas[i])
		}
	}
	writeCheckpoint := func(t simclock.Time) {
		ws := time.Now()
		n, err := checkpoint.Write(cfg.CheckpointDir, buildSnapshot(t))
		if err != nil {
			panic(fmt.Sprintf("experiments: checkpoint at %v: %v", t, err))
		}
		progress("checkpoint at %v: %d payload bytes (took %v)",
			t, n, time.Since(ws).Round(time.Millisecond))
	}

	// Shared batch state, written by the coordinator between pool
	// rounds; the pool's channel handoff publishes it to workers.
	var batch []simclock.Time
	firstIdx := 0
	var teleEng *telemetry.EngineStats
	if tele != nil {
		teleEng = &tele.Engine
	}
	// With sharding on, the pool's task is a shard: one worker walks
	// the shard's VPs in ascending index order, so the (step, link)
	// visit order within a shard is fixed regardless of worker count —
	// the shard is both the memory and the scheduling unit.
	poolTasks := len(states)
	if sharded {
		poolTasks = shards
	}
	pool := newProbePool(effectiveWorkers(poolTasks, cfg.Workers), teleEng)
	if tele != nil && sharded {
		tele.Engine.SetShards(shards)
	}
	runVP := func(si int) {
		st := states[si]
		pr := st.vr.Prober
		bv := bviews[si]
		for k, t := range batch {
			st.vr.RoundsScheduled++
			doLoss := (firstIdx+k)%lossEvery == 0
			if st.outage.Down(t) {
				// VP offline: nothing is probed, so every link's grid
				// slot stays missing; the skipped rounds are accounted
				// for sample-yield reporting. Down(t) is a pure
				// function of t, so the skip pattern — and with it the
				// pacing-bucket and nonce streams — is identical for
				// any worker count or batch size. The budget gate is
				// consulted first: a round the scheduler would not have
				// run anyway is a skip, not a miss, whether or not the
				// VP happened to be down — each round lands in exactly
				// one of RoundSkipped/RoundMissed, so VPYield's
				// SampleYield never double-counts an overlap.
				st.vr.RoundsDown++
				for li, lr := range links[si] {
					if bv.Skip(li, firstIdx+k) {
						lr.Collector.RoundSkipped()
						if doLoss && lr.lossCol != nil && lr.lossIv.Contains(t) {
							lr.lossCol.RoundSkipped()
						}
						continue
					}
					lr.Collector.RoundMissed()
					if doLoss && lr.lossCol != nil && lr.lossIv.Contains(t) {
						lr.lossCol.RoundMissed()
					}
				}
				continue
			}
			pr.SetBatchStep(k)
			for li, lr := range links[si] {
				// Budget gate: like Outage.Down, a nil-safe pure
				// function of the global step index — no allocation,
				// no shared mutable state, identical for any worker
				// count or batch size.
				if bv.Skip(li, firstIdx+k) {
					lr.Collector.RoundSkipped()
					if doLoss && lr.lossCol != nil && lr.lossIv.Contains(t) {
						lr.lossCol.RoundSkipped()
					}
					continue
				}
				s := lr.Collector.RoundFrozen(t)
				bv.Observe(li, t, float64(s.FarRTT)/float64(time.Millisecond), s.FarLost)
				if doLoss && lr.lossCol != nil && lr.lossIv.Contains(t) {
					for i := 0; i < loss.BatchSize; i++ {
						at := t.Add(time.Duration(i) * time.Second)
						_, farLost := lr.tslp.LossRoundFrozen(at)
						lr.lossCol.Record(at, farLost)
					}
				}
			}
		}
		pr.SetBatchStep(-1)
	}
	pool.run = runVP
	if sharded {
		pool.run = func(shard int) {
			for si := shard; si < len(states); si += shards {
				runVP(si)
			}
		}
	}

	// publish republishes the hot-path plain counters (per-VP probe
	// contexts, the network's inject accounting, fault episode edges)
	// into the atomic telemetry counters. Only called at barriers —
	// when the worker pool is provably idle (the channel handoff of
	// the previous round happens-before this read) — and after the
	// campaign, so the reads are race-free and the /metrics endpoint
	// sees totals at most one batch stale during the run. Accounting
	// only: nothing flows back into the simulation. Allocation-free
	// (the zero-alloc steady-state test runs it every round).
	publish := func() {
		if tele == nil {
			return
		}
		var agg netsim.ProbeStats
		for _, st := range states {
			agg.Merge(st.vr.Prober.ProbeStats())
		}
		p := &tele.Probe
		p.Probes.Store(agg.Probes)
		p.Delivered.Store(agg.Delivered)
		p.PipeDrops.Store(agg.PipeDrops)
		p.ICMPSilenced.Store(agg.ICMPSilenced)
		p.RateLimited.Store(agg.RateLimited)
		p.QueueFrozenObs.Store(agg.QueueFrozenObs)
		for i := 0; i < len(agg.RTTBuckets) && i < p.RTT.NumBuckets(); i++ {
			p.RTT.StoreBucket(i, agg.RTTBuckets[i])
		}
		is := w.Net.InjectStats()
		p.InjectWalks.Store(is.Walks)
		p.InjectDelivered.Store(is.Delivered)
		p.InjectLost.Store(is.Lost)
		p.InjectUnreachable.Store(is.Unreachable)
		if res.Faults != nil {
			tele.Faults.Entered.Store(res.Faults.Entered())
			tele.Faults.Exited.Store(res.Faults.Exited())
		}
		// Per-shard gauges: resident series bytes (the shard's shared
		// slab once, plus each collector's private state), links owned,
		// and rounds scheduled. O(links) atomic-free field reads plus
		// three atomic stores per shard — allocation-free, like the
		// rest of publish.
		for s := 0; s < shards && sharded; s++ {
			g := tele.Engine.Shard(s)
			if g == nil {
				break
			}
			resident := int64(arenas[s].MemBytes())
			var owned, rounds int64
			for si := s; si < len(states); si += shards {
				rounds += int64(states[si].vr.RoundsScheduled)
				owned += int64(len(links[si]))
				for _, lr := range links[si] {
					resident += int64(lr.Collector.MemBytes())
				}
			}
			g.ResidentBytes.Set(resident)
			g.LinksOwned.Set(owned)
			g.Rounds.Set(rounds)
		}
	}

	open := func(t simclock.Time) {
		// Checkpoint restore/capture first, before any of the barrier's
		// own work, so both sides of a restart see the same instant.
		if resume != nil && t >= resume.Barrier {
			restoreSnapshot(resume)
			progress("resume: restored measurement state at %v", t)
			resume = nil
			if ckptOn {
				// Continue the chain past the restored barrier instead
				// of redundantly rewriting its own snapshot.
				for ckptNext <= t {
					ckptNext = ckptNext.Add(cfg.CheckpointEvery)
				}
			}
		}
		if resume == nil && ckptOn && t >= ckptNext {
			writeCheckpoint(t)
			for ckptNext <= t {
				ckptNext = ckptNext.Add(cfg.CheckpointEvery)
			}
		}
		if tele != nil {
			tele.Engine.BatchesOpened.Inc()
			publish()
		}
		w.AdvanceTo(t)
		if t >= nextRefresh {
			for _, st := range states {
				discover(st, t, false)
			}
			nextRefresh = t.Add(cfg.RefreshEvery)
			progress("refreshed discovery at %v", t)
		}
		for _, st := range states {
			for st.snapIdx < len(st.snapshots) && t >= st.snapshots[st.snapIdx] {
				discover(st, t, true)
				progress("%s snapshot at %v", st.vr.VP.ID, t)
				st.snapIdx++
			}
		}
		if v := w.Net.Version(); v != pathVersion {
			// Topology churn (route invalidation, link removal): refresh
			// cached probe trajectories at the barrier so workers never
			// mutate path state. Links that left the routed path keep
			// their stale marker and report loss, as the paper observed.
			for _, st := range states {
				for _, target := range st.vr.order {
					_ = st.vr.Links[target].tslp.EnsureResolved()
				}
			}
			pathVersion = v
		}
		refreshLinks()
		// Budget recompute runs last so links registered this barrier
		// are ranked too. The cadence is pure virtual time (Due forces
		// these instants to be barriers via quiescent below), so the
		// recompute sees identical collected state for any Workers ×
		// BatchSteps — the worker pool is idle at barriers and its
		// channel handoff publishes all per-link writes.
		if sched.Due(t) {
			if resume != nil {
				// Replay: no probes ran, so there is no window state to
				// fold — just keep the barrier chain aligned with the
				// writing run's (the snapshot restores the real cursor).
				sched.SkipRecomputesTo(t)
			} else {
				sched.RecomputeAt(t)
			}
		}
		if svc != nil && resume == nil {
			// Streaming observatory feed, last: every earlier batch has
			// probed all steps strictly before t, so aggregation slots
			// closing at or before t are final. During checkpoint replay
			// (resume != nil) collectors are empty and the feed skips;
			// the restore barrier flips resume to nil above, and this
			// call then advances each cursor from zero to the frontier
			// in one sweep — the same per-slot sequence an uninterrupted
			// run fed, so the alert log is bit-identical across restarts.
			svc.ObserveBarrier(t)
		}
	}
	// quiescent reports whether step t needs none of open's serialized
	// work; it runs after every earlier step's open, so the state it
	// reads (refresh deadline, snapshot cursors, pending events) is
	// current. Topology only churns through events, discovery, or
	// snapshots, so a step clearing those three cannot churn paths.
	quiescent := func(t simclock.Time) bool {
		if t >= nextRefresh {
			return false
		}
		if resume != nil {
			// The snapshot's barrier must be a barrier here too: the
			// restore runs in open, at the exact instant the writing
			// run captured.
			if t >= resume.Barrier {
				return false
			}
		} else if ckptOn && t >= ckptNext {
			// Checkpoint instants are barriers, so snapshots are taken
			// at the proven safe points (workers drained, per-VP state
			// consistent at one virtual instant).
			return false
		}
		if sched.Due(t) {
			// Budget recompute instants are barriers: utilities are
			// re-ranked at fixed virtual times, never at batch edges
			// (which depend on BatchSteps).
			return false
		}
		for _, st := range states {
			if st.snapIdx < len(st.snapshots) && t >= st.snapshots[st.snapIdx] {
				return false
			}
		}
		ev := w.PendingEvents()
		return len(ev) == 0 || ev[0].At > t
	}
	flush := func(first int, steps []simclock.Time) {
		w.AdvanceTo(steps[len(steps)-1]) // no events in range, by quiescence
		w.Net.AdvanceQueuesBatch(steps)
		firstIdx, batch = first, steps
		ref := telemetry.SpanNone
		if tele != nil {
			ref = tele.BeginSpan("probe-batch", "", steps[0])
			tele.Engine.Flushes.Inc()
			tele.Engine.QuiescentSteps.Add(uint64(len(steps) - 1))
			tele.Engine.RoundsDispatched.Add(uint64(len(steps) * len(states)))
			tele.Engine.BatchLen.Observe(float64(len(steps)))
		}
		if resume == nil {
			pool.do(poolTasks)
		}
		// else: replay — the world and queues advance (they are pure
		// functions of virtual time and must be at the barrier state
		// when the snapshot lands), but no probes fire and no per-VP
		// accounting accrues; the snapshot restores all of it.
		tele.EndSpan(ref, steps[len(steps)-1])
	}
	probeRef := tele.BeginSpan("probing", "", cfg.Campaign.Start)
	probeWall := time.Now()
	cfg.Campaign.StepBatches(cfg.Step, cfg.BatchSteps, open, quiescent, flush)
	pool.close()
	tele.EndSpan(probeRef, cfg.Campaign.End)
	publish()
	if svc != nil {
		// Drain the tail: slots between the last barrier and campaign
		// end close at or before End, so one final frontier advance
		// completes every link's stream.
		svc.ObserveBarrier(cfg.Campaign.End)
	}

	// Per-link analysis across the threshold sweep.
	progress("campaign done; analyzing %s of series (probing took %v)",
		cfg.Campaign.Duration(), time.Since(probeWall).Round(time.Millisecond))
	anaRef := tele.BeginSpan("analysis", "", cfg.Campaign.End)
	anaWall := time.Now()
	res.Reanalyze(cfg.Workers)
	if svc != nil {
		// The analysis phase sealed every collector; the service now
		// derives its end-of-campaign verdicts from the same batch
		// sweep over the same frozen series — bit-identical to
		// res.Reanalyze's by construction (DESIGN.md §16).
		svc.Finalize(cfg.Thresholds)
	}
	tele.EndSpan(anaRef, cfg.Campaign.End)
	for _, vr := range res.VPs {
		progress("%s: %d links analyzed", vr.VP.ID, len(vr.Links))
	}
	progress("analysis done (took %v)", time.Since(anaWall).Round(time.Millisecond))
	return res
}

// Reanalyze re-runs the per-link threshold-sweep analysis, fanning the
// links out across the given number of workers. Each link is one task
// running the whole Table-1 sweep (analysis.AnalyzeLinkSweep): the
// windowed rank-CUSUM detection and the diurnal fold run once per link
// end and every threshold reuses them — the detect-once/threshold-many
// optimization that took the analysis phase from ~4× to ~1× detection
// cost. Each worker threads one analysis.Sweeper, so detector scratch
// (rank transform, bootstrap shuffle) is reused across its links too.
// AnalyzeLinkSweep is pure and each task writes only its own record,
// so ordering cannot affect results. Run calls this once; it is
// exported so callers can re-derive verdicts after changing
// Cfg.Thresholds, and it is the benchmark surface for the analysis
// fan-out.
func (r *Result) Reanalyze(workers int) {
	thresholds := r.Cfg.Thresholds
	analyzeOne := func(sw *analysis.Sweeper, lr *LinkRecord) {
		ls := lr.Collector.Series()
		if lr.Verdicts == nil {
			lr.Verdicts = make(map[float64]analysis.Verdict, len(thresholds))
		}
		verdicts := sw.AnalyzeLinkSweep(ls, analysis.DefaultConfig(), thresholds)
		for k, thr := range thresholds {
			v := verdicts[k]
			if lr.Symmetry != nil && !lr.Symmetry.Symmetric {
				// An asymmetric route invalidates the TSLP
				// attribution: the far-RTT rise may come from a
				// reverse path that does not cross this link.
				v.Symmetric = false
				v.Congested = false
			}
			lr.Verdicts[thr] = v
		}
		if lr.lossCol != nil {
			lr.LossBatches = lr.lossCol.Batches()
		}
	}
	var sweepers []*analysis.Sweeper
	if r.shards > 1 {
		// Sharded campaigns seal a shard's collectors into one shared
		// arena (Series → Seal appends to the slab), so the unit of
		// analysis parallelism is the shard: workers own whole shards
		// and walk their links in VP order — the single-writer rule
		// the arena requires, and the same visit order every time.
		shardLinks := make([][]*LinkRecord, r.shards)
		for i, vr := range r.VPs {
			s := i % r.shards
			shardLinks[s] = append(shardLinks[s], vr.SortedLinks()...)
		}
		sweepers = make([]*analysis.Sweeper, effectiveWorkers(r.shards, workers))
		for w := range sweepers {
			sweepers[w] = analysis.NewSweeper()
		}
		parallelWorkers(r.shards, workers, func(w, s int) {
			for _, lr := range shardLinks[s] {
				analyzeOne(sweepers[w], lr)
			}
		})
	} else {
		var tasks []*LinkRecord
		for _, vr := range r.VPs {
			tasks = append(tasks, vr.SortedLinks()...)
		}
		sweepers = make([]*analysis.Sweeper, effectiveWorkers(len(tasks), workers))
		for w := range sweepers {
			sweepers[w] = analysis.NewSweeper()
		}
		parallelWorkers(len(tasks), workers, func(w, i int) {
			analyzeOne(sweepers[w], tasks[i])
		})
	}
	if tele := r.Cfg.Telemetry; tele != nil {
		// Sweeper stats are plain per-worker counters; parallelWorkers
		// has joined, so summing them here is race-free. Add (not
		// Store): Reanalyze may run several times per campaign.
		var s analysis.SweeperStats
		for _, sw := range sweepers {
			st := sw.Stats()
			s.Sweeps += st.Sweeps
			s.FoldsComputed += st.FoldsComputed
			s.FoldsReused += st.FoldsReused
		}
		tele.Analysis.Sweeps.Add(s.Sweeps)
		tele.Analysis.FoldsComputed.Add(s.FoldsComputed)
		tele.Analysis.FoldsReused.Add(s.FoldsReused)
	}
}

// effectiveWorkers is the worker count parallelWorkers actually uses:
// clamped to the task count, floored at one.
func effectiveWorkers(n, workers int) int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// parallelWorkers runs fn(w, 0..n-1) across at most workers goroutines
// pulling indices from a shared atomic counter, handing each invocation
// its worker index (0 ≤ w < effectiveWorkers(n, workers)) so callers
// can give every worker goroutine private reusable state (analysis
// sweepers, detector scratch) without locking. workers ≤ 1 (or n ≤ 1)
// runs inline with no goroutines. The probing loop no longer uses this
// — it keeps a persistent probePool across the campaign — but the
// one-shot analysis fan-out does not need goroutine reuse.
func parallelWorkers(n, workers int, fn func(worker, i int)) {
	workers = effectiveWorkers(n, workers)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for k := 0; k < workers; k++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(k)
	}
	wg.Wait()
}

// sameRouterOracle answers alias questions from simulator ground
// truth (the role alias resolution plays in a real deployment).
func sameRouterOracle(w *scenario.World) rrcheck.SameRouter {
	return func(a, b netaddr.Addr) bool {
		na, _, okA := w.Net.OwnerOfAddr(a)
		nb, _, okB := w.Net.OwnerOfAddr(b)
		return okA && okB && na == nb
	}
}

// clamp intersects two intervals.
func clamp(iv, bounds simclock.Interval) simclock.Interval {
	if iv.Start < bounds.Start {
		iv.Start = bounds.Start
	}
	if iv.End > bounds.End {
		iv.End = bounds.End
	}
	if iv.End < iv.Start {
		iv.End = iv.Start
	}
	return iv
}
