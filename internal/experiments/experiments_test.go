package experiments

import (
	"bytes"
	"testing"
	"time"

	"afrixp/internal/scenario"
	"afrixp/internal/simclock"
)

// shortRun drives a 30-day scaled-down campaign covering the
// QCELL–NETPAGE phase-1/phase-2 transition.
func shortRun(t testing.TB) *Result {
	t.Helper()
	return Run(Config{
		Opts: scenario.Options{Seed: 3, Scale: 0.12},
		Campaign: simclock.Interval{
			Start: simclock.Date(2016, time.April, 10),
			End:   simclock.Date(2016, time.May, 10),
		},
		RefreshEvery: 10 * 24 * time.Hour,
	})
}

var cached *Result

func run(t testing.TB) *Result {
	if cached == nil {
		cached = shortRun(t)
	}
	return cached
}

func TestCampaignDiscoversLinksPerVP(t *testing.T) {
	res := run(t)
	if len(res.VPs) != 6 {
		t.Fatalf("VPs = %d", len(res.VPs))
	}
	for _, vr := range res.VPs {
		if len(vr.Links) == 0 {
			t.Errorf("%s discovered no links", vr.VP.ID)
		}
		if len(vr.Snapshots) == 0 {
			t.Errorf("%s has no snapshots", vr.VP.ID)
		}
		for _, s := range vr.Snapshots {
			if s.Coverage < 0.85 {
				t.Errorf("%s snapshot %v coverage %.2f", vr.VP.ID, s.At, s.Coverage)
			}
		}
	}
}

func TestTable1Shape(t *testing.T) {
	res := run(t)
	rows := Table1(res)
	if rows[len(rows)-1].VP != "All VPs" {
		t.Fatal("missing total row")
	}
	byVP := map[string]Table1Row{}
	for _, r := range rows {
		byVP[r.VP] = r
	}
	// Flagged counts must be monotonically non-increasing in the
	// threshold for every VP — the Table 1 invariant.
	for _, r := range rows {
		prev := int(1 << 30)
		for _, thr := range res.Cfg.Thresholds {
			if r.Flagged[thr] > prev {
				t.Errorf("%s: flagged rises with threshold: %v", r.VP, r.Flagged)
			}
			prev = r.Flagged[thr]
			if r.Diurnal[thr] > r.Flagged[thr] {
				t.Errorf("%s: diurnal exceeds flagged", r.VP)
			}
		}
	}
	// The noise populations must flag far more links at VP5/VP6 than
	// they mark diurnal (the 147(0) / 88(0) shape).
	for _, vp := range []string{"VP5", "VP6"} {
		r := byVP[vp]
		if r.Flagged[10] < 3 {
			t.Errorf("%s: flagged[10] = %d, want several", vp, r.Flagged[10])
		}
		if r.Diurnal[10] != 0 {
			t.Errorf("%s: diurnal = %d, want 0", vp, r.Diurnal[10])
		}
	}
	// VP4's NETPAGE is congested and diurnal within this window.
	if byVP["VP4"].Diurnal[10] < 1 {
		t.Errorf("VP4 diurnal = %d, want ≥1", byVP["VP4"].Diurnal[10])
	}
	// Rendering works.
	var buf bytes.Buffer
	if err := Table1Report(res).Render(&buf); err != nil || buf.Len() == 0 {
		t.Fatal("Table1Report render failed")
	}
}

func TestTable2Shape(t *testing.T) {
	res := run(t)
	rows := Table2(res)
	if len(rows) != 18 { // 6 VPs × 3 snapshots
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Links < r.PeeringLinks {
			t.Errorf("%s: peering links exceed links", r.VP)
		}
		if r.Neighbors < r.Peers {
			t.Errorf("%s: peers exceed neighbors", r.VP)
		}
	}
	var buf bytes.Buffer
	if err := Table2Report(res).Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestHeadlineFractionSmall(t *testing.T) {
	res := run(t)
	rows, frac := Headline(res)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The paper's key result: congestion is rare (2.2 %). Our scaled
	// world must agree in shape: more than zero, well under 20 %.
	if frac <= 0 || frac > 0.2 {
		t.Fatalf("congested fraction = %.3f, want (0, 0.2]", frac)
	}
}

func TestBdrmapAccuracyHigh(t *testing.T) {
	res := run(t)
	if acc := BdrmapAccuracy(res); acc < 0.9 {
		t.Fatalf("bdrmap accuracy = %.2f", acc)
	}
}

func TestWaveformsIncludeNetpage(t *testing.T) {
	res := run(t)
	wfs := Waveforms(res)
	found := false
	for _, wf := range wfs {
		if wf.Case == "QCELL-NETPAGE" {
			found = true
			if wf.AW < 5 || wf.AW > 40 {
				t.Errorf("NETPAGE A_w = %.1f", wf.AW)
			}
		}
	}
	if !found {
		t.Fatal("QCELL-NETPAGE waveform missing")
	}
}

func TestFiguresExtractable(t *testing.T) {
	res := run(t)
	figs := Figures(res)
	// The 30-day window covers fig4a (tail) and fig4b (start).
	ids := map[string]bool{}
	for _, f := range figs {
		ids[f.ID] = true
		var buf bytes.Buffer
		if err := f.Render(&buf, 70, 12); err != nil {
			t.Errorf("%s render: %v", f.ID, err)
		}
		buf.Reset()
		if err := f.WriteCSV(&buf); err != nil || buf.Len() == 0 {
			t.Errorf("%s csv: %v", f.ID, err)
		}
	}
	if !ids["fig4a"] || !ids["fig4b"] {
		t.Fatalf("figure coverage: %v", ids)
	}
}

func TestCaseLinkSymmetryChecked(t *testing.T) {
	res := run(t)
	vr, _ := res.VPByID("VP4")
	lr, ok := vr.CaseLink("QCELL-NETPAGE")
	if !ok {
		t.Fatal("case link missing")
	}
	if lr.Symmetry == nil {
		t.Fatal("record-route symmetry not measured for the case link")
	}
	if !lr.Symmetry.Symmetric {
		t.Fatalf("paper-world routes are symmetric: %+v", lr.Symmetry)
	}
	// Symmetric verdicts must propagate into the analysis.
	if v := lr.Verdicts[10]; !v.Symmetric {
		t.Fatal("verdict lost the symmetry bit")
	}
}

func TestNetpagePhaseContrast(t *testing.T) {
	res := run(t)
	var fa, fb *Figure
	for i := range Figures(res) {
		figs := Figures(res)
		switch figs[i].ID {
		case "fig4a":
			fa = &figs[i]
		case "fig4b":
			fb = &figs[i]
		}
	}
	if fa == nil || fb == nil {
		t.Skip("figures not covered by window")
	}
	sa, sb := fa.Stats(), fb.Stats()
	if sa.P95 < sb.P95+5 {
		t.Fatalf("phase 1 P95 %.1f should exceed phase 2 P95 %.1f by >5ms", sa.P95, sb.P95)
	}
}
