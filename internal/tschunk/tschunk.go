// Package tschunk is the columnar, compressed backing store for the
// regular-grid time series the campaign engine collects. A series is a
// fixed grid of float64 samples (NaN marks missing); tschunk splits the
// grid into fixed-size immutable blocks and XOR-packs each block
// Gorilla-style (Pelkonen et al., "Gorilla: A Fast, Scalable, In-Memory
// Time Series Database"). Timestamps are never stored: the grid is
// regular, so the delta-of-delta stream every Gorilla implementation
// carries degenerates to a constant and the slot index *is* the
// timestamp (see DESIGN.md §12).
//
// The write path is an append-only Builder: samples land in a raw
// in-place block (the campaign's streaming min/max filters re-touch the
// current bin many times), and a block is compressed exactly once, when
// the write frontier passes it. Sealing into a pre-reserved arena keeps
// the steady-state probing step allocation-free. The read path decodes
// one block at a time into caller-owned buffers, so an analysis pass
// streams a year-long series through a few kilobytes of scratch instead
// of materializing it.
package tschunk

import (
	"fmt"
	"math"
	"math/bits"
)

// BlockLen is the number of grid slots per block. 256 slots cover ~2h
// of native 5-minute samples per few blocks while keeping the decode
// scratch (2 KiB) comfortably stack-sized; larger blocks amortize the
// 8-byte raw first value better but make point reads dearer.
const BlockLen = 256

// Missing is the in-band missing marker (IEEE NaN). Any NaN bit
// pattern round-trips through the codec unchanged; this is the
// canonical one the grid is initialized with.
var Missing = math.NaN()

// blockRef locates one sealed block inside the arena. Blocks can share
// arena ranges: every all-missing block of full length points at the
// same few bytes.
type blockRef struct {
	off, size int // arena byte range
	count     int // values encoded (BlockLen except the tail)
}

// Chunk is a sealed, immutable compressed series: every block
// XOR-packed into one arena. Chunks are safe for concurrent readers.
type Chunk struct {
	n      int
	arena  []byte
	blocks []blockRef
	// enc is the chunk's own encoded payload (shared all-missing
	// blocks counted once). Equal to len(arena) for private-arena
	// chunks; smaller for chunks sealed into a shared Arena slab.
	enc int
}

// Len returns the number of grid slots.
func (c *Chunk) Len() int { return c.n }

// NumBlocks returns the number of blocks.
func (c *Chunk) NumBlocks() int { return len(c.blocks) }

// BlockBase returns the grid slot of block b's first value.
func (c *Chunk) BlockBase(b int) int { return b * BlockLen }

// EncodedSize returns the compressed payload size in bytes. Shared
// all-missing blocks are counted once, matching resident memory.
func (c *Chunk) EncodedSize() int { return c.enc }

// RawSize returns the size the same grid occupies as flat []float64.
func (c *Chunk) RawSize() int { return 8 * c.n }

// DecodeBlock decodes block b into dst (sliced to the block's value
// count) and returns it. dst must have capacity ≥ BlockLen; pass the
// same buffer across calls for allocation-free streaming.
func (c *Chunk) DecodeBlock(b int, dst []float64) []float64 {
	ref := c.blocks[b]
	dst = dst[:ref.count]
	decodeBlock(c.arena[ref.off:ref.off+ref.size], dst)
	return dst
}

// At returns the value at grid slot i. Each call decodes the covering
// block's prefix — O(BlockLen); use a Cursor or DecodeBlock for
// anything denser than point reads.
func (c *Chunk) At(i int) float64 {
	if i < 0 || i >= c.n {
		panic(fmt.Sprintf("tschunk: slot %d out of range [0,%d)", i, c.n))
	}
	var buf [BlockLen]float64
	vals := c.DecodeBlock(i/BlockLen, buf[:0])
	return vals[i%BlockLen]
}

// Cursor is a random-access reader that caches the last decoded block,
// making runs of nearby reads cheap. Not safe for concurrent use.
type Cursor struct {
	c    *Chunk
	blk  int
	vals []float64
	buf  [BlockLen]float64
}

// NewCursor builds a cursor over c.
func NewCursor(c *Chunk) *Cursor { return &Cursor{c: c, blk: -1} }

// At returns the value at grid slot i.
func (cu *Cursor) At(i int) float64 {
	if i < 0 || i >= cu.c.n {
		panic(fmt.Sprintf("tschunk: slot %d out of range [0,%d)", i, cu.c.n))
	}
	if b := i / BlockLen; b != cu.blk {
		cu.vals = cu.c.DecodeBlock(b, cu.buf[:0])
		cu.blk = b
	}
	return cu.vals[i%BlockLen]
}

// Iter streams a chunk's values in grid order, one block decode at a
// time. Not safe for concurrent use.
type Iter struct {
	cu  *Cursor
	idx int
}

// NewIter builds an iterator positioned before slot 0.
func NewIter(c *Chunk) *Iter { return &Iter{cu: NewCursor(c)} }

// Next returns the next value; ok is false once the grid is exhausted.
func (it *Iter) Next() (v float64, ok bool) {
	if it.idx >= it.cu.c.n {
		return 0, false
	}
	v = it.cu.At(it.idx)
	it.idx++
	return v, true
}

// Builder accumulates a fixed-length grid and compresses it block by
// block as the write frontier advances. Writes must be grid-ordered at
// block granularity: once a later block is touched, earlier blocks are
// sealed and immutable (the campaign's collectors write strictly
// forward in virtual time). Within the current block, slots may be
// set, min-merged, and max-merged freely — the streaming filters
// re-touch a bin once per probing round.
//
// A Builder pre-reserves its arena at construction, so the per-sample
// write path never allocates; sealing allocates only if compression
// outruns the reserve (the arena then doubles). Not safe for
// concurrent use.
type Builder struct {
	n       int
	blocks  []blockRef
	arena   []byte
	shared  *Arena    // non-nil: blocks land in the shared slab instead
	cur     []float64 // raw current block, NaN-initialized
	curBlk  int       // block index cur covers
	scratch []byte    // per-block encode buffer (worst case sized)
	encLen  int       // own encoded bytes (shared NaN block counted once)
	nanRef  blockRef  // shared encoding of a full all-missing block
	hasNaN  bool
	dirty   bool // cur has at least one non-missing write
	sealed  *Chunk
}

// Arena is a shared append-only compression slab many Builders seal
// into — the campaign engine gives every shard one Arena so a shard's
// resident series bytes are a single accountable (and pre-reservable)
// allocation instead of thousands of per-link slices. Builders store
// absolute offsets, so slab growth never invalidates sealed blocks.
// Single-writer: all Builders on one Arena must seal from the same
// goroutine at any instant (the shard's worker), which also lets them
// share one worst-case encode scratch buffer.
type Arena struct {
	buf     []byte
	scratch []byte
}

// NewArena pre-reserves capBytes of slab.
func NewArena(capBytes int) *Arena {
	if capBytes < 0 {
		capBytes = 0
	}
	return &Arena{
		buf:     make([]byte, 0, capBytes),
		scratch: make([]byte, 0, worstBlockBytes),
	}
}

// Reserve grows the slab capacity so at least bytes more can be
// appended without reallocating. Growth adds a bounded 64 KiB headroom
// beyond the request: thousands of builders reserving a few hundred
// bytes each at discovery time would otherwise reallocate-and-copy the
// slab quadratically, while the fixed headroom keeps the cap-based
// per-shard memory accounting within 64 KiB of the exact sum.
func (a *Arena) Reserve(bytes int) {
	if need := len(a.buf) + bytes; need > cap(a.buf) {
		newCap := cap(a.buf) + 64<<10
		if newCap < need {
			newCap = need
		}
		grown := make([]byte, len(a.buf), newCap)
		copy(grown, a.buf)
		a.buf = grown
	}
}

// Len returns the encoded bytes resident in the slab.
func (a *Arena) Len() int { return len(a.buf) }

// Cap returns the reserved slab capacity.
func (a *Arena) Cap() int { return cap(a.buf) }

// MemBytes is the arena's resident footprint: slab reserve plus the
// shared encode scratch.
func (a *Arena) MemBytes() int { return cap(a.buf) + cap(a.scratch) }

// worstBlockBytes bounds one encoded block: 8 raw bytes for the first
// value, then ≤ 2+5+6+64 bits per value, plus byte-alignment slack.
const worstBlockBytes = 8 + (BlockLen*77)/8 + 2

// NewBuilder sizes a builder for an n-slot grid, reserving arena
// capacity for ~4 bytes per slot — comfortably above what min-filtered
// RTT grids encode to (long missing runs cost one bit per slot,
// repeated floors one bit, moving values a few bytes). Use Reserve to
// override before the first seal.
func NewBuilder(n int) *Builder { return NewBuilderArena(n, nil) }

// NewBuilderArena is NewBuilder sealing into a shared Arena: the
// builder reserves its ~4 bytes/slot in the slab instead of a private
// slice and borrows the arena's encode scratch. a == nil falls back
// to a private arena.
func NewBuilderArena(n int, a *Arena) *Builder {
	if n < 0 {
		panic("tschunk: negative grid length")
	}
	b := &Builder{
		n:      n,
		blocks: make([]blockRef, 0, (n+BlockLen-1)/BlockLen),
		shared: a,
	}
	if a != nil {
		a.Reserve(4*n + 16)
	} else {
		b.arena = make([]byte, 0, 4*n+16)
		b.scratch = make([]byte, 0, worstBlockBytes)
	}
	b.resetCur(0)
	return b
}

// Len returns the grid length.
func (b *Builder) Len() int { return b.n }

// Reserve grows the arena capacity to at least bytes. Call before
// probing starts to guarantee allocation-free sealing. On a shared
// Arena, reserves additional slab headroom instead.
func (b *Builder) Reserve(bytes int) {
	if b.shared != nil {
		b.shared.Reserve(bytes)
		return
	}
	if bytes > cap(b.arena) {
		grown := make([]byte, len(b.arena), bytes)
		copy(grown, b.arena)
		b.arena = grown
	}
}

// MemBytes is the builder's resident footprint beyond any shared
// slab: the raw current block plus, for private-arena builders, the
// arena reserve. Shared-arena builders report only the current block
// — their encoded bytes live in (and are accounted by) the Arena.
func (b *Builder) MemBytes() int {
	n := 8 * cap(b.cur)
	if b.shared == nil {
		n += cap(b.arena) + cap(b.scratch)
	}
	return n
}

// EncodedLen returns the builder's own encoded bytes so far (shared
// all-missing blocks counted once).
func (b *Builder) EncodedLen() int { return b.encLen }

// arenaBytes returns the byte store sealed blocks decode from.
func (b *Builder) arenaBytes() []byte {
	if b.shared != nil {
		return b.shared.buf
	}
	return b.arena
}

func (b *Builder) resetCur(blk int) {
	b.curBlk = blk
	lo := blk * BlockLen
	count := b.n - lo
	if count > BlockLen {
		count = BlockLen
	}
	if count < 0 {
		count = 0
	}
	if b.cur == nil {
		b.cur = make([]float64, BlockLen)
	}
	b.cur = b.cur[:count]
	for i := range b.cur {
		b.cur[i] = Missing
	}
	b.dirty = false
}

// advanceTo seals blocks until the current block covers slot i.
func (b *Builder) advanceTo(i int) {
	if b.sealed != nil {
		panic("tschunk: write after Seal")
	}
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("tschunk: slot %d out of range [0,%d)", i, b.n))
	}
	blk := i / BlockLen
	if blk < b.curBlk {
		panic(fmt.Sprintf("tschunk: out-of-order write: slot %d is in sealed block %d (current %d)",
			i, blk, b.curBlk))
	}
	for blk > b.curBlk {
		b.sealCur()
		b.resetCur(b.curBlk + 1)
	}
}

// sealCur compresses the current block into the arena. Full-length
// all-missing blocks (pre-discovery gaps, VP outages spanning blocks)
// are encoded once and shared.
func (b *Builder) sealCur() {
	if !b.dirty && len(b.cur) == BlockLen {
		if !b.hasNaN {
			b.nanRef = b.appendEncoded(b.cur)
			b.hasNaN = true
		}
		ref := b.nanRef
		b.blocks = append(b.blocks, ref)
		return
	}
	b.blocks = append(b.blocks, b.appendEncoded(b.cur))
}

func (b *Builder) appendEncoded(vals []float64) blockRef {
	scratch := b.scratch
	if b.shared != nil {
		scratch = b.shared.scratch
	}
	enc := encodeBlock(vals, scratch[:0])
	b.encLen += len(enc)
	if b.shared != nil {
		off := len(b.shared.buf)
		b.shared.buf = append(b.shared.buf, enc...)
		return blockRef{off: off, size: len(enc), count: len(vals)}
	}
	off := len(b.arena)
	b.arena = append(b.arena, enc...)
	return blockRef{off: off, size: len(enc), count: len(vals)}
}

// Set overwrites slot i.
func (b *Builder) Set(i int, v float64) {
	b.advanceTo(i)
	b.cur[i-b.curBlk*BlockLen] = v
	b.dirty = true
}

// MergeMin sets slot i to v if the slot is missing or v is smaller —
// the TSLP streaming minimum filter.
func (b *Builder) MergeMin(i int, v float64) {
	b.advanceTo(i)
	slot := &b.cur[i-b.curBlk*BlockLen]
	if math.IsNaN(*slot) || v < *slot {
		*slot = v
		b.dirty = true
	}
}

// MergeMax sets slot i to v if the slot is missing or v is larger —
// the loss-grid merge (worst batch rate per slot).
func (b *Builder) MergeMax(i int, v float64) {
	b.advanceTo(i)
	slot := &b.cur[i-b.curBlk*BlockLen]
	if math.IsNaN(*slot) || v > *slot {
		*slot = v
		b.dirty = true
	}
}

// At reads slot i back: from the raw current block when still open,
// otherwise by decoding the sealed block (O(BlockLen)).
func (b *Builder) At(i int) float64 {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("tschunk: slot %d out of range [0,%d)", i, b.n))
	}
	if b.sealed != nil {
		return b.sealed.At(i)
	}
	blk := i / BlockLen
	if blk == b.curBlk {
		return b.cur[i-b.curBlk*BlockLen]
	}
	if blk > b.curBlk {
		return Missing
	}
	ref := b.blocks[blk]
	var buf [BlockLen]float64
	dst := buf[:ref.count]
	decodeBlock(b.arenaBytes()[ref.off:ref.off+ref.size], dst)
	return dst[i%BlockLen]
}

// CopyRange copies slots [from, from+len(dst)) into dst without
// disturbing the write frontier: sealed blocks decode through a stack
// scratch, the open block is read raw, and slots the frontier has not
// reached yet come back Missing. This is the streaming observatory's
// read path over finalized bins at batch barriers — strictly read-side
// (the builder keeps compressing exactly as if the read never
// happened) and allocation-free. Works before and after Seal.
func (b *Builder) CopyRange(from int, dst []float64) {
	if len(dst) == 0 {
		return
	}
	to := from + len(dst)
	if from < 0 || to > b.n {
		panic(fmt.Sprintf("tschunk: range [%d,%d) out of [0,%d)", from, to, b.n))
	}
	var buf [BlockLen]float64
	for i := from; i < to; {
		blk := i / BlockLen
		lo := blk * BlockLen
		hi := lo + BlockLen
		if hi > b.n {
			hi = b.n
		}
		j := to
		if hi < j {
			j = hi
		}
		switch {
		case b.sealed != nil:
			vals := b.sealed.DecodeBlock(blk, buf[:0])
			copy(dst[i-from:j-from], vals[i-lo:])
		case blk > b.curBlk:
			for k := i; k < j; k++ {
				dst[k-from] = Missing
			}
		case blk == b.curBlk:
			copy(dst[i-from:j-from], b.cur[i-lo:])
		default:
			ref := b.blocks[blk]
			vals := buf[:ref.count]
			decodeBlock(b.arenaBytes()[ref.off:ref.off+ref.size], vals)
			copy(dst[i-from:j-from], vals[i-lo:])
		}
		i = j
	}
}

// Seal compresses the remaining blocks and returns the immutable
// chunk. Idempotent; writes after Seal panic.
func (b *Builder) Seal() *Chunk {
	if b.sealed != nil {
		return b.sealed
	}
	if b.n > 0 {
		last := (b.n - 1) / BlockLen
		for {
			b.sealCur()
			if b.curBlk == last {
				break
			}
			b.resetCur(b.curBlk + 1)
		}
	}
	b.sealed = &Chunk{n: b.n, arena: b.arenaBytes(), blocks: b.blocks, enc: b.encLen}
	return b.sealed
}

// ---------------------------------------------------------------
// Checkpoint state: the engine snapshots builders and arenas at batch
// barriers (DESIGN.md §15). A snapshot captures exactly the mutable
// write-side state — sealed block refs, the raw current block, and
// (for private-arena builders) the encoded bytes — so a restored
// builder continues the stream bit-identically.
// ---------------------------------------------------------------

// BlockRef is the exported mirror of blockRef for serialization.
type BlockRef struct {
	Off, Size, Count int
}

// BuilderState is a Builder's full mutable state at a barrier.
// Shared-arena builders set Shared and leave Arena empty — their
// encoded bytes live in the shared slab, snapshotted separately via
// Arena.State. (Shared is an explicit flag, not Arena == nil: a
// private builder that hasn't compressed a block yet has no arena
// bytes either, and gob erases the nil/empty distinction anyway.)
type BuilderState struct {
	N      int
	Blocks []BlockRef
	Shared bool
	Arena  []byte
	EncLen int
	HasNaN bool
	NaNRef BlockRef
	CurBlk int
	Cur    []float64
	Dirty  bool
}

// State captures the builder's write-side state. The returned slices
// alias live buffers: callers must serialize (or copy) the state
// before the next write, which barrier-synchronous checkpointing
// guarantees. Panics after Seal — sealed builders are immutable and
// cheaper to rebuild than to snapshot.
func (b *Builder) State() BuilderState {
	if b.sealed != nil {
		panic("tschunk: State after Seal")
	}
	st := BuilderState{
		N:      b.n,
		Blocks: make([]BlockRef, len(b.blocks)),
		Shared: b.shared != nil,
		EncLen: b.encLen,
		HasNaN: b.hasNaN,
		NaNRef: BlockRef{Off: b.nanRef.off, Size: b.nanRef.size, Count: b.nanRef.count},
		CurBlk: b.curBlk,
		Cur:    b.cur,
		Dirty:  b.dirty,
	}
	for i, ref := range b.blocks {
		st.Blocks[i] = BlockRef{Off: ref.off, Size: ref.size, Count: ref.count}
	}
	if b.shared == nil {
		st.Arena = b.arena
	}
	return st
}

// RestoreState overwrites the builder's write-side state from a
// snapshot taken at the same barrier of an equivalent run. The builder
// must have been freshly constructed with the same grid length and the
// same shared/private arena shape as the one snapshotted.
func (b *Builder) RestoreState(st BuilderState) {
	if b.sealed != nil {
		panic("tschunk: RestoreState after Seal")
	}
	if st.N != b.n {
		panic(fmt.Sprintf("tschunk: RestoreState grid length %d, builder has %d", st.N, b.n))
	}
	if st.Shared != (b.shared != nil) {
		panic("tschunk: RestoreState arena shape mismatch (shared vs private)")
	}
	b.blocks = b.blocks[:0]
	for _, ref := range st.Blocks {
		b.blocks = append(b.blocks, blockRef{off: ref.Off, size: ref.Size, count: ref.Count})
	}
	if b.shared == nil {
		b.arena = append(b.arena[:0], st.Arena...)
	}
	b.encLen = st.EncLen
	b.hasNaN = st.HasNaN
	b.nanRef = blockRef{off: st.NaNRef.Off, size: st.NaNRef.Size, count: st.NaNRef.Count}
	b.resetCur(st.CurBlk)
	copy(b.cur, st.Cur)
	b.dirty = st.Dirty
}

// State returns the arena's encoded bytes. The slice aliases the live
// slab; serialize before the next seal into it.
func (a *Arena) State() []byte { return a.buf }

// RestoreState overwrites the slab contents from a snapshot, keeping
// the reserved capacity (builder Reserve calls replayed before the
// restore remain honored).
func (a *Arena) RestoreState(buf []byte) {
	a.buf = append(a.buf[:0], buf...)
}

// ---------------------------------------------------------------
// Codec: Gorilla XOR float packing, one independent stream per block.
// ---------------------------------------------------------------
//
// The first value is stored raw (64 bits). Each subsequent value is
// XORed with its predecessor's bit pattern:
//
//	xor == 0            → '0'
//	fits prior window   → '10' + meaningful bits (window width)
//	new window          → '11' + 5b leading zeros (clamped to 31)
//	                           + 6b (significant bits − 1)
//	                           + significant bits
//
// Operating on bit patterns makes the codec exactly lossless: every
// NaN payload, ±Inf, negative zero, and denormal round-trips
// bit-identically, which the missing-marker encoding and the repo's
// bit-identity invariant both depend on.

type bitWriter struct {
	buf  []byte
	acc  uint64
	nacc uint // bits pending in acc (MSB-aligned count)
}

func (w *bitWriter) writeBits(v uint64, n uint) {
	if n == 0 {
		return
	}
	if n < 64 {
		v &= (1 << n) - 1
	}
	for n > 0 {
		free := 64 - w.nacc
		take := n
		if take > free {
			take = free
		}
		w.acc |= (v >> (n - take)) << (free - take)
		w.nacc += take
		n -= take
		if w.nacc == 64 {
			w.flushAcc()
		}
	}
}

func (w *bitWriter) flushAcc() {
	for w.nacc >= 8 {
		w.buf = append(w.buf, byte(w.acc>>56))
		w.acc <<= 8
		w.nacc -= 8
	}
}

func (w *bitWriter) finish() []byte {
	w.flushAcc()
	if w.nacc > 0 {
		w.buf = append(w.buf, byte(w.acc>>56))
		w.acc, w.nacc = 0, 0
	}
	return w.buf
}

type bitReader struct {
	buf  []byte
	pos  int // next byte
	acc  uint64
	nacc uint // valid low bits in acc (≤ 8)
}

func (r *bitReader) readBits(n uint) uint64 {
	var v uint64
	for n > 0 {
		if r.nacc == 0 {
			var next byte
			if r.pos < len(r.buf) {
				next = r.buf[r.pos]
				r.pos++
			}
			r.acc = uint64(next)
			r.nacc = 8
		}
		take := n
		if take > r.nacc {
			take = r.nacc
		}
		v = (v << take) | ((r.acc >> (r.nacc - take)) & onesMask(take))
		r.nacc -= take
		n -= take
	}
	return v
}

func onesMask(n uint) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (1 << n) - 1
}

// encodeBlock packs vals into dst (appended) and returns it.
func encodeBlock(vals []float64, dst []byte) []byte {
	if len(vals) == 0 {
		return dst
	}
	w := bitWriter{buf: dst}
	prev := math.Float64bits(vals[0])
	w.writeBits(prev, 64)
	leading, trailing := uint(65), uint(0) // 65: no window established
	for _, v := range vals[1:] {
		cur := math.Float64bits(v)
		xor := cur ^ prev
		prev = cur
		if xor == 0 {
			w.writeBits(0, 1)
			continue
		}
		lz := uint(bits.LeadingZeros64(xor))
		if lz > 31 {
			lz = 31
		}
		tz := uint(bits.TrailingZeros64(xor))
		if leading <= 64 && lz >= leading && tz >= trailing {
			// Meaningful bits fit the established window.
			w.writeBits(0b10, 2)
			w.writeBits(xor>>trailing, 64-leading-trailing)
			continue
		}
		sig := 64 - lz - tz
		w.writeBits(0b11, 2)
		w.writeBits(uint64(lz), 5)
		w.writeBits(uint64(sig-1), 6)
		w.writeBits(xor>>tz, sig)
		leading, trailing = lz, tz
	}
	return w.finish()
}

// decodeBlock unpacks exactly len(dst) values from data.
func decodeBlock(data []byte, dst []float64) {
	if len(dst) == 0 {
		return
	}
	r := bitReader{buf: data}
	prev := r.readBits(64)
	dst[0] = math.Float64frombits(prev)
	leading, trailing := uint(65), uint(0)
	for i := 1; i < len(dst); i++ {
		if r.readBits(1) == 0 {
			dst[i] = math.Float64frombits(prev)
			continue
		}
		var xor uint64
		if r.readBits(1) == 0 {
			xor = r.readBits(64-leading-trailing) << trailing
		} else {
			lz := uint(r.readBits(5))
			sig := uint(r.readBits(6)) + 1
			xor = r.readBits(sig) << (64 - lz - sig)
			leading, trailing = lz, 64-lz-sig
		}
		prev ^= xor
		dst[i] = math.Float64frombits(prev)
	}
}
