package tschunk

import (
	"math"
	"math/rand"
	"testing"
)

// buildChunk round-trips vals through a Builder using Set.
func buildChunk(t testing.TB, vals []float64) *Chunk {
	t.Helper()
	b := NewBuilder(len(vals))
	for i, v := range vals {
		if !math.IsNaN(v) {
			b.Set(i, v)
		}
	}
	return b.Seal()
}

// assertRoundTrip checks bit-exact recovery through every read path.
func assertRoundTrip(t *testing.T, vals []float64, c *Chunk) {
	t.Helper()
	if c.Len() != len(vals) {
		t.Fatalf("Len = %d, want %d", c.Len(), len(vals))
	}
	var buf [BlockLen]float64
	for blk := 0; blk < c.NumBlocks(); blk++ {
		got := c.DecodeBlock(blk, buf[:0])
		base := c.BlockBase(blk)
		for k, v := range got {
			want := vals[base+k]
			if math.Float64bits(v) != math.Float64bits(want) {
				t.Fatalf("slot %d: got bits %016x, want %016x",
					base+k, math.Float64bits(v), math.Float64bits(want))
			}
		}
	}
	cu := NewCursor(c)
	it := NewIter(c)
	for i, want := range vals {
		if got := cu.At(i); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("Cursor.At(%d) = %v bits, want %v", i, got, want)
		}
		got, ok := it.Next()
		if !ok {
			t.Fatalf("Iter exhausted at %d of %d", i, len(vals))
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("Iter at %d = %v bits, want %v", i, got, want)
		}
	}
	if _, ok := it.Next(); ok {
		t.Fatalf("Iter yielded past the end")
	}
}

func TestChunkRoundTripBasic(t *testing.T) {
	cases := map[string][]float64{
		"empty":       {},
		"single":      {3.25},
		"repeat":      {7.5, 7.5, 7.5, 7.5},
		"all-missing": {math.NaN(), math.NaN(), math.NaN()},
		"specials": {
			0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1),
			math.NaN(), math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
			math.MaxFloat64, -math.MaxFloat64, 1e-310, // denormal
		},
		"mixed": {1.5, math.NaN(), 2.9371052631578947, 2.9371052631578947,
			math.NaN(), math.NaN(), 88.125, -3},
	}
	for name, vals := range cases {
		t.Run(name, func(t *testing.T) {
			assertRoundTrip(t, vals, buildChunk(t, vals))
		})
	}
}

func TestChunkMultiBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 3*BlockLen + 57 // three full blocks plus a tail
	vals := make([]float64, n)
	for i := range vals {
		switch rng.Intn(4) {
		case 0:
			vals[i] = math.NaN()
		case 1:
			vals[i] = 2.9371052631578947 // repeated floor
		default:
			vals[i] = 5 + rng.Float64()*100
		}
	}
	assertRoundTrip(t, vals, buildChunk(t, vals))
}

func TestBuilderMergeSemantics(t *testing.T) {
	b := NewBuilder(4)
	b.MergeMin(0, 5)
	b.MergeMin(0, 7) // larger: ignored
	b.MergeMin(0, 3) // smaller: wins
	b.MergeMax(1, 5)
	b.MergeMax(1, 3) // smaller: ignored
	b.MergeMax(1, 7) // larger: wins
	b.Set(2, 9)
	b.Set(2, 1) // Set overwrites
	c := b.Seal()
	want := []float64{3, 7, 1, math.NaN()}
	for i, w := range want {
		if got := c.At(i); math.Float64bits(got) != math.Float64bits(w) {
			t.Fatalf("At(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestBuilderAtBeforeSeal(t *testing.T) {
	n := BlockLen + 10
	b := NewBuilder(n)
	b.Set(3, 42)         // current block
	b.Set(BlockLen+1, 7) // advances: block 0 sealed
	if got := b.At(3); got != 42 {
		t.Fatalf("At(3) from sealed block = %v, want 42", got)
	}
	if got := b.At(BlockLen + 1); got != 7 {
		t.Fatalf("At in current block = %v, want 7", got)
	}
	if got := b.At(BlockLen + 5); !math.IsNaN(got) {
		t.Fatalf("unwritten slot = %v, want NaN", got)
	}
}

func TestBuilderOutOfOrderPanics(t *testing.T) {
	b := NewBuilder(3 * BlockLen)
	b.Set(BlockLen+1, 1) // seals block 0
	defer func() {
		if recover() == nil {
			t.Fatalf("write into sealed block did not panic")
		}
	}()
	b.Set(0, 2)
}

func TestBuilderSealIdempotentAndWriteAfterSealPanics(t *testing.T) {
	b := NewBuilder(8)
	b.Set(0, 1)
	c1 := b.Seal()
	c2 := b.Seal()
	if c1 != c2 {
		t.Fatalf("Seal not idempotent")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("write after Seal did not panic")
		}
	}()
	b.Set(1, 2)
}

// TestSharedMissingBlocks checks that long pre-discovery gaps cost a
// few bytes total: full all-missing blocks share one arena range.
func TestSharedMissingBlocks(t *testing.T) {
	n := 40 * BlockLen
	b := NewBuilder(n)
	b.Set(n-1, 3.5) // 39 all-missing blocks seal on the way
	c := b.Seal()
	if c.EncodedSize() > 256 {
		t.Fatalf("40-block sparse grid encoded to %d bytes; missing-block sharing broken", c.EncodedSize())
	}
	for i := 0; i < n-1; i += BlockLen / 3 {
		if !math.IsNaN(c.At(i)) {
			t.Fatalf("slot %d should be missing", i)
		}
	}
	if got := c.At(n - 1); got != 3.5 {
		t.Fatalf("At(n-1) = %v, want 3.5", got)
	}
}

// TestBuilderNoAllocSteadyState pins the per-sample write path and the
// pre-reserved seal path at zero allocations — the campaign's
// quiescent probe step depends on it.
func TestBuilderNoAllocSteadyState(t *testing.T) {
	n := 4 * BlockLen
	b := NewBuilder(n)
	i := 0
	allocs := testing.AllocsPerRun(n, func() {
		if i < n {
			b.MergeMin(i, 5.25+float64(i%7))
			i++
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state MergeMin allocates %v/op, want 0", allocs)
	}
}

func TestCompressionOnTypicalGrid(t *testing.T) {
	// A plausible collector series: long missing prefix, then a stable
	// floor with diurnal excursions.
	n := 4 * BlockLen
	vals := make([]float64, n)
	for i := range vals {
		switch {
		case i < n/4:
			vals[i] = math.NaN()
		case (i/48)%2 == 0:
			vals[i] = 2.9371052631578947
		default:
			vals[i] = 2.9371052631578947 + float64(i%48)*0.25
		}
	}
	c := buildChunk(t, vals)
	if ratio := float64(c.RawSize()) / float64(c.EncodedSize()); ratio < 2 {
		t.Fatalf("compression ratio %.2f on a typical grid, want ≥ 2", ratio)
	}
	assertRoundTrip(t, vals, c)
}

// FuzzChunkRoundTrip feeds arbitrary byte strings reinterpreted as
// float64 bit patterns — every NaN payload, infinity, denormal, and
// signed zero included — and requires bit-identical recovery.
func FuzzChunkRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	seed := []float64{
		math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1),
		math.SmallestNonzeroFloat64, math.MaxFloat64, 1e-310, 2.9371,
	}
	var sb []byte
	for _, v := range seed {
		bits := math.Float64bits(v)
		for s := 56; s >= 0; s -= 8 {
			sb = append(sb, byte(bits>>uint(s)))
		}
	}
	f.Add(sb)
	// A quiet-NaN with a payload must survive even though the grid
	// treats every NaN as missing.
	f.Add([]byte{0x7f, 0xf8, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x40, 0x45, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 8
		if n > 4*BlockLen {
			n = 4 * BlockLen
		}
		vals := make([]float64, n)
		for i := range vals {
			var bits uint64
			for k := 0; k < 8; k++ {
				bits = bits<<8 | uint64(data[i*8+k])
			}
			vals[i] = math.Float64frombits(bits)
		}
		// Set unconditionally: arbitrary NaN payloads must round-trip
		// through the codec even though they read back as missing.
		b := NewBuilder(n)
		for i, v := range vals {
			b.Set(i, v)
		}
		c := b.Seal()
		var buf [BlockLen]float64
		for blk := 0; blk < c.NumBlocks(); blk++ {
			got := c.DecodeBlock(blk, buf[:0])
			base := c.BlockBase(blk)
			for k, v := range got {
				if math.Float64bits(v) != math.Float64bits(vals[base+k]) {
					t.Fatalf("slot %d: got %016x, want %016x",
						base+k, math.Float64bits(v), math.Float64bits(vals[base+k]))
				}
			}
		}
		if raw := c.RawSize(); raw != 8*n {
			t.Fatalf("RawSize = %d, want %d", raw, 8*n)
		}
	})
}
