// Package faults injects deterministic measurement-plane faults into
// a built scenario world: vantage-point outages (the paper's SIXP VP
// was offline for stretches and RINEX was decommissioned mid-study),
// ICMP blackouts and rate-limiting at case-link routers (the
// unresponsive-router losses §5.1 works around), and link flaps.
//
// Every fault is a pure function of virtual time, placed by SplitMix64
// draws seeded from the world seed, and every episode boundary is
// registered as a scenario event whose only action is counting itself
// for telemetry. The campaign engine's batch
// planner treats pending events as barriers, so fault boundaries
// split probing batches exactly like membership churn does — and
// because nothing here keeps mutable state on the sampling path,
// results stay bit-identical at any Workers × BatchSteps setting
// (DESIGN.md §10).
package faults

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"afrixp/internal/netsim"
	"afrixp/internal/scenario"
	"afrixp/internal/simclock"
)

// Kind classifies a fault episode.
type Kind uint8

// Fault kinds.
const (
	// VPOutage takes a vantage point offline: no probes are sent, so
	// every watched link records missing samples for the episode.
	VPOutage Kind = iota
	// ICMPBlackout silences a case link's far-end router: probes
	// arrive but are never answered.
	ICMPBlackout
	// ICMPRateLimit polices a case link's near-end router with a
	// deterministic duty cycle: only a fraction of minutes inside the
	// episode are answered.
	ICMPRateLimit
	// LinkFlap takes a case link's far port down entirely — probes
	// (and background traffic) are dropped in both directions.
	LinkFlap
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case VPOutage:
		return "vp-outage"
	case ICMPBlackout:
		return "icmp-blackout"
	case ICMPRateLimit:
		return "icmp-rate-limit"
	default:
		return "link-flap"
	}
}

// Fault describes one injected episode.
type Fault struct {
	Kind   Kind
	Target string // VP ID, or "VP/CASE" for link-scoped faults
	Window simclock.Interval
}

// Config tunes the fault plan. The zero value enables every class at
// its default intensity; Inject fills the blanks.
type Config struct {
	// Seed perturbs the fault schedule independently of the world;
	// the effective stream is world.Seed ^ Seed ^ a package constant.
	Seed uint64
	// Window confines every fault episode. The zero interval means
	// the campaign interval handed to Inject. Tests park faults in a
	// window disjoint from the probed interval to check dormancy.
	Window simclock.Interval

	// VPOutages is the number of outage episodes per vantage point.
	VPOutages            int
	OutageMin, OutageMax simclock.Duration

	// Blackouts is the number of far-end ICMP blackout episodes per
	// case link.
	Blackouts                int
	BlackoutMin, BlackoutMax simclock.Duration

	// RateLimits is the number of near-end duty-cycle rate-limiting
	// episodes per case link; RateLimitDuty is the fraction of
	// minutes answered inside an episode.
	RateLimits                 int
	RateLimitMin, RateLimitMax simclock.Duration
	RateLimitDuty              float64

	// LinkFlaps is the number of far-port flap episodes per case link.
	LinkFlaps        int
	FlapMin, FlapMax simclock.Duration
}

func (c Config) withDefaults() Config {
	if c.VPOutages <= 0 {
		c.VPOutages = 2
	}
	if c.OutageMin <= 0 {
		c.OutageMin = 6 * time.Hour
	}
	if c.OutageMax <= 0 {
		c.OutageMax = 36 * time.Hour
	}
	if c.Blackouts <= 0 {
		c.Blackouts = 1
	}
	if c.BlackoutMin <= 0 {
		c.BlackoutMin = 2 * time.Hour
	}
	if c.BlackoutMax <= 0 {
		c.BlackoutMax = 12 * time.Hour
	}
	if c.RateLimits <= 0 {
		c.RateLimits = 1
	}
	if c.RateLimitMin <= 0 {
		c.RateLimitMin = 4 * time.Hour
	}
	if c.RateLimitMax <= 0 {
		c.RateLimitMax = 12 * time.Hour
	}
	if c.RateLimitDuty <= 0 || c.RateLimitDuty >= 1 {
		c.RateLimitDuty = 0.75
	}
	if c.LinkFlaps <= 0 {
		c.LinkFlaps = 2
	}
	if c.FlapMin <= 0 {
		c.FlapMin = 5 * time.Minute
	}
	if c.FlapMax <= 0 {
		c.FlapMax = 45 * time.Minute
	}
	return c
}

// Outage answers "is this vantage point down at t". The campaign hot
// loop consults it every probing step, so Down is nil-safe and
// allocation-free.
type Outage struct {
	ivs []simclock.Interval // sorted, non-overlapping
}

// Down reports whether t falls inside an outage episode.
func (o *Outage) Down(t simclock.Time) bool {
	if o == nil {
		return false
	}
	return within(o.ivs, t)
}

// Schedule is a materialized fault plan.
type Schedule struct {
	// Faults lists every injected episode, grouped by target in
	// injection order (VPs first, then per-VP case links).
	Faults []Fault

	vpOut map[string]*Outage

	// entered / exited count episode boundary events the world clock
	// has crossed. Atomic because the /metrics endpoint reads them
	// while the coordinator applies events; the counters are pure
	// accounting and feed nothing back into the schedule.
	entered, exited atomic.Uint64
}

// Entered returns how many episode begin-events have applied.
// Nil-safe (zero).
func (s *Schedule) Entered() uint64 {
	if s == nil {
		return 0
	}
	return s.entered.Load()
}

// Exited returns how many episode end-events have applied. Nil-safe.
func (s *Schedule) Exited() uint64 {
	if s == nil {
		return 0
	}
	return s.exited.Load()
}

// VPOutage returns the outage schedule for a VP ID, nil (always up)
// when the VP has none. Nil-safe on a nil schedule.
func (s *Schedule) VPOutage(id string) *Outage {
	if s == nil {
		return nil
	}
	return s.vpOut[id]
}

// ByKind returns the episodes of one kind, preserving order.
func (s *Schedule) ByKind(k Kind) []Fault {
	if s == nil {
		return nil
	}
	var out []Fault
	for _, f := range s.Faults {
		if f.Kind == k {
			out = append(out, f)
		}
	}
	return out
}

// Inject derives the fault plan from the world seed and installs it:
// ICMP silence schedules on case-link routers, flap gates on far
// ports, and one named no-op scenario event per episode boundary so
// the batch planner barriers on them. VP outages are returned in the
// schedule for the campaign engine to honor (the engine, not the
// network, owns "this VP sent nothing"). Call before the campaign
// starts advancing the world; the world clock must not have passed
// the fault window.
func Inject(w *scenario.World, campaign simclock.Interval, cfg Config) *Schedule {
	cfg = cfg.withDefaults()
	win := cfg.Window
	if win.Duration() <= 0 {
		win = campaign
	}
	seed := w.Seed ^ cfg.Seed ^ 0xFA017CAFE
	s := &Schedule{vpOut: make(map[string]*Outage)}

	// The boundary events mark episode edges so the batch planner
	// barriers on them; their only action is counting themselves for
	// telemetry, which touches no simulation state.
	record := func(k Kind, target string, ivs []simclock.Interval) {
		for _, iv := range ivs {
			s.Faults = append(s.Faults, Fault{Kind: k, Target: target, Window: iv})
			w.AddEvent(scenario.Event{At: iv.Start,
				Apply: func(*scenario.World) { s.entered.Add(1) },
				Name:  fmt.Sprintf("fault: %s %s begins", target, k)})
			w.AddEvent(scenario.Event{At: iv.End,
				Apply: func(*scenario.World) { s.exited.Add(1) },
				Name:  fmt.Sprintf("fault: %s %s ends", target, k)})
		}
	}

	for vi, vp := range w.VPs {
		stream := uint64(vi+1) << 16

		ivs := episodes(seed, stream|uint64(VPOutage), cfg.VPOutages,
			cfg.OutageMin, cfg.OutageMax, win)
		if len(ivs) > 0 {
			s.vpOut[vp.ID] = &Outage{ivs: ivs}
			record(VPOutage, vp.ID, ivs)
		}

		// Case-link faults, in sorted case order for determinism.
		// Only links that exist at injection time are targeted; links
		// a later membership event creates ride out the plan unfaulted.
		for ci, name := range sortedKeys(vp.CaseLinks) {
			target := vp.CaseLinks[name]
			label := vp.ID + "/" + name
			cstream := stream | uint64(ci+1)<<8

			if far, _, ok := w.Net.OwnerOfAddr(target.Far); ok {
				ivs := episodes(seed, cstream|uint64(ICMPBlackout), cfg.Blackouts,
					cfg.BlackoutMin, cfg.BlackoutMax, win)
				far.ICMPDown = silentDuring(far.ICMPDown, ivs)
				record(ICMPBlackout, label, ivs)
			}
			if near, _, ok := w.Net.OwnerOfAddr(target.Near); ok {
				ivs := episodes(seed, cstream|uint64(ICMPRateLimit), cfg.RateLimits,
					cfg.RateLimitMin, cfg.RateLimitMax, win)
				near.ICMPDown = dutyCycle(near.ICMPDown, seed^cstream, ivs, cfg.RateLimitDuty)
				record(ICMPRateLimit, label, ivs)
			}
			if in, out, ok := w.Net.PipesAt(target.Far); ok {
				ivs := episodes(seed, cstream|uint64(LinkFlap), cfg.LinkFlaps,
					cfg.FlapMin, cfg.FlapMax, win)
				flap(in, ivs)
				flap(out, ivs)
				record(LinkFlap, label, ivs)
			}
		}
	}
	return s
}

// episodes places count non-overlapping fault windows inside win by
// splitting it into count equal segments and drawing one episode per
// segment: the length uniform in [min, max] (clamped to the segment)
// and the start uniform in the segment's slack.
func episodes(seed, stream uint64, count int, min, max simclock.Duration,
	win simclock.Interval) []simclock.Interval {
	if count <= 0 || win.Duration() <= 0 {
		return nil
	}
	seg := win.Duration() / simclock.Duration(count)
	if max > seg {
		max = seg
	}
	if min > max {
		min = max
	}
	out := make([]simclock.Interval, 0, count)
	for i := 0; i < count; i++ {
		length := min + simclock.Duration(float64(max-min)*hashUnit(seed^stream, uint64(2*i)))
		if length <= 0 {
			continue
		}
		segStart := win.Start.Add(simclock.Duration(i) * seg)
		slack := simclock.Duration(float64(seg-length) * hashUnit(seed^stream, uint64(2*i+1)))
		start := segStart.Add(slack)
		out = append(out, simclock.Interval{Start: start, End: start.Add(length)})
	}
	return out
}

// within reports whether t falls inside any of the sorted,
// non-overlapping intervals. Manual binary search: this runs on the
// sampling hot path and must not allocate.
func within(ivs []simclock.Interval, t simclock.Time) bool {
	lo, hi := 0, len(ivs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ivs[mid].End <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(ivs) && ivs[lo].Contains(t)
}

// silentDuring composes an ICMP-silence schedule over an existing one.
func silentDuring(prev func(simclock.Time) bool, ivs []simclock.Interval) func(simclock.Time) bool {
	if len(ivs) == 0 {
		return prev
	}
	return func(t simclock.Time) bool {
		if prev != nil && prev(t) {
			return true
		}
		return within(ivs, t)
	}
}

// dutyCycle silences the node during each episode except for a duty
// fraction of minutes, drawn per minute from the seed — a stateless
// stand-in for an ICMP token bucket. A real shared bucket would trade
// away cross-worker bit-determinism (see ProbePath.SampleCtx); a pure
// schedule polices the same probes for any worker interleaving.
func dutyCycle(prev func(simclock.Time) bool, seed uint64,
	ivs []simclock.Interval, duty float64) func(simclock.Time) bool {
	if len(ivs) == 0 {
		return prev
	}
	return func(t simclock.Time) bool {
		if prev != nil && prev(t) {
			return true
		}
		if !within(ivs, t) {
			return false
		}
		minute := uint64(t) / uint64(time.Minute)
		return hashUnit(seed, minute) >= duty
	}
}

// flap gates a pipe down during the given episodes, composing with
// any existing up-schedule (membership churn uses DownAfter gates).
// Data plane only: routes stay resolved, matching a flap shorter than
// a BGP hold timer.
func flap(p *netsim.Pipe, ivs []simclock.Interval) {
	if p == nil || len(ivs) == 0 {
		return
	}
	prev := p.Up
	p.Up = func(t simclock.Time) bool {
		if prev != nil && !prev(t) {
			return false
		}
		return !within(ivs, t)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// hashUnit maps (seed, n) to a uniform [0,1) float — the same
// SplitMix64 construction netsim and trafficmodel use, so fault
// placement is reproducible without a shared RNG stream.
func hashUnit(seed, n uint64) float64 {
	z := seed + n*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}
