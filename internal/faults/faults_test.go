package faults

import (
	"strings"
	"testing"
	"time"

	"afrixp/internal/scenario"
	"afrixp/internal/simclock"
)

func testCampaign() simclock.Interval {
	return simclock.Interval{
		Start: simclock.Date(2016, time.July, 1),
		End:   simclock.Date(2016, time.July, 15),
	}
}

// TestInjectDeterministic: two worlds at the same seed must get
// byte-for-byte the same fault plan, and a different fault seed must
// actually move the episodes.
func TestInjectDeterministic(t *testing.T) {
	build := func(fs uint64) *Schedule {
		w := scenario.Paper(scenario.Options{Seed: 7, Scale: 0.1})
		return Inject(w, testCampaign(), Config{Seed: fs})
	}
	a, b := build(0), build(0)
	if len(a.Faults) == 0 {
		t.Fatal("empty fault plan")
	}
	if len(a.Faults) != len(b.Faults) {
		t.Fatalf("plan sizes differ: %d vs %d", len(a.Faults), len(b.Faults))
	}
	for i := range a.Faults {
		if a.Faults[i] != b.Faults[i] {
			t.Fatalf("fault %d differs: %+v vs %+v", i, a.Faults[i], b.Faults[i])
		}
	}
	c := build(99)
	same := len(a.Faults) == len(c.Faults)
	if same {
		for i := range a.Faults {
			if a.Faults[i].Window != c.Faults[i].Window {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("fault seed 99 produced the seed-0 plan")
	}
}

// TestInjectRespectsWindowAndRegistersEvents: every episode must fall
// inside the configured window, cover every kind, and register its
// boundaries as scenario events (the batch-planner barriers).
func TestInjectRespectsWindowAndRegistersEvents(t *testing.T) {
	w := scenario.Paper(scenario.Options{Seed: 7, Scale: 0.1})
	win := simclock.Interval{
		Start: simclock.Date(2016, time.July, 2),
		End:   simclock.Date(2016, time.July, 9),
	}
	s := Inject(w, testCampaign(), Config{Window: win})
	kinds := map[Kind]int{}
	for _, f := range s.Faults {
		kinds[f.Kind]++
		if f.Window.Start < win.Start || f.Window.End > win.End {
			t.Fatalf("%v %s at %v escapes window %v", f.Kind, f.Target, f.Window, win)
		}
		if f.Window.Duration() <= 0 {
			t.Fatalf("degenerate episode: %+v", f)
		}
	}
	for _, k := range []Kind{VPOutage, ICMPBlackout, ICMPRateLimit, LinkFlap} {
		if kinds[k] == 0 {
			t.Fatalf("no %v episodes in the default plan", k)
		}
	}
	faultEvents := 0
	for _, e := range w.PendingEvents() {
		if strings.HasPrefix(e.Name, "fault: ") {
			faultEvents++
		}
	}
	if want := 2 * len(s.Faults); faultEvents != want {
		t.Fatalf("%d fault events registered, want %d (begin+end per episode)", faultEvents, want)
	}
	// Boundary events must be appliable no-ops; the world's own
	// post-campaign events (upgrades, churn) legitimately stay pending.
	w.AdvanceTo(testCampaign().End)
	for _, e := range w.PendingEvents() {
		if strings.HasPrefix(e.Name, "fault: ") {
			t.Fatalf("fault event %q still pending after the campaign", e.Name)
		}
	}
}

// TestOutageDown pins the episode lookup, including boundaries.
func TestOutageDown(t *testing.T) {
	o := &Outage{ivs: []simclock.Interval{
		{Start: 100, End: 200},
		{Start: 500, End: 600},
	}}
	for _, tc := range []struct {
		t    simclock.Time
		want bool
	}{
		{0, false}, {99, false}, {100, true}, {199, true}, {200, false},
		{400, false}, {550, true}, {600, false}, {1000, false},
	} {
		if got := o.Down(tc.t); got != tc.want {
			t.Fatalf("Down(%d) = %t, want %t", tc.t, got, tc.want)
		}
	}
	var nilOut *Outage
	if nilOut.Down(150) {
		t.Fatal("nil outage must report up")
	}
	if (&Schedule{}).VPOutage("VP1") != nil {
		t.Fatal("unknown VP must have no outage")
	}
	var nilSched *Schedule
	if nilSched.VPOutage("VP1") != nil {
		t.Fatal("nil schedule must be nil-safe")
	}
}

// TestInjectInstallsDataPlaneFaults probes a faulted case link through
// the injected schedules: during an ICMP blackout the far end stops
// answering, and during a flap the probe is lost in transit.
func TestInjectInstallsDataPlaneFaults(t *testing.T) {
	w := scenario.Paper(scenario.Options{Seed: 7, Scale: 0.1})
	s := Inject(w, testCampaign(), Config{})
	var vp *scenario.VP
	for _, cand := range w.VPs {
		if len(cand.CaseLinks) > 0 {
			vp = cand
			break
		}
	}
	if vp == nil {
		t.Fatal("no VP with case links")
	}
	for _, f := range s.ByKind(ICMPBlackout) {
		if !strings.HasPrefix(f.Target, vp.ID+"/") {
			continue
		}
		name := strings.TrimPrefix(f.Target, vp.ID+"/")
		far, _, ok := w.Net.OwnerOfAddr(vp.CaseLinks[name].Far)
		if !ok || far.ICMPDown == nil {
			t.Fatalf("%s: far end has no ICMPDown schedule", f.Target)
		}
		mid := f.Window.Start.Add(f.Window.Duration() / 2)
		if !far.ICMPDown(mid) {
			t.Fatalf("%s: far end answering mid-blackout", f.Target)
		}
		if far.ICMPDown(f.Window.End) {
			t.Fatalf("%s: far end still silent after the blackout", f.Target)
		}
		return
	}
	t.Fatalf("no blackout episode for %s's case links", vp.ID)
}

// TestEpisodeBoundaryCounters: the Apply closures behind each
// episode's start/end events feed the telemetry counters — advancing
// the world clock across fault boundaries must tick Entered/Exited in
// lockstep with the plan, and a fully-elapsed window must leave them
// balanced at the episode count.
func TestEpisodeBoundaryCounters(t *testing.T) {
	w := scenario.Paper(scenario.Options{Seed: 7, Scale: 0.1})
	campaign := testCampaign()
	s := Inject(w, campaign, Config{})
	if len(s.Faults) == 0 {
		t.Fatal("empty fault plan")
	}
	if s.Entered() != 0 || s.Exited() != 0 {
		t.Fatalf("counters advanced before the clock: entered=%d exited=%d",
			s.Entered(), s.Exited())
	}

	// Cross the first boundary only: find the earliest window start and
	// advance just past it.
	first := s.Faults[0].Window.Start
	for _, f := range s.Faults {
		if f.Window.Start < first {
			first = f.Window.Start
		}
	}
	w.AdvanceTo(first.Add(time.Second))
	if s.Entered() == 0 {
		t.Error("no episode entered after crossing the first window start")
	}
	if s.Exited() > s.Entered() {
		t.Errorf("more exits than entries mid-window: entered=%d exited=%d",
			s.Entered(), s.Exited())
	}

	// Past the campaign end every episode has both entered and exited.
	w.AdvanceTo(campaign.End.Add(time.Hour))
	want := uint64(len(s.Faults))
	if s.Entered() != want || s.Exited() != want {
		t.Errorf("after window end: entered=%d exited=%d, want both %d",
			s.Entered(), s.Exited(), want)
	}

	// The nil schedule (campaign without faults) must read as zero.
	var nilSched *Schedule
	if nilSched.Entered() != 0 || nilSched.Exited() != 0 {
		t.Error("nil schedule counters not zero")
	}
}
