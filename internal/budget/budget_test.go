package budget

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"afrixp/internal/simclock"
)

var window = simclock.Interval{
	Start: simclock.Date(2016, 3, 1),
	End:   simclock.Date(2016, 3, 15),
}

func feedFlat(v *VPLinks, li int, t simclock.Time, rng *rand.Rand, n int) simclock.Time {
	for i := 0; i < n; i++ {
		v.Observe(li, t, 10+0.5*rng.NormFloat64(), false)
		t = t.Add(5 * time.Minute)
	}
	return t
}

func TestSkipFullRateByDefault(t *testing.T) {
	s := New(Config{Fraction: 0.5, Seed: 1}, window)
	v := s.AddVP()
	li := v.AddLink()
	for idx := 0; idx < 64; idx++ {
		if v.Skip(li, idx) {
			t.Fatalf("new link skipped at step %d before any recompute", idx)
		}
	}
}

func TestNilSafeGates(t *testing.T) {
	var v *VPLinks
	if v.Skip(0, 3) {
		t.Fatal("nil VPLinks must never skip")
	}
	v.Observe(0, 0, 1, false) // must not panic
	if v.Len() != 0 {
		t.Fatal("nil Len")
	}
	var s *Scheduler
	if s.Due(simclock.Date(2017, 1, 1)) {
		t.Fatal("nil scheduler never due")
	}
	s.RecomputeAt(0) // must not panic
}

func TestSkipHonorsPeriodAndPhase(t *testing.T) {
	s := New(Config{Fraction: 0.25, Seed: 9}, window)
	v := s.AddVP()
	rng := rand.New(rand.NewSource(1))
	var lis []int
	for i := 0; i < 8; i++ {
		lis = append(lis, v.AddLink())
	}
	tm := window.Start
	for r := 0; r < 10; r++ { // several recomputes of flat traffic
		for i := 0; i < 72; i++ {
			for _, li := range lis {
				v.Observe(li, tm, 10+0.5*rng.NormFloat64(), false)
			}
			tm = tm.Add(5 * time.Minute)
		}
		s.RecomputeAt(tm)
	}
	for _, li := range lis {
		st := &v.links[li]
		if st.period == 1 {
			t.Fatalf("flat link %d never backed off", li)
		}
		if st.period&(st.period-1) != 0 {
			t.Fatalf("period %d not a power of two", st.period)
		}
		sent := 0
		for idx := 0; idx < 1<<12; idx++ {
			if !v.Skip(li, idx) {
				sent++
			}
		}
		if want := (1 << 12) / int(st.period); sent != want {
			t.Fatalf("link %d period %d: sent %d of %d, want %d", li, st.period, sent, 1<<12, want)
		}
	}
}

// Total assigned spend must never exceed the configured fraction.
func TestBudgetCapRespected(t *testing.T) {
	for _, frac := range []float64{0.5, 0.25, 0.1, 0.02} {
		s := New(Config{Fraction: frac, Seed: 3}, window)
		v := s.AddVP()
		rng := rand.New(rand.NewSource(2))
		n := 50
		for i := 0; i < n; i++ {
			v.AddLink()
		}
		tm := window.Start
		for r := 0; r < 6; r++ {
			for i := 0; i < 72; i++ {
				for li := 0; li < n; li++ {
					// Half the links are noisy/shifting: high utility.
					x := 10 + 0.5*rng.NormFloat64()
					if li%2 == 0 && i > 36 {
						x += 20
					}
					v.Observe(li, tm, x, false)
				}
				tm = tm.Add(5 * time.Minute)
			}
			s.RecomputeAt(tm)
			spend := 0.0
			for li := 0; li < n; li++ {
				spend += 1 / float64(v.links[li].period)
			}
			if spend > frac*float64(n)+1e-9 {
				t.Fatalf("frac %.2f recompute %d: spend %.2f links exceeds budget %.2f", frac, r, spend, frac*float64(n))
			}
			if st := s.Stats(); math.Abs(st.SpendFrac-spend/float64(n)) > 1e-9 {
				t.Fatalf("Stats.SpendFrac %.4f != measured %.4f", st.SpendFrac, spend/float64(n))
			}
		}
	}
}

// A link with a level shift must densify to full rate while flat links
// back off; once the shift is absorbed and the verdict is stable, the
// plateau rule retires the flat links to the heartbeat floor.
func TestDensifyBackoffAndPlateau(t *testing.T) {
	cfg := Config{Fraction: 0.5, Seed: 5, PlateauAfter: 3}
	s := New(cfg, window)
	v := s.AddVP()
	shifty := v.AddLink()
	// Enough flat company that the 50% budget can afford one
	// full-rate suspect once the rest back off.
	var flats []int
	for i := 0; i < 7; i++ {
		flats = append(flats, v.AddLink())
	}
	rng := rand.New(rand.NewSource(4))
	tm := window.Start
	for r := 0; r < 12; r++ {
		for i := 0; i < 72; i++ {
			x := 10 + 0.5*rng.NormFloat64()
			if r >= 6 {
				x += 25 // onset of a sustained shift on shifty
			}
			v.Observe(shifty, tm, x, false)
			for _, fl := range flats {
				v.Observe(fl, tm, 10+0.5*rng.NormFloat64(), false)
			}
			tm = tm.Add(5 * time.Minute)
		}
		s.RecomputeAt(tm)
		if r == 6 {
			if v.links[shifty].period != 1 {
				t.Fatalf("shift not densified: period %d", v.links[shifty].period)
			}
			if v.links[shifty].retired {
				t.Fatal("shifting link must not be retired at onset")
			}
		}
	}
	for _, fl := range flats {
		if !v.links[fl].retired {
			t.Fatalf("flat link %d not retired after 12 stable recomputes", fl)
		}
		if v.links[fl].period != s.floor {
			t.Fatalf("retired link period %d, want floor %d", v.links[fl].period, s.floor)
		}
	}
}

// A retired link that develops a level shift on its heartbeat samples
// must wake back up.
func TestRetiredLinkWakes(t *testing.T) {
	cfg := Config{Fraction: 0.5, Seed: 5, PlateauAfter: 2}
	s := New(cfg, window)
	v := s.AddVP()
	li := v.AddLink()
	rng := rand.New(rand.NewSource(6))
	tm := window.Start
	for r := 0; r < 6; r++ {
		tm = feedFlat(v, li, tm, rng, 72)
		s.RecomputeAt(tm)
	}
	if !v.links[li].retired {
		t.Fatal("link did not retire on flat traffic")
	}
	// Heartbeat-rate observations of a big shift.
	for r := 0; r < 8 && v.links[li].retired; r++ {
		for i := 0; i < 72/int(s.floor); i++ {
			v.Observe(li, tm, 60+0.5*rng.NormFloat64(), false)
			tm = tm.Add(5 * time.Minute * time.Duration(s.floor))
		}
		s.RecomputeAt(tm)
	}
	if v.links[li].retired {
		t.Fatal("retired link never woke on strong evidence")
	}
	// With a single link the 50% budget cannot buy full rate, but the
	// woken link must leave the heartbeat floor.
	if v.links[li].period >= s.floor {
		t.Fatalf("woken link period %d still at floor %d", v.links[li].period, s.floor)
	}
}

// Same (budget, seed) must reproduce the exact same schedule; a
// different budget seed must change the probe interleaving.
func TestScheduleDeterministicPerSeed(t *testing.T) {
	build := func(seed uint64) (*Scheduler, *VPLinks) {
		s := New(Config{Fraction: 0.25, Seed: seed}, window)
		v := s.AddVP()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 16; i++ {
			v.AddLink()
		}
		tm := window.Start
		for r := 0; r < 5; r++ {
			for i := 0; i < 72; i++ {
				for li := 0; li < 16; li++ {
					v.Observe(li, tm, 10+float64(li)*0.1+0.5*rng.NormFloat64(), false)
				}
				tm = tm.Add(5 * time.Minute)
			}
			s.RecomputeAt(tm)
		}
		return s, v
	}
	_, a := build(11)
	_, b := build(11)
	_, c := build(12)
	sameSchedule, sameAsC := true, true
	for li := 0; li < 16; li++ {
		if a.links[li].period != b.links[li].period || a.links[li].phase != b.links[li].phase {
			sameSchedule = false
		}
		if a.links[li].phase != c.links[li].phase {
			sameAsC = false
		}
	}
	if !sameSchedule {
		t.Fatal("same (budget, seed) produced different schedules")
	}
	if sameAsC {
		t.Fatal("budget seed had no effect on probe phases")
	}
}

func TestFloorDeepensForTinyBudgets(t *testing.T) {
	s := New(Config{Fraction: 0.01, Seed: 1}, window)
	if 1/float64(s.floor) > 0.01 {
		t.Fatalf("floor %d heartbeat exceeds 1%% budget", s.floor)
	}
}

// The hot-path gates and the barrier recompute must be allocation-free
// once the scratch is warm — they run inside the engine's zero-alloc
// steady state.
func TestBudgetHotPathZeroAlloc(t *testing.T) {
	s := New(Config{Fraction: 0.5, Seed: 2}, window)
	v := s.AddVP()
	for i := 0; i < 8; i++ {
		v.AddLink()
	}
	tm := window.Start
	rng := rand.New(rand.NewSource(8))
	xs := make([]float64, 72)
	for i := range xs {
		xs[i] = 10 + 0.5*rng.NormFloat64()
	}
	s.RecomputeAt(tm.Add(s.cfg.RecomputeEvery)) // warm the rank scratch
	step := 0
	allocs := testing.AllocsPerRun(50, func() {
		for i := 0; i < 72; i++ {
			for li := 0; li < 8; li++ {
				if v.Skip(li, step) {
					continue
				}
				v.Observe(li, tm, xs[i], false)
			}
			tm = tm.Add(5 * time.Minute)
			step++
		}
		s.RecomputeAt(tm)
	})
	if allocs != 0 {
		t.Fatalf("budget hot path allocates: %.1f allocs/run", allocs)
	}
}

// Full budget (Fraction ≥ 1) must run the scheduler rather than
// silently bypass it: every positive fraction is Enabled, fractions
// above 1 clamp to 1, and after any number of recomputes every link
// holds period 1 with zero skips — spend parity with an unscheduled
// campaign, so a sweep's 100% row takes the same code path as 99.9%.
func TestFullBudgetSpendParity(t *testing.T) {
	if !(Config{Fraction: 1}).Enabled() {
		t.Fatal("Fraction 1 must enable the scheduler")
	}
	if !(Config{Fraction: 100}).Enabled() {
		t.Fatal("Fraction 100 must enable the scheduler (clamped)")
	}
	if (Config{}).Enabled() || (Config{Fraction: -0.5}).Enabled() {
		t.Fatal("non-positive Fraction must disable the scheduler")
	}
	if got := (Config{Fraction: 100}).withDefaults().Fraction; got != 1 {
		t.Fatalf("Fraction 100 clamps to %v, want 1", got)
	}

	for _, frac := range []float64{1, 100} {
		s := New(Config{Fraction: frac, Seed: 7}, window)
		v := s.AddVP()
		const n = 6
		for i := 0; i < n; i++ {
			v.AddLink()
		}
		rng := rand.New(rand.NewSource(4))
		tm := window.Start
		for r := 0; r < 8; r++ {
			for i := 0; i < 72; i++ {
				for li := 0; li < n; li++ {
					v.Observe(li, tm, 10+0.5*rng.NormFloat64(), false)
				}
				tm = tm.Add(5 * time.Minute)
			}
			s.RecomputeAt(tm)
			for li := 0; li < n; li++ {
				if p := v.links[li].period; p != 1 {
					t.Fatalf("frac %v recompute %d: flat link %d backed off to period %d at full budget", frac, r, li, p)
				}
			}
			if st := s.Stats(); st.SpendFrac != 1 {
				t.Fatalf("frac %v recompute %d: Stats.SpendFrac %v, want 1", frac, r, st.SpendFrac)
			}
		}
		for li := 0; li < n; li++ {
			for idx := 0; idx < 1<<10; idx++ {
				if v.Skip(li, idx) {
					t.Fatalf("frac %v: link %d skipped at step %d under full budget", frac, li, idx)
				}
			}
		}
	}
}
