// Package budget implements a deterministic probe-budget scheduler:
// the Anaximander-style reduction the roadmap calls for, layered
// between the step-batched campaign engine and the prober. Instead of
// probing every discovered link every round, the scheduler ranks links
// by marginal utility — recent level-shift evidence from a streaming
// CUSUM tap, loss-rate variance, and proximity to each link's diurnal
// congestion window — and assigns each link a power-of-two probing
// period under a global budget: flat links back off exponentially to
// a heartbeat floor, links with suspected level shifts densify back
// to full rate, and links whose detector verdict has been stable for
// long enough are retired early (plateau stopping) while keeping the
// floor heartbeat so late-onset congestion still wakes them.
//
// Determinism is load-bearing. The hot-path skip decision is pure
// integer arithmetic on the global step index, utility is recomputed
// only at fixed virtual-time barriers from per-link state that each
// VP's own worker wrote, and ranking ties break on registration
// order — so a budgeted campaign is IEEE-bit-identical for any
// Workers × BatchSteps, exactly like the unbudgeted engine.
package budget

import (
	"math"
	"sort"
	"time"

	"afrixp/internal/cusum"
	"afrixp/internal/simclock"
)

// Config tunes the scheduler. The zero value (Fraction 0) disables it.
type Config struct {
	// Fraction is the probe budget as a fraction of the full-rate
	// campaign, in (0,1]. Fraction 0 (the zero value) disables the
	// scheduler; Fraction ≥ 1 is clamped to 1 and runs the scheduler
	// at full rate — every link probed every round, spend parity with
	// an unscheduled campaign — so a budget sweep's 100% row takes the
	// same code path as 99.9%.
	Fraction float64
	// Seed perturbs the per-link phase hashes independently of the
	// world seed, so two budgeted campaigns with different budget
	// seeds interleave probes differently.
	Seed uint64
	// RecomputeEvery is the virtual-time cadence at which utilities
	// are re-ranked and rates reassigned; every recompute instant is a
	// batch barrier. Default 6 h.
	RecomputeEvery simclock.Duration
	// MaxBackoff caps the exponential back-off ladder: a flat link's
	// period doubles per recompute up to 1<<MaxBackoff rounds (the
	// heartbeat floor). Default 4 (floor = every 16th round). The
	// floor deepens automatically if Fraction cannot be met at the
	// configured floor.
	MaxBackoff int
	// PlateauAfter is the number of consecutive recomputes a link's
	// detector verdict must stay unchanged (and flat) before the link
	// is retired to the floor and leaves the ranking pool. Default 8
	// (two days at the default cadence).
	PlateauAfter int
	// DensifyEvidence is the CUSUM evidence level at which a link is
	// considered "suspect" and densified to full rate. Default 4.
	DensifyEvidence float64
	// WakeEvidence re-activates a retired link when its heartbeat
	// samples accumulate this much evidence. Default 6.
	WakeEvidence float64
	// LossWeight scales the loss-rate-variance utility term.
	// Default 4.
	LossWeight float64
	// DiurnalWeight scales the diurnal-window-proximity utility term.
	// Default 1.
	DiurnalWeight float64
}

// Enabled reports whether the configuration runs the scheduler. Any
// positive Fraction does — including full budget (Fraction ≥ 1), which
// schedules every link every round.
func (c Config) Enabled() bool { return c.Fraction > 0 }

func (c Config) withDefaults() Config {
	if c.Fraction > 1 {
		c.Fraction = 1
	}
	if c.RecomputeEvery <= 0 {
		c.RecomputeEvery = 6 * time.Hour
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 4
	}
	if c.MaxBackoff > 12 {
		c.MaxBackoff = 12
	}
	if c.PlateauAfter <= 0 {
		c.PlateauAfter = 8
	}
	if c.DensifyEvidence <= 0 {
		c.DensifyEvidence = 4
	}
	if c.WakeEvidence <= 0 {
		c.WakeEvidence = 6
	}
	if c.LossWeight <= 0 {
		c.LossWeight = 4
	}
	if c.DiurnalWeight <= 0 {
		c.DiurnalWeight = 1
	}
	return c
}

// linkState is everything the scheduler knows about one link. It is
// written on the hot path only by the owning VP's worker (Observe)
// and read/rewritten only at barriers (RecomputeAt), so no field
// needs synchronization beyond the engine's existing barrier
// handoff.
type linkState struct {
	tap cusum.Stream

	// Window accumulators since the last recompute.
	rounds uint32
	lost   uint32

	// Loss-rate EWMA and variance proxy across recompute windows.
	lossRate float64
	lossVar  float64

	// Evidence-weighted circular accumulator of the hour-of-day at
	// which elevated samples arrive: the link's diurnal congestion
	// window, used for window-proximity scoring.
	sinSum float64
	cosSum float64
	wSum   float64

	utility   float64
	phaseHash uint32
	seq       uint32 // global registration order, the ranking tie-break
	period    uint32 // assigned probing period (power of two)
	mask      uint32 // period - 1, read by the hot-path Skip gate
	phase     uint32 // phaseHash & mask
	stable    int32  // consecutive recomputes with an unchanged verdict
	active    bool   // current verdict: evidence above DensifyEvidence
	retired   bool   // plateau-stopped: floor heartbeat only
}

// VPLinks is one vantage point's view of the scheduler: link indices
// match the engine's sorted per-VP link slice. Methods are nil-safe
// so the engine's hot loop can call them unconditionally, like the
// faults.Outage gate.
type VPLinks struct {
	sch   *Scheduler
	links []linkState
}

// Scheduler owns the global ranking and budget assignment.
type Scheduler struct {
	cfg    Config
	next   simclock.Time
	floor  uint32
	vps    []*VPLinks
	nLinks int

	// Recompute scratch, reused so barrier work is allocation-free
	// once warm.
	rank []rankEntry

	recomputes int
	retiredNow int
	spendFrac  float64
}

type rankEntry struct {
	utility float64
	vp      int32
	li      int32
	seq     uint32
}

// New builds a scheduler for a campaign over the given interval. The
// first recompute barrier falls RecomputeEvery after campaign start.
func New(cfg Config, campaign simclock.Interval) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{cfg: cfg, next: campaign.Start.Add(cfg.RecomputeEvery)}
	s.floor = 1 << uint(cfg.MaxBackoff)
	// A floor heartbeat of 1/floor per link is spent unconditionally;
	// deepen the floor until the heartbeat alone fits the budget.
	for cfg.Enabled() && 1/float64(s.floor) > cfg.Fraction && s.floor < 1<<12 {
		s.floor <<= 1
	}
	return s
}

// AddVP registers a vantage point and returns its link view.
func (s *Scheduler) AddVP() *VPLinks {
	v := &VPLinks{sch: s}
	s.vps = append(s.vps, v)
	return v
}

// Len is the number of links registered for this VP.
func (v *VPLinks) Len() int {
	if v == nil {
		return 0
	}
	return len(v.links)
}

// AddLink registers the VP's next link (index Len()) and returns its
// index. New links start at full rate: exploration is free evidence.
func (v *VPLinks) AddLink() int {
	s := v.sch
	seq := uint32(s.nLinks)
	s.nLinks++
	v.links = append(v.links, linkState{
		seq:       seq,
		period:    1,
		phaseHash: phaseHash(s.cfg.Seed, seq),
	})
	return len(v.links) - 1
}

// phaseHash spreads link phases across their periods so skipped
// rounds interleave instead of synchronizing (splitmix64 finalizer).
func phaseHash(seed uint64, seq uint32) uint32 {
	x := seed ^ (uint64(seq)+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return uint32(x)
}

// Skip reports whether the budget schedule skips link li at global
// probing step stepIdx. Nil-safe, branch-and-mask only: this is the
// hot-path gate and must stay allocation-free.
func (v *VPLinks) Skip(li, stepIdx int) bool {
	if v == nil {
		return false
	}
	st := &v.links[li]
	return uint32(stepIdx)&st.mask != st.phase
}

// Observe feeds the round's far-side result for link li into the
// utility state: the CUSUM tap, the loss window, and the diurnal
// window accumulator. Called only by the owning VP's worker, only on
// rounds that were not skipped. Allocation-free.
func (v *VPLinks) Observe(li int, t simclock.Time, rttMs float64, lost bool) {
	if v == nil {
		return
	}
	st := &v.links[li]
	st.rounds++
	if lost {
		st.lost++
		return
	}
	// Elevation relative to the tap's pre-update baseline feeds the
	// diurnal accumulator: congested windows pull the circular mean
	// toward their hour of day.
	if st.tap.Samples() >= 8 {
		if d := rttMs - st.tap.Baseline(); d > 2*st.tap.Dev() && d > 0 {
			h := t.HourOfDay() * (2 * math.Pi / 24)
			sin, cos := math.Sincos(h)
			st.sinSum = diurnalDecay*st.sinSum + d*sin
			st.cosSum = diurnalDecay*st.cosSum + d*cos
			st.wSum = diurnalDecay*st.wSum + d
		} else {
			st.sinSum *= diurnalDecay
			st.cosSum *= diurnalDecay
			st.wSum *= diurnalDecay
		}
	}
	st.tap.Observe(rttMs)
}

// diurnalDecay leaks the circular accumulator with a horizon of a few
// hundred samples (~a day of 5-minute rounds), so the inferred
// congestion window tracks recent behaviour.
const diurnalDecay = 0.997

// Due reports whether a recompute barrier is due at or before t. The
// engine folds this into its quiescent predicate so recompute
// instants break batches deterministically.
func (s *Scheduler) Due(t simclock.Time) bool {
	return s != nil && t >= s.next
}

// NextRecompute is the next barrier instant.
func (s *Scheduler) NextRecompute() simclock.Time { return s.next }

// RecomputeAt runs the barrier work at time t: fold the per-link
// windows, update verdicts and plateau state, re-rank by utility, and
// reassign periods under the budget. Must be called single-threaded
// (the engine's open step). Allocation-free once the scratch is warm.
func (s *Scheduler) RecomputeAt(t simclock.Time) {
	if s == nil || t < s.next {
		return
	}
	for s.next <= t {
		s.next = s.next.Add(s.cfg.RecomputeEvery)
	}
	s.recomputes++

	// Utility scoring evaluates diurnal proximity at the middle of
	// the upcoming window.
	hMid := t.Add(s.cfg.RecomputeEvery / 2).HourOfDay()

	if s.cfg.Fraction >= 1 {
		// Full budget: every link runs every round, period 1 across
		// the board and no back-off ladder. The utility state still
		// folds and verdicts still update so Stats reports the same
		// evidence the budgeted rows see — only assignment is
		// unconditional, keeping spend parity with an unscheduled
		// campaign.
		s.retiredNow = 0
		for _, v := range s.vps {
			for li := range v.links {
				st := &v.links[li]
				s.foldWindow(st)
				s.updateVerdict(st)
				st.utility = s.utility(st, hMid)
				if st.retired {
					s.retiredNow++
				}
				s.assign(st, 1)
			}
		}
		if s.nLinks > 0 {
			s.spendFrac = 1
		}
		return
	}

	s.rank = s.rank[:0]
	s.retiredNow = 0
	for vi, v := range s.vps {
		for li := range v.links {
			st := &v.links[li]
			s.foldWindow(st)
			s.updateVerdict(st)
			st.utility = s.utility(st, hMid)
			if st.retired {
				s.retiredNow++
				// Retired links are pinned to the floor and leave the
				// candidate pool entirely.
				s.assign(st, s.floor)
				continue
			}
			s.rank = append(s.rank, rankEntry{utility: st.utility, vp: int32(vi), li: int32(li), seq: st.seq})
		}
	}
	sort.Sort((*byUtility)(&s.rank))

	// Greedy assignment in utility order. Every link — retired or
	// not — costs at least the 1/floor heartbeat, reserved up front;
	// the remainder buys rate upgrades for the highest-utility links
	// first. Spending is in probes-per-round units, so the sum of
	// 1/period across links never exceeds Fraction × links.
	left := 0.0
	if s.cfg.Enabled() {
		left = (s.cfg.Fraction - 1/float64(s.floor)) * float64(s.nLinks)
	}
	floorCost := 1 / float64(s.floor)
	spent := float64(s.nLinks) * floorCost
	for i := range s.rank {
		e := &s.rank[i]
		st := &s.vps[e.vp].links[e.li]
		p := s.desiredPeriod(st)
		for p < s.floor && 1/float64(p)-floorCost > left {
			p <<= 1
		}
		left -= 1/float64(p) - floorCost
		spent += 1/float64(p) - floorCost
		s.assign(st, p)
	}
	if s.nLinks > 0 {
		s.spendFrac = spent / float64(s.nLinks)
	}
}

// foldWindow folds the since-last-recompute loss window into the
// cross-window EWMA rate and variance.
func (s *Scheduler) foldWindow(st *linkState) {
	if st.rounds == 0 {
		return
	}
	rate := float64(st.lost) / float64(st.rounds)
	d := rate - st.lossRate
	st.lossRate += 0.3 * d
	st.lossVar += 0.3 * (d*d - st.lossVar)
	st.rounds, st.lost = 0, 0
}

// updateVerdict applies the plateau rule: verdicts that stay
// unchanged for PlateauAfter recomputes retire flat links to the
// heartbeat floor; WakeEvidence on the heartbeat un-retires them.
func (s *Scheduler) updateVerdict(st *linkState) {
	ev := st.tap.Evidence()
	active := ev >= s.cfg.DensifyEvidence
	if active == st.active {
		if st.stable < math.MaxInt32 {
			st.stable++
		}
	} else {
		st.active = active
		st.stable = 0
	}
	if st.retired {
		if ev >= s.cfg.WakeEvidence {
			st.retired = false
			st.stable = 0
		}
		return
	}
	if !st.active && st.stable >= int32(s.cfg.PlateauAfter) {
		st.retired = true
	}
}

// utility scores a link's expected marginal information.
func (s *Scheduler) utility(st *linkState, hMid float64) float64 {
	u := st.tap.Evidence()
	u += s.cfg.LossWeight * math.Sqrt(st.lossVar)
	if st.wSum > 1e-9 {
		// Proximity of the upcoming window to the link's inferred
		// diurnal congestion peak, weighted by how concentrated the
		// elevation mass is around that peak.
		peak := math.Atan2(st.sinSum, st.cosSum)
		conc := math.Hypot(st.sinSum, st.cosSum) / st.wSum
		prox := math.Cos(hMid*(2*math.Pi/24) - peak)
		if prox > 0 {
			u += s.cfg.DiurnalWeight * conc * prox
		}
	}
	return u
}

// desiredPeriod is the rate ladder before budget capping: suspects run
// at full rate, flat links double their period per recompute down to
// the floor.
func (s *Scheduler) desiredPeriod(st *linkState) uint32 {
	if st.active {
		return 1
	}
	p := st.period << 1
	if p > s.floor {
		p = s.floor
	}
	if p == 0 {
		p = 1
	}
	return p
}

func (s *Scheduler) assign(st *linkState, p uint32) {
	st.period = p
	st.mask = p - 1
	st.phase = st.phaseHash & st.mask
}

type byUtility []rankEntry

func (r *byUtility) Len() int      { return len(*r) }
func (r *byUtility) Swap(i, j int) { (*r)[i], (*r)[j] = (*r)[j], (*r)[i] }
func (r *byUtility) Less(i, j int) bool {
	a, b := &(*r)[i], &(*r)[j]
	if a.utility != b.utility {
		return a.utility > b.utility
	}
	return a.seq < b.seq
}

// Stats is a snapshot of scheduler state for reporting.
type Stats struct {
	// Links is the number of registered links.
	Links int
	// Retired is how many are currently plateau-stopped.
	Retired int
	// Recomputes is how many barrier recomputes have run.
	Recomputes int
	// SpendFrac is the probes-per-round spend fraction assigned at
	// the last recompute (≤ the configured Fraction).
	SpendFrac float64
	// Floor is the heartbeat period (1<<MaxBackoff, possibly
	// deepened to fit Fraction).
	Floor int
}

// SkipRecomputesTo advances the recompute-barrier cursor past t
// without running any barrier work. The engine's checkpoint replay
// uses it: a resumed campaign re-walks the pre-checkpoint steps
// without probing, so there is no window state to fold, but the
// barrier chain must stay aligned with the uninterrupted run (and
// with the quiescent predicate, which would otherwise see an overdue
// barrier at every step). Nil-safe.
func (s *Scheduler) SkipRecomputesTo(t simclock.Time) {
	if s == nil {
		return
	}
	for s.next <= t {
		s.next = s.next.Add(s.cfg.RecomputeEvery)
	}
}

// LinkCheckpoint is one link's serializable scheduler state for engine
// checkpoints (DESIGN.md §15). Identity fields (seq, phaseHash) are
// reconstructed by replayed AddLink registration; mask and phase are
// re-derived from Period on restore.
type LinkCheckpoint struct {
	Tap                  cusum.StreamState
	Rounds, Lost         uint32
	LossRate, LossVar    float64
	SinSum, CosSum, WSum float64
	Utility              float64
	Period               uint32
	Stable               int32
	Active, Retired      bool
}

// SchedulerCheckpoint is the scheduler's full serializable state.
type SchedulerCheckpoint struct {
	Next       simclock.Time
	Recomputes int
	RetiredNow int
	SpendFrac  float64
	// VPs holds per-VP link state in AddVP/AddLink registration order.
	VPs [][]LinkCheckpoint
}

// Checkpoint captures the scheduler at a batch barrier.
func (s *Scheduler) Checkpoint() *SchedulerCheckpoint {
	if s == nil {
		return nil
	}
	ck := &SchedulerCheckpoint{
		Next:       s.next,
		Recomputes: s.recomputes,
		RetiredNow: s.retiredNow,
		SpendFrac:  s.spendFrac,
		VPs:        make([][]LinkCheckpoint, len(s.vps)),
	}
	for vi, v := range s.vps {
		links := make([]LinkCheckpoint, len(v.links))
		for li := range v.links {
			st := &v.links[li]
			links[li] = LinkCheckpoint{
				Tap:      st.tap.State(),
				Rounds:   st.rounds,
				Lost:     st.lost,
				LossRate: st.lossRate,
				LossVar:  st.lossVar,
				SinSum:   st.sinSum,
				CosSum:   st.cosSum,
				WSum:     st.wSum,
				Utility:  st.utility,
				Period:   st.period,
				Stable:   st.stable,
				Active:   st.active,
				Retired:  st.retired,
			}
		}
		ck.VPs[vi] = links
	}
	return ck
}

// RestoreCheckpoint overwrites the scheduler's mutable state from a
// snapshot taken at the same barrier of an equivalent run. Every VP
// and link must already be registered (the resumed run replays the
// same discovery), with identical counts. Panics on shape mismatch —
// that means the resume ran against a different world.
func (s *Scheduler) RestoreCheckpoint(ck *SchedulerCheckpoint) {
	if s == nil || ck == nil {
		if (s == nil) != (ck == nil) {
			panic("budget: RestoreCheckpoint scheduler presence mismatch")
		}
		return
	}
	if len(ck.VPs) != len(s.vps) {
		panic("budget: RestoreCheckpoint VP count mismatch")
	}
	s.next = ck.Next
	s.recomputes = ck.Recomputes
	s.retiredNow = ck.RetiredNow
	s.spendFrac = ck.SpendFrac
	for vi, v := range s.vps {
		if len(ck.VPs[vi]) != len(v.links) {
			panic("budget: RestoreCheckpoint link count mismatch")
		}
		for li := range v.links {
			st := &v.links[li]
			lc := &ck.VPs[vi][li]
			st.tap.RestoreState(lc.Tap)
			st.rounds = lc.Rounds
			st.lost = lc.Lost
			st.lossRate = lc.LossRate
			st.lossVar = lc.LossVar
			st.sinSum = lc.SinSum
			st.cosSum = lc.CosSum
			st.wSum = lc.WSum
			st.utility = lc.Utility
			st.stable = lc.Stable
			st.active = lc.Active
			st.retired = lc.Retired
			s.assign(st, lc.Period)
		}
	}
}

// Stats snapshots the scheduler.
func (s *Scheduler) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{
		Links:      s.nLinks,
		Retired:    s.retiredNow,
		Recomputes: s.recomputes,
		SpendFrac:  s.spendFrac,
		Floor:      int(s.floor),
	}
}
