// Package loss aggregates the 1-packet-per-second loss-rate probes the
// paper ran against repeatedly congested links (§4): the loss rate is
// computed over every batch of 100 probes, giving one loss percentage
// per ~100 seconds, which figures 2b and 3b plot over time.
package loss

import (
	"fmt"
	"time"

	"afrixp/internal/simclock"
	"afrixp/internal/timeseries"
	"afrixp/internal/tschunk"
)

// BatchSize is the paper's batch: 100 probes.
const BatchSize = 100

// Batch is one loss-rate measurement.
type Batch struct {
	// Start is when the first probe of the batch was sent.
	Start simclock.Time
	// Sent and Lost count probes in the batch.
	Sent, Lost int
}

// Rate returns the batch loss rate in percent.
func (b Batch) Rate() float64 {
	if b.Sent == 0 {
		return 0
	}
	return 100 * float64(b.Lost) / float64(b.Sent)
}

// Collector accumulates per-probe outcomes into batches. With BindGrid
// it additionally streams completed batch rates into a compressed
// tschunk grid — the same columnar backing the RTT collectors use — so
// a long loss campaign's rate series never exists as a flat slice.
type Collector struct {
	batches []Batch
	cur     Batch
	open    bool

	grid      *tschunk.Builder
	gridStart simclock.Time
	gridStep  simclock.Duration
	gridS     *timeseries.Series // sealed view, cached by GridSeries

	// skippedRounds counts scheduled loss rounds the probe-budget
	// scheduler elected not to run; missedRounds counts rounds that
	// never ran because the vantage point was down. Kept separate so
	// yield reporting never conflates budget back-off with outages.
	skippedRounds, missedRounds int
}

// BindGrid attaches a compressed rate grid covering n slots of step
// width from start (use GridFor's layout). Every batch completed after
// the bind max-merges its rate into the covering slot — the same
// merge ToSeries applies — so GridSeries matches ToSeries over the
// same grid bit for bit. Call before recording begins.
func (c *Collector) BindGrid(start simclock.Time, step simclock.Duration, n int) {
	if step <= 0 {
		panic("loss: non-positive grid step")
	}
	c.grid = tschunk.NewBuilder(n)
	c.gridStart = start
	c.gridStep = step
	c.gridS = nil
}

// mergeGrid folds one completed batch into the bound grid.
func (c *Collector) mergeGrid(b Batch) {
	if c.grid == nil || b.Start < c.gridStart {
		return
	}
	i := int(b.Start.Sub(c.gridStart) / c.gridStep)
	if i >= c.grid.Len() {
		return
	}
	c.grid.MergeMax(i, b.Rate())
}

// GridSeries seals and returns the bound rate grid as a chunk-backed
// series, folding in the trailing partial batch exactly when Batches
// would keep it. Nil when no grid is bound. The first call finalizes
// the grid; recording after it panics.
func (c *Collector) GridSeries() *timeseries.Series {
	if c.grid == nil {
		return nil
	}
	if c.gridS == nil {
		if c.open && c.cur.Sent >= BatchSize/2 {
			c.mergeGrid(c.cur)
		}
		c.gridS = timeseries.FromChunk(c.gridStart, c.gridStep, c.grid.Seal())
	}
	return c.gridS
}

// Reserve pre-sizes the batch store for n completed batches, so a
// campaign that knows its loss window up front collects without
// regrowing the slice mid-flight.
func (c *Collector) Reserve(n int) {
	if n > cap(c.batches) {
		grown := make([]Batch, len(c.batches), n)
		copy(grown, c.batches)
		c.batches = grown
	}
}

// Record adds one probe outcome at time t.
func (c *Collector) Record(t simclock.Time, lost bool) {
	if !c.open {
		c.cur = Batch{Start: t}
		c.open = true
	}
	c.cur.Sent++
	if lost {
		c.cur.Lost++
	}
	if c.cur.Sent >= BatchSize {
		c.batches = append(c.batches, c.cur)
		c.mergeGrid(c.cur)
		c.open = false
	}
}

// RoundSkipped accounts one scheduled loss round (a full BatchSize
// burst) that the probe-budget scheduler skipped. Allocation-free.
func (c *Collector) RoundSkipped() { c.skippedRounds++ }

// RoundMissed accounts one scheduled loss round that never ran
// because the vantage point was offline. Allocation-free.
func (c *Collector) RoundMissed() { c.missedRounds++ }

// RoundAccounting reports the rounds that did not run, split by
// cause: budget skips versus VP-outage misses.
func (c *Collector) RoundAccounting() (skipped, missed int) {
	return c.skippedRounds, c.missedRounds
}

// CollectorState is a loss Collector's full mutable state at a batch
// barrier, for engine checkpoints (DESIGN.md §15).
type CollectorState struct {
	Batches []Batch
	Cur     Batch
	Open    bool
	HasGrid bool
	Grid    tschunk.BuilderState
	Skipped int
	Missed  int
}

// Checkpoint captures the collector's state. Must run at a batch
// barrier before any further recording: the grid builder state aliases
// live buffers until serialized. Panics if GridSeries has already
// sealed the grid.
func (c *Collector) Checkpoint() CollectorState {
	st := CollectorState{
		Batches: c.batches,
		Cur:     c.cur,
		Open:    c.open,
		Skipped: c.skippedRounds,
		Missed:  c.missedRounds,
	}
	if c.grid != nil {
		st.HasGrid = true
		st.Grid = c.grid.State()
	}
	return st
}

// RestoreCheckpoint overwrites the collector's state from a snapshot
// taken at the same barrier of an equivalent run. A bound grid must
// have been rebound (BindGrid with the same layout) first.
func (c *Collector) RestoreCheckpoint(st CollectorState) {
	if st.HasGrid != (c.grid != nil) {
		panic("loss: RestoreCheckpoint grid binding mismatch")
	}
	c.batches = append(c.batches[:0], st.Batches...)
	c.cur = st.Cur
	c.open = st.Open
	if c.grid != nil {
		c.grid.RestoreState(st.Grid)
	}
	c.skippedRounds = st.Skipped
	c.missedRounds = st.Missed
}

// Batches returns all completed batches. A partial trailing batch is
// included only if it holds at least half a batch of probes.
func (c *Collector) Batches() []Batch {
	out := c.batches
	if c.open && c.cur.Sent >= BatchSize/2 {
		out = append(append([]Batch(nil), out...), c.cur)
	}
	return out
}

// Summary aggregates a batch sequence.
type Summary struct {
	Batches  int
	MeanRate float64 // percent, probe-weighted
	MaxRate  float64
	MinRate  float64
	// FracLossy is the fraction of batches with any loss.
	FracLossy float64
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("%d batches, mean %.2f%%, min %.1f%%, max %.1f%%, %.0f%% lossy",
		s.Batches, s.MeanRate, s.MinRate, s.MaxRate, 100*s.FracLossy)
}

// Summarize computes the Summary of a batch sequence.
func Summarize(batches []Batch) Summary {
	var s Summary
	s.Batches = len(batches)
	if len(batches) == 0 {
		return s
	}
	var sent, lost, lossy int
	s.MinRate = batches[0].Rate()
	for _, b := range batches {
		sent += b.Sent
		lost += b.Lost
		if r := b.Rate(); r > s.MaxRate {
			s.MaxRate = r
		} else if r < s.MinRate {
			s.MinRate = r
		}
		if b.Lost > 0 {
			lossy++
		}
	}
	if sent > 0 {
		s.MeanRate = 100 * float64(lost) / float64(sent)
	}
	s.FracLossy = float64(lossy) / float64(len(batches))
	return s
}

// ToSeries grids batch rates onto a regular series for plotting and
// diurnal analysis (figures 2b and 3b). step should be at least the
// batch duration (~100 s at 1 pps). The second return value counts
// batches whose Start fell off the grid: callers windowing a
// sub-interval expect drops, but a grid built with GridFor over the
// batches' own interval must report zero.
func ToSeries(batches []Batch, start simclock.Time, step simclock.Duration, n int) (*timeseries.Series, int) {
	s := timeseries.NewRegular(start, step, n)
	dropped := 0
	for _, b := range batches {
		i := s.Index(b.Start)
		if i < 0 {
			dropped++
			continue
		}
		if timeseries.IsMissing(s.Values[i]) || b.Rate() > s.Values[i] {
			s.Values[i] = b.Rate()
		}
	}
	return s, dropped
}

// GridFor returns (start, step, n) covering an interval with ~batch
// resolution, for use with ToSeries. The grid extends one slot past
// the interval end: the trailing partial batch Collector.Batches
// deliberately keeps can start exactly at (or just past) the last
// in-interval probe, and a grid cut at the interval end would
// silently drop it.
func GridFor(iv simclock.Interval) (simclock.Time, simclock.Duration, int) {
	step := 10 * time.Minute
	return iv.Start, step, iv.NumSteps(step) + 1
}
