package loss

import (
	"math"
	"testing"
	"time"

	"afrixp/internal/simclock"
	"afrixp/internal/timeseries"
)

func TestBatchRate(t *testing.T) {
	b := Batch{Sent: 100, Lost: 25}
	if b.Rate() != 25 {
		t.Fatalf("rate = %v", b.Rate())
	}
	if (Batch{}).Rate() != 0 {
		t.Fatal("empty batch rate must be 0")
	}
}

func TestCollectorBatching(t *testing.T) {
	var c Collector
	for i := 0; i < 250; i++ {
		c.Record(simclock.Time(time.Duration(i)*time.Second), i%10 == 0)
	}
	batches := c.Batches()
	// 250 probes = 2 complete batches + 50-probe partial (included).
	if len(batches) != 3 {
		t.Fatalf("batches = %d", len(batches))
	}
	if batches[0].Sent != 100 || batches[0].Lost != 10 {
		t.Fatalf("batch 0: %+v", batches[0])
	}
	if batches[2].Sent != 50 {
		t.Fatalf("partial batch: %+v", batches[2])
	}
	if batches[1].Start != simclock.Time(100*time.Second) {
		t.Fatalf("batch 1 start = %v", batches[1].Start)
	}
}

func TestCollectorDropsTinyPartial(t *testing.T) {
	var c Collector
	for i := 0; i < 120; i++ {
		c.Record(simclock.Time(time.Duration(i)*time.Second), false)
	}
	if got := len(c.Batches()); got != 1 {
		t.Fatalf("20-probe partial should be dropped: %d batches", got)
	}
}

func TestSummarize(t *testing.T) {
	batches := []Batch{
		{Sent: 100, Lost: 0},
		{Sent: 100, Lost: 50},
		{Sent: 100, Lost: 10},
	}
	s := Summarize(batches)
	if s.Batches != 3 {
		t.Fatalf("batches = %d", s.Batches)
	}
	if s.MeanRate != 20 {
		t.Fatalf("mean = %v", s.MeanRate)
	}
	if s.MaxRate != 50 || s.MinRate != 0 {
		t.Fatalf("min/max = %v/%v", s.MinRate, s.MaxRate)
	}
	if math.Abs(s.FracLossy-2.0/3) > 1e-9 {
		t.Fatalf("fracLossy = %v", s.FracLossy)
	}
	if s.String() == "" {
		t.Fatal("String must render")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Batches != 0 || s.MeanRate != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestToSeries(t *testing.T) {
	start := simclock.Date(2016, time.July, 21)
	batches := []Batch{
		{Start: start, Sent: 100, Lost: 5},
		{Start: start.Add(100 * time.Second), Sent: 100, Lost: 20},
		{Start: start.Add(3 * time.Hour), Sent: 100, Lost: 1},
	}
	s, dropped := ToSeries(batches, start, 10*time.Minute, 24)
	if dropped != 0 {
		t.Fatalf("dropped = %d", dropped)
	}
	// Two batches fall into slot 0: the max rate wins.
	if s.Values[0] != 20 {
		t.Fatalf("slot 0 = %v", s.Values[0])
	}
	if s.At(start.Add(3*time.Hour)) != 1 {
		t.Fatal("late batch misplaced")
	}
	if !timeseries.IsMissing(s.Values[1]) {
		t.Fatal("empty slots must stay missing")
	}
}

func TestGridFor(t *testing.T) {
	iv := simclock.Interval{Start: 0, End: simclock.Time(24 * time.Hour)}
	start, step, n := GridFor(iv)
	// One slot past the 144 in-interval steps, for the trailing
	// partial batch.
	if start != 0 || step != 10*time.Minute || n != 145 {
		t.Fatalf("grid = %v %v %d", start, step, n)
	}
}

// TestToSeriesTrailingPartialBatch reproduces the dropped-batch bug:
// at 1 pps over a 20-minute window the collector flushes a full batch
// every 100 s, and the half-size trailing partial that Batches keeps
// starts exactly at the interval end. A grid cut at the end (the old
// GridFor) indexed it at −1 and silently discarded it.
func TestToSeriesTrailingPartialBatch(t *testing.T) {
	iv := simclock.Interval{Start: 0, End: simclock.Time(20 * time.Minute)}
	var c Collector
	for i := 0; i < 1250; i++ {
		c.Record(simclock.Time(time.Duration(i)*time.Second), i%5 == 0)
	}
	batches := c.Batches()
	if len(batches) != 13 {
		t.Fatalf("batches = %d", len(batches))
	}
	last := batches[len(batches)-1]
	if last.Start != simclock.Time(20*time.Minute) || last.Sent != 50 {
		t.Fatalf("trailing batch: %+v", last)
	}
	start, step, n := GridFor(iv)
	s, dropped := ToSeries(batches, start, step, n)
	if dropped != 0 {
		t.Fatalf("trailing partial batch dropped (%d)", dropped)
	}
	if timeseries.IsMissing(s.At(last.Start)) {
		t.Fatal("trailing partial batch missing from the grid")
	}
	// A deliberately short grid reports the drop instead of hiding it.
	if _, dropped := ToSeries(batches, start, step, n-1); dropped != 1 {
		t.Fatalf("short grid: dropped = %d, want 1", dropped)
	}
}

// TestGridSeriesMatchesToSeries pins the streaming compressed rate
// grid against the post-hoc ToSeries gridding, bit for bit — including
// the trailing half-full batch both paths must keep.
func TestGridSeriesMatchesToSeries(t *testing.T) {
	iv := simclock.Interval{Start: 0, End: simclock.Time(6 * time.Hour)}
	start, step, n := GridFor(iv)

	var col Collector
	col.BindGrid(start, step, n)
	rng := uint64(1)
	for ts := iv.Start; ts < iv.End; ts += simclock.Time(2 * time.Second) {
		rng = rng*6364136223846793005 + 1442695040888963407
		col.Record(ts, rng>>60 < 3) // ~19% loss
	}
	// Leave a >= half-size trailing partial batch open.
	probes := 0
	for ts := iv.End; probes < BatchSize/2+7; probes++ {
		col.Record(ts, probes%5 == 0)
		ts += simclock.Time(time.Second)
	}

	want, dropped := ToSeries(col.Batches(), start, step, n)
	if dropped != 0 {
		t.Fatalf("reference grid dropped %d batches", dropped)
	}
	got := col.GridSeries()
	if got == nil || !got.Chunked() {
		t.Fatal("GridSeries must return a chunk-backed series")
	}
	if got.Len() != want.Len() || got.Start != want.Start || got.Step != want.Step {
		t.Fatalf("grid layout mismatch: got (%v,%v,%d) want (%v,%v,%d)",
			got.Start, got.Step, got.Len(), want.Start, want.Step, want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if math.Float64bits(got.ValueAt(i)) != math.Float64bits(want.ValueAt(i)) {
			t.Fatalf("slot %d: got %v, want %v", i, got.ValueAt(i), want.ValueAt(i))
		}
	}
	if s2 := col.GridSeries(); s2 != got {
		t.Fatal("GridSeries must be cached")
	}
}

func TestGridSeriesNilWithoutBind(t *testing.T) {
	var col Collector
	col.Record(0, false)
	if col.GridSeries() != nil {
		t.Fatal("unbound collector must return nil grid")
	}
}
