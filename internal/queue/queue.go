// Package queue models router output queues as fluid FIFO buffers.
//
// TSLP infers congestion from the standing queue that builds at a
// link's output buffer when offered load approaches or exceeds link
// capacity: RTTs across the link rise by up to the buffer's drain time,
// and packets are dropped at the rate of the overload. A fluid model —
// integrating (load − capacity) into an occupancy clamped to the buffer
// size — reproduces exactly those observables without simulating every
// background packet, which is what makes year-long campaigns feasible.
//
// The paper interprets the magnitude of a level shift as "the size of
// the router buffer"; in this model, a link saturated for longer than
// its drain time exhibits a queueing delay plateau equal to
// BufferDrain, so scenario authors set BufferDrain to place A_w.
package queue

import (
	"fmt"
	"math"
	"time"

	"afrixp/internal/simclock"
)

// Fluid is a fluid-approximation FIFO queue attached to a link of a
// given capacity. Occupancy is tracked in bits; delay is occupancy
// divided by capacity. The model is advanced lazily: each observation
// at time t integrates the load function from the last observation
// forward, so observations must be made in non-decreasing time order.
type Fluid struct {
	// CapacityBps is the link capacity in bits per second. It may be
	// changed between observations via SetCapacity (capacity upgrades
	// are a first-class event in the paper's case studies).
	capacityBps float64
	// bufferBits is the maximum occupancy (tail-drop beyond it).
	bufferBits float64
	// load returns the offered background load in bits per second at
	// virtual time t.
	load func(simclock.Time) float64

	// integration state
	lastTime  simclock.Time
	occupancy float64 // bits
	// lossAccum tracks, over the most recent integration step, the
	// fraction of offered traffic dropped.
	lossFrac float64

	// step is the integration granularity.
	step simclock.Duration
	// pktBits enables the near-saturation stochastic delay term.
	pktBits float64

	// Batch scratch: the frontier state recorded after each step of the
	// most recent AdvanceBatch, indexed by step. Reused across batches
	// so steady-state advancement allocates nothing.
	batchTime []simclock.Time
	batchOcc  []float64
	batchLoss []float64
}

// Config describes a fluid queue.
type Config struct {
	// CapacityBps is the link capacity in bits/s (e.g. 100e6 for the
	// GIXA–GHANATEL transit link of §6.2.1).
	CapacityBps float64
	// BufferDrain is the time the full buffer takes to drain at
	// capacity — the standing-queue delay plateau and therefore the
	// level-shift magnitude TSLP observes.
	BufferDrain simclock.Duration
	// Load is the offered background load (bits/s) as a function of
	// virtual time. nil means an always-idle link.
	Load func(simclock.Time) float64
	// Step is the integration granularity; defaults to 30 s, fine
	// enough for 5-minute TSLP sampling.
	Step simclock.Duration
	// Start positions the queue's internal clock.
	Start simclock.Time
	// PacketBits, when positive, adds an M/M/1-style mean queueing
	// delay ρ/(1−ρ)·PacketBits/Capacity below saturation (capped so
	// total delay never exceeds BufferDrain). The pure fluid model
	// shows zero delay until overload; real links build stochastic
	// queues as utilization approaches 1 — the paper's
	// QCELL–NETPAGE weekend spikes (15 ms vs the 35 ms weekday
	// plateau) are that regime. 12000 (a 1500-byte packet) is a
	// typical value; zero disables the term.
	PacketBits float64
}

// NewFluid constructs the queue. It panics on non-positive capacity,
// which is always a scenario bug.
func NewFluid(cfg Config) *Fluid {
	if cfg.CapacityBps <= 0 {
		panic(fmt.Sprintf("queue: capacity %v must be positive", cfg.CapacityBps))
	}
	if cfg.Step <= 0 {
		cfg.Step = 30 * time.Second
	}
	load := cfg.Load
	if load == nil {
		load = func(simclock.Time) float64 { return 0 }
	}
	return &Fluid{
		capacityBps: cfg.CapacityBps,
		bufferBits:  cfg.BufferDrain.Seconds() * cfg.CapacityBps,
		load:        load,
		lastTime:    cfg.Start,
		step:        cfg.Step,
		pktBits:     cfg.PacketBits,
	}
}

// SetCapacity changes the link capacity at time t (advancing the model
// to t first). The buffer's drain time is preserved, so the buffer
// size in bits is rescaled — upgrading a 10 Mbps link to 1 Gbps keeps
// the same worst-case queueing delay but makes it far harder to fill.
func (q *Fluid) SetCapacity(t simclock.Time, bps float64) {
	if bps <= 0 {
		panic("queue: capacity must be positive")
	}
	q.advance(t)
	drain := q.bufferBits / q.capacityBps
	q.capacityBps = bps
	q.bufferBits = drain * bps
	if q.occupancy > q.bufferBits {
		q.occupancy = q.bufferBits
	}
}

// Capacity returns the current capacity in bits/s.
func (q *Fluid) Capacity() float64 { return q.capacityBps }

// SetBufferDrain changes the buffer depth at time t (advancing the
// model to t first) — operators repurposing a link for a different
// service class effectively change its queue budget, as GHANATEL did
// when converting its transit link to peering.
func (q *Fluid) SetBufferDrain(t simclock.Time, drain simclock.Duration) {
	if drain <= 0 {
		panic("queue: buffer drain must be positive")
	}
	q.advance(t)
	q.bufferBits = drain.Seconds() * q.capacityBps
	if q.occupancy > q.bufferBits {
		q.occupancy = q.bufferBits
	}
}

// advance integrates the fluid model up to t. Observations at or
// before the current integration frontier return the frontier state
// unchanged: probes traversing different paths can observe a shared
// queue slightly out of order (a probe that crossed a congested queue
// arrives "later" than one sent just after it), and within one
// integration step the occupancy difference is below model resolution.
func (q *Fluid) advance(t simclock.Time) {
	if t <= q.lastTime {
		return
	}
	q.occupancy, q.lossFrac = q.integrate(q.lastTime, q.occupancy, t)
	q.lastTime = t
}

// integrate runs the fluid stepping from (from, occ) up to t and
// returns the resulting occupancy plus the drop fraction over the
// integrated window. It reads only immutable configuration, so it is
// safe to call from concurrent frozen observers.
func (q *Fluid) integrate(from simclock.Time, occ float64, t simclock.Time) (float64, float64) {
	var offered, dropped float64
	for from < t {
		dt := q.step
		if rem := t.Sub(from); rem < dt {
			dt = rem
		}
		sec := dt.Seconds()
		in := q.load(from) * sec
		out := q.capacityBps * sec
		offered += in
		next := occ + in - out
		if next > q.bufferBits {
			dropped += next - q.bufferBits
			next = q.bufferBits
		}
		if next < 0 {
			next = 0
		}
		occ = next
		from = from.Add(dt)
	}
	lossFrac := 0.0
	if offered > 0 {
		lossFrac = math.Min(1, dropped/offered)
	}
	return occ, lossFrac
}

// Advance moves the integration frontier to t. It is the single-writer
// half of the parallel campaign protocol: the campaign engine advances
// every queue once per probing step, then concurrent workers observe
// the step through ObserveFrozen without mutating anything.
func (q *Fluid) Advance(t simclock.Time) { q.advance(t) }

// ObserveFrozen returns the queueing delay and drop probability a
// packet arriving at t experiences, computed by integrating forward
// from the current frontier into locals — the frontier itself is not
// moved. Because the result depends only on (frontier, t), concurrent
// observers see identical values regardless of ordering, which is what
// makes campaign results bit-identical across worker counts.
func (q *Fluid) ObserveFrozen(t simclock.Time) (simclock.Duration, float64) {
	occ, lossFrac := q.occupancy, q.lossFrac
	if t > q.lastTime {
		occ, lossFrac = q.integrate(q.lastTime, q.occupancy, t)
	}
	return q.delayFromOccupancy(occ, t), lossFrac
}

// AdvanceBatch advances the integration frontier through each step
// time in order — exactly as len(steps) successive Advance calls would
// — while recording the frontier state after every step. The recorded
// states let ObserveFrozenStep later reproduce, for any step in the
// batch, precisely what ObserveFrozen would have returned had the
// campaign stopped to advance the world at that step. The scratch
// tables are reused across batches, so steady-state advancement does
// not allocate.
//
// Note the recorded time is the post-advance frontier, not steps[i]:
// advance is a no-op for times at or before the frontier, and the
// replayed observation must integrate from the same origin the live
// one would have.
func (q *Fluid) AdvanceBatch(steps []simclock.Time) {
	if cap(q.batchTime) < len(steps) {
		q.batchTime = make([]simclock.Time, len(steps))
		q.batchOcc = make([]float64, len(steps))
		q.batchLoss = make([]float64, len(steps))
	}
	q.batchTime = q.batchTime[:len(steps)]
	q.batchOcc = q.batchOcc[:len(steps)]
	q.batchLoss = q.batchLoss[:len(steps)]
	for i, t := range steps {
		q.advance(t)
		q.batchTime[i] = q.lastTime
		q.batchOcc[i] = q.occupancy
		q.batchLoss[i] = q.lossFrac
	}
}

// ObserveFrozenStep is ObserveFrozen evaluated against the frontier as
// it stood after batch step i of the most recent AdvanceBatch. A
// negative i observes the live frontier (the non-batched protocol).
// Like ObserveFrozen it mutates nothing, so concurrent workers may
// observe any mix of steps from the same batch.
func (q *Fluid) ObserveFrozenStep(i int, t simclock.Time) (simclock.Duration, float64) {
	if i < 0 {
		return q.ObserveFrozen(t)
	}
	occ, lossFrac := q.batchOcc[i], q.batchLoss[i]
	if t > q.batchTime[i] {
		occ, lossFrac = q.integrate(q.batchTime[i], q.batchOcc[i], t)
	}
	return q.delayFromOccupancy(occ, t), lossFrac
}

// delayFromOccupancy converts a buffer occupancy into the arriving
// packet's queueing delay, including the near-saturation stochastic
// term when configured.
func (q *Fluid) delayFromOccupancy(occ float64, t simclock.Time) simclock.Duration {
	d := occ / q.capacityBps
	if q.pktBits > 0 {
		rho := q.load(t) / q.capacityBps
		if rho >= 1 {
			d = q.bufferBits / q.capacityBps
		} else if rho > 0 {
			d += rho / (1 - rho) * q.pktBits / q.capacityBps
		}
		if max := q.bufferBits / q.capacityBps; d > max {
			d = max
		}
	}
	return time.Duration(d * float64(time.Second))
}

// DelayAt returns the queueing delay a packet arriving at time t
// experiences: the fluid standing-queue drain time, plus (when
// PacketBits is set) the stochastic near-saturation term, capped at
// the buffer drain time.
func (q *Fluid) DelayAt(t simclock.Time) simclock.Duration {
	q.advance(t)
	return q.delayFromOccupancy(q.occupancy, t)
}

// LossAt returns the probability that a packet arriving at time t is
// dropped, computed from the drop fraction over the integration window
// ending at t.
func (q *Fluid) LossAt(t simclock.Time) float64 {
	q.advance(t)
	return q.lossFrac
}

// Occupancy returns the buffer occupancy in bits at time t.
func (q *Fluid) Occupancy(t simclock.Time) float64 {
	q.advance(t)
	return q.occupancy
}

// Utilization returns offered load over capacity at time t (can
// exceed 1 during overload).
func (q *Fluid) Utilization(t simclock.Time) float64 {
	return q.load(t) / q.capacityBps
}

// TokenBucket enforces the prober's packets-per-second budget (the
// paper probed at 100 pps to avoid harming the host network). It is a
// standard token bucket over virtual time.
type TokenBucket struct {
	ratePerSec float64
	burst      float64
	tokens     float64
	last       simclock.Time
}

// NewTokenBucket returns a bucket producing rate tokens per second
// with the given burst capacity, initially full.
func NewTokenBucket(rate, burst float64, start simclock.Time) *TokenBucket {
	if rate <= 0 || burst <= 0 {
		panic("queue: token bucket rate and burst must be positive")
	}
	return &TokenBucket{ratePerSec: rate, burst: burst, tokens: burst, last: start}
}

// tokenEps absorbs float accumulation error so that a bucket polled in
// many small refill increments still admits exactly its nominal rate.
const tokenEps = 1e-9

// Allow consumes a token at time t if available, reporting success.
// Requests dated before the bucket's frontier are treated as arriving
// at the frontier (a caller asking to send "now" after pacing pushed
// it into the future).
func (tb *TokenBucket) Allow(t simclock.Time) bool {
	tb.refill(t)
	if tb.tokens >= 1-tokenEps {
		tb.tokens--
		if tb.tokens < 0 {
			tb.tokens = 0
		}
		return true
	}
	return false
}

// NextAllowed returns the earliest time at or after max(t, frontier)
// at which a token will be available.
func (tb *TokenBucket) NextAllowed(t simclock.Time) simclock.Time {
	t = tb.refill(t)
	if tb.tokens >= 1-tokenEps {
		return t
	}
	need := 1 - tb.tokens
	wait := time.Duration(need / tb.ratePerSec * float64(time.Second))
	return t.Add(wait)
}

// State returns the bucket's mutable state (tokens, frontier) for
// engine checkpoints; rate and burst are configuration, reconstructed
// by the caller.
func (tb *TokenBucket) State() (tokens float64, last simclock.Time) {
	return tb.tokens, tb.last
}

// RestoreState overwrites the bucket's mutable state from a
// checkpoint.
func (tb *TokenBucket) RestoreState(tokens float64, last simclock.Time) {
	tb.tokens, tb.last = tokens, last
}

// refill advances the bucket to max(t, frontier) and returns that time.
func (tb *TokenBucket) refill(t simclock.Time) simclock.Time {
	if t < tb.last {
		t = tb.last
	}
	tb.tokens += t.Sub(tb.last).Seconds() * tb.ratePerSec
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	tb.last = t
	return t
}
