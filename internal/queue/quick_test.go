package queue

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"afrixp/internal/simclock"
	"afrixp/internal/trafficmodel"
)

// Property: whatever the load process does, the fluid queue's delay
// stays within [0, BufferDrain] and its loss within [0, 1].
func TestQuickDelayAndLossBounds(t *testing.T) {
	f := func(capMbps uint16, drainMs uint8, baseFrac, peakFrac uint8, seed uint16) bool {
		capBps := float64(capMbps%1000+1) * 1e6
		drain := time.Duration(drainMs%100+1) * time.Millisecond
		load := trafficmodel.Diurnal{
			BaseBps:  float64(baseFrac) / 64 * capBps, // up to 4×C
			PeakBps:  float64(peakFrac) / 64 * capBps,
			PeakHour: 14, Width: 3,
			NoiseFrac: 0.2, Seed: uint64(seed),
		}
		q := NewFluid(Config{CapacityBps: capBps, BufferDrain: drain,
			Load: load.Bps, PacketBits: 12000})
		for hour := 0; hour < 48; hour++ {
			at := simclock.Time(time.Duration(hour) * time.Hour)
			d := q.DelayAt(at)
			if d < 0 || d > drain+time.Microsecond {
				return false
			}
			l := q.LossAt(at)
			if l < 0 || l > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a batched advance over a window of steps yields, at every
// step index and probe offset, bit-identical observations to advancing
// the frontier step by step — the invariant the step-batched campaign
// scheduler rests on. Includes a repeated step time so the no-op
// advance path (frontier already at or past t) is exercised.
func TestQuickBatchObservationMatchesPerStep(t *testing.T) {
	f := func(capMbps uint16, drainMs uint8, baseFrac, peakFrac uint8, seed uint16, stepMin, nSteps uint8) bool {
		capBps := float64(capMbps%1000+1) * 1e6
		drain := time.Duration(drainMs%100+1) * time.Millisecond
		load := trafficmodel.Diurnal{
			BaseBps:  float64(baseFrac) / 64 * capBps,
			PeakBps:  float64(peakFrac) / 64 * capBps,
			PeakHour: 14, Width: 3,
			NoiseFrac: 0.2, Seed: uint64(seed),
		}
		mk := func() *Fluid {
			return NewFluid(Config{CapacityBps: capBps, BufferDrain: drain,
				Load: load.Bps, PacketBits: 12000})
		}
		perStep, batched := mk(), mk()
		step := time.Duration(stepMin%30+1) * time.Minute
		offsets := []simclock.Duration{0, 10 * time.Millisecond, 500 * time.Millisecond, 90 * time.Second}
		start := simclock.Time(6 * time.Hour)
		// Two consecutive batches, so the scratch-table reuse path runs.
		for batch := 0; batch < 2; batch++ {
			n := int(nSteps%32) + 2
			steps := make([]simclock.Time, n)
			for i := range steps {
				steps[i] = start.Add(time.Duration(i) * step)
			}
			steps[n/2] = steps[n/2-1] // repeated step: advance must no-op
			start = steps[n-1].Add(step)
			batched.AdvanceBatch(steps)
			for i, st := range steps {
				perStep.Advance(st)
				for _, off := range offsets {
					at := st.Add(off)
					d1, l1 := perStep.ObserveFrozen(at)
					d2, l2 := batched.ObserveFrozenStep(i, at)
					if d1 != d2 || math.Float64bits(l1) != math.Float64bits(l2) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a token bucket polled at any cadence never admits more
// than rate·T + burst packets over a window of length T.
func TestQuickTokenBucketAdmissionBound(t *testing.T) {
	f := func(rate8, burst8, cadenceMs uint8) bool {
		rate := float64(rate8%200 + 1)
		burst := float64(burst8%50 + 1)
		cadence := time.Duration(cadenceMs%50+1) * time.Millisecond
		tb := NewTokenBucket(rate, burst, 0)
		const window = 10 * time.Second
		admitted := 0
		for at := simclock.Time(0); at < simclock.Time(window); at = at.Add(cadence) {
			if tb.Allow(at) {
				admitted++
			}
		}
		bound := rate*window.Seconds() + burst + 1
		return float64(admitted) <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: capacity changes preserve the delay bound (drain time is
// conserved across SetCapacity).
func TestQuickSetCapacityPreservesBound(t *testing.T) {
	f := func(c1, c2 uint16, drainMs uint8) bool {
		cap1 := float64(c1%1000+1) * 1e6
		cap2 := float64(c2%1000+1) * 1e6
		drain := time.Duration(drainMs%80+1) * time.Millisecond
		q := NewFluid(Config{CapacityBps: cap1, BufferDrain: drain,
			Load: func(simclock.Time) float64 { return 10 * cap1 }})
		d1 := q.DelayAt(simclock.Time(time.Hour))
		q.SetCapacity(simclock.Time(time.Hour), cap2)
		d2 := q.DelayAt(simclock.Time(2 * time.Hour))
		return d1 <= drain+time.Microsecond && d2 <= drain+time.Microsecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
