package queue

import (
	"math"
	"testing"
	"time"

	"afrixp/internal/simclock"
)

func constLoad(bps float64) func(simclock.Time) float64 {
	return func(simclock.Time) float64 { return bps }
}

func sec(n int) simclock.Time { return simclock.Time(time.Duration(n) * time.Second) }

func TestIdleLinkHasNoDelay(t *testing.T) {
	q := NewFluid(Config{CapacityBps: 100e6, BufferDrain: 30 * time.Millisecond})
	for i := 0; i < 10; i++ {
		if d := q.DelayAt(sec(i * 60)); d != 0 {
			t.Fatalf("idle link delay = %v at t=%d", d, i)
		}
	}
}

func TestUnderloadedLinkDrains(t *testing.T) {
	// 50% utilization: queue never builds.
	q := NewFluid(Config{CapacityBps: 100e6, BufferDrain: 30 * time.Millisecond,
		Load: constLoad(50e6)})
	if d := q.DelayAt(sec(3600)); d != 0 {
		t.Fatalf("underloaded delay = %v", d)
	}
	if l := q.LossAt(sec(3600)); l != 0 {
		t.Fatalf("underloaded loss = %v", l)
	}
}

func TestOverloadFillsBufferToPlateau(t *testing.T) {
	// 150% load: buffer fills; standing delay equals BufferDrain.
	drain := 28 * time.Millisecond
	q := NewFluid(Config{CapacityBps: 100e6, BufferDrain: drain, Load: constLoad(150e6)})
	d := q.DelayAt(sec(600))
	if d != drain {
		t.Fatalf("plateau delay = %v, want %v", d, drain)
	}
	// Loss converges to overload fraction (50e6/150e6 = 1/3).
	loss := q.LossAt(sec(1200))
	if math.Abs(loss-1.0/3) > 0.01 {
		t.Fatalf("overload loss = %v, want ~0.333", loss)
	}
}

func TestBufferFillRate(t *testing.T) {
	// Surplus 10 Mbps into a 100ms*100Mbps = 10Mbit buffer: fills in 1s.
	q := NewFluid(Config{CapacityBps: 100e6, BufferDrain: 100 * time.Millisecond,
		Load: constLoad(110e6), Step: 10 * time.Millisecond})
	half := q.DelayAt(simclock.Time(500 * time.Millisecond))
	if math.Abs(half.Seconds()-0.050) > 0.002 {
		t.Fatalf("half-fill delay = %v, want ~50ms", half)
	}
	full := q.DelayAt(sec(2))
	if full != 100*time.Millisecond {
		t.Fatalf("full delay = %v", full)
	}
}

func TestQueueDrainsAfterLoadDrops(t *testing.T) {
	// Load above capacity for 60s, then zero: the queue must empty.
	load := func(tm simclock.Time) float64 {
		if tm < sec(60) {
			return 200e6
		}
		return 0
	}
	q := NewFluid(Config{CapacityBps: 100e6, BufferDrain: 50 * time.Millisecond, Load: load})
	if d := q.DelayAt(sec(60)); d != 50*time.Millisecond {
		t.Fatalf("peak delay = %v", d)
	}
	if d := q.DelayAt(sec(120)); d != 0 {
		t.Fatalf("post-drain delay = %v", d)
	}
	if l := q.LossAt(sec(180)); l != 0 {
		t.Fatalf("post-drain loss = %v", l)
	}
}

func TestLossAtSameInstantIsStable(t *testing.T) {
	q := NewFluid(Config{CapacityBps: 100e6, BufferDrain: 10 * time.Millisecond,
		Load: constLoad(150e6)})
	_ = q.DelayAt(sec(600))
	l1 := q.LossAt(sec(600))
	l2 := q.LossAt(sec(600))
	if l1 != l2 || l1 == 0 {
		t.Fatalf("repeated observation changed loss: %v then %v", l1, l2)
	}
}

func TestCapacityUpgradeClearsCongestion(t *testing.T) {
	// The QCELL–NETPAGE scenario: 10 Mbps link overloaded, upgraded to
	// 1 Gbps on a given date; congestion must disappear.
	q := NewFluid(Config{CapacityBps: 10e6, BufferDrain: 11 * time.Millisecond,
		Load: constLoad(12e6)})
	if d := q.DelayAt(sec(3600)); d != 11*time.Millisecond {
		t.Fatalf("pre-upgrade delay = %v", d)
	}
	q.SetCapacity(sec(3600), 1e9)
	if d := q.DelayAt(sec(3700)); d != 0 {
		t.Fatalf("post-upgrade delay = %v", d)
	}
	if got := q.Capacity(); got != 1e9 {
		t.Fatalf("capacity = %v", got)
	}
}

func TestCapacityUpgradePreservesDrainTime(t *testing.T) {
	q := NewFluid(Config{CapacityBps: 10e6, BufferDrain: 20 * time.Millisecond})
	q.SetCapacity(0, 100e6)
	// Now overload the upgraded link; plateau should still be 20ms.
	q2 := NewFluid(Config{CapacityBps: 10e6, BufferDrain: 20 * time.Millisecond,
		Load: constLoad(200e6)})
	q2.SetCapacity(0, 100e6)
	if d := q2.DelayAt(sec(600)); d != 20*time.Millisecond {
		t.Fatalf("post-upgrade plateau = %v", d)
	}
}

func TestBackwardsObservationReturnsFrontierState(t *testing.T) {
	// Probes on different paths can observe a shared queue slightly
	// out of order; the model serves the frontier state rather than
	// rewinding.
	q := NewFluid(Config{CapacityBps: 100e6, BufferDrain: 30 * time.Millisecond,
		Load: constLoad(150e6)})
	at := q.DelayAt(sec(600))
	before := q.DelayAt(sec(599))
	if before != at {
		t.Fatalf("past observation %v != frontier %v", before, at)
	}
}

func TestNewFluidValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero capacity")
		}
	}()
	NewFluid(Config{})
}

func TestUtilization(t *testing.T) {
	q := NewFluid(Config{CapacityBps: 100e6, BufferDrain: time.Millisecond,
		Load: constLoad(150e6)})
	if u := q.Utilization(0); math.Abs(u-1.5) > 1e-9 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestOccupancyMatchesDelay(t *testing.T) {
	q := NewFluid(Config{CapacityBps: 100e6, BufferDrain: 40 * time.Millisecond,
		Load: constLoad(130e6)})
	occ := q.Occupancy(sec(300))
	d := q.DelayAt(sec(300))
	if math.Abs(occ/100e6-d.Seconds()) > 1e-6 {
		t.Fatalf("occupancy %v bits inconsistent with delay %v", occ, d)
	}
}

func TestDiurnalLoadProducesDiurnalDelay(t *testing.T) {
	// Load exceeding capacity only during "business hours" must yield
	// zero delay at night and plateau delay mid-day — the waveform the
	// level-shift detector keys on.
	day := 24 * time.Hour
	load := func(tm simclock.Time) float64 {
		h := tm.HourOfDay()
		if h >= 9 && h < 17 {
			return 140e6
		}
		return 30e6
	}
	q := NewFluid(Config{CapacityBps: 100e6, BufferDrain: 25 * time.Millisecond, Load: load})
	night := q.DelayAt(simclock.Time(day) + simclock.Time(4*time.Hour))
	noon := q.DelayAt(simclock.Time(day) + simclock.Time(13*time.Hour))
	nextNight := q.DelayAt(simclock.Time(day) + simclock.Time(23*time.Hour))
	if night != 0 || nextNight != 0 {
		t.Fatalf("off-peak delay: %v / %v", night, nextNight)
	}
	if noon != 25*time.Millisecond {
		t.Fatalf("peak delay = %v", noon)
	}
}

func TestStochasticNearSaturationDelay(t *testing.T) {
	// With PacketBits set, delay rises before saturation: ρ=0.9 on a
	// 10 Mbps link with 12 kbit packets gives 9×1.2ms = 10.8ms.
	q := NewFluid(Config{CapacityBps: 10e6, BufferDrain: 35 * time.Millisecond,
		PacketBits: 12000, Load: constLoad(9e6)})
	d := q.DelayAt(sec(600))
	if math.Abs(d.Seconds()-0.0108) > 0.001 {
		t.Fatalf("ρ=0.9 delay = %v, want ~10.8ms", d)
	}
	// Saturated: capped at the buffer drain.
	q2 := NewFluid(Config{CapacityBps: 10e6, BufferDrain: 35 * time.Millisecond,
		PacketBits: 12000, Load: constLoad(12e6)})
	if d := q2.DelayAt(sec(600)); d != 35*time.Millisecond {
		t.Fatalf("saturated delay = %v", d)
	}
	// Low utilization: term stays negligible.
	q3 := NewFluid(Config{CapacityBps: 10e6, BufferDrain: 35 * time.Millisecond,
		PacketBits: 12000, Load: constLoad(2e6)})
	if d := q3.DelayAt(sec(600)); d > time.Millisecond {
		t.Fatalf("ρ=0.2 delay = %v", d)
	}
}

func TestStochasticTermDisabledByDefault(t *testing.T) {
	q := NewFluid(Config{CapacityBps: 10e6, BufferDrain: 35 * time.Millisecond,
		Load: constLoad(9.9e6)})
	if d := q.DelayAt(sec(600)); d != 0 {
		t.Fatalf("without PacketBits ρ<1 delay must be 0, got %v", d)
	}
}

func TestTokenBucketRate(t *testing.T) {
	tb := NewTokenBucket(100, 1, 0) // 100 pps, no burst headroom
	if !tb.Allow(0) {
		t.Fatal("first packet must pass")
	}
	if tb.Allow(0) {
		t.Fatal("second packet at t=0 must be throttled")
	}
	next := tb.NextAllowed(0)
	if d := time.Duration(next); math.Abs(d.Seconds()-0.01) > 1e-6 {
		t.Fatalf("NextAllowed = %v, want 10ms", d)
	}
	if !tb.Allow(next) {
		t.Fatal("packet at NextAllowed must pass")
	}
}

func TestTokenBucketBurst(t *testing.T) {
	tb := NewTokenBucket(10, 5, 0)
	n := 0
	for tb.Allow(0) {
		n++
	}
	if n != 5 {
		t.Fatalf("burst allowed %d, want 5", n)
	}
}

func TestTokenBucketRefillCap(t *testing.T) {
	tb := NewTokenBucket(100, 3, 0)
	for tb.Allow(0) {
	}
	// After a long idle period tokens must cap at burst.
	n := 0
	for tb.Allow(sec(3600)) {
		n++
	}
	if n != 3 {
		t.Fatalf("post-idle burst = %d, want 3", n)
	}
}

func TestTokenBucketValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTokenBucket(0, 1, 0)
}

func TestTokenBucketSustainedThroughput(t *testing.T) {
	// Over 10 seconds a 100 pps bucket admits ~1000 packets when polled
	// every millisecond.
	tb := NewTokenBucket(100, 1, 0)
	admitted := 0
	for ms := 0; ms < 10000; ms++ {
		if tb.Allow(simclock.Time(time.Duration(ms) * time.Millisecond)) {
			admitted++
		}
	}
	if admitted < 995 || admitted > 1005 {
		t.Fatalf("admitted %d packets, want ~1000", admitted)
	}
}

func BenchmarkFluidAdvanceYear(b *testing.B) {
	// Cost of integrating a full measurement year at 5-minute sampling.
	for i := 0; i < b.N; i++ {
		q := NewFluid(Config{CapacityBps: 100e6, BufferDrain: 30 * time.Millisecond,
			Load: constLoad(90e6), Step: time.Minute})
		end := simclock.LatencyEnd
		for tm := simclock.Time(0); tm < end; tm = tm.Add(5 * time.Minute) {
			q.DelayAt(tm)
		}
	}
}
