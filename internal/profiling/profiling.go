// Package profiling wires the stdlib pprof profilers into the
// command-line tools: one call after flag parsing starts the CPU
// profile, and the returned stop function finishes it and captures the
// heap. Paths are optional — empty strings disable each profile — so
// the commands can expose -cpuprofile/-memprofile flags that cost
// nothing when unused.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins a CPU profile when cpuPath is non-empty. The returned
// stop function ends the CPU profile and, when memPath is non-empty,
// writes a heap profile; call it exactly once on the way out. Defer it
// inside a run() error function (as cmd/repro and cmd/observatory do)
// rather than alongside os.Exit calls: an os.Exit skips deferred
// stops, losing the profile on exactly the failing runs one most
// wants to profile.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		cpuFile = f
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpuprofile: %w", err)
			}
		}
		if memPath == "" {
			return nil
		}
		f, err := os.Create(memPath)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile reflects live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		return nil
	}, nil
}
