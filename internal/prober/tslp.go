package prober

import (
	"fmt"
	"time"

	"afrixp/internal/netaddr"
	"afrixp/internal/netsim"
	"afrixp/internal/packet"
	"afrixp/internal/simclock"
	"afrixp/internal/warts"
)

// LinkTarget identifies a discovered interdomain IP link by its two
// ends as seen from the VP (the bdrmap output the campaign probes).
type LinkTarget struct {
	Near, Far netaddr.Addr
}

// String renders "near→far".
func (lt LinkTarget) String() string {
	return fmt.Sprintf("%v→%v", lt.Near, lt.Far)
}

// TSLP is a time-sequence latency probe session for one link: paired
// TTL-limited probes expiring at the near and far ends, sent every
// round (the paper probed every 5 minutes for 13 months).
//
// Probe trajectories are resolved once and sampled through the
// simulator's fast path; they re-resolve automatically if the
// topology changes underneath.
type TSLP struct {
	p      *Prober
	Target LinkTarget

	nearTTL  int
	nearPath *netsim.ProbePath
	farPath  *netsim.ProbePath
}

// NewTSLP resolves probe trajectories toward both ends of the link.
func (p *Prober) NewTSLP(target LinkTarget) (*TSLP, error) {
	ts := &TSLP{p: p, Target: target}
	if err := ts.resolve(); err != nil {
		return nil, err
	}
	return ts, nil
}

// resolve recomputes the cached trajectories.
func (ts *TSLP) resolve() error {
	full, err := ts.p.nw.TracePath(ts.p.vp, ts.Target.Far, 64)
	if err != nil {
		return fmt.Errorf("prober: tracing %v: %w", ts.Target, err)
	}
	nearTTL := -1
	for i, a := range full.HopAddrs {
		if a == ts.Target.Near {
			nearTTL = i + 1
			break
		}
	}
	if nearTTL < 0 {
		return fmt.Errorf("prober: near end %v not on path to %v (route changed?)",
			ts.Target.Near, ts.Target.Far)
	}
	nearPath, err := ts.p.nw.TracePath(ts.p.vp, ts.Target.Far, nearTTL)
	if err != nil {
		return err
	}
	if nearPath.RespAddr != ts.Target.Near {
		return fmt.Errorf("prober: TTL %d expires at %v, want near end %v",
			nearTTL, nearPath.RespAddr, ts.Target.Near)
	}
	ts.nearTTL = nearTTL
	ts.nearPath = nearPath
	ts.farPath = full
	return nil
}

// Sample is one TSLP round result.
type Sample struct {
	At                simclock.Time
	NearRTT, FarRTT   simclock.Duration
	NearLost, FarLost bool
}

// Round probes both ends of the link at time t. Stale trajectories
// (after topology churn) are re-resolved; if the link has left the
// routed path entirely, both probes report loss — exactly what the
// paper observed when GIXA–GHANATEL disappeared.
func (ts *TSLP) Round(t simclock.Time) Sample {
	if !ts.nearPath.Valid() || !ts.farPath.Valid() {
		if err := ts.resolve(); err != nil {
			ts.logRound(t, Sample{At: t, NearLost: true, FarLost: true})
			return Sample{At: t, NearLost: true, FarLost: true}
		}
	}
	s := Sample{At: t}
	nearAt := ts.p.bucket.NextAllowed(t)
	ts.p.bucket.Allow(nearAt)
	if rtt, ok := ts.nearPath.Sample(nearAt); ok && rtt <= ts.p.cfg.Timeout {
		s.NearRTT = rtt
	} else {
		s.NearLost = true
	}
	farAt := ts.p.bucket.NextAllowed(nearAt.Add(10 * time.Millisecond))
	ts.p.bucket.Allow(farAt)
	if rtt, ok := ts.farPath.Sample(farAt); ok && rtt <= ts.p.cfg.Timeout {
		s.FarRTT = rtt
	} else {
		s.FarLost = true
	}
	ts.logRound(t, s)
	return s
}

func (ts *TSLP) logRound(t simclock.Time, s Sample) {
	if ts.p.cfg.Warts == nil {
		return
	}
	// Both TSLP probes are addressed to the far end (the near probe
	// is simply TTL-limited to expire one hop earlier), so Target
	// doubles as the link identifier in the archive; Responder tells
	// the two ends apart.
	ts.p.log(&warts.Record{
		Type: warts.TypeTSLP, VP: ts.p.cfg.Name, At: t, Target: ts.Target.Far,
		Responder: ts.Target.Near, TTL: uint8(ts.nearTTL),
		RespType: packet.ICMPTimeExceeded, RTT: s.NearRTT, Lost: s.NearLost,
	})
	ts.p.log(&warts.Record{
		Type: warts.TypeTSLP, VP: ts.p.cfg.Name, At: t, Target: ts.Target.Far,
		Responder: ts.Target.Far, TTL: 64,
		RespType: packet.ICMPEchoReply, RTT: s.FarRTT, Lost: s.FarLost,
	})
}

// EnsureResolved re-resolves the cached trajectories if topology churn
// invalidated them. The parallel campaign engine calls it at the step
// barrier (single-threaded) whenever the network's topology version
// changed, so that RoundFrozen never has to mutate path state from a
// worker goroutine.
func (ts *TSLP) EnsureResolved() error {
	if ts.nearPath.Valid() && ts.farPath.Valid() {
		return nil
	}
	return ts.resolve()
}

// RoundFrozen is Round against the frozen queue frontier: it paces and
// samples exactly like Round but draws loss from this prober's private
// nonce stream and never mutates network state. Stale trajectories are
// NOT re-resolved here — the campaign engine refreshes them at the step
// barrier via EnsureResolved; a link that truly left the routed path
// keeps reporting loss, exactly as Round would.
func (ts *TSLP) RoundFrozen(t simclock.Time) Sample {
	if !ts.nearPath.Valid() || !ts.farPath.Valid() {
		s := Sample{At: t, NearLost: true, FarLost: true}
		ts.logRound(t, s)
		return s
	}
	s := Sample{At: t}
	nearAt := ts.p.bucket.NextAllowed(t)
	ts.p.bucket.Allow(nearAt)
	if rtt, ok := ts.nearPath.SampleCtx(ts.p.ctx, nearAt); ok && rtt <= ts.p.cfg.Timeout {
		s.NearRTT = rtt
	} else {
		s.NearLost = true
	}
	farAt := ts.p.bucket.NextAllowed(nearAt.Add(10 * time.Millisecond))
	ts.p.bucket.Allow(farAt)
	if rtt, ok := ts.farPath.SampleCtx(ts.p.ctx, farAt); ok && rtt <= ts.p.cfg.Timeout {
		s.FarRTT = rtt
	} else {
		s.FarLost = true
	}
	ts.logRound(t, s)
	return s
}

// LossRoundFrozen is LossRound against the frozen queue frontier, with
// the same no-resolve contract as RoundFrozen.
func (ts *TSLP) LossRoundFrozen(t simclock.Time) (nearLost, farLost bool) {
	if !ts.nearPath.Valid() || !ts.farPath.Valid() {
		return true, true
	}
	_, nearOK := ts.nearPath.SampleCtx(ts.p.ctx, t)
	_, farOK := ts.farPath.SampleCtx(ts.p.ctx, t.Add(500*time.Millisecond))
	if ts.p.cfg.Warts != nil {
		ts.p.log(&warts.Record{Type: warts.TypeLossProbe, VP: ts.p.cfg.Name, At: t,
			Target: ts.Target.Near, Lost: !nearOK})
		ts.p.log(&warts.Record{Type: warts.TypeLossProbe, VP: ts.p.cfg.Name, At: t,
			Target: ts.Target.Far, Lost: !farOK})
	}
	return !nearOK, !farOK
}

// LossRound sends one 1 pps loss probe to each end at time t,
// reporting only survival — the §4 loss-rate campaign.
func (ts *TSLP) LossRound(t simclock.Time) (nearLost, farLost bool) {
	if !ts.nearPath.Valid() || !ts.farPath.Valid() {
		if err := ts.resolve(); err != nil {
			return true, true
		}
	}
	_, nearOK := ts.nearPath.Sample(t)
	_, farOK := ts.farPath.Sample(t.Add(500 * time.Millisecond))
	if ts.p.cfg.Warts != nil {
		ts.p.log(&warts.Record{Type: warts.TypeLossProbe, VP: ts.p.cfg.Name, At: t,
			Target: ts.Target.Near, Lost: !nearOK})
		ts.p.log(&warts.Record{Type: warts.TypeLossProbe, VP: ts.p.cfg.Name, At: t,
			Target: ts.Target.Far, Lost: !farOK})
	}
	return !nearOK, !farOK
}

// FarHopCount returns the forward hop count to the far end, useful for
// diagnostics.
func (ts *TSLP) FarHopCount() int { return len(ts.farPath.HopAddrs) }
