package prober

import (
	"bytes"
	"io"
	"testing"
	"time"

	"afrixp/internal/asrel"
	"afrixp/internal/bgpsim"
	"afrixp/internal/netaddr"
	"afrixp/internal/netsim"
	"afrixp/internal/packet"
	"afrixp/internal/queue"
	"afrixp/internal/simclock"
	"afrixp/internal/trafficmodel"
	"afrixp/internal/warts"
)

func ma(s string) netaddr.Addr   { return netaddr.MustParseAddr(s) }
func mp(s string) netaddr.Prefix { return netaddr.MustParsePrefix(s) }

// testWorld: VP(host) — R1(AS10) == IXP LAN == R2(AS20) — R3(AS30)
type testWorld struct {
	nw             *netsim.Network
	vp, r1, r2, r3 *netsim.Node
	near, far      netaddr.Addr
	memberPort     *netsim.Pipe
}

func build(t testing.TB) *testWorld {
	g := asrel.NewGraph()
	g.SetPeer(10, 20)
	g.SetProvider(30, 20)
	bgp := bgpsim.New(g)
	bgp.Announce(10, mp("10.10.0.0/16"))
	bgp.Announce(20, mp("10.20.0.0/16"))
	bgp.Announce(30, mp("10.30.0.0/16"))
	nw := netsim.New(bgp, 7)
	w := &testWorld{nw: nw}
	w.vp = nw.AddNode("vp", 10)
	w.r1 = nw.AddNode("r1", 10)
	w.r2 = nw.AddNode("r2", 20)
	w.r3 = nw.AddNode("r3", 30)
	nw.ConnectLink(w.vp, w.r1, netsim.LinkSpec{Subnet: mp("10.10.0.0/30")})
	nw.SetGateway(w.vp, nw.Iface(w.vp.Ifaces[0]))
	lan := nw.AddLAN(mp("196.49.7.0/24"))
	nw.AttachToLAN(w.r1, lan, netsim.AttachSpec{Addr: ma("196.49.7.1")})
	w.memberPort = &netsim.Pipe{Prop: 100 * time.Microsecond}
	nw.AttachToLAN(w.r2, lan, netsim.AttachSpec{Addr: ma("196.49.7.10"), FromFabric: w.memberPort})
	nw.ConnectLink(w.r2, w.r3, netsim.LinkSpec{Subnet: mp("10.30.255.0/30")})
	w.near = ma("10.10.0.2")
	w.far = ma("196.49.7.10")
	return w
}

func TestPingEchoAndExpiry(t *testing.T) {
	w := build(t)
	p := New(w.nw, w.vp, Config{Name: "test"})
	res, err := p.Ping(w.far, 64, 0)
	if err != nil || res.Lost {
		t.Fatalf("ping: %+v err %v", res, err)
	}
	if res.Responder != w.far || res.RespType != packet.ICMPEchoReply {
		t.Fatalf("responder %v type %d", res.Responder, res.RespType)
	}
	if res.RTT <= 0 || res.RTT > 10*time.Millisecond {
		t.Fatalf("RTT = %v", res.RTT)
	}
	res, err = p.Ping(w.far, 1, simclock.Time(time.Second))
	if err != nil || res.Lost {
		t.Fatalf("ttl1: %+v err %v", res, err)
	}
	if res.Responder != w.near || res.RespType != packet.ICMPTimeExceeded {
		t.Fatalf("ttl1 responder %v type %d", res.Responder, res.RespType)
	}
}

func TestPingPacing(t *testing.T) {
	w := build(t)
	p := New(w.nw, w.vp, Config{RatePPS: 10}) // 100 ms between probes
	var last simclock.Time
	for i := 0; i < 30; i++ {
		res, err := p.Ping(w.far, 64, 0) // all requested at t=0
		if err != nil {
			t.Fatal(err)
		}
		if i > 10 && res.SentAt.Sub(last) < 90*time.Millisecond {
			t.Fatalf("probe %d sent %v after previous — pacing violated",
				i, res.SentAt.Sub(last))
		}
		last = res.SentAt
	}
}

func TestTraceroute(t *testing.T) {
	w := build(t)
	p := New(w.nw, w.vp, Config{})
	hops, err := p.Traceroute(w.far, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 2 {
		t.Fatalf("hops = %d: %+v", len(hops), hops)
	}
	if hops[0].Responder != w.near || hops[0].Reached {
		t.Fatalf("hop1: %+v", hops[0])
	}
	if hops[1].Responder != w.far || !hops[1].Reached {
		t.Fatalf("hop2: %+v", hops[1])
	}
}

func TestTracerouteToStubCrossesIXP(t *testing.T) {
	w := build(t)
	p := New(w.nw, w.vp, Config{})
	hops, err := p.Traceroute(ma("10.30.255.2"), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 3 || hops[1].Responder != w.far {
		t.Fatalf("hops: %+v", hops)
	}
}

func TestRRPing(t *testing.T) {
	w := build(t)
	p := New(w.nw, w.vp, Config{})
	res, err := p.RRPing(w.far, 0)
	if err != nil || res.Lost {
		t.Fatalf("%+v err %v", res, err)
	}
	// fwd: r1 egress; dst stamp; rev: r1 egress toward the VP. The
	// destination originates the reply, so it stamps exactly once.
	if len(res.Recorded) != 3 {
		t.Fatalf("recorded %v", res.Recorded)
	}
	if res.Recorded[1] != w.far || res.Recorded[2] != w.near {
		t.Fatalf("stamps: %v", res.Recorded)
	}
	if res.Full {
		t.Fatal("4 stamps must not fill 9 slots")
	}
}

func TestTSLPRound(t *testing.T) {
	w := build(t)
	w.memberPort.Queue = queue.NewFluid(queue.Config{
		CapacityBps: 100e6, BufferDrain: 28 * time.Millisecond,
		Load: trafficmodel.Constant(150e6),
	})
	p := New(w.nw, w.vp, Config{})
	ts, err := p.NewTSLP(LinkTarget{Near: w.near, Far: w.far})
	if err != nil {
		t.Fatal(err)
	}
	s := ts.Round(simclock.Time(20 * time.Minute))
	if s.NearLost {
		t.Fatal("near probe lost")
	}
	if s.NearRTT > 5*time.Millisecond {
		t.Fatalf("near RTT = %v", s.NearRTT)
	}
	if !s.FarLost {
		// With 1/3 overload loss the far probe may die; when it
		// survives it must carry the queue delay.
		if s.FarRTT < 28*time.Millisecond {
			t.Fatalf("far RTT = %v, want ≥28ms", s.FarRTT)
		}
	}
	if got := ts.FarHopCount(); got != 2 {
		t.Fatalf("far hop count = %d", got)
	}
}

func TestTSLPSurvivesTopologyChurn(t *testing.T) {
	w := build(t)
	p := New(w.nw, w.vp, Config{})
	ts, err := p.NewTSLP(LinkTarget{Near: w.near, Far: w.far})
	if err != nil {
		t.Fatal(err)
	}
	w.nw.AddNode("extra", 99) // bump topology version
	s := ts.Round(simclock.Time(time.Hour))
	if s.NearLost || s.FarLost {
		t.Fatalf("round after churn: %+v", s)
	}
}

func TestTSLPDownedLinkReportsLoss(t *testing.T) {
	w := build(t)
	cutoff := simclock.Date(2016, time.August, 6)
	w.memberPort.Up = netsim.DownAfter(cutoff)
	p := New(w.nw, w.vp, Config{})
	ts, err := p.NewTSLP(LinkTarget{Near: w.near, Far: w.far})
	if err != nil {
		t.Fatal(err)
	}
	s := ts.Round(cutoff.Add(time.Hour))
	if !s.FarLost {
		t.Fatal("far probe must be lost after shutdown")
	}
	if s.NearLost {
		t.Fatal("near probe does not cross the member port")
	}
}

func TestTSLPBadNearEnd(t *testing.T) {
	w := build(t)
	p := New(w.nw, w.vp, Config{})
	if _, err := p.NewTSLP(LinkTarget{Near: ma("9.9.9.9"), Far: w.far}); err == nil {
		t.Fatal("off-path near end must fail")
	}
}

func TestLossRound(t *testing.T) {
	w := build(t)
	w.memberPort.BaseLoss = 1.0
	p := New(w.nw, w.vp, Config{})
	ts, err := p.NewTSLP(LinkTarget{Near: w.near, Far: w.far})
	if err != nil {
		t.Fatal(err)
	}
	nearLost, farLost := ts.LossRound(0)
	if nearLost {
		t.Fatal("near probe must survive")
	}
	if !farLost {
		t.Fatal("far probe must be lost on a fully lossy port")
	}
}

func TestWartsLogging(t *testing.T) {
	w := build(t)
	var buf bytes.Buffer
	ww, err := warts.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p := New(w.nw, w.vp, Config{Name: "mon1", Warts: ww})
	if _, err := p.Ping(w.far, 64, 0); err != nil {
		t.Fatal(err)
	}
	ts, err := p.NewTSLP(LinkTarget{Near: w.near, Far: w.far})
	if err != nil {
		t.Fatal(err)
	}
	ts.Round(simclock.Time(5 * time.Minute))
	ts.LossRound(simclock.Time(6 * time.Minute))
	if _, err := p.RRPing(w.far, simclock.Time(7*time.Minute)); err != nil {
		t.Fatal(err)
	}
	ww.Flush()

	r, err := warts.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint8]int{}
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.VP != "mon1" {
			t.Fatalf("VP = %q", rec.VP)
		}
		counts[rec.Type]++
	}
	if counts[warts.TypePing] != 1 || counts[warts.TypeTSLP] != 2 ||
		counts[warts.TypeLossProbe] != 2 || counts[warts.TypeRRPing] != 1 {
		t.Fatalf("record counts: %v", counts)
	}
}

func TestPingUnreachableIsLost(t *testing.T) {
	w := build(t)
	p := New(w.nw, w.vp, Config{})
	res, err := p.Ping(ma("99.9.9.9"), 64, 0)
	if err != nil || !res.Lost {
		t.Fatalf("unreachable ping: %+v err %v", res, err)
	}
}

func BenchmarkTSLPRoundYear(b *testing.B) {
	// Cost of one link's full-year TSLP campaign (105k rounds).
	w := build(b)
	w.memberPort.Queue = queue.NewFluid(queue.Config{
		CapacityBps: 100e6, BufferDrain: 28 * time.Millisecond,
		Load: trafficmodel.Diurnal{BaseBps: 30e6, PeakBps: 140e6, PeakHour: 14, Width: 3}.Load(),
	})
	p := New(w.nw, w.vp, Config{})
	ts, err := p.NewTSLP(LinkTarget{Near: w.near, Far: w.far})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		end := simclock.LatencyEnd
		for t := simclock.Time(0); t < end; t = t.Add(5 * time.Minute) {
			ts.Round(t)
		}
	}
}
